package obdrel_test

import (
	"fmt"
	"log"
	"sort"

	"obdrel"
)

// The quickstart flow: characterize the EV6-like benchmark and ask
// whether the statistical analysis beats the guard band (it always
// does — by >50% of lifetime).
func ExampleNewAnalyzer() {
	cfg := obdrel.DefaultConfig()
	cfg.GridNx, cfg.GridNy = 8, 8 // coarse grid keeps the example fast
	an, err := obdrel.NewAnalyzer(obdrel.C6(), cfg)
	if err != nil {
		log.Fatal(err)
	}
	statistical, err := an.LifetimePPM(10, obdrel.MethodStFast)
	if err != nil {
		log.Fatal(err)
	}
	guard, err := an.LifetimePPM(10, obdrel.MethodGuard)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("statistical beats guard band: %v\n", statistical > 2*guard)
	fmt.Printf("pessimism exceeds 50%%: %v\n", (statistical-guard)/statistical > 0.5)
	// Output:
	// statistical beats guard band: true
	// pessimism exceeds 50%: true
}

// Finding the chip's reliability limiter: the failure-probability
// decomposition names the block that dominates early failures.
func ExampleAnalyzer_FailureContributions() {
	cfg := obdrel.DefaultConfig()
	cfg.GridNx, cfg.GridNy = 8, 8
	an, err := obdrel.NewAnalyzer(obdrel.C6(), cfg)
	if err != nil {
		log.Fatal(err)
	}
	t10, err := an.LifetimePPM(10, obdrel.MethodStFast)
	if err != nil {
		log.Fatal(err)
	}
	contribs, err := an.FailureContributions(t10)
	if err != nil {
		log.Fatal(err)
	}
	sort.Slice(contribs, func(i, j int) bool { return contribs[i].Share > contribs[j].Share })
	// The hotspot (integer execution unit) owns the largest share of
	// the early-failure probability.
	fmt.Printf("limiter: %s\n", contribs[0].Name)
	fmt.Printf("dominant: %v\n", contribs[0].Share > 0.15)
	// Output:
	// limiter: intexec
	// dominant: true
}

// Methods are interchangeable: the same query runs against the
// device-level Monte-Carlo reference for validation.
func ExampleAnalyzer_CompareMethods() {
	cfg := obdrel.DefaultConfig()
	cfg.GridNx, cfg.GridNy = 8, 8
	cfg.MCSamples = 500
	an, err := obdrel.NewAnalyzer(obdrel.C1(), cfg)
	if err != nil {
		log.Fatal(err)
	}
	rows, err := an.CompareMethods(10, []obdrel.Method{obdrel.MethodStFast})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("st_fast within 5%% of MC: %v\n", rows[0].ErrVsMCPct < 5 && rows[0].ErrVsMCPct > -5)
	// Output:
	// st_fast within 5% of MC: true
}
