module obdrel

go 1.22
