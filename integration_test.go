package obdrel_test

import (
	"math"
	"testing"

	"obdrel"
	"obdrel/internal/grid"
	"obdrel/internal/obd"
)

// TestEverythingAtOnce runs the full feature surface in one
// configuration: quad-tree correlation, an off-center die under a
// wafer bowl, a bimodal defect population, a three-mode mission
// profile, breakdown tolerance, burn-in screening, and Weibull
// extraction — and checks the physical orderings that must hold
// between them. This is the repo's kitchen-sink integration test.
func TestEverythingAtOnce(t *testing.T) {
	cfg := obdrel.DefaultConfig()
	cfg.GridNx, cfg.GridNy = 8, 8
	cfg.MCSamples = 800
	cfg.QuadTree = true
	cfg.QuadTreeLevels = 2
	cfg.WaferPattern = &grid.WaferPattern{DieX: 0.5, DieY: 0.2, DieSpan: 0.2, Bowl: 0.02}
	ext := obd.DefaultExtrinsic()
	ext.DefectFraction = 2e-6
	cfg.Extrinsic = ext

	modes := []obdrel.Mode{
		{Name: "idle", VDD: 1.05, ActivityScale: 0.4, Fraction: 0.6},
		{Name: "nominal", VDD: 1.2, ActivityScale: 1, Fraction: 0.3},
		{Name: "turbo", VDD: 1.3, ActivityScale: 1, Fraction: 0.1},
	}
	an, err := obdrel.NewMissionAnalyzer(obdrel.C1(), cfg, modes)
	if err != nil {
		t.Fatal(err)
	}

	// 1. Engine agreement holds with every feature active.
	rows, err := an.CompareMethods(10, []obdrel.Method{obdrel.MethodStFast, obdrel.MethodHybrid})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if e := math.Abs(r.ErrVsMCPct); e > 8 {
			t.Errorf("%v error vs MC %.2f%% with all features active", r.Method, e)
		}
	}
	base, err := an.LifetimePPM(10, obdrel.MethodStFast)
	if err != nil {
		t.Fatal(err)
	}

	// 2. Breakdown tolerance extends it.
	k2, err := an.LifetimePPMTolerant(10, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !(k2 > base) {
		t.Errorf("tolerance did not extend lifetime: %v vs %v", k2, base)
	}

	// 3. Burn-in screens the defect population.
	res, err := an.BurnIn(1.6, 125, 24)
	if err != nil {
		t.Fatal(err)
	}
	screened, err := res.LifetimePPM(10)
	if err != nil {
		t.Fatal(err)
	}
	if !(screened > base) {
		t.Errorf("burn-in did not help the defect-laden population: %v vs %v", screened, base)
	}

	// 4. The sampled failure population fits a Weibull poorly enough
	// to reveal bimodality, or at least fits with a shallow slope —
	// either way the shape must be < the intrinsic device slope.
	times, err := an.SampleFailureTimes(3000)
	if err != nil {
		t.Fatal(err)
	}
	_, shape, _, err := obdrel.FitWeibull(times)
	if err != nil {
		t.Fatal(err)
	}
	if !(shape < 1.32) {
		t.Errorf("population slope %v not below the intrinsic device slope", shape)
	}

	// 5. The guard band is still the most pessimistic method.
	tGuard, err := an.LifetimePPM(10, obdrel.MethodGuard)
	if err != nil {
		t.Fatal(err)
	}
	if !(tGuard < base) {
		t.Errorf("guard %v not pessimistic vs %v", tGuard, base)
	}
}
