package obdrel

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"

	"obdrel/internal/core"
	"obdrel/internal/floorplan"
	"obdrel/internal/grid"
	"obdrel/internal/obd"
	"obdrel/internal/pipeline"
	"obdrel/internal/stats"
	"obdrel/internal/thermal"
)

// Method selects a reliability analysis engine.
type Method int

// The analysis methods compared in the paper's evaluation.
const (
	// MethodStFast is the proposed statistical analysis (Section
	// IV-D).
	MethodStFast Method = iota
	// MethodStMC constructs the per-block joint PDF numerically.
	MethodStMC
	// MethodHybrid is the analytical/table-lookup engine (Section
	// IV-E).
	MethodHybrid
	// MethodGuard is the traditional guard-band bound.
	MethodGuard
	// MethodMC is the device-level Monte-Carlo reference.
	MethodMC
	// MethodTempUnaware is MethodStFast with the worst-case
	// temperature applied to every block (the Fig. 10 comparison).
	MethodTempUnaware
	numMethods
)

// String implements fmt.Stringer.
func (m Method) String() string {
	switch m {
	case MethodStFast:
		return "st_fast"
	case MethodStMC:
		return "st_MC"
	case MethodHybrid:
		return "hybrid"
	case MethodGuard:
		return "guard"
	case MethodMC:
		return "MC"
	case MethodTempUnaware:
		return "temp_unaware"
	}
	return fmt.Sprintf("method(%d)", int(m))
}

// Methods returns all methods in the paper's comparison order.
func Methods() []Method {
	return []Method{MethodStFast, MethodStMC, MethodHybrid, MethodGuard, MethodMC, MethodTempUnaware}
}

// BlockInfo reports one block's operating point as resolved by the
// power/thermal stage.
type BlockInfo struct {
	Name string
	// MeanTempC and MaxTempC are the block's average and worst-case
	// temperatures (°C); PowerW its converged power (W).
	MeanTempC, MaxTempC, PowerW float64
	// Alpha and B are the device-level Weibull parameters used for
	// the block (α in hours, b in 1/nm).
	Alpha, B float64
	// Devices is the block's device count.
	Devices int
}

// Analyzer is a fully characterized chip ready for reliability
// queries. It is a thin facade over the stage graph (see stages.go):
// construction resolves the floorplan, power-map, thermal,
// covariance/PCA, BLOD, Weibull-parameter and chip stages — each
// served from the process-wide stage cache when a prior construction
// already built the identical artifact; engines are then built lazily
// per method and cached per analyzer.
type Analyzer struct {
	cfg    *Config
	design *floorplan.Design
	model  *grid.Model
	pca    *grid.PCA
	chip   *core.Chip
	tech   *obd.Tech

	blockInfo []BlockInfo
	field     *thermal.Field
	// chipKey is the chip-stage fingerprint — the transitive identity
	// of everything the query engines consume. The hybrid table file
	// is keyed by it (see tables.go).
	chipKey string

	mu      sync.Mutex
	engines map[Method]core.Engine
}

// NewAnalyzer characterizes a design under a configuration. A nil
// config selects DefaultConfig.
func NewAnalyzer(d *Design, cfg *Config) (*Analyzer, error) {
	return NewAnalyzerCtx(context.Background(), d, cfg)
}

// NewAnalyzerCtx is NewAnalyzer with cancellation support: ctx is
// checked at stage-cache lookups and inside every stage build (thermal
// SOR sweeps, covariance rows, eigensolver loops, per-block
// characterization), so a cancelled context stops the substrate
// computation promptly instead of abandoning it.
//
// Stage artifacts are served from the process-wide stage cache unless
// Config.DisableStageCache is set. Artifacts are immutable and their
// builds deterministic for a fixed Workers value, so cache reuse never
// changes results; mixing Workers values across processes' requests
// shares artifacts across the documented serial/parallel tolerance
// (Workers is a perf knob, excluded from stage fingerprints).
func NewAnalyzerCtx(ctx context.Context, d *Design, cfg *Config) (*Analyzer, error) {
	return NewAnalyzerCtxIn(ctx, sharedStages, d, cfg)
}

// NewAnalyzerCtxIn is NewAnalyzerCtx against an explicit stage cache
// instead of the process-wide one. The serving layer uses it to give
// each node its own stage cache (with its own disk/peer tiers), which
// is also what lets a multi-node cluster run inside one test process
// without the nodes sharing artifacts through sharedStages.
// Config.DisableStageCache still wins: it disables caching entirely.
func NewAnalyzerCtxIn(ctx context.Context, cache *pipeline.Cache, d *Design, cfg *Config) (*Analyzer, error) {
	if cfg != nil && cfg.DisableStageCache {
		cache = nil
	}
	return newAnalyzerWith(ctx, cache, d, cfg)
}

// engine returns (building on first use) the engine for a method.
// Construction is serialized so an Analyzer is safe for concurrent
// queries; engines themselves are read-only after construction.
func (a *Analyzer) engine(m Method) (core.Engine, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if e, ok := a.engines[m]; ok {
		return e, nil
	}
	var (
		e   core.Engine
		err error
	)
	switch m {
	case MethodStFast:
		e, err = core.NewStFast(a.chip, a.cfg.L0)
	case MethodStMC:
		e, err = core.NewStMC(a.chip, a.pca, core.StMCOptions{
			Samples: a.cfg.StMCSamples, Bins: a.cfg.StMCBins, Seed: a.cfg.Seed,
			Workers: a.cfg.Workers,
		})
	case MethodHybrid:
		// The hybrid tables can come from a spill file when
		// Config.TableDir is set — see tables.go.
		e, err = a.hybridEngine()
	case MethodGuard:
		e, err = core.NewGuardBand(a.chip, a.cfg.GuardSigmas)
	case MethodMC:
		e, err = core.NewMonteCarlo(a.chip, a.pca, core.MCOptions{
			Samples: a.cfg.MCSamples, Seed: a.cfg.Seed,
			Workers: a.cfg.Workers,
		})
	case MethodTempUnaware:
		var uni *core.Chip
		uni, err = a.chip.WithUniformParams(a.chip.WorstParams())
		if err == nil {
			e, err = core.NewStFast(uni, a.cfg.L0)
		}
	default:
		return nil, fmt.Errorf("obdrel: unknown method %v", m)
	}
	if err != nil {
		return nil, err
	}
	a.engines[m] = e
	return e, nil
}

// EngineReady reports whether the engine for m has already been
// built. The serving layer uses it to pick the warm query path: a
// built st_fast/hybrid engine answers in microseconds without
// allocating, so wrapping the call in a cancellation goroutine would
// cost more than the query itself.
func (a *Analyzer) EngineReady(m Method) bool {
	a.mu.Lock()
	_, ok := a.engines[m]
	a.mu.Unlock()
	return ok
}

// Prepare builds (if absent) the engine for m without running a
// query, so subsequent LifetimeAt/FailureProb calls for the method
// take the warm zero-alloc path. The batch planner calls it once per
// item group before fanning the group's queries across workers.
func (a *Analyzer) Prepare(m Method) error {
	_, err := a.engine(m)
	return err
}

// validTime rejects non-finite query times before they reach an
// engine — a NaN time silently propagates through every integral.
func validTime(t float64) error {
	if math.IsNaN(t) || math.IsInf(t, 0) {
		return fmt.Errorf("obdrel: query time must be finite, got %v", t)
	}
	return nil
}

// validPPM rejects ppm criteria outside (0, 1e6): n per million only
// names a reachable failure probability n/1e6 in (0, 1).
func validPPM(n float64) error {
	if !(n > 0) || n >= 1e6 || math.IsNaN(n) {
		return fmt.Errorf("obdrel: ppm criterion must be in (0, 1e6), got %v", n)
	}
	return nil
}

// FailureProb returns P_fail(t) = 1 - R(t) at time t (hours).
func (a *Analyzer) FailureProb(t float64, m Method) (float64, error) {
	if err := validTime(t); err != nil {
		return 0, err
	}
	e, err := a.engine(m)
	if err != nil {
		return 0, err
	}
	return e.FailureProb(t)
}

// Reliability returns R(t) at time t (hours).
func (a *Analyzer) Reliability(t float64, m Method) (float64, error) {
	p, err := a.FailureProb(t, m)
	if err != nil {
		return 0, err
	}
	return 1 - p, nil
}

// LifetimePPM returns the n-faults-per-million-parts lifetime in
// hours — the time at which n out of a million chips have failed
// (Section V's evaluation criterion).
func (a *Analyzer) LifetimePPM(n float64, m Method) (float64, error) {
	if err := validPPM(n); err != nil {
		return 0, err
	}
	e, err := a.engine(m)
	if err != nil {
		return 0, err
	}
	return core.LifetimePPM(e, a.chip, n)
}

// LifetimeAtFailureProb returns the time at which the chip-ensemble
// failure probability reaches pTarget.
func (a *Analyzer) LifetimeAtFailureProb(pTarget float64, m Method) (float64, error) {
	e, err := a.engine(m)
	if err != nil {
		return 0, err
	}
	aMin, aMax := a.chip.AlphaRange()
	return core.LifetimeAt(e, pTarget, aMin*1e-15, aMax)
}

// tolerant returns (building on first use) the K-breakdown wrapper
// over the Monte-Carlo engine.
func (a *Analyzer) tolerant(k int) (core.Engine, error) {
	base, err := a.engine(MethodMC)
	if err != nil {
		return nil, err
	}
	return core.NewTolerant(base, k)
}

// FailureProbTolerant returns the probability that at least k devices
// have broken down by time t — the successive-breakdown failure
// criterion of Section III ("circuit may even survive to function
// after several HBDs"). k = 1 is the standard first-breakdown
// criterion. The estimate comes from the device-level Monte-Carlo
// samples.
func (a *Analyzer) FailureProbTolerant(t float64, k int) (float64, error) {
	if err := validTime(t); err != nil {
		return 0, err
	}
	e, err := a.tolerant(k)
	if err != nil {
		return 0, err
	}
	return e.FailureProb(t)
}

// LifetimePPMTolerant returns the n-per-million lifetime under a
// k-breakdown failure criterion.
func (a *Analyzer) LifetimePPMTolerant(n float64, k int) (float64, error) {
	if err := validPPM(n); err != nil {
		return 0, err
	}
	e, err := a.tolerant(k)
	if err != nil {
		return 0, err
	}
	return core.LifetimePPM(e, a.chip, n)
}

// SampleFailureTimes draws chip failure times from the device-level
// Monte-Carlo model — the Fig. 10 lifetime histogram.
func (a *Analyzer) SampleFailureTimes(count int) ([]float64, error) {
	e, err := a.engine(MethodMC)
	if err != nil {
		return nil, err
	}
	return e.(*core.MonteCarlo).SampleFailureTimes(count, a.cfg.Seed+101)
}

// BlockContribution is one block's share of the chip failure
// probability at a queried time.
type BlockContribution struct {
	Name string
	// FailureProb is the block's ensemble failure probability D_j(t);
	// Share is its fraction of the chip total.
	FailureProb, Share float64
}

// FailureContributions decomposes the chip failure probability at
// time t into per-block contributions (using the st_fast engine's
// union form), sorted by the design's block order. The block with the
// largest share is the chip's reliability limiter — typically the
// hotspot, but a large cool cache can win on sheer area.
func (a *Analyzer) FailureContributions(t float64) ([]BlockContribution, error) {
	if err := validTime(t); err != nil {
		return nil, err
	}
	e, err := a.engine(MethodStFast)
	if err != nil {
		return nil, err
	}
	fast := e.(*core.StFast)
	out := make([]BlockContribution, len(a.blockInfo))
	total := 0.0
	for j := range out {
		d, err := fast.BlockFailureProb(j, t)
		if err != nil {
			return nil, err
		}
		out[j] = BlockContribution{Name: a.blockInfo[j].Name, FailureProb: d}
		total += d
	}
	if total > 0 {
		for j := range out {
			out[j].Share = out[j].FailureProb / total
		}
	}
	return out, nil
}

// BurnInResult reports a burn-in screen: the fallout fraction, the
// per-block equivalent field hours consumed, and an engine answering
// post-screen field reliability queries.
type BurnInResult struct {
	// Fallout is the fraction of the population failing during the
	// screen (removed before shipment).
	Fallout float64
	// IntrinsicEqHours and ExtrinsicEqHours are the per-block
	// equivalent field hours of wear consumed by the screen.
	IntrinsicEqHours, ExtrinsicEqHours []float64

	engine *core.BurnIn
	chip   *core.Chip
}

// FailureProb returns the shipped-population field failure
// probability at time t after the screen.
func (r *BurnInResult) FailureProb(t float64) (float64, error) {
	return r.engine.FailureProb(t)
}

// LifetimePPM returns the shipped population's n-per-million field
// lifetime.
func (r *BurnInResult) LifetimePPM(n float64) (float64, error) {
	return core.LifetimePPM(r.engine, r.chip, n)
}

// BurnIn simulates screening the population for `hours` at an
// elevated condition (stressV volts, stressTC °C, uniform across the
// die in the burn-in oven) and returns the post-screen field
// reliability model. Stress exposure converts to per-block equivalent
// field hours through the characteristic-life ratios — separately for
// the intrinsic and (if configured) extrinsic populations, whose
// acceleration differs.
//
// Burn-in is only beneficial when Config.Extrinsic adds an
// infant-mortality population; for a purely intrinsic (wear-out)
// chip the screen just consumes life, and the result will honestly
// show a shorter field lifetime.
func (a *Analyzer) BurnIn(stressV, stressTC, hours float64) (*BurnInResult, error) {
	if !(hours >= 0) {
		return nil, fmt.Errorf("obdrel: negative burn-in duration %v", hours)
	}
	stress, err := a.tech.Characterize(stressTC, stressV)
	if err != nil {
		return nil, err
	}
	n := len(a.blockInfo)
	intShift := make([]float64, n)
	for j := 0; j < n; j++ {
		intShift[j] = hours * a.chip.Params[j].Alpha / stress.Alpha
	}
	var extShift []float64
	if a.cfg.Extrinsic != nil {
		stressExt, err := a.tech.CharacterizeExtrinsic(a.cfg.Extrinsic, stressTC, stressV)
		if err != nil {
			return nil, err
		}
		extShift = make([]float64, n)
		for j := 0; j < n; j++ {
			extShift[j] = hours * a.chip.Extrinsic[j].AlphaE / stressExt.AlphaE
		}
	}
	base, err := a.engine(MethodStFast)
	if err != nil {
		return nil, err
	}
	eng, err := core.NewBurnIn(base.(*core.StFast), intShift, extShift)
	if err != nil {
		return nil, err
	}
	return &BurnInResult{
		Fallout:          eng.Fallout,
		IntrinsicEqHours: intShift,
		ExtrinsicEqHours: extShift,
		engine:           eng,
		chip:             a.chip,
	}, nil
}

// FitWeibull estimates the two-parameter Weibull distribution best
// describing a sample of failure times (median-rank regression),
// returning the characteristic life (same unit as the input), the
// shape β, and the probability-plot R². Chip-level weakest-link
// failures are themselves near-Weibull, so fitting the times from
// SampleFailureTimes recovers an effective chip-level (α, β).
func FitWeibull(times []float64) (scale, shape, r2 float64, err error) {
	w, r2, err := stats.FitWeibull(times)
	if err != nil {
		return 0, 0, 0, err
	}
	return w.Scale, w.Shape, r2, nil
}

// Blocks reports every block's operating point and reliability
// parameters.
func (a *Analyzer) Blocks() []BlockInfo {
	return append([]BlockInfo(nil), a.blockInfo...)
}

// TemperatureField returns the solved die temperature map: cell
// temperatures in °C, row-major on an nx×ny grid.
func (a *Analyzer) TemperatureField() (nx, ny int, temps []float64) {
	return a.field.Nx, a.field.Ny, append([]float64(nil), a.field.Temps...)
}

// TempSpread returns the min, mean and max die temperature (°C).
func (a *Analyzer) TempSpread() (min, mean, max float64) {
	min, max = a.field.MinMax()
	return min, a.field.Mean(), max
}

// Design returns the analyzed design (public form).
func (a *Analyzer) Design() *Design { return fromInternalDesign(a.design) }

// Comparison is one row of a method-comparison table.
type Comparison struct {
	Method Method
	// LifetimeH is the lifetime estimate (hours) at the requested ppm
	// criterion; ErrVsMCPct its signed error against the MC
	// reference.
	LifetimeH  float64
	ErrVsMCPct float64
}

// CompareMethods evaluates the given methods at an n-per-million
// criterion and reports each lifetime and its error against
// MethodMC, which is added to the set if absent (Table III).
func (a *Analyzer) CompareMethods(ppm float64, methods []Method) ([]Comparison, error) {
	if len(methods) == 0 {
		return nil, errors.New("obdrel: no methods given")
	}
	ref, err := a.LifetimePPM(ppm, MethodMC)
	if err != nil {
		return nil, err
	}
	var out []Comparison
	for _, m := range methods {
		life, err := a.LifetimePPM(ppm, m)
		if err != nil {
			return nil, fmt.Errorf("obdrel: method %v: %w", m, err)
		}
		out = append(out, Comparison{
			Method:     m,
			LifetimeH:  life,
			ErrVsMCPct: (life - ref) / ref * 100,
		})
	}
	return out, nil
}

// ReliabilityCurve samples P_fail at count log-spaced times between
// tLo and tHi (hours), for plotting failure-rate curves (Fig. 10).
func (a *Analyzer) ReliabilityCurve(tLo, tHi float64, count int, m Method) (times, pFail []float64, err error) {
	if !(tLo > 0) || !(tHi > tLo) || count < 2 {
		return nil, nil, fmt.Errorf("obdrel: invalid curve request [%v, %v] × %d", tLo, tHi, count)
	}
	e, err := a.engine(m)
	if err != nil {
		return nil, nil, err
	}
	step := math.Log(tHi/tLo) / float64(count-1)
	for i := 0; i < count; i++ {
		t := tLo * math.Exp(float64(i)*step)
		p, err := e.FailureProb(t)
		if err != nil {
			return nil, nil, err
		}
		times = append(times, t)
		pFail = append(pFail, p)
	}
	return times, pFail, nil
}
