package obdrel_test

import (
	"fmt"
	"sync"
	"testing"

	"obdrel"
)

// TestConcurrentQueries exercises one Analyzer from many goroutines
// simultaneously — lazy engine construction must be race-free and all
// goroutines must see identical answers. Run with -race to verify the
// synchronization.
func TestConcurrentQueries(t *testing.T) {
	an, err := obdrel.NewAnalyzer(obdrel.C1(), fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	methods := []obdrel.Method{
		obdrel.MethodStFast, obdrel.MethodHybrid, obdrel.MethodGuard, obdrel.MethodStMC,
	}
	const workers = 16
	results := make([][]float64, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for _, m := range methods {
				life, err := an.LifetimePPM(10, m)
				if err != nil {
					t.Errorf("worker %d method %v: %v", w, m, err)
					return
				}
				results[w] = append(results[w], life)
			}
		}(w)
	}
	wg.Wait()
	for w := 1; w < workers; w++ {
		if len(results[w]) != len(results[0]) {
			t.Fatalf("worker %d returned %d results", w, len(results[w]))
		}
		for i := range results[w] {
			if results[w][i] != results[0][i] {
				t.Fatalf("worker %d result %d differs: %v vs %v",
					w, i, results[w][i], results[0][i])
			}
		}
	}
}

// TestConcurrentQueriesMC drives the Monte-Carlo engine — whose query
// path now fans out over an internal worker pool — from many
// goroutines at once. Under -race this checks that nested parallelism
// (concurrent FailureProb calls, each spawning reduction workers) is
// clean and that all callers see identical answers.
func TestConcurrentQueriesMC(t *testing.T) {
	cfg := fastConfig()
	cfg.MCSamples = 150
	cfg.Workers = 4
	an, err := obdrel.NewAnalyzer(obdrel.C1(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	const workers = 8
	results := make([]float64, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			life, err := an.LifetimePPM(10, obdrel.MethodMC)
			if err != nil {
				t.Errorf("worker %d: %v", w, err)
				return
			}
			results[w] = life
		}(w)
	}
	wg.Wait()
	for w := 1; w < workers; w++ {
		if results[w] != results[0] {
			t.Fatalf("worker %d MC lifetime differs: %v vs %v", w, results[w], results[0])
		}
	}
}

// TestWorkersEquivalence pins the Config.Workers contract end to end:
// Workers:1 runs the exact serial legacy paths, and any Workers ≥ 2
// must agree with it to the documented tolerances. The thermal stage
// switches ordering (lexicographic vs red-black, both converged to the
// same tolerance) and the MC reduction reassociates — everything else
// is bit-identical — so the analyzer-level lifetimes agree to ≪ 0.01%.
func TestWorkersEquivalence(t *testing.T) {
	lifetimes := func(workers int) map[obdrel.Method]float64 {
		cfg := fastConfig()
		cfg.MCSamples = 200
		cfg.Workers = workers
		// Isolate runs from the shared PCA and stage caches — this test
		// must rebuild every substrate stage per worker count, or the
		// serial/parallel comparison compares one build with itself.
		cfg.DisablePCACache = true
		cfg.DisableStageCache = true
		an, err := obdrel.NewAnalyzer(obdrel.C1(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		out := map[obdrel.Method]float64{}
		for _, m := range []obdrel.Method{
			obdrel.MethodStFast, obdrel.MethodStMC, obdrel.MethodHybrid,
			obdrel.MethodGuard, obdrel.MethodMC,
		} {
			life, err := an.LifetimePPM(10, m)
			if err != nil {
				t.Fatalf("workers=%d method %v: %v", workers, m, err)
			}
			out[m] = life
		}
		return out
	}
	serial := lifetimes(1)
	parallel := lifetimes(4)
	again := lifetimes(7)
	for m, ref := range serial {
		if !approx(parallel[m], ref, 1e-4) {
			t.Errorf("method %v: workers=4 %v vs serial %v", m, parallel[m], ref)
		}
		if parallel[m] != again[m] {
			t.Errorf("method %v: workers=4 %v != workers=7 %v (parallel plan not deterministic)",
				m, parallel[m], again[m])
		}
	}
}

// TestConcurrentMixedMethodQueries pins the README's "safe for
// concurrent queries" claim under the serving layer's real traffic
// shape: one Analyzer answering lifetime, failure-probability,
// contribution, and curve queries across several methods at once,
// while a MaxVDD voltage search (which builds sibling analyzers from
// the same config) runs alongside. Run with -race; every repeated
// query must also return the identical answer.
func TestConcurrentMixedMethodQueries(t *testing.T) {
	cfg := fastConfig()
	cfg.MCSamples = 150
	an, err := obdrel.NewAnalyzer(obdrel.C1(), cfg)
	if err != nil {
		t.Fatal(err)
	}

	refLife, err := an.LifetimePPM(10, obdrel.MethodHybrid)
	if err != nil {
		t.Fatal(err)
	}
	refProb, err := an.FailureProb(1e5, obdrel.MethodStFast)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errCh := make(chan error, 64)
	const loops = 4

	// Lifetime queries across four engines at once.
	for _, m := range []obdrel.Method{
		obdrel.MethodStFast, obdrel.MethodHybrid, obdrel.MethodGuard, obdrel.MethodMC,
	} {
		wg.Add(1)
		go func(m obdrel.Method) {
			defer wg.Done()
			for i := 0; i < loops; i++ {
				if _, err := an.LifetimePPM(10, m); err != nil {
					errCh <- err
					return
				}
			}
		}(m)
	}
	// Failure-probability + repeatability check against the
	// single-threaded reference answers.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < loops; i++ {
			life, err := an.LifetimePPM(10, obdrel.MethodHybrid)
			if err != nil {
				errCh <- err
				return
			}
			if life != refLife {
				errCh <- fmt.Errorf("hybrid lifetime drifted under concurrency: %v vs %v", life, refLife)
				return
			}
			p, err := an.FailureProb(1e5, obdrel.MethodStFast)
			if err != nil {
				errCh <- err
				return
			}
			if p != refProb {
				errCh <- fmt.Errorf("st_fast failure prob drifted under concurrency: %v vs %v", p, refProb)
				return
			}
		}
	}()
	// Block decomposition and curve sampling exercise engine
	// accessors beyond plain FailureProb.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < loops; i++ {
			if _, err := an.FailureContributions(1e5); err != nil {
				errCh <- err
				return
			}
			if _, _, err := an.ReliabilityCurve(1e3, 1e6, 8, obdrel.MethodHybrid); err != nil {
				errCh <- err
				return
			}
		}
	}()
	// A voltage search builds sibling analyzers from the same config
	// concurrently — the registry-backed /v1/maxvdd path in miniature.
	wg.Add(1)
	go func() {
		defer wg.Done()
		v, err := obdrel.MaxVDD(obdrel.C1(), cfg, obdrel.MethodHybrid, 10, 1000, 1.0, 1.3, 0.1)
		if err != nil {
			errCh <- err
			return
		}
		if !(v >= 1.0 && v <= 1.3) {
			errCh <- fmt.Errorf("MaxVDD out of bracket: %v", v)
		}
	}()

	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
}
