package obdrel_test

import (
	"sync"
	"testing"

	"obdrel"
)

// TestConcurrentQueries exercises one Analyzer from many goroutines
// simultaneously — lazy engine construction must be race-free and all
// goroutines must see identical answers. Run with -race to verify the
// synchronization.
func TestConcurrentQueries(t *testing.T) {
	an, err := obdrel.NewAnalyzer(obdrel.C1(), fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	methods := []obdrel.Method{
		obdrel.MethodStFast, obdrel.MethodHybrid, obdrel.MethodGuard, obdrel.MethodStMC,
	}
	const workers = 16
	results := make([][]float64, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for _, m := range methods {
				life, err := an.LifetimePPM(10, m)
				if err != nil {
					t.Errorf("worker %d method %v: %v", w, m, err)
					return
				}
				results[w] = append(results[w], life)
			}
		}(w)
	}
	wg.Wait()
	for w := 1; w < workers; w++ {
		if len(results[w]) != len(results[0]) {
			t.Fatalf("worker %d returned %d results", w, len(results[w]))
		}
		for i := range results[w] {
			if results[w][i] != results[0][i] {
				t.Fatalf("worker %d result %d differs: %v vs %v",
					w, i, results[w][i], results[0][i])
			}
		}
	}
}
