package obdrel_test

import (
	"sync"
	"testing"

	"obdrel"
)

// TestConcurrentQueries exercises one Analyzer from many goroutines
// simultaneously — lazy engine construction must be race-free and all
// goroutines must see identical answers. Run with -race to verify the
// synchronization.
func TestConcurrentQueries(t *testing.T) {
	an, err := obdrel.NewAnalyzer(obdrel.C1(), fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	methods := []obdrel.Method{
		obdrel.MethodStFast, obdrel.MethodHybrid, obdrel.MethodGuard, obdrel.MethodStMC,
	}
	const workers = 16
	results := make([][]float64, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for _, m := range methods {
				life, err := an.LifetimePPM(10, m)
				if err != nil {
					t.Errorf("worker %d method %v: %v", w, m, err)
					return
				}
				results[w] = append(results[w], life)
			}
		}(w)
	}
	wg.Wait()
	for w := 1; w < workers; w++ {
		if len(results[w]) != len(results[0]) {
			t.Fatalf("worker %d returned %d results", w, len(results[w]))
		}
		for i := range results[w] {
			if results[w][i] != results[0][i] {
				t.Fatalf("worker %d result %d differs: %v vs %v",
					w, i, results[w][i], results[0][i])
			}
		}
	}
}

// TestConcurrentQueriesMC drives the Monte-Carlo engine — whose query
// path now fans out over an internal worker pool — from many
// goroutines at once. Under -race this checks that nested parallelism
// (concurrent FailureProb calls, each spawning reduction workers) is
// clean and that all callers see identical answers.
func TestConcurrentQueriesMC(t *testing.T) {
	cfg := fastConfig()
	cfg.MCSamples = 150
	cfg.Workers = 4
	an, err := obdrel.NewAnalyzer(obdrel.C1(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	const workers = 8
	results := make([]float64, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			life, err := an.LifetimePPM(10, obdrel.MethodMC)
			if err != nil {
				t.Errorf("worker %d: %v", w, err)
				return
			}
			results[w] = life
		}(w)
	}
	wg.Wait()
	for w := 1; w < workers; w++ {
		if results[w] != results[0] {
			t.Fatalf("worker %d MC lifetime differs: %v vs %v", w, results[w], results[0])
		}
	}
}

// TestWorkersEquivalence pins the Config.Workers contract end to end:
// Workers:1 runs the exact serial legacy paths, and any Workers ≥ 2
// must agree with it to the documented tolerances. The thermal stage
// switches ordering (lexicographic vs red-black, both converged to the
// same tolerance) and the MC reduction reassociates — everything else
// is bit-identical — so the analyzer-level lifetimes agree to ≪ 0.01%.
func TestWorkersEquivalence(t *testing.T) {
	lifetimes := func(workers int) map[obdrel.Method]float64 {
		cfg := fastConfig()
		cfg.MCSamples = 200
		cfg.Workers = workers
		cfg.DisablePCACache = true // isolate runs from the shared cache
		an, err := obdrel.NewAnalyzer(obdrel.C1(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		out := map[obdrel.Method]float64{}
		for _, m := range []obdrel.Method{
			obdrel.MethodStFast, obdrel.MethodStMC, obdrel.MethodHybrid,
			obdrel.MethodGuard, obdrel.MethodMC,
		} {
			life, err := an.LifetimePPM(10, m)
			if err != nil {
				t.Fatalf("workers=%d method %v: %v", workers, m, err)
			}
			out[m] = life
		}
		return out
	}
	serial := lifetimes(1)
	parallel := lifetimes(4)
	again := lifetimes(7)
	for m, ref := range serial {
		if !approx(parallel[m], ref, 1e-4) {
			t.Errorf("method %v: workers=4 %v vs serial %v", m, parallel[m], ref)
		}
		if parallel[m] != again[m] {
			t.Errorf("method %v: workers=4 %v != workers=7 %v (parallel plan not deterministic)",
				m, parallel[m], again[m])
		}
	}
}
