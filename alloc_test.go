package obdrel_test

import (
	"testing"

	"obdrel"
)

// TestWarmQueryZeroAlloc is the zero-allocation gate for the warm
// steady-state query path: once an analyzer's engine is built, the
// st_fast and hybrid lifetime/failure-probability lookups must not
// allocate. This is what lets the µs-latency monitoring loop run at
// loadgen rates without GC pressure; cmd/bench re-measures it and the
// report validator gates on it.
func TestWarmQueryZeroAlloc(t *testing.T) {
	an, err := obdrel.NewAnalyzer(obdrel.C1(), fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []obdrel.Method{obdrel.MethodStFast, obdrel.MethodHybrid} {
		m := m
		// Warm the engine (first call builds it).
		if _, err := an.FailureProb(1e4, m); err != nil {
			t.Fatal(err)
		}
		t.Run(m.String()+"/FailureProb", func(t *testing.T) {
			allocs := testing.AllocsPerRun(200, func() {
				if _, err := an.FailureProb(1e4, m); err != nil {
					t.Fatal(err)
				}
			})
			if allocs != 0 {
				t.Errorf("warm FailureProb(%v) allocates %v per op, want 0", m, allocs)
			}
		})
		t.Run(m.String()+"/LifetimePPM", func(t *testing.T) {
			allocs := testing.AllocsPerRun(200, func() {
				if _, err := an.LifetimePPM(10, m); err != nil {
					t.Fatal(err)
				}
			})
			if allocs != 0 {
				t.Errorf("warm LifetimePPM(%v) allocates %v per op, want 0", m, allocs)
			}
		})
	}
}
