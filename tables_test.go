package obdrel_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"obdrel"
)

// tableConfig returns a fast config with the hybrid tables spilled to
// (and served from) dir. Small tables keep the fill cheap; the stage
// cache is disabled so each analyzer construction is independent.
func tableConfig(dir string) *obdrel.Config {
	cfg := fastConfig()
	cfg.HybridNL, cfg.HybridNB = 24, 24
	cfg.TableDir = dir
	cfg.DisableStageCache = true
	cfg.DisablePCACache = true
	return cfg
}

func hybridLifetime(t *testing.T, d *obdrel.Design, cfg *obdrel.Config) float64 {
	t.Helper()
	an, err := obdrel.NewAnalyzer(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	life, err := an.LifetimePPM(10, obdrel.MethodHybrid)
	if err != nil {
		t.Fatal(err)
	}
	return life
}

// TestTableDirRoundTrip is the end-to-end contract of the table spill:
// the first build writes a file, the second build loads it, and the
// file-served engine answers bit-identically to the freshly built one.
func TestTableDirRoundTrip(t *testing.T) {
	dir := t.TempDir()
	d := obdrel.C1()

	loads0, saves0, rejects0 := obdrel.TableFileStats()

	fresh := hybridLifetime(t, d, tableConfig("")) // no spill: reference
	spilled := hybridLifetime(t, d, tableConfig(dir))
	if spilled != fresh {
		t.Errorf("spill-path lifetime %v != in-memory %v", spilled, fresh)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || !strings.HasSuffix(entries[0].Name(), ".obdt") {
		t.Fatalf("table dir after first build: %v, want one .obdt file", entries)
	}

	loaded := hybridLifetime(t, d, tableConfig(dir))
	if loaded != fresh {
		t.Errorf("file-served lifetime %v != in-memory %v", loaded, fresh)
	}

	loads1, saves1, rejects1 := obdrel.TableFileStats()
	if saves1-saves0 != 1 {
		t.Errorf("saves advanced by %d, want 1", saves1-saves0)
	}
	if loads1-loads0 < 1 {
		t.Errorf("loads advanced by %d, want ≥ 1", loads1-loads0)
	}
	if rejects1 != rejects0 {
		t.Errorf("rejects advanced by %d, want 0", rejects1-rejects0)
	}
}

// TestTableDirRejectsStaleAndCorrupt verifies the two never-serve
// guarantees: a file written under a different model configuration
// (fingerprint mismatch) and a bit-flipped file (checksum mismatch)
// are both rejected and rebuilt, never served.
func TestTableDirRejectsStaleAndCorrupt(t *testing.T) {
	d := obdrel.C1()

	t.Run("stale key", func(t *testing.T) {
		dir := t.TempDir()
		// Build under the default VDD, then under VDD=1.1: two files,
		// two keys (VDD reaches the chip fingerprint through the
		// weibull stage).
		hybridLifetime(t, d, tableConfig(dir))
		entries, err := os.ReadDir(dir)
		if err != nil || len(entries) != 1 {
			t.Fatalf("want one table file, got %v (%v)", entries, err)
		}
		oldPath := filepath.Join(dir, entries[0].Name())

		cfgV11 := func() *obdrel.Config {
			c := tableConfig(dir)
			c.VDD = 1.1
			return c
		}
		want := hybridLifetime(t, d, cfgV11())
		entries, err = os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		var freshPath string
		for _, e := range entries {
			if p := filepath.Join(dir, e.Name()); p != oldPath {
				freshPath = p
			}
		}
		if freshPath == "" {
			t.Fatal("second config produced no new table file — key did not change with VDD")
		}
		// Clobber the VDD=1.1 file with the default-VDD payload: the
		// filename now promises one key, the embedded key is another —
		// a stale spill directory after a model change.
		stale, err := os.ReadFile(oldPath)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(freshPath, stale, 0o644); err != nil {
			t.Fatal(err)
		}
		_, _, rejects0 := obdrel.TableFileStats()
		got := hybridLifetime(t, d, cfgV11())
		if got != want {
			t.Errorf("post-reject rebuild lifetime %v, want %v", got, want)
		}
		_, _, rejects1 := obdrel.TableFileStats()
		if rejects1-rejects0 < 1 {
			t.Errorf("rejects advanced by %d, want ≥ 1", rejects1-rejects0)
		}
	})

	t.Run("corrupt payload", func(t *testing.T) {
		dir := t.TempDir()
		want := hybridLifetime(t, d, tableConfig(dir))
		entries, err := os.ReadDir(dir)
		if err != nil || len(entries) != 1 {
			t.Fatalf("want one table file, got %v (%v)", entries, err)
		}
		path := filepath.Join(dir, entries[0].Name())
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		raw[len(raw)-5] ^= 0xff
		if err := os.WriteFile(path, raw, 0o644); err != nil {
			t.Fatal(err)
		}
		_, _, rejects0 := obdrel.TableFileStats()
		got := hybridLifetime(t, d, tableConfig(dir))
		if got != want {
			t.Errorf("post-corruption rebuild lifetime %v, want %v", got, want)
		}
		_, _, rejects1 := obdrel.TableFileStats()
		if rejects1-rejects0 < 1 {
			t.Errorf("rejects advanced by %d, want ≥ 1", rejects1-rejects0)
		}
	})
}

// TestTableServedZeroAlloc extends the zero-allocation gate to the
// mmap-served hybrid engine: queries through tables aliasing a shared
// read-only mapping must be exactly as allocation-free as the
// in-memory ones.
func TestTableServedZeroAlloc(t *testing.T) {
	dir := t.TempDir()
	d := obdrel.C1()
	hybridLifetime(t, d, tableConfig(dir)) // spill

	an, err := obdrel.NewAnalyzer(d, tableConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := an.FailureProb(1e4, obdrel.MethodHybrid); err != nil {
		t.Fatal(err) // warm: builds the engine from the file
	}
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := an.FailureProb(1e4, obdrel.MethodHybrid); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("warm file-served FailureProb allocates %v per op, want 0", allocs)
	}
	allocs = testing.AllocsPerRun(200, func() {
		if _, err := an.LifetimePPM(10, obdrel.MethodHybrid); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("warm file-served LifetimePPM allocates %v per op, want 0", allocs)
	}
}
