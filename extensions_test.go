package obdrel_test

import (
	"math"
	"testing"

	"obdrel"
	"obdrel/internal/grid"
)

func TestQuadTreeConfig(t *testing.T) {
	cfg := fastConfig()
	cfg.QuadTree = true
	cfg.QuadTreeLevels = 2
	an, err := obdrel.NewAnalyzer(obdrel.C1(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Full accuracy story must hold under the quad-tree structure.
	rows, err := an.CompareMethods(10, []obdrel.Method{obdrel.MethodStFast, obdrel.MethodGuard})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		switch r.Method {
		case obdrel.MethodStFast:
			if math.Abs(r.ErrVsMCPct) > 6 {
				t.Errorf("quad-tree st_fast error %.2f%%", r.ErrVsMCPct)
			}
		case obdrel.MethodGuard:
			if r.ErrVsMCPct > -25 {
				t.Errorf("quad-tree guard error %.2f%%, want pessimistic", r.ErrVsMCPct)
			}
		}
	}
}

func TestWaferPatternConfig(t *testing.T) {
	mk := func(dieX, bowl float64) *obdrel.Analyzer {
		cfg := fastConfig()
		cfg.WaferPattern = &grid.WaferPattern{DieX: dieX, DieSpan: 0.25, Bowl: bowl}
		an, err := obdrel.NewAnalyzer(obdrel.C1(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		return an
	}
	thick := mk(0.9, 0.04) // edge die under a bowl: thicker oxide
	thin := mk(0.9, -0.04) // inverted bowl: thinner oxide
	lThick, err := thick.LifetimePPM(10, obdrel.MethodStFast)
	if err != nil {
		t.Fatal(err)
	}
	lThin, err := thin.LifetimePPM(10, obdrel.MethodStFast)
	if err != nil {
		t.Fatal(err)
	}
	if !(lThick > lThin) {
		t.Errorf("thick-die lifetime %v not above thin-die %v", lThick, lThin)
	}
	// And st_fast must still track MC with the pattern active.
	rows, err := thin.CompareMethods(10, []obdrel.Method{obdrel.MethodStFast})
	if err != nil {
		t.Fatal(err)
	}
	if e := math.Abs(rows[0].ErrVsMCPct); e > 6 {
		t.Errorf("pattern st_fast error %.2f%%", e)
	}
}

func TestBreakdownToleranceFacade(t *testing.T) {
	an, err := obdrel.NewAnalyzer(obdrel.C1(), fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	base, err := an.LifetimePPM(10, obdrel.MethodMC)
	if err != nil {
		t.Fatal(err)
	}
	k1, err := an.LifetimePPMTolerant(10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(k1, base, 1e-9) {
		t.Errorf("k=1 tolerant lifetime %v differs from MC %v", k1, base)
	}
	k3, err := an.LifetimePPMTolerant(10, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !(k3 > 5*base) {
		t.Errorf("k=3 lifetime %v not well beyond base %v", k3, base)
	}
	p1, err := an.FailureProbTolerant(base, 1)
	if err != nil {
		t.Fatal(err)
	}
	p3, err := an.FailureProbTolerant(base, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !(p3 < p1) {
		t.Errorf("tolerance did not reduce failure probability: %v vs %v", p3, p1)
	}
	if _, err := an.LifetimePPMTolerant(10, 0); err == nil {
		t.Error("k=0 should error")
	}
}

func TestFitWeibullFacade(t *testing.T) {
	an, err := obdrel.NewAnalyzer(obdrel.C1(), fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	times, err := an.SampleFailureTimes(3000)
	if err != nil {
		t.Fatal(err)
	}
	scale, shape, r2, err := obdrel.FitWeibull(times)
	if err != nil {
		t.Fatal(err)
	}
	if !(scale > 0) || !(shape > 0.5 && shape < 2.5) {
		t.Errorf("implausible chip-level Weibull: scale %v shape %v", scale, shape)
	}
	if r2 < 0.95 {
		t.Errorf("chip failure population fit R² = %v", r2)
	}
	if _, _, _, err := obdrel.FitWeibull(nil); err == nil {
		t.Error("empty sample should error")
	}
}
