package obdrel_test

import (
	"math"
	"testing"

	"obdrel"
)

func TestFailureContributions(t *testing.T) {
	an, err := obdrel.NewAnalyzer(obdrel.C1(), fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	t10, err := an.LifetimePPM(10, obdrel.MethodStFast)
	if err != nil {
		t.Fatal(err)
	}
	contribs, err := an.FailureContributions(t10)
	if err != nil {
		t.Fatal(err)
	}
	if len(contribs) != len(an.Blocks()) {
		t.Fatalf("got %d contributions for %d blocks", len(contribs), len(an.Blocks()))
	}
	shareSum, probSum := 0.0, 0.0
	for _, c := range contribs {
		if c.FailureProb < 0 || c.Share < 0 {
			t.Fatalf("negative contribution: %+v", c)
		}
		shareSum += c.Share
		probSum += c.FailureProb
	}
	if !approx(shareSum, 1, 1e-9) {
		t.Errorf("shares sum to %v", shareSum)
	}
	// The union-form block probabilities sum to the chip failure
	// probability the engine reports.
	pChip, err := an.FailureProb(t10, obdrel.MethodStFast)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(probSum, pChip, 1e-9) {
		t.Errorf("block probabilities sum to %v, chip reports %v", probSum, pChip)
	}
	// And at the 10-ppm time that total is 1e-5.
	if !approx(pChip, 1e-5, 1e-3) {
		t.Errorf("chip failure probability at t10 = %v", pChip)
	}
	// The hottest block contributes more per device than the coolest.
	blocks := an.Blocks()
	hot, cold := 0, 0
	for i := range blocks {
		if blocks[i].MaxTempC > blocks[hot].MaxTempC {
			hot = i
		}
		if blocks[i].MaxTempC < blocks[cold].MaxTempC {
			cold = i
		}
	}
	perDevHot := contribs[hot].FailureProb / float64(blocks[hot].Devices)
	perDevCold := contribs[cold].FailureProb / float64(blocks[cold].Devices)
	if !(perDevHot > perDevCold) {
		t.Errorf("hot block per-device risk %v not above cold %v", perDevHot, perDevCold)
	}
	if _, err := an.FailureContributions(0); err != nil {
		t.Errorf("t=0 contributions should not error: %v", err)
	}
}

func TestFailureContributionsZeroTime(t *testing.T) {
	an, err := obdrel.NewAnalyzer(obdrel.C1(), fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	contribs, err := an.FailureContributions(0)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range contribs {
		if c.FailureProb != 0 || math.IsNaN(c.Share) {
			t.Fatalf("t=0 contribution %+v", c)
		}
	}
}
