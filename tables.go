package obdrel

import (
	"errors"
	"fmt"
	"io/fs"
	"path/filepath"
	"sync"
	"sync/atomic"

	"obdrel/internal/core"
	"obdrel/internal/tablefile"
)

// This file is the analyzer half of the mmap-ready hybrid tables (see
// internal/tablefile for the on-disk format): when Config.TableDir is
// set, the hybrid engine's per-block lookup tables are spilled on
// first build and served from a shared read-only mapping on every
// later build — across analyzer instances and across daemon restarts.
//
// Safety rests on the key: a table file is named by, and embeds,
// fp16("hybridtable", chip-stage fingerprint, table geometry). The
// chip-stage fingerprint transitively covers every model knob the
// tables depend on (design, power, thermal, variation, technology,
// voltage), and the geometry segment covers the table resolution and
// fill accuracy. A file whose embedded key does not match what the
// current configuration demands — stale after a model change, copied
// from elsewhere, or truncated/corrupted (checksum) — is rejected and
// rebuilt in place; it is never served.

// hybridTableKey returns the table-file key for this analyzer's
// hybrid tables, canonicalized exactly as core.NewHybrid resolves its
// defaults so an explicit 100×100 and the zero-value default collide.
func (a *Analyzer) hybridTableKey() string {
	nl, nb := a.cfg.HybridNL, a.cfg.HybridNB
	if nl <= 1 {
		nl = 100
	}
	if nb <= 1 {
		nb = 100
	}
	l0 := a.cfg.L0
	if l0 <= 0 {
		l0 = core.DefaultL0
	}
	return fp16("hybridtable", a.chipKey, fmt.Sprintf("nl=%d|nb=%d|l0=%d", nl, nb, l0))
}

// tableStats counts table-file traffic process-wide; obdreld surfaces
// them as metrics so operators can see whether the spill directory is
// actually serving (loads), filling (saves), or fighting stale files
// (rejects).
var tableStats struct{ loads, saves, rejects atomic.Uint64 }

// TableFileStats reports the process-wide hybrid table-file counters:
// engines served from a file, tables spilled to a file, and files
// rejected (key mismatch or corruption).
func TableFileStats() (loads, saves, rejects uint64) {
	return tableStats.loads.Load(), tableStats.saves.Load(), tableStats.rejects.Load()
}

// tableFiles caches open mappings by path so every analyzer (and
// every request) serving the same tables shares one mapping. Entries
// live for the process lifetime: engines alias the mapped memory, so
// an entry can never be unmapped while any engine built from it might
// still be queried.
var tableFiles struct {
	mu sync.Mutex
	m  map[string]*tablefile.File
}

// openTableFile returns a verified mapping of path whose embedded key
// equals key, from the process cache when possible. Corrupt files and
// key mismatches count as rejects and return an error; a missing file
// returns fs.ErrNotExist uncounted (first build, not a fault).
func openTableFile(path, key string) (*tablefile.File, error) {
	tableFiles.mu.Lock()
	defer tableFiles.mu.Unlock()
	if f, ok := tableFiles.m[path]; ok {
		if f.Key == key {
			return f, nil
		}
		// The file was rewritten under a new key since this mapping was
		// cached; the old mapping stays alive for its engines but no
		// longer serves this path.
		delete(tableFiles.m, path)
	}
	f, err := tablefile.Open(path)
	if err != nil {
		if !errors.Is(err, fs.ErrNotExist) {
			tableStats.rejects.Add(1)
		}
		return nil, err
	}
	if f.Key != key {
		tableStats.rejects.Add(1)
		f.Close()
		return nil, fmt.Errorf("obdrel: table file %s embeds key %s, want %s", path, f.Key, key)
	}
	if tableFiles.m == nil {
		tableFiles.m = make(map[string]*tablefile.File)
	}
	tableFiles.m[path] = f
	return f, nil
}

// hybridEngine builds the hybrid engine, serving the tables from
// Config.TableDir when set: load a verified file if one exists, else
// fill the tables and spill them for the next process. Called with
// a.mu held (from engine); the file-level lock is tableFiles.mu.
func (a *Analyzer) hybridEngine() (core.Engine, error) {
	opts := core.HybridOptions{
		NL: a.cfg.HybridNL, NB: a.cfg.HybridNB, L0: a.cfg.L0,
		Workers: a.cfg.Workers,
	}
	if a.cfg.TableDir == "" {
		e, err := core.NewHybrid(a.chip, opts)
		if err != nil {
			return nil, err
		}
		return e, nil
	}
	key := a.hybridTableKey()
	path := filepath.Join(a.cfg.TableDir, key+".obdt")
	if f, err := openTableFile(path, key); err == nil {
		e, err := core.NewHybridFromTables(a.chip, f.Ls(), f.Bs(), f.Blocks())
		if err == nil {
			tableStats.loads.Add(1)
			return e, nil
		}
		// Key matched but the shape does not fit this chip — only
		// possible for a forged file, since the key covers the
		// geometry. Treat as a reject and rebuild.
		tableStats.rejects.Add(1)
	}
	e, err := core.NewHybrid(a.chip, opts)
	if err != nil {
		return nil, err
	}
	ls, bs, blocks := e.TableData()
	// A failed spill (read-only dir, disk full) is not an engine
	// failure: the tables are already in memory and every query works;
	// only the next process loses the warm start.
	if werr := tablefile.Write(path, key, ls, bs, blocks); werr == nil {
		tableStats.saves.Add(1)
	}
	return e, nil
}
