package obdrel

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"

	"obdrel/internal/grid"
	"obdrel/internal/obd"
	"obdrel/internal/pipeline"
	"obdrel/internal/power"
	"obdrel/internal/thermal"
)

// quickConfig keeps white-box stage tests fast; mirrors the external
// suite's fastConfig.
func quickConfig() *Config {
	cfg := DefaultConfig()
	cfg.GridNx, cfg.GridNy = 8, 8
	cfg.MCSamples = 600
	cfg.StMCSamples = 3000
	return cfg
}

// TestStageFingerprintSensitivity walks EVERY Config field and asserts
// that perturbing it changes exactly the stage keys of the stages that
// depend on it — and the whole-config fingerprint iff the field is a
// model knob. The reflection guard at the bottom fails the test when a
// new Config field is added without declaring its stage footprint, so
// the dependency table can never silently go stale.
func TestStageFingerprintSensitivity(t *testing.T) {
	d := C1()
	base := DefaultConfig()
	// Make the quad-tree shape knobs live so their cases are not
	// vacuous (with QuadTree=false they resolve to zeros).
	base.QuadTree = true

	// Shorthands for the stage sets a knob is allowed to touch.
	substrate := []string{StageCovariance, StagePCA, StageBLOD, StageChip}
	voltagePath := []string{StageThermal, StageWeibull, StageChip}

	cases := []struct {
		field    string
		mutate   func(*Config)
		stages   []string // stage keys that must change (others must not)
		fpChange bool     // Config.Fingerprint must change
	}{
		{"VDD", func(c *Config) { c.VDD += 0.1 }, voltagePath, true},
		{"SigmaRatio", func(c *Config) { c.SigmaRatio *= 1.5 }, substrate, true},
		{"FracGlobal", func(c *Config) { c.FracGlobal += 0.1 }, substrate, true},
		{"FracSpatial", func(c *Config) { c.FracSpatial += 0.1 }, substrate, true},
		// σ_ε never enters the correlated-component covariance, so the
		// PCA is shared across FracIndependent sweeps (Sec. III-B).
		{"FracIndependent", func(c *Config) { c.FracIndependent += 0.1 },
			[]string{StageCovariance, StageBLOD, StageChip}, true},
		{"RhoDist", func(c *Config) { c.RhoDist *= 2 }, substrate, true},
		{"GridNx", func(c *Config) { c.GridNx += 2 }, substrate, true},
		{"GridNy", func(c *Config) { c.GridNy += 2 }, substrate, true},
		{"QuadTree", func(c *Config) { c.QuadTree = false }, substrate, true},
		{"QuadTreeLevels", func(c *Config) { c.QuadTreeLevels = 5 }, substrate, true},
		{"QuadTreeDecay", func(c *Config) { c.QuadTreeDecay = 0.7 }, substrate, true},
		// The wafer pattern is a deterministic mean shift: it moves the
		// covariance model's identity but not the eigendecomposition.
		{"WaferPattern", func(c *Config) {
			c.WaferPattern = &grid.WaferPattern{DieX: 1, DieY: 2, DieSpan: 20, Bowl: 0.4}
		}, []string{StageCovariance, StageBLOD, StageChip}, true},
		{"PCAKeepFraction", func(c *Config) { c.PCAKeepFraction = 0.5 },
			[]string{StagePCA}, true},
		{"Tech", func(c *Config) {
			tc := *obd.DefaultTech()
			tc.U0 *= 1.1
			c.Tech = &tc
		}, []string{StageCovariance, StagePCA, StageBLOD, StageWeibull, StageChip}, true},
		{"Extrinsic", func(c *Config) {
			e := *obd.DefaultExtrinsic()
			e.DefectFraction = 0.02
			c.Extrinsic = &e
		}, []string{StageWeibull, StageChip}, true},
		{"Power", func(c *Config) {
			pm := *power.Default()
			pm.VNom *= 1.1
			c.Power = &pm
		}, []string{StagePowerMap, StageThermal, StageWeibull, StageChip}, true},
		{"Thermal", func(c *Config) {
			ts := *thermal.DefaultSolver()
			ts.TAmbient += 10
			c.Thermal = &ts
		}, voltagePath, true},
		{"UseBlockMaxTemp", func(c *Config) { c.UseBlockMaxTemp = !c.UseBlockMaxTemp },
			[]string{StageWeibull, StageChip}, true},
		// Pinning the thermal voltage moves the thermal key (and what
		// depends on it) — that is exactly its purpose: the key then
		// stops moving with VDD.
		{"PinThermalVDD", func(c *Config) { c.PinThermalVDD = 1.1 }, voltagePath, true},

		// Engine knobs configure how questions are answered, not what
		// the chip is: no stage key moves, but the analyzer identity
		// does.
		{"L0", func(c *Config) { c.L0 += 8 }, nil, true},
		{"StMCSamples", func(c *Config) { c.StMCSamples += 100 }, nil, true},
		{"StMCBins", func(c *Config) { c.StMCBins += 10 }, nil, true},
		{"MCSamples", func(c *Config) { c.MCSamples += 100 }, nil, true},
		{"HybridNL", func(c *Config) { c.HybridNL += 4 }, nil, true},
		{"HybridNB", func(c *Config) { c.HybridNB += 4 }, nil, true},
		{"GuardSigmas", func(c *Config) { c.GuardSigmas += 0.5 }, nil, true},
		{"Seed", func(c *Config) { c.Seed += 1 }, nil, true},

		// Performance knobs select execution strategy only: neither
		// stage keys nor the fingerprint may move, or caches would
		// fragment on knobs that do not change answers.
		{"Workers", func(c *Config) { c.Workers = 8 }, nil, false},
		{"DisablePCACache", func(c *Config) { c.DisablePCACache = true }, nil, false},
		{"DisableStageCache", func(c *Config) { c.DisableStageCache = true }, nil, false},
		{"TableDir", func(c *Config) { c.TableDir = "/tmp/tables" }, nil, false},
	}

	baseKeys := StageFingerprints(d, base)
	baseFP := base.Fingerprint()
	for _, tc := range cases {
		t.Run(tc.field, func(t *testing.T) {
			cfg := *base
			tc.mutate(&cfg)
			keys := StageFingerprints(d, &cfg)
			want := map[string]bool{}
			for _, s := range tc.stages {
				want[s] = true
			}
			for _, stage := range StageNames() {
				changed := keys[stage] != baseKeys[stage]
				if changed != want[stage] {
					t.Errorf("stage %s key changed=%t, want %t", stage, changed, want[stage])
				}
			}
			if fpChanged := cfg.Fingerprint() != baseFP; fpChanged != tc.fpChange {
				t.Errorf("config fingerprint changed=%t, want %t", fpChanged, tc.fpChange)
			}
		})
	}

	// Reflection guard: every Config field must have exactly one case.
	seen := map[string]int{}
	for _, tc := range cases {
		seen[tc.field]++
	}
	rt := reflect.TypeOf(Config{})
	for i := 0; i < rt.NumField(); i++ {
		name := rt.Field(i).Name
		if seen[name] != 1 {
			t.Errorf("Config field %s has %d sensitivity cases, want exactly 1 — declare its stage footprint", name, seen[name])
		}
		delete(seen, name)
	}
	for name := range seen {
		t.Errorf("sensitivity case %q matches no Config field", name)
	}
}

// TestMaxVDDStageReuse is the tentpole's acceptance test: across a
// whole voltage bisection the voltage-independent stages (covariance,
// PCA, BLOD) build exactly once, the voltage-dependent tail (thermal,
// weibull) builds once per distinct probe voltage, and a warm repeat
// of the same search builds nothing at all.
func TestMaxVDDStageReuse(t *testing.T) {
	cache := pipeline.NewCache(64)
	cfg := quickConfig()
	const (
		ppm    = 10.0
		target = 5 * 8760.0
	)
	probes, built := 0, 0
	factory := func(ctx context.Context, d *Design, c *Config) (*Analyzer, error) {
		probes++
		an, err := newAnalyzerWith(ctx, cache, d, c)
		if err == nil {
			// A probe near the top of the bracket can fail outright
			// (power/thermal runaway) — the search treats that as
			// "fails the requirement", and a failed build lands in no
			// stage counter.
			built++
		}
		return an, err
	}
	search := func() float64 {
		v, err := MaxVDDFromCtx(context.Background(), factory, C1(), cfg,
			MethodStFast, ppm, target, 1.0, 1.5, 0.005)
		if err != nil {
			t.Fatal(err)
		}
		return v
	}

	v := search()
	if !(v > 1.0 && v < 1.5) {
		t.Fatalf("MaxVDD = %v, expected interior solution", v)
	}
	if probes < 8 || built < 8 {
		t.Fatalf("bisection ran %d probes (%d characterized), want ≥ 8 for a meaningful reuse test", probes, built)
	}
	buildsOf := func(stage string) int64 { return cache.Stat(stage).Builds }
	for _, stage := range []string{StageFloorplan, StagePowerMap, StageCovariance, StagePCA, StageBLOD} {
		if n := buildsOf(stage); n != 1 {
			t.Errorf("%d-probe search built stage %s %d times, want 1", probes, stage, n)
		}
	}
	// Every probe voltage is distinct, so the voltage-keyed tail
	// builds once per characterized probe — no more (a rebuilt probe
	// would mean the cache failed) and no fewer (a shared build would
	// mean thermal is wrongly voltage-independent).
	for _, stage := range []string{StageThermal, StageWeibull, StageChip} {
		if n := buildsOf(stage); n != int64(built) {
			t.Errorf("stage %s built %d times across %d distinct-voltage probes", stage, n, built)
		}
	}

	// Warm repeat: the identical search replays the identical probe
	// sequence and must be served entirely from the stage cache.
	before := map[string]int64{}
	for _, s := range StageNames() {
		before[s] = buildsOf(s)
	}
	coldProbes := probes
	if v2 := search(); v2 != v {
		t.Fatalf("warm search returned %v, cold returned %v", v2, v)
	}
	if probes != 2*coldProbes {
		t.Fatalf("warm search ran %d probes, want %d", probes-coldProbes, coldProbes)
	}
	for _, s := range StageNames() {
		if n := buildsOf(s); n != before[s] {
			t.Errorf("warm search rebuilt stage %s (%d → %d builds)", s, before[s], n)
		}
	}
}

// TestMaxVDDPinnedThermal pins the DRM approximation knob: with
// PinThermalVDD the thermal key stops moving with the probe voltage,
// so an entire bisection performs exactly ONE thermal solve (and one
// PCA build) — the ISSUE 3 acceptance numbers.
func TestMaxVDDPinnedThermal(t *testing.T) {
	cache := pipeline.NewCache(64)
	cfg := quickConfig()
	cfg.PinThermalVDD = 1.2 // characterize the die at the reference corner
	probes := 0
	factory := func(ctx context.Context, d *Design, c *Config) (*Analyzer, error) {
		probes++
		return newAnalyzerWith(ctx, cache, d, c)
	}
	v, err := MaxVDDFromCtx(context.Background(), factory, C1(), cfg,
		MethodStFast, 10, 5*8760.0, 1.0, 1.5, 0.005)
	if err != nil {
		t.Fatal(err)
	}
	if !(v > 1.0 && v < 1.5) {
		t.Fatalf("MaxVDD = %v, expected interior solution", v)
	}
	if probes < 8 {
		t.Fatalf("bisection ran %d probes, want ≥ 8", probes)
	}
	if n := cache.Stat(StageThermal).Builds; n != 1 {
		t.Errorf("pinned-thermal search ran %d thermal solves across %d probes, want exactly 1", n, probes)
	}
	if n := cache.Stat(StagePCA).Builds; n != 1 {
		t.Errorf("pinned-thermal search ran %d PCA builds, want exactly 1", n)
	}
	// Weibull still moves with VDD — the pin is a thermal
	// approximation, not a characterization shortcut.
	if n := cache.Stat(StageWeibull).Builds; n != int64(probes) {
		t.Errorf("weibull built %d times, want %d (once per probe voltage)", n, probes)
	}
}

// TestNewAnalyzerCtxCancellation times the cancellation contract:
// cancelling the construction context mid-build must abort the stage
// computation promptly instead of letting it run to completion.
func TestNewAnalyzerCtxCancellation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.GridNx, cfg.GridNy = 30, 30 // 900-node eigendecomposition: a deliberately slow build
	cfg.DisableStageCache = true    // keep runs independent and under the caller's ctx
	cfg.DisablePCACache = true

	start := time.Now()
	if _, err := NewAnalyzerCtx(context.Background(), C6(), cfg); err != nil {
		t.Fatal(err)
	}
	cold := time.Since(start)
	if cold < 100*time.Millisecond {
		t.Skipf("build completes in %v — too fast to time cancellation against", cold)
	}

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(cold / 20)
		cancel()
	}()
	start = time.Now()
	_, err := NewAnalyzerCtx(ctx, C6(), cfg)
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if limit := cold/2 + 100*time.Millisecond; elapsed > limit {
		t.Fatalf("cancelled build returned after %v (cold build: %v) — cancellation did not stop the stage computation", elapsed, cold)
	}
}

// TestStageCacheColdWarmEquivalence: the stage cache is a pure
// memoization — an analyzer assembled from cached artifacts answers
// bit-identically to one built with caching disabled entirely.
func TestStageCacheColdWarmEquivalence(t *testing.T) {
	methods := []Method{MethodStFast, MethodStMC, MethodHybrid, MethodGuard, MethodMC}
	answers := func(an *Analyzer) []float64 {
		out := make([]float64, 0, len(methods))
		for _, m := range methods {
			life, err := an.LifetimePPM(10, m)
			if err != nil {
				t.Fatalf("method %v: %v", m, err)
			}
			out = append(out, life)
		}
		return out
	}

	uncached := quickConfig()
	uncached.DisableStageCache = true
	anCold, err := NewAnalyzer(C1(), uncached)
	if err != nil {
		t.Fatal(err)
	}
	ref := answers(anCold)

	cache := pipeline.NewCache(16)
	for round := 1; round <= 2; round++ {
		an, err := newAnalyzerWith(context.Background(), cache, C1(), quickConfig())
		if err != nil {
			t.Fatal(err)
		}
		got := answers(an)
		for i, m := range methods {
			if got[i] != ref[i] {
				t.Errorf("round %d method %v: cached %v != uncached %v", round, m, got[i], ref[i])
			}
		}
	}
	// Round 2 must have been fully warm.
	for _, s := range StageNames() {
		if n := cache.Stat(s).Builds; n != 1 {
			t.Errorf("stage %s built %d times across two constructions, want 1", s, n)
		}
	}
}
