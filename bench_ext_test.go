package obdrel_test

import (
	"testing"

	"obdrel"
	"obdrel/internal/obd"
)

// Extension benchmarks: the quad-tree correlation structure, the
// wafer-pattern systematic component, the bimodal (extrinsic)
// population, burn-in screening, breakdown tolerance, and mission
// profiles. These complement the per-table/figure benchmarks in
// bench_test.go.

func BenchmarkExt_QuadTreeAnalyzer(b *testing.B) {
	cfg := obdrel.DefaultConfig()
	cfg.GridNx, cfg.GridNy = 16, 16
	cfg.QuadTree = true
	for i := 0; i < b.N; i++ {
		an, err := obdrel.NewAnalyzer(obdrel.C2(), cfg)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := an.LifetimePPM(10, obdrel.MethodStFast); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExt_BimodalStFast(b *testing.B) {
	cfg := obdrel.DefaultConfig()
	cfg.GridNx, cfg.GridNy = 16, 16
	e := obd.DefaultExtrinsic()
	e.DefectFraction = 1e-6
	cfg.Extrinsic = e
	an, err := obdrel.NewAnalyzer(obdrel.C2(), cfg)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := an.LifetimePPM(10, obdrel.MethodStFast); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := an.LifetimePPM(10, obdrel.MethodStFast); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExt_BurnInScreen(b *testing.B) {
	cfg := obdrel.DefaultConfig()
	cfg.GridNx, cfg.GridNy = 16, 16
	e := obd.DefaultExtrinsic()
	e.DefectFraction = 1e-6
	cfg.Extrinsic = e
	an, err := obdrel.NewAnalyzer(obdrel.C2(), cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := an.BurnIn(1.6, 125, 24)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := res.LifetimePPM(10); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExt_BreakdownTolerance(b *testing.B) {
	cfg := obdrel.DefaultConfig()
	cfg.GridNx, cfg.GridNy = 16, 16
	cfg.MCSamples = 300
	an, err := obdrel.NewAnalyzer(obdrel.C2(), cfg)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := an.LifetimePPMTolerant(10, 2); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := an.LifetimePPMTolerant(10, 3); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExt_MissionProfile(b *testing.B) {
	cfg := obdrel.DefaultConfig()
	cfg.GridNx, cfg.GridNy = 16, 16
	modes := []obdrel.Mode{
		{Name: "idle", VDD: 1.0, ActivityScale: 0.3, Fraction: 0.5},
		{Name: "nominal", VDD: 1.2, ActivityScale: 1, Fraction: 0.4},
		{Name: "turbo", VDD: 1.3, ActivityScale: 1, Fraction: 0.1},
	}
	for i := 0; i < b.N; i++ {
		an, err := obdrel.NewMissionAnalyzer(obdrel.C2(), cfg, modes)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := an.LifetimePPM(10, obdrel.MethodStFast); err != nil {
			b.Fatal(err)
		}
	}
}
