package obdrel_test

import (
	"math"
	"testing"

	"obdrel"
	"obdrel/internal/obd"
)

// extrinsicConfig returns a fast config with a defect population
// scaled to matter on the C1 benchmark.
func extrinsicConfig() *obdrel.Config {
	cfg := fastConfig()
	e := obd.DefaultExtrinsic()
	e.DefectFraction = 2e-6
	cfg.Extrinsic = e
	return cfg
}

func TestExtrinsicConfigShortensEarlyLife(t *testing.T) {
	anInt, err := obdrel.NewAnalyzer(obdrel.C1(), fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	anExt, err := obdrel.NewAnalyzer(obdrel.C1(), extrinsicConfig())
	if err != nil {
		t.Fatal(err)
	}
	tInt, err := anInt.LifetimePPM(10, obdrel.MethodStFast)
	if err != nil {
		t.Fatal(err)
	}
	tExt, err := anExt.LifetimePPM(10, obdrel.MethodStFast)
	if err != nil {
		t.Fatal(err)
	}
	if !(tExt < tInt/5) {
		t.Errorf("defect population did not shorten the ppm lifetime: %v vs %v", tExt, tInt)
	}
	// And the engines still agree on the bimodal population.
	rows, err := anExt.CompareMethods(10, []obdrel.Method{obdrel.MethodStFast, obdrel.MethodHybrid})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if e := math.Abs(r.ErrVsMCPct); e > 7 {
			t.Errorf("%v bimodal error vs MC %.2f%%", r.Method, e)
		}
	}
}

func TestBurnInFacade(t *testing.T) {
	an, err := obdrel.NewAnalyzer(obdrel.C1(), extrinsicConfig())
	if err != nil {
		t.Fatal(err)
	}
	unscreened, err := an.LifetimePPM(10, obdrel.MethodStFast)
	if err != nil {
		t.Fatal(err)
	}
	// 24 hours at 1.6 V / 125 °C.
	res, err := an.BurnIn(1.6, 125, 24)
	if err != nil {
		t.Fatal(err)
	}
	if !(res.Fallout > 0 && res.Fallout < 0.2) {
		t.Errorf("fallout = %v", res.Fallout)
	}
	if len(res.IntrinsicEqHours) != len(an.Blocks()) {
		t.Fatal("missing per-block equivalent hours")
	}
	// The extrinsic acceleration exceeds intrinsic at this stress?
	// Not necessarily — but both must be positive and finite.
	for i := range res.IntrinsicEqHours {
		if !(res.IntrinsicEqHours[i] > 0) || !(res.ExtrinsicEqHours[i] > 0) {
			t.Fatalf("non-positive equivalent hours at block %d", i)
		}
	}
	screened, err := res.LifetimePPM(10)
	if err != nil {
		t.Fatal(err)
	}
	if !(screened > unscreened) {
		t.Errorf("burn-in did not help a defect-dominated population: %v vs %v", screened, unscreened)
	}
	// Field failure probability right after screen is ~0 and grows.
	p0, err := res.FailureProb(1)
	if err != nil {
		t.Fatal(err)
	}
	p1, err := res.FailureProb(screened)
	if err != nil {
		t.Fatal(err)
	}
	if !(p0 < p1) {
		t.Errorf("screened failure curve not increasing: %v vs %v", p0, p1)
	}
	if _, err := an.BurnIn(1.6, 125, -5); err == nil {
		t.Error("negative duration should error")
	}
}

func TestBurnInIntrinsicOnlyHurts(t *testing.T) {
	an, err := obdrel.NewAnalyzer(obdrel.C1(), fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	base, err := an.LifetimePPM(10, obdrel.MethodStFast)
	if err != nil {
		t.Fatal(err)
	}
	res, err := an.BurnIn(1.6, 125, 24)
	if err != nil {
		t.Fatal(err)
	}
	screened, err := res.LifetimePPM(10)
	if err != nil {
		t.Fatal(err)
	}
	if !(screened < base) {
		t.Errorf("intrinsic-only burn-in should cost lifetime: %v vs %v", screened, base)
	}
}
