// Benchmarks regenerating the runtime side of every table and figure
// in the paper's evaluation (the numeric/accuracy side is produced by
// cmd/tables and cmd/figures):
//
//	BenchmarkTable3_*      — per-method analysis runtime on C1–C6
//	BenchmarkTable4_*      — st_fast under the correlation-distance sweep
//	BenchmarkTable5_*      — analysis cost vs correlation-grid resolution
//	BenchmarkFig1_*        — the HotSpot-like thermal substrate
//	BenchmarkFig3_*        — the SBD→HBD leakage-trace simulator
//	BenchmarkFig4_*        — BLOD histogram construction + Gaussian fit
//	BenchmarkFig6_7_*      — joint-PDF construction and mutual information
//	BenchmarkFig8_*        — χ² approximation of the variance quadratic form
//	BenchmarkFig10_*       — failure-rate curves and chip-lifetime sampling
//	BenchmarkAblation_*    — l0 resolution, hybrid table resolution, and
//	                         Taylor-vs-product ablations called out in DESIGN.md
//
// MC benchmarks use reduced sample counts (the cost is strictly linear
// in samples × devices); EXPERIMENTS.md records the scaling to the
// paper's 1000-sample setup.
package obdrel_test

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"obdrel"
	"obdrel/internal/blod"
	"obdrel/internal/core"
	"obdrel/internal/floorplan"
	"obdrel/internal/grid"
	"obdrel/internal/obd"
	"obdrel/internal/power"
	"obdrel/internal/stats"
	"obdrel/internal/thermal"
)

// benchmark fixtures are built once and shared; engines inside an
// analyzer are cached after first use, so steady-state query cost is
// what the loop measures.
var (
	benchMu        sync.Mutex
	benchAnalyzers = map[string]*obdrel.Analyzer{}
)

func benchAnalyzer(b *testing.B, d *obdrel.Design, gridN, mcSamples int) *obdrel.Analyzer {
	b.Helper()
	benchMu.Lock()
	defer benchMu.Unlock()
	key := d.Name
	if an, ok := benchAnalyzers[key]; ok {
		return an
	}
	cfg := obdrel.DefaultConfig()
	cfg.GridNx, cfg.GridNy = gridN, gridN
	cfg.MCSamples = mcSamples
	an, err := obdrel.NewAnalyzer(d, cfg)
	if err != nil {
		b.Fatal(err)
	}
	benchAnalyzers[key] = an
	return an
}

// warm forces engine construction outside the timed loop.
func warm(b *testing.B, an *obdrel.Analyzer, m obdrel.Method) {
	b.Helper()
	if _, err := an.LifetimePPM(10, m); err != nil {
		b.Fatal(err)
	}
}

// --- Table III: per-method analysis runtime, C1–C6 ------------------

func benchLifetime(b *testing.B, an *obdrel.Analyzer, m obdrel.Method) {
	b.Helper()
	warm(b, an, m)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := an.LifetimePPM(10, m); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable3_StFast(b *testing.B) {
	for _, d := range obdrel.Benchmarks() {
		b.Run(d.Name, func(b *testing.B) {
			benchLifetime(b, benchAnalyzer(b, d, 16, 100), obdrel.MethodStFast)
		})
	}
}

func BenchmarkTable3_StMC(b *testing.B) {
	for _, d := range []*obdrel.Design{obdrel.C1(), obdrel.C3(), obdrel.C6()} {
		b.Run(d.Name, func(b *testing.B) {
			benchLifetime(b, benchAnalyzer(b, d, 16, 100), obdrel.MethodStMC)
		})
	}
}

func BenchmarkTable3_Hybrid(b *testing.B) {
	for _, d := range obdrel.Benchmarks() {
		b.Run(d.Name, func(b *testing.B) {
			benchLifetime(b, benchAnalyzer(b, d, 16, 100), obdrel.MethodHybrid)
		})
	}
}

func BenchmarkTable3_Guard(b *testing.B) {
	for _, d := range obdrel.Benchmarks() {
		b.Run(d.Name, func(b *testing.B) {
			benchLifetime(b, benchAnalyzer(b, d, 16, 100), obdrel.MethodGuard)
		})
	}
}

// BenchmarkTable3_MC times the full device-level reference (sampling
// included, 100 sample chips — multiply by 10 for the paper's 1000).
func BenchmarkTable3_MC(b *testing.B) {
	for _, d := range []*obdrel.Design{obdrel.C1(), obdrel.C3()} {
		b.Run(d.Name, func(b *testing.B) {
			cfg := obdrel.DefaultConfig()
			cfg.GridNx, cfg.GridNy = 16, 16
			cfg.MCSamples = 100
			for i := 0; i < b.N; i++ {
				an, err := obdrel.NewAnalyzer(d, cfg)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := an.LifetimePPM(10, obdrel.MethodMC); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Table IV: correlation-distance sweep ----------------------------

func BenchmarkTable4_RhoDist(b *testing.B) {
	for _, rho := range []float64{0.25, 0.5, 0.75} {
		b.Run(floatName(rho), func(b *testing.B) {
			cfg := obdrel.DefaultConfig()
			cfg.GridNx, cfg.GridNy = 16, 16
			cfg.RhoDist = rho
			an, err := obdrel.NewAnalyzer(obdrel.C2(), cfg)
			if err != nil {
				b.Fatal(err)
			}
			benchLifetime(b, an, obdrel.MethodStFast)
		})
	}
}

func floatName(f float64) string {
	switch f {
	case 0.25:
		return "rho0.25"
	case 0.5:
		return "rho0.50"
	}
	return "rho0.75"
}

// --- Table V: grid-resolution sweep (full pipeline including PCA) ----

func BenchmarkTable5_GridResolution(b *testing.B) {
	for _, g := range []int{10, 20, 25} {
		b.Run(map[int]string{10: "grid10x10", 20: "grid20x20", 25: "grid25x25"}[g], func(b *testing.B) {
			cfg := obdrel.DefaultConfig()
			cfg.GridNx, cfg.GridNy = g, g
			for i := 0; i < b.N; i++ {
				an, err := obdrel.NewAnalyzer(obdrel.C2(), cfg)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := an.LifetimePPM(10, obdrel.MethodStFast); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Fig. 1: the thermal substrate -----------------------------------

func BenchmarkFig1_ThermalSolve(b *testing.B) {
	d := floorplan.C6()
	pm := power.Default()
	s := thermal.DefaultSolver()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := s.SolveCoupled(d, func(temps []float64) ([]float64, error) {
			return pm.DesignPowers(d, 1.2, temps)
		}, 0, 0)
		if err != nil {
			b.Fatal(err)
		}
	}
}

// --- Fig. 3: leakage-trace simulation ---------------------------------

func BenchmarkFig3_LeakageTrace(b *testing.B) {
	tech := obd.DefaultTech()
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < b.N; i++ {
		if _, err := tech.SimulateLeakageTrace(obd.DefaultLeakageConfig(), rng); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Figs. 4, 6–8: the BLOD machinery ---------------------------------

// fig4Fixture builds the two-block (5K/20K device) characterization
// shared by the Fig. 4–8 benchmarks.
func fig4Fixture(b *testing.B) (*grid.Model, *grid.PCA, *blod.Characterization) {
	b.Helper()
	tech := obd.DefaultTech()
	sigmaTot := tech.U0 * 0.04 / 3
	sg, ss, se, err := grid.VarianceBudget(sigmaTot, 0.5, 0.25, 0.25)
	if err != nil {
		b.Fatal(err)
	}
	m, err := grid.NewModel(tech.U0, 1, 1, 10, 10, sg, ss, se, 0.5)
	if err != nil {
		b.Fatal(err)
	}
	pca, err := m.ComputePCA(1)
	if err != nil {
		b.Fatal(err)
	}
	d := &floorplan.Design{
		Name: "fig4", W: 1, H: 1,
		Blocks: []floorplan.Block{
			{Name: "b5k", X: 0, Y: 0, W: 0.5, H: 0.6, Devices: 5000, Activity: 0.5},
			{Name: "b20k", X: 0.5, Y: 0, W: 0.5, H: 1, Devices: 20000, Activity: 0.5},
		},
	}
	char, err := blod.Characterize(d, m)
	if err != nil {
		b.Fatal(err)
	}
	return m, pca, char
}

func BenchmarkFig4_BLODHistogram(b *testing.B) {
	m, pca, char := fig4Fixture(b)
	bc := &char.Blocks[1]
	grids, counts := bc.DeviceAllocation()
	rng := rand.New(rand.NewSource(2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		shifts := pca.GridShifts(pca.SampleComponents(rng))
		h, err := stats.NewHistogram(m.U0-5*m.SigmaE, m.U0+5*m.SigmaE, 60)
		if err != nil {
			b.Fatal(err)
		}
		for gi, g := range grids {
			base := m.U0 + shifts[g]
			for k := 0; k < counts[gi]; k++ {
				h.Add(base + m.SigmaE*rng.NormFloat64())
			}
		}
		fit, err := stats.NewNormal(h.Mean(), math.Sqrt(h.Variance()))
		if err != nil {
			b.Fatal(err)
		}
		if r2 := h.RSquareAgainst(fit.PDF); math.IsNaN(r2) {
			b.Fatal("NaN R²")
		}
	}
}

func BenchmarkFig6_7_JointPDFAndMutualInfo(b *testing.B) {
	_, pca, char := fig4Fixture(b)
	bc := &char.Blocks[1]
	ud, err := bc.UDist()
	if err != nil {
		b.Fatal(err)
	}
	vd, err := bc.VDist()
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h, err := stats.NewHistogram2D(
			ud.Quantile(1e-3), ud.Quantile(1-1e-3), 30,
			vd.Quantile(1e-3), vd.Quantile(1-1e-3), 30)
		if err != nil {
			b.Fatal(err)
		}
		for s := 0; s < 50000; s++ {
			u, v := bc.UVFromShifts(pca.GridShifts(pca.SampleComponents(rng)))
			h.Add(u, v)
		}
		_ = h.MutualInformation()
		_ = h.MaxNormalizedProductError()
	}
}

func BenchmarkFig8_Chi2Approx(b *testing.B) {
	_, _, char := fig4Fixture(b)
	bc := &char.Blocks[1]
	vd, err := bc.VDist()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for k := 0; k <= 120; k++ {
			v := bc.V0 + bc.TrB*3*float64(k)/120
			if c := vd.CDF(v); c < 0 || c > 1 {
				b.Fatal("CDF out of range")
			}
		}
	}
}

// --- Fig. 10: failure-rate curves and lifetime sampling ---------------

func BenchmarkFig10_Curves(b *testing.B) {
	an := benchAnalyzer(b, obdrel.C3(), 16, 100)
	warm(b, an, obdrel.MethodStFast)
	ref, err := an.LifetimePPM(10, obdrel.MethodStFast)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := an.ReliabilityCurve(ref/30, ref*1000, 60, obdrel.MethodStFast); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig10_SampleFailureTimes(b *testing.B) {
	an := benchAnalyzer(b, obdrel.C3(), 16, 100)
	warm(b, an, obdrel.MethodMC)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := an.SampleFailureTimes(100); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablations (DESIGN.md §5) -----------------------------------------

// BenchmarkAblation_L0 sweeps the integration resolution of the
// Fig. 9 algorithm; the paper claims l0 = 10 suffices.
func BenchmarkAblation_L0(b *testing.B) {
	for _, l0 := range []int{5, 10, 32, 64} {
		b.Run(map[int]string{5: "l0=5", 10: "l0=10", 32: "l0=32", 64: "l0=64"}[l0], func(b *testing.B) {
			cfg := obdrel.DefaultConfig()
			cfg.GridNx, cfg.GridNy = 16, 16
			cfg.L0 = l0
			an, err := obdrel.NewAnalyzer(obdrel.C2(), cfg)
			if err != nil {
				b.Fatal(err)
			}
			benchLifetime(b, an, obdrel.MethodStFast)
		})
	}
}

// BenchmarkAblation_TableRes sweeps the hybrid lookup-table resolution
// (paper: 100×100), timing the one-time build.
func BenchmarkAblation_TableRes(b *testing.B) {
	for _, n := range []int{25, 50, 100} {
		b.Run(map[int]string{25: "25x25", 50: "50x50", 100: "100x100"}[n], func(b *testing.B) {
			cfg := obdrel.DefaultConfig()
			cfg.GridNx, cfg.GridNy = 16, 16
			cfg.HybridNL, cfg.HybridNB = n, n
			cfg.L0 = 16
			for i := 0; i < b.N; i++ {
				an, err := obdrel.NewAnalyzer(obdrel.C2(), cfg)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := an.FailureProb(1e5, obdrel.MethodHybrid); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblation_TaylorProduct compares the paper's first-order
// union-bound form (Eq. 16) against the exact sample-average product,
// both over the same component samples (core.StMC with and without
// Product mode).
func BenchmarkAblation_TaylorProduct(b *testing.B) {
	m, pca, char := fig4Fixture(b)
	tech := obd.DefaultTech()
	params := make([]obd.Params, len(char.Blocks))
	for i, tc := range []float64{90, 70} {
		p, err := tech.Characterize(tc, 1.2)
		if err != nil {
			b.Fatal(err)
		}
		params[i] = p
	}
	d := &floorplan.Design{
		Name: "fig4", W: 1, H: 1,
		Blocks: []floorplan.Block{
			{Name: "b5k", X: 0, Y: 0, W: 0.5, H: 0.6, Devices: 5000, Activity: 0.5},
			{Name: "b20k", X: 0.5, Y: 0, W: 0.5, H: 1, Devices: 20000, Activity: 0.5},
		},
	}
	chip, err := core.NewChip(d, m, char, params)
	if err != nil {
		b.Fatal(err)
	}
	for _, product := range []bool{false, true} {
		name := "taylor_sum"
		if product {
			name = "exact_product"
		}
		b.Run(name, func(b *testing.B) {
			e, err := core.NewStMC(chip, pca, core.StMCOptions{Samples: 5000, Product: product})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := core.LifetimePPM(e, chip, 10); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
