package obdrel

import (
	"context"
	"reflect"
	"testing"

	"obdrel/internal/artifact"
	"obdrel/internal/grid"
	"obdrel/internal/obd"
	"obdrel/internal/pipeline"
)

// TestEveryStageHasCodec is the reflection-style registration guard:
// every stage the graph can cache must have an artifact codec, so a
// newly added stage cannot silently become non-spillable (it would
// never reach the disk tier or serve peers, and a follower would
// quietly rebuild it). StageNames() is the authoritative roster — the
// fingerprint-sensitivity test already pins that roster against the
// stage graph.
func TestEveryStageHasCodec(t *testing.T) {
	for _, stage := range StageNames() {
		if _, ok := artifact.Lookup(stage); !ok {
			t.Errorf("stage %q has no artifact codec: register one in codecs.go", stage)
		}
	}
}

// TestStageCodecsRoundTripBitIdentical builds every stage artifact
// for a real design (with the extrinsic model enabled, so optional
// fields are exercised) and gates, for each stage:
//
//  1. Decode(Encode(v)) is deeply equal to v — every float compared
//     by bit pattern via reflection (reflect.DeepEqual on float64
//     uses ==; the re-encode check below closes the -0.0/NaN gap);
//  2. Encode(Decode(Encode(v))) is byte-identical to Encode(v) —
//     the serialized form is a fixed point, which is what makes the
//     sealed checksum a content address.
func TestStageCodecsRoundTripBitIdentical(t *testing.T) {
	d := C1()
	cfg := quickConfig()
	cfg.Extrinsic = obd.DefaultExtrinsic()
	cfg.WaferPattern = &grid.WaferPattern{DieX: 0.3, DieY: -0.2, DieSpan: 0.05, Bowl: 0.4, SlantX: 0.1, SlantY: -0.05}
	cache := pipeline.NewCache(8)
	if _, err := newAnalyzerWith(context.Background(), cache, d, cfg); err != nil {
		t.Fatal(err)
	}
	keys := stageKeys(d.Fingerprint(), d.W, d.H, cfg)
	for _, stage := range StageNames() {
		key := keys[stage]
		v, ok := cache.Peek(stage, key)
		if !ok {
			t.Fatalf("stage %s: no cached artifact under %s", stage, key)
		}
		sealed, err := artifact.Encode(stage, key, v)
		if err != nil {
			t.Fatalf("stage %s: encode: %v", stage, err)
		}
		v2, err := artifact.Decode(stage, key, sealed)
		if err != nil {
			t.Fatalf("stage %s: decode: %v", stage, err)
		}
		if got, want := reflect.TypeOf(v2), reflect.TypeOf(v); got != want {
			t.Fatalf("stage %s: decoded type %v, want %v", stage, got, want)
		}
		if !reflect.DeepEqual(v2, v) {
			t.Errorf("stage %s: decoded artifact differs from original", stage)
		}
		sealed2, err := artifact.Encode(stage, key, v2)
		if err != nil {
			t.Fatalf("stage %s: re-encode: %v", stage, err)
		}
		if string(sealed2) != string(sealed) {
			t.Errorf("stage %s: re-encoded container is not byte-identical (%d vs %d bytes)",
				stage, len(sealed2), len(sealed))
		}
	}
}

// TestAnalyzerFromDecodedArtifactsBitIdentical is the end-to-end
// bit-identity gate behind peer cache-fill: an analyzer assembled
// entirely from decoded artifacts (the follower's view) must answer
// exactly — ±0 ULP — like one assembled from the originals.
func TestAnalyzerFromDecodedArtifactsBitIdentical(t *testing.T) {
	d := C1()
	cfg := quickConfig()
	ctx := context.Background()

	// Leader: build everything into cacheA, then move every artifact
	// through the wire format into cacheB.
	cacheA := pipeline.NewCache(8)
	a1, err := newAnalyzerWith(ctx, cacheA, d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	keys := stageKeys(d.Fingerprint(), d.W, d.H, cfg)
	cacheB := pipeline.NewCache(8)
	dir := t.TempDir()
	cacheB.SetTiers(pipeline.Tiers{Dir: dir})
	for _, stage := range StageNames() {
		v, ok := cacheA.Peek(stage, keys[stage])
		if !ok {
			t.Fatalf("stage %s missing from leader cache", stage)
		}
		sealed, err := artifact.Encode(stage, keys[stage], v)
		if err != nil {
			t.Fatal(err)
		}
		if err := artifact.WriteFile(dir, stage, keys[stage], sealed); err != nil {
			t.Fatal(err)
		}
	}

	// Follower: every stage resolves from the disk tier; the build
	// closures must never run.
	a2, err := newAnalyzerWith(ctx, cacheB, d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, stage := range StageNames() {
		if st := cacheB.Stat(stage); st.Builds != 0 || st.DiskHits != 1 {
			t.Errorf("stage %s: builds=%d diskHits=%d, want 0/1", stage, st.Builds, st.DiskHits)
		}
	}

	for _, tt := range []float64{1, 5, 11.3} {
		p1, err := a1.FailureProb(tt, MethodStFast)
		if err != nil {
			t.Fatal(err)
		}
		p2, err := a2.FailureProb(tt, MethodStFast)
		if err != nil {
			t.Fatal(err)
		}
		if p1 != p2 {
			t.Errorf("FailureProb(%v): leader %v, follower %v", tt, p1, p2)
		}
	}
	l1, err := a1.LifetimePPM(100, MethodStFast)
	if err != nil {
		t.Fatal(err)
	}
	l2, err := a2.LifetimePPM(100, MethodStFast)
	if err != nil {
		t.Fatal(err)
	}
	if l1 != l2 {
		t.Errorf("LifetimePPM: leader %v, follower %v", l1, l2)
	}
}
