package obdrel

import (
	"fmt"
	"math"
)

// MaxVDD finds the highest supply voltage in [vLo, vHi] at which the
// design still meets an n-per-million lifetime requirement of at
// least targetHours, using the given analysis method. This is the
// design decision the paper's introduction motivates: "any pessimism
// in oxide reliability analysis limits the maximum operating voltage
// and thus the maximum achievable chip-performance."
//
// Every probe voltage requires a fresh characterization (the thermal
// profile moves with VDD), so the search bisects on voltage: lifetime
// is strictly decreasing in VDD through both the power-law voltage
// acceleration and the hotter die. The result is resolved to tolV
// volts (default 5 mV when 0). It returns an error when even vLo
// fails the requirement; if vHi already meets it, vHi is returned.
func MaxVDD(d *Design, cfg *Config, method Method, ppm, targetHours, vLo, vHi, tolV float64) (float64, error) {
	if cfg == nil {
		cfg = DefaultConfig()
	}
	if !(vLo > 0) || !(vHi > vLo) {
		return 0, fmt.Errorf("obdrel: invalid voltage bracket [%v, %v]", vLo, vHi)
	}
	if !(targetHours > 0) || !(ppm > 0) {
		return 0, fmt.Errorf("obdrel: invalid requirement %v ppm at %v h", ppm, targetHours)
	}
	if tolV <= 0 {
		tolV = 0.005
	}
	meets := func(v float64) (bool, error) {
		probe := *cfg
		probe.VDD = v
		an, err := NewAnalyzer(d, &probe)
		if err != nil {
			return false, fmt.Errorf("obdrel: at %v V: %w", v, err)
		}
		life, err := an.LifetimePPM(ppm, method)
		if err != nil {
			return false, fmt.Errorf("obdrel: at %v V: %w", v, err)
		}
		return life >= targetHours, nil
	}
	okLo, err := meets(vLo)
	if err != nil {
		return 0, err
	}
	if !okLo {
		return 0, fmt.Errorf("obdrel: the requirement fails even at %v V", vLo)
	}
	// Above vLo, a voltage where the characterization itself fails —
	// typically power/thermal runaway — certainly fails the
	// reliability requirement; the search treats it as out of reach
	// rather than aborting.
	okHi, err := meets(vHi)
	if err != nil {
		okHi = false
	}
	if okHi {
		return vHi, nil
	}
	lo, hi := vLo, vHi // invariant: lo meets, hi does not
	for hi-lo > tolV {
		mid := (lo + hi) / 2
		ok, err := meets(mid)
		if err != nil {
			ok = false
		}
		if ok {
			lo = mid
		} else {
			hi = mid
		}
	}
	return math.Floor(lo/tolV) * tolV, nil
}
