package obdrel

import (
	"context"
	"fmt"
	"math"

	"obdrel/internal/fault"
	"obdrel/internal/obs"
)

// MaxVDD finds the highest supply voltage in [vLo, vHi] at which the
// design still meets an n-per-million lifetime requirement of at
// least targetHours, using the given analysis method. This is the
// design decision the paper's introduction motivates: "any pessimism
// in oxide reliability analysis limits the maximum operating voltage
// and thus the maximum achievable chip-performance."
//
// Every probe voltage requires a fresh Weibull characterization, and —
// unless Config.PinThermalVDD fixes the thermal operating point — a
// fresh thermal solve (the thermal profile moves with VDD); the search
// bisects on voltage: lifetime is strictly decreasing in VDD through
// both the power-law voltage acceleration and the hotter die. The
// voltage-independent stages (covariance, PCA, BLOD) are shared across
// all probes through the stage cache. The result is resolved to tolV
// volts (default 5 mV when 0). It returns an error when even vLo
// fails the requirement; if vHi already meets it, vHi is returned.
func MaxVDD(d *Design, cfg *Config, method Method, ppm, targetHours, vLo, vHi, tolV float64) (float64, error) {
	return MaxVDDCtx(context.Background(), d, cfg, method, ppm, targetHours, vLo, vHi, tolV)
}

// MaxVDDCtx is MaxVDD with cancellation support: ctx is checked before
// every probe and threaded into each probe's stage builds, so
// cancelling the context stops the search and its in-flight substrate
// computation.
func MaxVDDCtx(ctx context.Context, d *Design, cfg *Config, method Method, ppm, targetHours, vLo, vHi, tolV float64) (float64, error) {
	return MaxVDDFromCtx(ctx, NewAnalyzerCtx, d, cfg, method, ppm, targetHours, vLo, vHi, tolV)
}

// AnalyzerFactory builds (or retrieves — e.g. from a serving-layer
// registry) the Analyzer for a design/config pair. NewAnalyzer is the
// plain factory.
type AnalyzerFactory func(*Design, *Config) (*Analyzer, error)

// AnalyzerFactoryCtx is AnalyzerFactory with a context governing the
// build. NewAnalyzerCtx is the plain factory.
type AnalyzerFactoryCtx func(context.Context, *Design, *Config) (*Analyzer, error)

// MaxVDDFrom is MaxVDD with an explicit analyzer factory. Long-running
// services pass a caching factory so repeated voltage searches — whose
// bisections revisit the same probe voltages — reuse characterized
// analyzers instead of rebuilding them.
func MaxVDDFrom(build AnalyzerFactory, d *Design, cfg *Config, method Method, ppm, targetHours, vLo, vHi, tolV float64) (float64, error) {
	return MaxVDDFromCtx(context.Background(),
		func(_ context.Context, d *Design, cfg *Config) (*Analyzer, error) { return build(d, cfg) },
		d, cfg, method, ppm, targetHours, vLo, vHi, tolV)
}

// MaxVDDFromCtx is the context-aware search core: an explicit factory
// plus a context that aborts the bisection between probes and cancels
// the in-flight probe's stage builds (when the factory honours it).
// Context errors abort the search; any other probe failure above vLo —
// typically power/thermal runaway — is treated as "fails the
// requirement", since a voltage the chip cannot even characterize at
// certainly does not meet a lifetime target.
func MaxVDDFromCtx(ctx context.Context, build AnalyzerFactoryCtx, d *Design, cfg *Config, method Method, ppm, targetHours, vLo, vHi, tolV float64) (float64, error) {
	if cfg == nil {
		cfg = DefaultConfig()
	}
	if !(vLo > 0) || !(vHi > vLo) || math.IsInf(vHi, 0) {
		return 0, fmt.Errorf("obdrel: invalid voltage bracket [%v, %v]", vLo, vHi)
	}
	if !(targetHours > 0) || math.IsInf(targetHours, 0) {
		return 0, fmt.Errorf("obdrel: invalid lifetime requirement %v h", targetHours)
	}
	if err := validPPM(ppm); err != nil {
		return 0, err
	}
	if tolV <= 0 || math.IsNaN(tolV) {
		tolV = 0.005
	}
	// Search telemetry: a maxvdd.search span parents one maxvdd.probe
	// span per bisection probe, each carrying the probed voltage, the
	// lifetime it achieved, and whether it met the requirement. The
	// probe's stage lookups (thermal, weibull, …) nest beneath it.
	ctx, search := obs.StartSpan(ctx, "maxvdd.search")
	probes := 0
	if search != nil {
		search.SetAttr("target_hours", targetHours)
		search.SetAttr("ppm", ppm)
		search.SetAttr("tol_v", tolV)
		defer func() {
			search.SetAttr("probes", probes)
			search.End()
		}()
	}
	meets := func(v float64) (bool, error) {
		if err := ctx.Err(); err != nil {
			return false, err
		}
		probes++
		pctx, sp := obs.StartSpan(ctx, "maxvdd.probe")
		if sp != nil {
			sp.SetAttr("vdd_v", v)
			defer sp.End()
		}
		// maxvdd.probe: one fault evaluation per bisection probe. An
		// injected failure flows through the same path as a real
		// characterization failure: above vLo it means "fails the
		// requirement", at vLo it aborts the search.
		if err := fault.Inject(pctx, "maxvdd.probe"); err != nil {
			if sp != nil {
				sp.SetAttr("error", err.Error())
			}
			return false, fmt.Errorf("obdrel: at %v V: %w", v, err)
		}
		probe := *cfg
		probe.VDD = v
		an, err := build(pctx, d, &probe)
		if err != nil {
			sp.SetAttr("error", err.Error())
			return false, fmt.Errorf("obdrel: at %v V: %w", v, err)
		}
		life, err := an.LifetimePPM(ppm, method)
		if err != nil {
			sp.SetAttr("error", err.Error())
			return false, fmt.Errorf("obdrel: at %v V: %w", v, err)
		}
		ok := life >= targetHours
		if sp != nil {
			sp.SetAttr("lifetime_h", life)
			sp.SetAttr("meets", ok)
		}
		return ok, nil
	}
	okLo, err := meets(vLo)
	if err != nil {
		return 0, err
	}
	if !okLo {
		return 0, fmt.Errorf("obdrel: the requirement fails even at %v V", vLo)
	}
	// Above vLo, a voltage where the characterization itself fails —
	// typically power/thermal runaway — certainly fails the
	// reliability requirement; the search treats it as out of reach
	// rather than aborting. A cancelled context, however, aborts.
	okHi, err := meets(vHi)
	if err != nil {
		if ctx.Err() != nil {
			return 0, err
		}
		okHi = false
	}
	if okHi {
		return vHi, nil
	}
	lo, hi := vLo, vHi // invariant: lo meets, hi does not
	for hi-lo > tolV {
		mid := (lo + hi) / 2
		ok, err := meets(mid)
		if err != nil {
			if ctx.Err() != nil {
				return 0, err
			}
			ok = false
		}
		if ok {
			lo = mid
		} else {
			hi = mid
		}
	}
	return math.Floor(lo/tolV) * tolV, nil
}
