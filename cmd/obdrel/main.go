// Command obdrel analyzes one design's full-chip oxide-breakdown
// reliability with a chosen method.
//
// Usage:
//
//	obdrel -design C6 -method st_fast -ppm 10
//	obdrel -design C3 -method MC -mc-samples 500 -blocks
//	obdrel -design C1 -t 1e5                    # failure probability at a time
//	obdrel -design C2 -quadtree                 # quad-tree correlation structure
//	obdrel -design C2 -bowl 0.04 -die-x 0.8     # wafer-pattern systematic offset
//	obdrel -design C3 -defects 1e-6 -burnin 24  # bimodal population + screen
//	obdrel -design C1 -tolerate 3               # survive 2 breakdowns
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"obdrel"
	"obdrel/internal/grid"
	"obdrel/internal/obd"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("obdrel: ")
	var (
		designName = flag.String("design", "C6", "benchmark design: C1..C6, or manycore")
		methodName = flag.String("method", "st_fast", "analysis method: st_fast, st_MC, hybrid, guard, MC, temp_unaware")
		ppm        = flag.Float64("ppm", 10, "faults-per-million lifetime criterion")
		tQuery     = flag.Float64("t", 0, "if > 0, also report the failure probability at this time (hours)")
		gridN      = flag.Int("grid", 25, "spatial-correlation grid resolution (n×n)")
		rho        = flag.Float64("rho", 0.5, "correlation distance (fraction of chip dimension)")
		vdd        = flag.Float64("vdd", 1.2, "supply voltage (V)")
		mcSamples  = flag.Int("mc-samples", 1000, "Monte-Carlo sample chips (MC method)")
		seed       = flag.Int64("seed", 1, "random seed")
		showBlocks = flag.Bool("blocks", false, "print the per-block operating-point table")
		compare    = flag.Bool("compare", false, "compare every method against MC (Table III row)")

		quadtree = flag.Bool("quadtree", false, "use the quad-tree correlation structure instead of exponential decay")
		qtLevels = flag.Int("qt-levels", 3, "quad-tree levels")

		bowl    = flag.Float64("bowl", 0, "wafer-pattern bowl coefficient (nm at wafer edge; 0 disables)")
		slantX  = flag.Float64("slant-x", 0, "wafer-pattern x gradient (nm per wafer radius)")
		dieX    = flag.Float64("die-x", 0, "die x position on the wafer (wafer radii)")
		dieY    = flag.Float64("die-y", 0, "die y position on the wafer (wafer radii)")
		dieSpan = flag.Float64("die-span", 0.1, "die width in wafer radii")

		defects     = flag.Float64("defects", 0, "extrinsic defect fraction (0 disables the bimodal population)")
		burninHours = flag.Float64("burnin", 0, "burn-in screen duration in hours (0 disables)")
		burninV     = flag.Float64("burnin-v", 1.6, "burn-in stress voltage (V)")
		burninT     = flag.Float64("burnin-t", 125, "burn-in oven temperature (°C)")

		tolerate = flag.Int("tolerate", 1, "breakdowns the chip cannot survive (k≥2 models redundancy)")
	)
	flag.Parse()

	design, err := lookupDesign(*designName)
	if err != nil {
		log.Fatal(err)
	}
	method, err := lookupMethod(*methodName)
	if err != nil {
		log.Fatal(err)
	}
	cfg := obdrel.DefaultConfig()
	cfg.GridNx, cfg.GridNy = *gridN, *gridN
	cfg.RhoDist = *rho
	cfg.VDD = *vdd
	cfg.MCSamples = *mcSamples
	cfg.Seed = *seed
	cfg.QuadTree = *quadtree
	cfg.QuadTreeLevels = *qtLevels
	if *bowl != 0 || *slantX != 0 {
		cfg.WaferPattern = &grid.WaferPattern{
			DieX: *dieX, DieY: *dieY, DieSpan: *dieSpan,
			Bowl: *bowl, SlantX: *slantX,
		}
	}
	if *defects > 0 {
		e := obd.DefaultExtrinsic()
		e.DefectFraction = *defects
		cfg.Extrinsic = e
	}

	start := time.Now()
	an, err := obdrel.NewAnalyzer(design, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("design %s: %d devices, %d blocks (characterized in %v)\n",
		design.Name, design.TotalDevices(), len(design.Blocks), time.Since(start).Round(time.Millisecond))
	min, mean, max := an.TempSpread()
	fmt.Printf("temperature: %.1f–%.1f °C (mean %.1f)\n", min, max, mean)

	if *showBlocks {
		fmt.Printf("\n%-12s %9s %9s %8s %12s %8s %9s\n",
			"block", "Tmean(°C)", "Tmax(°C)", "P(W)", "alpha(h)", "b(1/nm)", "devices")
		for _, b := range an.Blocks() {
			fmt.Printf("%-12s %9.1f %9.1f %8.2f %12.3g %8.3f %9d\n",
				b.Name, b.MeanTempC, b.MaxTempC, b.PowerW, b.Alpha, b.B, b.Devices)
		}
	}

	if *compare {
		fmt.Printf("\n%-13s %14s %12s\n", "method", "lifetime (h)", "err vs MC")
		rows, err := an.CompareMethods(*ppm, obdrel.Methods())
		if err != nil {
			log.Fatal(err)
		}
		for _, r := range rows {
			fmt.Printf("%-13s %14.5g %+11.2f%%\n", r.Method, r.LifetimeH, r.ErrVsMCPct)
		}
		return
	}

	start = time.Now()
	life, err := an.LifetimePPM(*ppm, method)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%s %g-per-million lifetime: %.5g h (%.2f years)  [%v]\n",
		method, *ppm, life, life/8760, time.Since(start).Round(time.Microsecond))

	if *tolerate > 1 {
		lifeK, err := an.LifetimePPMTolerant(*ppm, *tolerate)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("surviving %d breakdowns (k=%d): %.5g h (%.1f× gain)\n",
			*tolerate-1, *tolerate, lifeK, lifeK/life)
	}

	if *burninHours > 0 {
		res, err := an.BurnIn(*burninV, *burninT, *burninHours)
		if err != nil {
			log.Fatal(err)
		}
		screened, err := res.LifetimePPM(*ppm)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("after %g h burn-in at %.2f V / %.0f °C: fallout %.3g, %g-ppm lifetime %.5g h (%.1f×)\n",
			*burninHours, *burninV, *burninT, res.Fallout, *ppm, screened, screened/life)
	}

	if *tQuery > 0 {
		p, err := an.FailureProb(*tQuery, method)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("P_fail(%g h) = %.6g\n", *tQuery, p)
	}
}

func lookupDesign(name string) (*obdrel.Design, error) {
	switch strings.ToUpper(name) {
	case "C1":
		return obdrel.C1(), nil
	case "C2":
		return obdrel.C2(), nil
	case "C3":
		return obdrel.C3(), nil
	case "C4":
		return obdrel.C4(), nil
	case "C5":
		return obdrel.C5(), nil
	case "C6":
		return obdrel.C6(), nil
	}
	if strings.EqualFold(name, "manycore") {
		return obdrel.ManyCore(4, 50_000)
	}
	return nil, fmt.Errorf("unknown design %q (want C1..C6 or manycore)", name)
}

func lookupMethod(name string) (obdrel.Method, error) {
	for _, m := range obdrel.Methods() {
		if strings.EqualFold(m.String(), name) {
			return m, nil
		}
	}
	fmt.Fprintln(os.Stderr, "available methods:")
	for _, m := range obdrel.Methods() {
		fmt.Fprintf(os.Stderr, "  %s\n", m)
	}
	return 0, fmt.Errorf("unknown method %q", name)
}
