// Cluster preset: the obdrel-bench/v7 report (BENCH_pr8.json). One
// run spins up a two-node in-process cluster — each node with its own
// stage cache, artifact spill directory, and a peer list naming the
// other — and proves the artifact tiers end to end:
//
//  1. leader leg — node A answers a lifetime sweep cold: every
//     pipeline stage builds on A and spills to A's disk tier.
//  2. follower leg — node B answers the same sweep. Gates: B builds
//     ZERO pipeline stages (every artifact cache-fills from A over
//     /v1/artifact), B's peer-hit counters move, and B's response
//     bodies are byte-identical to A's — the wire format carries the
//     physics bit-exactly.
//  3. restart leg — a third node C starts over A's artifact
//     directory with no peers. The anti-entropy warm sweep loads the
//     spilled artifacts (readiness reports progress), and C answers
//     the sweep with zero stage builds and byte-identical bodies —
//     the disk tier alone survives a restart.
//
// All counters are scraped from each node's /metrics, so the run also
// gates the obdreld_artifact_* exposition itself; any disk-tier
// reject or spill failure anywhere fails the run.
package main

import (
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"
	"runtime"
	"strings"
	"time"

	"obdrel"
	"obdrel/internal/pipeline"
	"obdrel/internal/server"
)

// ClusterSchema is the two-node artifact report format; ClusterKind
// separates it from the other loadgen kinds under validation.
const (
	ClusterSchema = "obdrel-bench/v7"
	ClusterKind   = "cluster"
)

// ClusterReport is the top-level BENCH_pr8.json document.
type ClusterReport struct {
	Schema      string          `json:"schema"`
	Kind        string          `json:"kind"`
	GeneratedAt string          `json:"generated_at"`
	Quick       bool            `json:"quick"`
	GoMaxProcs  int             `json:"go_max_procs"`
	Designs     []string        `json:"designs"`
	Queries     int             `json:"queries"`
	Leader      ClusterLeg      `json:"leader"`
	Follower    ClusterLeg      `json:"follower"`
	Restart     ClusterLeg      `json:"restart"`
	Artifact    ArtifactSection `json:"artifact"`
}

// ClusterLeg is one node's pass over the query sweep, with the stage
// counters scraped from that node's /metrics after the pass.
type ClusterLeg struct {
	Queries     int     `json:"queries"`
	Errors      int     `json:"errors"`
	WallUs      float64 `json:"wall_us"`
	StageBuilds int64   `json:"stage_builds"`
	DiskHits    int64   `json:"disk_hits"`
	PeerHits    int64   `json:"peer_hits"`
	Spills      int64   `json:"spills"`
	WarmLoaded  int64   `json:"warm_loaded"`
	Identical   bool    `json:"answers_identical"`
}

// ArtifactSection aggregates the health counters across every node in
// the run; any nonzero reject or spill failure fails validation.
type ArtifactSection struct {
	Rejects     int64 `json:"rejects"`
	SpillFails  int64 `json:"spill_failures"`
	PeerServes  int64 `json:"peer_serves"`
	FetchFills  int64 `json:"fetch_fills"`
	FetchErrors int64 `json:"fetch_errors"`
}

// clusterDesigns returns the benchmark designs the sweep covers and
// the per-design query count — several designs so the exchange moves
// many distinct stage fingerprints, not one hot key.
func clusterDesigns(quick bool) ([]string, int) {
	if quick {
		return []string{"C1", "C2"}, 4
	}
	return []string{"C1", "C2", "C4"}, 8
}

// artifactScrape is one node's artifact telemetry pulled from
// /metrics: per-stage tier counters summed over the library stages,
// plus the node-level families.
type artifactScrape struct {
	stageBuilds map[string]int64
	diskHits    int64
	rejects     int64
	spills      int64
	spillFails  int64
	peerHits    int64
	peerErrors  int64
	fetchFills  int64
	fetchErrors int64
	peerServes  int64
	warmLoaded  int64

	// Dynamic-membership families (obdrel-bench/v9 "membership" mix).
	fetchHedged     int64
	fetchHedgeWins  int64
	replicaPushes   int64
	replicaPushErrs int64
	replicaDropped  int64
	replicaReceives int64
	replicaRejects  int64
	rebalFetched    int64
	rebalSweeps     int64
	rebalancing     int64
	epoch           uint64
	membersActive   int64
	membersSuspect  int64
	membersDead     int64
}

// libraryStages is the set of pipeline stages gated by the zero-build
// checks (the registry's "analyzer" pseudo-stage builds per node by
// design — it is the stage artifacts underneath that must travel).
func libraryStages() map[string]bool {
	set := map[string]bool{}
	for _, s := range obdrel.StageNames() {
		set[s] = true
	}
	return set
}

// scrapeArtifacts parses a node's /metrics exposition into the
// artifact counters the cluster gates read.
func scrapeArtifacts(client *http.Client, target string) (*artifactScrape, error) {
	code, body, err := hit(client, target+"/metrics")
	if err != nil || code != http.StatusOK {
		return nil, fmt.Errorf("GET /metrics: code=%d err=%v", code, err)
	}
	lib := libraryStages()
	out := &artifactScrape{stageBuilds: map[string]int64{}}
	for _, line := range strings.Split(string(body), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			continue
		}
		var v float64
		if _, err := fmt.Sscanf(fields[1], "%g", &v); err != nil {
			continue
		}
		name, stage, labeled := splitStageLabel(fields[0])
		if labeled {
			if !lib[stage] {
				continue
			}
			switch name {
			case "obdreld_stage_builds_total":
				out.stageBuilds[stage] += int64(v)
			case "obdreld_artifact_disk_hits_total":
				out.diskHits += int64(v)
			case "obdreld_artifact_disk_rejects_total":
				out.rejects += int64(v)
			case "obdreld_artifact_spills_total":
				out.spills += int64(v)
			case "obdreld_artifact_spill_failures_total":
				out.spillFails += int64(v)
			case "obdreld_artifact_peer_hits_total":
				out.peerHits += int64(v)
			case "obdreld_artifact_peer_errors_total":
				out.peerErrors += int64(v)
			}
			continue
		}
		switch fields[0] {
		case "obdreld_artifact_fetch_fills_total":
			out.fetchFills = int64(v)
		case "obdreld_artifact_fetch_errors_total":
			out.fetchErrors = int64(v)
		case "obdreld_artifact_peer_serves_total":
			out.peerServes = int64(v)
		case "obdreld_artifact_warm_loaded_total":
			out.warmLoaded = int64(v)
		case "obdreld_artifact_fetch_hedged_total":
			out.fetchHedged = int64(v)
		case "obdreld_artifact_fetch_hedge_wins_total":
			out.fetchHedgeWins = int64(v)
		case "obdreld_artifact_replica_pushes_total":
			out.replicaPushes = int64(v)
		case "obdreld_artifact_replica_push_errors_total":
			out.replicaPushErrs = int64(v)
		case "obdreld_artifact_replica_dropped_total":
			out.replicaDropped = int64(v)
		case "obdreld_artifact_replica_receives_total":
			out.replicaReceives = int64(v)
		case "obdreld_artifact_replica_rejects_total":
			out.replicaRejects = int64(v)
		case "obdreld_artifact_rebalance_fetched_total":
			out.rebalFetched = int64(v)
		case "obdreld_cluster_rebalance_sweeps_total":
			out.rebalSweeps = int64(v)
		case "obdreld_cluster_rebalancing":
			out.rebalancing = int64(v)
		case "obdreld_cluster_epoch":
			out.epoch = uint64(v)
		case `obdreld_cluster_members{state="active"}`:
			out.membersActive = int64(v)
		case `obdreld_cluster_members{state="suspect"}`:
			out.membersSuspect = int64(v)
		case `obdreld_cluster_members{state="dead"}`:
			out.membersDead = int64(v)
		}
	}
	return out, nil
}

func (a *artifactScrape) buildsTotal() int64 {
	var n int64
	for _, b := range a.stageBuilds {
		n += b
	}
	return n
}

// clusterNode is one in-process obdreld instance with its own stage
// cache and artifact directory.
type clusterNode struct {
	url string
	hs  *http.Server
}

func (n *clusterNode) stop() { n.hs.Close() }

// startClusterNode builds a server over a private stage cache and
// serves it on a loopback listener. The listener is bound by the
// caller first, because every node needs the full URL list before any
// node can be constructed.
func startClusterNode(ln net.Listener, dir string, peers []string, self string, warmLimit int) (*clusterNode, error) {
	svc, err := server.NewE(server.Options{
		Stages:      pipeline.NewCache(64),
		ArtifactDir: dir,
		Peers:       peers,
		Self:        self,
		WarmLimit:   warmLimit,
		// Workers pinned so every node derives bit-identical artifacts
		// regardless of the host's GOMAXPROCS.
		Workers:        2,
		DisableTracing: true,
	})
	if err != nil {
		return nil, err
	}
	hs := &http.Server{Handler: svc.Handler()}
	go hs.Serve(ln)
	return &clusterNode{url: self, hs: hs}, nil
}

// clusterQueries is the sweep: distinct ppm targets per design, all
// st_fast so each answer is a deterministic function of the stage
// artifacts.
func clusterQueries(target string, designs []string, perDesign, gridN, mcSamples int) []string {
	var urls []string
	for _, d := range designs {
		for i := 1; i <= perDesign; i++ {
			urls = append(urls, fmt.Sprintf(
				"%s/v1/lifetime?design=%s&method=st_fast&ppm=%d&grid=%d&mc_samples=%d&stmc_samples=1000",
				target, d, i*5, gridN, mcSamples))
		}
	}
	return urls
}

// sweep runs the queries sequentially and returns the canonicalized
// bodies (for the bit-identity comparison) and the error count.
func sweep(client *http.Client, urls []string) ([]string, int, time.Duration) {
	bodies := make([]string, len(urls))
	errs := 0
	start := time.Now()
	for i, u := range urls {
		code, body, err := hit(client, u)
		if err != nil || code != http.StatusOK {
			errs++
			continue
		}
		canon, err := canonicalAnswer(body)
		if err != nil {
			errs++
			continue
		}
		bodies[i] = canon
	}
	return bodies, errs, time.Since(start)
}

// canonicalAnswer strips the per-request wall-time stamp (query_us —
// the one response field that legitimately differs between nodes) and
// re-marshals with sorted keys. Every physics field survives as its
// exact float64: encoding/json prints the shortest round-trip form, so
// two canonical answers are equal iff the numbers are bit-identical.
func canonicalAnswer(body []byte) (string, error) {
	var m map[string]any
	if err := json.Unmarshal(body, &m); err != nil {
		return "", err
	}
	delete(m, "query_us")
	out, err := json.Marshal(m)
	return string(out), err
}

func identicalBodies(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] == "" || a[i] != b[i] {
			return false
		}
	}
	return true
}

// waitReady polls /readyz until the node reports ready — the restart
// leg must not query while the warm sweep is still loading.
func waitReady(client *http.Client, target string, patience time.Duration) error {
	deadline := time.Now().Add(patience)
	for {
		code, _, err := hit(client, target+"/readyz")
		if err == nil && code == http.StatusOK {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("node %s not ready after %v (last: code=%d err=%v)", target, patience, code, err)
		}
		time.Sleep(25 * time.Millisecond)
	}
}

// runCluster drives the three legs and assembles the v7 report. The
// nodes are always in-process: the run needs two coordinated daemons
// plus a restart, which no single -addr target can provide.
func runCluster(gridN, mcSamples int, quick bool, dirA, dirB string) (*ClusterReport, error) {
	designs, perDesign := clusterDesigns(quick)
	client := &http.Client{Timeout: 5 * time.Minute}

	lnA, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	lnB, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	urlA := "http://" + lnA.Addr().String()
	urlB := "http://" + lnB.Addr().String()
	peers := []string{urlA, urlB}

	nodeA, err := startClusterNode(lnA, dirA, peers, urlA, -1)
	if err != nil {
		return nil, fmt.Errorf("node A: %w", err)
	}
	defer nodeA.stop()
	nodeB, err := startClusterNode(lnB, dirB, peers, urlB, -1)
	if err != nil {
		return nil, fmt.Errorf("node B: %w", err)
	}
	defer nodeB.stop()
	if err := waitHealthy(client, urlA, 15*time.Second); err != nil {
		return nil, err
	}
	if err := waitHealthy(client, urlB, 15*time.Second); err != nil {
		return nil, err
	}

	queriesA := clusterQueries(urlA, designs, perDesign, gridN, mcSamples)
	queriesB := clusterQueries(urlB, designs, perDesign, gridN, mcSamples)

	log.Printf("cluster: leader leg — %d queries against cold node A", len(queriesA))
	bodiesA, errsA, wallA := sweep(client, queriesA)
	scrapeA, err := scrapeArtifacts(client, urlA)
	if err != nil {
		return nil, fmt.Errorf("scrape A: %w", err)
	}

	log.Printf("cluster: follower leg — same queries against node B (peer fill only)")
	bodiesB, errsB, wallB := sweep(client, queriesB)
	scrapeB, err := scrapeArtifacts(client, urlB)
	if err != nil {
		return nil, fmt.Errorf("scrape B: %w", err)
	}
	// Re-scrape A after B's leg: A served B's artifact fetches.
	scrapeA2, err := scrapeArtifacts(client, urlA)
	if err != nil {
		return nil, fmt.Errorf("re-scrape A: %w", err)
	}

	// Restart leg: a fresh node over A's artifact directory, no peers.
	// Stop A first — the restarted node must answer from disk alone.
	nodeA.stop()
	nodeB.stop()
	lnC, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	urlC := "http://" + lnC.Addr().String()
	nodeC, err := startClusterNode(lnC, dirA, nil, "", 1024)
	if err != nil {
		return nil, fmt.Errorf("node C: %w", err)
	}
	defer nodeC.stop()
	if err := waitReady(client, urlC, 30*time.Second); err != nil {
		return nil, err
	}
	log.Printf("cluster: restart leg — same queries against node C (disk tier only)")
	queriesC := clusterQueries(urlC, designs, perDesign, gridN, mcSamples)
	bodiesC, errsC, wallC := sweep(client, queriesC)
	scrapeC, err := scrapeArtifacts(client, urlC)
	if err != nil {
		return nil, fmt.Errorf("scrape C: %w", err)
	}

	rep := &ClusterReport{
		Schema:      ClusterSchema,
		Kind:        ClusterKind,
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		Quick:       quick,
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		Designs:     designs,
		Queries:     len(queriesA),
		Leader: ClusterLeg{
			Queries: len(queriesA), Errors: errsA,
			WallUs:      float64(wallA.Nanoseconds()) / 1e3,
			StageBuilds: scrapeA.buildsTotal(), Spills: scrapeA.spills,
			DiskHits: scrapeA.diskHits, PeerHits: scrapeA.peerHits,
			Identical: true,
		},
		Follower: ClusterLeg{
			Queries: len(queriesB), Errors: errsB,
			WallUs:      float64(wallB.Nanoseconds()) / 1e3,
			StageBuilds: scrapeB.buildsTotal(), Spills: scrapeB.spills,
			DiskHits: scrapeB.diskHits, PeerHits: scrapeB.peerHits,
			Identical: identicalBodies(bodiesA, bodiesB),
		},
		Restart: ClusterLeg{
			Queries: len(queriesC), Errors: errsC,
			WallUs:      float64(wallC.Nanoseconds()) / 1e3,
			StageBuilds: scrapeC.buildsTotal(), Spills: scrapeC.spills,
			DiskHits: scrapeC.diskHits, PeerHits: scrapeC.peerHits,
			WarmLoaded: scrapeC.warmLoaded,
			Identical:  identicalBodies(bodiesA, bodiesC),
		},
		Artifact: ArtifactSection{
			Rejects:     scrapeA2.rejects + scrapeB.rejects + scrapeC.rejects,
			SpillFails:  scrapeA2.spillFails + scrapeB.spillFails + scrapeC.spillFails,
			PeerServes:  scrapeA2.peerServes + scrapeB.peerServes,
			FetchFills:  scrapeA2.fetchFills + scrapeB.fetchFills,
			FetchErrors: scrapeA2.fetchErrors + scrapeB.fetchErrors,
		},
	}
	return rep, nil
}

// clusterGates are the pass/fail checks enforced after a cluster run.
func clusterGates(rep *ClusterReport) []string {
	var fails []string
	gate := func(ok bool, format string, a ...any) {
		if !ok {
			fails = append(fails, fmt.Sprintf(format, a...))
		}
	}
	gate(rep.Leader.Errors == 0, "leader leg errors = %d, want 0", rep.Leader.Errors)
	gate(rep.Leader.StageBuilds > 0, "leader built %d stages, want > 0 (cold node must build)", rep.Leader.StageBuilds)
	gate(rep.Leader.Spills > 0, "leader spilled %d artifacts, want > 0", rep.Leader.Spills)
	gate(rep.Follower.Errors == 0, "follower leg errors = %d, want 0", rep.Follower.Errors)
	gate(rep.Follower.StageBuilds == 0, "follower built %d stages, want 0 (every artifact must peer-fill)", rep.Follower.StageBuilds)
	gate(rep.Follower.PeerHits > 0, "follower peer hits = %d, want > 0", rep.Follower.PeerHits)
	gate(rep.Follower.Identical, "follower answers differ from leader — the wire format is not bit-exact")
	gate(rep.Restart.Errors == 0, "restart leg errors = %d, want 0", rep.Restart.Errors)
	gate(rep.Restart.StageBuilds == 0, "restarted node built %d stages, want 0 (disk tier must survive restart)", rep.Restart.StageBuilds)
	gate(rep.Restart.DiskHits > 0, "restarted node disk hits = %d, want > 0", rep.Restart.DiskHits)
	gate(rep.Restart.Identical, "restarted node answers differ from leader")
	gate(rep.Artifact.Rejects == 0, "artifact rejects = %d, want 0", rep.Artifact.Rejects)
	gate(rep.Artifact.SpillFails == 0, "artifact spill failures = %d, want 0", rep.Artifact.SpillFails)
	gate(rep.Artifact.PeerServes > 0, "peer serves = %d, want > 0", rep.Artifact.PeerServes)
	gate(rep.Artifact.FetchFills > 0, "fetch fills = %d, want > 0", rep.Artifact.FetchFills)
	return fails
}

// validateClusterReport checks an existing v7 report — the CI schema
// gate for the committed BENCH_pr8.json.
func validateClusterReport(data []byte) error {
	var rep ClusterReport
	if err := strictDecode(data, &rep); err != nil {
		return err
	}
	switch {
	case rep.Schema != ClusterSchema:
		return fmt.Errorf("schema %q, want %q", rep.Schema, ClusterSchema)
	case rep.Kind != ClusterKind:
		return fmt.Errorf("kind %q, want %q", rep.Kind, ClusterKind)
	case rep.Queries <= 0 || len(rep.Designs) == 0:
		return fmt.Errorf("no queries recorded")
	}
	if fails := clusterGates(&rep); len(fails) > 0 {
		return fmt.Errorf("%s", strings.Join(fails, "; "))
	}
	return nil
}
