// Fleet preset: the obdrel-bench/v6 report (BENCH_pr7.json). One run
// drives /v1/batch through three legs and a replay check:
//
//  1. cold leg — a same-design lifetime sweep with one deliberately
//     invalid item in the middle, against a cold stage cache. Gates
//     that the voltage-independent substrate stages build exactly
//     once for the whole group and that the mid-stream failure is a
//     per-item error line, not a dead stream.
//  2. warm timed leg — the same sweep again; items/sec and exact
//     per-item eval percentiles (from the server-stamped query_us).
//  3. unary leg — a sequential GET /v1/lifetime loop over the same
//     design/config and the same cycling ppm targets, the
//     one-request-per-item baseline the batch endpoint amortizes.
//     The headline gate is batch ≥ 5× unary items/sec (≥ 2× under
//     -quick, where the smaller sweep has less duplication). The
//     amortization is structural, not timer luck: the sweep models a
//     fleet (many units, few distinct policy thresholds), so the
//     planner answers duplicate (design, config, query) items from
//     one evaluation and fans the result out, while the unary loop
//     pays the full ppm→lifetime inversion on every request.
//
// The replay leg posts identical telemetry-trace items and compares
// the batch answer against the library evaluating the same trace
// in-process: the two must be bit-identical, because the server
// derives its config the same way and JSON round-trips float64
// exactly.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"runtime"
	"sort"
	"time"

	"obdrel"
)

// FleetSchema is the batch/fleet report format; FleetKind separates
// it from the other loadgen kinds under validation.
const (
	FleetSchema = "obdrel-bench/v6"
	FleetKind   = "fleet"
)

// FleetReport is the top-level BENCH_pr7.json document.
type FleetReport struct {
	Schema        string       `json:"schema"`
	Kind          string       `json:"kind"`
	GeneratedAt   string       `json:"generated_at"`
	Target        string       `json:"target"`
	Quick         bool         `json:"quick"`
	GoMaxProcs    int          `json:"go_max_procs"`
	Design        string       `json:"design"`
	Items         int          `json:"items"`
	Distinct      int          `json:"distinct_queries"`
	Window        int          `json:"window"`
	Cold          FleetLeg     `json:"cold"`
	Warm          FleetLeg     `json:"warm"`
	Unary         UnaryLeg     `json:"unary"`
	AmortizationX float64      `json:"amortization_x"`
	Replay        ReplayLeg    `json:"replay"`
	Substrate     []StageDelta `json:"substrate_builds"`
}

// FleetLeg is one /v1/batch request's outcome: trailer counters plus
// wall time and the per-item eval-time distribution.
type FleetLeg struct {
	Items       int     `json:"items"`
	OK          int     `json:"ok"`
	Errors      int     `json:"errors"`
	Groups      int     `json:"groups"`
	Reused      int     `json:"reused"`
	SharedEvals int     `json:"shared_evals"`
	Windows     int     `json:"windows"`
	WallUs      float64 `json:"wall_us"`
	ItemsPerSec float64 `json:"items_per_sec"`
	P50Us       float64 `json:"p50_us"`
	P99Us       float64 `json:"p99_us"`
}

// UnaryLeg is the sequential one-request-per-item baseline.
type UnaryLeg struct {
	Requests    int     `json:"requests"`
	WallUs      float64 `json:"wall_us"`
	ItemsPerSec float64 `json:"items_per_sec"`
	P50Us       float64 `json:"p50_us"`
	P99Us       float64 `json:"p99_us"`
}

// ReplayLeg records the batch-vs-library telemetry replay check.
type ReplayLeg struct {
	Items         int     `json:"items"`
	TraceSegments int     `json:"trace_segments"`
	BatchHours    float64 `json:"batch_lifetime_hours"`
	LocalHours    float64 `json:"local_lifetime_hours"`
	BitIdentical  bool    `json:"bit_identical"`
}

// StageDelta is one pipeline stage's build count across the cold leg.
type StageDelta struct {
	Stage  string `json:"stage"`
	Builds int64  `json:"builds"`
}

// fleetSizes returns (sweep items, distinct policy thresholds, unary
// requests, replay items). The sweep models a fleet: many units, far
// fewer distinct policy ppm targets — the duplication the batch
// planner's eval sharing amortizes and a one-request-per-item loop
// cannot.
func fleetSizes(quick bool) (items, distinct, unary, replay int) {
	if quick {
		return 200, 25, 50, 8
	}
	return 1000, 100, 200, 32
}

// substrateStages are the voltage-independent pipeline stages a
// same-design batch group must build exactly once.
var substrateStages = []string{"floorplan", "covariance", "pca", "blod"}

// fleetItemLine is one per-item result line of the stream.
type fleetItemLine struct {
	I      int             `json:"i"`
	ID     string          `json:"id"`
	OK     bool            `json:"ok"`
	Result json.RawMessage `json:"result"`
	Error  string          `json:"error"`
	Class  string          `json:"class"`
}

// fleetTrailer is the stream's closing summary line.
type fleetTrailer struct {
	Done        bool    `json:"done"`
	Items       int     `json:"items"`
	OK          int     `json:"ok"`
	Errors      int     `json:"errors"`
	Groups      int     `json:"groups"`
	Reused      int     `json:"reused"`
	SharedEvals int     `json:"shared_evals"`
	Windows     int     `json:"windows"`
	ElapsedUs   float64 `json:"elapsed_us"`
	Error       string  `json:"error"`
	Class       string  `json:"class"`
}

// batchOutcome is one decoded batch stream.
type batchOutcome struct {
	window  int // server-chosen window size, from the header line
	lines   []fleetItemLine
	trailer fleetTrailer
	wall    time.Duration
}

// postBatch posts items to /v1/batch and decodes the JSONL stream.
func postBatch(client *http.Client, target string, items []map[string]any) (*batchOutcome, error) {
	body, err := json.Marshal(items)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	resp, err := client.Post(target+"/v1/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		return nil, fmt.Errorf("POST /v1/batch: %d: %s", resp.StatusCode, b)
	}
	dec := json.NewDecoder(resp.Body)
	out := &batchOutcome{}
	sawTrailer := false
	for dec.More() {
		var raw json.RawMessage
		if err := dec.Decode(&raw); err != nil {
			return nil, fmt.Errorf("decode stream line: %w", err)
		}
		var probe struct {
			Stream string `json:"stream"`
			Window int    `json:"window"`
			Done   *bool  `json:"done"`
			I      *int   `json:"i"`
		}
		if err := json.Unmarshal(raw, &probe); err != nil {
			return nil, fmt.Errorf("probe stream line %s: %w", raw, err)
		}
		switch {
		case probe.Stream != "":
			if probe.Stream != "obdrel-batch/1" {
				return nil, fmt.Errorf("unexpected stream header %q", probe.Stream)
			}
			out.window = probe.Window
		case probe.Done != nil:
			if err := json.Unmarshal(raw, &out.trailer); err != nil {
				return nil, fmt.Errorf("decode trailer %s: %w", raw, err)
			}
			sawTrailer = true
		case probe.I != nil:
			var ln fleetItemLine
			if err := json.Unmarshal(raw, &ln); err != nil {
				return nil, fmt.Errorf("decode item line %s: %w", raw, err)
			}
			out.lines = append(out.lines, ln)
		default:
			return nil, fmt.Errorf("unclassifiable stream line %s", raw)
		}
	}
	out.wall = time.Since(start)
	if !sawTrailer {
		return nil, fmt.Errorf("stream ended without a trailer")
	}
	return out, nil
}

// legFrom folds a decoded stream into report form, pulling per-item
// eval times from the server-stamped query_us result field.
func legFrom(out *batchOutcome) FleetLeg {
	leg := FleetLeg{
		Items:       len(out.lines),
		Groups:      out.trailer.Groups,
		Reused:      out.trailer.Reused,
		SharedEvals: out.trailer.SharedEvals,
		Windows:     out.trailer.Windows,
		WallUs:      float64(out.wall.Nanoseconds()) / 1e3,
	}
	var evalUs []float64
	for _, ln := range out.lines {
		if !ln.OK {
			leg.Errors++
			continue
		}
		leg.OK++
		var res struct {
			QueryUs float64 `json:"query_us"`
		}
		if err := json.Unmarshal(ln.Result, &res); err == nil && res.QueryUs > 0 {
			evalUs = append(evalUs, res.QueryUs)
		}
	}
	if leg.WallUs > 0 {
		leg.ItemsPerSec = float64(leg.Items) / (leg.WallUs / 1e6)
	}
	leg.P50Us, leg.P99Us = exactQuantiles(evalUs)
	return leg
}

// exactQuantiles returns the exact p50/p99 of the sample (not the
// bucket-interpolated estimate the closed-loop runner reports).
func exactQuantiles(us []float64) (p50, p99 float64) {
	if len(us) == 0 {
		return 0, 0
	}
	sort.Float64s(us)
	at := func(q float64) float64 {
		i := int(q * float64(len(us)-1))
		return us[i]
	}
	return at(0.50), at(0.99)
}

// fleetConfig is the shared per-item config; it must match the
// library config in replayLocal for the bit-identical gate.
func fleetConfig(gridN, mcSamples int) map[string]any {
	return map[string]any{"grid": gridN, "mc_samples": mcSamples, "stmc_samples": 1000}
}

// fleetTrace is the replayed telemetry: mixed measured (sensor) and
// solved segments over three operating points.
var fleetTrace = []map[string]any{
	{"hours": 4000.0, "vdd": 1.0, "activity_scale": 0.5, "temp_c": 52.0},
	{"hours": 3000.0, "vdd": 1.2, "activity_scale": 1.0, "temp_c": 81.0},
	{"hours": 1760.0, "vdd": 1.3, "activity_scale": 1.0},
}

// replayLocal evaluates fleetTrace through the library with the same
// derived config the server uses for the batch items.
func replayLocal(design string, gridN, mcSamples int) (float64, error) {
	var d *obdrel.Design
	for _, b := range obdrel.Benchmarks() {
		if b.Name == design {
			d = b
		}
	}
	if d == nil {
		return 0, fmt.Errorf("unknown design %q", design)
	}
	cfg := obdrel.DefaultConfig()
	cfg.GridNx, cfg.GridNy = gridN, gridN
	cfg.MCSamples = mcSamples
	cfg.StMCSamples = 1000
	tr := obdrel.Trace{
		{Hours: 4000, VDD: 1.0, ActivityScale: 0.5, TempC: 52},
		{Hours: 3000, VDD: 1.2, ActivityScale: 1, TempC: 81},
		{Hours: 1760, VDD: 1.3, ActivityScale: 1},
	}
	an, err := obdrel.NewTraceAnalyzer(d, cfg, tr)
	if err != nil {
		return 0, err
	}
	return an.LifetimePPM(10, obdrel.MethodStFast)
}

// runFleet drives the three legs plus the replay check and assembles
// the v6 report.
func runFleet(client *http.Client, target, design string, gridN, mcSamples int, quick bool) (*FleetReport, error) {
	nSweep, nDistinct, nUnary, nReplay := fleetSizes(quick)
	cfg := fleetConfig(gridN, mcSamples)
	sweep := func(poison bool) []map[string]any {
		items := make([]map[string]any, nSweep)
		for i := range items {
			items[i] = map[string]any{
				"id": fmt.Sprintf("unit-%04d", i), "design": design, "method": "st_fast",
				"ppm": float64(i%nDistinct + 1), "config": cfg,
			}
		}
		if poison {
			// One honest mid-stream failure: a ppm the engine rejects.
			items[nSweep/2]["ppm"] = -1.0
		}
		return items
	}

	_, _, before, err := scrapeMetrics(client, target)
	if err != nil {
		return nil, err
	}
	log.Printf("fleet: cold leg — %d-item sweep with one invalid item", nSweep)
	cold, err := postBatch(client, target, sweep(true))
	if err != nil {
		return nil, fmt.Errorf("cold leg: %w", err)
	}
	_, _, after, err := scrapeMetrics(client, target)
	if err != nil {
		return nil, err
	}
	buildsBefore := map[string]int64{}
	for _, st := range before {
		buildsBefore[st.Stage] = st.Builds
	}
	var deltas []StageDelta
	for _, st := range after {
		deltas = append(deltas, StageDelta{Stage: st.Stage, Builds: st.Builds - buildsBefore[st.Stage]})
	}

	log.Printf("fleet: warm leg — same sweep, hot substrate")
	warm, err := postBatch(client, target, sweep(false))
	if err != nil {
		return nil, fmt.Errorf("warm leg: %w", err)
	}

	log.Printf("fleet: unary baseline — %d sequential /v1/lifetime calls", nUnary)
	params := fmt.Sprintf("design=%s&method=st_fast&grid=%d&mc_samples=%d&stmc_samples=1000", design, gridN, mcSamples)
	var unaryUs []float64
	uStart := time.Now()
	for i := 0; i < nUnary; i++ {
		url := fmt.Sprintf("%s/v1/lifetime?%s&ppm=%d", target, params, i%nDistinct+1)
		t0 := time.Now()
		code, body, err := hit(client, url)
		if err != nil || code != http.StatusOK {
			return nil, fmt.Errorf("unary leg: GET %s: code=%d err=%v body=%s", url, code, err, body)
		}
		unaryUs = append(unaryUs, float64(time.Since(t0).Nanoseconds())/1e3)
	}
	uWall := time.Since(uStart)
	unary := UnaryLeg{
		Requests:    nUnary,
		WallUs:      float64(uWall.Nanoseconds()) / 1e3,
		ItemsPerSec: float64(nUnary) / uWall.Seconds(),
	}
	unary.P50Us, unary.P99Us = exactQuantiles(unaryUs)

	log.Printf("fleet: replay leg — %d telemetry-trace items vs in-process library", nReplay)
	replayItems := make([]map[string]any, nReplay)
	for i := range replayItems {
		replayItems[i] = map[string]any{
			"id": fmt.Sprintf("replay-%02d", i), "query": "trace", "design": design,
			"method": "st_fast", "ppm": 10.0, "trace": fleetTrace, "config": cfg,
		}
	}
	rep, err := postBatch(client, target, replayItems)
	if err != nil {
		return nil, fmt.Errorf("replay leg: %w", err)
	}
	local, err := replayLocal(design, gridN, mcSamples)
	if err != nil {
		return nil, fmt.Errorf("replay leg (library): %w", err)
	}
	replay := ReplayLeg{Items: nReplay, TraceSegments: len(fleetTrace), LocalHours: local, BitIdentical: true}
	for _, ln := range rep.lines {
		if !ln.OK {
			replay.BitIdentical = false
			continue
		}
		var res struct {
			Hours float64 `json:"lifetime_hours"`
		}
		if err := json.Unmarshal(ln.Result, &res); err != nil {
			return nil, fmt.Errorf("replay leg: %w", err)
		}
		replay.BatchHours = res.Hours
		if res.Hours != local {
			replay.BitIdentical = false
		}
	}
	if len(rep.lines) == 0 {
		replay.BitIdentical = false
	}

	out := &FleetReport{
		Schema:      FleetSchema,
		Kind:        FleetKind,
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		Target:      target,
		Quick:       quick,
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		Design:      design,
		Items:       nSweep,
		Distinct:    nDistinct,
		Cold:        legFrom(cold),
		Warm:        legFrom(warm),
		Unary:       unary,
		Replay:      replay,
		Substrate:   deltas,
	}
	out.Window = cold.window
	if unary.ItemsPerSec > 0 {
		out.AmortizationX = out.Warm.ItemsPerSec / unary.ItemsPerSec
	}
	return out, nil
}

// fleetGates are the pass/fail checks printed (and enforced) after a
// fleet run; the returned strings are the failures.
func fleetGates(rep *FleetReport) []string {
	var fails []string
	gate := func(ok bool, format string, a ...any) {
		if !ok {
			fails = append(fails, fmt.Sprintf(format, a...))
		}
	}
	gate(rep.Cold.Items == rep.Items, "cold leg emitted %d item lines, want %d — a mid-stream failure truncated the stream", rep.Cold.Items, rep.Items)
	gate(rep.Cold.Errors == 1, "cold leg errors = %d, want exactly 1 (the poisoned item)", rep.Cold.Errors)
	gate(rep.Cold.OK == rep.Items-1, "cold leg ok = %d, want %d", rep.Cold.OK, rep.Items-1)
	gate(rep.Cold.Groups == 1, "cold same-design sweep planned %d groups, want 1", rep.Cold.Groups)
	gate(rep.Cold.Reused == rep.Items-1, "cold leg reused %d substrates, want %d", rep.Cold.Reused, rep.Items-1)
	for _, want := range substrateStages {
		found := false
		for _, d := range rep.Substrate {
			if d.Stage == want {
				found = true
				gate(d.Builds == 1, "substrate stage %s built %d times during the cold sweep, want exactly 1 per group", want, d.Builds)
			}
		}
		gate(found, "substrate stage %s missing from the scrape delta", want)
	}
	gate(rep.Warm.Errors == 0, "warm leg errors = %d, want 0", rep.Warm.Errors)
	gate(rep.Warm.P99Us >= rep.Warm.P50Us && rep.Warm.P50Us > 0, "warm leg percentiles implausible: p50=%v p99=%v", rep.Warm.P50Us, rep.Warm.P99Us)
	minX := 5.0
	if rep.Quick {
		minX = 2.0 // quick runs are noise-dominated; the full gate runs on the committed report
	}
	gate(rep.AmortizationX >= minX, "batch amortization %.2fx below the %.0fx gate (batch %.0f vs unary %.0f items/s)",
		rep.AmortizationX, minX, rep.Warm.ItemsPerSec, rep.Unary.ItemsPerSec)
	gate(rep.Replay.BitIdentical, "fleet replay not bit-identical: batch %v vs library %v", rep.Replay.BatchHours, rep.Replay.LocalHours)
	return fails
}

// validateFleetReport checks an existing v6 report — the CI schema
// gate for the committed BENCH_pr7.json.
func validateFleetReport(data []byte) error {
	var rep FleetReport
	if err := strictDecode(data, &rep); err != nil {
		return err
	}
	switch {
	case rep.Schema != FleetSchema:
		return fmt.Errorf("schema %q, want %q", rep.Schema, FleetSchema)
	case rep.Kind != FleetKind:
		return fmt.Errorf("kind %q, want %q", rep.Kind, FleetKind)
	case rep.Items <= 0:
		return fmt.Errorf("no items recorded")
	case rep.Cold.Items != rep.Items || rep.Cold.Errors != 1:
		return fmt.Errorf("cold leg %d items / %d errors, want %d / 1", rep.Cold.Items, rep.Cold.Errors, rep.Items)
	case rep.Cold.Groups != 1:
		return fmt.Errorf("cold leg groups = %d, want 1", rep.Cold.Groups)
	case rep.Warm.ItemsPerSec <= 0 || rep.Unary.ItemsPerSec <= 0:
		return fmt.Errorf("missing throughput")
	case !rep.Replay.BitIdentical:
		return fmt.Errorf("replay leg not bit-identical")
	case rep.Replay.BatchHours <= 0 || rep.Replay.BatchHours != rep.Replay.LocalHours:
		return fmt.Errorf("replay hours inconsistent: batch %v local %v", rep.Replay.BatchHours, rep.Replay.LocalHours)
	}
	if !rep.Quick && rep.AmortizationX < 5 {
		return fmt.Errorf("amortization %.2fx below the 5x gate", rep.AmortizationX)
	}
	if rep.Quick && rep.AmortizationX < 1 {
		return fmt.Errorf("quick amortization %.2fx below 1x", rep.AmortizationX)
	}
	for _, want := range substrateStages {
		found := false
		for _, d := range rep.Substrate {
			if d.Stage == want && d.Builds == 1 {
				found = true
			}
		}
		if !found {
			return fmt.Errorf("substrate stage %s did not build exactly once in the cold sweep", want)
		}
	}
	if !(rep.Warm.P50Us > 0) || rep.Warm.P99Us < rep.Warm.P50Us {
		return fmt.Errorf("warm percentiles implausible: p50=%v p99=%v", rep.Warm.P50Us, rep.Warm.P99Us)
	}
	return nil
}
