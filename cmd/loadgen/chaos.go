package main

import (
	"context"
	"fmt"
	"log"
	"net/http"
	"strings"
	"testing"
	"time"

	"obdrel/internal/fault"
)

// ChaosSchema identifies the chaos-run report (BENCH_pr5.json); the
// serving report stays on Schema/v1 and cmd/bench owns v2/v3.
const (
	ChaosSchema = "obdrel-bench/v4"
	ChaosKind   = "chaos"
)

// ChaosReport is the BENCH_pr5.json document: four phases, each with
// its own gate, proving the resilience stack does its job and costs
// nothing when idle.
type ChaosReport struct {
	Schema      string `json:"schema"`
	Kind        string `json:"kind"`
	GeneratedAt string `json:"generated_at"`
	Target      string `json:"target"`
	Quick       bool   `json:"quick"`

	// Disarmed measures the library-side injection point with no
	// injector armed — the cost every production call site pays. Gate:
	// zero allocations (and single-digit nanoseconds).
	Disarmed DisarmedBench `json:"disarmed"`
	// Churn drives cache-missing traffic while every request carries a
	// deterministic 10% transient-error + 10% 50ms-latency profile.
	// Gate: client-visible error rate under 1% (retries absorb it).
	Churn ChurnPhase `json:"churn"`
	// Breaker poisons one design until its circuit opens, checks a
	// healthy design is unaffected, then stops the faults and measures
	// recovery through the half-open probe.
	Breaker BreakerPhase `json:"breaker"`
	// DisarmedLoad re-runs clean traffic after the chaos and requires
	// zero injected faults and zero client errors — nothing leaks once
	// the headers stop.
	DisarmedLoad DisarmedLoadPhase `json:"disarmed_load"`
}

// DisarmedBench is the in-process microbenchmark of fault.Inject with
// no injector armed.
type DisarmedBench struct {
	NsOp     float64 `json:"ns_op"`
	AllocsOp int64   `json:"allocs_op"`
}

// ChurnPhase summarizes the fault-under-retry phase.
type ChurnPhase struct {
	Requests     int     `json:"requests"`
	Errors       int     `json:"errors"`
	ErrorRate    float64 `json:"error_rate"`
	RetriesDelta int64   `json:"retries_delta"`
	ErrorProb    float64 `json:"error_prob"`
	LatencyProb  float64 `json:"latency_prob"`
	LatencyMs    int     `json:"latency_ms"`
}

// BreakerPhase summarizes the circuit-breaker phase.
type BreakerPhase struct {
	PoisonDesign  string  `json:"poison_design"`
	FailuresSent  int     `json:"failures_sent"`
	Opened        bool    `json:"opened"`
	FastFails     int     `json:"fast_fails"`
	HealthyOK     int     `json:"healthy_ok"`
	HealthyErrors int     `json:"healthy_errors"`
	Recovered     bool    `json:"recovered"`
	RecoveryMs    float64 `json:"recovery_ms"`
}

// DisarmedLoadPhase summarizes the post-chaos clean-traffic phase.
type DisarmedLoadPhase struct {
	Requests      int   `json:"requests"`
	Errors        int   `json:"errors"`
	InjectedDelta int64 `json:"injected_delta"`
}

// benchDisarmed measures the disarmed fault.Inject fast path. It MUST
// run before any traffic: the per-context injection path latches the
// process-wide gate on first use, and this benchmark exists precisely
// to prove the never-armed cost is one atomic load and zero
// allocations.
func benchDisarmed() DisarmedBench {
	ctx := context.Background()
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := fault.Inject(ctx, "loadgen.disarmed"); err != nil {
				b.Fatal(err)
			}
		}
	})
	return DisarmedBench{
		NsOp:     float64(res.T.Nanoseconds()) / float64(res.N),
		AllocsOp: res.AllocsPerOp(),
	}
}

// chaosURL builds a cheap analyzer query; distinct seeds force
// distinct cache keys, so every request exercises a build.
func chaosURL(target, design string, seed int) string {
	return fmt.Sprintf("%s/v1/lifetime?design=%s&method=st_fast&ppm=10&grid=6&mc_samples=50&stmc_samples=500&seed=%d",
		target, design, seed)
}

// hitFault issues one GET carrying an X-Fault header.
func hitFault(client *http.Client, url, spec string) (int, []byte, error) {
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		return 0, nil, err
	}
	if spec != "" {
		req.Header.Set("X-Fault", spec)
	}
	resp, err := client.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	return resp.StatusCode, nil, nil
}

// runChaos executes the four chaos phases against target and returns
// the report. The target must honour X-Fault headers (obdreld
// -fault-header, or loadgen -self which enables it).
func runChaos(client *http.Client, target string, quick bool) (*ChaosReport, error) {
	rep := &ChaosReport{
		Schema:      ChaosSchema,
		Kind:        ChaosKind,
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		Target:      target,
		Quick:       quick,
	}

	// Phase 1: the disarmed cost, measured before anything arms the
	// in-process gate.
	log.Printf("chaos phase 1/4: disarmed injection-point microbenchmark")
	rep.Disarmed = benchDisarmed()
	log.Printf("  fault.Inject disarmed: %.1f ns/op, %d allocs/op", rep.Disarmed.NsOp, rep.Disarmed.AllocsOp)

	if err := waitHealthy(client, target, 15*time.Second); err != nil {
		return nil, err
	}
	// Probe that the target honours X-Fault at all: a guaranteed
	// injected error must surface, else every later gate is vacuous.
	if code, _, err := hitFault(client, target+"/v1/designs", "server.handler:error:1"); err != nil || code != http.StatusServiceUnavailable {
		return nil, fmt.Errorf("target does not honour X-Fault headers (code=%d err=%v); run obdreld with -fault-header or loadgen with -self", code, err)
	}

	// Phase 2: churn under a deterministic transient fault profile.
	// Every request misses the analyzer cache (fresh seed knob) and
	// carries its own decision-stream seed, so the run is replayable:
	// the same seeds produce the same injected failures every time.
	n := 200
	if quick {
		n = 60
	}
	churn := ChurnPhase{Requests: n, ErrorProb: 0.1, LatencyProb: 0.1, LatencyMs: 50}
	before, err := scrapeStageCounter(client, target, "obdreld_stage_retries_total")
	if err != nil {
		return nil, err
	}
	log.Printf("chaos phase 2/4: %d cache-missing requests under %.0f%% transient error + %.0f%% %dms latency",
		n, churn.ErrorProb*100, churn.LatencyProb*100, churn.LatencyMs)
	for i := 0; i < n; i++ {
		spec := fmt.Sprintf("seed=%d,registry.build:error:%g,registry.build:latency:%dms:%g",
			i+1, churn.ErrorProb, churn.LatencyMs, churn.LatencyProb)
		code, _, err := hitFault(client, chaosURL(target, "C1", 1000+i), spec)
		if err != nil || code != http.StatusOK {
			churn.Errors++
		}
	}
	after, err := scrapeStageCounter(client, target, "obdreld_stage_retries_total")
	if err != nil {
		return nil, err
	}
	churn.RetriesDelta = after - before
	churn.ErrorRate = float64(churn.Errors) / float64(churn.Requests)
	rep.Churn = churn
	log.Printf("  %d/%d client errors (%.2f%%), %d server-side retries",
		churn.Errors, churn.Requests, churn.ErrorRate*100, churn.RetriesDelta)

	// Phase 3: breaker. Poison one (design, config) key with permanent
	// failures until its circuit opens (503 instead of 500), verify a
	// healthy cached design is untouched, then stop the faults and
	// time recovery through the half-open probe.
	br := BreakerPhase{PoisonDesign: "C2"}
	healthyURL := chaosURL(target, "C1", 1) // fixed key, warmed below
	poisonURL := chaosURL(target, "C2", 999001)
	if code, _, err := hitFault(client, healthyURL, ""); err != nil || code != http.StatusOK {
		return nil, fmt.Errorf("healthy warmup: code=%d err=%v", code, err)
	}
	log.Printf("chaos phase 3/4: poisoning %s until its breaker opens", br.PoisonDesign)
	for i := 0; i < 24 && !br.Opened; i++ {
		code, _, err := hitFault(client, poisonURL, "registry.build(C2):perm:1")
		if err != nil {
			return nil, fmt.Errorf("poison request: %v", err)
		}
		br.FailuresSent++
		if code == http.StatusServiceUnavailable {
			br.Opened = true
		}
	}
	// While the C2 circuit is open, the healthy design must serve
	// normally — breaker scope is per-fingerprint, not global.
	for i := 0; i < 10; i++ {
		if code, _, err := hitFault(client, healthyURL, ""); err == nil && code == http.StatusOK {
			br.HealthyOK++
		} else {
			br.HealthyErrors++
		}
	}
	// Fast-fails: an open circuit sheds instantly.
	for i := 0; i < 5; i++ {
		if code, _, _ := hitFault(client, poisonURL, "registry.build(C2):perm:1"); code == http.StatusServiceUnavailable {
			br.FastFails++
		}
	}
	// Recovery: faults stop; the open TTL expires; the half-open probe
	// runs a real (healthy) build and closes the circuit.
	recoverStart := time.Now()
	recoverDeadline := recoverStart.Add(30 * time.Second)
	for time.Now().Before(recoverDeadline) {
		code, _, err := hitFault(client, poisonURL, "")
		if err == nil && code == http.StatusOK {
			br.Recovered = true
			br.RecoveryMs = float64(time.Since(recoverStart).Microseconds()) / 1e3
			break
		}
		time.Sleep(100 * time.Millisecond)
	}
	rep.Breaker = br
	log.Printf("  opened after %d failures; healthy %d/%d ok; recovered=%t in %.0fms",
		br.FailuresSent, br.HealthyOK, br.HealthyOK+br.HealthyErrors, br.Recovered, br.RecoveryMs)

	// Phase 4: clean traffic after the storm. The injected-fault
	// counter must not move and no client errors may appear.
	m := 50
	if quick {
		m = 20
	}
	log.Printf("chaos phase 4/4: %d clean requests, asserting zero fault leakage", m)
	dl := DisarmedLoadPhase{Requests: m}
	injBefore, err := scrapeGauge(client, target, "obdreld_fault_injected_total")
	if err != nil {
		return nil, err
	}
	for i := 0; i < m; i++ {
		if code, _, err := hitFault(client, healthyURL, ""); err != nil || code != http.StatusOK {
			dl.Errors++
		}
	}
	injAfter, err := scrapeGauge(client, target, "obdreld_fault_injected_total")
	if err != nil {
		return nil, err
	}
	dl.InjectedDelta = int64(injAfter - injBefore)
	rep.DisarmedLoad = dl
	log.Printf("  %d/%d errors, injected-fault delta %d", dl.Errors, dl.Requests, dl.InjectedDelta)
	return rep, nil
}

// scrapeGauge pulls one unlabeled metric value from /metrics.
func scrapeGauge(client *http.Client, target, name string) (float64, error) {
	code, body, err := hit(client, target+"/metrics")
	if err != nil || code != http.StatusOK {
		return 0, fmt.Errorf("GET /metrics: code=%d err=%v", code, err)
	}
	for _, line := range strings.Split(string(body), "\n") {
		fields := strings.Fields(line)
		if len(fields) == 2 && fields[0] == name {
			var v float64
			fmt.Sscanf(fields[1], "%g", &v)
			return v, nil
		}
	}
	return 0, fmt.Errorf("metric %s not found", name)
}

// scrapeStageCounter sums a labeled per-stage family across stages.
func scrapeStageCounter(client *http.Client, target, family string) (int64, error) {
	code, body, err := hit(client, target+"/metrics")
	if err != nil || code != http.StatusOK {
		return 0, fmt.Errorf("GET /metrics: code=%d err=%v", code, err)
	}
	var total int64
	for _, line := range strings.Split(string(body), "\n") {
		fields := strings.Fields(line)
		if len(fields) != 2 {
			continue
		}
		name, _, ok := splitStageLabel(fields[0])
		if !ok || name != family {
			continue
		}
		var v float64
		fmt.Sscanf(fields[1], "%g", &v)
		total += int64(v)
	}
	return total, nil
}

// chaosGates applies the acceptance gates to a chaos report; the same
// checks back -validate, so CI can gate on the committed artifact.
func chaosGates(rep *ChaosReport) []string {
	var fails []string
	add := func(format string, args ...any) { fails = append(fails, fmt.Sprintf(format, args...)) }
	if rep.Disarmed.AllocsOp != 0 {
		add("disarmed fault.Inject allocates (%d allocs/op, want 0)", rep.Disarmed.AllocsOp)
	}
	if rep.Disarmed.NsOp <= 0 || rep.Disarmed.NsOp > 50 {
		add("disarmed fault.Inject costs %.1f ns/op (want (0, 50])", rep.Disarmed.NsOp)
	}
	if rep.Churn.Requests <= 0 {
		add("churn phase issued no requests")
	}
	if rep.Churn.ErrorRate >= 0.01 {
		add("churn error rate %.3f%% (want < 1%% — retries must absorb transient faults)", rep.Churn.ErrorRate*100)
	}
	if !rep.Breaker.Opened {
		add("breaker never opened after %d permanent failures", rep.Breaker.FailuresSent)
	}
	if rep.Breaker.HealthyErrors > 0 {
		add("healthy design saw %d errors while the poisoned circuit was open", rep.Breaker.HealthyErrors)
	}
	if !rep.Breaker.Recovered {
		add("breaker did not recover through its half-open probe")
	}
	if rep.DisarmedLoad.Errors > 0 {
		add("clean traffic after chaos saw %d errors", rep.DisarmedLoad.Errors)
	}
	if rep.DisarmedLoad.InjectedDelta != 0 {
		add("injected-fault counter moved by %d during clean traffic (want 0)", rep.DisarmedLoad.InjectedDelta)
	}
	return fails
}

// validateChaosReport is the -validate path for v4 chaos reports:
// schema shape plus the same gates the live run applies.
func validateChaosReport(data []byte) error {
	var rep ChaosReport
	if err := strictDecode(data, &rep); err != nil {
		return err
	}
	switch {
	case rep.Schema != ChaosSchema:
		return fmt.Errorf("schema %q, want %q", rep.Schema, ChaosSchema)
	case rep.Kind != ChaosKind:
		return fmt.Errorf("kind %q, want %q", rep.Kind, ChaosKind)
	case rep.GeneratedAt == "":
		return fmt.Errorf("generated_at missing")
	}
	if fails := chaosGates(&rep); len(fails) > 0 {
		return fmt.Errorf("%s", strings.Join(fails, "; "))
	}
	return nil
}
