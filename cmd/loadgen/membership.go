// Membership preset: the obdrel-bench/v9 report (BENCH_pr10.json).
// One run spins up a three-node dynamic cluster — every node joins via
// gossip seeds rather than a static -peers list — and proves the
// lease/replication/rebalance machinery end to end:
//
//  1. cold leg — node A answers a lifetime sweep cold: every pipeline
//     stage builds on A, and each sealed artifact is pushed
//     asynchronously to the other members of its k=2 replica set. The
//     run then waits until B∪C's inventories cover everything A holds
//     (replication settle).
//  2. failover leg — node A is killed without warning (listener torn
//     down, loops stopped: kill −9 semantics, no graceful leave), and
//     the same sweep runs against B immediately, while A is still in
//     B's ring. Gates: zero client-visible errors and ZERO pipeline
//     stage builds anywhere — every key either sits in a warm replica
//     or cache-fills from the surviving owner. Afterwards the run
//     waits for the lease to expire and records how long B took to
//     declare A dead.
//  3. joiner leg — a fresh node D joins via B, converges to the
//     3-member view, and its rebalance sweep streams the artifacts the
//     new ring assigns it. Gates: D answers the sweep with zero stage
//     builds and byte-identical bodies — its range is served entirely
//     from streamed artifacts.
//
// All counters are scraped from each node's /metrics, so the run also
// gates the dynamic obdreld_artifact_replica_* / obdreld_cluster_*
// exposition itself.
package main

import (
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"
	"runtime"
	"strings"
	"time"

	"obdrel/internal/pipeline"
	"obdrel/internal/server"
)

// MembershipSchema is the dynamic-cluster report format;
// MembershipKind separates it from the other loadgen kinds.
const (
	MembershipSchema = "obdrel-bench/v9"
	MembershipKind   = "membership"
)

// MembershipReport is the top-level BENCH_pr10.json document.
type MembershipReport struct {
	Schema      string             `json:"schema"`
	Kind        string             `json:"kind"`
	GeneratedAt string             `json:"generated_at"`
	Quick       bool               `json:"quick"`
	GoMaxProcs  int                `json:"go_max_procs"`
	Designs     []string           `json:"designs"`
	Queries     int                `json:"queries"`
	LeaseMs     float64            `json:"lease_ms"`
	Replicas    int                `json:"replicas"`
	Cold        MembershipLeg      `json:"cold"`
	Failover    MembershipLeg      `json:"failover"`
	Joiner      MembershipLeg      `json:"joiner"`
	Membership  MembershipSection  `json:"membership"`
	Replication ReplicationSection `json:"replication"`
}

// MembershipLeg is one node's pass over the query sweep, with the
// stage counters scraped from /metrics after the pass. StageBuilds on
// the failover leg sums the delta across every surviving node — "zero
// rebuilds" must hold fleet-wide, not just on the queried node.
type MembershipLeg struct {
	Node        string  `json:"node"`
	Queries     int     `json:"queries"`
	Errors      int     `json:"errors"`
	WallUs      float64 `json:"wall_us"`
	StageBuilds int64   `json:"stage_builds"`
	PeerHits    int64   `json:"peer_hits"`
	Identical   bool    `json:"answers_identical"`
}

// MembershipSection records the lease/gossip observables: how the
// fleet's view moved through the kill and the join.
type MembershipSection struct {
	MembersAfterKill int     `json:"members_after_kill"`
	DeadDetectMs     float64 `json:"dead_detect_ms"`
	MembersAfterJoin int     `json:"members_after_join"`
	EpochCold        uint64  `json:"epoch_cold"`
	EpochAfterJoin   uint64  `json:"epoch_after_join"`
	RebalanceSweeps  int64   `json:"rebalance_sweeps"`
	RebalanceFetched int64   `json:"rebalance_fetched"`
}

// ReplicationSection aggregates replication health across the run; any
// drop, push error, or validation reject fails validation.
type ReplicationSection struct {
	Pushes         int64   `json:"pushes"`
	PushErrors     int64   `json:"push_errors"`
	Dropped        int64   `json:"dropped"`
	Receives       int64   `json:"receives"`
	Rejects        int64   `json:"rejects"`
	SettleMs       float64 `json:"settle_ms"`
	FetchHedged    int64   `json:"fetch_hedged"`
	FetchHedgeWins int64   `json:"fetch_hedge_wins"`
}

// membershipNode is one in-process dynamic obdreld instance. kill()
// is kill −9 semantics: the listener and the gossip loops stop at
// once, with no graceful leave — the fleet must notice via the lease.
type membershipNode struct {
	url string
	hs  *http.Server
	svc *server.Server
}

func (n *membershipNode) kill() {
	n.hs.Close()
	n.svc.Close()
}

// startMemberNode binds a loopback listener and joins the cluster
// through the seed URLs (a first node seeds with itself).
func startMemberNode(seeds []string, lease time.Duration) (*membershipNode, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	self := "http://" + ln.Addr().String()
	if len(seeds) == 0 {
		seeds = []string{self}
	}
	svc, err := server.NewE(server.Options{
		Stages:    pipeline.NewCache(64),
		Self:      self,
		JoinPeers: seeds,
		Lease:     lease,
		Replicas:  2,
		// Workers pinned so every node derives bit-identical artifacts
		// regardless of the host's GOMAXPROCS.
		Workers:        2,
		DisableTracing: true,
	})
	if err != nil {
		ln.Close()
		return nil, err
	}
	hs := &http.Server{Handler: svc.Handler()}
	go hs.Serve(ln)
	return &membershipNode{url: self, hs: hs, svc: svc}, nil
}

// inventory is one node's /v1/cluster/keys response.
type inventory struct {
	Node  string `json:"node"`
	Epoch uint64 `json:"epoch"`
	Keys  []struct {
		Stage string `json:"stage"`
		Key   string `json:"key"`
	} `json:"keys"`
}

func fetchInventory(client *http.Client, target string) (*inventory, error) {
	code, body, err := hit(client, target+"/v1/cluster/keys")
	if err != nil || code != http.StatusOK {
		return nil, fmt.Errorf("GET /v1/cluster/keys: code=%d err=%v", code, err)
	}
	var inv inventory
	if err := json.Unmarshal(body, &inv); err != nil {
		return nil, err
	}
	return &inv, nil
}

// waitCondition polls cond until it holds or patience runs out.
func waitCondition(what string, patience time.Duration, cond func() (bool, error)) error {
	deadline := time.Now().Add(patience)
	for {
		ok, err := cond()
		if ok {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("%s: not reached after %v (last error: %v)", what, patience, err)
		}
		time.Sleep(25 * time.Millisecond)
	}
}

// waitMembers waits until the node's /metrics reports the wanted
// active-member count.
func waitMembers(client *http.Client, target string, active int, patience time.Duration) error {
	return waitCondition(fmt.Sprintf("%s sees %d active members", target, active), patience,
		func() (bool, error) {
			sc, err := scrapeArtifacts(client, target)
			if err != nil {
				return false, err
			}
			return sc.membersActive == int64(active), nil
		})
}

// waitReplicated waits until the union of the followers' inventories
// covers every artifact the leader holds — replication settle.
func waitReplicated(client *http.Client, leader string, followers []string, patience time.Duration) error {
	return waitCondition("replicas cover the leader's inventory", patience, func() (bool, error) {
		lead, err := fetchInventory(client, leader)
		if err != nil {
			return false, err
		}
		if len(lead.Keys) == 0 {
			return false, fmt.Errorf("leader inventory empty")
		}
		covered := map[string]bool{}
		for _, f := range followers {
			inv, err := fetchInventory(client, f)
			if err != nil {
				return false, err
			}
			for _, k := range inv.Keys {
				covered[k.Stage+"/"+k.Key] = true
			}
		}
		for _, k := range lead.Keys {
			if !covered[k.Stage+"/"+k.Key] {
				return false, fmt.Errorf("%s/%s not yet replicated", k.Stage, k.Key)
			}
		}
		return true, nil
	})
}

// runMembership drives the three legs and assembles the v9 report.
// The nodes are always in-process: the run needs a kill −9 and a
// mid-flight join, which no single -addr target can provide.
func runMembership(gridN, mcSamples int, quick bool) (*MembershipReport, error) {
	designs, perDesign := clusterDesigns(quick)
	const lease = 750 * time.Millisecond
	client := &http.Client{Timeout: 5 * time.Minute}

	nodeA, err := startMemberNode(nil, lease)
	if err != nil {
		return nil, fmt.Errorf("node A: %w", err)
	}
	defer nodeA.kill()
	nodeB, err := startMemberNode([]string{nodeA.url}, lease)
	if err != nil {
		return nil, fmt.Errorf("node B: %w", err)
	}
	defer nodeB.kill()
	nodeC, err := startMemberNode([]string{nodeA.url}, lease)
	if err != nil {
		return nil, fmt.Errorf("node C: %w", err)
	}
	defer nodeC.kill()
	for _, n := range []*membershipNode{nodeA, nodeB, nodeC} {
		if err := waitHealthy(client, n.url, 15*time.Second); err != nil {
			return nil, err
		}
	}
	for _, n := range []*membershipNode{nodeA, nodeB, nodeC} {
		if err := waitMembers(client, n.url, 3, 10*time.Second); err != nil {
			return nil, err
		}
	}

	// Cold leg: A builds everything and the replicator fans the sealed
	// artifacts out to the other replica-set members.
	queriesA := clusterQueries(nodeA.url, designs, perDesign, gridN, mcSamples)
	log.Printf("membership: cold leg — %d queries against node A (3-node fleet, k=2)", len(queriesA))
	bodiesA, errsA, wallA := sweep(client, queriesA)
	settleStart := time.Now()
	if err := waitReplicated(client, nodeA.url, []string{nodeB.url, nodeC.url}, 30*time.Second); err != nil {
		return nil, err
	}
	settle := time.Since(settleStart)
	scrapeA, err := scrapeArtifacts(client, nodeA.url)
	if err != nil {
		return nil, fmt.Errorf("scrape A: %w", err)
	}
	scrapeB1, err := scrapeArtifacts(client, nodeB.url)
	if err != nil {
		return nil, fmt.Errorf("scrape B: %w", err)
	}
	scrapeC1, err := scrapeArtifacts(client, nodeC.url)
	if err != nil {
		return nil, fmt.Errorf("scrape C: %w", err)
	}

	// Failover leg: kill A and query B immediately — A is still in
	// B's ring, so this exercises warm replicas plus the hedged owner
	// walk past a dead candidate, not a conveniently shrunken fleet.
	log.Printf("membership: failover leg — kill −9 node A, same queries against node B")
	killAt := time.Now()
	nodeA.kill()
	queriesB := clusterQueries(nodeB.url, designs, perDesign, gridN, mcSamples)
	bodiesB, errsB, wallB := sweep(client, queriesB)
	if err := waitCondition("node B declares A dead", 15*time.Second, func() (bool, error) {
		sc, err := scrapeArtifacts(client, nodeB.url)
		if err != nil {
			return false, err
		}
		return sc.membersActive == 2 && sc.membersDead >= 1, nil
	}); err != nil {
		return nil, err
	}
	deadDetect := time.Since(killAt)
	scrapeB2, err := scrapeArtifacts(client, nodeB.url)
	if err != nil {
		return nil, fmt.Errorf("re-scrape B: %w", err)
	}
	scrapeC2, err := scrapeArtifacts(client, nodeC.url)
	if err != nil {
		return nil, fmt.Errorf("re-scrape C: %w", err)
	}

	// Joiner leg: D joins through B, learns the 3-member view, and its
	// rebalance sweep streams in the artifacts the new ring assigns it.
	log.Printf("membership: joiner leg — node D joins via B, rebalance streams its range")
	nodeD, err := startMemberNode([]string{nodeB.url}, lease)
	if err != nil {
		return nil, fmt.Errorf("node D: %w", err)
	}
	defer nodeD.kill()
	if err := waitReady(client, nodeD.url, 15*time.Second); err != nil {
		return nil, err
	}
	if err := waitMembers(client, nodeD.url, 3, 10*time.Second); err != nil {
		return nil, err
	}
	if err := waitCondition("node D rebalance settles", 30*time.Second, func() (bool, error) {
		sc, err := scrapeArtifacts(client, nodeD.url)
		if err != nil {
			return false, err
		}
		return sc.rebalSweeps >= 1 && sc.rebalancing == 0 && sc.rebalFetched > 0, nil
	}); err != nil {
		return nil, err
	}
	queriesD := clusterQueries(nodeD.url, designs, perDesign, gridN, mcSamples)
	bodiesD, errsD, wallD := sweep(client, queriesD)
	scrapeD, err := scrapeArtifacts(client, nodeD.url)
	if err != nil {
		return nil, fmt.Errorf("scrape D: %w", err)
	}
	scrapeB3, err := scrapeArtifacts(client, nodeB.url)
	if err != nil {
		return nil, fmt.Errorf("final scrape B: %w", err)
	}
	scrapeC3, err := scrapeArtifacts(client, nodeC.url)
	if err != nil {
		return nil, fmt.Errorf("final scrape C: %w", err)
	}

	rep := &MembershipReport{
		Schema:      MembershipSchema,
		Kind:        MembershipKind,
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		Quick:       quick,
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		Designs:     designs,
		Queries:     len(queriesA),
		LeaseMs:     float64(lease.Nanoseconds()) / 1e6,
		Replicas:    2,
		Cold: MembershipLeg{
			Node: "A", Queries: len(queriesA), Errors: errsA,
			WallUs:      float64(wallA.Nanoseconds()) / 1e3,
			StageBuilds: scrapeA.buildsTotal(),
			PeerHits:    scrapeA.peerHits,
			Identical:   true,
		},
		Failover: MembershipLeg{
			Node: "B", Queries: len(queriesB), Errors: errsB,
			WallUs: float64(wallB.Nanoseconds()) / 1e3,
			StageBuilds: (scrapeB2.buildsTotal() - scrapeB1.buildsTotal()) +
				(scrapeC2.buildsTotal() - scrapeC1.buildsTotal()),
			PeerHits:  scrapeB2.peerHits - scrapeB1.peerHits,
			Identical: identicalBodies(bodiesA, bodiesB),
		},
		Joiner: MembershipLeg{
			Node: "D", Queries: len(queriesD), Errors: errsD,
			WallUs:      float64(wallD.Nanoseconds()) / 1e3,
			StageBuilds: scrapeD.buildsTotal(),
			PeerHits:    scrapeD.peerHits,
			Identical:   identicalBodies(bodiesA, bodiesD),
		},
		Membership: MembershipSection{
			MembersAfterKill: int(scrapeB2.membersActive),
			DeadDetectMs:     float64(deadDetect.Nanoseconds()) / 1e6,
			MembersAfterJoin: int(scrapeD.membersActive),
			EpochCold:        scrapeB1.epoch,
			EpochAfterJoin:   scrapeB3.epoch,
			RebalanceSweeps:  scrapeD.rebalSweeps + scrapeB3.rebalSweeps + scrapeC3.rebalSweeps,
			RebalanceFetched: scrapeD.rebalFetched,
		},
		Replication: ReplicationSection{
			Pushes:         scrapeA.replicaPushes + scrapeB3.replicaPushes + scrapeC3.replicaPushes,
			PushErrors:     scrapeA.replicaPushErrs,
			Dropped:        scrapeA.replicaDropped + scrapeB3.replicaDropped + scrapeC3.replicaDropped,
			Receives:       scrapeB3.replicaReceives + scrapeC3.replicaReceives,
			Rejects:        scrapeB3.replicaRejects + scrapeC3.replicaRejects,
			SettleMs:       float64(settle.Nanoseconds()) / 1e6,
			FetchHedged:    scrapeB3.fetchHedged + scrapeC3.fetchHedged + scrapeD.fetchHedged,
			FetchHedgeWins: scrapeB3.fetchHedgeWins + scrapeC3.fetchHedgeWins + scrapeD.fetchHedgeWins,
		},
	}
	return rep, nil
}

// membershipGates are the pass/fail checks enforced after a run.
func membershipGates(rep *MembershipReport) []string {
	var fails []string
	gate := func(ok bool, format string, a ...any) {
		if !ok {
			fails = append(fails, fmt.Sprintf(format, a...))
		}
	}
	gate(rep.Replicas >= 2, "replica factor %d, want >= 2", rep.Replicas)
	gate(rep.Cold.Errors == 0, "cold leg errors = %d, want 0", rep.Cold.Errors)
	gate(rep.Cold.StageBuilds > 0, "cold node built %d stages, want > 0", rep.Cold.StageBuilds)
	gate(rep.Failover.Errors == 0, "failover leg errors = %d, want 0 (kill must be client-invisible)", rep.Failover.Errors)
	gate(rep.Failover.StageBuilds == 0, "failover rebuilt %d stages, want 0 (replicas must be warm)", rep.Failover.StageBuilds)
	gate(rep.Failover.Identical, "failover answers differ from the cold leg")
	gate(rep.Joiner.Errors == 0, "joiner leg errors = %d, want 0", rep.Joiner.Errors)
	gate(rep.Joiner.StageBuilds == 0, "joiner built %d stages, want 0 (range must be streamed)", rep.Joiner.StageBuilds)
	gate(rep.Joiner.Identical, "joiner answers differ from the cold leg")
	gate(rep.Membership.MembersAfterKill == 2, "members after kill = %d, want 2", rep.Membership.MembersAfterKill)
	gate(rep.Membership.MembersAfterJoin == 3, "members after join = %d, want 3", rep.Membership.MembersAfterJoin)
	gate(rep.Membership.DeadDetectMs > 0, "dead-detect time missing")
	gate(rep.Membership.EpochAfterJoin > rep.Membership.EpochCold,
		"epoch did not advance across kill+join (%d -> %d)", rep.Membership.EpochCold, rep.Membership.EpochAfterJoin)
	gate(rep.Membership.RebalanceFetched > 0, "joiner streamed %d artifacts, want > 0", rep.Membership.RebalanceFetched)
	gate(rep.Replication.Pushes > 0, "replica pushes = %d, want > 0", rep.Replication.Pushes)
	gate(rep.Replication.PushErrors == 0, "replica push errors = %d, want 0", rep.Replication.PushErrors)
	gate(rep.Replication.Dropped == 0, "replica queue drops = %d, want 0", rep.Replication.Dropped)
	gate(rep.Replication.Receives > 0, "replica receives = %d, want > 0", rep.Replication.Receives)
	gate(rep.Replication.Rejects == 0, "replica rejects = %d, want 0", rep.Replication.Rejects)
	return fails
}

// validateMembershipReport checks an existing v9 report — the CI
// schema gate for the committed BENCH_pr10.json.
func validateMembershipReport(data []byte) error {
	var rep MembershipReport
	if err := strictDecode(data, &rep); err != nil {
		return err
	}
	switch {
	case rep.Schema != MembershipSchema:
		return fmt.Errorf("schema %q, want %q", rep.Schema, MembershipSchema)
	case rep.Kind != MembershipKind:
		return fmt.Errorf("kind %q, want %q", rep.Kind, MembershipKind)
	case rep.Queries <= 0 || len(rep.Designs) == 0:
		return fmt.Errorf("no queries recorded")
	case rep.LeaseMs <= 0:
		return fmt.Errorf("lease missing")
	}
	if fails := membershipGates(&rep); len(fails) > 0 {
		return fmt.Errorf("%s", strings.Join(fails, "; "))
	}
	return nil
}
