// Fleet-observability preset: the obdrel-bench/v8 report
// (BENCH_pr9.json). One run proves the observability plane end to end
// against live in-process nodes:
//
//  1. cross-node trace leg — a two-node cluster with tracing on; the
//     owner answers a sweep cold, then the follower answers the same
//     queries with ?explain=1. Gates: the explain tree is ONE trace
//     containing the follower's artifact.fetch span AND the owner's
//     grafted peer.serve subtree, and the owner's own trace ring holds
//     the same trace id (adoption, not just decoration).
//  2. cluster-status leg — /v1/cluster/status fan-out while both
//     nodes live (merged fleet quantiles), then again with one node
//     killed. Gates: the degraded fleet still answers 200, the dead
//     peer is reported, the quantiles survive.
//  3. SLO leg — a node with availability objectives and fault
//     injection; induced 5xx must move bad totals, push the 1m burn
//     over 1, mint trace-carrying exemplars, and surface the
//     obdreld_slo_* families on /metrics.
//  4. wide-event leg — the disabled collector path measured by
//     testing.AllocsPerRun (gate: exactly 0 allocs/op) and timed
//     directly; its per-request cost must be <2% of a measured mean
//     request. Then a wide-enabled node must emit exactly one parsed
//     JSONL event per request, stage walks included.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"obdrel/internal/obs"
	"obdrel/internal/pipeline"
	"obdrel/internal/server"
)

// FleetObsSchema is the fleet-observability report format;
// FleetObsKind separates it under validation.
const (
	FleetObsSchema = "obdrel-bench/v8"
	FleetObsKind   = "fleetobs"
)

// FleetObsReport is the top-level BENCH_pr9.json document.
type FleetObsReport struct {
	Schema      string       `json:"schema"`
	Kind        string       `json:"kind"`
	GeneratedAt string       `json:"generated_at"`
	Quick       bool         `json:"quick"`
	GoMaxProcs  int          `json:"go_max_procs"`
	Trace       TraceLeg     `json:"cross_node_trace"`
	Status      StatusLeg    `json:"cluster_status"`
	SLO         SLOLeg       `json:"slo"`
	Wide        WideEventLeg `json:"wide_events"`
}

// TraceLeg is the cross-node single-trace proof.
type TraceLeg struct {
	Queries       int  `json:"queries"`
	SingleTrace   bool `json:"single_trace"`
	FetchSpans    int  `json:"artifact_fetch_spans"`
	ServeSubtrees int  `json:"peer_serve_subtrees"`
	OwnerAdopted  bool `json:"owner_adopted"`
}

// StatusLeg is the fan-out aggregation proof, healthy then degraded.
type StatusLeg struct {
	HealthyOK        int     `json:"healthy_nodes_ok"`
	DegradedOK       int     `json:"degraded_nodes_ok"`
	DegradedDead     int     `json:"degraded_nodes_dead"`
	DegradedAnswered bool    `json:"degraded_answered"`
	FleetP50Us       float64 `json:"fleet_p50_us"`
	FleetP99Us       float64 `json:"fleet_p99_us"`
	RingNodes        int     `json:"ring_nodes"`
}

// SLOLeg is the burn-rate engine proof under induced errors.
type SLOLeg struct {
	Good            int64   `json:"good_total"`
	Bad             int64   `json:"bad_total"`
	Burn1m          float64 `json:"burn_1m"`
	Exemplars       int     `json:"exemplars"`
	ExemplarsTraced bool    `json:"exemplars_traced"`
	BucketExemplars int     `json:"bucket_exemplars"`
	MetricsFamilies bool    `json:"metrics_families_present"`
}

// WideEventLeg is the cost-accounting proof: the disabled path is
// free, the enabled path emits one canonical event per request.
type WideEventLeg struct {
	DisabledAllocsPerOp float64 `json:"disabled_allocs_per_op"`
	DisabledNsPerOp     float64 `json:"disabled_ns_per_op"`
	MeanRequestUs       float64 `json:"mean_request_us"`
	DisabledOverheadPct float64 `json:"disabled_overhead_pct"`
	Requests            int     `json:"requests"`
	Events              int     `json:"events"`
	EventsParsed        bool    `json:"events_parsed"`
	EventsWithStages    int     `json:"events_with_stages"`
}

// lockedBuf is an io.Writer safe against the server's emit goroutines.
type lockedBuf struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (l *lockedBuf) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.Write(p)
}

func (l *lockedBuf) String() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.String()
}

// obsNode is one in-process node the preset can still introspect (the
// owner-adoption gate reads the node's trace ring directly).
type obsNode struct {
	url string
	svc *server.Server
	hs  *http.Server
}

func (n *obsNode) stop() { n.hs.Close() }

// startObsNode serves a node on a loopback listener; mutate tweaks the
// options before construction (tracing stays ON unless it says so).
func startObsNode(mutate func(*server.Options)) (*obsNode, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	opts := server.Options{
		Stages: pipeline.NewCache(64),
		// Workers pinned so both nodes derive identical artifacts.
		Workers: 2,
	}
	if mutate != nil {
		mutate(&opts)
	}
	svc, err := server.NewE(opts)
	if err != nil {
		ln.Close()
		return nil, err
	}
	hs := &http.Server{Handler: svc.Handler()}
	go hs.Serve(ln)
	return &obsNode{url: "http://" + ln.Addr().String(), svc: svc, hs: hs}, nil
}

// startObsCluster brings up a traced two-node cluster. The listeners
// are bound before either server exists because each node's options
// need the full peer list.
func startObsCluster() (a, b *obsNode, err error) {
	lnA, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, nil, err
	}
	lnB, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		lnA.Close()
		return nil, nil, err
	}
	urlA := "http://" + lnA.Addr().String()
	urlB := "http://" + lnB.Addr().String()
	peers := []string{urlA, urlB}
	mk := func(ln net.Listener, self string) (*obsNode, error) {
		svc, err := server.NewE(server.Options{
			Stages:  pipeline.NewCache(64),
			Workers: 2,
			Peers:   peers,
			Self:    self,
		})
		if err != nil {
			return nil, err
		}
		hs := &http.Server{Handler: svc.Handler()}
		go hs.Serve(ln)
		return &obsNode{url: self, svc: svc, hs: hs}, nil
	}
	if a, err = mk(lnA, urlA); err != nil {
		lnB.Close()
		return nil, nil, err
	}
	if b, err = mk(lnB, urlB); err != nil {
		a.stop()
		return nil, nil, err
	}
	return a, b, nil
}

// runFleetObs drives the four legs and assembles the v8 report.
func runFleetObs(gridN, mcSamples int, quick bool) (*FleetObsReport, error) {
	rep := &FleetObsReport{
		Schema:      FleetObsSchema,
		Kind:        FleetObsKind,
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		Quick:       quick,
		GoMaxProcs:  runtime.GOMAXPROCS(0),
	}
	client := &http.Client{Timeout: 5 * time.Minute}

	// ---- Legs 1 + 2: traced two-node cluster ------------------------
	nodeA, nodeB, err := startObsCluster()
	if err != nil {
		return nil, err
	}
	defer nodeA.stop()
	defer nodeB.stop()
	if err := waitHealthy(client, nodeA.url, 15*time.Second); err != nil {
		return nil, err
	}
	if err := waitHealthy(client, nodeB.url, 15*time.Second); err != nil {
		return nil, err
	}

	designs := []string{"C1", "C2"}
	if quick {
		designs = designs[:1]
	}
	cfg := fmt.Sprintf("grid=%d&mc_samples=%d&stmc_samples=1000", gridN, mcSamples)
	lifetime := func(base, design string) string {
		return fmt.Sprintf("%s/v1/lifetime?design=%s&method=st_fast&ppm=10&%s", base, design, cfg)
	}

	log.Printf("fleetobs: owner leg — %d cold builds on node A", len(designs))
	for _, d := range designs {
		if code, _, err := hit(client, lifetime(nodeA.url, d)); err != nil || code != http.StatusOK {
			return nil, fmt.Errorf("owner build %s: code=%d err=%v", d, code, err)
		}
	}

	log.Printf("fleetobs: cross-node trace leg — cold ?explain=1 queries on node B")
	rep.Trace.Queries = len(designs)
	sawSingle, sawAdopted := 0, 0
	for _, d := range designs {
		code, body, err := hit(client, lifetime(nodeB.url, d)+"&explain=1")
		if err != nil || code != http.StatusOK {
			return nil, fmt.Errorf("follower explain %s: code=%d err=%v", d, code, err)
		}
		var payload struct {
			Trace *obs.TraceOut `json:"trace"`
		}
		if err := json.Unmarshal(body, &payload); err != nil || payload.Trace == nil || payload.Trace.Root == nil {
			return nil, fmt.Errorf("follower explain %s: no trace in response (err=%v)", d, err)
		}
		fetches, serves := 0, 0
		payload.Trace.Root.Walk(func(s *obs.SpanOut) {
			switch s.Name {
			case "artifact.fetch":
				fetches++
			case "peer.serve":
				serves++
			}
		})
		rep.Trace.FetchSpans += fetches
		rep.Trace.ServeSubtrees += serves
		if fetches > 0 && serves > 0 {
			sawSingle++
		}
		// Adoption: the OWNER's ring must hold the same trace id,
		// rooted at peer.serve — the follower's tree alone could be
		// faked by decoration.
		for _, tr := range nodeA.svc.Tracer().Recent(0) {
			if tr.TraceID == payload.Trace.TraceID && tr.Name == "peer.serve" {
				sawAdopted++
				break
			}
		}
	}
	rep.Trace.SingleTrace = sawSingle == len(designs)
	rep.Trace.OwnerAdopted = sawAdopted == len(designs)

	log.Printf("fleetobs: cluster-status leg — healthy fan-out, then one node killed")
	statusDoc := func(base string) (ok, dead, ring int, p50, p99 float64, answered bool, err error) {
		code, body, herr := hit(client, base+"/v1/cluster/status")
		if herr != nil || code != http.StatusOK {
			return 0, 0, 0, 0, 0, false, fmt.Errorf("cluster status: code=%d err=%v", code, herr)
		}
		var doc struct {
			NodesOK   int `json:"nodes_ok"`
			NodesDead int `json:"nodes_dead"`
			Fleet     struct {
				Overall struct {
					P50Us float64 `json:"p50_us"`
					P99Us float64 `json:"p99_us"`
				} `json:"overall"`
			} `json:"fleet"`
			Ring map[string]float64 `json:"ring"`
		}
		if err := json.Unmarshal(body, &doc); err != nil {
			return 0, 0, 0, 0, 0, false, err
		}
		return doc.NodesOK, doc.NodesDead, len(doc.Ring), doc.Fleet.Overall.P50Us, doc.Fleet.Overall.P99Us, true, nil
	}
	ok, _, ring, p50, p99, _, err := statusDoc(nodeA.url)
	if err != nil {
		return nil, err
	}
	rep.Status.HealthyOK, rep.Status.RingNodes = ok, ring
	rep.Status.FleetP50Us, rep.Status.FleetP99Us = p50, p99
	nodeB.stop()
	ok, dead, _, _, _, answered, err := statusDoc(nodeA.url)
	if err != nil {
		return nil, err
	}
	rep.Status.DegradedOK, rep.Status.DegradedDead, rep.Status.DegradedAnswered = ok, dead, answered

	// ---- Leg 3: SLO burn under induced errors -----------------------
	log.Printf("fleetobs: slo leg — availability objective under fault injection")
	objs, err := obs.ParseSLOSpec("/v1/designs:availability:99")
	if err != nil {
		return nil, err
	}
	sloNode, err := startObsNode(func(o *server.Options) {
		o.SLOs = objs
		o.FaultHeader = true
	})
	if err != nil {
		return nil, err
	}
	defer sloNode.stop()
	dbgLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	dbgSrv := &http.Server{Handler: sloNode.svc.DebugHandler()}
	go dbgSrv.Serve(dbgLn)
	defer dbgSrv.Close()
	dbgURL := "http://" + dbgLn.Addr().String()
	if err := waitHealthy(client, sloNode.url, 15*time.Second); err != nil {
		return nil, err
	}

	goodN, badN := 50, 5
	if quick {
		goodN = 20
	}
	for i := 0; i < goodN; i++ {
		if code, _, err := hit(client, sloNode.url+"/v1/designs"); err != nil || code != http.StatusOK {
			return nil, fmt.Errorf("slo good request: code=%d err=%v", code, err)
		}
	}
	for i := 0; i < badN; i++ {
		code, _, err := hitFault(client, sloNode.url+"/v1/designs", "server.handler:error")
		if err != nil || code < 500 {
			return nil, fmt.Errorf("slo induced error: code=%d err=%v (want 5xx)", code, err)
		}
	}
	code, body, err := hit(client, dbgURL+"/debug/slo")
	if err != nil || code != http.StatusOK {
		return nil, fmt.Errorf("/debug/slo: code=%d err=%v", code, err)
	}
	var sloDoc struct {
		Enabled    bool                  `json:"enabled"`
		Objectives []obs.ObjectiveReport `json:"objectives"`
	}
	if err := json.Unmarshal(body, &sloDoc); err != nil {
		return nil, err
	}
	if !sloDoc.Enabled || len(sloDoc.Objectives) != 1 {
		return nil, fmt.Errorf("/debug/slo: enabled=%t objectives=%d", sloDoc.Enabled, len(sloDoc.Objectives))
	}
	o := sloDoc.Objectives[0]
	rep.SLO.Good, rep.SLO.Bad = o.Good, o.Bad
	if len(o.Windows) > 0 {
		rep.SLO.Burn1m = o.Windows[0].Burn
	}
	rep.SLO.Exemplars = len(o.Exemplars)
	rep.SLO.ExemplarsTraced = len(o.Exemplars) > 0
	for _, ex := range o.Exemplars {
		if ex.TraceID == "" {
			rep.SLO.ExemplarsTraced = false
		}
	}
	rep.SLO.BucketExemplars = len(o.BucketEx)
	_, mbody, err := hit(client, sloNode.url+"/metrics")
	if err != nil {
		return nil, err
	}
	rep.SLO.MetricsFamilies = strings.Contains(string(mbody), "obdreld_slo_burn_rate{") &&
		strings.Contains(string(mbody), "obdreld_slo_bad_total{")

	// ---- Leg 4: wide-event cost accounting --------------------------
	log.Printf("fleetobs: wide-event leg — disabled-path cost, then one event per request")
	bare := context.Background()
	rep.Wide.DisabledAllocsPerOp = testing.AllocsPerRun(2000, func() {
		obs.ReqStatsFrom(bare).RecordStage("thermal", "built", 12345)
	})
	const iters = 1_000_000
	t0 := time.Now()
	for i := 0; i < iters; i++ {
		obs.ReqStatsFrom(bare).RecordStage("thermal", "built", 12345)
	}
	rep.Wide.DisabledNsPerOp = float64(time.Since(t0).Nanoseconds()) / iters

	baseNode, err := startObsNode(nil)
	if err != nil {
		return nil, err
	}
	defer baseNode.stop()
	if err := waitHealthy(client, baseNode.url, 15*time.Second); err != nil {
		return nil, err
	}
	reqN := 1500
	if quick {
		reqN = 300
	}
	var lat obs.Histogram
	for i := 0; i < reqN; i++ {
		t := time.Now()
		if code, _, err := hit(client, baseNode.url+"/v1/designs"); err != nil || code != http.StatusOK {
			return nil, fmt.Errorf("baseline request: code=%d err=%v", code, err)
		}
		lat.Observe(time.Since(t))
	}
	rep.Wide.MeanRequestUs = float64(lat.Mean().Nanoseconds()) / 1e3
	if rep.Wide.MeanRequestUs > 0 {
		rep.Wide.DisabledOverheadPct = rep.Wide.DisabledNsPerOp / (rep.Wide.MeanRequestUs * 1e3) * 100
	}

	var wideBuf lockedBuf
	wideNode, err := startObsNode(func(o *server.Options) {
		o.WideEvents = &wideBuf
		o.WideEventSample = 1
	})
	if err != nil {
		return nil, err
	}
	defer wideNode.stop()
	if err := waitHealthy(client, wideNode.url, 15*time.Second); err != nil {
		return nil, err
	}
	wideReqs := 0
	for i := 0; i < reqN/10; i++ {
		if code, _, err := hit(client, wideNode.url+"/v1/designs"); err != nil || code != http.StatusOK {
			return nil, fmt.Errorf("wide request: code=%d err=%v", code, err)
		}
		wideReqs++
	}
	// A few pipeline-backed requests so events carry stage walks.
	for i := 0; i < 3; i++ {
		if code, _, err := hit(client, lifetime(wideNode.url, "C1")); err != nil || code != http.StatusOK {
			return nil, fmt.Errorf("wide lifetime request: code=%d err=%v", code, err)
		}
		wideReqs++
	}
	rep.Wide.Requests = wideReqs
	// The emit runs in the handler's deferred path, which can trail the
	// response by a scheduler tick — wait for the counter to settle.
	deadline := time.Now().Add(5 * time.Second)
	for wideNode.svc.WideEventsEmitted() < int64(wideReqs) && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	rep.Wide.EventsParsed = true
	for _, line := range strings.Split(strings.TrimSpace(wideBuf.String()), "\n") {
		var ev struct {
			Route  string `json:"route"`
			Status int    `json:"status"`
			DurUs  int64  `json:"dur_us"`
			Cache  string `json:"cache"`
			Stages []struct {
				Stage  string `json:"stage"`
				Source string `json:"source"`
			} `json:"stages"`
		}
		if err := json.Unmarshal([]byte(line), &ev); err != nil || ev.Route == "" || ev.Status == 0 || ev.Cache == "" {
			rep.Wide.EventsParsed = false
			continue
		}
		rep.Wide.Events++
		if len(ev.Stages) > 0 {
			rep.Wide.EventsWithStages++
		}
	}
	return rep, nil
}

// fleetObsGates are the pass/fail checks enforced after a run — the
// same checks the validator re-runs against the committed report.
func fleetObsGates(rep *FleetObsReport) []string {
	var fails []string
	gate := func(ok bool, format string, a ...any) {
		if !ok {
			fails = append(fails, fmt.Sprintf(format, a...))
		}
	}
	gate(rep.Trace.Queries > 0, "no cross-node trace queries recorded")
	gate(rep.Trace.SingleTrace, "cross-node explain did not render a single trace with artifact.fetch + peer.serve")
	gate(rep.Trace.FetchSpans > 0, "artifact.fetch spans = %d, want > 0", rep.Trace.FetchSpans)
	gate(rep.Trace.ServeSubtrees > 0, "grafted peer.serve subtrees = %d, want > 0", rep.Trace.ServeSubtrees)
	gate(rep.Trace.OwnerAdopted, "owner never adopted the follower's trace id")
	gate(rep.Status.HealthyOK == 2, "healthy fan-out nodes_ok = %d, want 2", rep.Status.HealthyOK)
	gate(rep.Status.RingNodes == 2, "ring nodes = %d, want 2", rep.Status.RingNodes)
	gate(rep.Status.FleetP50Us > 0 && rep.Status.FleetP99Us >= rep.Status.FleetP50Us,
		"fleet quantiles implausible: p50=%v p99=%v", rep.Status.FleetP50Us, rep.Status.FleetP99Us)
	gate(rep.Status.DegradedAnswered, "degraded fleet did not answer")
	gate(rep.Status.DegradedOK == 1 && rep.Status.DegradedDead == 1,
		"degraded fan-out ok=%d dead=%d, want 1/1", rep.Status.DegradedOK, rep.Status.DegradedDead)
	gate(rep.SLO.Bad > 0, "slo bad total = %d, want > 0", rep.SLO.Bad)
	gate(rep.SLO.Burn1m > 1, "slo 1m burn = %v, want > 1 (induced errors must over-burn the budget)", rep.SLO.Burn1m)
	gate(rep.SLO.Exemplars > 0 && rep.SLO.ExemplarsTraced, "slo exemplars missing or untraced (%d)", rep.SLO.Exemplars)
	gate(rep.SLO.BucketExemplars > 0, "slo bucket exemplars = %d, want > 0", rep.SLO.BucketExemplars)
	gate(rep.SLO.MetricsFamilies, "obdreld_slo_* families missing from /metrics")
	gate(rep.Wide.DisabledAllocsPerOp == 0, "disabled wide-event path allocates %v/op, want exactly 0", rep.Wide.DisabledAllocsPerOp)
	gate(rep.Wide.DisabledOverheadPct < 2, "disabled wide-event overhead %.4f%% of a mean request, want < 2%%", rep.Wide.DisabledOverheadPct)
	gate(rep.Wide.Events == rep.Wide.Requests, "wide events = %d for %d requests, want 1:1", rep.Wide.Events, rep.Wide.Requests)
	gate(rep.Wide.EventsParsed, "wide events failed to parse or missed required fields")
	gate(rep.Wide.EventsWithStages > 0, "no wide event carried a stage walk")
	return fails
}

// validateFleetObsReport checks an existing v8 report — the CI schema
// gate for the committed BENCH_pr9.json.
func validateFleetObsReport(data []byte) error {
	var rep FleetObsReport
	if err := strictDecode(data, &rep); err != nil {
		return err
	}
	switch {
	case rep.Schema != FleetObsSchema:
		return fmt.Errorf("schema %q, want %q", rep.Schema, FleetObsSchema)
	case rep.Kind != FleetObsKind:
		return fmt.Errorf("kind %q, want %q", rep.Kind, FleetObsKind)
	case rep.GeneratedAt == "":
		return fmt.Errorf("generated_at missing")
	}
	if fails := fleetObsGates(&rep); len(fails) > 0 {
		return fmt.Errorf("%s", strings.Join(fails, "; "))
	}
	return nil
}
