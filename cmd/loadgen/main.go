// Command loadgen is a closed-loop load generator for obdreld: N
// workers issue mixed reliability-query traffic back-to-back for a
// fixed duration, then the tool reports per-route latency percentiles
// and total throughput, scrapes the daemon's /metrics for the cache
// hit rate, and writes BENCH_pr2.json (obdrel-bench/v1 schema) — the
// serving-path performance baseline tracked across PRs.
//
// Client-side latency is recorded into the same fixed-bucket histogram
// the server exports on /metrics (internal/obs.Histogram), so the two
// distributions are directly comparable; the reported p50/p95/p99 are
// bucket-interpolated and max is exact. Every request carries a W3C
// traceparent header, so the daemon's /debug/traces entries can be
// joined back to the load generator's records by trace id.
//
//	loadgen -addr http://127.0.0.1:8080           # against a running daemon
//	loadgen -self                                 # spin up the service in-process
//	loadgen -quick -self -o BENCH_pr2.json        # CI-sized run
//	loadgen -self -mix maxvdd                     # DVS-style max-VDD-heavy traffic
//	loadgen -validate BENCH_pr2.json              # schema check only
//
// Two traffic presets are built in: "drm" (the default — steady-state
// reliability polling: lifetime, failure probability, block stats) and
// "maxvdd" (a dynamic-voltage-scaling controller hammering /v1/maxvdd,
// which exercises the stage cache's cross-probe reuse). The report
// includes per-stage cache counters scraped from the daemon's labeled
// obdreld_stage_* metric families.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"obdrel/internal/obs"
	"obdrel/internal/server"
)

// Schema is the report format identifier; Kind separates the serving
// report from cmd/bench's engine report under the same schema family.
const (
	Schema = "obdrel-bench/v1"
	Kind   = "serving"
)

// mixes is the single registry of traffic presets: name → one-line
// description. The -mix flag help and the unknown-mix error both
// derive from it, so adding a preset here is the whole wiring.
var mixes = map[string]string{
	"drm":        "steady-state reliability polling (lifetime, failureprob, blocks)",
	"maxvdd":     "DVS controller hammering /v1/maxvdd",
	"fleet":      "batched fleet sweeps and telemetry replay on /v1/batch (v6 report)",
	"cluster":    "two-node peer cache-fill, disk-tier restart, bit-identity gates (v7 report)",
	"fleetobs":   "cross-node tracing, cluster-status fan-out, SLO burn, wide events (v8 report)",
	"membership": "dynamic 3-node cluster: kill −9 failover on warm replicas, join + rebalance (v9 report)",
}

// mixNames lists the registered presets, sorted, for messages.
func mixNames() string {
	names := make([]string, 0, len(mixes))
	for n := range mixes {
		names = append(names, n)
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}

// Report is the top-level BENCH_pr2.json document.
type Report struct {
	Schema        string        `json:"schema"`
	Kind          string        `json:"kind"`
	GeneratedAt   string        `json:"generated_at"`
	Target        string        `json:"target"`
	Quick         bool          `json:"quick"`
	GoMaxProcs    int           `json:"go_max_procs"`
	Concurrency   int           `json:"concurrency"`
	DurationS     float64       `json:"duration_s"`
	TotalRequests int           `json:"total_requests"`
	Errors        int           `json:"errors"`
	ThroughputRPS float64       `json:"throughput_rps"`
	Mix           string        `json:"mix,omitempty"`
	Routes        []RouteStats  `json:"routes"`
	Cache         CacheStats    `json:"cache"`
	EngineBuilds  BuildStats    `json:"engine_builds"`
	Stages        []StageScrape `json:"stages,omitempty"`
}

// RouteStats carries one route's latency distribution, measured
// client-side in the server's fixed bucket shape: mean and max are
// exact, percentiles are interpolated within the containing bucket
// (the same estimator Prometheus applies to the server's histogram).
type RouteStats struct {
	Route  string  `json:"route"`
	Count  int     `json:"count"`
	Errors int     `json:"errors"`
	MeanUs float64 `json:"mean_us"`
	P50Us  float64 `json:"p50_us"`
	P95Us  float64 `json:"p95_us"`
	P99Us  float64 `json:"p99_us"`
	MaxUs  float64 `json:"max_us"`
}

// CacheStats snapshots the daemon's analyzer registry counters.
type CacheStats struct {
	Hits      int64   `json:"hits"`
	Misses    int64   `json:"misses"`
	Coalesced int64   `json:"coalesced"`
	HitRate   float64 `json:"hit_rate"`
}

// BuildStats snapshots the daemon's engine-build cost.
type BuildStats struct {
	Count        int64   `json:"count"`
	TotalSeconds float64 `json:"total_seconds"`
}

// StageScrape is one stage's cache counters parsed from the labeled
// obdreld_stage_* metric families.
type StageScrape struct {
	Stage           string  `json:"stage"`
	Hits            int64   `json:"hits"`
	Misses          int64   `json:"misses"`
	Builds          int64   `json:"builds"`
	CancelledBuilds int64   `json:"cancelled_builds"`
	BuildSeconds    float64 `json:"build_seconds"`
	Entries         int64   `json:"entries"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("loadgen: ")
	var (
		addr        = flag.String("addr", "http://127.0.0.1:8080", "obdreld base URL")
		self        = flag.Bool("self", false, "start the service in-process instead of targeting -addr")
		out         = flag.String("o", "BENCH_pr2.json", "output JSON path (\"-\" for stdout)")
		duration    = flag.Duration("duration", 10*time.Second, "timed phase length")
		concurrency = flag.Int("concurrency", 8, "closed-loop workers")
		design      = flag.String("design", "C1", "design the query mix targets")
		gridN       = flag.Int("grid", 8, "correlation grid resolution the queries request")
		mcSamples   = flag.Int("mc-samples", 100, "MC samples the queries request")
		seed        = flag.Int64("seed", 1, "traffic-mix random seed")
		mixName     = flag.String("mix", "drm", "traffic preset: "+mixNames())
		quick       = flag.Bool("quick", false, "CI-sized run: 2s, 4 workers")
		validate    = flag.String("validate", "", "validate an existing report instead of generating load")
		chaos       = flag.Bool("chaos", false, "run the chaos scenario (fault churn, breaker open/recover, leakage check) and write a v4 report")
		maxErrRate  = flag.Float64("max-error-rate", 0, "exit nonzero when the run's client error rate exceeds this fraction")
	)
	flag.Parse()

	if *validate != "" {
		kind, err := validateAnyReport(*validate)
		if err != nil {
			log.Fatalf("validate %s: %v", *validate, err)
		}
		fmt.Printf("loadgen: %s conforms to %s\n", *validate, kind)
		return
	}
	if *quick {
		*duration = 2 * time.Second
		*concurrency = 4
	}
	if *chaos && *out == "BENCH_pr2.json" {
		*out = "BENCH_pr5.json"
	}
	if *mixName == "fleet" && *out == "BENCH_pr2.json" {
		*out = "BENCH_pr7.json"
	}
	if *mixName == "cluster" && *out == "BENCH_pr2.json" {
		*out = "BENCH_pr8.json"
	}
	if *mixName == "fleetobs" && *out == "BENCH_pr2.json" {
		*out = "BENCH_pr9.json"
	}
	if *mixName == "membership" && *out == "BENCH_pr2.json" {
		*out = "BENCH_pr10.json"
	}
	if _, ok := mixes[*mixName]; !ok {
		log.Fatalf("unknown traffic mix %q (want %s)", *mixName, mixNames())
	}

	target := strings.TrimRight(*addr, "/")
	if *self {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		opts := server.Options{MaxConcurrent: *concurrency * 2}
		if *chaos {
			// The chaos scenario needs per-request X-Fault injection
			// and a breaker that opens and recovers inside CI budgets.
			opts.FaultHeader = true
			opts.BreakerThreshold = 3
			opts.BreakerOpenFor = 750 * time.Millisecond
			opts.QueueDepth = *concurrency * 4
		}
		svc := server.New(opts)
		hs := &http.Server{Handler: svc.Handler()}
		go hs.Serve(ln)
		defer hs.Close()
		target = "http://" + ln.Addr().String()
		log.Printf("self-hosted service on %s", target)
	}

	if *chaos {
		client := &http.Client{Timeout: 60 * time.Second}
		rep, err := runChaos(client, target, *quick)
		if err != nil {
			log.Fatal(err)
		}
		writeReport(*out, rep)
		if fails := chaosGates(rep); len(fails) > 0 {
			for _, f := range fails {
				log.Printf("GATE FAILED: %s", f)
			}
			os.Exit(1)
		}
		log.Printf("all chaos gates passed")
		return
	}

	if *mixName == "cluster" {
		// The cluster preset always self-hosts: it needs two coordinated
		// nodes plus a restart, which no single -addr target provides.
		dirA, err := os.MkdirTemp("", "obdrel-artifacts-a-*")
		if err != nil {
			log.Fatal(err)
		}
		defer os.RemoveAll(dirA)
		dirB, err := os.MkdirTemp("", "obdrel-artifacts-b-*")
		if err != nil {
			log.Fatal(err)
		}
		defer os.RemoveAll(dirB)
		rep, err := runCluster(*gridN, *mcSamples, *quick, dirA, dirB)
		if err != nil {
			log.Fatal(err)
		}
		writeReport(*out, rep)
		log.Printf("wrote %s: follower builds=%d peer_hits=%d identical=%v; restart builds=%d disk_hits=%d identical=%v",
			*out, rep.Follower.StageBuilds, rep.Follower.PeerHits, rep.Follower.Identical,
			rep.Restart.StageBuilds, rep.Restart.DiskHits, rep.Restart.Identical)
		if fails := clusterGates(rep); len(fails) > 0 {
			for _, f := range fails {
				log.Printf("GATE FAILED: %s", f)
			}
			os.Exit(1)
		}
		log.Printf("all cluster gates passed")
		return
	}

	if *mixName == "membership" {
		// The membership preset always self-hosts: it needs a kill −9
		// of one node and a mid-flight join, which no single -addr
		// target provides.
		rep, err := runMembership(*gridN, *mcSamples, *quick)
		if err != nil {
			log.Fatal(err)
		}
		writeReport(*out, rep)
		log.Printf("wrote %s: failover errors=%d builds=%d identical=%v dead_detect=%.0fms; joiner builds=%d streamed=%d identical=%v",
			*out, rep.Failover.Errors, rep.Failover.StageBuilds, rep.Failover.Identical,
			rep.Membership.DeadDetectMs, rep.Joiner.StageBuilds,
			rep.Membership.RebalanceFetched, rep.Joiner.Identical)
		if fails := membershipGates(rep); len(fails) > 0 {
			for _, f := range fails {
				log.Printf("GATE FAILED: %s", f)
			}
			os.Exit(1)
		}
		log.Printf("all membership gates passed")
		return
	}

	if *mixName == "fleetobs" {
		// The fleet-observability preset always self-hosts: it needs a
		// traced two-node cluster, a node kill, fault injection, and
		// direct access to a node's trace ring.
		rep, err := runFleetObs(*gridN, *mcSamples, *quick)
		if err != nil {
			log.Fatal(err)
		}
		writeReport(*out, rep)
		log.Printf("wrote %s: single_trace=%v owner_adopted=%v degraded ok/dead=%d/%d slo_burn_1m=%.2f wide disabled %.2f allocs/op %.4f%% overhead",
			*out, rep.Trace.SingleTrace, rep.Trace.OwnerAdopted,
			rep.Status.DegradedOK, rep.Status.DegradedDead, rep.SLO.Burn1m,
			rep.Wide.DisabledAllocsPerOp, rep.Wide.DisabledOverheadPct)
		if fails := fleetObsGates(rep); len(fails) > 0 {
			for _, f := range fails {
				log.Printf("GATE FAILED: %s", f)
			}
			os.Exit(1)
		}
		log.Printf("all fleetobs gates passed")
		return
	}

	if *mixName == "fleet" {
		client := &http.Client{Timeout: 10 * time.Minute}
		if err := waitHealthy(client, target, 30*time.Second); err != nil {
			log.Fatal(err)
		}
		rep, err := runFleet(client, target, *design, *gridN, *mcSamples, *quick)
		if err != nil {
			log.Fatal(err)
		}
		writeReport(*out, rep)
		log.Printf("wrote %s: batch %.0f items/s vs unary %.0f items/s (%.1fx), replay bit-identical=%v",
			*out, rep.Warm.ItemsPerSec, rep.Unary.ItemsPerSec, rep.AmortizationX, rep.Replay.BitIdentical)
		if fails := fleetGates(rep); len(fails) > 0 {
			for _, f := range fails {
				log.Printf("GATE FAILED: %s", f)
			}
			os.Exit(1)
		}
		log.Printf("all fleet gates passed")
		return
	}

	rep, err := run(target, *duration, *concurrency, *design, *gridN, *mcSamples, *seed, *mixName, *quick)
	if err != nil {
		log.Fatal(err)
	}

	writeReport(*out, rep)
	log.Printf("wrote %s: %d requests, %.0f req/s, cache hit rate %.3f",
		*out, rep.TotalRequests, rep.ThroughputRPS, rep.Cache.HitRate)
	for _, r := range rep.Routes {
		log.Printf("%-18s n=%-6d p50=%.0fµs p95=%.0fµs p99=%.0fµs",
			r.Route, r.Count, r.P50Us, r.P95Us, r.P99Us)
	}
	for _, st := range rep.Stages {
		log.Printf("stage %-10s hits=%-6d misses=%-4d builds=%-4d build_s=%.3f",
			st.Stage, st.Hits, st.Misses, st.Builds, st.BuildSeconds)
	}
	if rate := errorRate(rep); rate > *maxErrRate {
		log.Printf("error rate %.4f exceeds -max-error-rate %.4f (%d/%d requests failed)",
			rate, *maxErrRate, rep.Errors, rep.TotalRequests)
		os.Exit(1)
	}
}

// errorRate is the run's client-visible error fraction.
func errorRate(rep *Report) float64 {
	if rep.TotalRequests == 0 {
		return 0
	}
	return float64(rep.Errors) / float64(rep.TotalRequests)
}

// writeReport marshals any report to path ("-" for stdout).
func writeReport(path string, rep any) {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	data = append(data, '\n')
	if path == "-" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		log.Fatal(err)
	}
}

// routeRec accumulates one route's client-side results lock-free:
// the shared fixed-bucket latency histogram plus an error counter.
type routeRec struct {
	hist   obs.Histogram
	errors atomic.Int64
}

// weightedRoute is one entry of a traffic preset.
type weightedRoute struct {
	route, url string
	weight     int
}

// trafficMix returns the weighted query URLs for the named preset.
// All analyzer-backed routes share one (design, config) so the steady
// state exercises the warm cache.
//
//   - "drm" mirrors a dynamic-reliability-management deployment:
//     mostly lifetime and failure-probability polls, occasional
//     operating-point inspection.
//   - "maxvdd" mirrors a dynamic-voltage-scaling controller: the bulk
//     of the traffic is /v1/maxvdd bisections over a couple of target
//     lifetimes, which stresses the stage cache's cross-probe reuse
//     (substrate stages build once, only the voltage-dependent tail
//     rebuilds per probe voltage).
func trafficMix(target, design, mixName string, gridN, mcSamples int) ([]weightedRoute, error) {
	cfg := fmt.Sprintf("grid=%d&mc_samples=%d&stmc_samples=1000", gridN, mcSamples)
	q := func(path, params string) string { return target + path + "?" + params }
	switch mixName {
	case "drm":
		return []weightedRoute{
			{"/v1/lifetime", q("/v1/lifetime", "design="+design+"&method=hybrid&ppm=10&"+cfg), 40},
			{"/v1/lifetime", q("/v1/lifetime", "design="+design+"&method=st_fast&ppm=10&"+cfg), 15},
			{"/v1/failureprob", q("/v1/failureprob", "design="+design+"&method=hybrid&t=1e5&"+cfg), 25},
			{"/v1/blocks", q("/v1/blocks", "design="+design+"&"+cfg), 10},
			{"/v1/designs", target + "/v1/designs", 5},
			{"/healthz", target + "/healthz", 5},
		}, nil
	case "maxvdd":
		mv := func(targetHours, vlo, vhi string) string {
			return q("/v1/maxvdd", "design="+design+"&method=st_fast&ppm=10&target_hours="+targetHours+
				"&vlo="+vlo+"&vhi="+vhi+"&tolv=0.005&"+cfg)
		}
		return []weightedRoute{
			{"/v1/maxvdd", mv("43800", "1.0", "1.4"), 40}, // 5-year target
			{"/v1/maxvdd", mv("87600", "1.0", "1.4"), 25}, // 10-year target
			{"/v1/lifetime", q("/v1/lifetime", "design="+design+"&method=st_fast&ppm=10&"+cfg), 15},
			{"/v1/failureprob", q("/v1/failureprob", "design="+design+"&method=st_fast&t=1e5&"+cfg), 10},
			{"/v1/blocks", q("/v1/blocks", "design="+design+"&"+cfg), 5},
			{"/healthz", target + "/healthz", 5},
		}, nil
	default:
		return nil, fmt.Errorf("unknown traffic mix %q (want %s)", mixName, mixNames())
	}
}

func run(target string, duration time.Duration, concurrency int, design string, gridN, mcSamples int, seed int64, mixName string, quick bool) (*Report, error) {
	client := &http.Client{
		Timeout: 60 * time.Second,
		Transport: &http.Transport{
			MaxIdleConns:        concurrency * 2,
			MaxIdleConnsPerHost: concurrency * 2,
		},
	}
	if err := waitHealthy(client, target, 15*time.Second); err != nil {
		return nil, err
	}

	mix, err := trafficMix(target, design, mixName, gridN, mcSamples)
	if err != nil {
		return nil, err
	}
	totalWeight := 0
	for _, m := range mix {
		totalWeight += m.weight
	}

	// Warmup: drive each distinct query once so engine construction
	// happens before the timed phase. Build cost still shows up in
	// the report via the scraped engine_builds counters.
	for _, m := range mix {
		if _, _, err := hit(client, m.url); err != nil {
			return nil, fmt.Errorf("warmup %s: %w", m.url, err)
		}
	}

	// One histogram per route, shared by all workers: Observe is
	// atomic, so the record path takes no locks and no per-request
	// allocations.
	recs := map[string]*routeRec{}
	for _, m := range mix {
		if recs[m.route] == nil {
			recs[m.route] = &routeRec{}
		}
	}
	deadline := time.Now().Add(duration)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(w)))
			for time.Now().Before(deadline) {
				pick := rng.Intn(totalWeight)
				var route, url string
				for _, m := range mix {
					if pick < m.weight {
						route, url = m.route, m.url
						break
					}
					pick -= m.weight
				}
				// Client-minted trace identity: the server adopts the
				// trace id, so its /debug/traces entry and this request
				// join on it.
				tp := obs.Traceparent(obs.NewTraceID(), obs.NewSpanID())
				t0 := time.Now()
				code, _, err := hitTraced(client, url, tp)
				rec := recs[route]
				rec.hist.Observe(time.Since(t0))
				if err != nil || code != http.StatusOK {
					rec.errors.Add(1)
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	rep := &Report{
		Schema:      Schema,
		Kind:        Kind,
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		Target:      target,
		Quick:       quick,
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		Concurrency: concurrency,
		DurationS:   elapsed.Seconds(),
		Mix:         mixName,
	}
	routes := make([]string, 0, len(recs))
	for r, rec := range recs {
		if rec.hist.Count() > 0 {
			routes = append(routes, r)
		}
	}
	sort.Strings(routes)
	for _, r := range routes {
		st := routeStats(r, recs[r])
		rep.TotalRequests += st.Count
		rep.Errors += st.Errors
		rep.Routes = append(rep.Routes, st)
	}
	rep.ThroughputRPS = float64(rep.TotalRequests) / elapsed.Seconds()

	cache, builds, stages, err := scrapeMetrics(client, target)
	if err != nil {
		return nil, fmt.Errorf("scrape metrics: %w", err)
	}
	rep.Cache, rep.EngineBuilds, rep.Stages = cache, builds, stages
	return rep, nil
}

func hit(client *http.Client, url string) (int, []byte, error) {
	return hitTraced(client, url, "")
}

// hitTraced issues one GET, optionally carrying a W3C traceparent so
// the server joins its trace to the caller's identity.
func hitTraced(client *http.Client, url, traceparent string) (int, []byte, error) {
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		return 0, nil, err
	}
	if traceparent != "" {
		req.Header.Set("traceparent", traceparent)
	}
	resp, err := client.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	return resp.StatusCode, body, err
}

func waitHealthy(client *http.Client, target string, patience time.Duration) error {
	deadline := time.Now().Add(patience)
	for {
		code, _, err := hit(client, target+"/healthz")
		if err == nil && code == http.StatusOK {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("service at %s not healthy after %v (last: code=%d err=%v)", target, patience, code, err)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

func routeStats(route string, rec *routeRec) RouteStats {
	us := func(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }
	return RouteStats{
		Route:  route,
		Count:  int(rec.hist.Count()),
		Errors: int(rec.errors.Load()),
		MeanUs: us(rec.hist.Mean()),
		P50Us:  us(rec.hist.Quantile(0.50)),
		P95Us:  us(rec.hist.Quantile(0.95)),
		P99Us:  us(rec.hist.Quantile(0.99)),
		MaxUs:  us(rec.hist.Max()),
	}
}

// scrapeMetrics pulls the daemon's Prometheus text exposition and
// extracts the registry counters, build costs, and the per-stage
// cache families (labeled lines like
// obdreld_stage_cache_hits_total{stage="thermal"} 12).
func scrapeMetrics(client *http.Client, target string) (CacheStats, BuildStats, []StageScrape, error) {
	code, body, err := hit(client, target+"/metrics")
	if err != nil || code != http.StatusOK {
		return CacheStats{}, BuildStats{}, nil, fmt.Errorf("GET /metrics: code=%d err=%v", code, err)
	}
	vals := map[string]float64{}
	byStage := map[string]*StageScrape{}
	stageOf := func(s *string) *StageScrape {
		st, ok := byStage[*s]
		if !ok {
			st = &StageScrape{Stage: *s}
			byStage[*s] = st
		}
		return st
	}
	for _, line := range strings.Split(string(body), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			continue
		}
		v, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			continue
		}
		name, stage, ok := splitStageLabel(fields[0])
		if !ok {
			if !strings.Contains(fields[0], "{") {
				vals[fields[0]] = v
			}
			continue
		}
		st := stageOf(&stage)
		switch name {
		case "obdreld_stage_cache_hits_total":
			st.Hits = int64(v)
		case "obdreld_stage_cache_misses_total":
			st.Misses = int64(v)
		case "obdreld_stage_builds_total":
			st.Builds = int64(v)
		case "obdreld_stage_cancelled_builds_total":
			st.CancelledBuilds = int64(v)
		case "obdreld_stage_build_seconds_total":
			st.BuildSeconds = v
		case "obdreld_stage_entries":
			st.Entries = int64(v)
		}
	}
	cache := CacheStats{
		Hits:      int64(vals["obdreld_analyzer_cache_hits_total"]),
		Misses:    int64(vals["obdreld_analyzer_cache_misses_total"]),
		Coalesced: int64(vals["obdreld_coalesced_requests_total"]),
	}
	if total := cache.Hits + cache.Misses; total > 0 {
		cache.HitRate = float64(cache.Hits) / float64(total)
	}
	builds := BuildStats{
		Count:        int64(vals["obdreld_engine_builds_total"]),
		TotalSeconds: vals["obdreld_engine_build_seconds_total"],
	}
	stages := make([]StageScrape, 0, len(byStage))
	for _, st := range byStage {
		stages = append(stages, *st)
	}
	sort.Slice(stages, func(i, j int) bool { return stages[i].Stage < stages[j].Stage })
	return cache, builds, stages, nil
}

// splitStageLabel parses `name{stage="x"}` metric identifiers; any
// other labeled or unlabeled identifier returns ok=false.
func splitStageLabel(ident string) (name, stage string, ok bool) {
	open := strings.IndexByte(ident, '{')
	if open < 0 || !strings.HasSuffix(ident, "\"}") {
		return "", "", false
	}
	labels := ident[open+1 : len(ident)-2]
	const prefix = `stage="`
	if !strings.HasPrefix(labels, prefix) || strings.ContainsAny(labels[len(prefix):], `",`) {
		return "", "", false
	}
	return ident[:open], labels[len(prefix):], true
}

// strictDecode unmarshals with unknown fields rejected — the schema
// gates must notice accidental drift in either direction.
func strictDecode(data []byte, v any) error {
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}

// validateAnyReport sniffs the schema line and dispatches to the v1
// serving validator or the v4 chaos validator, returning a label for
// the success message.
func validateAnyReport(path string) (string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return "", err
	}
	var head struct {
		Schema string `json:"schema"`
	}
	if err := json.Unmarshal(data, &head); err != nil {
		return "", err
	}
	switch head.Schema {
	case ChaosSchema:
		return ChaosSchema + " (" + ChaosKind + ")", validateChaosReport(data)
	case FleetSchema:
		return FleetSchema + " (" + FleetKind + ")", validateFleetReport(data)
	case ClusterSchema:
		return ClusterSchema + " (" + ClusterKind + ")", validateClusterReport(data)
	case FleetObsSchema:
		return FleetObsSchema + " (" + FleetObsKind + ")", validateFleetObsReport(data)
	case MembershipSchema:
		return MembershipSchema + " (" + MembershipKind + ")", validateMembershipReport(data)
	case Schema:
		return Schema + " (" + Kind + ")", validateReport(data)
	default:
		return "", fmt.Errorf("schema %q: loadgen validates %q, %q, %q, %q, %q, and %q", head.Schema, Schema, ChaosSchema, FleetSchema, ClusterSchema, FleetObsSchema, MembershipSchema)
	}
}

// validateReport checks that an existing serving report parses and
// carries the required fields — the CI schema gate for BENCH_pr2.json.
func validateReport(data []byte) error {
	var rep Report
	if err := strictDecode(data, &rep); err != nil {
		return err
	}
	switch {
	case rep.Schema != Schema:
		return fmt.Errorf("schema %q, want %q", rep.Schema, Schema)
	case rep.Kind != Kind:
		return fmt.Errorf("kind %q, want %q", rep.Kind, Kind)
	case rep.Concurrency < 1:
		return fmt.Errorf("concurrency %d", rep.Concurrency)
	case rep.TotalRequests <= 0:
		return fmt.Errorf("no requests recorded")
	case rep.ThroughputRPS <= 0:
		return fmt.Errorf("throughput missing")
	case len(rep.Routes) == 0:
		return fmt.Errorf("no per-route stats")
	case rep.Cache.HitRate < 0 || rep.Cache.HitRate > 1:
		return fmt.Errorf("cache hit rate %v outside [0,1]", rep.Cache.HitRate)
	}
	for _, r := range rep.Routes {
		if r.Route == "" || r.Count <= 0 {
			return fmt.Errorf("route entry %+v incomplete", r)
		}
		if !(r.P50Us > 0) || !(r.P95Us >= r.P50Us) || !(r.P99Us >= r.P95Us) {
			return fmt.Errorf("%s: implausible percentiles p50=%v p95=%v p99=%v", r.Route, r.P50Us, r.P95Us, r.P99Us)
		}
	}
	// Stage counters are optional (reports generated before the stage
	// cache existed lack them) but must be plausible when present.
	for _, st := range rep.Stages {
		if st.Stage == "" {
			return fmt.Errorf("stage entry with empty name")
		}
		if st.Hits < 0 || st.Misses < st.Builds || st.BuildSeconds < 0 {
			return fmt.Errorf("stage %s: implausible counters %+v", st.Stage, st)
		}
	}
	return nil
}
