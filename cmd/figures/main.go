// Command figures regenerates the data behind the paper's results
// figures as CSV on stdout (with a short human-readable summary on
// stderr).
//
//	figures -fig 1    # block-structured temperature profiles (Fig. 1a/1b)
//	figures -fig 3    # gate-leakage trace with SBD→HBD (Fig. 3)
//	figures -fig 4    # BLOD histograms + Gaussian fit R² (Fig. 4)
//	figures -fig 6    # joint PDF of (u_j, v_j) vs marginal product (Fig. 6)
//	figures -fig 7    # normalized product error + mutual information (Fig. 7)
//	figures -fig 8    # quadratic-form CDF vs χ² approximation (Fig. 8)
//	figures -fig 10   # failure-rate curves of the four methods (Fig. 10)
//
// -workers parallelizes both the analyzer internals and the per-design
// / per-method fan-out of figs. 1 and 10; output order is fixed
// regardless of worker count.
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"math/rand"
	"os"
	"strings"

	"obdrel"
	"obdrel/internal/blod"
	"obdrel/internal/floorplan"
	"obdrel/internal/grid"
	"obdrel/internal/obd"
	"obdrel/internal/par"
	"obdrel/internal/stats"
	"obdrel/internal/textplot"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("figures: ")
	var (
		fig     = flag.Int("fig", 4, "figure to regenerate: 1, 3, 4, 6, 7, 8 or 10")
		seed    = flag.Int64("seed", 1, "random seed")
		workers = flag.Int("workers", 0, "parallelism for analyzers and figure fan-out (0 = GOMAXPROCS, 1 = serial)")
	)
	flag.Parse()
	switch *fig {
	case 1:
		fig1(*seed, *workers)
	case 3:
		fig3(*seed)
	case 4:
		fig4(*seed)
	case 6, 7:
		fig67(*fig, *seed)
	case 8:
		fig8(*seed)
	case 10:
		fig10(*seed, *workers)
	default:
		log.Fatalf("unknown figure %d (want 1, 3, 4, 6, 7, 8 or 10)", *fig)
	}
}

// note prints commentary to stderr so stdout stays machine-readable.
func note(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
}

// fig1 emits the solved temperature fields of the alpha-like C6 and a
// 4×4 many-core design. The designs solve in parallel; rows and
// summaries print in design order.
func fig1(seed int64, workers int) {
	designs := []*obdrel.Design{obdrel.C6()}
	if mc, err := obdrel.ManyCore(4, 50_000); err == nil {
		designs = append(designs, mc)
	}
	type result struct {
		rows, summary string
	}
	results := make([]result, len(designs))
	par.For(workers, len(designs), func(di int) {
		d := designs[di]
		cfg := obdrel.DefaultConfig()
		cfg.GridNx, cfg.GridNy = 10, 10 // the analysis grid is irrelevant here
		cfg.Seed = seed
		cfg.Workers = workers
		an, err := obdrel.NewAnalyzer(d, cfg)
		if err != nil {
			log.Fatal(err)
		}
		nx, ny, temps := an.TemperatureField()
		var rows strings.Builder
		for iy := 0; iy < ny; iy++ {
			for ix := 0; ix < nx; ix++ {
				fmt.Fprintf(&rows, "%s,%d,%d,%.3f\n", d.Name, ix, iy, temps[iy*nx+ix])
			}
		}
		min, mean, max := an.TempSpread()
		summary := fmt.Sprintf("%s: %.1f–%.1f °C (mean %.1f, spread %.1f K)", d.Name, min, max, mean, max-min)
		if art, err := textplot.HeatMap(temps, nx, ny, 2); err == nil {
			summary += "\n" + art
		}
		results[di] = result{rows.String(), summary}
	})
	fmt.Println("design,ix,iy,temp_c")
	for _, r := range results {
		fmt.Print(r.rows)
		note("%s", r.summary)
	}
}

// fig3 emits one stressed device's gate-leakage trace at the paper's
// 3.1 V / 100 °C condition.
func fig3(seed int64) {
	tech := obd.DefaultTech()
	tr, err := tech.SimulateLeakageTrace(obd.DefaultLeakageConfig(), rand.New(rand.NewSource(seed)))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("time_s,current_a")
	for _, p := range tr.Points {
		fmt.Printf("%.6g,%.6g\n", p.TimeS, p.CurrentA)
	}
	note("SBD at %.3g s (leakage ×%.1f), HBD at %.3g s; fresh leakage %.3g A",
		tr.TSBDs, tr.ISBD/tr.I0, tr.THBDs, tr.I0)
}

// fig4Setup builds the variation model and a two-block design with 5K
// and 20K devices used by Figs. 4 and 6–8.
func fig4Setup() (*floorplan.Design, *grid.Model, *grid.PCA, *blod.Characterization, error) {
	tech := obd.DefaultTech()
	sigmaTot := tech.U0 * 0.04 / 3
	sg, ss, se, err := grid.VarianceBudget(sigmaTot, 0.5, 0.25, 0.25)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	m, err := grid.NewModel(tech.U0, 1, 1, 10, 10, sg, ss, se, 0.5)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	pca, err := m.ComputePCA(1)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	d := &floorplan.Design{
		Name: "fig4", W: 1, H: 1,
		Blocks: []floorplan.Block{
			{Name: "b5k", X: 0, Y: 0, W: 0.5, H: 0.6, Devices: 5000, Activity: 0.5},
			{Name: "b20k", X: 0.5, Y: 0, W: 0.5, H: 1, Devices: 20000, Activity: 0.5},
		},
	}
	char, err := blod.Characterize(d, m)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	return d, m, pca, char, nil
}

// fig4 emits per-chip BLOD histograms for a 5K- and a 20K-device
// block with their Gaussian fits and R² — the property validation of
// Section IV-A.
func fig4(seed int64) {
	_, m, pca, char, err := fig4Setup()
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	shifts := pca.GridShifts(pca.SampleComponents(rng))
	fmt.Println("block,thickness_nm,density,gauss_fit")
	for i := range char.Blocks {
		bc := &char.Blocks[i]
		grids, counts := bc.DeviceAllocation()
		h, err := stats.NewHistogram(m.U0-5*m.SigmaE, m.U0+5*m.SigmaE, 60)
		if err != nil {
			log.Fatal(err)
		}
		for gi, g := range grids {
			base := m.U0 + shifts[g]
			for k := 0; k < counts[gi]; k++ {
				h.Add(base + m.SigmaE*rng.NormFloat64())
			}
		}
		fit, err := stats.NewNormal(h.Mean(), math.Sqrt(h.Variance()))
		if err != nil {
			log.Fatal(err)
		}
		for b := 0; b < h.Bins(); b++ {
			fmt.Printf("%s,%.6f,%.4f,%.4f\n", bc.Name, h.Mid(b), h.Density(b), fit.PDF(h.Mid(b)))
		}
		note("%s: %d devices, Gaussian fit R² = %.2f%% (paper: 99.8%% / 99.5%%)",
			bc.Name, int(bc.MJ), h.RSquareAgainst(fit.PDF)*100)
	}
}

// fig67 emits the joint PDF of (u_j, v_j) against the product of its
// marginals (Fig. 6), or the normalized error between them with the
// mutual information (Fig. 7).
func fig67(fig int, seed int64) {
	_, _, pca, char, err := fig4Setup()
	if err != nil {
		log.Fatal(err)
	}
	bc := &char.Blocks[1] // the 20K block spans several grids
	rng := rand.New(rand.NewSource(seed))
	ud, err := bc.UDist()
	if err != nil {
		log.Fatal(err)
	}
	vd, err := bc.VDist()
	if err != nil {
		log.Fatal(err)
	}
	h, err := stats.NewHistogram2D(
		ud.Quantile(5e-4), ud.Quantile(1-5e-4), 30,
		vd.Quantile(5e-4), vd.Quantile(1-5e-4), 30)
	if err != nil {
		log.Fatal(err)
	}
	const n = 300000
	for i := 0; i < n; i++ {
		u, v := bc.UVFromShifts(pca.GridShifts(pca.SampleComponents(rng)))
		h.Add(u, v)
	}
	px := h.MarginalX()
	py := h.MarginalY()
	if fig == 6 {
		fmt.Println("u_nm,v_nm2,joint_prob,marginal_product")
		for i := 0; i < h.XBins; i++ {
			for j := 0; j < h.YBins; j++ {
				fmt.Printf("%.6f,%.3e,%.3e,%.3e\n", h.XMid(i), h.YMid(j), h.Prob(i, j), px[i]*py[j])
			}
		}
		note("joint PDF vs marginal product over %d samples", n)
		return
	}
	peak := 0.0
	for i := 0; i < h.XBins; i++ {
		for j := 0; j < h.YBins; j++ {
			if p := h.Prob(i, j); p > peak {
				peak = p
			}
		}
	}
	fmt.Println("u_nm,v_nm2,normalized_error")
	for i := 0; i < h.XBins; i++ {
		for j := 0; j < h.YBins; j++ {
			e := math.Abs(h.Prob(i, j)-px[i]*py[j]) / peak
			fmt.Printf("%.6f,%.3e,%.4f\n", h.XMid(i), h.YMid(j), e)
		}
	}
	note("max normalized error %.2f%% (paper: ~7%%), mutual information %.4f nats (paper: 0.003)",
		h.MaxNormalizedProductError()*100, h.MutualInformation())
}

// fig8 emits the empirical CDF of the BLOD-variance quadratic form
// against its χ² moment-match approximation.
func fig8(seed int64) {
	_, _, pca, char, err := fig4Setup()
	if err != nil {
		log.Fatal(err)
	}
	bc := &char.Blocks[1]
	rng := rand.New(rand.NewSource(seed))
	const n = 60000
	vs := make([]float64, n)
	for i := range vs {
		_, vs[i] = bc.UVFromShifts(pca.GridShifts(pca.SampleComponents(rng)))
	}
	ecdf, err := stats.NewECDF(vs)
	if err != nil {
		log.Fatal(err)
	}
	vd, err := bc.VDist()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("v_nm2,cdf_mc,cdf_chi2")
	lo, hi := ecdf.Min(), ecdf.Max()
	for k := 0; k <= 120; k++ {
		v := lo + (hi-lo)*float64(k)/120
		fmt.Printf("%.4e,%.5f,%.5f\n", v, ecdf.At(v), vd.CDF(v))
	}
	note("KS distance between quadratic form and χ² approximation: %.4f",
		ecdf.KSDistance(vd.CDF))
}

// fig10 emits the failure-probability curves of MC, the
// temperature-aware statistical analysis, the temperature-unaware
// variant, and the guard-band bound on design C3, plus each method's
// 10-per-million lifetime error vs MC and the sampled chip failure
// times behind the empirical curve.
func fig10(seed int64, workers int) {
	cfg := obdrel.DefaultConfig()
	cfg.Seed = seed
	cfg.Workers = workers
	an, err := obdrel.NewAnalyzer(obdrel.C3(), cfg)
	if err != nil {
		log.Fatal(err)
	}
	ref, err := an.LifetimePPM(10, obdrel.MethodMC)
	if err != nil {
		log.Fatal(err)
	}
	methods := []obdrel.Method{obdrel.MethodMC, obdrel.MethodStFast, obdrel.MethodTempUnaware, obdrel.MethodGuard}
	markers := map[obdrel.Method]byte{
		obdrel.MethodMC: 'M', obdrel.MethodStFast: '*',
		obdrel.MethodTempUnaware: 'u', obdrel.MethodGuard: 'g',
	}
	// The four method curves are independent given the shared analyzer
	// (whose queries are safe for concurrent use) — fan them out and
	// print in method order.
	type curve struct {
		times, pf []float64
		life      float64
	}
	curves := make([]curve, len(methods))
	par.For(workers, len(methods), func(mi int) {
		m := methods[mi]
		times, pf, err := an.ReliabilityCurve(ref/30, ref*1000, 60, m)
		if err != nil {
			log.Fatal(err)
		}
		life, err := an.LifetimePPM(10, m)
		if err != nil {
			log.Fatal(err)
		}
		curves[mi] = curve{times, pf, life}
	})
	var chart []textplot.Series
	fmt.Println("method,time_h,p_fail")
	for mi, m := range methods {
		c := curves[mi]
		for i := range c.times {
			fmt.Printf("%s,%.5g,%.5g\n", m, c.times[i], c.pf[i])
		}
		chart = append(chart, textplot.Series{Name: m.String(), X: c.times, Y: c.pf, Marker: markers[m]})
		note("%-13s 10ppm lifetime %11.4g h   error vs MC %+6.1f%%", m, c.life, (c.life-ref)/ref*100)
	}
	if art, err := textplot.LinePlot(chart, 72, 20, true, true); err == nil {
		note("failure probability vs time (log-log):\n%s", art)
	}
	// The paper's blue curve: empirical lifetimes of 10 000 sampled
	// chips.
	ftimes, err := an.SampleFailureTimes(10_000)
	if err != nil {
		log.Fatal(err)
	}
	ecdf, err := stats.NewECDF(ftimes)
	if err != nil {
		log.Fatal(err)
	}
	for k := 0; k <= 60; k++ {
		t := ref / 30 * math.Pow(30*1000, float64(k)/60)
		fmt.Printf("sampled_lifetimes,%.5g,%.5g\n", t, ecdf.At(t))
	}
	note("sampled 10000 chip failure times (empirical curve 'sampled_lifetimes')")
}
