// Command obdreld serves full-chip oxide-breakdown reliability
// queries over JSON-HTTP — the runtime reliability-management
// deployment the paper's Section IV-E motivates: characterize once,
// then answer µs-latency lifetime/failure-probability queries for
// field systems, DRM controllers, and design sweeps.
//
// Routes:
//
//	GET /healthz                       liveness + registry occupancy
//	GET /metrics                       Prometheus text format
//	GET /v1/designs                    the built-in benchmark designs
//	GET /v1/lifetime?design=C6&method=hybrid&ppm=10
//	GET /v1/failureprob?design=C6&t=1e5
//	GET /v1/maxvdd?design=C6&target_hours=1e5&vlo=1.0&vhi=1.4
//	GET /v1/blocks?design=C6
//
// Every /v1 route also accepts POST with the same fields as a JSON
// body (config knobs nested under "config"). Analyzers are cached in
// an LRU registry keyed by canonical (design, config) identity;
// concurrent cold requests for one configuration coalesce into a
// single build, and the build itself resolves through the per-stage
// artifact cache (floorplan … chip), so configs that differ in only a
// few knobs rebuild only the stages those knobs feed.
//
//	obdreld -addr :8080 -cache 32 -stage-cache 64 -max-concurrent 64 -timeout 30s
//
// Every request runs under a trace (spans for stage lookups, thermal
// sweeps, bisection probes); append ?explain=1 to any /v1 query to get
// the span tree in the response, or start with -debug-addr to serve
// /debug/traces and /debug/pprof on a separate (typically localhost)
// listener. -slow-request logs a warning with the trace id for
// requests over the threshold.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"obdrel"
	"obdrel/internal/server"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("obdreld: ")
	var (
		addr          = flag.String("addr", ":8080", "listen address")
		cache         = flag.Int("cache", 32, "analyzer registry capacity (LRU entries)")
		stageCache    = flag.Int("stage-cache", 64, "per-stage artifact cache capacity (LRU entries per stage)")
		maxConcurrent = flag.Int("max-concurrent", 0, "max simultaneous /v1 requests; excess get 429 (0 = 4×GOMAXPROCS)")
		timeout       = flag.Duration("timeout", 30*time.Second, "per-request deadline")
		workers       = flag.Int("workers", 0, "analysis worker parallelism per build (0 = GOMAXPROCS)")
		drain         = flag.Duration("drain", 15*time.Second, "graceful-shutdown drain window")
		quiet         = flag.Bool("quiet", false, "suppress per-request access log")
		debugAddr     = flag.String("debug-addr", "", "diagnostics listener (/debug/traces + /debug/pprof); empty disables")
		slowRequest   = flag.Duration("slow-request", 0, "log a warning with the trace id for requests slower than this (0 disables)")
		traceBuffer   = flag.Int("trace-buffer", 128, "recent-trace ring capacity served by /debug/traces")
		noTrace       = flag.Bool("no-trace", false, "disable per-request tracing")
		traceJSONL    = flag.String("trace-jsonl", "", "append every finalized trace as a JSON line to this file")
	)
	flag.Parse()

	var accessLog io.Writer = os.Stderr
	if *quiet {
		accessLog = io.Discard
	}
	var traceSink io.Writer
	if *traceJSONL != "" {
		f, err := os.OpenFile(*traceJSONL, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			log.Fatalf("-trace-jsonl: %v", err)
		}
		defer f.Close()
		traceSink = f
	}
	obdrel.Stages().SetDefaultCapacity(*stageCache)
	svc := server.New(server.Options{
		MaxAnalyzers:   *cache,
		MaxConcurrent:  *maxConcurrent,
		RequestTimeout: *timeout,
		Workers:        *workers,
		AccessLog:      accessLog,
		DisableTracing: *noTrace,
		TraceBuffer:    *traceBuffer,
		TraceJSONL:     traceSink,
		SlowRequest:    *slowRequest,
	})
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           svc.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}

	var debugSrv *http.Server
	if *debugAddr != "" {
		debugSrv = &http.Server{
			Addr:              *debugAddr,
			Handler:           svc.DebugHandler(),
			ReadHeaderTimeout: 5 * time.Second,
		}
		go func() {
			log.Printf("debug listener on %s (/debug/traces, /debug/pprof)", *debugAddr)
			if err := debugSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Printf("debug listener: %v", err)
			}
		}()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() {
		log.Printf("serving on %s (cache=%d, timeout=%v)", *addr, *cache, *timeout)
		errCh <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errCh:
		log.Fatal(err)
	case <-ctx.Done():
	}

	// Graceful shutdown: stop accepting, drain in-flight requests for
	// up to the drain window, then report the session's counters.
	log.Printf("shutting down, draining for up to %v", *drain)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("drain incomplete: %v", err)
	}
	if debugSrv != nil {
		debugSrv.Shutdown(shutdownCtx)
	}
	m := svc.Metrics()
	fmt.Fprintf(os.Stderr,
		"obdreld: served %v; cache hits=%d misses=%d coalesced=%d; builds=%d (%.2fs); throttled=%d timed_out=%d; traces=%d\n",
		m.Uptime().Round(time.Second),
		m.CacheHits.Load(), m.CacheMisses.Load(), m.Coalesced.Load(),
		m.Builds.Load(), float64(m.BuildNanos.Load())/1e9,
		m.Throttled.Load(), m.TimedOut.Load(), svc.Tracer().Total())
	for _, st := range obdrel.Stages().Snapshot() {
		fmt.Fprintf(os.Stderr,
			"obdreld: stage %-10s hits=%d misses=%d builds=%d cancelled=%d build_s=%.3f entries=%d\n",
			st.Stage, st.Hits, st.Misses, st.Builds, st.Cancels, st.BuildSeconds, st.Entries)
	}
}
