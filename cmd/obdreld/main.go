// Command obdreld serves full-chip oxide-breakdown reliability
// queries over JSON-HTTP — the runtime reliability-management
// deployment the paper's Section IV-E motivates: characterize once,
// then answer µs-latency lifetime/failure-probability queries for
// field systems, DRM controllers, and design sweeps.
//
// Routes:
//
//	GET /healthz                       liveness + registry occupancy
//	GET /readyz                        readiness (503 once draining)
//	GET /metrics                       Prometheus text format
//	GET /v1/designs                    the built-in benchmark designs
//	GET /v1/lifetime?design=C6&method=hybrid&ppm=10
//	GET /v1/failureprob?design=C6&t=1e5
//	GET /v1/maxvdd?design=C6&target_hours=1e5&vlo=1.0&vhi=1.4
//	GET /v1/blocks?design=C6
//	POST /v1/batch                     fleet-scale JSON-array request, JSONL stream response
//
// /v1/batch accepts thousands of (design, config, query) items in one
// request, plans them window-at-a-time (-batch-window) through the
// internal/batch planner — substrate builds once per distinct
// (design, config) group, duplicate queries answered once — and
// streams one JSONL line per item plus a counting trailer. Items may
// also carry a telemetry trace (piecewise temp/voltage segments) for
// Miner's-rule replay. See DESIGN.md §13.
//
// Every query /v1 route also accepts POST with the same fields as a
// JSON body (config knobs nested under "config"). Analyzers are cached in
// an LRU registry keyed by canonical (design, config) identity;
// concurrent cold requests for one configuration coalesce into a
// single build, and the build itself resolves through the per-stage
// artifact cache (floorplan … chip), so configs that differ in only a
// few knobs rebuild only the stages those knobs feed.
//
//	obdreld -addr :8080 -cache 32 -stage-cache 64 -max-concurrent 64 -timeout 30s
//
// Every request runs under a trace (spans for stage lookups, thermal
// sweeps, bisection probes); append ?explain=1 to any /v1 query to get
// the span tree in the response, or start with -debug-addr to serve
// /debug/traces and /debug/pprof on a separate (typically localhost)
// listener. -slow-request logs a warning with the trace id for
// requests over the threshold.
//
// Resilience (see DESIGN.md §11): transient build failures retry with
// jittered exponential backoff (-retries, -retry-base); repeatedly
// failing (design, config) keys trip a per-fingerprint circuit breaker
// (-breaker-threshold, -breaker-open); failed rebuilds younger than
// -max-stale serve the last-good analyzer with Warning/X-Staleness
// headers; saturated requests wait in a deadline-aware admission queue
// (-queue) instead of an instant 429. Chaos testing arms deterministic
// fault injection process-wide (-fault, -fault-seed) or per request
// (-fault-header + X-Fault) — test and staging builds only.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"obdrel"
	"obdrel/internal/fault"
	"obdrel/internal/obs"
	"obdrel/internal/server"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("obdreld: ")
	var (
		addr          = flag.String("addr", ":8080", "listen address")
		cache         = flag.Int("cache", 32, "analyzer registry capacity (LRU entries)")
		stageCache    = flag.Int("stage-cache", 64, "per-stage artifact cache capacity (LRU entries per stage)")
		maxConcurrent = flag.Int("max-concurrent", 0, "max simultaneous /v1 requests; excess get 429 (0 = 4×GOMAXPROCS)")
		timeout       = flag.Duration("timeout", 30*time.Second, "per-request deadline")
		workers       = flag.Int("workers", 0, "analysis worker parallelism per build (0 = GOMAXPROCS)")
		tableDir      = flag.String("table-dir", "", "spill hybrid lookup tables to this directory and serve them from a shared read-only mapping across restarts (empty disables)")
		drain         = flag.Duration("drain", 15*time.Second, "graceful-shutdown drain window")
		quiet         = flag.Bool("quiet", false, "suppress per-request access log")
		debugAddr     = flag.String("debug-addr", "", "diagnostics listener (/debug/traces + /debug/pprof); empty disables")
		slowRequest   = flag.Duration("slow-request", 0, "log a warning with the trace id for requests slower than this (0 disables)")
		traceBuffer   = flag.Int("trace-buffer", 128, "recent-trace ring capacity served by /debug/traces")
		noTrace       = flag.Bool("no-trace", false, "disable per-request tracing")
		traceJSONL    = flag.String("trace-jsonl", "", "append every finalized trace as a JSON line to this file")

		batchWindow   = flag.Int("batch-window", 0, "/v1/batch items planned and held in memory at a time (0 = 256)")
		batchMaxItems = flag.Int("batch-max-items", 0, "max items admitted per /v1/batch stream; excess items fail the trailer (0 = 10000)")
		batchTimeout  = flag.Duration("batch-timeout", 0, "whole-stream deadline for /v1/batch (0 = 5m; -timeout does not apply to batch streams)")

		retries     = flag.Int("retries", 3, "analyzer-build attempts on transient failures (1 disables retry)")
		retryBase   = flag.Duration("retry-base", 25*time.Millisecond, "first retry backoff delay (doubles per attempt, jittered)")
		breakerN    = flag.Int("breaker-threshold", 5, "consecutive build failures that open a per-design circuit (negative disables)")
		breakerOpen = flag.Duration("breaker-open", 5*time.Second, "open-circuit TTL before a half-open probe")
		maxStale    = flag.Duration("max-stale", 15*time.Minute, "serve-stale window: failed rebuilds answer from a last-good analyzer this old or younger (negative disables)")
		queueDepth  = flag.Int("queue", -1, "admission queue depth for saturated requests (-1 = 2×max-concurrent, 0 = legacy instant 429)")
		drainNotice = flag.Duration("drain-notice", 0, "pause between flipping /readyz unready and closing the listener, so load balancers stop routing first")
		faultSpec   = flag.String("fault", "", "process-wide fault-injection profile, e.g. 'pipeline.build:error:0.1,thermal.solve:latency:50ms:0.05' (test/staging only)")
		faultSeed   = flag.Int64("fault-seed", 1, "decision-stream seed for -fault rules without their own seed= segment")
		faultHeader = flag.Bool("fault-header", false, "honour per-request X-Fault injection headers (never on a public listener)")

		sloSpec    = flag.String("slo", "", "burn-rate objectives, e.g. '/v1/lifetime:availability:99.9,/v1/lifetime:latency:25ms:99' (route '*' watches every route); served on /debug/slo and as obdreld_slo_* metrics")
		wideEvents = flag.String("wide-events", "", "append one canonical JSONL event per sampled request to this file ('-' = stderr; empty disables)")
		wideSample = flag.Int("wide-sample", 1, "head-sample 1-in-N requests for -wide-events (5xx are always emitted)")

		artifactDir = flag.String("artifact-dir", "", "spill serializable stage artifacts to this directory and serve them back across restarts (empty disables the disk tier)")
		peers       = flag.String("peers", "", "comma-separated base URLs of every cluster node, this one included; enables static-ring peer cache-fill (requires -self; mutually exclusive with -join)")
		self        = flag.String("self", "", "this node's base URL as seen by peers")
		peerTimeout = flag.Duration("peer-timeout", 2*time.Second, "deadline for one peer artifact fetch")
		warmLimit   = flag.Int("warm-limit", 1024, "max artifacts the startup anti-entropy sweep loads from -artifact-dir (negative disables; /readyz reports progress)")

		join     = flag.String("join", "", "comma-separated seed URLs of an existing cluster; enables dynamic lease-based membership (requires -self; a first node seeds with its own -self URL)")
		lease    = flag.Duration("lease", 10*time.Second, "membership lease: a node silent for lease/2 is suspect, for the full lease dead")
		replicas = flag.Int("replicas", 2, "artifact replica factor in dynamic cluster mode (k distinct ring owners per key)")
	)
	flag.Parse()

	var accessLog io.Writer = os.Stderr
	if *quiet {
		accessLog = io.Discard
	}
	var traceSink io.Writer
	if *traceJSONL != "" {
		f, err := os.OpenFile(*traceJSONL, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			log.Fatalf("-trace-jsonl: %v", err)
		}
		defer f.Close()
		traceSink = f
	}
	obdrel.Stages().SetDefaultCapacity(*stageCache)
	if *tableDir != "" {
		if err := os.MkdirAll(*tableDir, 0o755); err != nil {
			log.Fatalf("-table-dir: %v", err)
		}
		log.Printf("hybrid tables spill to %s", *tableDir)
	}

	// Process-wide fault profile (chaos testing): armed before serving
	// so every injection point sees it, and logged loudly — this must
	// never be on silently in production.
	if *faultSpec != "" {
		spec, err := fault.ParseSpec(*faultSpec)
		if err != nil {
			log.Fatalf("-fault: %v", err)
		}
		fault.Arm(spec.Injector(*faultSeed))
		log.Printf("FAULT INJECTION ARMED: %s (seed %d)", *faultSpec, *faultSeed)
	}
	if *faultHeader {
		log.Printf("per-request X-Fault headers honoured (-fault-header)")
	}

	sloObjs, err := obs.ParseSLOSpec(*sloSpec)
	if err != nil {
		log.Fatalf("-slo: %v", err)
	}
	if len(sloObjs) > 0 {
		log.Printf("slo burn-rate engine armed: %s", *sloSpec)
	}
	var wideSink io.Writer
	switch *wideEvents {
	case "":
	case "-":
		wideSink = os.Stderr
	default:
		f, err := os.OpenFile(*wideEvents, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			log.Fatalf("-wide-events: %v", err)
		}
		defer f.Close()
		wideSink = f
		log.Printf("wide events to %s (1 in %d, errors always)", *wideEvents, *wideSample)
	}

	if *queueDepth < 0 {
		mc := *maxConcurrent
		if mc <= 0 {
			mc = 4 * runtime.GOMAXPROCS(0)
		}
		*queueDepth = 2 * mc
	}
	var peerList []string
	if *peers != "" {
		peerList = strings.Split(*peers, ",")
		log.Printf("cluster mode (static): self=%s peers=%s", *self, *peers)
	}
	var joinList []string
	if *join != "" {
		joinList = strings.Split(*join, ",")
		log.Printf("cluster mode (dynamic): self=%s join=%s lease=%v replicas=%d",
			*self, *join, *lease, *replicas)
	}
	if *artifactDir != "" {
		if err := os.MkdirAll(*artifactDir, 0o755); err != nil {
			log.Fatalf("-artifact-dir: %v", err)
		}
		log.Printf("stage artifacts spill to %s", *artifactDir)
	}
	svc, err := server.NewE(server.Options{
		MaxAnalyzers:   *cache,
		MaxConcurrent:  *maxConcurrent,
		RequestTimeout: *timeout,
		Workers:        *workers,
		TableDir:       *tableDir,
		AccessLog:      accessLog,
		DisableTracing: *noTrace,
		TraceBuffer:    *traceBuffer,
		TraceJSONL:     traceSink,
		SlowRequest:    *slowRequest,

		BatchWindow:   *batchWindow,
		BatchMaxItems: *batchMaxItems,
		BatchTimeout:  *batchTimeout,

		RetryAttempts:    *retries,
		RetryBase:        *retryBase,
		BreakerThreshold: *breakerN,
		BreakerOpenFor:   *breakerOpen,
		MaxStale:         *maxStale,
		QueueDepth:       *queueDepth,
		FaultHeader:      *faultHeader,

		ArtifactDir: *artifactDir,
		Peers:       peerList,
		Self:        *self,
		PeerTimeout: *peerTimeout,
		WarmLimit:   *warmLimit,
		JoinPeers:   joinList,
		Lease:       *lease,
		Replicas:    *replicas,

		SLOs:            sloObjs,
		WideEvents:      wideSink,
		WideEventSample: *wideSample,
	})
	if err != nil {
		log.Fatal(err)
	}
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           svc.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}

	var debugSrv *http.Server
	if *debugAddr != "" {
		debugSrv = &http.Server{
			Addr:              *debugAddr,
			Handler:           svc.DebugHandler(),
			ReadHeaderTimeout: 5 * time.Second,
		}
		go func() {
			log.Printf("debug listener on %s (/debug/traces, /debug/pprof)", *debugAddr)
			if err := debugSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Printf("debug listener: %v", err)
			}
		}()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() {
		log.Printf("serving on %s (cache=%d, timeout=%v)", *addr, *cache, *timeout)
		errCh <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errCh:
		log.Fatal(err)
	case <-ctx.Done():
	}

	// Graceful shutdown, in order: flip /readyz unready so load
	// balancers stop routing here, optionally give them -drain-notice
	// to notice, then stop accepting and drain in-flight requests for
	// up to the drain window, then report the session's counters. New
	// /v1 requests racing the listener close get a clean 503 with
	// Retry-After instead of a connection reset.
	svc.BeginDrain()
	if *drainNotice > 0 {
		log.Printf("readiness withdrawn, waiting %v before closing the listener", *drainNotice)
		time.Sleep(*drainNotice)
	}
	log.Printf("shutting down, draining for up to %v", *drain)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("drain incomplete: %v", err)
	}
	if debugSrv != nil {
		debugSrv.Shutdown(shutdownCtx)
	}
	svc.Close() // stop membership/replication loops (no-op outside dynamic mode)
	m := svc.Metrics()
	fmt.Fprintf(os.Stderr,
		"obdreld: served %v; cache hits=%d misses=%d coalesced=%d; builds=%d (%.2fs); throttled=%d timed_out=%d; traces=%d\n",
		m.Uptime().Round(time.Second),
		m.CacheHits.Load(), m.CacheMisses.Load(), m.Coalesced.Load(),
		m.Builds.Load(), float64(m.BuildNanos.Load())/1e9,
		m.Throttled.Load(), m.TimedOut.Load(), svc.Tracer().Total())
	fmt.Fprintf(os.Stderr,
		"obdreld: resilience served_stale=%d admission_rejected=%d queue_timeouts=%d drain_rejected=%d faults_injected=%d\n",
		m.ServeStale.Load(), m.AdmissionRejected.Load(),
		m.QueueTimeouts.Load(), m.DrainRejected.Load(), fault.InjectedTotal())
	fmt.Fprintf(os.Stderr,
		"obdreld: batch streams=%d items ok=%d error=%d groups=%d reused=%d shared_evals=%d stream_bytes=%d\n",
		m.BatchRequests.Load(), m.BatchItemsOK.Load(), m.BatchItemsErr.Load(),
		m.BatchGroups.Load(), m.BatchReused.Load(), m.BatchSharedEvals.Load(), m.BatchStreamBytes.Load())
	if wideSink != nil {
		fmt.Fprintf(os.Stderr, "obdreld: wide events emitted=%d (1 in %d)\n", svc.WideEventsEmitted(), *wideSample)
	}
	// Burn summary: the state an operator wants at the moment a node
	// leaves the fleet — which objectives were burning and how hard.
	for _, rep := range svc.SLOReport() {
		line := fmt.Sprintf("obdreld: slo %s %s good=%d bad=%d", rep.Route, rep.Label, rep.Good, rep.Bad)
		for _, w := range rep.Windows {
			line += fmt.Sprintf(" burn_%s=%.2f", w.Window, w.Burn)
		}
		fmt.Fprintln(os.Stderr, line)
	}
	if *artifactDir != "" || len(peerList) > 0 || len(joinList) > 0 {
		as := svc.ArtifactStats()
		fmt.Fprintf(os.Stderr,
			"obdreld: artifacts fetch_attempts=%d fetch_fills=%d fetch_errors=%d hedged=%d hedge_wins=%d peer_serves=%d warm_loaded=%d\n",
			as.FetchAttempts, as.FetchFills, as.FetchErrors, as.FetchHedged, as.FetchHedgeWins, as.PeerServes, as.WarmLoaded)
		if as.Dynamic {
			fmt.Fprintf(os.Stderr,
				"obdreld: membership epoch=%d members active=%d suspect=%d dead=%d replica_pushes=%d push_errors=%d dropped=%d receives=%d rebalance_sweeps=%d rebalance_fetched=%d heartbeat_errors=%d\n",
				as.Epoch, as.MembersActive, as.MembersSuspect, as.MembersDead,
				as.ReplicaPushes, as.ReplicaPushErrors, as.ReplicaDropped, as.ReplicaReceives,
				as.RebalanceSweeps, as.RebalanceFetched, as.HeartbeatErrors)
		}
	}
	for _, st := range obdrel.Stages().Snapshot() {
		fmt.Fprintf(os.Stderr,
			"obdreld: stage %-10s hits=%d misses=%d builds=%d cancelled=%d retries=%d breaker_opens=%d build_s=%.3f entries=%d disk_hits=%d spills=%d peer_hits=%d\n",
			st.Stage, st.Hits, st.Misses, st.Builds, st.Cancels, st.Retries, st.BreakerOpens, st.BuildSeconds, st.Entries,
			st.DiskHits, st.Spills, st.PeerHits)
	}
}
