// Command tables regenerates the paper's evaluation tables.
//
//	tables -table 2   # experiment parameter setup
//	tables -table 3   # accuracy & runtime of all methods vs MC, C1–C6
//	tables -table 4   # accuracy vs correlation distance
//	tables -table 5   # accuracy vs grid resolution (C2)
//
// Absolute runtimes depend on the host; the reproduction targets are
// the error magnitudes (~1% for the statistical engines, ~50%+ for
// guard band) and the runtime ordering hybrid ≪ st_fast ≈ st_MC ≪ MC.
// Use -mc-samples and -designs to trade fidelity for speed.
//
// Sweep cells (designs × settings) fan out over -workers goroutines,
// and every analyzer stage is itself parallel; rows print in table
// order regardless of completion order. The PCA of the correlation
// model is cached across cells, so e.g. the Table IV sweep runs one
// eigendecomposition per ρ_dist instead of one per cell. Use
// -workers 1 for serial execution with undisturbed per-method
// runtimes.
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"
	"time"

	"obdrel"
	"obdrel/internal/par"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tables: ")
	var (
		table     = flag.Int("table", 3, "table to regenerate: 2, 3, 4 or 5")
		mcSamples = flag.Int("mc-samples", 1000, "Monte-Carlo sample chips for the reference")
		gridN     = flag.Int("grid", 25, "spatial-correlation grid resolution")
		designs   = flag.String("designs", "C1,C2,C3,C4,C5,C6", "comma-separated design subset")
		seed      = flag.Int64("seed", 1, "random seed")
		workers   = flag.Int("workers", 0, "parallelism for the sweep and all engines (0 = GOMAXPROCS, 1 = serial)")
	)
	flag.Parse()

	selected, err := pickDesigns(*designs)
	if err != nil {
		log.Fatal(err)
	}
	switch *table {
	case 2:
		table2()
	case 3:
		table3(selected, *mcSamples, *gridN, *seed, *workers)
	case 4:
		table4(selected, *mcSamples, *gridN, *seed, *workers)
	case 5:
		table5(*mcSamples, *seed, *workers)
	default:
		log.Fatalf("unknown table %d (want 2, 3, 4 or 5)", *table)
	}
}

func pickDesigns(csv string) ([]*obdrel.Design, error) {
	all := map[string]*obdrel.Design{}
	for _, d := range obdrel.Benchmarks() {
		all[d.Name] = d
	}
	var out []*obdrel.Design
	for _, name := range strings.Split(csv, ",") {
		d, ok := all[strings.ToUpper(strings.TrimSpace(name))]
		if !ok {
			return nil, fmt.Errorf("unknown design %q", name)
		}
		out = append(out, d)
	}
	return out, nil
}

func baseConfig(mcSamples, gridN int, seed int64, workers int) *obdrel.Config {
	cfg := obdrel.DefaultConfig()
	cfg.MCSamples = mcSamples
	cfg.GridNx, cfg.GridNy = gridN, gridN
	cfg.Seed = seed
	cfg.Workers = workers
	return cfg
}

// table2 prints the experiment parameter setup (paper Table II).
func table2() {
	fmt.Println("Table II — experiment parameter setup")
	fmt.Println("  nominal oxide thickness u0            2.2 nm")
	fmt.Println("  nominal supply voltage VDD            1.2 V")
	fmt.Println("  total variation 3σ/u0                 4%")
	fmt.Println("  inter-die variance ratio              50%")
	fmt.Println("  spatially correlated variance ratio   25%")
	fmt.Println("  independent variance ratio            25%")
	fmt.Println("  correlation distance ρ_dist           0.5 (of chip dimension)")
	fmt.Println("  correlation grid                      25×25")
	fmt.Println("  nominal Weibull slope β = b·u0        1.32")
}

// table3 reproduces Table III: lifetime-estimation error at 1 and 10
// per million for st_fast, st_MC, hybrid and guard against the MC
// reference, plus per-method runtimes and speedups. Designs fan out
// over the worker pool; each design's row is assembled independently
// and printed in design order.
func table3(designs []*obdrel.Design, mcSamples, gridN int, seed int64, workers int) {
	fmt.Printf("Table III — accuracy and runtime vs MC (%d samples), %d×%d grid\n",
		mcSamples, gridN, gridN)
	fmt.Printf("%-4s %-9s | %-31s | %-31s | %s\n", "", "",
		"err@1/million (%)", "err@10/million (%)", "runtime (s) / speedup vs MC")
	fmt.Printf("%-4s %-9s | %7s %7s %7s %7s | %7s %7s %7s %7s | %s\n",
		"ckt", "#device",
		"st_fast", "st_MC", "hybrid", "guard",
		"st_fast", "st_MC", "hybrid", "guard", "st_fast     st_MC      hybrid          MC")
	rows := make([]string, len(designs))
	par.For(workers, len(designs), func(di int) {
		rows[di] = table3Row(designs[di], mcSamples, gridN, seed, workers)
	})
	for _, row := range rows {
		fmt.Print(row)
	}
	fmt.Println("\nnote: the hybrid column is steady-state query time; its one-time")
	fmt.Println("per-design table build is reported at the row end. The guard-band")
	fmt.Println("column is the closed-form Eq. 34 — effectively free but ~50%+ wrong.")
	fmt.Println("Runtimes are wall-clock inside a possibly parallel sweep; use")
	fmt.Println("-workers 1 for undisturbed per-method timings.")
}

func table3Row(d *obdrel.Design, mcSamples, gridN int, seed int64, workers int) string {
	cfg := baseConfig(mcSamples, gridN, seed, workers)
	an, err := obdrel.NewAnalyzer(d, cfg)
	if err != nil {
		log.Fatal(err)
	}
	// Reference: MC at both criteria, timed including sampling.
	mcStart := time.Now()
	ref1, err := an.LifetimePPM(1, obdrel.MethodMC)
	if err != nil {
		log.Fatal(err)
	}
	ref10, err := an.LifetimePPM(10, obdrel.MethodMC)
	if err != nil {
		log.Fatal(err)
	}
	mcTime := time.Since(mcStart)

	methods := []obdrel.Method{obdrel.MethodStFast, obdrel.MethodStMC, obdrel.MethodHybrid, obdrel.MethodGuard}
	errs1 := map[obdrel.Method]float64{}
	errs10 := map[obdrel.Method]float64{}
	times := map[obdrel.Method]time.Duration{}
	var hybridBuild time.Duration
	for _, m := range methods {
		// A fresh analyzer isolates each method's engine
		// construction in its runtime, as the paper's per-method
		// runtimes do.
		anM, err := obdrel.NewAnalyzer(d, baseConfig(mcSamples, gridN, seed, workers))
		if err != nil {
			log.Fatal(err)
		}
		if m == obdrel.MethodHybrid {
			// The table build is a one-time design-level
			// precomputation (Section IV-E); time it separately
			// and report only the steady-state query cost, as the
			// paper does.
			start := time.Now()
			if _, err := anM.FailureProb(ref10, m); err != nil {
				log.Fatal(err)
			}
			hybridBuild = time.Since(start)
		}
		start := time.Now()
		l1, err := anM.LifetimePPM(1, m)
		if err != nil {
			log.Fatal(err)
		}
		l10, err := anM.LifetimePPM(10, m)
		if err != nil {
			log.Fatal(err)
		}
		times[m] = time.Since(start)
		errs1[m] = abs(l1-ref1) / ref1 * 100
		errs10[m] = abs(l10-ref10) / ref10 * 100
	}
	speedup := func(m obdrel.Method) float64 {
		return mcTime.Seconds() / times[m].Seconds()
	}
	return fmt.Sprintf("%-4s %-9d | %7.1f %7.1f %7.1f %7.0f | %7.1f %7.1f %7.1f %7.0f | %6.3f/%-6.0f %5.3f/%-5.0f %8.6f/%-8.0f %.2f (hybrid build %.2fs)\n",
		d.Name, d.TotalDevices(),
		errs1[obdrel.MethodStFast], errs1[obdrel.MethodStMC], errs1[obdrel.MethodHybrid], errs1[obdrel.MethodGuard],
		errs10[obdrel.MethodStFast], errs10[obdrel.MethodStMC], errs10[obdrel.MethodHybrid], errs10[obdrel.MethodGuard],
		times[obdrel.MethodStFast].Seconds(), speedup(obdrel.MethodStFast),
		times[obdrel.MethodStMC].Seconds(), speedup(obdrel.MethodStMC),
		times[obdrel.MethodHybrid].Seconds(), speedup(obdrel.MethodHybrid),
		mcTime.Seconds(), hybridBuild.Seconds())
}

// table4 reproduces Table IV: st_fast accuracy vs MC for three
// correlation distances. All design×ρ cells fan out together; the
// shared PCA cache collapses the eigendecompositions to one per ρ.
func table4(designs []*obdrel.Design, mcSamples, gridN int, seed int64, workers int) {
	rhos := []float64{0.25, 0.5, 0.75}
	fmt.Printf("Table IV — st_fast lifetime error (%%) vs MC for correlation distances\n")
	fmt.Printf("%-4s", "ckt")
	for _, rho := range rhos {
		fmt.Printf(" | ρ=%.2f: 1/mil 10/mil", rho)
	}
	fmt.Println()
	type cell struct{ e1, e10 float64 }
	cells := make([]cell, len(designs)*len(rhos))
	par.For(workers, len(cells), func(ci int) {
		d := designs[ci/len(rhos)]
		rho := rhos[ci%len(rhos)]
		cfg := baseConfig(mcSamples, gridN, seed, workers)
		cfg.RhoDist = rho
		an, err := obdrel.NewAnalyzer(d, cfg)
		if err != nil {
			log.Fatal(err)
		}
		e1, e10 := errorsVsMC(an)
		cells[ci] = cell{e1, e10}
	})
	for di, d := range designs {
		fmt.Printf("%-4s", d.Name)
		for ri := range rhos {
			c := cells[di*len(rhos)+ri]
			fmt.Printf(" |       %6.2f %6.2f", c.e1, c.e10)
		}
		fmt.Println()
	}
}

// table5 reproduces Table V: st_fast on coarser analysis grids vs the
// MC reference computed on the finest (25×25) grid, design C2. The
// per-ρ references are computed once (not per cell, as the serial
// sweep used to) and all grid×ρ cells then fan out together.
func table5(mcSamples int, seed int64, workers int) {
	rhos := []float64{0.25, 0.5, 0.75}
	grids := []int{10, 20, 25}
	fmt.Println("Table V — C2: st_fast grid-resolution error (%) vs MC at 25×25")
	fmt.Printf("%-8s", "grid")
	for _, rho := range rhos {
		fmt.Printf(" | ρ=%.2f: 1/mil 10/mil", rho)
	}
	fmt.Println()
	d := obdrel.C2()
	// References at the finest grid, one per ρ.
	refs1 := make([]float64, len(rhos))
	refs10 := make([]float64, len(rhos))
	par.For(workers, len(rhos), func(ri int) {
		refCfg := baseConfig(mcSamples, 25, seed, workers)
		refCfg.RhoDist = rhos[ri]
		refAn, err := obdrel.NewAnalyzer(d, refCfg)
		if err != nil {
			log.Fatal(err)
		}
		if refs1[ri], err = refAn.LifetimePPM(1, obdrel.MethodMC); err != nil {
			log.Fatal(err)
		}
		if refs10[ri], err = refAn.LifetimePPM(10, obdrel.MethodMC); err != nil {
			log.Fatal(err)
		}
	})
	type cell struct{ e1, e10 float64 }
	cells := make([]cell, len(grids)*len(rhos))
	par.For(workers, len(cells), func(ci int) {
		g := grids[ci/len(rhos)]
		ri := ci % len(rhos)
		cfg := baseConfig(mcSamples, g, seed, workers)
		cfg.RhoDist = rhos[ri]
		an, err := obdrel.NewAnalyzer(d, cfg)
		if err != nil {
			log.Fatal(err)
		}
		l1, err := an.LifetimePPM(1, obdrel.MethodStFast)
		if err != nil {
			log.Fatal(err)
		}
		l10, err := an.LifetimePPM(10, obdrel.MethodStFast)
		if err != nil {
			log.Fatal(err)
		}
		cells[ci] = cell{abs(l1-refs1[ri]) / refs1[ri] * 100, abs(l10-refs10[ri]) / refs10[ri] * 100}
	})
	for gi, g := range grids {
		fmt.Printf("%-8s", fmt.Sprintf("%d×%d", g, g))
		for ri := range rhos {
			c := cells[gi*len(rhos)+ri]
			fmt.Printf(" |       %6.2f %6.2f", c.e1, c.e10)
		}
		fmt.Println()
	}
}

// errorsVsMC returns st_fast's 1- and 10-per-million errors against
// the same analyzer's MC reference.
func errorsVsMC(an *obdrel.Analyzer) (e1, e10 float64) {
	ref1, err := an.LifetimePPM(1, obdrel.MethodMC)
	if err != nil {
		log.Fatal(err)
	}
	ref10, err := an.LifetimePPM(10, obdrel.MethodMC)
	if err != nil {
		log.Fatal(err)
	}
	l1, err := an.LifetimePPM(1, obdrel.MethodStFast)
	if err != nil {
		log.Fatal(err)
	}
	l10, err := an.LifetimePPM(10, obdrel.MethodStFast)
	if err != nil {
		log.Fatal(err)
	}
	return abs(l1-ref1) / ref1 * 100, abs(l10-ref10) / ref10 * 100
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
