// Command bench times the Table III workloads — the hot query paths
// of every engine plus the full sweep — and emits a machine-readable
// JSON report (BENCH_pr1.json) comparing the serial (Workers:1) and
// parallel (Workers:0 ⇒ GOMAXPROCS) code paths.
//
//	bench                         # full run, writes BENCH_pr<pr>.json (see -pr)
//	bench -pr 3                   # full run, writes BENCH_pr3.json
//	bench -o custom.json          # explicit output path
//	bench -quick                  # CI-sized run (C1, 100 MC samples, 8×8 grid)
//	bench -validate BENCH_pr1.json  # schema check an existing report, no benchmarking
//
// The per-engine numbers are steady-state query costs (engines are
// warmed before timing); mc_failure_prob isolates the MC reduction
// that dominates every MC query; table3_sweep times the whole
// design×method fan-out end to end, including engine construction and
// the shared PCA cache. Speedups are relative to the serial path on
// the same host, so they reflect the core count the run actually had
// (see go_max_procs in the report).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"strings"
	"time"

	"obdrel"
	"obdrel/internal/grid"
	"obdrel/internal/par"
)

// Schema is the report format identifier checked by -validate.
const Schema = "obdrel-bench/v1"

// Report is the top-level BENCH_pr1.json document.
type Report struct {
	Schema      string         `json:"schema"`
	GeneratedAt string         `json:"generated_at"`
	GoMaxProcs  int            `json:"go_max_procs"`
	Workers     int            `json:"workers"`
	Quick       bool           `json:"quick"`
	MCSamples   int            `json:"mc_samples"`
	GridN       int            `json:"grid_n"`
	Designs     []DesignReport `json:"designs"`
	Table3Sweep SerialParallel `json:"table3_sweep"`
	PCACache    CacheReport    `json:"pca_cache"`
}

// DesignReport carries one design's per-engine query costs and the
// isolated MC-reduction comparison.
type DesignReport struct {
	Design        string         `json:"design"`
	Devices       int            `json:"devices"`
	Engines       []EngineReport `json:"engines"`
	MCFailureProb SerialParallel `json:"mc_failure_prob"`
}

// EngineReport is one engine's steady-state query cost on one design.
type EngineReport struct {
	Method       string  `json:"method"`
	QueryNs      int64   `json:"query_ns"`
	LifetimeH    float64 `json:"lifetime_h"`
	SpeedupVsMC  float64 `json:"speedup_vs_mc"`
	ErrVsMCPct   float64 `json:"err_vs_mc_pct"`
	QueriesTimed int     `json:"queries_timed"`
}

// SerialParallel compares the Workers:1 legacy path against the
// parallel pool on the same workload.
type SerialParallel struct {
	SerialNs   int64   `json:"serial_ns"`
	ParallelNs int64   `json:"parallel_ns"`
	Speedup    float64 `json:"speedup"`
}

// CacheReport snapshots the shared PCA cache after the sweep.
type CacheReport struct {
	Computes int64 `json:"computes"`
	Hits     int64 `json:"hits"`
	Entries  int   `json:"entries"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("bench: ")
	var (
		out       = flag.String("o", "", "output JSON path (\"-\" for stdout; default BENCH_pr<pr>.json)")
		pr        = flag.Int("pr", 1, "PR number the default output name is derived from")
		quick     = flag.Bool("quick", false, "CI-sized run: C1 only, 100 MC samples, 8×8 grid")
		validate  = flag.String("validate", "", "validate an existing report instead of benchmarking")
		designCSV = flag.String("designs", "", "comma-separated design subset (default C1,C3 or C1 with -quick)")
		mcSamples = flag.Int("mc-samples", 1000, "Monte-Carlo sample chips")
		gridN     = flag.Int("grid", 25, "spatial-correlation grid resolution")
		seed      = flag.Int64("seed", 1, "random seed")
		workers   = flag.Int("workers", 0, "parallel worker count (0 = GOMAXPROCS)")
	)
	flag.Parse()
	if *out == "" {
		// Derive the artifact name from the PR number so successive
		// PRs' baselines coexist instead of overwriting each other.
		*out = fmt.Sprintf("BENCH_pr%d.json", *pr)
	}

	if *validate != "" {
		if err := validateReport(*validate); err != nil {
			log.Fatalf("validate %s: %v", *validate, err)
		}
		fmt.Printf("bench: %s conforms to %s\n", *validate, Schema)
		return
	}

	if *quick {
		if *designCSV == "" {
			*designCSV = "C1"
		}
		*mcSamples = 100
		*gridN = 8
	} else if *designCSV == "" {
		*designCSV = "C1,C3"
	}
	designs, err := pickDesigns(*designCSV)
	if err != nil {
		log.Fatal(err)
	}

	rep := run(designs, *mcSamples, *gridN, *seed, *workers, *quick)

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	data = append(data, '\n')
	if *out == "-" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %s (GOMAXPROCS=%d)", *out, runtime.GOMAXPROCS(0))
	for _, d := range rep.Designs {
		log.Printf("%s: MC FailureProb serial %.2fms parallel %.2fms speedup %.2fx",
			d.Design,
			float64(d.MCFailureProb.SerialNs)/1e6,
			float64(d.MCFailureProb.ParallelNs)/1e6,
			d.MCFailureProb.Speedup)
	}
	log.Printf("table3 sweep serial %.2fs parallel %.2fs speedup %.2fx",
		float64(rep.Table3Sweep.SerialNs)/1e9,
		float64(rep.Table3Sweep.ParallelNs)/1e9,
		rep.Table3Sweep.Speedup)
}

func pickDesigns(csv string) ([]*obdrel.Design, error) {
	all := map[string]*obdrel.Design{}
	for _, d := range obdrel.Benchmarks() {
		all[d.Name] = d
	}
	var out []*obdrel.Design
	for _, name := range strings.Split(csv, ",") {
		d, ok := all[strings.ToUpper(strings.TrimSpace(name))]
		if !ok {
			return nil, fmt.Errorf("unknown design %q", name)
		}
		out = append(out, d)
	}
	return out, nil
}

func config(mcSamples, gridN int, seed int64, workers int) *obdrel.Config {
	cfg := obdrel.DefaultConfig()
	cfg.MCSamples = mcSamples
	cfg.GridNx, cfg.GridNy = gridN, gridN
	cfg.Seed = seed
	cfg.Workers = workers
	return cfg
}

func run(designs []*obdrel.Design, mcSamples, gridN int, seed int64, workers int, quick bool) *Report {
	rep := &Report{
		Schema:      Schema,
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		Workers:     par.Resolve(workers, 1<<30),
		Quick:       quick,
		MCSamples:   mcSamples,
		GridN:       gridN,
	}
	for _, d := range designs {
		rep.Designs = append(rep.Designs, benchDesign(d, mcSamples, gridN, seed, workers, quick))
	}
	rep.Table3Sweep = benchSweep(designs, mcSamples, gridN, seed, workers)
	rep.PCACache = CacheReport{
		Computes: grid.SharedPCACache.Computes(),
		Hits:     grid.SharedPCACache.Hits(),
		Entries:  grid.SharedPCACache.Len(),
	}
	return rep
}

// benchDesign times each engine's steady-state query and isolates the
// MC FailureProb reduction serial-vs-parallel.
func benchDesign(d *obdrel.Design, mcSamples, gridN int, seed int64, workers int, quick bool) DesignReport {
	dr := DesignReport{Design: d.Name, Devices: d.TotalDevices()}
	an, err := obdrel.NewAnalyzer(d, config(mcSamples, gridN, seed, workers))
	if err != nil {
		log.Fatal(err)
	}
	ref, err := an.LifetimePPM(10, obdrel.MethodMC) // warms the MC engine too
	if err != nil {
		log.Fatal(err)
	}
	reps := 5
	if quick {
		reps = 2
	}
	methods := []obdrel.Method{
		obdrel.MethodMC, obdrel.MethodStFast, obdrel.MethodStMC,
		obdrel.MethodHybrid, obdrel.MethodGuard,
	}
	times := map[obdrel.Method]time.Duration{}
	for _, m := range methods {
		// Warm: engine construction (sampling, PCA, hybrid table) is a
		// one-time cost, not the steady-state query being measured.
		life, err := an.LifetimePPM(10, m)
		if err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		for r := 0; r < reps; r++ {
			if _, err := an.LifetimePPM(10, m); err != nil {
				log.Fatal(err)
			}
		}
		per := time.Since(start) / time.Duration(reps)
		times[m] = per
		dr.Engines = append(dr.Engines, EngineReport{
			Method:       m.String(),
			QueryNs:      per.Nanoseconds(),
			LifetimeH:    life,
			ErrVsMCPct:   (life - ref) / ref * 100,
			QueriesTimed: reps,
		})
	}
	for i := range dr.Engines {
		dr.Engines[i].SpeedupVsMC = float64(times[obdrel.MethodMC]) / float64(times[methods[i]])
	}
	dr.MCFailureProb = benchMCFailureProb(d, mcSamples, gridN, seed, workers, ref, reps)
	return dr
}

// benchMCFailureProb times the pure MC reduction (FailureProb over the
// sample histograms) with Workers:1 against the parallel pool. Both
// analyzers draw identical samples (the sampling plan is
// worker-independent), so the comparison is reduction-only.
func benchMCFailureProb(d *obdrel.Design, mcSamples, gridN int, seed int64, workers int, t float64, reps int) SerialParallel {
	timeOne := func(w int) int64 {
		an, err := obdrel.NewAnalyzer(d, config(mcSamples, gridN, seed, w))
		if err != nil {
			log.Fatal(err)
		}
		if _, err := an.FailureProb(t, obdrel.MethodMC); err != nil { // warm: sampling
			log.Fatal(err)
		}
		start := time.Now()
		for r := 0; r < reps; r++ {
			if _, err := an.FailureProb(t, obdrel.MethodMC); err != nil {
				log.Fatal(err)
			}
		}
		return (time.Since(start) / time.Duration(reps)).Nanoseconds()
	}
	sp := SerialParallel{SerialNs: timeOne(1), ParallelNs: timeOne(workers)}
	sp.Speedup = float64(sp.SerialNs) / float64(sp.ParallelNs)
	return sp
}

// benchSweep times a Table III-shaped sweep (every design × the four
// fast methods + the MC reference) serially and with the full fan-out.
func benchSweep(designs []*obdrel.Design, mcSamples, gridN int, seed int64, workers int) SerialParallel {
	sweep := func(w int) int64 {
		start := time.Now()
		par.For(w, len(designs), func(di int) {
			an, err := obdrel.NewAnalyzer(designs[di], config(mcSamples, gridN, seed, w))
			if err != nil {
				log.Fatal(err)
			}
			for _, m := range []obdrel.Method{
				obdrel.MethodMC, obdrel.MethodStFast, obdrel.MethodStMC,
				obdrel.MethodHybrid, obdrel.MethodGuard,
			} {
				if _, err := an.LifetimePPM(10, m); err != nil {
					log.Fatal(err)
				}
			}
		})
		return time.Since(start).Nanoseconds()
	}
	sp := SerialParallel{SerialNs: sweep(1), ParallelNs: sweep(workers)}
	sp.Speedup = float64(sp.SerialNs) / float64(sp.ParallelNs)
	return sp
}

// validateReport checks that an existing report file parses and
// carries the required fields — the CI smoke test for the schema.
func validateReport(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var rep Report
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&rep); err != nil {
		return err
	}
	switch {
	case rep.Schema != Schema:
		return fmt.Errorf("schema %q, want %q", rep.Schema, Schema)
	case rep.GoMaxProcs < 1:
		return fmt.Errorf("go_max_procs %d", rep.GoMaxProcs)
	case len(rep.Designs) == 0:
		return fmt.Errorf("no designs")
	case rep.Table3Sweep.SerialNs <= 0 || rep.Table3Sweep.ParallelNs <= 0:
		return fmt.Errorf("table3_sweep timings missing")
	}
	for _, d := range rep.Designs {
		if d.Design == "" || len(d.Engines) == 0 {
			return fmt.Errorf("design entry %+v incomplete", d)
		}
		for _, e := range d.Engines {
			if e.Method == "" || e.QueryNs <= 0 {
				return fmt.Errorf("%s: engine entry %+v incomplete", d.Design, e)
			}
		}
		if d.MCFailureProb.SerialNs <= 0 || d.MCFailureProb.ParallelNs <= 0 {
			return fmt.Errorf("%s: mc_failure_prob timings missing", d.Design)
		}
	}
	return nil
}
