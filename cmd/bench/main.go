// Command bench times the Table III workloads — the hot query paths
// of every engine plus the full sweep — and emits a machine-readable
// JSON report (BENCH_pr1.json) comparing the serial (Workers:1) and
// parallel (Workers:0 ⇒ GOMAXPROCS) code paths. With -stages (the
// default) it additionally times a MaxVDD voltage bisection cold
// versus warm through the stage-graph cache and appends the per-stage
// hit/miss/build counters (obdrel-bench/v2 schema). With -trace-overhead
// (also the default) it measures what request tracing costs a warm
// analyzer lookup enabled versus disabled and stamps run metadata —
// go version, CPU count — into the report (obdrel-bench/v3 schema).
//
//	bench                         # full run, writes BENCH_pr<pr>.json (see -pr)
//	bench -pr 3                   # full run, writes BENCH_pr3.json
//	bench -o custom.json          # explicit output path
//	bench -quick                  # CI-sized run (C1, 100 MC samples, 8×8 grid)
//	bench -stages=false           # legacy v1 report without stage sections
//	bench -validate BENCH_pr1.json  # schema check an existing report, no benchmarking
//
// The per-engine numbers are steady-state query costs (engines are
// warmed before timing); mc_failure_prob isolates the MC reduction
// that dominates every MC query; table3_sweep times the whole
// design×method fan-out end to end, including engine construction and
// the shared PCA cache. Speedups are relative to the serial path on
// the same host, so they reflect the core count the run actually had
// (see go_max_procs in the report).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"runtime"
	"sort"
	"strings"
	"testing"
	"time"

	"obdrel"
	"obdrel/internal/fault"
	"obdrel/internal/floorplan"
	"obdrel/internal/grid"
	"obdrel/internal/obs"
	"obdrel/internal/par"
	"obdrel/internal/thermal"
)

// Schema identifies the original report format; SchemaV2 adds the
// stage-cache sections, SchemaV3 adds run metadata plus the
// tracing-overhead measurement, and SchemaV5 adds the raw-speed
// kernel sections (thermal solver comparison, warm-query allocation
// counts, hybrid table-file serving). -validate accepts all of them;
// new reports emit v5 unless -stages, -trace-overhead or -solver is
// turned off.
const (
	Schema   = "obdrel-bench/v1"
	SchemaV2 = "obdrel-bench/v2"
	SchemaV3 = "obdrel-bench/v3"
	SchemaV5 = "obdrel-bench/v5"
)

// Report is the top-level BENCH_pr1.json document.
type Report struct {
	Schema      string         `json:"schema"`
	GeneratedAt string         `json:"generated_at"`
	GoVersion   string         `json:"go_version,omitempty"`
	GoMaxProcs  int            `json:"go_max_procs"`
	NumCPU      int            `json:"num_cpu,omitempty"`
	Workers     int            `json:"workers"`
	Quick       bool           `json:"quick"`
	MCSamples   int            `json:"mc_samples"`
	GridN       int            `json:"grid_n"`
	Designs     []DesignReport `json:"designs"`
	Table3Sweep SerialParallel `json:"table3_sweep"`
	PCACache    CacheReport    `json:"pca_cache"`
	// v2 (stage-graph) sections, present when -stages is on.
	MaxVDDReuse *MaxVDDReport `json:"maxvdd_reuse,omitempty"`
	Stages      []StageReport `json:"stages,omitempty"`
	// v3 section, present when -trace-overhead is on.
	TracingOverhead *TracingOverheadReport `json:"tracing_overhead,omitempty"`
	// FaultPath measures the disarmed fault-injection point — the cost
	// every instrumented call site pays in production. Optional: older
	// committed reports predate the section.
	FaultPath *FaultPathReport `json:"fault_path,omitempty"`
	// v5 (raw-speed kernel) sections, present when -solver is on.
	Solver      *SolverReport      `json:"solver,omitempty"`
	QueryAllocs *QueryAllocsReport `json:"query_allocs,omitempty"`
	TableFile   *TableFileReport   `json:"table_file,omitempty"`
}

// SolverReport compares the thermal solvers over a grid sweep. Both
// run at Tol=1e-9 so the agreement column compares two converged
// answers, not two different stopping rules; SOR legs stop at 100×100
// (its O(N²) sweep count makes 200×200 pointless to wait for), while
// multigrid continues to 200×200 in full runs.
type SolverReport struct {
	Legs []SolverLeg `json:"legs"`
}

// SolverLeg is one grid size: times, convergence effort, and the
// worst per-cell disagreement between multigrid and a converged SOR
// reference (Tol=1e-11, so the comparison is against SOR's answer,
// not its stopping rule — at tight tolerances SOR's true error is
// orders of magnitude above its per-sweep delta). SOR fields are zero
// on multigrid-only legs.
type SolverLeg struct {
	Grid         int     `json:"grid"`
	MultigridNs  int64   `json:"multigrid_ns"`
	Cycles       int     `json:"multigrid_cycles"`
	SORNs        int64   `json:"sor_ns,omitempty"`
	SORIters     int     `json:"sor_iters,omitempty"`
	Speedup      float64 `json:"speedup,omitempty"`
	MaxTempDiffK float64 `json:"max_temp_diff_k,omitempty"`
}

// QueryAllocsReport re-measures the zero-allocation gate outside the
// test binary: allocations per warm st_fast/hybrid query. The
// validator requires every count to be exactly zero.
type QueryAllocsReport struct {
	Design                  string `json:"design"`
	StFastFailureProbAllocs int64  `json:"st_fast_failure_prob_allocs"`
	StFastLifetimeAllocs    int64  `json:"st_fast_lifetime_allocs"`
	HybridFailureProbAllocs int64  `json:"hybrid_failure_prob_allocs"`
	HybridLifetimeAllocs    int64  `json:"hybrid_lifetime_allocs"`
}

// TableFileReport compares warm hybrid queries through an in-process
// table against the same tables served from a spilled file (mmap on
// Linux). Latencies are per-query p99 over batched samples — batching
// keeps the µs-scale measurement out of timer-resolution noise. The
// deltas are this benchmark's own table-file traffic.
type TableFileReport struct {
	Design       string  `json:"design"`
	BatchQueries int     `json:"batch_queries"`
	Samples      int     `json:"samples"`
	InProcP99Ns  int64   `json:"in_process_p99_ns"`
	MmapP99Ns    int64   `json:"mmap_p99_ns"`
	P99Ratio     float64 `json:"p99_ratio"`
	BuildNs      int64   `json:"build_ns"`
	LoadNs       int64   `json:"load_ns"`
	SavesDelta   uint64  `json:"saves_delta"`
	LoadsDelta   uint64  `json:"loads_delta"`
	RejectsDelta uint64  `json:"rejects_delta"`
}

// FaultPathReport pins the disarmed fault.Inject fast path: it must
// stay a single atomic load — zero allocations, single-digit
// nanoseconds — or the injection points are not free to leave compiled
// into every build.
type FaultPathReport struct {
	DisarmedNsOp     float64 `json:"disarmed_ns_op"`
	DisarmedAllocsOp int64   `json:"disarmed_allocs_op"`
}

// TracingOverheadReport measures what request tracing costs on the
// hottest serving-layer operation: a warm analyzer lookup resolving
// entirely through the stage cache. "Disabled" is the production
// default (untraced context — every instrumentation point takes the
// nil fast path); "enabled" wraps each op in a root span the way the
// server middleware does per request. The span micro-benchmark pins
// down the disabled fast path itself: it must not allocate, and the
// projected disabled overhead (spans_per_op × span cost) must stay
// under 2% of the op — the PR's acceptance bar for leaving the
// instrumentation compiled into every binary.
type TracingOverheadReport struct {
	Op                  string  `json:"op"`
	Reps                int     `json:"reps"`
	DisabledNs          int64   `json:"disabled_ns"`
	EnabledNs           int64   `json:"enabled_ns"`
	EnabledOverheadPct  float64 `json:"enabled_overhead_pct"`
	SpansPerOp          int     `json:"spans_per_op"`
	SpanDisabledNsOp    float64 `json:"span_disabled_ns_op"`
	SpanDisabledAllocs  int64   `json:"span_disabled_allocs_op"`
	DisabledOverheadPct float64 `json:"disabled_overhead_pct"`
}

// StageReport is one analysis stage's cache counters after the MaxVDD
// workload: how many artifact lookups hit, how many builds ran, and
// what the builds cost.
type StageReport struct {
	Stage           string  `json:"stage"`
	Hits            int64   `json:"hits"`
	Misses          int64   `json:"misses"`
	Builds          int64   `json:"builds"`
	CancelledBuilds int64   `json:"cancelled_builds"`
	BuildSeconds    float64 `json:"build_seconds"`
	Entries         int     `json:"entries"`
}

// MaxVDDReport times one voltage bisection three ways: cold through
// the stage cache (voltage-independent stages build once, the thermal
// tail once per probe), warm (everything cached), and cold with
// Config.PinThermalVDD (the DRM approximation that collapses the
// whole search to ONE thermal solve).
type MaxVDDReport struct {
	Design              string  `json:"design"`
	Probes              int     `json:"probes"`
	ColdNs              int64   `json:"cold_ns"`
	WarmNs              int64   `json:"warm_ns"`
	Speedup             float64 `json:"speedup"`
	ColdThermalBuilds   int64   `json:"cold_thermal_builds"`
	ColdPCABuilds       int64   `json:"cold_pca_builds"`
	WarmThermalBuilds   int64   `json:"warm_thermal_builds"`
	WarmPCABuilds       int64   `json:"warm_pca_builds"`
	PinnedNs            int64   `json:"pinned_ns"`
	PinnedThermalBuilds int64   `json:"pinned_thermal_builds"`
}

// DesignReport carries one design's per-engine query costs and the
// isolated MC-reduction comparison.
type DesignReport struct {
	Design        string         `json:"design"`
	Devices       int            `json:"devices"`
	Engines       []EngineReport `json:"engines"`
	MCFailureProb SerialParallel `json:"mc_failure_prob"`
}

// EngineReport is one engine's steady-state query cost on one design.
type EngineReport struct {
	Method       string  `json:"method"`
	QueryNs      int64   `json:"query_ns"`
	LifetimeH    float64 `json:"lifetime_h"`
	SpeedupVsMC  float64 `json:"speedup_vs_mc"`
	ErrVsMCPct   float64 `json:"err_vs_mc_pct"`
	QueriesTimed int     `json:"queries_timed"`
}

// SerialParallel compares the Workers:1 legacy path against the
// parallel pool on the same workload.
type SerialParallel struct {
	SerialNs   int64   `json:"serial_ns"`
	ParallelNs int64   `json:"parallel_ns"`
	Speedup    float64 `json:"speedup"`
}

// CacheReport snapshots the shared PCA cache after the sweep.
type CacheReport struct {
	Computes int64 `json:"computes"`
	Hits     int64 `json:"hits"`
	Entries  int   `json:"entries"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("bench: ")
	var (
		out       = flag.String("o", "", "output JSON path (\"-\" for stdout; default BENCH_pr<pr>.json)")
		pr        = flag.Int("pr", 1, "PR number the default output name is derived from")
		quick     = flag.Bool("quick", false, "CI-sized run: C1 only, 100 MC samples, 8×8 grid")
		validate  = flag.String("validate", "", "validate an existing report instead of benchmarking")
		designCSV = flag.String("designs", "", "comma-separated design subset (default C1,C3 or C1 with -quick)")
		mcSamples = flag.Int("mc-samples", 1000, "Monte-Carlo sample chips")
		gridN     = flag.Int("grid", 25, "spatial-correlation grid resolution")
		seed      = flag.Int64("seed", 1, "random seed")
		workers   = flag.Int("workers", 0, "parallel worker count (0 = GOMAXPROCS)")
		stages    = flag.Bool("stages", true, "bench the stage-graph cache (MaxVDD cold/warm/pinned) and report per-stage counters")
		traceOH   = flag.Bool("trace-overhead", true, "bench request tracing enabled vs disabled on a warm analyzer lookup")
		kernels   = flag.Bool("solver", true, "bench the raw-speed kernels: SOR vs multigrid grid sweep, warm-query allocations, table-file serving")
	)
	flag.Parse()
	if *out == "" {
		// Derive the artifact name from the PR number so successive
		// PRs' baselines coexist instead of overwriting each other.
		*out = fmt.Sprintf("BENCH_pr%d.json", *pr)
	}

	if *validate != "" {
		schema, err := validateReport(*validate)
		if err != nil {
			log.Fatalf("validate %s: %v", *validate, err)
		}
		fmt.Printf("bench: %s conforms to %s\n", *validate, schema)
		return
	}

	if *quick {
		if *designCSV == "" {
			*designCSV = "C1"
		}
		*mcSamples = 100
		*gridN = 8
	} else if *designCSV == "" {
		*designCSV = "C1,C3"
	}
	designs, err := pickDesigns(*designCSV)
	if err != nil {
		log.Fatal(err)
	}

	rep := run(designs, *mcSamples, *gridN, *seed, *workers, *quick, *stages, *traceOH, *kernels)

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	data = append(data, '\n')
	if *out == "-" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %s (GOMAXPROCS=%d)", *out, runtime.GOMAXPROCS(0))
	for _, d := range rep.Designs {
		log.Printf("%s: MC FailureProb serial %.2fms parallel %.2fms speedup %.2fx",
			d.Design,
			float64(d.MCFailureProb.SerialNs)/1e6,
			float64(d.MCFailureProb.ParallelNs)/1e6,
			d.MCFailureProb.Speedup)
	}
	log.Printf("table3 sweep serial %.2fs parallel %.2fs speedup %.2fx",
		float64(rep.Table3Sweep.SerialNs)/1e9,
		float64(rep.Table3Sweep.ParallelNs)/1e9,
		rep.Table3Sweep.Speedup)
	if r := rep.MaxVDDReuse; r != nil {
		log.Printf("maxvdd %s: %d probes, cold %.2fms warm %.2fms (%.2fx); thermal builds cold=%d warm=%d pinned=%d",
			r.Design, r.Probes,
			float64(r.ColdNs)/1e6, float64(r.WarmNs)/1e6, r.Speedup,
			r.ColdThermalBuilds, r.WarmThermalBuilds, r.PinnedThermalBuilds)
	}
	if t := rep.TracingOverhead; t != nil {
		log.Printf("tracing: %s disabled %.1fµs enabled %.1fµs (+%.1f%%); span disabled %.1fns/op %d allocs, projected disabled overhead %.3f%%",
			t.Op, float64(t.DisabledNs)/1e3, float64(t.EnabledNs)/1e3, t.EnabledOverheadPct,
			t.SpanDisabledNsOp, t.SpanDisabledAllocs, t.DisabledOverheadPct)
	}
	if s := rep.Solver; s != nil {
		for _, l := range s.Legs {
			if l.SORNs > 0 {
				log.Printf("solver %3dx%-3d: multigrid %.2fms (%d cycles) sor %.2fms (%d iters) speedup %.1fx maxdiff %.2e K",
					l.Grid, l.Grid, float64(l.MultigridNs)/1e6, l.Cycles,
					float64(l.SORNs)/1e6, l.SORIters, l.Speedup, l.MaxTempDiffK)
			} else {
				log.Printf("solver %3dx%-3d: multigrid %.2fms (%d cycles)",
					l.Grid, l.Grid, float64(l.MultigridNs)/1e6, l.Cycles)
			}
		}
	}
	if q := rep.QueryAllocs; q != nil {
		log.Printf("query allocs (%s, warm): st_fast %d/%d hybrid %d/%d (FailureProb/LifetimePPM)",
			q.Design, q.StFastFailureProbAllocs, q.StFastLifetimeAllocs,
			q.HybridFailureProbAllocs, q.HybridLifetimeAllocs)
	}
	if tf := rep.TableFile; tf != nil {
		log.Printf("table file (%s): in-process p99 %.2fµs mmap p99 %.2fµs (ratio %.3f); build %.1fms load %.1fms; saves=%d loads=%d rejects=%d",
			tf.Design, float64(tf.InProcP99Ns)/1e3, float64(tf.MmapP99Ns)/1e3, tf.P99Ratio,
			float64(tf.BuildNs)/1e6, float64(tf.LoadNs)/1e6,
			tf.SavesDelta, tf.LoadsDelta, tf.RejectsDelta)
	}
}

func pickDesigns(csv string) ([]*obdrel.Design, error) {
	all := map[string]*obdrel.Design{}
	for _, d := range obdrel.Benchmarks() {
		all[d.Name] = d
	}
	var out []*obdrel.Design
	for _, name := range strings.Split(csv, ",") {
		d, ok := all[strings.ToUpper(strings.TrimSpace(name))]
		if !ok {
			return nil, fmt.Errorf("unknown design %q", name)
		}
		out = append(out, d)
	}
	return out, nil
}

func config(mcSamples, gridN int, seed int64, workers int) *obdrel.Config {
	cfg := obdrel.DefaultConfig()
	cfg.MCSamples = mcSamples
	cfg.GridNx, cfg.GridNy = gridN, gridN
	cfg.Seed = seed
	cfg.Workers = workers
	// The serial-vs-parallel comparisons must rebuild their substrate
	// per run: stage artifacts are keyed without Workers, so the shared
	// stage cache would hand the parallel leg the serial leg's work and
	// inflate every speedup. The stage cache gets its own benchmark
	// (benchMaxVDD) where reuse is the thing being measured.
	cfg.DisableStageCache = true
	return cfg
}

func run(designs []*obdrel.Design, mcSamples, gridN int, seed int64, workers int, quick, stages, traceOH, kernels bool) *Report {
	rep := &Report{
		Schema:      Schema,
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		NumCPU:      runtime.NumCPU(),
		Workers:     par.Resolve(workers, 1<<30),
		Quick:       quick,
		MCSamples:   mcSamples,
		GridN:       gridN,
	}
	for _, d := range designs {
		rep.Designs = append(rep.Designs, benchDesign(d, mcSamples, gridN, seed, workers, quick))
	}
	rep.Table3Sweep = benchSweep(designs, mcSamples, gridN, seed, workers)
	rep.PCACache = CacheReport{
		Computes: grid.SharedPCACache.Computes(),
		Hits:     grid.SharedPCACache.Hits(),
		Entries:  grid.SharedPCACache.Len(),
	}
	if stages {
		rep.Schema = SchemaV2
		mv, st := benchMaxVDD(designs[0], mcSamples, gridN, seed, workers)
		rep.MaxVDDReuse, rep.Stages = &mv, st
	}
	if traceOH {
		// v3 is v2 + tracing; without the stage sections the report
		// stays at its prior schema and carries the section as extra.
		if stages {
			rep.Schema = SchemaV3
		}
		t := benchTracing(designs[0], mcSamples, gridN, seed, workers)
		rep.TracingOverhead = &t
		fp := benchFaultPath()
		rep.FaultPath = &fp
	}
	if kernels {
		// v5 is v3 + the kernel sections; with earlier sections off the
		// report keeps its prior schema and carries these as extras.
		if stages && traceOH {
			rep.Schema = SchemaV5
		}
		sv := benchSolver(quick, workers)
		rep.Solver = &sv
		qa := benchQueryAllocs(designs[0], mcSamples, gridN, seed, workers)
		rep.QueryAllocs = &qa
		tf := benchTableFile(designs[0], mcSamples, gridN, seed, workers, quick)
		rep.TableFile = &tf
	}
	return rep
}

// benchSolver sweeps the thermal grid, timing multigrid against SOR on
// the C6 floorplan with a fixed power vector. Both solvers run at
// Tol=1e-9 so the per-cell disagreement column compares converged
// fields; SOR gets the iteration headroom its O(N²) convergence needs
// and is skipped beyond 100×100.
func benchSolver(quick bool, workers int) SolverReport {
	fd := floorplan.C6()
	powers := make([]float64, len(fd.Blocks))
	for i := range powers {
		powers[i] = 0.4 + 0.15*float64(i%5)
	}
	grids := []int{25, 50, 100}
	if !quick {
		grids = append(grids, 200)
	}
	const reps = 3
	timeSolve := func(s *thermal.Solver) (int64, *thermal.Field) {
		best := int64(1 << 62)
		var f *thermal.Field
		for r := 0; r < reps; r++ {
			start := time.Now()
			out, err := s.Solve(fd, powers)
			if err != nil {
				log.Fatal(err)
			}
			if ns := time.Since(start).Nanoseconds(); ns < best {
				best = ns
			}
			f = out
		}
		return best, f
	}
	var rep SolverReport
	for _, n := range grids {
		mg := *thermal.DefaultSolver()
		mg.Nx, mg.Ny = n, n
		mg.Method = thermal.MethodMultigrid
		mg.Tol = 1e-9
		mg.Workers = workers
		leg := SolverLeg{Grid: n}
		var mgField *thermal.Field
		leg.MultigridNs, mgField = timeSolve(&mg)
		leg.Cycles = mgField.Iterations
		if n <= 100 {
			sor := mg
			sor.Method = thermal.MethodSOR
			sor.MaxIter = 500000
			var sorField *thermal.Field
			leg.SORNs, sorField = timeSolve(&sor)
			leg.SORIters = sorField.Iterations
			leg.Speedup = float64(leg.SORNs) / float64(leg.MultigridNs)
			// Agreement is judged against a converged SOR reference, not
			// the timed run: at Tol=1e-9 SOR's remaining true error
			// dominates any multigrid/SOR difference.
			ref := sor
			ref.Tol = 1e-11
			refField, err := ref.Solve(fd, powers)
			if err != nil {
				log.Fatal(err)
			}
			for i := range mgField.Temps {
				if d := math.Abs(mgField.Temps[i] - refField.Temps[i]); d > leg.MaxTempDiffK {
					leg.MaxTempDiffK = d
				}
			}
		}
		rep.Legs = append(rep.Legs, leg)
	}
	return rep
}

// benchQueryAllocs re-measures the warm-query allocation counts the
// way alloc_test.go does, so the committed report carries the proof.
func benchQueryAllocs(d *obdrel.Design, mcSamples, gridN int, seed int64, workers int) QueryAllocsReport {
	an, err := obdrel.NewAnalyzer(d, config(mcSamples, gridN, seed, workers))
	if err != nil {
		log.Fatal(err)
	}
	q := QueryAllocsReport{Design: d.Name}
	measure := func(m obdrel.Method) (fp, life int64) {
		if _, err := an.FailureProb(1e4, m); err != nil { // warm
			log.Fatal(err)
		}
		fp = int64(testing.AllocsPerRun(200, func() {
			if _, err := an.FailureProb(1e4, m); err != nil {
				log.Fatal(err)
			}
		}))
		life = int64(testing.AllocsPerRun(200, func() {
			if _, err := an.LifetimePPM(10, m); err != nil {
				log.Fatal(err)
			}
		}))
		return fp, life
	}
	q.StFastFailureProbAllocs, q.StFastLifetimeAllocs = measure(obdrel.MethodStFast)
	q.HybridFailureProbAllocs, q.HybridLifetimeAllocs = measure(obdrel.MethodHybrid)
	return q
}

// benchTableFile times warm hybrid queries with in-process tables
// against the same tables served from a spilled file, as batched-p99
// per-query latency. One build spills (saves_delta), a second
// analyzer loads (loads_delta); any reject means the round trip is
// broken.
func benchTableFile(d *obdrel.Design, mcSamples, gridN int, seed int64, workers int, quick bool) TableFileReport {
	dir, err := os.MkdirTemp("", "obdrel-bench-tables-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	const batch, samples = 200, 100
	rep := TableFileReport{Design: d.Name, BatchQueries: batch, Samples: samples}
	p99 := func(an *obdrel.Analyzer) int64 {
		// The engines under test are allocation-free, but the builds
		// above left garbage behind; collect it now so a background GC
		// doesn't land inside one batch and masquerade as query cost.
		runtime.GC()
		times := make([]int64, samples)
		for i := range times {
			start := time.Now()
			for j := 0; j < batch; j++ {
				if _, err := an.FailureProb(1e4, obdrel.MethodHybrid); err != nil {
					log.Fatal(err)
				}
			}
			times[i] = time.Since(start).Nanoseconds()
		}
		sort.Slice(times, func(a, b int) bool { return times[a] < times[b] })
		// Nearest-rank p99: ceil(0.99·n)-th order statistic.
		return times[(samples*99+99)/100-1] / int64(batch)
	}

	// Build all three analyzers first, then measure: the builds are the
	// allocation-heavy phase, and interleaving them with the latency
	// sampling skews whichever measurement runs last.
	loads0, saves0, rejects0 := obdrel.TableFileStats()
	spillCfg := func() *obdrel.Config {
		c := config(mcSamples, gridN, seed, workers)
		c.TableDir = dir
		return c
	}
	anMem, err := obdrel.NewAnalyzer(d, config(mcSamples, gridN, seed, workers))
	if err != nil {
		log.Fatal(err)
	}
	if _, err := anMem.FailureProb(1e4, obdrel.MethodHybrid); err != nil { // warm in-process
		log.Fatal(err)
	}
	anSpill, err := obdrel.NewAnalyzer(d, spillCfg())
	if err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	if _, err := anSpill.FailureProb(1e4, obdrel.MethodHybrid); err != nil { // build + spill
		log.Fatal(err)
	}
	rep.BuildNs = time.Since(start).Nanoseconds()
	anFile, err := obdrel.NewAnalyzer(d, spillCfg())
	if err != nil {
		log.Fatal(err)
	}
	start = time.Now()
	if _, err := anFile.FailureProb(1e4, obdrel.MethodHybrid); err != nil { // load from file
		log.Fatal(err)
	}
	rep.LoadNs = time.Since(start).Nanoseconds()

	rep.InProcP99Ns = p99(anMem)
	rep.MmapP99Ns = p99(anFile)
	rep.P99Ratio = float64(rep.MmapP99Ns) / float64(rep.InProcP99Ns)

	loads1, saves1, rejects1 := obdrel.TableFileStats()
	rep.LoadsDelta = loads1 - loads0
	rep.SavesDelta = saves1 - saves0
	rep.RejectsDelta = rejects1 - rejects0
	return rep
}

// benchFaultPath measures the disarmed injection point. Must run with
// no injector armed anywhere in the process (bench never arms one).
func benchFaultPath() FaultPathReport {
	ctx := context.Background()
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := fault.Inject(ctx, "bench.disarmed"); err != nil {
				b.Fatal(err)
			}
		}
	})
	return FaultPathReport{
		DisarmedNsOp:     float64(res.T.Nanoseconds()) / float64(res.N),
		DisarmedAllocsOp: res.AllocsPerOp(),
	}
}

// benchTracing times a warm analyzer lookup (every stage a cache hit)
// with an untraced context against the same lookup under a per-op root
// span, then pins the disabled fast path down to ns/op and allocs/op
// with a span micro-benchmark. disabled_overhead_pct projects what the
// compiled-in instrumentation costs a production (untraced) request:
// spans_per_op nil-path calls at span_disabled_ns_op each, as a
// fraction of the op itself.
func benchTracing(d *obdrel.Design, mcSamples, gridN int, seed int64, workers int) TracingOverheadReport {
	cfg := config(mcSamples, gridN, seed, workers)
	cfg.DisableStageCache = false // the op under test is the cached lookup
	ctx := context.Background()
	if _, err := obdrel.NewAnalyzerCtx(ctx, d, cfg); err != nil { // warm every stage
		log.Fatal(err)
	}
	const reps = 500
	t := TracingOverheadReport{Op: "warm NewAnalyzerCtx (all stages cached)", Reps: reps}

	start := time.Now()
	for i := 0; i < reps; i++ {
		if _, err := obdrel.NewAnalyzerCtx(ctx, d, cfg); err != nil {
			log.Fatal(err)
		}
	}
	t.DisabledNs = time.Since(start).Nanoseconds() / reps

	tr := obs.NewTracer(obs.Options{RingSize: 4})
	start = time.Now()
	for i := 0; i < reps; i++ {
		tctx, root := tr.StartTrace(ctx, "bench", "", "")
		if _, err := obdrel.NewAnalyzerCtx(tctx, d, cfg); err != nil {
			log.Fatal(err)
		}
		if out := root.EndTrace(); out != nil {
			t.SpansPerOp = out.SpanCount
		}
	}
	t.EnabledNs = time.Since(start).Nanoseconds() / reps
	t.EnabledOverheadPct = float64(t.EnabledNs-t.DisabledNs) / float64(t.DisabledNs) * 100

	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		bctx := context.Background()
		for i := 0; i < b.N; i++ {
			_, sp := obs.StartSpanJoin(bctx, "stage:", "bench")
			sp.End()
		}
	})
	t.SpanDisabledNsOp = float64(res.NsPerOp())
	t.SpanDisabledAllocs = res.AllocsPerOp()
	t.DisabledOverheadPct = float64(t.SpansPerOp) * t.SpanDisabledNsOp / float64(t.DisabledNs) * 100
	return t
}

// benchMaxVDD times the tentpole workload: a voltage bisection whose
// probes share the voltage-independent stages. Three phases on a
// reset stage cache — pinned (PinThermalVDD collapses the search to
// one thermal solve), then cold and warm searches whose cumulative
// stage counters become the report's stages section.
func benchMaxVDD(d *obdrel.Design, mcSamples, gridN int, seed int64, workers int) (MaxVDDReport, []StageReport) {
	const (
		ppm    = 10.0
		target = 5 * 8760.0
	)
	sc := obdrel.Stages()
	cfg := config(mcSamples, gridN, seed, workers)
	cfg.DisableStageCache = false // reuse is the subject here
	search := func(c *obdrel.Config) (int, int64) {
		probes := 0
		factory := func(ctx context.Context, pd *obdrel.Design, pc *obdrel.Config) (*obdrel.Analyzer, error) {
			probes++
			return obdrel.NewAnalyzerCtx(ctx, pd, pc)
		}
		start := time.Now()
		if _, err := obdrel.MaxVDDFromCtx(context.Background(), factory, d, c,
			obdrel.MethodStFast, ppm, target, 1.0, 1.5, 0.005); err != nil {
			log.Fatal(err)
		}
		return probes, time.Since(start).Nanoseconds()
	}
	builds := func(stage string) int64 { return sc.Stat(stage).Builds }

	r := MaxVDDReport{Design: d.Name}
	pinned := *cfg
	pinned.PinThermalVDD = pinned.VDD
	sc.Reset()
	_, r.PinnedNs = search(&pinned)
	r.PinnedThermalBuilds = builds(obdrel.StageThermal)

	sc.Reset()
	r.Probes, r.ColdNs = search(cfg)
	r.ColdThermalBuilds = builds(obdrel.StageThermal)
	r.ColdPCABuilds = builds(obdrel.StagePCA)
	_, r.WarmNs = search(cfg)
	r.WarmThermalBuilds = builds(obdrel.StageThermal) - r.ColdThermalBuilds
	r.WarmPCABuilds = builds(obdrel.StagePCA) - r.ColdPCABuilds
	r.Speedup = float64(r.ColdNs) / float64(r.WarmNs)

	var st []StageReport
	for _, s := range sc.Snapshot() {
		st = append(st, StageReport{
			Stage:           s.Stage,
			Hits:            s.Hits,
			Misses:          s.Misses,
			Builds:          s.Builds,
			CancelledBuilds: s.Cancels,
			BuildSeconds:    s.BuildSeconds,
			Entries:         s.Entries,
		})
	}
	return r, st
}

// benchDesign times each engine's steady-state query and isolates the
// MC FailureProb reduction serial-vs-parallel.
func benchDesign(d *obdrel.Design, mcSamples, gridN int, seed int64, workers int, quick bool) DesignReport {
	dr := DesignReport{Design: d.Name, Devices: d.TotalDevices()}
	an, err := obdrel.NewAnalyzer(d, config(mcSamples, gridN, seed, workers))
	if err != nil {
		log.Fatal(err)
	}
	ref, err := an.LifetimePPM(10, obdrel.MethodMC) // warms the MC engine too
	if err != nil {
		log.Fatal(err)
	}
	reps := 5
	if quick {
		reps = 2
	}
	methods := []obdrel.Method{
		obdrel.MethodMC, obdrel.MethodStFast, obdrel.MethodStMC,
		obdrel.MethodHybrid, obdrel.MethodGuard,
	}
	times := map[obdrel.Method]time.Duration{}
	for _, m := range methods {
		// Warm: engine construction (sampling, PCA, hybrid table) is a
		// one-time cost, not the steady-state query being measured.
		life, err := an.LifetimePPM(10, m)
		if err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		for r := 0; r < reps; r++ {
			if _, err := an.LifetimePPM(10, m); err != nil {
				log.Fatal(err)
			}
		}
		per := time.Since(start) / time.Duration(reps)
		times[m] = per
		dr.Engines = append(dr.Engines, EngineReport{
			Method:       m.String(),
			QueryNs:      per.Nanoseconds(),
			LifetimeH:    life,
			ErrVsMCPct:   (life - ref) / ref * 100,
			QueriesTimed: reps,
		})
	}
	for i := range dr.Engines {
		dr.Engines[i].SpeedupVsMC = float64(times[obdrel.MethodMC]) / float64(times[methods[i]])
	}
	dr.MCFailureProb = benchMCFailureProb(d, mcSamples, gridN, seed, workers, ref, reps)
	return dr
}

// benchMCFailureProb times the pure MC reduction (FailureProb over the
// sample histograms) with Workers:1 against the parallel pool. Both
// analyzers draw identical samples (the sampling plan is
// worker-independent), so the comparison is reduction-only.
func benchMCFailureProb(d *obdrel.Design, mcSamples, gridN int, seed int64, workers int, t float64, reps int) SerialParallel {
	timeOne := func(w int) int64 {
		an, err := obdrel.NewAnalyzer(d, config(mcSamples, gridN, seed, w))
		if err != nil {
			log.Fatal(err)
		}
		if _, err := an.FailureProb(t, obdrel.MethodMC); err != nil { // warm: sampling
			log.Fatal(err)
		}
		start := time.Now()
		for r := 0; r < reps; r++ {
			if _, err := an.FailureProb(t, obdrel.MethodMC); err != nil {
				log.Fatal(err)
			}
		}
		return (time.Since(start) / time.Duration(reps)).Nanoseconds()
	}
	sp := SerialParallel{SerialNs: timeOne(1), ParallelNs: timeOne(workers)}
	sp.Speedup = float64(sp.SerialNs) / float64(sp.ParallelNs)
	return sp
}

// benchSweep times a Table III-shaped sweep (every design × the four
// fast methods + the MC reference) serially and with the full fan-out.
func benchSweep(designs []*obdrel.Design, mcSamples, gridN int, seed int64, workers int) SerialParallel {
	sweep := func(w int) int64 {
		start := time.Now()
		par.For(w, len(designs), func(di int) {
			an, err := obdrel.NewAnalyzer(designs[di], config(mcSamples, gridN, seed, w))
			if err != nil {
				log.Fatal(err)
			}
			for _, m := range []obdrel.Method{
				obdrel.MethodMC, obdrel.MethodStFast, obdrel.MethodStMC,
				obdrel.MethodHybrid, obdrel.MethodGuard,
			} {
				if _, err := an.LifetimePPM(10, m); err != nil {
					log.Fatal(err)
				}
			}
		})
		return time.Since(start).Nanoseconds()
	}
	sp := SerialParallel{SerialNs: sweep(1), ParallelNs: sweep(workers)}
	sp.Speedup = float64(sp.SerialNs) / float64(sp.ParallelNs)
	return sp
}

// validateReport checks that an existing report file parses and
// carries the required fields — the CI smoke test for the schema.
func validateReport(path string) (string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return "", err
	}
	// Peek at the envelope first: the serving-side report families
	// (kind "serving"/"chaos"/"fleet"/"cluster", schemas v1/v4/v6/v7)
	// are loadgen's, and feeding one here would otherwise die on an
	// opaque unknown-field error instead of pointing at the right
	// validator.
	var head struct {
		Schema string `json:"schema"`
		Kind   string `json:"kind"`
	}
	if err := json.Unmarshal(data, &head); err != nil {
		return "", err
	}
	if head.Kind != "" {
		return "", fmt.Errorf("schema %q kind %q is a loadgen report; validate it with 'loadgen -validate %s'", head.Schema, head.Kind, path)
	}
	var rep Report
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&rep); err != nil {
		return "", err
	}
	switch {
	case rep.Schema != Schema && rep.Schema != SchemaV2 && rep.Schema != SchemaV3 && rep.Schema != SchemaV5:
		return "", fmt.Errorf("schema %q, want %q, %q, %q or %q", rep.Schema, Schema, SchemaV2, SchemaV3, SchemaV5)
	case rep.GoMaxProcs < 1:
		return "", fmt.Errorf("go_max_procs %d", rep.GoMaxProcs)
	case len(rep.Designs) == 0:
		return "", fmt.Errorf("no designs")
	case rep.Table3Sweep.SerialNs <= 0 || rep.Table3Sweep.ParallelNs <= 0:
		return "", fmt.Errorf("table3_sweep timings missing")
	}
	for _, d := range rep.Designs {
		if d.Design == "" || len(d.Engines) == 0 {
			return "", fmt.Errorf("design entry %+v incomplete", d)
		}
		for _, e := range d.Engines {
			if e.Method == "" || e.QueryNs <= 0 {
				return "", fmt.Errorf("%s: engine entry %+v incomplete", d.Design, e)
			}
		}
		if d.MCFailureProb.SerialNs <= 0 || d.MCFailureProb.ParallelNs <= 0 {
			return "", fmt.Errorf("%s: mc_failure_prob timings missing", d.Design)
		}
	}
	if rep.Schema == SchemaV2 || rep.Schema == SchemaV3 || rep.Schema == SchemaV5 {
		if err := validateStages(&rep); err != nil {
			return "", err
		}
	}
	if rep.Schema == SchemaV3 || rep.Schema == SchemaV5 {
		if err := validateTracing(&rep); err != nil {
			return "", err
		}
	}
	if rep.Schema == SchemaV5 {
		if err := validateKernels(&rep); err != nil {
			return "", err
		}
	}
	return rep.Schema, nil
}

// validateKernels gates the v5 raw-speed sections — the PR's
// acceptance bars: multigrid at least 5× SOR at 100×100 with the two
// solvers agreeing to 1e-7 K, warm st_fast/hybrid queries allocating
// exactly nothing, and file-served hybrid queries within 10% of the
// in-process p99.
func validateKernels(rep *Report) error {
	s := rep.Solver
	if s == nil || len(s.Legs) == 0 {
		return fmt.Errorf("v5 report without solver section")
	}
	var gate *SolverLeg
	for i := range s.Legs {
		l := &s.Legs[i]
		if l.MultigridNs <= 0 || l.Cycles < 1 {
			return fmt.Errorf("solver leg %+v incomplete", l)
		}
		if l.Grid == 100 {
			gate = l
		}
	}
	switch {
	case gate == nil:
		return fmt.Errorf("solver section lacks the 100×100 gate leg")
	case gate.SORNs <= 0 || gate.SORIters < 1:
		return fmt.Errorf("100×100 leg did not run SOR")
	case gate.MultigridNs*5 > gate.SORNs:
		return fmt.Errorf("multigrid only %.2fx SOR at 100×100, want ≥ 5x",
			float64(gate.SORNs)/float64(gate.MultigridNs))
	case gate.MaxTempDiffK > 1e-7:
		return fmt.Errorf("solvers disagree by %.3e K at 100×100, want ≤ 1e-7", gate.MaxTempDiffK)
	}
	q := rep.QueryAllocs
	switch {
	case q == nil:
		return fmt.Errorf("v5 report without query_allocs section")
	case q.StFastFailureProbAllocs != 0 || q.StFastLifetimeAllocs != 0 ||
		q.HybridFailureProbAllocs != 0 || q.HybridLifetimeAllocs != 0:
		return fmt.Errorf("warm queries allocate (st_fast %d/%d, hybrid %d/%d), want 0",
			q.StFastFailureProbAllocs, q.StFastLifetimeAllocs,
			q.HybridFailureProbAllocs, q.HybridLifetimeAllocs)
	}
	tf := rep.TableFile
	switch {
	case tf == nil:
		return fmt.Errorf("v5 report without table_file section")
	case tf.InProcP99Ns <= 0 || tf.MmapP99Ns <= 0:
		return fmt.Errorf("table_file timings missing")
	case tf.SavesDelta < 1:
		return fmt.Errorf("table_file benchmark spilled %d files, want ≥ 1", tf.SavesDelta)
	case tf.LoadsDelta < 1:
		return fmt.Errorf("table_file benchmark loaded %d files, want ≥ 1", tf.LoadsDelta)
	case tf.RejectsDelta != 0:
		return fmt.Errorf("table_file benchmark rejected %d files, want 0", tf.RejectsDelta)
	case float64(tf.MmapP99Ns) > 1.1*float64(tf.InProcP99Ns):
		return fmt.Errorf("file-served p99 %.0fns exceeds 1.1× in-process p99 %.0fns",
			float64(tf.MmapP99Ns), float64(tf.InProcP99Ns))
	}
	return nil
}

// validateTracing gates the v3 sections: run metadata must be stamped
// and the tracing-overhead measurement must prove the disabled path is
// genuinely free — zero allocations on the span fast path and a
// projected untraced-request overhead under the 2% acceptance bar.
func validateTracing(rep *Report) error {
	t := rep.TracingOverhead
	switch {
	case rep.GoVersion == "":
		return fmt.Errorf("v3 report without go_version")
	case rep.NumCPU < 1:
		return fmt.Errorf("num_cpu %d", rep.NumCPU)
	case t == nil:
		return fmt.Errorf("v3 report without tracing_overhead section")
	case t.DisabledNs <= 0 || t.EnabledNs <= 0 || t.Reps <= 0:
		return fmt.Errorf("tracing_overhead timings missing")
	case t.SpansPerOp < 1:
		return fmt.Errorf("enabled trace recorded %d spans per op, want ≥ 1", t.SpansPerOp)
	case t.SpanDisabledAllocs != 0:
		return fmt.Errorf("disabled span path allocates (%d allocs/op), want 0", t.SpanDisabledAllocs)
	case t.SpanDisabledNsOp <= 0:
		return fmt.Errorf("span micro-benchmark missing")
	case t.DisabledOverheadPct >= 2:
		return fmt.Errorf("projected disabled-tracing overhead %.3f%%, want < 2%%", t.DisabledOverheadPct)
	}
	// fault_path is optional (committed reports may predate it), but
	// when present it must prove the disarmed path is free.
	if fp := rep.FaultPath; fp != nil {
		switch {
		case fp.DisarmedAllocsOp != 0:
			return fmt.Errorf("disarmed fault path allocates (%d allocs/op), want 0", fp.DisarmedAllocsOp)
		case fp.DisarmedNsOp <= 0 || fp.DisarmedNsOp >= 15:
			return fmt.Errorf("disarmed fault path costs %.1f ns/op, want (0, 15)", fp.DisarmedNsOp)
		}
	}
	return nil
}

// validateStages gates the v2 stage-timing sections: the report must
// carry per-stage counters and a MaxVDD reuse measurement whose
// numbers prove the cache actually worked — one PCA build across the
// whole cold bisection, zero rebuilds when warm, one thermal solve
// when pinned.
func validateStages(rep *Report) error {
	r := rep.MaxVDDReuse
	switch {
	case len(rep.Stages) == 0:
		return fmt.Errorf("v2 report without stages section")
	case r == nil:
		return fmt.Errorf("v2 report without maxvdd_reuse section")
	case r.Probes < 8:
		return fmt.Errorf("maxvdd_reuse ran %d probes, want ≥ 8", r.Probes)
	case r.ColdNs <= 0 || r.WarmNs <= 0 || r.PinnedNs <= 0:
		return fmt.Errorf("maxvdd_reuse timings missing")
	case r.ColdPCABuilds != 1:
		return fmt.Errorf("cold search ran %d PCA builds, want 1", r.ColdPCABuilds)
	case r.WarmThermalBuilds != 0 || r.WarmPCABuilds != 0:
		return fmt.Errorf("warm search rebuilt stages (thermal=%d pca=%d), want 0",
			r.WarmThermalBuilds, r.WarmPCABuilds)
	case r.PinnedThermalBuilds != 1:
		return fmt.Errorf("pinned search ran %d thermal solves, want exactly 1", r.PinnedThermalBuilds)
	case !rep.Quick && r.Speedup <= 1:
		return fmt.Errorf("warm search not faster than cold (speedup %.3f)", r.Speedup)
	}
	need := map[string]bool{}
	for _, s := range obdrel.StageNames() {
		need[s] = true
	}
	for _, s := range rep.Stages {
		if s.Stage == "" || s.Builds < 0 || s.Misses < s.Builds {
			return fmt.Errorf("stage entry %+v implausible", s)
		}
		delete(need, s.Stage)
	}
	if len(need) > 0 {
		return fmt.Errorf("stages section missing %d analysis stages", len(need))
	}
	return nil
}
