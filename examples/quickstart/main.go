// Quickstart: compute the oxide-breakdown-limited lifetime of the
// EV6-like benchmark processor with the paper's default setup, and
// contrast the statistical estimate against the traditional
// guard-band bound.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"obdrel"
)

func main() {
	// C6 is the alpha-processor benchmark: 15 functional modules,
	// 0.84M devices. DefaultConfig reproduces the paper's Table II
	// setup (2.2 nm oxide, 4% 3σ variation split 50/25/25, ρ = 0.5,
	// 25×25 correlation grid).
	an, err := obdrel.NewAnalyzer(obdrel.C6(), obdrel.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}

	min, mean, max := an.TempSpread()
	fmt.Printf("die temperature: %.1f–%.1f °C (mean %.1f)\n\n", min, max, mean)

	for _, ppm := range []float64{1, 10} {
		statistical, err := an.LifetimePPM(ppm, obdrel.MethodStFast)
		if err != nil {
			log.Fatal(err)
		}
		guard, err := an.LifetimePPM(ppm, obdrel.MethodGuard)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%2.0f-per-million lifetime:\n", ppm)
		fmt.Printf("  statistical (st_fast): %11.0f h  (%.1f years)\n", statistical, statistical/8760)
		fmt.Printf("  guard-band  (worst):   %11.0f h  (%.1f years)\n", guard, guard/8760)
		fmt.Printf("  guard-band pessimism:  %.0f%%\n\n", (statistical-guard)/statistical*100)
	}
}
