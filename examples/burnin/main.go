// Burn-in optimization: product TDDB distributions are bimodal — a
// tiny defect-carrying (extrinsic) population fails early with a
// shallow Weibull slope, while the intrinsic population wears out
// slowly. A burn-in screen at elevated voltage and temperature
// removes the defective parts before shipment at the cost of a little
// consumed intrinsic life and some fallout.
//
// This example sweeps the screen duration and reports the trade:
// fallout (yield cost) versus shipped-population 10-per-million field
// lifetime. It also shows the control case — without a defect
// population, burn-in only hurts.
//
// Run with:
//
//	go run ./examples/burnin
package main

import (
	"fmt"
	"log"

	"obdrel"
	"obdrel/internal/obd"
)

const (
	stressV  = 1.6   // burn-in overdrive (V)
	stressTC = 125.0 // burn-in oven temperature (°C)
)

func main() {
	cfg := obdrel.DefaultConfig()
	cfg.GridNx, cfg.GridNy = 16, 16
	ext := obd.DefaultExtrinsic()
	ext.DefectFraction = 1e-6 // 1 defective device per million
	cfg.Extrinsic = ext

	an, err := obdrel.NewAnalyzer(obdrel.C3(), cfg)
	if err != nil {
		log.Fatal(err)
	}
	unscreened, err := an.LifetimePPM(10, obdrel.MethodStFast)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("C3 with a %g defect fraction (bimodal TDDB):\n", ext.DefectFraction)
	fmt.Printf("  unscreened 10ppm field lifetime: %.4g h\n\n", unscreened)

	fmt.Printf("burn-in at %.1f V / %.0f °C:\n", stressV, stressTC)
	fmt.Printf("%10s %12s %18s %8s\n", "screen(h)", "fallout", "10ppm life (h)", "gain")
	for _, hours := range []float64{0.5, 2, 8, 24, 72} {
		res, err := an.BurnIn(stressV, stressTC, hours)
		if err != nil {
			log.Fatal(err)
		}
		life, err := res.LifetimePPM(10)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%10g %12.3g %18.4g %7.1f×\n", hours, res.Fallout, life, life/unscreened)
	}

	// Control: the same screen on a defect-free population.
	cfgClean := obdrel.DefaultConfig()
	cfgClean.GridNx, cfgClean.GridNy = 16, 16
	clean, err := obdrel.NewAnalyzer(obdrel.C3(), cfgClean)
	if err != nil {
		log.Fatal(err)
	}
	cleanBase, err := clean.LifetimePPM(10, obdrel.MethodStFast)
	if err != nil {
		log.Fatal(err)
	}
	res, err := clean.BurnIn(stressV, stressTC, 24)
	if err != nil {
		log.Fatal(err)
	}
	cleanScreened, err := res.LifetimePPM(10)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncontrol (no defect population): 24 h screen moves the 10ppm lifetime\n")
	fmt.Printf("from %.4g h to %.4g h — burn-in only consumes wear-out life when\n", cleanBase, cleanScreened)
	fmt.Printf("there is no infant mortality to remove.\n")
}
