// Runtime reliability monitoring with the hybrid engine — the
// application Section IV-E proposes: the per-block lookup tables are
// built once at design time, then a dynamic system queries chip
// reliability under changing operating conditions with microsecond
// latency, because a query is just N bilinear interpolations at
// (ln(t/α), b).
//
// This example emulates a day of operation in which the workload
// (and hence the supply-voltage profile) changes every hour, tracking
// accumulated wear-out risk with the fast tables and cross-checking
// one query against the full statistical analysis.
//
// Run with:
//
//	go run ./examples/monitoring
//
// This example keeps its analyzers in-process. The production path
// for the same workload is the obdreld daemon (cmd/obdreld), which
// serves these exact queries over HTTP with analyzer caching and
// request coalescing — the in-process loop below maps onto:
//
//	obdreld -addr :8080 &
//	curl 'localhost:8080/v1/failureprob?design=C6&method=hybrid&t=8760&vdd=1.32'
//
// (one cached analyzer per operating mode, keyed by the canonical
// (design, config) fingerprint; see README "Serving").
package main

import (
	"fmt"
	"log"
	"math"
	"time"

	"obdrel"
)

func main() {
	design := obdrel.C6()
	// One analyzer per operating mode. The hybrid tables inside each
	// are built once; afterwards every reliability query is a lookup.
	modes := []struct {
		name string
		vdd  float64
	}{
		{"idle ", 1.00},
		{"nom  ", 1.20},
		{"turbo", 1.32},
	}
	type ctx struct {
		name string
		an   *obdrel.Analyzer
	}
	var ctxs []ctx
	for _, m := range modes {
		cfg := obdrel.DefaultConfig()
		cfg.GridNx, cfg.GridNy = 16, 16
		cfg.VDD = m.vdd
		an, err := obdrel.NewAnalyzer(design, cfg)
		if err != nil {
			log.Fatal(err)
		}
		// Force table construction now (design time), so the monitor
		// loop below measures pure query latency.
		if _, err := an.FailureProb(1e5, obdrel.MethodHybrid); err != nil {
			log.Fatal(err)
		}
		ctxs = append(ctxs, ctx{m.name, an})
	}

	// Simulate 24 hours: the scheduler alternates modes; the monitor
	// asks "if the chip spent its whole life like this hour, what is
	// the failure probability at the 5-year horizon?" and accumulates
	// a duty-cycle-weighted wear estimate.
	const horizon = 5 * 8760.0
	schedule := []int{0, 0, 0, 1, 1, 2, 1, 1, 2, 2, 1, 1, 0, 1, 1, 2, 2, 2, 1, 1, 1, 0, 0, 0}
	var accum float64
	var queries int
	start := time.Now()
	fmt.Printf("%5s %6s %22s\n", "hour", "mode", "P_fail@5y if sustained")
	for hour, mi := range schedule {
		p, err := ctxs[mi].an.FailureProb(horizon, obdrel.MethodHybrid)
		if err != nil {
			log.Fatal(err)
		}
		queries++
		accum += p / float64(len(schedule))
		if hour%4 == 0 {
			fmt.Printf("%5d %6s %22.3g\n", hour, ctxs[mi].name, p)
		}
	}
	elapsed := time.Since(start)
	fmt.Printf("\nduty-cycle-weighted 5-year failure estimate: %.3g\n", accum)
	fmt.Printf("%d hybrid queries in %v (%.1f µs/query)\n",
		queries, elapsed, float64(elapsed.Microseconds())/float64(queries))

	// Cross-check: at nominal mode the table lookup must agree with
	// the full statistical integration.
	pHybrid, err := ctxs[1].an.FailureProb(horizon, obdrel.MethodHybrid)
	if err != nil {
		log.Fatal(err)
	}
	pFast, err := ctxs[1].an.FailureProb(horizon, obdrel.MethodStFast)
	if err != nil {
		log.Fatal(err)
	}
	rel := math.Abs(pHybrid-pFast) / pFast * 100
	fmt.Printf("\ncross-check at nominal: hybrid %.4g vs st_fast %.4g (%.2f%% apart)\n",
		pHybrid, pFast, rel)
}
