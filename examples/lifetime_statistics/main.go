// Lifetime statistics: sample a population of chips, fit the
// effective chip-level Weibull, and quantify how much lifetime a
// breakdown-tolerant design buys.
//
// Two results worth noticing:
//
//  1. Although each *device* is Weibull with slope β ≈ 1.3, the chip
//     population's effective slope is shallower — process variation
//     mixes devices of different strengths, spreading the failure
//     times. That spread is precisely why the worst-case guard band
//     is so pessimistic.
//  2. If the architecture can ride through the first few breakdowns
//     (Section III of the paper notes circuits often survive several
//     HBDs), the parts-per-million lifetime multiplies.
//
// Run with:
//
//	go run ./examples/lifetime_statistics
package main

import (
	"fmt"
	"log"

	"obdrel"
)

func main() {
	cfg := obdrel.DefaultConfig()
	cfg.GridNx, cfg.GridNy = 16, 16
	cfg.MCSamples = 2000
	an, err := obdrel.NewAnalyzer(obdrel.C4(), cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Draw a population of chip failure times and fit a Weibull.
	times, err := an.SampleFailureTimes(8000)
	if err != nil {
		log.Fatal(err)
	}
	scale, shape, r2, err := obdrel.FitWeibull(times)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("chip-level failure population (8000 sampled chips):\n")
	fmt.Printf("  effective Weibull: characteristic life %.3g h, slope β = %.3f (fit R² = %.3f)\n",
		scale, shape, r2)
	fmt.Printf("  (device-level slope is ≈1.32; the shallower chip slope is the\n")
	fmt.Printf("   signature of process variation spreading device strengths)\n\n")

	// Breakdown tolerance: lifetime at 10 ppm if the chip survives
	// k-1 breakdowns.
	base, err := an.LifetimePPM(10, obdrel.MethodMC)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("10-per-million lifetime vs tolerated breakdown count:\n")
	fmt.Printf("  %3s %14s %8s\n", "k", "lifetime (h)", "gain")
	fmt.Printf("  %3d %14.4g %8s\n", 1, base, "1.0×")
	for _, k := range []int{2, 3, 5} {
		life, err := an.LifetimePPMTolerant(10, k)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %3d %14.4g %7.1f×\n", k, life, life/base)
	}
	fmt.Println("\nEach tolerated breakdown multiplies the rare-failure lifetime —")
	fmt.Println("redundancy is worth far more at ppm targets than at the median.")
}
