// Voltage sweep: find the maximum supply voltage that still meets a
// lifetime target — the design decision the paper's introduction
// motivates ("any pessimism in oxide reliability analysis limits the
// maximum operating voltage and thus the maximum achievable
// chip-performance").
//
// The sweep runs both the statistical analysis and the guard-band
// bound; the gap between the two voltage limits is performance left
// on the table by the worst-case method.
//
// Run with:
//
//	go run ./examples/voltage_sweep
package main

import (
	"fmt"
	"log"

	"obdrel"
)

// The requirement: no more than 10 chips per million may fail within
// five years.
const (
	targetPPM   = 10
	targetHours = 5 * 8760.0
)

func main() {
	design := obdrel.C3()
	fmt.Printf("design %s (%d devices): max VDD for %g ppm at %.0f h\n\n",
		design.Name, design.TotalDevices(), float64(targetPPM), targetHours)

	fmt.Printf("%6s  %16s  %16s\n", "VDD", "st_fast life (h)", "guard life (h)")
	var vMaxStat, vMaxGuard float64
	for vdd := 1.00; vdd <= 1.40+1e-9; vdd += 0.05 {
		cfg := obdrel.DefaultConfig()
		cfg.GridNx, cfg.GridNy = 16, 16 // keep the sweep quick
		cfg.VDD = vdd
		an, err := obdrel.NewAnalyzer(design, cfg)
		if err != nil {
			log.Fatal(err)
		}
		stat, err := an.LifetimePPM(targetPPM, obdrel.MethodStFast)
		if err != nil {
			log.Fatal(err)
		}
		guard, err := an.LifetimePPM(targetPPM, obdrel.MethodGuard)
		if err != nil {
			log.Fatal(err)
		}
		mark := func(life float64) string {
			if life >= targetHours {
				return "ok"
			}
			return "FAIL"
		}
		fmt.Printf("%5.2fV  %12.3g %-4s %12.3g %-4s\n", vdd, stat, mark(stat), guard, mark(guard))
		if stat >= targetHours {
			vMaxStat = vdd
		}
		if guard >= targetHours {
			vMaxGuard = vdd
		}
	}

	fmt.Printf("\nmax VDD meeting the target:\n")
	fmt.Printf("  statistical analysis: %.2f V\n", vMaxStat)
	fmt.Printf("  guard-band analysis:  %.2f V\n", vMaxGuard)
	if vMaxStat > vMaxGuard {
		fmt.Printf("  → the statistical analysis unlocks +%.0f mV of supply headroom\n",
			(vMaxStat-vMaxGuard)*1000)
	}
}
