// Dynamic reliability management (DRM) — the application behind the
// DATE 2010 title. A DRM controller uses a fast reliability model to
// steer the operating point over the product's life: when the chip
// has consumed less wear than budgeted, it can run faster (higher
// VDD); when it has over-consumed, it must back off.
//
// This example simulates five years of quarterly DRM decisions. Each
// quarter the workload intensity changes; the controller
//
//  1. accounts the wear consumed so far as equivalent nominal-VDD
//     hours (linear damage, like the mission-profile analyzer), and
//  2. picks the highest VDD for the next quarter such that — if held
//     for the rest of life — the 10-per-million budget still closes.
//
// The voltage decisions come from MaxVDD over the st_fast engine;
// because st_fast is device-count independent, each decision costs
// only a handful of milliseconds-scale analyses — exactly the
// "embedded into a dynamic system" use the paper's Section IV-E
// sketches.
//
// Run with:
//
//	go run ./examples/drm
package main

import (
	"fmt"
	"log"

	"obdrel"
)

const (
	lifeHours  = 5 * 8760.0 // product life target
	ppmBudget  = 10.0       // failure budget at end of life
	quarterH   = lifeHours / 20
	vMin, vMax = 1.00, 1.40
)

func main() {
	design := obdrel.C3()
	cfg := obdrel.DefaultConfig()
	cfg.GridNx, cfg.GridNy = 12, 12 // fast decisions

	// Reference: the worst-case (guard-band) static choice, fixed for
	// life at time zero.
	vGuard, err := obdrel.MaxVDD(design, cfg, obdrel.MethodGuard, ppmBudget, lifeHours, vMin, vMax, 0.01)
	if err != nil {
		log.Fatal(err)
	}
	// The static statistical choice.
	vStatic, err := obdrel.MaxVDD(design, cfg, obdrel.MethodStFast, ppmBudget, lifeHours, vMin, vMax, 0.01)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("static choices for %g ppm over %.0f h:\n", ppmBudget, lifeHours)
	fmt.Printf("  guard band:  %.2f V (fixed for life)\n", vGuard)
	fmt.Printf("  statistical: %.2f V (fixed for life)\n\n", vStatic)

	// DRM loop: quarterly workload phases alternate between light and
	// heavy; light phases age the chip less, freeing budget the
	// controller converts into voltage (performance) later.
	phases := []struct {
		name  string
		scale float64 // workload activity scaling
	}{
		{"light", 0.4}, {"light", 0.4}, {"heavy", 1.0}, {"light", 0.4},
		{"heavy", 1.0}, {"light", 0.4}, {"light", 0.4}, {"heavy", 1.0},
		{"light", 0.4}, {"light", 0.4}, {"light", 0.4}, {"heavy", 1.0},
		{"light", 0.4}, {"heavy", 1.0}, {"light", 0.4}, {"light", 0.4},
		{"heavy", 1.0}, {"light", 0.4}, {"light", 0.4}, {"light", 0.4},
	}
	fmt.Printf("%8s %6s %8s %14s\n", "quarter", "phase", "VDD", "damage used")
	// Miner's-rule bookkeeping: a quarter at an operating point with
	// 10-ppm lifetime L consumes quarterH/L of the unit damage
	// budget; the budget must not exceed 1 at end of life.
	damage := 0.0
	var vSum float64
	for q, ph := range phases {
		remainingH := lifeHours - float64(q)*quarterH
		headroom := 1 - damage
		if headroom < 1e-6 {
			headroom = 1e-6
		}
		// If the rest of life ran at this quarter's operating point,
		// the budget closes when L(v) ≥ remainingH/headroom.
		need := remainingH / headroom
		probe := *cfg
		an, v := pickVDD(design, &probe, ph.scale, need)
		lifeAtV, err := an.LifetimePPM(ppmBudget, obdrel.MethodStFast)
		if err != nil {
			log.Fatal(err)
		}
		damage += quarterH / lifeAtV
		vSum += v
		if q%4 == 0 || q == len(phases)-1 {
			fmt.Printf("%8d %6s %7.2fV %13.1f%%\n", q, ph.name, v, damage*100)
		}
	}
	fmt.Printf("\nDRM average VDD: %.3f V vs static statistical %.2f V and guard %.2f V\n",
		vSum/float64(len(phases)), vStatic, vGuard)
	fmt.Printf("end-of-life damage: %.0f%% of the 10-ppm budget (must stay ≤ 100%%)\n",
		damage*100)
	fmt.Println("\nThe controller banks wear during light phases and spends it as")
	fmt.Println("voltage during heavy ones — performance the guard band forfeits.")
}

// pickVDD finds the highest VDD meeting `need` hours of 10-ppm life
// under the given workload scaling, probing with mission analyzers of
// one mode.
func pickVDD(design *obdrel.Design, cfg *obdrel.Config, scale, need float64) (*obdrel.Analyzer, float64) {
	lo, hi := vMin, vMax
	var best *obdrel.Analyzer
	bestV := vMin
	for hi-lo > 0.01 {
		mid := (lo + hi) / 2
		an, err := obdrel.NewMissionAnalyzer(design, cfg, []obdrel.Mode{
			{Name: "q", VDD: mid, ActivityScale: scale, Fraction: 1},
		})
		if err != nil {
			hi = mid
			continue
		}
		life, err := an.LifetimePPM(ppmBudget, obdrel.MethodStFast)
		if err != nil {
			hi = mid
			continue
		}
		if life >= need {
			lo, best, bestV = mid, an, mid
		} else {
			hi = mid
		}
	}
	if best == nil {
		an, err := obdrel.NewMissionAnalyzer(design, cfg, []obdrel.Mode{
			{Name: "q", VDD: vMin, ActivityScale: scale, Fraction: 1},
		})
		if err != nil {
			log.Fatal(err)
		}
		best, bestV = an, vMin
	}
	return best, bestV
}
