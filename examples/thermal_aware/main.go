// Thermal-aware analysis walkthrough on the EV6-like processor:
// renders the solved temperature field as an ASCII heat map (the
// Fig. 1(a) profile), reports every block's operating point and
// Weibull parameters, and quantifies how much lifetime a
// temperature-unaware analysis throws away (the Fig. 10 comparison).
//
// Run with:
//
//	go run ./examples/thermal_aware
package main

import (
	"fmt"
	"log"
	"sort"

	"obdrel"
)

func main() {
	an, err := obdrel.NewAnalyzer(obdrel.C6(), obdrel.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}

	// ASCII heat map, hottest cells darkest.
	nx, ny, temps := an.TemperatureField()
	min, _, max := an.TempSpread()
	shades := []byte(" .:-=+*#%@")
	fmt.Printf("temperature field (%.1f–%.1f °C), top row is the FP cluster:\n", min, max)
	for iy := ny - 1; iy >= 0; iy -= 2 { // halve vertically for aspect ratio
		row := make([]byte, nx)
		for ix := 0; ix < nx; ix++ {
			f := (temps[iy*nx+ix] - min) / (max - min)
			idx := int(f * float64(len(shades)-1))
			row[ix] = shades[idx]
		}
		fmt.Printf("  |%s|\n", row)
	}

	fmt.Printf("\n%-8s %9s %9s %8s %12s %8s\n", "block", "Tmean(°C)", "Tmax(°C)", "P(W)", "alpha(h)", "b(1/nm)")
	for _, b := range an.Blocks() {
		fmt.Printf("%-8s %9.1f %9.1f %8.2f %12.3g %8.3f\n",
			b.Name, b.MeanTempC, b.MaxTempC, b.PowerW, b.Alpha, b.B)
	}

	// Which block limits the chip? Decompose the failure probability
	// at the 10-ppm lifetime.
	t10, err := an.LifetimePPM(10, obdrel.MethodStFast)
	if err != nil {
		log.Fatal(err)
	}
	contribs, err := an.FailureContributions(t10)
	if err != nil {
		log.Fatal(err)
	}
	sort.Slice(contribs, func(i, j int) bool { return contribs[i].Share > contribs[j].Share })
	fmt.Println("\ntop failure contributors at the 10-ppm lifetime:")
	for _, c := range contribs[:5] {
		fmt.Printf("  %-8s %5.1f%%\n", c.Name, c.Share*100)
	}

	fmt.Println()
	for _, row := range mustCompare(an) {
		fmt.Printf("%-13s 10ppm lifetime %12.4g h   error vs MC %+6.1f%%\n",
			row.Method, row.LifetimeH, row.ErrVsMCPct)
	}
	fmt.Println("\nA temperature-unaware analysis applies the hotspot's aging to the")
	fmt.Println("whole die; the guard-band method stacks minimum thickness on top.")
	fmt.Println("Both discard real, usable lifetime — the paper's central point.")
}

func mustCompare(an *obdrel.Analyzer) []obdrel.Comparison {
	rows, err := an.CompareMethods(10, []obdrel.Method{
		obdrel.MethodMC,
		obdrel.MethodStFast,
		obdrel.MethodTempUnaware,
		obdrel.MethodGuard,
	})
	if err != nil {
		log.Fatal(err)
	}
	return rows
}
