package obdrel_test

import (
	"math"
	"testing"

	"obdrel"
)

func TestMissionSingleModeMatchesAnalyzer(t *testing.T) {
	cfg := fastConfig()
	plain, err := obdrel.NewAnalyzer(obdrel.C1(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	mission, err := obdrel.NewMissionAnalyzer(obdrel.C1(), cfg, []obdrel.Mode{
		{Name: "nominal", VDD: 1.2, ActivityScale: 1, Fraction: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	lPlain, err := plain.LifetimePPM(10, obdrel.MethodStFast)
	if err != nil {
		t.Fatal(err)
	}
	lMission, err := mission.LifetimePPM(10, obdrel.MethodStFast)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(lPlain, lMission, 1e-9) {
		t.Errorf("single-mode mission %v differs from plain analyzer %v", lMission, lPlain)
	}
}

func TestMissionBetweenPureModes(t *testing.T) {
	cfg := fastConfig()
	idle := obdrel.Mode{Name: "idle", VDD: 1.0, ActivityScale: 0.3, Fraction: 1}
	turbo := obdrel.Mode{Name: "turbo", VDD: 1.3, ActivityScale: 1, Fraction: 1}
	life := func(modes []obdrel.Mode) float64 {
		an, err := obdrel.NewMissionAnalyzer(obdrel.C1(), cfg, modes)
		if err != nil {
			t.Fatal(err)
		}
		l, err := an.LifetimePPM(10, obdrel.MethodStFast)
		if err != nil {
			t.Fatal(err)
		}
		return l
	}
	lIdle := life([]obdrel.Mode{idle})
	lTurbo := life([]obdrel.Mode{turbo})
	mixIdle, mixTurbo := idle, turbo
	mixIdle.Fraction, mixTurbo.Fraction = 0.5, 0.5
	lMix := life([]obdrel.Mode{mixIdle, mixTurbo})
	if !(lTurbo < lMix && lMix < lIdle) {
		t.Fatalf("mix %v not between turbo %v and idle %v", lMix, lTurbo, lIdle)
	}
	// Linear damage: the mix is dominated by the turbo mode; the
	// effective lifetime is close to lTurbo/fraction (up to the
	// Weibull-slope nonlinearity), far below the arithmetic mean.
	if lMix > (lIdle+lTurbo)/4 {
		t.Errorf("mix %v suspiciously close to the arithmetic mean of %v and %v", lMix, lIdle, lTurbo)
	}
	if lMix > 4*lTurbo {
		t.Errorf("50%% turbo mix %v more than 4× pure turbo %v", lMix, lTurbo)
	}
}

func TestMissionMonotoneInTurboShare(t *testing.T) {
	cfg := fastConfig()
	prev := math.Inf(1)
	for _, turboFrac := range []float64{0.1, 0.4, 0.8} {
		an, err := obdrel.NewMissionAnalyzer(obdrel.C1(), cfg, []obdrel.Mode{
			{Name: "idle", VDD: 1.0, ActivityScale: 0.3, Fraction: 1 - turboFrac},
			{Name: "turbo", VDD: 1.3, ActivityScale: 1, Fraction: turboFrac},
		})
		if err != nil {
			t.Fatal(err)
		}
		l, err := an.LifetimePPM(10, obdrel.MethodStFast)
		if err != nil {
			t.Fatal(err)
		}
		if !(l < prev) {
			t.Fatalf("lifetime %v did not fall as turbo share rose to %v", l, turboFrac)
		}
		prev = l
	}
}

func TestMissionBlockReport(t *testing.T) {
	cfg := fastConfig()
	an, err := obdrel.NewMissionAnalyzer(obdrel.C1(), cfg, []obdrel.Mode{
		{Name: "lo", VDD: 1.0, ActivityScale: 0.5, Fraction: 0.7},
		{Name: "hi", VDD: 1.3, ActivityScale: 1, Fraction: 0.3},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range an.Blocks() {
		if !(b.Alpha > 0) || !(b.B > 0) || !(b.PowerW > 0) {
			t.Fatalf("implausible mission block report %+v", b)
		}
		if b.MaxTempC < b.MeanTempC {
			t.Fatalf("block %s: max temp below weighted mean", b.Name)
		}
	}
	// The temperature field must be present (highest-power mode).
	nx, ny, temps := an.TemperatureField()
	if nx*ny != len(temps) || len(temps) == 0 {
		t.Fatal("missing mission temperature field")
	}
}

func TestMissionWithExtrinsic(t *testing.T) {
	cfg := extrinsicConfig()
	an, err := obdrel.NewMissionAnalyzer(obdrel.C1(), cfg, []obdrel.Mode{
		{Name: "lo", VDD: 1.0, ActivityScale: 0.5, Fraction: 0.5},
		{Name: "hi", VDD: 1.3, ActivityScale: 1, Fraction: 0.5},
	})
	if err != nil {
		t.Fatal(err)
	}
	// The defect population must still dominate early life.
	intCfg := fastConfig()
	anInt, err := obdrel.NewMissionAnalyzer(obdrel.C1(), intCfg, []obdrel.Mode{
		{Name: "lo", VDD: 1.0, ActivityScale: 0.5, Fraction: 0.5},
		{Name: "hi", VDD: 1.3, ActivityScale: 1, Fraction: 0.5},
	})
	if err != nil {
		t.Fatal(err)
	}
	lExt, err := an.LifetimePPM(10, obdrel.MethodStFast)
	if err != nil {
		t.Fatal(err)
	}
	lInt, err := anInt.LifetimePPM(10, obdrel.MethodStFast)
	if err != nil {
		t.Fatal(err)
	}
	if !(lExt < lInt) {
		t.Errorf("extrinsic mission lifetime %v not below intrinsic %v", lExt, lInt)
	}
}

func TestMissionValidation(t *testing.T) {
	cfg := fastConfig()
	cases := []struct {
		name  string
		modes []obdrel.Mode
	}{
		{"empty", nil},
		{"fractions", []obdrel.Mode{{Name: "a", VDD: 1.2, ActivityScale: 1, Fraction: 0.6}}},
		{"zero vdd", []obdrel.Mode{{Name: "a", VDD: 0, ActivityScale: 1, Fraction: 1}}},
		{"negative scale", []obdrel.Mode{{Name: "a", VDD: 1.2, ActivityScale: -1, Fraction: 1}}},
		{"zero fraction", []obdrel.Mode{
			{Name: "a", VDD: 1.2, ActivityScale: 1, Fraction: 0},
			{Name: "b", VDD: 1.2, ActivityScale: 1, Fraction: 1},
		}},
	}
	for _, c := range cases {
		if _, err := obdrel.NewMissionAnalyzer(obdrel.C1(), cfg, c.modes); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestMissionValidationEdgeCases(t *testing.T) {
	cfg := fastConfig()
	cases := []struct {
		name  string
		modes []obdrel.Mode
	}{
		{"nan vdd", []obdrel.Mode{{Name: "a", VDD: math.NaN(), ActivityScale: 1, Fraction: 1}}},
		{"nan fraction", []obdrel.Mode{{Name: "a", VDD: 1.2, ActivityScale: 1, Fraction: math.NaN()}}},
		{"fractions sum high", []obdrel.Mode{
			{Name: "a", VDD: 1.2, ActivityScale: 1, Fraction: 0.9},
			{Name: "b", VDD: 1.0, ActivityScale: 1, Fraction: 0.6},
		}},
		{"fraction above one", []obdrel.Mode{{Name: "a", VDD: 1.2, ActivityScale: 1, Fraction: 1.5}}},
		{"negative vdd", []obdrel.Mode{{Name: "a", VDD: -1.2, ActivityScale: 1, Fraction: 1}}},
	}
	for _, c := range cases {
		if _, err := obdrel.NewMissionAnalyzer(obdrel.C1(), cfg, c.modes); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestTraceValidation(t *testing.T) {
	seg := func(h, v, a, temp float64) obdrel.Segment {
		return obdrel.Segment{Hours: h, VDD: v, ActivityScale: a, TempC: temp}
	}
	bad := []struct {
		name string
		tr   obdrel.Trace
	}{
		{"empty", nil},
		{"zero hours", obdrel.Trace{seg(0, 1.2, 1, 55)}},
		{"negative hours", obdrel.Trace{seg(-10, 1.2, 1, 55)}},
		{"inf hours", obdrel.Trace{seg(math.Inf(1), 1.2, 1, 55)}},
		{"nan hours", obdrel.Trace{seg(math.NaN(), 1.2, 1, 55)}},
		{"zero vdd", obdrel.Trace{seg(100, 0, 1, 55)}},
		{"nan vdd", obdrel.Trace{seg(100, math.NaN(), 1, 55)}},
		{"inf vdd", obdrel.Trace{seg(100, math.Inf(1), 1, 55)}},
		{"negative activity", obdrel.Trace{seg(100, 1.2, -0.5, 55)}},
		{"nan activity", obdrel.Trace{seg(100, 1.2, math.NaN(), 55)}},
		{"nan temp", obdrel.Trace{seg(100, 1.2, 1, math.NaN())}},
		{"inf temp", obdrel.Trace{seg(100, 1.2, 1, math.Inf(1))}},
		{"temp too hot", obdrel.Trace{seg(100, 1.2, 1, 300)}},
		{"temp too cold", obdrel.Trace{seg(100, 1.2, 1, -150)}},
		{"total hours overflow", obdrel.Trace{seg(1e308, 1.2, 1, 55), seg(1e308, 1.2, 1, 55)}},
		{"second segment bad", obdrel.Trace{seg(100, 1.2, 1, 55), seg(100, -1, 1, 55)}},
	}
	for _, c := range bad {
		if err := c.tr.Validate(); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
		if _, err := obdrel.NewTraceAnalyzer(obdrel.C1(), fastConfig(), c.tr); err == nil {
			t.Errorf("%s: NewTraceAnalyzer accepted an invalid trace", c.name)
		}
	}
	good := []obdrel.Trace{
		{seg(100, 1.2, 1, 0)},   // solved segment: TempC 0 means "solve it"
		{seg(100, 1.2, 0, 55)},  // zero activity is legal (idle)
		{seg(100, 1.2, 1, -40)}, // cold but in range
		{seg(1, 1.0, 1, 55), seg(1, 1.3, 1, 85)},
	}
	for i, tr := range good {
		if err := tr.Validate(); err != nil {
			t.Errorf("good trace %d rejected: %v", i, err)
		}
	}
}

// TestTraceMatchesMission pins the Miner's-rule equivalence: a trace
// whose hour shares equal a mission profile's fractions, with solved
// temperatures, must produce the same lifetime.
func TestTraceMatchesMission(t *testing.T) {
	cfg := fastConfig()
	mission, err := obdrel.NewMissionAnalyzer(obdrel.C1(), cfg, []obdrel.Mode{
		{Name: "lo", VDD: 1.0, ActivityScale: 0.4, Fraction: 0.4},
		{Name: "hi", VDD: 1.3, ActivityScale: 1, Fraction: 0.6},
	})
	if err != nil {
		t.Fatal(err)
	}
	trace, err := obdrel.NewTraceAnalyzer(obdrel.C1(), cfg, obdrel.Trace{
		{Hours: 4000, VDD: 1.0, ActivityScale: 0.4},
		{Hours: 6000, VDD: 1.3, ActivityScale: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	lMission, err := mission.LifetimePPM(10, obdrel.MethodStFast)
	if err != nil {
		t.Fatal(err)
	}
	lTrace, err := trace.LifetimePPM(10, obdrel.MethodStFast)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(lMission, lTrace, 1e-9) {
		t.Errorf("trace lifetime %v differs from equivalent mission %v", lTrace, lMission)
	}
}

// TestTraceMeasuredTemps drives the sensor path: measured segments
// skip the thermal solve, and hotter telemetry must age faster.
func TestTraceMeasuredTemps(t *testing.T) {
	cfg := fastConfig()
	life := func(temp float64) float64 {
		an, err := obdrel.NewTraceAnalyzer(obdrel.C1(), cfg, obdrel.Trace{
			{Hours: 8760, VDD: 1.2, ActivityScale: 1, TempC: temp},
		})
		if err != nil {
			t.Fatal(err)
		}
		l, err := an.LifetimePPM(10, obdrel.MethodStFast)
		if err != nil {
			t.Fatal(err)
		}
		return l
	}
	cool, hot := life(55), life(95)
	if !(hot < cool) {
		t.Fatalf("95°C trace lifetime %v not below 55°C lifetime %v", hot, cool)
	}
	// Mixed measured + solved segments must also work end to end.
	an, err := obdrel.NewTraceAnalyzer(obdrel.C1(), cfg, obdrel.Trace{
		{Hours: 4000, VDD: 1.2, ActivityScale: 1, TempC: 72},
		{Hours: 4000, VDD: 1.2, ActivityScale: 1}, // solved
	})
	if err != nil {
		t.Fatal(err)
	}
	if l, err := an.LifetimePPM(10, obdrel.MethodStFast); err != nil || !(l > 0) {
		t.Fatalf("mixed trace lifetime = %v, %v", l, err)
	}
	nx, ny, temps := an.TemperatureField()
	if nx*ny != len(temps) || len(temps) == 0 {
		t.Fatal("mixed trace must keep a temperature field")
	}
}
