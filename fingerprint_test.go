package obdrel_test

import (
	"math"
	"reflect"
	"strings"
	"testing"

	"obdrel"
	"obdrel/internal/thermal"
)

// TestFingerprintCanonicalization checks that the serving cache key
// identifies configurations by resolved behaviour, not representation.
func TestFingerprintCanonicalization(t *testing.T) {
	base := obdrel.DefaultConfig()

	t.Run("deterministic", func(t *testing.T) {
		if base.Fingerprint() != obdrel.DefaultConfig().Fingerprint() {
			t.Fatal("identical configs produced different fingerprints")
		}
	})
	t.Run("perf knobs excluded", func(t *testing.T) {
		cfg := obdrel.DefaultConfig()
		cfg.Workers = 7
		cfg.DisablePCACache = true
		cfg.DisableStageCache = true
		cfg.TableDir = "/tmp/tables"
		if cfg.Fingerprint() != base.Fingerprint() {
			t.Fatal("Workers/DisablePCACache/DisableStageCache/TableDir changed the fingerprint")
		}
	})
	t.Run("defaults resolved", func(t *testing.T) {
		cfg := obdrel.DefaultConfig()
		cfg.PCAKeepFraction = 0 // resolves to 1
		if cfg.Fingerprint() != base.Fingerprint() {
			t.Fatal("zero PCAKeepFraction should collide with the explicit default 1")
		}
	})
	t.Run("model knobs included", func(t *testing.T) {
		distinct := map[string]string{"base": base.Fingerprint()}
		mutations := map[string]func(*obdrel.Config){
			"vdd":   func(c *obdrel.Config) { c.VDD = 1.1 },
			"grid":  func(c *obdrel.Config) { c.GridNx = 16 },
			"seed":  func(c *obdrel.Config) { c.Seed = 2 },
			"rho":   func(c *obdrel.Config) { c.RhoDist = 0.3 },
			"maxT":  func(c *obdrel.Config) { c.UseBlockMaxTemp = false },
			"mc":    func(c *obdrel.Config) { c.MCSamples = 77 },
			"quadT": func(c *obdrel.Config) { c.QuadTree = true },
			"solver": func(c *obdrel.Config) {
				s := thermal.DefaultSolver()
				s.Method = thermal.MethodSOR
				c.Thermal = s
			},
		}
		for name, mutate := range mutations {
			cfg := obdrel.DefaultConfig()
			mutate(cfg)
			fp := cfg.Fingerprint()
			if prev, ok := distinct[name]; ok && prev == fp {
				t.Fatalf("mutation %q did not change the fingerprint", name)
			}
			for other, otherFP := range distinct {
				if otherFP == fp {
					t.Fatalf("mutations %q and %q collided", name, other)
				}
			}
			distinct[name] = fp
		}
	})
	t.Run("thermal method defaults resolved", func(t *testing.T) {
		cfg := obdrel.DefaultConfig()
		cfg.Thermal = thermal.DefaultSolver()
		cfg.Thermal.Method = thermal.MethodMultigrid // the documented default
		if cfg.Fingerprint() != base.Fingerprint() {
			t.Fatal("explicit multigrid should collide with the empty-method default")
		}
	})
	t.Run("quadtree defaults resolved", func(t *testing.T) {
		a := obdrel.DefaultConfig()
		a.QuadTree = true
		b := obdrel.DefaultConfig()
		b.QuadTree = true
		b.QuadTreeLevels, b.QuadTreeDecay = 3, 0.5 // the documented defaults
		if a.Fingerprint() != b.Fingerprint() {
			t.Fatal("implicit and explicit quad-tree defaults should collide")
		}
	})
}

func TestDesignFingerprint(t *testing.T) {
	if obdrel.C1().Fingerprint() != obdrel.C1().Fingerprint() {
		t.Fatal("design fingerprint not deterministic")
	}
	if obdrel.C1().Fingerprint() == obdrel.C2().Fingerprint() {
		t.Fatal("distinct designs collided")
	}
	tweaked := obdrel.C1()
	tweaked.Blocks[0].Devices++
	if tweaked.Fingerprint() == obdrel.C1().Fingerprint() {
		t.Fatal("same-name designs with different contents collided")
	}
}

func TestCacheKey(t *testing.T) {
	k := obdrel.CacheKey(obdrel.C1(), nil)
	if k != obdrel.CacheKey(obdrel.C1(), obdrel.DefaultConfig()) {
		t.Fatal("nil config must key like DefaultConfig (NewAnalyzer semantics)")
	}
	if k == obdrel.CacheKey(obdrel.C2(), nil) {
		t.Fatal("designs not separated in cache key")
	}
}

// TestConfigValidateRejectsGarbage pins the untrusted-input hardening:
// non-finite or out-of-range knobs must fail Validate with a
// descriptive error, never reach the engines as NaN.
func TestConfigValidateRejectsGarbage(t *testing.T) {
	cases := map[string]func(*obdrel.Config){
		"nan vdd":           func(c *obdrel.Config) { c.VDD = math.NaN() },
		"inf vdd":           func(c *obdrel.Config) { c.VDD = math.Inf(1) },
		"zero vdd":          func(c *obdrel.Config) { c.VDD = 0 },
		"negative vdd":      func(c *obdrel.Config) { c.VDD = -1.2 },
		"nan sigma":         func(c *obdrel.Config) { c.SigmaRatio = math.NaN() },
		"nan fraction":      func(c *obdrel.Config) { c.FracSpatial = math.NaN() },
		"negative fraction": func(c *obdrel.Config) { c.FracGlobal = -0.5 },
		"zero grid":         func(c *obdrel.Config) { c.GridNx = 0 },
		"negative grid":     func(c *obdrel.Config) { c.GridNy = -8 },
		"nan rho":           func(c *obdrel.Config) { c.RhoDist = math.NaN() },
		"inf rho":           func(c *obdrel.Config) { c.RhoDist = math.Inf(1) },
		"negative qt":       func(c *obdrel.Config) { c.QuadTreeLevels = -1 },
		"nan qt decay":      func(c *obdrel.Config) { c.QuadTreeDecay = math.NaN() },
		"pca keep > 1":      func(c *obdrel.Config) { c.PCAKeepFraction = 1.5 },
		"nan pca keep":      func(c *obdrel.Config) { c.PCAKeepFraction = math.NaN() },
		"negative l0":       func(c *obdrel.Config) { c.L0 = -1 },
		"negative stmc":     func(c *obdrel.Config) { c.StMCSamples = -5 },
		"negative mc":       func(c *obdrel.Config) { c.MCSamples = -5 },
		"negative hybrid":   func(c *obdrel.Config) { c.HybridNL = -2 },
		"nan guard":         func(c *obdrel.Config) { c.GuardSigmas = math.NaN() },
		"inf guard":         func(c *obdrel.Config) { c.GuardSigmas = math.Inf(1) },
		"negative workers":  func(c *obdrel.Config) { c.Workers = -1 },
	}
	for name, mutate := range cases {
		t.Run(name, func(t *testing.T) {
			cfg := obdrel.DefaultConfig()
			mutate(cfg)
			err := cfg.Validate()
			if err == nil {
				t.Fatal("garbage config validated")
			}
			if !strings.Contains(err.Error(), "obdrel:") {
				t.Fatalf("error %q lacks package context", err)
			}
			if _, aerr := obdrel.NewAnalyzer(obdrel.C1(), cfg); aerr == nil {
				t.Fatal("NewAnalyzer accepted a config Validate rejects")
			}
		})
	}
}

// TestQueryInputValidation pins the per-query hardening on an already
// valid analyzer.
func TestQueryInputValidation(t *testing.T) {
	an, err := obdrel.NewAnalyzer(obdrel.C1(), fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := an.LifetimePPM(0, obdrel.MethodStFast); err == nil {
		t.Error("ppm 0 accepted")
	}
	if _, err := an.LifetimePPM(math.NaN(), obdrel.MethodStFast); err == nil {
		t.Error("NaN ppm accepted")
	}
	if _, err := an.LifetimePPM(1e6, obdrel.MethodStFast); err == nil {
		t.Error("ppm ≥ 1e6 accepted (unreachable failure probability)")
	}
	if _, err := an.FailureProb(math.NaN(), obdrel.MethodStFast); err == nil {
		t.Error("NaN time accepted")
	}
	if _, err := an.FailureProb(math.Inf(1), obdrel.MethodHybrid); err == nil {
		t.Error("Inf time accepted")
	}
	if _, err := an.FailureContributions(math.NaN()); err == nil {
		t.Error("NaN contribution time accepted")
	}
	if _, err := obdrel.MaxVDD(obdrel.C1(), fastConfig(), obdrel.MethodStFast, 10, math.Inf(1), 1.0, 1.2, 0.05); err == nil {
		t.Error("Inf target hours accepted")
	}
}

// TestTraceFingerprint pins the trace fingerprint's sensitivity to
// every Segment field, plus segment order and count — any field added
// to Segment without extending Fingerprint would silently alias cache
// entries, so a reflection guard counts the fields.
func TestTraceFingerprint(t *testing.T) {
	base := obdrel.Trace{
		{Hours: 4000, VDD: 1.0, ActivityScale: 0.5, TempC: 55},
		{Hours: 3000, VDD: 1.2, ActivityScale: 1, TempC: 0},
	}
	if base.Fingerprint() != append(obdrel.Trace(nil), base...).Fingerprint() {
		t.Fatal("identical traces produced different fingerprints")
	}
	mutations := map[string]func(tr obdrel.Trace){
		"hours":    func(tr obdrel.Trace) { tr[0].Hours = 4001 },
		"vdd":      func(tr obdrel.Trace) { tr[0].VDD = 1.05 },
		"activity": func(tr obdrel.Trace) { tr[0].ActivityScale = 0.6 },
		"temp":     func(tr obdrel.Trace) { tr[0].TempC = 56 },
	}
	if got := reflect.TypeOf(obdrel.Segment{}).NumField(); got != len(mutations) {
		t.Fatalf("Segment has %d fields but the fingerprint test mutates %d — "+
			"extend Trace.Fingerprint and this test for the new field", got, len(mutations))
	}
	seen := map[string]string{"base": base.Fingerprint()}
	for name, mutate := range mutations {
		tr := append(obdrel.Trace(nil), base...)
		mutate(tr)
		fp := tr.Fingerprint()
		for prev, prevFP := range seen {
			if fp == prevFP {
				t.Fatalf("mutation %q collides with %q", name, prev)
			}
		}
		seen[name] = fp
	}
	// Order and length sensitivity.
	swapped := obdrel.Trace{base[1], base[0]}
	if swapped.Fingerprint() == base.Fingerprint() {
		t.Fatal("segment order does not affect the fingerprint")
	}
	if base[:1].Fingerprint() == base.Fingerprint() {
		t.Fatal("segment count does not affect the fingerprint")
	}
}

// TestTraceCacheKey checks the composed registry key: design, config,
// and trace each contribute independently.
func TestTraceCacheKey(t *testing.T) {
	cfg := obdrel.DefaultConfig()
	tr := obdrel.Trace{{Hours: 100, VDD: 1.2, ActivityScale: 1, TempC: 55}}
	key := obdrel.TraceCacheKey(obdrel.C1(), cfg, tr)
	if !strings.HasPrefix(key, obdrel.CacheKey(obdrel.C1(), cfg)+":") {
		t.Fatal("trace cache key should extend the unary cache key")
	}
	if !strings.HasSuffix(key, tr.Fingerprint()) {
		t.Fatal("trace cache key should end with the trace fingerprint")
	}
	other := obdrel.Trace{{Hours: 200, VDD: 1.2, ActivityScale: 1, TempC: 55}}
	if obdrel.TraceCacheKey(obdrel.C1(), cfg, other) == key {
		t.Fatal("different traces share a cache key")
	}
	if obdrel.TraceCacheKey(obdrel.C2(), cfg, tr) == key {
		t.Fatal("different designs share a trace cache key")
	}
}
