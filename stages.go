package obdrel

import (
	"context"
	"fmt"

	"obdrel/internal/blod"
	"obdrel/internal/core"
	"obdrel/internal/floorplan"
	"obdrel/internal/grid"
	"obdrel/internal/obd"
	"obdrel/internal/obs"
	"obdrel/internal/pipeline"
	"obdrel/internal/power"
	"obdrel/internal/thermal"
)

// The stage names of the analysis graph, in dependency order. Each
// stage produces one immutable artifact, cached under a fingerprint
// of only the inputs it depends on (see fingerprint.go for the
// canonical segments and DESIGN.md §9 for the dependency table):
//
//	floorplan ──┬─────────────► thermal ──► weibull ──┐
//	            │  powermap ──────┘                    ├─► chip
//	            └─► covariance ─┬─► blod ──────────────┘
//	                            └─► pca   (sampling engines only)
const (
	StageFloorplan  = "floorplan"
	StagePowerMap   = "powermap"
	StageThermal    = "thermal"
	StageCovariance = "covariance"
	StagePCA        = "pca"
	StageBLOD       = "blod"
	StageWeibull    = "weibull"
	StageChip       = "chip"
)

// StageNames lists the analysis stages in dependency order.
func StageNames() []string {
	return []string{
		StageFloorplan, StagePowerMap, StageThermal, StageCovariance,
		StagePCA, StageBLOD, StageWeibull, StageChip,
	}
}

// sharedStages is the process-wide stage-artifact cache used by
// NewAnalyzer (unless Config.DisableStageCache) and by the serving
// layer. Every artifact is immutable after its build, so sharing
// across analyzers is safe; 64 entries per stage comfortably covers a
// MaxVDD bisection's probe set plus a table sweep.
var sharedStages = pipeline.NewCache(64)

// Stages returns the process-wide stage cache — for observability
// (Snapshot on /metrics and cmd/bench) and capacity tuning by daemons.
func Stages() *pipeline.Cache { return sharedStages }

// StageFingerprints returns the cache key of every analysis stage for
// a (design, config) pair. Keys are canonical: two configs that
// resolve to the same stage inputs share the stage's key, and a knob
// perturbs exactly the keys of the stages depending on it. A nil
// config selects DefaultConfig, matching NewAnalyzer.
func StageFingerprints(d *Design, cfg *Config) map[string]string {
	if cfg == nil {
		cfg = DefaultConfig()
	}
	return stageKeys(d.Fingerprint(), d.W, d.H, cfg)
}

// stageKeys computes all stage cache keys from the design fingerprint
// and die geometry — everything a stage consumes from the design half.
func stageKeys(dfp string, dieW, dieH float64, cfg *Config) map[string]string {
	ks := map[string]string{
		StageFloorplan:  fp16(StageFloorplan, dfp),
		StagePowerMap:   fp16(StagePowerMap, cfg.segPower()),
		StageThermal:    fp16(StageThermal, dfp, cfg.segPower(), cfg.segThermal()),
		StageCovariance: fp16(StageCovariance, cfg.segCovariance(dieW, dieH)),
		StagePCA:        fp16(StagePCA, cfg.segPCA(dieW, dieH)),
		StageBLOD:       fp16(StageBLOD, dfp, cfg.segCovariance(dieW, dieH)),
		StageWeibull:    fp16(StageWeibull, dfp, cfg.segPower(), cfg.segThermal(), cfg.segWeibull()),
	}
	ks[StageChip] = fp16(StageChip, ks[StageBLOD], ks[StageWeibull])
	return ks
}

// weibullArtifact is the weibull stage's output: the per-block device
// Weibull parameters α(T,V)/b(T,V) at each block's operating point,
// the optional extrinsic-population parameters, and the operating
// points themselves for reporting.
type weibullArtifact struct {
	params []obd.Params
	ext    []obd.ExtrinsicParams
	info   []BlockInfo
}

// stageGraph resolves one analyzer construction through the stage
// cache. It carries the resolved config components and the
// precomputed stage keys; artifacts flow through return values so a
// build never reaches around the cache.
type stageGraph struct {
	cache *pipeline.Cache
	d     *Design
	cfg   *Config
	tech  *obd.Tech
	pm    *power.Model
	ts    *thermal.Solver
	keys  map[string]string
}

// stageGet adapts pipeline.Get to the graph's needs: typed artifact
// out, cache-result bookkeeping dropped (the cache keeps its own
// stats).
func stageGet[O any](ctx context.Context, c *pipeline.Cache, stage, key string, build func(context.Context) (O, error)) (O, error) {
	v, _, err := pipeline.Get(ctx, c, stage, key, build)
	return v, err
}

func (g *stageGraph) floorplan(ctx context.Context) (*floorplan.Design, error) {
	return stageGet(ctx, g.cache, StageFloorplan, g.keys[StageFloorplan],
		func(context.Context) (*floorplan.Design, error) {
			return g.d.internal()
		})
}

func (g *stageGraph) powermap(ctx context.Context) (*power.Model, error) {
	return stageGet(ctx, g.cache, StagePowerMap, g.keys[StagePowerMap],
		func(context.Context) (*power.Model, error) {
			if err := g.pm.Validate(); err != nil {
				return nil, err
			}
			return g.pm, nil
		})
}

func (g *stageGraph) thermal(ctx context.Context, fd *floorplan.Design, pm *power.Model) (*thermal.CoupledResult, error) {
	return stageGet(ctx, g.cache, StageThermal, g.keys[StageThermal],
		func(bctx context.Context) (*thermal.CoupledResult, error) {
			ts := g.ts
			if ts.Workers == 0 && g.cfg.Workers != 0 {
				// Propagate the config's worker knob without mutating
				// a caller-owned solver.
				tsCopy := *ts
				tsCopy.Workers = g.cfg.Workers
				ts = &tsCopy
			}
			veff := g.cfg.thermalVDD()
			coupled, err := ts.SolveCoupledCtx(bctx, fd, func(temps []float64) ([]float64, error) {
				return pm.DesignPowers(fd, veff, temps)
			}, 0, 0)
			if err != nil {
				return nil, fmt.Errorf("obdrel: thermal analysis: %w", err)
			}
			return coupled, nil
		})
}

func (g *stageGraph) covariance(ctx context.Context) (*grid.Model, error) {
	return stageGet(ctx, g.cache, StageCovariance, g.keys[StageCovariance],
		func(context.Context) (*grid.Model, error) {
			return g.cfg.variationModel(g.d.W, g.d.H)
		})
}

func (g *stageGraph) pca(ctx context.Context, model *grid.Model) (*grid.PCA, error) {
	return stageGet(ctx, g.cache, StagePCA, g.keys[StagePCA],
		func(bctx context.Context) (*grid.PCA, error) {
			keep := g.cfg.resolvedKeep()
			// Build-only annotations: this closure runs once per cache
			// miss, so boxing the values is off the hot path.
			obs.Annotate(bctx, "keep", keep)
			if g.cfg.DisablePCACache {
				return model.ComputePCACtx(bctx, keep, g.cfg.Workers)
			}
			return grid.SharedPCACache.GetCtx(bctx, model, keep, g.cfg.Workers)
		})
}

func (g *stageGraph) blod(ctx context.Context, fd *floorplan.Design, model *grid.Model) (*blod.Characterization, error) {
	return stageGet(ctx, g.cache, StageBLOD, g.keys[StageBLOD],
		func(bctx context.Context) (*blod.Characterization, error) {
			obs.Annotate(bctx, "blocks", len(fd.Blocks))
			return blod.CharacterizeCtx(bctx, fd, model)
		})
}

func (g *stageGraph) weibull(ctx context.Context, fd *floorplan.Design, coupled *thermal.CoupledResult) (*weibullArtifact, error) {
	return stageGet(ctx, g.cache, StageWeibull, g.keys[StageWeibull],
		func(bctx context.Context) (*weibullArtifact, error) {
			obs.Annotate(bctx, "blocks", len(fd.Blocks))
			obs.Annotate(bctx, "vdd_v", g.cfg.VDD)
			blockTemp := func(i int) float64 {
				if g.cfg.UseBlockMaxTemp {
					return coupled.BlockMax[i]
				}
				return coupled.BlockMean[i]
			}
			w := &weibullArtifact{
				params: make([]obd.Params, len(fd.Blocks)),
				info:   make([]BlockInfo, len(fd.Blocks)),
			}
			for i := range fd.Blocks {
				if err := bctx.Err(); err != nil {
					return nil, err
				}
				p, err := g.tech.Characterize(blockTemp(i), g.cfg.VDD)
				if err != nil {
					return nil, fmt.Errorf("obdrel: block %q: %w", fd.Blocks[i].Name, err)
				}
				w.params[i] = p
				w.info[i] = BlockInfo{
					Name:      fd.Blocks[i].Name,
					MeanTempC: coupled.BlockMean[i],
					MaxTempC:  coupled.BlockMax[i],
					PowerW:    coupled.Powers[i],
					Alpha:     p.Alpha,
					B:         p.B,
					Devices:   fd.Blocks[i].Devices,
				}
			}
			if g.cfg.Extrinsic != nil {
				w.ext = make([]obd.ExtrinsicParams, len(fd.Blocks))
				for i := range fd.Blocks {
					ep, err := g.tech.CharacterizeExtrinsic(g.cfg.Extrinsic, blockTemp(i), g.cfg.VDD)
					if err != nil {
						return nil, fmt.Errorf("obdrel: block %q extrinsic: %w", fd.Blocks[i].Name, err)
					}
					w.ext[i] = ep
				}
			}
			return w, nil
		})
}

func (g *stageGraph) chip(ctx context.Context, fd *floorplan.Design, model *grid.Model, char *blod.Characterization, w *weibullArtifact) (*core.Chip, error) {
	return stageGet(ctx, g.cache, StageChip, g.keys[StageChip],
		func(context.Context) (*core.Chip, error) {
			chip, err := core.NewChip(fd, model, char, w.params)
			if err != nil {
				return nil, err
			}
			if w.ext != nil {
				// SetExtrinsic mutates the chip; it happens only here,
				// before the artifact enters the cache, so every
				// cached chip is immutable to its consumers.
				if err := chip.SetExtrinsic(w.ext); err != nil {
					return nil, err
				}
			}
			return chip, nil
		})
}

// newAnalyzerWith runs the full stage graph against an explicit cache
// (nil disables caching entirely — every stage builds inline under
// ctx, the exact legacy code path). Stages resolve in the same order,
// with the same validation sequence and error wrapping, as the
// pre-stage-graph monolithic constructor.
func newAnalyzerWith(ctx context.Context, cache *pipeline.Cache, d *Design, cfg *Config) (*Analyzer, error) {
	if cfg == nil {
		cfg = DefaultConfig()
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if d == nil {
		return nil, errNilDesign
	}
	g := &stageGraph{
		cache: cache,
		d:     d,
		cfg:   cfg,
		tech:  cfg.resolvedTech(),
		pm:    cfg.resolvedPower(),
		ts:    cfg.resolvedThermal(),
		keys:  stageKeys(d.Fingerprint(), d.W, d.H, cfg),
	}
	fd, err := g.floorplan(ctx)
	if err != nil {
		return nil, err
	}
	if err := g.tech.Validate(); err != nil {
		return nil, err
	}
	pm, err := g.powermap(ctx)
	if err != nil {
		return nil, err
	}
	coupled, err := g.thermal(ctx, fd, pm)
	if err != nil {
		return nil, err
	}
	model, err := g.covariance(ctx)
	if err != nil {
		return nil, err
	}
	pca, err := g.pca(ctx, model)
	if err != nil {
		return nil, err
	}
	char, err := g.blod(ctx, fd, model)
	if err != nil {
		return nil, err
	}
	w, err := g.weibull(ctx, fd, coupled)
	if err != nil {
		return nil, err
	}
	chip, err := g.chip(ctx, fd, model, char, w)
	if err != nil {
		return nil, err
	}
	return &Analyzer{
		cfg:       cfg,
		design:    fd,
		model:     model,
		pca:       pca,
		chip:      chip,
		tech:      g.tech,
		blockInfo: w.info,
		field:     coupled.Field,
		chipKey:   g.keys[StageChip],
		engines:   make(map[Method]core.Engine),
	}, nil
}
