// Package linalg provides the small dense linear-algebra kernel the
// reliability analysis needs: symmetric matrices, Cholesky
// factorization, and symmetric eigendecomposition (Householder
// tridiagonalization followed by implicit-shift QL, with a cyclic
// Jacobi fallback used for cross-checking).
//
// The package is deliberately minimal — the spatial-correlation PCA
// operates on covariance matrices of at most a few hundred rows, so a
// straightforward dense implementation is both sufficient and easy to
// verify.
package linalg

import (
	"errors"
	"fmt"
	"math"

	"obdrel/internal/par"
)

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// NewMatrix returns a zero r×c matrix.
func NewMatrix(r, c int) *Matrix {
	if r <= 0 || c <= 0 {
		panic(fmt.Sprintf("linalg: invalid dimensions %d×%d", r, c))
	}
	return &Matrix{Rows: r, Cols: c, Data: make([]float64, r*c)}
}

// NewMatrixFrom builds an r×c matrix from row-major data. The slice is
// copied.
func NewMatrixFrom(r, c int, data []float64) *Matrix {
	if len(data) != r*c {
		panic(fmt.Sprintf("linalg: data length %d does not match %d×%d", len(data), r, c))
	}
	m := NewMatrix(r, c)
	copy(m.Data, data)
	return m
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns a view of row i (not a copy).
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	return NewMatrixFrom(m.Rows, m.Cols, m.Data)
}

// Transpose returns mᵀ as a new matrix.
func (m *Matrix) Transpose() *Matrix {
	t := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			t.Set(j, i, m.At(i, j))
		}
	}
	return t
}

// Mul returns m · b as a new matrix.
func (m *Matrix) Mul(b *Matrix) *Matrix {
	return m.MulWorkers(b, 1)
}

// MulWorkers returns m · b with the output rows fanned out over
// workers (0 = GOMAXPROCS, 1 = serial). Each output row is computed
// independently in a fixed order, so the product is bit-identical for
// every worker count.
func (m *Matrix) MulWorkers(b *Matrix, workers int) *Matrix {
	if m.Cols != b.Rows {
		panic(fmt.Sprintf("linalg: Mul dimension mismatch %d×%d · %d×%d", m.Rows, m.Cols, b.Rows, b.Cols))
	}
	out := NewMatrix(m.Rows, b.Cols)
	par.For(workers, m.Rows, func(i int) {
		mi := m.Row(i)
		oi := out.Row(i)
		for k := 0; k < m.Cols; k++ {
			a := mi[k]
			if a == 0 {
				continue
			}
			bk := b.Row(k)
			for j := range oi {
				oi[j] += a * bk[j]
			}
		}
	})
	return out
}

// MulVec returns m · v as a new slice.
func (m *Matrix) MulVec(v []float64) []float64 {
	out := make([]float64, m.Rows)
	m.MulVecInto(out, v)
	return out
}

// MulVecInto computes m · v into dst (len m.Rows), avoiding the
// allocation of MulVec on hot paths.
func (m *Matrix) MulVecInto(dst, v []float64) {
	if m.Cols != len(v) {
		panic(fmt.Sprintf("linalg: MulVec dimension mismatch %d×%d · %d", m.Rows, m.Cols, len(v)))
	}
	if len(dst) != m.Rows {
		panic(fmt.Sprintf("linalg: MulVecInto dst length %d for %d rows", len(dst), m.Rows))
	}
	for i := range dst {
		ri := m.Row(i)
		s := 0.0
		for j, x := range v {
			s += ri[j] * x
		}
		dst[i] = s
	}
}

// MulVecWorkers returns m · v with the row dot products fanned out
// over workers (0 = GOMAXPROCS, 1 = serial). Every row is an
// independent left-to-right dot product, so the result is
// bit-identical to MulVec for every worker count.
func (m *Matrix) MulVecWorkers(v []float64, workers int) []float64 {
	if m.Cols != len(v) {
		panic(fmt.Sprintf("linalg: MulVec dimension mismatch %d×%d · %d", m.Rows, m.Cols, len(v)))
	}
	out := make([]float64, m.Rows)
	par.ForChunks(workers, m.Rows, 64, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			ri := m.Row(i)
			s := 0.0
			for j, x := range v {
				s += ri[j] * x
			}
			out[i] = s
		}
	})
	return out
}

// IsSymmetric reports whether m is square and symmetric to within tol.
func (m *Matrix) IsSymmetric(tol float64) bool {
	if m.Rows != m.Cols {
		return false
	}
	for i := 0; i < m.Rows; i++ {
		for j := i + 1; j < m.Cols; j++ {
			if math.Abs(m.At(i, j)-m.At(j, i)) > tol {
				return false
			}
		}
	}
	return true
}

// MaxAbsDiff returns the largest absolute element-wise difference
// between m and b, useful in tests.
func (m *Matrix) MaxAbsDiff(b *Matrix) float64 {
	if m.Rows != b.Rows || m.Cols != b.Cols {
		return math.Inf(1)
	}
	max := 0.0
	for i, v := range m.Data {
		if d := math.Abs(v - b.Data[i]); d > max {
			max = d
		}
	}
	return max
}

// ErrNotPositiveDefinite reports a Cholesky failure.
var ErrNotPositiveDefinite = errors.New("linalg: matrix is not positive definite")

// Cholesky computes the lower-triangular L with L·Lᵀ = a for a
// symmetric positive-definite a. The strictly upper triangle of the
// result is zero. jitter, if positive, is added to the diagonal before
// factorization, which regularizes covariance matrices that are
// positive semi-definite up to rounding.
func Cholesky(a *Matrix, jitter float64) (*Matrix, error) {
	if a.Rows != a.Cols {
		return nil, errors.New("linalg: Cholesky requires a square matrix")
	}
	n := a.Rows
	l := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			sum := a.At(i, j)
			if i == j {
				sum += jitter
			}
			li, lj := l.Row(i), l.Row(j)
			for k := 0; k < j; k++ {
				sum -= li[k] * lj[k]
			}
			if i == j {
				if sum <= 0 {
					return nil, ErrNotPositiveDefinite
				}
				li[j] = math.Sqrt(sum)
			} else {
				li[j] = sum / lj[j]
			}
		}
	}
	return l, nil
}
