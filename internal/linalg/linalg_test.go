package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// randomSPD builds a random symmetric positive-definite matrix
// A = MᵀM + n·I.
func randomSPD(n int, rng *rand.Rand) *Matrix {
	m := NewMatrix(n, n)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	a := m.Transpose().Mul(m)
	for i := 0; i < n; i++ {
		a.Set(i, i, a.At(i, i)+float64(n))
	}
	return a
}

func TestMatrixBasics(t *testing.T) {
	m := NewMatrixFrom(2, 3, []float64{1, 2, 3, 4, 5, 6})
	if m.At(1, 2) != 6 {
		t.Errorf("At(1,2) = %v", m.At(1, 2))
	}
	m.Set(0, 0, 9)
	if m.At(0, 0) != 9 {
		t.Error("Set failed")
	}
	tr := m.Transpose()
	if tr.Rows != 3 || tr.Cols != 2 || tr.At(2, 1) != 6 {
		t.Errorf("Transpose wrong: %+v", tr)
	}
	c := m.Clone()
	c.Set(0, 0, -1)
	if m.At(0, 0) != 9 {
		t.Error("Clone is not deep")
	}
}

func TestMatrixPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s should panic", name)
			}
		}()
		f()
	}
	mustPanic("NewMatrix(0,1)", func() { NewMatrix(0, 1) })
	mustPanic("NewMatrixFrom short", func() { NewMatrixFrom(2, 2, []float64{1}) })
	mustPanic("Mul mismatch", func() {
		NewMatrix(2, 3).Mul(NewMatrix(2, 3))
	})
	mustPanic("MulVec mismatch", func() {
		NewMatrix(2, 3).MulVec([]float64{1})
	})
}

func TestMulAgainstHand(t *testing.T) {
	a := NewMatrixFrom(2, 2, []float64{1, 2, 3, 4})
	b := NewMatrixFrom(2, 2, []float64{5, 6, 7, 8})
	got := a.Mul(b)
	want := NewMatrixFrom(2, 2, []float64{19, 22, 43, 50})
	if got.MaxAbsDiff(want) > 1e-15 {
		t.Errorf("Mul = %+v", got)
	}
}

func TestMulVec(t *testing.T) {
	a := NewMatrixFrom(2, 3, []float64{1, 2, 3, 4, 5, 6})
	got := a.MulVec([]float64{1, 0, -1})
	if got[0] != -2 || got[1] != -2 {
		t.Errorf("MulVec = %v", got)
	}
}

func TestCholeskyReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 2, 5, 20, 60} {
		a := randomSPD(n, rng)
		l, err := Cholesky(a, 0)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		rec := l.Mul(l.Transpose())
		if d := rec.MaxAbsDiff(a); d > 1e-8*float64(n) {
			t.Errorf("n=%d: reconstruction error %v", n, d)
		}
		// Strictly upper triangle must be zero.
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if l.At(i, j) != 0 {
					t.Fatalf("n=%d: upper triangle not zero at (%d,%d)", n, i, j)
				}
			}
		}
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	a := NewMatrixFrom(2, 2, []float64{1, 2, 2, 1}) // eigenvalues 3, -1
	if _, err := Cholesky(a, 0); err != ErrNotPositiveDefinite {
		t.Errorf("expected ErrNotPositiveDefinite, got %v", err)
	}
	if _, err := Cholesky(NewMatrix(2, 3), 0); err == nil {
		t.Error("non-square should error")
	}
}

func TestCholeskyJitterRescuesSemiDefinite(t *testing.T) {
	// Rank-1 PSD matrix; plain Cholesky fails, jitter succeeds.
	a := NewMatrixFrom(2, 2, []float64{1, 1, 1, 1})
	if _, err := Cholesky(a, 0); err == nil {
		t.Fatal("rank-1 matrix should fail without jitter")
	}
	if _, err := Cholesky(a, 1e-10); err != nil {
		t.Fatalf("jittered factorization failed: %v", err)
	}
}

func checkEigen(t *testing.T, a *Matrix, vals []float64, vecs *Matrix, tol float64) {
	t.Helper()
	n := a.Rows
	// A·v_k = λ_k v_k for every eigenpair.
	for k := 0; k < n; k++ {
		v := make([]float64, n)
		for i := 0; i < n; i++ {
			v[i] = vecs.At(i, k)
		}
		av := a.MulVec(v)
		for i := 0; i < n; i++ {
			if math.Abs(av[i]-vals[k]*v[i]) > tol {
				t.Fatalf("eigenpair %d violates A·v=λv: residual %v", k, av[i]-vals[k]*v[i])
			}
		}
	}
	// Orthonormality VᵀV = I.
	vtv := vecs.Transpose().Mul(vecs)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if math.Abs(vtv.At(i, j)-want) > tol {
				t.Fatalf("VᵀV[%d,%d] = %v", i, j, vtv.At(i, j))
			}
		}
	}
	// Descending order.
	for k := 1; k < n; k++ {
		if vals[k] > vals[k-1]+tol {
			t.Fatalf("eigenvalues not descending: %v", vals)
		}
	}
}

func TestEigenSymKnown2x2(t *testing.T) {
	a := NewMatrixFrom(2, 2, []float64{2, 1, 1, 2})
	vals, vecs, err := EigenSym(a)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(vals[0]-3) > 1e-12 || math.Abs(vals[1]-1) > 1e-12 {
		t.Errorf("eigenvalues = %v, want [3 1]", vals)
	}
	checkEigen(t, a, vals, vecs, 1e-10)
}

func TestEigenSymRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{1, 2, 3, 10, 40, 100} {
		a := randomSPD(n, rng)
		vals, vecs, err := EigenSym(a)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		checkEigen(t, a, vals, vecs, 1e-7*float64(n))
	}
}

func TestEigenSymDiagonal(t *testing.T) {
	a := NewMatrixFrom(3, 3, []float64{5, 0, 0, 0, -2, 0, 0, 0, 1})
	vals, vecs, err := EigenSym(a)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{5, 1, -2}
	for i := range want {
		if math.Abs(vals[i]-want[i]) > 1e-12 {
			t.Errorf("vals = %v, want %v", vals, want)
		}
	}
	checkEigen(t, a, vals, vecs, 1e-12)
}

func TestEigenSymRejectsAsymmetric(t *testing.T) {
	a := NewMatrixFrom(2, 2, []float64{1, 5, 0, 1})
	if _, _, err := EigenSym(a); err == nil {
		t.Error("asymmetric matrix should error")
	}
	if _, _, err := EigenSym(NewMatrix(2, 3)); err == nil {
		t.Error("non-square matrix should error")
	}
}

func TestJacobiMatchesQL(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{2, 5, 15} {
		a := randomSPD(n, rng)
		v1, _, err := EigenSym(a)
		if err != nil {
			t.Fatal(err)
		}
		v2, vecs2, err := JacobiEigenSym(a, 50)
		if err != nil {
			t.Fatal(err)
		}
		for i := range v1 {
			if math.Abs(v1[i]-v2[i]) > 1e-8*(1+math.Abs(v1[i])) {
				t.Errorf("n=%d eigenvalue %d: QL %v vs Jacobi %v", n, i, v1[i], v2[i])
			}
		}
		checkEigen(t, a, v2, vecs2, 1e-8*float64(n))
	}
}

// TestEigenTraceProperty checks trace(A) = Σλ and trace(A²) = Σλ² on
// random symmetric (not necessarily definite) matrices.
func TestEigenTraceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(10)
		a := NewMatrix(n, n)
		for i := 0; i < n; i++ {
			for j := i; j < n; j++ {
				x := rng.NormFloat64()
				a.Set(i, j, x)
				a.Set(j, i, x)
			}
		}
		vals, _, err := EigenSym(a)
		if err != nil {
			return false
		}
		tr, tr2 := 0.0, 0.0
		for i := 0; i < n; i++ {
			tr += a.At(i, i)
			for j := 0; j < n; j++ {
				tr2 += a.At(i, j) * a.At(j, i)
			}
		}
		s, s2 := 0.0, 0.0
		for _, l := range vals {
			s += l
			s2 += l * l
		}
		return math.Abs(tr-s) < 1e-9*float64(n) && math.Abs(tr2-s2) < 1e-8*float64(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func BenchmarkEigenSym100(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	a := randomSPD(100, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := EigenSym(a); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCholesky100(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	a := randomSPD(100, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Cholesky(a, 0); err != nil {
			b.Fatal(err)
		}
	}
}
