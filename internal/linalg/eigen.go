package linalg

import (
	"context"
	"errors"
	"math"
	"sort"
)

// EigenSym computes the eigendecomposition of a symmetric matrix a:
// a = V · diag(values) · Vᵀ with orthonormal columns in V. Eigenvalues
// are returned in descending order. The input is not modified.
//
// The implementation is the classical Householder tridiagonalization
// (tred2) followed by implicit-shift QL iteration (tql2), the same
// pair EISPACK and Numerical Recipes use; it is O(n³) with a small
// constant and handles the few-hundred-row covariance matrices of the
// spatial-correlation model in well under a second.
func EigenSym(a *Matrix) (values []float64, vectors *Matrix, err error) {
	return EigenSymCtx(context.Background(), a)
}

// EigenSymCtx is EigenSym with cancellation checkpoints on the outer
// Householder and QL loops: once ctx expires the decomposition stops
// and returns ctx's error. Checkpoint granularity is one outer-loop
// row, i.e. O(n²) work between checks.
func EigenSymCtx(ctx context.Context, a *Matrix) (values []float64, vectors *Matrix, err error) {
	if a.Rows != a.Cols {
		return nil, nil, errors.New("linalg: EigenSym requires a square matrix")
	}
	if !a.IsSymmetric(1e-9 * (1 + maxAbs(a))) {
		return nil, nil, errors.New("linalg: EigenSym requires a symmetric matrix")
	}
	n := a.Rows
	v := a.Clone()
	d := make([]float64, n)
	e := make([]float64, n)
	if err := tred2(ctx, v, d, e); err != nil {
		return nil, nil, err
	}
	if err := tql2(ctx, v, d, e); err != nil {
		return nil, nil, err
	}
	// Sort eigenpairs by descending eigenvalue.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(x, y int) bool { return d[idx[x]] > d[idx[y]] })
	values = make([]float64, n)
	vectors = NewMatrix(n, n)
	for newCol, oldCol := range idx {
		values[newCol] = d[oldCol]
		for r := 0; r < n; r++ {
			vectors.Set(r, newCol, v.At(r, oldCol))
		}
	}
	return values, vectors, nil
}

func maxAbs(a *Matrix) float64 {
	m := 0.0
	for _, x := range a.Data {
		if ax := math.Abs(x); ax > m {
			m = ax
		}
	}
	return m
}

// tred2 reduces the symmetric matrix stored in v to tridiagonal form
// by Householder similarity transformations, accumulating the
// transformations in v. On return d holds the diagonal and e the
// subdiagonal (e[0] unused).
func tred2(ctx context.Context, v *Matrix, d, e []float64) error {
	n := v.Rows
	for j := 0; j < n; j++ {
		d[j] = v.At(n-1, j)
	}
	for i := n - 1; i > 0; i-- {
		if err := ctx.Err(); err != nil {
			return err
		}
		scale, h := 0.0, 0.0
		if i > 1 {
			for k := 0; k < i; k++ {
				scale += math.Abs(d[k])
			}
		}
		if scale == 0 {
			e[i] = d[i-1]
			for j := 0; j < i; j++ {
				d[j] = v.At(i-1, j)
				v.Set(i, j, 0)
				v.Set(j, i, 0)
			}
		} else {
			for k := 0; k < i; k++ {
				d[k] /= scale
				h += d[k] * d[k]
			}
			f := d[i-1]
			g := math.Sqrt(h)
			if f > 0 {
				g = -g
			}
			e[i] = scale * g
			h -= f * g
			d[i-1] = f - g
			for j := 0; j < i; j++ {
				e[j] = 0
			}
			for j := 0; j < i; j++ {
				f = d[j]
				v.Set(j, i, f)
				g = e[j] + v.At(j, j)*f
				for k := j + 1; k <= i-1; k++ {
					g += v.At(k, j) * d[k]
					e[k] += v.At(k, j) * f
				}
				e[j] = g
			}
			f = 0
			for j := 0; j < i; j++ {
				e[j] /= h
				f += e[j] * d[j]
			}
			hh := f / (h + h)
			for j := 0; j < i; j++ {
				e[j] -= hh * d[j]
			}
			for j := 0; j < i; j++ {
				f = d[j]
				g = e[j]
				for k := j; k <= i-1; k++ {
					v.Set(k, j, v.At(k, j)-(f*e[k]+g*d[k]))
				}
				d[j] = v.At(i-1, j)
				v.Set(i, j, 0)
			}
		}
		d[i] = h
	}
	for i := 0; i < n-1; i++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		v.Set(n-1, i, v.At(i, i))
		v.Set(i, i, 1)
		h := d[i+1]
		if h != 0 {
			for k := 0; k <= i; k++ {
				d[k] = v.At(k, i+1) / h
			}
			for j := 0; j <= i; j++ {
				g := 0.0
				for k := 0; k <= i; k++ {
					g += v.At(k, i+1) * v.At(k, j)
				}
				for k := 0; k <= i; k++ {
					v.Set(k, j, v.At(k, j)-g*d[k])
				}
			}
		}
		for k := 0; k <= i; k++ {
			v.Set(k, i+1, 0)
		}
	}
	for j := 0; j < n; j++ {
		d[j] = v.At(n-1, j)
		v.Set(n-1, j, 0)
	}
	v.Set(n-1, n-1, 1)
	e[0] = 0
	return nil
}

// tql2 diagonalizes the tridiagonal matrix (d, e) by implicit-shift QL
// iteration, accumulating eigenvectors into v.
func tql2(ctx context.Context, v *Matrix, d, e []float64) error {
	n := v.Rows
	for i := 1; i < n; i++ {
		e[i-1] = e[i]
	}
	e[n-1] = 0
	f, tst1 := 0.0, 0.0
	const eps = 2.220446049250313e-16
	for l := 0; l < n; l++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		tst1 = math.Max(tst1, math.Abs(d[l])+math.Abs(e[l]))
		m := l
		for m < n {
			if math.Abs(e[m]) <= eps*tst1 {
				break
			}
			m++
		}
		if m > l {
			for iter := 0; ; iter++ {
				if iter >= 100 {
					return errors.New("linalg: QL iteration did not converge")
				}
				g := d[l]
				p := (d[l+1] - g) / (2 * e[l])
				r := math.Hypot(p, 1)
				if p < 0 {
					r = -r
				}
				d[l] = e[l] / (p + r)
				d[l+1] = e[l] * (p + r)
				dl1 := d[l+1]
				h := g - d[l]
				for i := l + 2; i < n; i++ {
					d[i] -= h
				}
				f += h
				p = d[m]
				c, c2, c3 := 1.0, 1.0, 1.0
				el1 := e[l+1]
				s, s2 := 0.0, 0.0
				for i := m - 1; i >= l; i-- {
					c3 = c2
					c2 = c
					s2 = s
					g = c * e[i]
					h = c * p
					r = math.Hypot(p, e[i])
					e[i+1] = s * r
					s = e[i] / r
					c = p / r
					p = c*d[i] - s*g
					d[i+1] = h + s*(c*g+s*d[i])
					for k := 0; k < n; k++ {
						h = v.At(k, i+1)
						v.Set(k, i+1, s*v.At(k, i)+c*h)
						v.Set(k, i, c*v.At(k, i)-s*h)
					}
				}
				p = -s * s2 * c3 * el1 * e[l] / dl1
				e[l] = s * p
				d[l] = c * p
				if math.Abs(e[l]) <= eps*tst1 {
					break
				}
			}
		}
		d[l] += f
		e[l] = 0
	}
	return nil
}

// JacobiEigenSym computes the eigendecomposition of a small symmetric
// matrix by cyclic Jacobi rotations. It is slower than EigenSym but
// independent of it, so the two serve as cross-checks in tests.
// Eigenvalues are returned in descending order.
func JacobiEigenSym(a *Matrix, maxSweeps int) (values []float64, vectors *Matrix, err error) {
	if a.Rows != a.Cols {
		return nil, nil, errors.New("linalg: JacobiEigenSym requires a square matrix")
	}
	n := a.Rows
	m := a.Clone()
	v := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		v.Set(i, i, 1)
	}
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := 0.0
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				off += m.At(i, j) * m.At(i, j)
			}
		}
		if off < 1e-22*float64(n*n) {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := m.At(p, q)
				if math.Abs(apq) < 1e-300 {
					continue
				}
				theta := (m.At(q, q) - m.At(p, p)) / (2 * apq)
				t := 1 / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				if theta < 0 {
					t = -t
				}
				c := 1 / math.Sqrt(t*t+1)
				s := t * c
				for k := 0; k < n; k++ {
					akp, akq := m.At(k, p), m.At(k, q)
					m.Set(k, p, c*akp-s*akq)
					m.Set(k, q, s*akp+c*akq)
				}
				for k := 0; k < n; k++ {
					apk, aqk := m.At(p, k), m.At(q, k)
					m.Set(p, k, c*apk-s*aqk)
					m.Set(q, k, s*apk+c*aqk)
				}
				for k := 0; k < n; k++ {
					vkp, vkq := v.At(k, p), v.At(k, q)
					v.Set(k, p, c*vkp-s*vkq)
					v.Set(k, q, s*vkp+c*vkq)
				}
			}
		}
	}
	d := make([]float64, n)
	for i := 0; i < n; i++ {
		d[i] = m.At(i, i)
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(x, y int) bool { return d[idx[x]] > d[idx[y]] })
	values = make([]float64, n)
	vectors = NewMatrix(n, n)
	for newCol, oldCol := range idx {
		values[newCol] = d[oldCol]
		for r := 0; r < n; r++ {
			vectors.Set(r, newCol, v.At(r, oldCol))
		}
	}
	return values, vectors, nil
}
