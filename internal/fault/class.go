// Package fault is the reliability toolkit the serving stack uses on
// itself: a typed error taxonomy, a deterministic seedable
// fault-injection framework, bounded retry policies, and a keyed
// circuit breaker. The paper quantifies oxide-breakdown randomness and
// manages it at the chip level (Eq. 4, 17–18); this package applies the
// same discipline to the software — classify failures, bound their
// blast radius, and keep serving.
package fault

import (
	"context"
	"errors"
	"fmt"
)

// Class partitions failures by how callers should react to them.
type Class int

const (
	// Permanent failures are deterministic for their inputs: retrying
	// the same build yields the same error. The default classification.
	Permanent Class = iota
	// Transient failures are expected to heal on retry (injected
	// faults, resource blips). Retry policies act only on this class.
	Transient
	// Cancelled failures are the caller's own context dying; they are
	// neither retried nor counted against a fingerprint's health.
	Cancelled
	// Overload failures are load-shedding decisions (open breakers,
	// admission rejects); callers should back off and retry later.
	Overload
)

func (c Class) String() string {
	switch c {
	case Transient:
		return "transient"
	case Cancelled:
		return "cancelled"
	case Overload:
		return "overload"
	default:
		return "permanent"
	}
}

// classer is the interface an error implements to declare its class.
type classer interface{ FaultClass() Class }

// ClassOf classifies an error: context errors are Cancelled, errors
// declaring a class (injected faults, breaker opens, Class.Wrap) keep
// it, everything else — including nil — is Permanent.
func ClassOf(err error) Class {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return Cancelled
	}
	var fc classer
	if errors.As(err, &fc) {
		return fc.FaultClass()
	}
	return Permanent
}

// classified carries an explicit class on an arbitrary error.
type classified struct {
	err   error
	class Class
}

func (e *classified) Error() string     { return e.err.Error() }
func (e *classified) Unwrap() error     { return e.err }
func (e *classified) FaultClass() Class { return e.class }

// Wrap marks err with the class; errors.Is/As still see err.
func (c Class) Wrap(err error) error {
	if err == nil {
		return nil
	}
	return &classified{err: err, class: c}
}

// StageError records where in the pipeline a failure happened: the
// stage name and the artifact fingerprint whose build failed. It
// classifies as its cause does, so retry/breaker decisions see through
// the provenance wrapper.
type StageError struct {
	Stage       string
	Fingerprint string
	Err         error
}

func (e *StageError) Error() string {
	return fmt.Sprintf("stage %s [%s]: %v", e.Stage, e.Fingerprint, e.Err)
}
func (e *StageError) Unwrap() error     { return e.Err }
func (e *StageError) FaultClass() Class { return ClassOf(e.Err) }
