package fault

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"
)

// resetInjection returns the package to the fully-disarmed state so
// tests that assert the fast path see gate==0 regardless of ordering.
func resetInjection(t *testing.T) {
	t.Helper()
	Disarm()
	if ctxEnabled.Swap(false) {
		gate.Add(-1)
	}
	t.Cleanup(func() {
		Disarm()
		if ctxEnabled.Swap(false) {
			gate.Add(-1)
		}
	})
}

func TestParseSpec(t *testing.T) {
	s, err := ParseSpec("seed=42,pipeline.build:error:0.1,pipeline.build:latency:50ms:0.25,registry.build(C2):perm:1,server.handler:panic:0.5")
	if err != nil {
		t.Fatal(err)
	}
	if !s.Seeded || s.Seed != 42 {
		t.Fatalf("seed = %d (seeded=%v), want 42", s.Seed, s.Seeded)
	}
	if len(s.Rules) != 4 {
		t.Fatalf("got %d rules, want 4", len(s.Rules))
	}
	r := s.Rules[0]
	if r.Point != "pipeline.build" || r.Kind != KindError || r.Class != Transient || r.Prob != 0.1 {
		t.Fatalf("rule 0 = %+v", r)
	}
	r = s.Rules[1]
	if r.Kind != KindLatency || r.Latency != 50*time.Millisecond || r.Prob != 0.25 {
		t.Fatalf("rule 1 = %+v", r)
	}
	r = s.Rules[2]
	if r.Point != "registry.build" || r.Match != "C2" || r.Class != Permanent || r.Prob != 1 {
		t.Fatalf("rule 2 = %+v", r)
	}
	if s.Rules[3].Kind != KindPanic {
		t.Fatalf("rule 3 = %+v", s.Rules[3])
	}
	// Defaults: probability 1, no seed.
	s, err = ParseSpec("thermal.solve:error")
	if err != nil || s.Seeded || s.Rules[0].Prob != 1 {
		t.Fatalf("default parse: %+v err=%v", s, err)
	}
	for _, bad := range []string{
		"nokind", ":error", "p:latency", "p:latency:xx", "p:error:1.5",
		"p:error:-0.1", "p:bogus", "p(x:error", "seed=abc", "p:error:0.1:extra",
	} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q) accepted", bad)
		}
	}
}

func TestDeterministicDecisions(t *testing.T) {
	resetInjection(t)
	ctx := context.Background()
	pattern := func(seed int64) string {
		spec, _ := ParseSpec("p:error:0.3")
		inj := NewInjector(seed, spec.Rules)
		var b strings.Builder
		for i := 0; i < 200; i++ {
			if inj.eval(ctx, "p", "") != nil {
				b.WriteByte('x')
			} else {
				b.WriteByte('.')
			}
		}
		return b.String()
	}
	p1, p2, p3 := pattern(7), pattern(7), pattern(8)
	if p1 != p2 {
		t.Fatalf("same seed diverged:\n%s\n%s", p1, p2)
	}
	if p1 == p3 {
		t.Fatalf("different seeds produced identical stream")
	}
	fired := strings.Count(p1, "x")
	if fired < 30 || fired > 90 {
		t.Fatalf("p=0.3 over 200 evals fired %d times", fired)
	}
}

func TestDisarmedFastPathAllocs(t *testing.T) {
	resetInjection(t)
	ctx := context.Background()
	allocs := testing.AllocsPerRun(1000, func() {
		if err := Inject(ctx, "pipeline.build"); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("disarmed Inject allocates %.1f/op, want 0", allocs)
	}
}

func TestGlobalArmDisarm(t *testing.T) {
	resetInjection(t)
	spec, _ := ParseSpec("p:error:1")
	Arm(spec.Injector(1))
	before := InjectedTotal()
	err := Inject(context.Background(), "p")
	var ie *InjectedError
	if !errors.As(err, &ie) || ie.Point != "p" {
		t.Fatalf("err = %v", err)
	}
	if InjectedTotal() != before+1 {
		t.Fatalf("InjectedTotal did not advance")
	}
	Disarm()
	if err := Inject(context.Background(), "p"); err != nil {
		t.Fatalf("disarmed Inject = %v", err)
	}
	if InjectedTotal() != before+1 {
		t.Fatalf("leakage while disarmed")
	}
}

func TestMatchLabel(t *testing.T) {
	resetInjection(t)
	spec, _ := ParseSpec("reg(C2):error:1")
	Arm(spec.Injector(1))
	if err := InjectLabeled(context.Background(), "reg", "design C1"); err != nil {
		t.Fatalf("non-matching label fired: %v", err)
	}
	if err := InjectLabeled(context.Background(), "reg", "design C2 cfg"); err == nil {
		t.Fatal("matching label did not fire")
	}
}

func TestLatencyRule(t *testing.T) {
	resetInjection(t)
	spec, _ := ParseSpec("p:latency:60ms")
	Arm(spec.Injector(1))
	start := time.Now()
	if err := Inject(context.Background(), "p"); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 50*time.Millisecond {
		t.Fatalf("latency rule slept only %v", d)
	}
	// A dead context interrupts the sleep.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start = time.Now()
	if err := Inject(ctx, "p"); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d > 40*time.Millisecond {
		t.Fatalf("cancelled sleep took %v", d)
	}
}

func TestPanicRule(t *testing.T) {
	resetInjection(t)
	spec, _ := ParseSpec("p:panic:1")
	Arm(spec.Injector(1))
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("panic rule did not panic")
		}
	}()
	Inject(context.Background(), "p")
}

func TestContextScopedInjection(t *testing.T) {
	resetInjection(t)
	spec, _ := ParseSpec("p:error:1")
	ctx := ContextWith(context.Background(), spec.Injector(3))
	if err := Inject(ctx, "p"); err == nil {
		t.Fatal("context-scoped rule did not fire")
	}
	// Other contexts are unaffected.
	if err := Inject(context.Background(), "p"); err != nil {
		t.Fatalf("unscoped ctx fired: %v", err)
	}
	// Carry moves the injector across a context detach.
	detached := Carry(context.Background(), ctx)
	if err := Inject(detached, "p"); err == nil {
		t.Fatal("carried rule did not fire")
	}
	if got := Carry(context.Background(), context.Background()); FromContext(got) != nil {
		t.Fatal("Carry invented an injector")
	}
}

func TestClassOf(t *testing.T) {
	boom := errors.New("boom")
	cases := []struct {
		err  error
		want Class
	}{
		{nil, Permanent},
		{boom, Permanent},
		{context.Canceled, Cancelled},
		{context.DeadlineExceeded, Cancelled},
		{Transient.Wrap(boom), Transient},
		{Overload.Wrap(boom), Overload},
		{&InjectedError{Point: "p", Class: Transient}, Transient},
		{&OpenError{Key: "k"}, Overload},
		{&StageError{Stage: "thermal", Fingerprint: "abc", Err: Transient.Wrap(boom)}, Transient},
		{&StageError{Stage: "thermal", Fingerprint: "abc", Err: boom}, Permanent},
		{&StageError{Stage: "thermal", Fingerprint: "abc", Err: context.Canceled}, Cancelled},
	}
	for i, c := range cases {
		if got := ClassOf(c.err); got != c.want {
			t.Errorf("case %d: ClassOf(%v) = %v, want %v", i, c.err, got, c.want)
		}
	}
	// Provenance wrapper stays transparent to errors.Is.
	se := &StageError{Stage: "pca", Fingerprint: "ff", Err: Transient.Wrap(boom)}
	if !errors.Is(se, boom) {
		t.Fatal("StageError hides its cause from errors.Is")
	}
	if !strings.Contains(se.Error(), "pca") || !strings.Contains(se.Error(), "ff") {
		t.Fatalf("StageError message lacks provenance: %s", se)
	}
}

func TestRetryDelay(t *testing.T) {
	r := Retry{Attempts: 4, Base: 10 * time.Millisecond, Max: 40 * time.Millisecond}
	if !r.Enabled() {
		t.Fatal("policy should be enabled")
	}
	if (Retry{Attempts: 1, Base: time.Millisecond}).Enabled() {
		t.Fatal("single attempt should disable retry")
	}
	for attempt := 1; attempt <= 5; attempt++ {
		want := r.Base << (attempt - 1)
		if want > r.Max {
			want = r.Max
		}
		d := r.Delay(attempt, 99)
		if d < want/2 || d > want {
			t.Errorf("attempt %d: delay %v outside [%v, %v]", attempt, d, want/2, want)
		}
		if d2 := r.Delay(attempt, 99); d2 != d {
			t.Errorf("attempt %d: jitter not deterministic: %v vs %v", attempt, d, d2)
		}
	}
}
