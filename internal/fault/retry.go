package fault

import "time"

// Retry bounds how a caller re-attempts Transient failures:
// exponential backoff from Base, capped at Max, with deterministic
// jitter derived from a caller-supplied token (never wall clock), so a
// coordinated retry storm decorrelates without losing replayability.
type Retry struct {
	// Attempts is the total number of tries (1 or less disables retry).
	Attempts int
	// Base is the delay before the first retry; each further retry
	// doubles it.
	Base time.Duration
	// Max caps a single delay (0 means 32×Base).
	Max time.Duration
}

// Enabled reports whether the policy retries at all.
func (r Retry) Enabled() bool { return r.Attempts > 1 && r.Base > 0 }

// Delay returns the backoff before attempt+1, where attempt counts the
// tries already made (1-based). The token seeds the jitter: the delay
// lands uniformly in [d/2, d) for the exponential d.
func (r Retry) Delay(attempt int, token uint64) time.Duration {
	if attempt < 1 {
		attempt = 1
	}
	d := r.Base << (attempt - 1)
	maxD := r.Max
	if maxD <= 0 {
		maxD = r.Base << 5
	}
	if d <= 0 || d > maxD {
		d = maxD
	}
	half := d / 2
	jitter := time.Duration(splitmix64(token^uint64(attempt)) % uint64(half+1))
	return half + jitter
}
