package fault

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Breaker is a keyed circuit breaker with half-open probing. Keys are
// fingerprints (stage+key, design identity): a poisoned configuration
// that fails deterministically trips only its own key, so one bad
// design cannot stampede rebuilds or starve healthy traffic.
//
// State machine, per key:
//
//	closed ──(threshold consecutive failures)──► open
//	open ──(openFor elapses)──► half-open: ONE probe build admitted
//	half-open ──probe succeeds──► closed (entry dropped)
//	half-open ──probe fails──► open again for openFor
//
// While open, Allow fast-fails with an *OpenError carrying the last
// observed failure — a negative-result cache with TTL openFor: callers
// get the cause immediately instead of re-running a doomed build.
type Breaker struct {
	threshold int
	openFor   time.Duration
	// now is the clock, swappable by tests.
	now func() time.Time

	mu      sync.Mutex
	entries map[string]*brEntry

	opens, fastFails, probes atomic.Int64
}

type brEntry struct {
	consec    int
	openUntil time.Time
	probing   bool
	lastErr   error
}

// maxBreakerEntries bounds the tracked-key map; only failing keys are
// tracked (success drops the entry), so hitting the bound means
// thousands of distinct fingerprints are actively failing.
const maxBreakerEntries = 4096

// NewBreaker returns a breaker opening after threshold consecutive
// failures (min 1) for openFor (default 5s) per key.
func NewBreaker(threshold int, openFor time.Duration) *Breaker {
	if threshold < 1 {
		threshold = 1
	}
	if openFor <= 0 {
		openFor = 5 * time.Second
	}
	return &Breaker{
		threshold: threshold,
		openFor:   openFor,
		now:       time.Now,
		entries:   map[string]*brEntry{},
	}
}

// OpenError is the fast-fail result for an open key. It classifies as
// Overload and deliberately does not Unwrap its cause: the cause
// already counted once when it tripped the breaker, and callers
// matching on sentinel errors (context deadlines, API errors) must not
// mistake a shed request for the original failure.
type OpenError struct {
	Key   string
	Until time.Time
	Last  error
}

func (e *OpenError) Error() string {
	if e.Last != nil {
		return fmt.Sprintf("fault: circuit open for %s (last failure: %v)", e.Key, e.Last)
	}
	return fmt.Sprintf("fault: circuit open for %s", e.Key)
}
func (e *OpenError) FaultClass() Class { return Overload }

// Allow reports whether a build for key may proceed. A non-nil return
// is the fast-fail: the key is open (or another half-open probe is
// already in flight). A nil return from an open-but-expired key admits
// the caller as the single half-open probe; it MUST report back via
// Success or Failure.
func (b *Breaker) Allow(key string) *OpenError {
	b.mu.Lock()
	defer b.mu.Unlock()
	e, ok := b.entries[key]
	if !ok || e.openUntil.IsZero() {
		return nil
	}
	now := b.now()
	if now.Before(e.openUntil) {
		b.fastFails.Add(1)
		return &OpenError{Key: key, Until: e.openUntil, Last: e.lastErr}
	}
	if e.probing {
		b.fastFails.Add(1)
		return &OpenError{Key: key, Until: now.Add(b.openFor), Last: e.lastErr}
	}
	e.probing = true
	b.probes.Add(1)
	return nil
}

// Success reports a completed build; the key's failure history is
// forgotten.
func (b *Breaker) Success(key string) {
	b.mu.Lock()
	delete(b.entries, key)
	b.mu.Unlock()
}

// Release reports an abandoned (cancelled) build: a held half-open
// probe slot is freed without judging the key's health.
func (b *Breaker) Release(key string) {
	b.mu.Lock()
	if e, ok := b.entries[key]; ok {
		e.probing = false
	}
	b.mu.Unlock()
}

// Failure reports a failed build (never call it for cancellations —
// a caller giving up says nothing about the key's health). It returns
// true when this failure opened (or re-opened) the circuit.
func (b *Breaker) Failure(key string, err error) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	e, ok := b.entries[key]
	if !ok {
		if len(b.entries) >= maxBreakerEntries {
			b.evictClosedLocked()
		}
		e = &brEntry{}
		b.entries[key] = e
	}
	e.consec++
	e.lastErr = err
	wasProbe := e.probing
	e.probing = false
	if e.consec < b.threshold && !wasProbe {
		return false
	}
	// Threshold reached, or a half-open probe failed: (re)open.
	wasOpen := !e.openUntil.IsZero() && b.now().Before(e.openUntil)
	e.openUntil = b.now().Add(b.openFor)
	if !wasOpen {
		b.opens.Add(1)
		return true
	}
	return false
}

// evictClosedLocked drops one closed (not currently open) entry to
// bound the map; if every entry is open, it drops an arbitrary one.
func (b *Breaker) evictClosedLocked() {
	var anyKey string
	for k, e := range b.entries {
		if e.openUntil.IsZero() {
			delete(b.entries, k)
			return
		}
		anyKey = k
	}
	delete(b.entries, anyKey)
}

// Opens counts transitions into the open state.
func (b *Breaker) Opens() int64 { return b.opens.Load() }

// FastFails counts requests shed by an open circuit.
func (b *Breaker) FastFails() int64 { return b.fastFails.Load() }

// Probes counts half-open probe admissions.
func (b *Breaker) Probes() int64 { return b.probes.Load() }

// OpenKeys returns how many keys are currently open.
func (b *Breaker) OpenKeys() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	now := b.now()
	n := 0
	for _, e := range b.entries {
		if !e.openUntil.IsZero() && now.Before(e.openUntil) {
			n++
		}
	}
	return n
}

// SetClock replaces the breaker's clock — tests only.
func (b *Breaker) SetClock(now func() time.Time) {
	b.mu.Lock()
	b.now = now
	b.mu.Unlock()
}
