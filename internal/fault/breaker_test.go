package fault

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// fakeClock drives the breaker without sleeping.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func newTestBreaker(threshold int, openFor time.Duration) (*Breaker, *fakeClock) {
	b := NewBreaker(threshold, openFor)
	clk := &fakeClock{t: time.Unix(1000, 0)}
	b.SetClock(clk.now)
	return b, clk
}

func TestBreakerOpensAfterThreshold(t *testing.T) {
	b, _ := newTestBreaker(3, time.Second)
	boom := errors.New("boom")
	for i := 0; i < 2; i++ {
		if b.Failure("k", boom) {
			t.Fatalf("opened after %d failures", i+1)
		}
		if oe := b.Allow("k"); oe != nil {
			t.Fatalf("closed key rejected: %v", oe)
		}
	}
	if !b.Failure("k", boom) {
		t.Fatal("third failure did not open")
	}
	oe := b.Allow("k")
	if oe == nil {
		t.Fatal("open key admitted a build")
	}
	if ClassOf(oe) != Overload {
		t.Fatalf("OpenError class = %v", ClassOf(oe))
	}
	// The negative-result cache carries the cause without unwrapping it.
	if !errors.Is(oe.Last, boom) {
		t.Fatal("OpenError lost the last failure")
	}
	if errors.Is(oe, boom) {
		t.Fatal("OpenError must not unwrap to the cause")
	}
	if b.Opens() != 1 || b.FastFails() != 1 {
		t.Fatalf("opens=%d fastFails=%d", b.Opens(), b.FastFails())
	}
	// Other keys are untouched.
	if oe := b.Allow("healthy"); oe != nil {
		t.Fatalf("healthy key rejected: %v", oe)
	}
}

func TestBreakerHalfOpenSingleProbe(t *testing.T) {
	b, clk := newTestBreaker(1, time.Second)
	b.Failure("k", errors.New("boom"))
	if b.Allow("k") == nil {
		t.Fatal("open key admitted")
	}
	clk.advance(1100 * time.Millisecond)
	// First caller after the TTL becomes the probe…
	if oe := b.Allow("k"); oe != nil {
		t.Fatalf("half-open denied the probe: %v", oe)
	}
	// …and everyone else keeps fast-failing while it runs.
	if b.Allow("k") == nil {
		t.Fatal("second concurrent probe admitted")
	}
	if b.Probes() != 1 {
		t.Fatalf("probes = %d", b.Probes())
	}
	// Probe success closes the circuit completely.
	b.Success("k")
	if oe := b.Allow("k"); oe != nil {
		t.Fatalf("recovered key rejected: %v", oe)
	}
	if b.OpenKeys() != 0 {
		t.Fatalf("OpenKeys = %d after recovery", b.OpenKeys())
	}
}

func TestBreakerProbeFailureReopens(t *testing.T) {
	b, clk := newTestBreaker(1, time.Second)
	b.Failure("k", errors.New("boom"))
	clk.advance(1100 * time.Millisecond)
	if b.Allow("k") != nil {
		t.Fatal("probe denied")
	}
	b.Failure("k", errors.New("still broken"))
	if b.Allow("k") == nil {
		t.Fatal("failed probe did not reopen")
	}
	if b.OpenKeys() != 1 {
		t.Fatalf("OpenKeys = %d", b.OpenKeys())
	}
	// It recovers on the next cycle when the probe succeeds.
	clk.advance(1100 * time.Millisecond)
	if b.Allow("k") != nil {
		t.Fatal("second probe denied")
	}
	b.Success("k")
	if b.Allow("k") != nil {
		t.Fatal("key did not close after eventual success")
	}
}

func TestBreakerSuccessResetsConsecutive(t *testing.T) {
	b, _ := newTestBreaker(3, time.Second)
	boom := errors.New("boom")
	b.Failure("k", boom)
	b.Failure("k", boom)
	b.Success("k")
	b.Failure("k", boom)
	b.Failure("k", boom)
	if b.Opens() != 0 {
		t.Fatal("interleaved success did not reset the streak")
	}
}

func TestBreakerEntryBound(t *testing.T) {
	b, _ := newTestBreaker(100, time.Second)
	for i := 0; i < maxBreakerEntries+10; i++ {
		b.Failure(string(rune('a'+i%26))+time.Duration(i).String(), errors.New("x"))
	}
	b.mu.Lock()
	n := len(b.entries)
	b.mu.Unlock()
	if n > maxBreakerEntries {
		t.Fatalf("entries grew to %d (bound %d)", n, maxBreakerEntries)
	}
}
