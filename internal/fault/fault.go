package fault

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"
)

// A Kind is what an armed rule does when its probability fires.
type Kind int

const (
	// KindError makes the injection point return an *InjectedError.
	KindError Kind = iota
	// KindLatency makes the injection point sleep (interruptibly)
	// before returning nil.
	KindLatency
	// KindPanic makes the injection point panic, exercising the
	// containment (recover) paths above it.
	KindPanic
)

func (k Kind) String() string {
	switch k {
	case KindLatency:
		return "latency"
	case KindPanic:
		return "panic"
	default:
		return "error"
	}
}

// Rule arms one behaviour at one injection point.
type Rule struct {
	// Point is the registered injection-point name, e.g.
	// "pipeline.build", "thermal.solve", "maxvdd.probe",
	// "server.handler", "registry.build".
	Point string
	// Match, when non-empty, restricts the rule to evaluations whose
	// label contains it (labels are stage names, design fingerprints,
	// routes — whatever the point passes to InjectLabeled).
	Match string
	// Kind selects error / latency / panic.
	Kind Kind
	// Prob is the per-evaluation firing probability in [0,1].
	Prob float64
	// Class is the class of the injected error (KindError only).
	Class Class
	// Latency is the injected delay (KindLatency only).
	Latency time.Duration
}

func (r Rule) String() string {
	var b strings.Builder
	b.WriteString(r.Point)
	if r.Match != "" {
		fmt.Fprintf(&b, "(%s)", r.Match)
	}
	switch r.Kind {
	case KindLatency:
		fmt.Fprintf(&b, ":latency:%s", r.Latency)
	case KindPanic:
		b.WriteString(":panic")
	default:
		if r.Class == Permanent {
			b.WriteString(":perm")
		} else {
			b.WriteString(":error")
		}
	}
	fmt.Fprintf(&b, ":%g", r.Prob)
	return b.String()
}

// InjectedError is the error returned by a fired KindError rule.
type InjectedError struct {
	Point string
	Class Class
	// N is the rule's evaluation count at the firing (1-based), making
	// failures reproducible under a fixed seed.
	N int64
}

func (e *InjectedError) Error() string {
	return fmt.Sprintf("fault: injected %s error at %s (evaluation %d)", e.Class, e.Point, e.N)
}
func (e *InjectedError) FaultClass() Class { return e.Class }

// Spec is a parsed fault profile: rules plus an optional seed.
type Spec struct {
	Rules []Rule
	// Seed is the decision-stream seed; zero-valued unless the spec
	// carried a "seed=N" segment (see Seeded).
	Seed   int64
	Seeded bool
}

// ParseSpec parses the comma-separated profile grammar:
//
//	rule    = point [ "(" match ")" ] ":" kind
//	kind    = ("error"|"transient") [":" prob]      transient error
//	        | ("perm"|"permanent")  [":" prob]      permanent error
//	        | "latency" ":" duration [":" prob]     injected delay
//	        | "panic" [":" prob]                    injected panic
//	seed    = "seed=" int                           decision-stream seed
//
// e.g. "pipeline.build:error:0.1,pipeline.build:latency:50ms:0.1" or
// "registry.build(C2):perm:1". Probabilities default to 1.
func ParseSpec(spec string) (*Spec, error) {
	out := &Spec{}
	for _, seg := range strings.Split(spec, ",") {
		seg = strings.TrimSpace(seg)
		if seg == "" {
			continue
		}
		if v, ok := strings.CutPrefix(seg, "seed="); ok {
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("fault: bad seed %q", v)
			}
			out.Seed, out.Seeded = n, true
			continue
		}
		r, err := parseRule(seg)
		if err != nil {
			return nil, err
		}
		out.Rules = append(out.Rules, r)
	}
	return out, nil
}

func parseRule(seg string) (Rule, error) {
	var r Rule
	parts := strings.Split(seg, ":")
	point := parts[0]
	if i := strings.IndexByte(point, '('); i >= 0 {
		if !strings.HasSuffix(point, ")") {
			return r, fmt.Errorf("fault: unterminated match in %q", seg)
		}
		r.Match = point[i+1 : len(point)-1]
		point = point[:i]
	}
	if point == "" {
		return r, fmt.Errorf("fault: empty point in %q", seg)
	}
	r.Point = point
	if len(parts) < 2 {
		return r, fmt.Errorf("fault: missing kind in %q", seg)
	}
	r.Prob = 1
	prob := func(args []string) error {
		if len(args) == 0 {
			return nil
		}
		if len(args) > 1 {
			return fmt.Errorf("fault: too many arguments in %q", seg)
		}
		p, err := strconv.ParseFloat(args[0], 64)
		if err != nil || p < 0 || p > 1 {
			return fmt.Errorf("fault: bad probability %q in %q", args[0], seg)
		}
		r.Prob = p
		return nil
	}
	kind, args := parts[1], parts[2:]
	switch kind {
	case "error", "transient":
		r.Kind, r.Class = KindError, Transient
		return r, prob(args)
	case "perm", "permanent":
		r.Kind, r.Class = KindError, Permanent
		return r, prob(args)
	case "panic":
		r.Kind = KindPanic
		return r, prob(args)
	case "latency":
		if len(args) == 0 {
			return r, fmt.Errorf("fault: latency needs a duration in %q", seg)
		}
		d, err := time.ParseDuration(args[0])
		if err != nil || d < 0 {
			return r, fmt.Errorf("fault: bad duration %q in %q", args[0], seg)
		}
		r.Kind, r.Latency = KindLatency, d
		return r, prob(args[1:])
	default:
		return r, fmt.Errorf("fault: unknown kind %q in %q", kind, seg)
	}
}

// armedRule is a Rule with its evaluation counters. The count feeds the
// decision stream, so under a fixed seed the k-th evaluation of a rule
// always decides the same way regardless of timing.
type armedRule struct {
	Rule
	id    uint64
	count atomic.Int64
	fired atomic.Int64
}

// Injector holds armed rules indexed by point. Decisions are pure
// functions of (seed, rule index, evaluation count) — deterministic and
// replayable, never wall-clock or math/rand dependent.
type Injector struct {
	seed   uint64
	points map[string][]*armedRule
	rules  []*armedRule
}

// NewInjector arms the rules under the seed.
func NewInjector(seed int64, rules []Rule) *Injector {
	inj := &Injector{seed: uint64(seed), points: map[string][]*armedRule{}}
	for i, r := range rules {
		ar := &armedRule{Rule: r, id: uint64(i + 1)}
		inj.points[r.Point] = append(inj.points[r.Point], ar)
		inj.rules = append(inj.rules, ar)
	}
	return inj
}

// Injector builds the spec's injector, using fallbackSeed when the
// spec did not carry its own "seed=" segment.
func (s *Spec) Injector(fallbackSeed int64) *Injector {
	seed := fallbackSeed
	if s.Seeded {
		seed = s.Seed
	}
	return NewInjector(seed, s.Rules)
}

// splitmix64 — tiny, stateless, and good enough to turn (seed, rule,
// count) into an unbiased decision.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func (inj *Injector) decide(r *armedRule, n int64) bool {
	if r.Prob >= 1 {
		return true
	}
	if r.Prob <= 0 {
		return false
	}
	x := splitmix64(inj.seed ^ splitmix64(r.id<<32^uint64(n)))
	return float64(x>>11)/(1<<53) < r.Prob
}

// eval runs every rule armed at point. Latency rules fire and continue
// to later rules; the first firing error/panic rule ends the
// evaluation.
func (inj *Injector) eval(ctx context.Context, point, label string) error {
	rules := inj.points[point]
	if len(rules) == 0 {
		return nil
	}
	for _, r := range rules {
		if r.Match != "" && !strings.Contains(label, r.Match) {
			continue
		}
		n := r.count.Add(1)
		if !inj.decide(r, n) {
			continue
		}
		r.fired.Add(1)
		injectedTotal.Add(1)
		switch r.Kind {
		case KindLatency:
			sleep(ctx, r.Latency)
		case KindPanic:
			panic(fmt.Sprintf("fault: injected panic at %s (evaluation %d)", point, n))
		default:
			return &InjectedError{Point: point, Class: r.Class, N: n}
		}
	}
	return nil
}

// sleep waits for d or until ctx is done, whichever comes first.
func sleep(ctx context.Context, d time.Duration) {
	if d <= 0 {
		return
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-ctx.Done():
	}
}

// PointStat reports one armed rule's activity.
type PointStat struct {
	Rule      string
	Evaluated int64
	Fired     int64
}

// Stats returns per-rule evaluation/firing counts, sorted by rule.
func (inj *Injector) Stats() []PointStat {
	out := make([]PointStat, 0, len(inj.rules))
	for _, r := range inj.rules {
		out = append(out, PointStat{
			Rule:      r.Rule.String(),
			Evaluated: r.count.Load(),
			Fired:     r.fired.Load(),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Rule < out[j].Rule })
	return out
}

// The disarmed fast path: Inject is called on hot paths (every stage
// build, every thermal round), so when nothing is armed it must cost
// one atomic load and zero allocations. `gate` counts armed sources
// (global injector + context injection being enabled); zero means
// every Inject returns nil immediately.
var (
	gate          atomic.Int32
	global        atomic.Pointer[Injector]
	ctxEnabled    atomic.Bool
	injectedTotal atomic.Int64
)

// Arm installs inj as the process-global injector (obdreld -fault).
// Arm(nil) is Disarm.
func Arm(inj *Injector) {
	if inj == nil {
		Disarm()
		return
	}
	if global.Swap(inj) == nil {
		gate.Add(1)
	}
}

// Disarm removes the process-global injector. Context-scoped injectors
// (X-Fault) are unaffected.
func Disarm() {
	if global.Swap(nil) != nil {
		gate.Add(-1)
	}
}

// Global returns the armed process-global injector, or nil.
func Global() *Injector { return global.Load() }

// InjectedTotal counts every fault fired process-wide since start —
// the leakage counter: its delta must be zero over any disarmed window.
func InjectedTotal() int64 { return injectedTotal.Load() }

type ctxKey struct{}

// ContextWith scopes an injector to a request context (the X-Fault
// header path). The first use permanently enables the context check on
// armed paths; the disarmed (gate==0) fast path is unaffected until
// then.
func ContextWith(ctx context.Context, inj *Injector) context.Context {
	if inj == nil {
		return ctx
	}
	if !ctxEnabled.Swap(true) {
		gate.Add(1)
	}
	return context.WithValue(ctx, ctxKey{}, inj)
}

// FromContext returns the context-scoped injector, or nil.
func FromContext(ctx context.Context) *Injector {
	inj, _ := ctx.Value(ctxKey{}).(*Injector)
	return inj
}

// Carry copies src's context-scoped injector (if any) onto dst — used
// when a build detaches from its initiating request's context but
// should keep honouring its X-Fault rules, mirroring how spans are
// carried across the same boundary.
func Carry(dst, src context.Context) context.Context {
	if gate.Load() == 0 || !ctxEnabled.Load() {
		return dst
	}
	if inj := FromContext(src); inj != nil {
		return context.WithValue(dst, ctxKey{}, inj)
	}
	return dst
}

// Inject evaluates the point's armed rules: nil when disarmed or no
// rule fires, an *InjectedError when an error rule fires; latency
// rules sleep in place and panic rules panic. Disarmed cost: one
// atomic load, zero allocations.
func Inject(ctx context.Context, point string) error {
	if gate.Load() == 0 {
		return nil
	}
	return inject(ctx, point, "")
}

// InjectLabeled is Inject with a label for rules carrying a (match)
// restriction — stage names, design fingerprints, routes.
func InjectLabeled(ctx context.Context, point, label string) error {
	if gate.Load() == 0 {
		return nil
	}
	return inject(ctx, point, label)
}

func inject(ctx context.Context, point, label string) error {
	if inj := global.Load(); inj != nil {
		if err := inj.eval(ctx, point, label); err != nil {
			return err
		}
	}
	if ctxEnabled.Load() {
		if inj := FromContext(ctx); inj != nil {
			return inj.eval(ctx, point, label)
		}
	}
	return nil
}
