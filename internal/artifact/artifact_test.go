package artifact

import (
	"encoding/binary"
	"errors"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

const testKey = "0123456789abcdef0123456789abcdef"

func sealOrDie(t *testing.T, stage, key string, payload []byte) []byte {
	t.Helper()
	sealed, err := Seal(stage, key, payload)
	if err != nil {
		t.Fatalf("Seal: %v", err)
	}
	return sealed
}

func TestSealOpenRoundTrip(t *testing.T) {
	payload := []byte("the artifact payload \x00 with binary \xff bytes")
	sealed := sealOrDie(t, "thermal", testKey, payload)
	got, err := Open(sealed, "thermal", testKey)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if string(got) != string(payload) {
		t.Fatalf("payload mismatch: %q != %q", got, payload)
	}
	stage, key, err := Peek(sealed)
	if err != nil || stage != "thermal" || key != testKey {
		t.Fatalf("Peek = %q %q %v", stage, key, err)
	}
}

// TestOpenHostility covers every rejection class the satellite task
// names: truncated payload, flipped checksum byte, wrong stage kind,
// future version, zero-length payload. Each must fail with its typed
// error and must not panic.
func TestOpenHostility(t *testing.T) {
	base := sealOrDie(t, "pca", testKey, []byte("0123456789abcdef0123456789"))
	cp := func() []byte { return append([]byte(nil), base...) }

	cases := []struct {
		name   string
		data   []byte
		stage  string
		key    string
		wantIs error
	}{
		{"empty input", nil, "pca", testKey, ErrTruncated},
		{"header only half", base[:headerSize/2], "pca", testKey, ErrTruncated},
		{"truncated payload", base[:len(base)-5], "pca", testKey, ErrTruncated},
		{"extra trailing bytes", append(cp(), 0xAB), "pca", testKey, ErrTruncated},
		{"bad magic", func() []byte { d := cp(); d[0] = 'X'; return d }(), "pca", testKey, ErrMagic},
		{"future version", func() []byte {
			d := cp()
			binary.LittleEndian.PutUint32(d[offVersion:], Version+7)
			return d
		}(), "pca", testKey, ErrVersion},
		{"flipped checksum byte", func() []byte {
			d := cp()
			d[offChecksum+3] ^= 0x40
			return d
		}(), "pca", testKey, ErrChecksum},
		{"flipped payload byte", func() []byte {
			d := cp()
			d[headerSize+2] ^= 0x01
			return d
		}(), "pca", testKey, ErrChecksum},
		{"wrong stage kind", cp(), "thermal", testKey, ErrStage},
		{"wrong key", cp(), "pca", strings.Repeat("f", KeySize), ErrKey},
		{"zero-length payload", func() []byte {
			// Hand-build a container declaring zero payload bytes:
			// Seal refuses to create one, so forge the header.
			d := cp()[:headerSize]
			binary.LittleEndian.PutUint64(d[offLen:], 0)
			return d
		}(), "pca", testKey, ErrEmpty},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Open(tc.data, tc.stage, tc.key)
			if err == nil {
				t.Fatalf("Open accepted hostile input")
			}
			if !errors.Is(err, tc.wantIs) {
				t.Fatalf("Open err = %v, want errors.Is(%v)", err, tc.wantIs)
			}
		})
	}
}

func TestSealRejectsBadInputs(t *testing.T) {
	if _, err := Seal("", testKey, []byte("x")); !errors.Is(err, ErrBadName) {
		t.Fatalf("empty stage: %v", err)
	}
	if _, err := Seal("averyverylongstagename", testKey, []byte("x")); !errors.Is(err, ErrBadName) {
		t.Fatalf("long stage: %v", err)
	}
	if _, err := Seal("pca", "shortkey", []byte("x")); !errors.Is(err, ErrBadName) {
		t.Fatalf("short key: %v", err)
	}
	if _, err := Seal("pca", testKey, nil); !errors.Is(err, ErrEmpty) {
		t.Fatalf("empty payload: %v", err)
	}
}

func TestFileNameRoundTrip(t *testing.T) {
	name := FileName("covariance", testKey)
	stage, key, ok := ParseFileName(name)
	if !ok || stage != "covariance" || key != testKey {
		t.Fatalf("ParseFileName(%q) = %q %q %v", name, stage, key, ok)
	}
	for _, bad := range []string{
		"", "x.obda", "noext-" + testKey, "-" + testKey + ".obda",
		"stage-shortkey.obda", ".obda-tmp-12345",
	} {
		if _, _, ok := ParseFileName(bad); ok {
			t.Fatalf("ParseFileName accepted %q", bad)
		}
	}
}

func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	sealed := sealOrDie(t, "blod", testKey, []byte("payload"))
	if err := WriteFile(dir, "blod", testKey, sealed); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	data, err := os.ReadFile(filepath.Join(dir, FileName("blod", testKey)))
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if _, err := Open(data, "blod", testKey); err != nil {
		t.Fatalf("Open written file: %v", err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil || len(ents) != 1 {
		t.Fatalf("dir has %d entries (want 1, no temp leftovers): %v", len(ents), err)
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	var w Writer
	w.U64(0)
	w.U64(math.MaxUint64)
	w.I64(-42)
	w.Int(123456)
	w.F64(math.Copysign(0, -1)) // negative zero survives
	w.F64(math.Inf(-1))
	w.F64(1.0000000000000002)
	w.Bool(true)
	w.Bool(false)
	w.String("")
	w.String("héllo\x00world")
	w.F64s(nil)
	w.F64s([]float64{})
	w.F64s([]float64{3.14, -2.5e-300})
	w.Ints([]int{-1, 0, 7})

	r := NewReader(w.Bytes())
	if v := r.U64(); v != 0 {
		t.Fatalf("u64 = %d", v)
	}
	if v := r.U64(); v != math.MaxUint64 {
		t.Fatalf("u64 max = %d", v)
	}
	if v := r.I64(); v != -42 {
		t.Fatalf("i64 = %d", v)
	}
	if v := r.Int(); v != 123456 {
		t.Fatalf("int = %d", v)
	}
	if v := r.F64(); math.Float64bits(v) != math.Float64bits(math.Copysign(0, -1)) {
		t.Fatalf("negative zero lost: %v", v)
	}
	if v := r.F64(); !math.IsInf(v, -1) {
		t.Fatalf("-inf lost: %v", v)
	}
	if v := r.F64(); v != 1.0000000000000002 {
		t.Fatalf("ulp float = %v", v)
	}
	if !r.Bool() || r.Bool() {
		t.Fatalf("bools mangled")
	}
	if v := r.String(); v != "" {
		t.Fatalf("empty string = %q", v)
	}
	if v := r.String(); v != "héllo\x00world" {
		t.Fatalf("string = %q", v)
	}
	if v := r.F64s(); v != nil {
		t.Fatalf("nil slice = %v", v)
	}
	if v := r.F64s(); v == nil || len(v) != 0 {
		t.Fatalf("empty slice = %v", v)
	}
	if v := r.F64s(); !reflect.DeepEqual(v, []float64{3.14, -2.5e-300}) {
		t.Fatalf("f64s = %v", v)
	}
	if v := r.Ints(); !reflect.DeepEqual(v, []int{-1, 0, 7}) {
		t.Fatalf("ints = %v", v)
	}
	if err := r.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

// TestReaderHostility: corrupt payloads poison the reader with an
// error instead of panicking or allocating absurd slices.
func TestReaderHostility(t *testing.T) {
	t.Run("truncated", func(t *testing.T) {
		r := NewReader([]byte{1, 2, 3})
		_ = r.U64()
		if r.Err() == nil {
			t.Fatal("no error on short read")
		}
	})
	t.Run("huge slice length", func(t *testing.T) {
		var w Writer
		w.Bool(true)
		w.U64(1 << 60) // declared length vastly exceeds payload
		r := NewReader(w.Bytes())
		if v := r.F64s(); v != nil || r.Err() == nil {
			t.Fatalf("hostile length accepted: %v %v", v, r.Err())
		}
	})
	t.Run("bad bool", func(t *testing.T) {
		r := NewReader([]byte{7})
		_ = r.Bool()
		if r.Err() == nil {
			t.Fatal("bool byte 7 accepted")
		}
	})
	t.Run("trailing bytes", func(t *testing.T) {
		var w Writer
		w.U64(1)
		r := NewReader(append(w.Bytes(), 0xFF))
		_ = r.U64()
		if err := r.Close(); err == nil {
			t.Fatal("trailing bytes accepted")
		}
	})
	t.Run("sticky", func(t *testing.T) {
		r := NewReader(nil)
		_ = r.U64()
		first := r.Err()
		_ = r.F64()
		_ = r.String()
		if r.Err() != first {
			t.Fatalf("error not sticky: %v then %v", first, r.Err())
		}
	})
}

func TestRegistry(t *testing.T) {
	Register("test-reg-stage", Codec{
		Encode: func(v any) ([]byte, error) {
			var w Writer
			w.Int(v.(int))
			return w.Bytes(), nil
		},
		Decode: func(p []byte) (any, error) {
			r := NewReader(p)
			v := r.Int()
			if err := r.Close(); err != nil {
				return nil, err
			}
			return v, nil
		},
	})
	sealed, err := Encode("test-reg-stage", testKey, 99)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	v, err := Decode("test-reg-stage", testKey, sealed)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if v.(int) != 99 {
		t.Fatalf("round trip = %v", v)
	}
	if _, err := Encode("no-such-stage", testKey, 1); err == nil {
		t.Fatal("Encode without codec succeeded")
	}
	if _, ok := Lookup("no-such-stage"); ok {
		t.Fatal("Lookup invented a codec")
	}
	found := false
	for _, s := range RegisteredStages() {
		if s == "test-reg-stage" {
			found = true
		}
	}
	if !found {
		t.Fatal("RegisteredStages missing test-reg-stage")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Register did not panic")
		}
	}()
	Register("test-reg-stage", Codec{
		Encode: func(any) ([]byte, error) { return nil, nil },
		Decode: func([]byte) (any, error) { return nil, nil },
	})
}
