// Package artifact is the wire format of the stage cache: a sealed,
// versioned, content-addressed container for serialized pipeline
// stage artifacts, plus the per-stage codec registry that turns live
// Go structs into payload bytes and back bit-identically.
//
// The container follows the proven OBDT layout of internal/tablefile —
// fixed little-endian header, FNV-64a payload checksum, validation
// before any payload byte is interpreted — so the disk spill tier and
// the peer cache-fill protocol share one self-describing format:
//
//	offset size  field
//	0      4     magic "OBDA"
//	4      4     format version (u32, currently 1)
//	8      8     payload length (u64)
//	16     8     FNV-64a checksum of the payload (u64)
//	24     16    stage kind, NUL-padded ASCII
//	40     32    canonical fingerprint key (fp16 hex)
//	72     8     reserved, must be zero
//	80     —     payload (stage-specific, see the codec registry)
//
// Every rejection path has a typed sentinel error so callers can
// distinguish "truncated" from "corrupt" from "wrong artifact" — a
// corrupt disk file is deleted and rebuilt, while a version from the
// future means a newer node wrote the directory and the file must be
// left alone.
package artifact

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"strings"
)

const (
	// Magic identifies a sealed artifact file ("OBD Artifact").
	Magic = "OBDA"
	// Version is the current container format version.
	Version = 1

	headerSize = 80
	stageSize  = 16
	// KeySize is the canonical fingerprint length (fp16: 16 bytes of
	// sha256, hex-encoded).
	KeySize = 32

	offMagic    = 0
	offVersion  = 4
	offLen      = 8
	offChecksum = 16
	offStage    = 24
	offKey      = 40
	offReserved = 72
)

// Typed rejection errors, one per hostility class. All are wrapped
// with context by Open/Seal; test with errors.Is.
var (
	// ErrTruncated: the data is shorter than the header or the
	// declared payload length.
	ErrTruncated = errors.New("artifact: truncated")
	// ErrMagic: the data does not start with "OBDA".
	ErrMagic = errors.New("artifact: bad magic")
	// ErrVersion: the container was written by a future format
	// version this build cannot interpret.
	ErrVersion = errors.New("artifact: unsupported version")
	// ErrChecksum: the payload does not match its recorded FNV-64a
	// checksum.
	ErrChecksum = errors.New("artifact: checksum mismatch")
	// ErrStage: the container holds a different stage kind than the
	// caller asked for.
	ErrStage = errors.New("artifact: stage kind mismatch")
	// ErrKey: the container holds a different fingerprint key than
	// the caller asked for.
	ErrKey = errors.New("artifact: fingerprint key mismatch")
	// ErrEmpty: the container declares a zero-length payload; no
	// stage artifact serializes to nothing, so an empty payload is
	// corruption, not a value.
	ErrEmpty = errors.New("artifact: empty payload")
	// ErrBadName: Seal was handed a stage or key that does not fit
	// the fixed header fields.
	ErrBadName = errors.New("artifact: invalid stage or key")
)

// Seal wraps payload in an OBDA v1 container addressed by
// (stage, key). The stage must be 1–16 ASCII bytes, the key exactly
// KeySize bytes (the canonical fp16 hex fingerprint), and the payload
// non-empty.
func Seal(stage, key string, payload []byte) ([]byte, error) {
	if len(stage) == 0 || len(stage) > stageSize || strings.IndexByte(stage, 0) >= 0 {
		return nil, fmt.Errorf("%w: stage %q", ErrBadName, stage)
	}
	if len(key) != KeySize {
		return nil, fmt.Errorf("%w: key %q", ErrBadName, key)
	}
	if len(payload) == 0 {
		return nil, fmt.Errorf("%w: stage %s key %s", ErrEmpty, stage, key)
	}
	out := make([]byte, headerSize+len(payload))
	copy(out[offMagic:], Magic)
	binary.LittleEndian.PutUint32(out[offVersion:], Version)
	binary.LittleEndian.PutUint64(out[offLen:], uint64(len(payload)))
	binary.LittleEndian.PutUint64(out[offChecksum:], checksum(payload))
	copy(out[offStage:], stage)
	copy(out[offKey:], key)
	copy(out[headerSize:], payload)
	return out, nil
}

// Open validates a sealed container and returns its payload. The
// expected stage and key are part of the contract: a valid container
// holding a different artifact is rejected (ErrStage / ErrKey), so a
// renamed or cross-filled file can never be decoded as the wrong
// stage. The returned slice aliases data.
func Open(data []byte, stage, key string) ([]byte, error) {
	hdrStage, hdrKey, payload, err := open(data)
	if err != nil {
		return nil, err
	}
	if hdrStage != stage {
		return nil, fmt.Errorf("%w: have %q, want %q", ErrStage, hdrStage, stage)
	}
	if hdrKey != key {
		return nil, fmt.Errorf("%w: have %q, want %q", ErrKey, hdrKey, key)
	}
	return payload, nil
}

// Peek validates a sealed container and returns the (stage, key) it
// declares, without requiring the caller to know them up front — the
// anti-entropy sweep uses it to identify files on disk.
func Peek(data []byte) (stage, key string, err error) {
	stage, key, _, err = open(data)
	return stage, key, err
}

// open runs the full validation ladder. Order matters for error
// typing: structure first (truncation, magic, version), then identity
// (stage field well-formed), then integrity (length, checksum).
func open(data []byte) (stage, key string, payload []byte, err error) {
	if len(data) < headerSize {
		return "", "", nil, fmt.Errorf("%w: %d bytes < %d-byte header", ErrTruncated, len(data), headerSize)
	}
	if string(data[offMagic:offMagic+4]) != Magic {
		return "", "", nil, fmt.Errorf("%w: %q", ErrMagic, data[offMagic:offMagic+4])
	}
	if v := binary.LittleEndian.Uint32(data[offVersion:]); v != Version {
		return "", "", nil, fmt.Errorf("%w: version %d, this build reads %d", ErrVersion, v, Version)
	}
	stage = strings.TrimRight(string(data[offStage:offStage+stageSize]), "\x00")
	key = string(data[offKey : offKey+KeySize])
	n := binary.LittleEndian.Uint64(data[offLen:])
	if n == 0 {
		return "", "", nil, fmt.Errorf("%w: stage %s key %s", ErrEmpty, stage, key)
	}
	if uint64(len(data)-headerSize) != n {
		return "", "", nil, fmt.Errorf("%w: header declares %d payload bytes, have %d", ErrTruncated, n, len(data)-headerSize)
	}
	payload = data[headerSize:]
	if got, want := checksum(payload), binary.LittleEndian.Uint64(data[offChecksum:]); got != want {
		return "", "", nil, fmt.Errorf("%w: computed %016x, recorded %016x", ErrChecksum, got, want)
	}
	return stage, key, payload, nil
}

// checksum is FNV-64a over the payload, matching tablefile's choice:
// fast, dependency-free, and strong enough to catch torn writes and
// bit rot (crypto integrity is not the threat model — peers are
// trusted; the fingerprint key is the content address).
func checksum(p []byte) uint64 {
	h := fnv.New64a()
	h.Write(p)
	return h.Sum64()
}

// FileName returns the canonical disk-tier file name for an artifact.
func FileName(stage, key string) string {
	return stage + "-" + key + ".obda"
}

// ParseFileName inverts FileName; ok is false for foreign files (the
// sweep skips them rather than erroring on temp files or stray junk).
func ParseFileName(name string) (stage, key string, ok bool) {
	base, found := strings.CutSuffix(name, ".obda")
	if !found {
		return "", "", false
	}
	i := strings.IndexByte(base, '-')
	if i <= 0 || len(base)-i-1 != KeySize {
		return "", "", false
	}
	return base[:i], base[i+1:], true
}

// WriteFile persists a sealed container under dir with the
// temp-file + rename discipline tablefile established: a reader never
// observes a partially written artifact, and a crash leaves at worst
// an ignorable .obda-tmp-* file.
func WriteFile(dir, stage, key string, sealed []byte) error {
	f, err := os.CreateTemp(dir, ".obda-tmp-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	if _, err := f.Write(sealed); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, filepath.Join(dir, FileName(stage, key))); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}
