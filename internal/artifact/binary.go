package artifact

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Writer builds a deterministic little-endian payload. Floats are
// written as raw IEEE-754 bit patterns (math.Float64bits), never
// formatted — that is what makes Encode→Decode bit-identical, NaN
// payloads and negative zeros included.
type Writer struct {
	buf []byte
}

// Bytes returns the accumulated payload.
func (w *Writer) Bytes() []byte { return w.buf }

func (w *Writer) U64(v uint64) {
	w.buf = binary.LittleEndian.AppendUint64(w.buf, v)
}

func (w *Writer) I64(v int64) { w.U64(uint64(v)) }

func (w *Writer) Int(v int) { w.U64(uint64(int64(v))) }

func (w *Writer) F64(v float64) { w.U64(math.Float64bits(v)) }

func (w *Writer) Bool(v bool) {
	if v {
		w.buf = append(w.buf, 1)
	} else {
		w.buf = append(w.buf, 0)
	}
}

// String writes a length-prefixed byte string.
func (w *Writer) String(s string) {
	w.U64(uint64(len(s)))
	w.buf = append(w.buf, s...)
}

// F64s writes a length-prefixed float slice; nil and empty both
// round-trip (nil is distinguished so reflect.DeepEqual holds).
func (w *Writer) F64s(vs []float64) {
	w.sliceHeader(len(vs), vs == nil)
	for _, v := range vs {
		w.F64(v)
	}
}

// Ints writes a length-prefixed int slice.
func (w *Writer) Ints(vs []int) {
	w.sliceHeader(len(vs), vs == nil)
	for _, v := range vs {
		w.Int(v)
	}
}

// sliceHeader writes a presence flag plus length, preserving the
// nil/empty distinction.
func (w *Writer) sliceHeader(n int, isNil bool) {
	w.Bool(!isNil)
	w.U64(uint64(n))
}

// Reader consumes a Writer payload with sticky error handling: the
// first malformed field poisons the reader, every later read returns
// a zero value, and the final Err() check is the single place a
// decoder needs to test. No read ever panics on hostile input.
type Reader struct {
	data []byte
	off  int
	err  error
}

// NewReader wraps a payload for decoding.
func NewReader(data []byte) *Reader { return &Reader{data: data} }

// Err returns the first decode error, if any.
func (r *Reader) Err() error { return r.err }

// Rest returns the unconsumed remainder of the payload — decoders use
// its length to bound element counts before allocating.
func (r *Reader) Rest() []byte { return r.data[r.off:] }

// Fail poisons the reader with a decoder-supplied error (first error
// wins, matching the sticky-error contract).
func (r *Reader) Fail(format string, args ...any) { r.fail(format, args...) }

// Close verifies the payload was fully consumed — trailing bytes mean
// the payload and the decoder disagree about the schema.
func (r *Reader) Close() error {
	if r.err != nil {
		return r.err
	}
	if r.off != len(r.data) {
		r.fail("payload has %d trailing bytes", len(r.data)-r.off)
	}
	return r.err
}

func (r *Reader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("artifact: payload: "+format, args...)
	}
}

func (r *Reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if len(r.data)-r.off < n {
		r.fail("%w: need %d bytes at offset %d, have %d", ErrTruncated, n, r.off, len(r.data)-r.off)
		return nil
	}
	b := r.data[r.off : r.off+n]
	r.off += n
	return b
}

func (r *Reader) U64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (r *Reader) I64() int64 { return int64(r.U64()) }

func (r *Reader) Int() int { return int(r.I64()) }

func (r *Reader) F64() float64 { return math.Float64frombits(r.U64()) }

func (r *Reader) Bool() bool {
	b := r.take(1)
	if b == nil {
		return false
	}
	switch b[0] {
	case 0:
		return false
	case 1:
		return true
	default:
		r.fail("invalid bool byte %d at offset %d", b[0], r.off-1)
		return false
	}
}

func (r *Reader) String() string {
	n := r.sliceLen(1)
	if n < 0 {
		return ""
	}
	b := r.take(n)
	return string(b)
}

func (r *Reader) F64s() []float64 {
	n := r.header(8)
	if n < 0 {
		return nil
	}
	vs := make([]float64, n)
	for i := range vs {
		vs[i] = r.F64()
	}
	return vs
}

func (r *Reader) Ints() []int {
	n := r.header(8)
	if n < 0 {
		return nil
	}
	vs := make([]int, n)
	for i := range vs {
		vs[i] = r.Int()
	}
	return vs
}

// header reads a sliceHeader; -1 means nil slice (or poisoned reader).
func (r *Reader) header(elemSize int) int {
	present := r.Bool()
	n := r.sliceLen(elemSize)
	if r.err != nil || !present {
		return -1
	}
	return n
}

// sliceLen reads a length prefix and bounds it against the remaining
// payload, so a corrupt length can neither allocate gigabytes nor
// overflow an int.
func (r *Reader) sliceLen(elemSize int) int {
	n := r.U64()
	if r.err != nil {
		return -1
	}
	if limit := uint64(len(r.data)-r.off) / uint64(elemSize); n > limit {
		r.fail("%w: length %d exceeds remaining payload", ErrTruncated, n)
		return -1
	}
	return int(n)
}
