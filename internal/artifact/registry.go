package artifact

import (
	"fmt"
	"sort"
	"sync"
)

// Codec serializes one stage's artifact type. Encode receives the
// live artifact (the concrete pointer type the stage caches) and
// returns payload bytes; Decode inverts it, returning the same
// concrete type. Both directions must be bit-identical: DeepEqual of
// value and Decode(Encode(value)) is gated by tests for every
// registered stage.
type Codec struct {
	Encode func(v any) ([]byte, error)
	Decode func(payload []byte) (any, error)
}

var (
	regMu    sync.RWMutex
	registry = map[string]Codec{}
)

// Register installs the codec for a stage. Stages register from the
// package that owns the artifact type (the root obdrel package, at
// init), which is what lets unexported artifact types participate.
// Double registration is a programming error and panics.
func Register(stage string, c Codec) {
	if c.Encode == nil || c.Decode == nil {
		panic("artifact: Register " + stage + ": nil codec func")
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[stage]; dup {
		panic("artifact: duplicate codec for stage " + stage)
	}
	registry[stage] = c
}

// Lookup returns the stage's codec. Stages without a codec are simply
// not serializable — the tier machinery skips disk and peer for them
// and they behave exactly as before this format existed.
func Lookup(stage string) (Codec, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	c, ok := registry[stage]
	return c, ok
}

// RegisteredStages lists every stage with a codec, sorted.
func RegisteredStages() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]string, 0, len(registry))
	for s := range registry {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// Encode serializes a live artifact into a sealed container.
func Encode(stage, key string, v any) ([]byte, error) {
	c, ok := Lookup(stage)
	if !ok {
		return nil, fmt.Errorf("artifact: no codec for stage %s", stage)
	}
	payload, err := c.Encode(v)
	if err != nil {
		return nil, fmt.Errorf("artifact: encode %s %s: %w", stage, key, err)
	}
	return Seal(stage, key, payload)
}

// Decode opens a sealed container addressed by (stage, key) and
// deserializes its payload into the stage's live artifact type.
func Decode(stage, key string, sealed []byte) (any, error) {
	c, ok := Lookup(stage)
	if !ok {
		return nil, fmt.Errorf("artifact: no codec for stage %s", stage)
	}
	payload, err := Open(sealed, stage, key)
	if err != nil {
		return nil, err
	}
	v, err := c.Decode(payload)
	if err != nil {
		return nil, fmt.Errorf("artifact: decode %s %s: %w", stage, key, err)
	}
	return v, nil
}
