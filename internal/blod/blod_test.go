package blod

import (
	"math"
	"math/rand"
	"testing"

	"obdrel/internal/floorplan"
	"obdrel/internal/grid"
	"obdrel/internal/stats"
)

func approx(a, b, tol float64) bool {
	d := math.Abs(a - b)
	return d <= tol || d <= tol*math.Max(math.Abs(a), math.Abs(b))
}

// testSetup builds a 4×4-grid variation model and a two-block design:
// a large left-half block spanning many grids and a small block nested
// inside a single grid (the degenerate case).
func testSetup(t *testing.T) (*floorplan.Design, *grid.Model, *grid.PCA) {
	t.Helper()
	sigmaTot := 2.2 * 0.04 / 3
	sg, ss, se, err := grid.VarianceBudget(sigmaTot, 0.5, 0.25, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	m, err := grid.NewModel(2.2, 1, 1, 4, 4, sg, ss, se, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	p, err := m.ComputePCA(1)
	if err != nil {
		t.Fatal(err)
	}
	d := &floorplan.Design{
		Name: "blodtest", W: 1, H: 1,
		Blocks: []floorplan.Block{
			{Name: "wide", X: 0, Y: 0, W: 0.5, H: 1, Devices: 5000, Activity: 0.5},
			{Name: "tiny", X: 0.80, Y: 0.30, W: 0.10, H: 0.10, Devices: 500, Activity: 0.5},
		},
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	return d, m, p
}

func TestCharacterizeBasics(t *testing.T) {
	d, m, _ := testSetup(t)
	c, err := Characterize(d, m)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Blocks) != 2 {
		t.Fatalf("blocks = %d", len(c.Blocks))
	}
	for i := range c.Blocks {
		bc := &c.Blocks[i]
		// Grid weights must sum to the device count.
		sum := 0.0
		for _, w := range bc.Weights {
			sum += w
		}
		if !approx(sum, bc.MJ, 1e-9) {
			t.Errorf("block %s: weights sum %v, devices %v", bc.Name, sum, bc.MJ)
		}
		if !approx(bc.U0, m.U0, 1e-12) {
			t.Errorf("block %s: U0 = %v", bc.Name, bc.U0)
		}
		if !approx(bc.V0, m.SigmaE*m.SigmaE, 1e-15) {
			t.Errorf("block %s: V0 = %v", bc.Name, bc.V0)
		}
	}
	// The wide block spans 8 grids; the tiny one exactly 1.
	if got := len(c.Blocks[0].Grids); got != 8 {
		t.Errorf("wide block overlaps %d grids, want 8", got)
	}
	if got := len(c.Blocks[1].Grids); got != 1 {
		t.Errorf("tiny block overlaps %d grids, want 1", got)
	}
}

func TestDegenerateSingleGridBlock(t *testing.T) {
	d, m, p := testSetup(t)
	c, err := Characterize(d, m)
	if err != nil {
		t.Fatal(err)
	}
	tiny := &c.Blocks[1]
	if !tiny.Degenerate {
		t.Fatal("single-grid block should be degenerate")
	}
	vd, err := tiny.VDist()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := vd.(stats.Degenerate); !ok {
		t.Fatalf("VDist = %T, want Degenerate", vd)
	}
	if vd.Mean() != tiny.V0 {
		t.Errorf("degenerate mean %v, want %v", vd.Mean(), tiny.V0)
	}
	// v samples are constant, u still varies.
	rng := rand.New(rand.NewSource(1))
	shifts := p.GridShifts(p.SampleComponents(rng))
	u, v := tiny.UVFromShifts(shifts)
	if v != tiny.V0 {
		t.Errorf("degenerate v sample = %v", v)
	}
	if u == tiny.U0 {
		t.Error("degenerate block's u should still depend on the sample")
	}
}

func TestUVarianceWithinModelBounds(t *testing.T) {
	// The shared inter-die part never averages out, so Var(u_j) ≥
	// σ_g²; and it can never exceed σ_g² + σ_s².
	d, m, _ := testSetup(t)
	c, err := Characterize(d, m)
	if err != nil {
		t.Fatal(err)
	}
	for i := range c.Blocks {
		v := c.Blocks[i].USigma * c.Blocks[i].USigma
		lo := m.SigmaG * m.SigmaG
		hi := m.SigmaG*m.SigmaG + m.SigmaS*m.SigmaS
		if v < lo*0.99 || v > hi*1.01 {
			t.Errorf("block %s: Var(u) = %v outside [%v, %v]", c.Blocks[i].Name, v, lo, hi)
		}
	}
}

// TestMomentsAgainstDeviceLevelMC is the package's central
// correctness test: it simulates the actual device population
// (explicit per-device thickness with grid-assigned correlated shifts
// and independent noise), computes the empirical sample mean/variance
// per chip, and compares their distribution moments against the
// analytic BLOD characterization.
func TestMomentsAgainstDeviceLevelMC(t *testing.T) {
	d, m, p := testSetup(t)
	c, err := Characterize(d, m)
	if err != nil {
		t.Fatal(err)
	}
	wide := &c.Blocks[0]
	grids, counts := wide.DeviceAllocation()
	total := 0
	for _, n := range counts {
		total += n
	}
	if total != int(wide.MJ) {
		t.Fatalf("allocation sums to %d, want %v", total, wide.MJ)
	}

	rng := rand.New(rand.NewSource(21))
	nChips := 3000
	us := make([]float64, nChips)
	vs := make([]float64, nChips)
	for chip := 0; chip < nChips; chip++ {
		shifts := p.GridShifts(p.SampleComponents(rng))
		var sum, sum2 float64
		for gi, g := range grids {
			base := m.U0 + shifts[g]
			for i := 0; i < counts[gi]; i++ {
				x := base + m.SigmaE*rng.NormFloat64()
				sum += x
				sum2 += x * x
			}
		}
		n := float64(total)
		mean := sum / n
		us[chip] = mean
		vs[chip] = (sum2 - n*mean*mean) / (n - 1)
	}

	mu, varU, err := stats.MeanVariance(us)
	if err != nil {
		t.Fatal(err)
	}
	mv, varV, err := stats.MeanVariance(vs)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(mu, wide.U0, 1e-3) {
		t.Errorf("E[u] = %v, want %v", mu, wide.U0)
	}
	if !approx(varU, wide.USigma*wide.USigma, 0.08) {
		t.Errorf("Var[u] = %v, analytic %v", varU, wide.USigma*wide.USigma)
	}
	if !approx(mv, wide.VMean(), 0.02) {
		t.Errorf("E[v] = %v, analytic %v", mv, wide.VMean())
	}
	if !approx(varV, wide.VVariance(), 0.15) {
		t.Errorf("Var[v] = %v, analytic %v", varV, wide.VVariance())
	}
}

func TestChiSquareApproxMatchesQuadForm(t *testing.T) {
	// The χ² moment match must track the empirical distribution of
	// v_j = V0 + zᵀBz — the Fig. 8 comparison.
	d, m, p := testSetup(t)
	c, err := Characterize(d, m)
	if err != nil {
		t.Fatal(err)
	}
	wide := &c.Blocks[0]
	if wide.Degenerate {
		t.Fatal("wide block should not be degenerate")
	}
	rng := rand.New(rand.NewSource(5))
	n := 40000
	vs := make([]float64, n)
	for i := range vs {
		_, vs[i] = wide.UVFromShifts(p.GridShifts(p.SampleComponents(rng)))
	}
	vd, err := wide.VDist()
	if err != nil {
		t.Fatal(err)
	}
	e, err := stats.NewECDF(vs)
	if err != nil {
		t.Fatal(err)
	}
	// The χ² is an approximation, not the exact law; Fig. 8 shows
	// close but not perfect agreement. KS < 0.05 captures that.
	if ks := e.KSDistance(vd.CDF); ks > 0.05 {
		t.Errorf("χ² approximation KS distance = %v", ks)
	}
	// Moments are matched exactly by construction.
	if !approx(vd.Mean(), wide.VMean(), 1e-9) {
		t.Errorf("χ² mean %v vs exact %v", vd.Mean(), wide.VMean())
	}
	if !approx(vd.Variance(), wide.VVariance(), 1e-9) {
		t.Errorf("χ² variance %v vs exact %v", vd.Variance(), wide.VVariance())
	}
	// Sampled mean/variance of v agree with the analytics too.
	mv, varV, err := stats.MeanVariance(vs)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(mv, wide.VMean(), 0.02) || !approx(varV, wide.VVariance(), 0.1) {
		t.Errorf("sampled v moments (%v, %v) vs analytic (%v, %v)",
			mv, varV, wide.VMean(), wide.VVariance())
	}
}

func TestLemmaUVUncorrelated(t *testing.T) {
	// The paper's Lemma: E[u_j v_j] = E[u_j]E[v_j]. The MC-estimated
	// correlation must vanish.
	d, m, p := testSetup(t)
	c, err := Characterize(d, m)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(77))
	samples := make([][]float64, 50000)
	for i := range samples {
		samples[i] = p.GridShifts(p.SampleComponents(rng))
	}
	_, corr, err := c.Blocks[0].UVCovarianceMC(samples)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(corr) > 0.02 {
		t.Errorf("corr(u, v) = %v, want ~0 (Lemma)", corr)
	}
}

func TestMutualInformationSmall(t *testing.T) {
	// The Fig. 6/7 evidence: the joint PDF of (u, v) is close to the
	// product of marginals — mutual information ~0.003 nats.
	d, m, p := testSetup(t)
	c, err := Characterize(d, m)
	if err != nil {
		t.Fatal(err)
	}
	wide := &c.Blocks[0]
	rng := rand.New(rand.NewSource(99))
	n := 100000
	ud, err := wide.UDist()
	if err != nil {
		t.Fatal(err)
	}
	vd, err := wide.VDist()
	if err != nil {
		t.Fatal(err)
	}
	h, err := stats.NewHistogram2D(
		ud.Quantile(1e-4), ud.Quantile(1-1e-4), 24,
		vd.Quantile(1e-4), vd.Quantile(1-1e-4), 24)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		u, v := wide.UVFromShifts(p.GridShifts(p.SampleComponents(rng)))
		h.Add(u, v)
	}
	if mi := h.MutualInformation(); mi > 0.02 {
		t.Errorf("mutual information = %v, want ≲ 0.02", mi)
	}
}

func TestUDistProper(t *testing.T) {
	d, m, _ := testSetup(t)
	c, err := Characterize(d, m)
	if err != nil {
		t.Fatal(err)
	}
	for i := range c.Blocks {
		ud, err := c.Blocks[i].UDist()
		if err != nil {
			t.Fatal(err)
		}
		if !approx(ud.Mu, m.U0, 1e-12) || !(ud.Sigma > 0) {
			t.Errorf("block %d UDist = %+v", i, ud)
		}
	}
}

func TestDeviceAllocationExact(t *testing.T) {
	d, m, _ := testSetup(t)
	c, err := Characterize(d, m)
	if err != nil {
		t.Fatal(err)
	}
	for i := range c.Blocks {
		bc := &c.Blocks[i]
		grids, counts := bc.DeviceAllocation()
		if len(grids) != len(counts) {
			t.Fatalf("block %s: mismatched allocation lengths", bc.Name)
		}
		total := 0
		for _, n := range counts {
			if n < 0 {
				t.Fatalf("block %s: negative count", bc.Name)
			}
			total += n
		}
		if total != int(bc.MJ) {
			t.Errorf("block %s: allocated %d of %v devices", bc.Name, total, bc.MJ)
		}
	}
}

func TestCharacterizeValidation(t *testing.T) {
	d, m, _ := testSetup(t)
	bad := *d
	bad.W = 2 // mismatched die
	bad.Blocks = append([]floorplan.Block(nil), d.Blocks...)
	if _, err := Characterize(&bad, m); err == nil {
		t.Error("mismatched die should error")
	}
	empty := &floorplan.Design{Name: "e", W: 1, H: 1}
	if _, err := Characterize(empty, m); err == nil {
		t.Error("empty design should error")
	}
}

func BenchmarkCharacterizeC6(b *testing.B) {
	sigmaTot := 2.2 * 0.04 / 3
	sg, ss, se, _ := grid.VarianceBudget(sigmaTot, 0.5, 0.25, 0.25)
	m, err := grid.NewModel(2.2, 1, 1, 25, 25, sg, ss, se, 0.5)
	if err != nil {
		b.Fatal(err)
	}
	d := floorplan.C6()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Characterize(d, m); err != nil {
			b.Fatal(err)
		}
	}
}
