// Package blod implements the block-level oxide-thickness
// distribution (BLOD) characterization at the heart of the paper
// (Section IV). For every temperature-uniform block j the millions of
// per-device thickness random variables are projected onto just two:
// the BLOD sample mean u_j and sample variance v_j.
//
// With the PCA canonical form x_i = u0 + Λ_{g(i)}·z + λ_r·ε_i
// (Eq. 2), where g(i) is the correlation grid holding device i and
// w_{j,l} the (fractional) device count of block j in grid l:
//
//	u_j = u0 + ū_j·z,            ū_j = (1/m_j) Σ_l w_{j,l} Λ_l        (Eq. 22)
//	v_j ≈ λ_r² + zᵀ B_j z,       B_j = (1/(m_j-1)) Σ_l w_{j,l} (Λ_l-ū_j)(Λ_l-ū_j)ᵀ  (Eq. 24)
//
// Two sampling-noise terms are neglected for large m_j, exactly as the
// paper neglects u_{j,n+1} = λ_r/√m_j: the ε̄ contribution to u_j and
// the O(λ_r²√(2/m_j)) χ²-fluctuation of the independent component in
// v_j.
//
// Everything the analytic engines need reduces to inner products of
// loading rows, which equal covariance entries (Λ·Λᵀ = C). The
// characterization therefore works directly on the n×n grid
// covariance in O(G²) per block (G = grids overlapped by the block)
// and never materializes the K×K quadratic-form matrix:
//
//	Var(u_j)  = ū_j·ū_j           = Σ_{l,l'} f_l f_{l'} C_{l,l'}
//	tr(B_j)   = Σ_l h_l M_{l,l}
//	tr(B_j²)  = Σ_{l,l'} h_l h_{l'} M_{l,l'}²
//
// with f_l = w_l/m_j, h_l = w_l/(m_j-1) and the centered Gram matrix
// M_{l,l'} = (Λ_l-ū)·(Λ_{l'}-ū) = C_{l,l'} - r_l - r_{l'} + q,
// r_l = Σ_{l'} f_{l'} C_{l,l'}, q = Σ_{l,l'} f_l f_{l'} C_{l,l'}.
//
// Note on Eq. (24): the printed coefficient formula in the paper has a
// sign typo (a variance must be a positive semi-definite form); this
// package uses the exact derivation above. Similarly, Eq. (30)'s
// printed â/b̂ expressions are garbled — the implemented values are
// the standard Satterthwaite/Yuan–Bentler moment match
// â = tr(B²)/tr(B), b̂ = tr(B)²/tr(B²), which reproduces the mean
// tr(B) and variance 2·tr(B²) of the quadratic form and is what the
// paper's Fig. 8 demonstrates.
package blod

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"

	"obdrel/internal/floorplan"
	"obdrel/internal/grid"
	"obdrel/internal/stats"
)

// BlockChar is the BLOD characterization of one block.
type BlockChar struct {
	// Name echoes the block name for reporting.
	Name string
	// MJ is the block's device count m_j.
	MJ float64
	// AJ is the block's total normalized oxide area A_j (equal to the
	// device count with unit-area devices).
	AJ float64
	// U0 is the nominal thickness u_{j,0}.
	U0 float64
	// USigma is the standard deviation of the sample mean u_j.
	USigma float64
	// V0 is the deterministic part of v_j (λ_r² = σ_ε²).
	V0 float64
	// TrB and TrB2 are tr(B_j) and tr(B_j²); AHat and BHat the χ²
	// moment-match parameters (Eq. 29–30). Degenerate reports whether
	// the spatial quadratic form vanishes (block within one grid), in
	// which case v_j = V0 deterministically.
	TrB, TrB2  float64
	AHat, BHat float64
	Degenerate bool
	// Grids and Weights list the overlapped correlation grids and the
	// fractional device counts w_{j,l}, aligned by index and sorted by
	// grid for determinism.
	Grids   []int
	Weights []float64
	// NomOff holds each overlapped grid's deterministic nominal
	// offset from the block mean (zero without a wafer pattern):
	// NominalAt(grid) - U0. The offsets contribute a deterministic
	// term Σ h_l·NomOff_l² to V0; the zero-mean cross term between
	// offsets and the spatial field is kept exactly in UVFromShifts
	// but neglected in the analytic marginal of v_j (it slightly
	// widens the true distribution for strong patterns).
	NomOff []float64
}

// Characterization is the full-chip BLOD model: one BlockChar per
// design block, sharing one variation model.
type Characterization struct {
	Blocks []BlockChar
	Model  *grid.Model
}

// Characterize builds the BLOD characterization of a design under a
// thickness-variation model. The design and model must agree on die
// dimensions.
func Characterize(d *floorplan.Design, m *grid.Model) (*Characterization, error) {
	return CharacterizeCtx(context.Background(), d, m)
}

// CharacterizeCtx is Characterize with cancellation checkpoints in the
// covariance assembly and between blocks.
func CharacterizeCtx(ctx context.Context, d *floorplan.Design, m *grid.Model) (*Characterization, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if math.Abs(d.W-m.W) > 1e-9 || math.Abs(d.H-m.H) > 1e-9 {
		return nil, fmt.Errorf("blod: design %v×%v does not match model die %v×%v", d.W, d.H, m.W, m.H)
	}
	cov, err := m.CovarianceCtx(ctx, 1)
	if err != nil {
		return nil, err
	}
	c := &Characterization{Model: m, Blocks: make([]BlockChar, len(d.Blocks))}
	for i := range d.Blocks {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		bc, err := characterizeBlock(&d.Blocks[i], m, cov)
		if err != nil {
			return nil, fmt.Errorf("blod: block %q: %w", d.Blocks[i].Name, err)
		}
		c.Blocks[i] = *bc
	}
	return c, nil
}

// characterizeBlock computes one block's (u_j, v_j) model from the
// grid covariance.
func characterizeBlock(b *floorplan.Block, m *grid.Model, cov covAt) (*BlockChar, error) {
	grids, weights := gridOverlapWeights(b, m)
	if len(grids) == 0 {
		return nil, errors.New("block overlaps no correlation grid")
	}
	mj := float64(b.Devices)
	bc := &BlockChar{
		Name:    b.Name,
		MJ:      mj,
		AJ:      b.NormalizedOxideArea(),
		V0:      m.SigmaE * m.SigmaE,
		Grids:   grids,
		Weights: weights,
	}
	g := len(grids)
	denom := mj - 1
	if denom <= 0 {
		denom = 1
	}
	// Block nominal: the device-weighted mean of the per-grid nominal
	// thicknesses (equal to u0 everywhere without a wafer pattern).
	bc.NomOff = make([]float64, g)
	for a := 0; a < g; a++ {
		bc.NomOff[a] = m.NominalAt(grids[a])
		bc.U0 += weights[a] / mj * bc.NomOff[a]
	}
	for a := 0; a < g; a++ {
		bc.NomOff[a] -= bc.U0
		// The systematic within-block spread acts as a deterministic
		// addition to the BLOD variance.
		bc.V0 += weights[a] / denom * bc.NomOff[a] * bc.NomOff[a]
	}
	// r_l = Σ_{l'} f_{l'} C_{l,l'} and q = Σ_l f_l r_l.
	r := make([]float64, g)
	q := 0.0
	for a := 0; a < g; a++ {
		for bb := 0; bb < g; bb++ {
			r[a] += weights[bb] / mj * cov.At(grids[a], grids[bb])
		}
		q += weights[a] / mj * r[a]
	}
	bc.USigma = math.Sqrt(math.Max(q, 0))
	// Centered Gram matrix M and the traces of B.
	for a := 0; a < g; a++ {
		ha := weights[a] / denom
		maa := cov.At(grids[a], grids[a]) - 2*r[a] + q
		bc.TrB += ha * maa
		for bb := 0; bb < g; bb++ {
			mab := cov.At(grids[a], grids[bb]) - r[a] - r[bb] + q
			hb := weights[bb] / denom
			bc.TrB2 += ha * hb * mab * mab
		}
	}
	if bc.TrB < 0 {
		bc.TrB = 0
	}
	// Degenerate when the spatial spread within the block is
	// negligible against the independent component.
	if bc.TrB <= 1e-14*bc.V0 || bc.TrB2 <= 0 {
		bc.Degenerate = true
		bc.TrB, bc.TrB2 = 0, 0
		return bc, nil
	}
	bc.AHat = bc.TrB2 / bc.TrB
	bc.BHat = bc.TrB * bc.TrB / bc.TrB2
	return bc, nil
}

// covAt abstracts the covariance lookup (satisfied by linalg.Matrix).
type covAt interface {
	At(i, j int) float64
}

// gridOverlapWeights distributes the block's devices over the
// correlation grids proportionally to geometric overlap, returning
// parallel slices sorted by grid index.
func gridOverlapWeights(b *floorplan.Block, m *grid.Model) (grids []int, weights []float64) {
	area := b.Area()
	if area <= 0 {
		return nil, nil
	}
	density := float64(b.Devices) / area
	for g := 0; g < m.NumGrids(); g++ {
		x0, y0, x1, y1 := m.GridRect(g)
		ox := overlap1D(b.X, b.X+b.W, x0, x1)
		oy := overlap1D(b.Y, b.Y+b.H, y0, y1)
		if ox > 0 && oy > 0 {
			grids = append(grids, g)
			weights = append(weights, density*ox*oy)
		}
	}
	// Grid indices ascend by construction; keep the invariant explicit
	// for future-proofing.
	if !sort.IntsAreSorted(grids) {
		sort.Sort(&byGrid{grids, weights})
	}
	return grids, weights
}

type byGrid struct {
	g []int
	w []float64
}

func (s *byGrid) Len() int           { return len(s.g) }
func (s *byGrid) Less(i, j int) bool { return s.g[i] < s.g[j] }
func (s *byGrid) Swap(i, j int) {
	s.g[i], s.g[j] = s.g[j], s.g[i]
	s.w[i], s.w[j] = s.w[j], s.w[i]
}

func overlap1D(a0, a1, b0, b1 float64) float64 {
	lo := math.Max(a0, b0)
	hi := math.Min(a1, b1)
	if hi <= lo {
		return 0
	}
	return hi - lo
}

// UDist returns the marginal distribution of the sample mean u_j:
// Normal(u0, USigma). For a block with no correlated variation the
// sigma degenerates; a tiny floor keeps the distribution proper.
func (bc *BlockChar) UDist() (stats.Normal, error) {
	sigma := bc.USigma
	if sigma <= 0 {
		sigma = 1e-12 * math.Max(bc.U0, 1)
	}
	return stats.NewNormal(bc.U0, sigma)
}

// VDist returns the marginal distribution of the sample variance v_j:
// the shifted-scaled χ² of Eq. 29, or a point mass at V0 when the
// block is degenerate.
func (bc *BlockChar) VDist() (stats.Dist, error) {
	if bc.Degenerate {
		return stats.Degenerate{V: bc.V0}, nil
	}
	return stats.NewShiftedScaledChi2(bc.V0, bc.AHat, bc.BHat)
}

// VMean and VVariance return the exact first two moments of v_j
// (before the χ² approximation): mean V0 + tr(B), variance 2·tr(B²).
func (bc *BlockChar) VMean() float64 { return bc.V0 + bc.TrB }

// VVariance returns the exact variance of the quadratic form.
func (bc *BlockChar) VVariance() float64 { return 2 * bc.TrB2 }

// UVFromShifts evaluates (u_j, v_j) for one chip sample given the
// per-grid correlated shifts s = Λ·z (from grid.PCA.GridShifts):
//
//	u_j = ū0 + Σ_l f_l s_l
//	v_j = λ_r² + Σ_l h_l (NomOff_l + s_l - (u_j - ū0))²
//
// which equals the (pattern-shifted) quadratic form without
// materializing B; with no wafer pattern the offsets are zero and
// this is exactly v_j = λ_r² + zᵀB_j z.
func (bc *BlockChar) UVFromShifts(shifts []float64) (u, v float64) {
	ub := 0.0
	for i, g := range bc.Grids {
		ub += bc.Weights[i] / bc.MJ * shifts[g]
	}
	u = bc.U0 + ub
	if bc.Degenerate {
		return u, bc.V0
	}
	denom := bc.MJ - 1
	if denom <= 0 {
		denom = 1
	}
	// V0 already contains the deterministic pattern spread; remove it
	// here because the loop below rebuilds the exact squared sum with
	// the offsets inside.
	v = bc.V0 - patternSpread(bc, denom)
	for i, g := range bc.Grids {
		d := bc.NomOff[i] + shifts[g] - ub
		v += bc.Weights[i] / denom * d * d
	}
	return u, v
}

// patternSpread returns the deterministic Σ h_l·NomOff_l² term folded
// into V0, so sampling can rebuild the exact squared sum.
func patternSpread(bc *BlockChar, denom float64) float64 {
	s := 0.0
	for i := range bc.NomOff {
		s += bc.Weights[i] / denom * bc.NomOff[i] * bc.NomOff[i]
	}
	return s
}

// UVCovarianceMC estimates cov(u_j, v_j) and the correlation from
// per-grid shift samples — used to verify the paper's Lemma
// (E[u_j·v_j] = E[u_j]·E[v_j]) numerically.
func (bc *BlockChar) UVCovarianceMC(shiftSamples [][]float64) (cov, corr float64, err error) {
	if len(shiftSamples) < 2 {
		return 0, 0, errors.New("blod: need at least two samples")
	}
	us := make([]float64, len(shiftSamples))
	vs := make([]float64, len(shiftSamples))
	for i, s := range shiftSamples {
		us[i], vs[i] = bc.UVFromShifts(s)
	}
	mu, _, err := stats.MeanVariance(us)
	if err != nil {
		return 0, 0, err
	}
	mv, _, err := stats.MeanVariance(vs)
	if err != nil {
		return 0, 0, err
	}
	for i := range us {
		cov += (us[i] - mu) * (vs[i] - mv)
	}
	cov /= float64(len(us) - 1)
	corr, err = stats.Correlation(us, vs)
	return cov, corr, err
}

// DeviceAllocation returns an integer per-grid device allocation for
// the block using largest-remainder rounding of the fractional
// weights; the counts sum exactly to the block's device count. The
// device-level Monte-Carlo engine uses this to place devices.
func (bc *BlockChar) DeviceAllocation() (grids []int, counts []int) {
	g := len(bc.Grids)
	grids = append([]int(nil), bc.Grids...)
	counts = make([]int, g)
	target := int(math.Round(bc.MJ))
	type rem struct {
		i int
		f float64
	}
	rems := make([]rem, g)
	assigned := 0
	for i, w := range bc.Weights {
		whole := int(math.Floor(w))
		counts[i] = whole
		assigned += whole
		rems[i] = rem{i, w - float64(whole)}
	}
	sort.Slice(rems, func(a, b int) bool { return rems[a].f > rems[b].f })
	for k := 0; assigned < target && k < len(rems); k++ {
		counts[rems[k].i]++
		assigned++
	}
	// Rounding can only leave a deficit of < g; top up cyclically in
	// the pathological case, and trim any excess.
	for i := 0; assigned < target; i = (i + 1) % g {
		counts[i]++
		assigned++
	}
	for i := 0; assigned > target; i = (i + 1) % g {
		if counts[i] > 0 {
			counts[i]--
			assigned--
		}
	}
	return grids, counts
}
