package blod

import (
	"math/rand"
	"testing"

	"obdrel/internal/floorplan"
	"obdrel/internal/grid"
	"obdrel/internal/stats"
)

// patternSetup builds a model with a pronounced wafer bowl pattern on
// an off-center die, so the systematic within-die gradient is
// comparable to the random components.
func patternSetup(t *testing.T) (*floorplan.Design, *grid.Model, *grid.PCA) {
	t.Helper()
	d, m, _ := testSetup(t)
	m.Pattern = &grid.WaferPattern{DieX: 0.7, DieY: 0.2, DieSpan: 0.3, Bowl: 0.05, SlantX: 0.01}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	p, err := m.ComputePCA(1)
	if err != nil {
		t.Fatal(err)
	}
	return d, m, p
}

func TestPatternShiftsBlockNominal(t *testing.T) {
	d, m, _ := patternSetup(t)
	c, err := Characterize(d, m)
	if err != nil {
		t.Fatal(err)
	}
	for i := range c.Blocks {
		bc := &c.Blocks[i]
		// An off-center die under a bowl is thicker than u0.
		if !(bc.U0 > m.U0) {
			t.Errorf("block %s: U0 = %v not shifted above %v", bc.Name, bc.U0, m.U0)
		}
		// The systematic spread adds to V0.
		if len(bc.Grids) > 1 && !(bc.V0 > m.SigmaE*m.SigmaE) {
			t.Errorf("block %s: V0 = %v not widened by the pattern", bc.Name, bc.V0)
		}
	}
}

// TestPatternMomentsAgainstDeviceLevelMC repeats the central moment
// check under an active wafer pattern: explicit per-device simulation
// with per-grid nominals must agree with the analytic block moments.
func TestPatternMomentsAgainstDeviceLevelMC(t *testing.T) {
	d, m, p := patternSetup(t)
	c, err := Characterize(d, m)
	if err != nil {
		t.Fatal(err)
	}
	wide := &c.Blocks[0]
	grids, counts := wide.DeviceAllocation()
	total := 0
	for _, n := range counts {
		total += n
	}
	rng := rand.New(rand.NewSource(77))
	nChips := 3000
	us := make([]float64, nChips)
	vs := make([]float64, nChips)
	for chip := 0; chip < nChips; chip++ {
		shifts := p.GridShifts(p.SampleComponents(rng))
		var sum, sum2 float64
		for gi, g := range grids {
			base := m.NominalAt(g) + shifts[g]
			for i := 0; i < counts[gi]; i++ {
				x := base + m.SigmaE*rng.NormFloat64()
				sum += x
				sum2 += x * x
			}
		}
		n := float64(total)
		mean := sum / n
		us[chip] = mean
		vs[chip] = (sum2 - n*mean*mean) / (n - 1)
	}
	mu, varU, err := stats.MeanVariance(us)
	if err != nil {
		t.Fatal(err)
	}
	mv, _, err := stats.MeanVariance(vs)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(mu, wide.U0, 1e-3) {
		t.Errorf("E[u] = %v, analytic %v", mu, wide.U0)
	}
	if !approx(varU, wide.USigma*wide.USigma, 0.08) {
		t.Errorf("Var[u] = %v, analytic %v", varU, wide.USigma*wide.USigma)
	}
	if !approx(mv, wide.VMean(), 0.02) {
		t.Errorf("E[v] = %v, analytic %v", mv, wide.VMean())
	}
}

// TestPatternUVExactSampling: UVFromShifts must match a brute-force
// per-grid evaluation including the nominal offsets.
func TestPatternUVExactSampling(t *testing.T) {
	d, m, p := patternSetup(t)
	c, err := Characterize(d, m)
	if err != nil {
		t.Fatal(err)
	}
	wide := &c.Blocks[0]
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 20; trial++ {
		shifts := p.GridShifts(p.SampleComponents(rng))
		u, v := wide.UVFromShifts(shifts)
		// Brute force over the grid populations (infinite-device
		// limit of the within-grid independent component).
		var ub float64
		for i, g := range wide.Grids {
			ub += wide.Weights[i] / wide.MJ * (m.NominalAt(g) + shifts[g])
		}
		if !approx(u, ub, 1e-12) {
			t.Fatalf("u = %v, brute force %v", u, ub)
		}
		denom := wide.MJ - 1
		vb := m.SigmaE * m.SigmaE
		for i, g := range wide.Grids {
			dd := m.NominalAt(g) + shifts[g] - ub
			vb += wide.Weights[i] / denom * dd * dd
		}
		if !approx(v, vb, 1e-10) {
			t.Fatalf("v = %v, brute force %v", v, vb)
		}
	}
}

// TestQuadTreeCharacterization runs the BLOD machinery under the
// quad-tree correlation structure and re-checks the moment identities
// against device-level sampling.
func TestQuadTreeCharacterization(t *testing.T) {
	d, m, _ := testSetup(t)
	m.Structure = grid.StructQuadTree
	m.QTLevels = 2
	m.QTDecay = 0.5
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	p, err := m.ComputePCA(1)
	if err != nil {
		t.Fatal(err)
	}
	c, err := Characterize(d, m)
	if err != nil {
		t.Fatal(err)
	}
	wide := &c.Blocks[0]
	rng := rand.New(rand.NewSource(3))
	n := 40000
	us := make([]float64, n)
	vs := make([]float64, n)
	for i := range us {
		us[i], vs[i] = wide.UVFromShifts(p.GridShifts(p.SampleComponents(rng)))
	}
	_, varU, err := stats.MeanVariance(us)
	if err != nil {
		t.Fatal(err)
	}
	mv, varV, err := stats.MeanVariance(vs)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(varU, wide.USigma*wide.USigma, 0.05) {
		t.Errorf("quad-tree Var[u] = %v, analytic %v", varU, wide.USigma*wide.USigma)
	}
	if !approx(mv, wide.VMean(), 0.02) {
		t.Errorf("quad-tree E[v] = %v, analytic %v", mv, wide.VMean())
	}
	if !approx(varV, wide.VVariance(), 0.12) {
		t.Errorf("quad-tree Var[v] = %v, analytic %v", varV, wide.VVariance())
	}
}
