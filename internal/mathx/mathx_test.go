package mathx

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	d := math.Abs(a - b)
	if d <= tol {
		return true
	}
	m := math.Max(math.Abs(a), math.Abs(b))
	return d <= tol*m
}

func TestNormPDFKnownValues(t *testing.T) {
	cases := []struct{ x, want float64 }{
		{0, 0.3989422804014327},
		{1, 0.24197072451914337},
		{-1, 0.24197072451914337},
		{2, 0.05399096651318806},
		{3.5, 0.0008726826950457602},
	}
	for _, c := range cases {
		if got := NormPDF(c.x); !almostEqual(got, c.want, 1e-14) {
			t.Errorf("NormPDF(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestNormCDFKnownValues(t *testing.T) {
	cases := []struct{ x, want float64 }{
		{0, 0.5},
		{1, 0.8413447460685429},
		{-1, 0.15865525393145705},
		{1.959963984540054, 0.975},
		{-3, 0.0013498980316300933},
		{6, 0.9999999990134123},
	}
	for _, c := range cases {
		if got := NormCDF(c.x); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("NormCDF(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestNormCDFMonotone(t *testing.T) {
	prev := NormCDF(-10)
	for x := -10.0; x <= 10; x += 0.01 {
		cur := NormCDF(x)
		if cur < prev {
			t.Fatalf("NormCDF not monotone at x=%v: %v < %v", x, cur, prev)
		}
		prev = cur
	}
}

func TestNormQuantileInvertsCDF(t *testing.T) {
	for _, p := range []float64{1e-9, 1e-6, 0.001, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999, 1 - 1e-6} {
		x := NormQuantile(p)
		if got := NormCDF(x); !almostEqual(got, p, 1e-10) {
			t.Errorf("NormCDF(NormQuantile(%v)) = %v", p, got)
		}
	}
}

func TestNormQuantileEdges(t *testing.T) {
	if !math.IsInf(NormQuantile(0), -1) {
		t.Error("NormQuantile(0) should be -Inf")
	}
	if !math.IsInf(NormQuantile(1), 1) {
		t.Error("NormQuantile(1) should be +Inf")
	}
	for _, p := range []float64{-0.5, 1.5, math.NaN()} {
		if !math.IsNaN(NormQuantile(p)) {
			t.Errorf("NormQuantile(%v) should be NaN", p)
		}
	}
	if q := NormQuantile(0.5); math.Abs(q) > 1e-15 {
		t.Errorf("NormQuantile(0.5) = %v, want 0", q)
	}
}

func TestNormQuantileSymmetryProperty(t *testing.T) {
	f := func(raw float64) bool {
		p := math.Abs(math.Mod(raw, 1))
		if p <= 0 || p >= 1 || p == 0.5 {
			return true
		}
		return almostEqual(NormQuantile(p), -NormQuantile(1-p), 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGammaPKnownValues(t *testing.T) {
	// Reference values from the identity P(1, x) = 1 - exp(-x) and
	// P(1/2, x) = erf(sqrt(x)).
	for _, x := range []float64{0.1, 0.5, 1, 2, 5, 10} {
		got, err := GammaP(1, x)
		if err != nil {
			t.Fatalf("GammaP(1,%v): %v", x, err)
		}
		if want := 1 - math.Exp(-x); !almostEqual(got, want, 1e-12) {
			t.Errorf("GammaP(1,%v) = %v, want %v", x, got, want)
		}
		got, err = GammaP(0.5, x)
		if err != nil {
			t.Fatalf("GammaP(0.5,%v): %v", x, err)
		}
		if want := math.Erf(math.Sqrt(x)); !almostEqual(got, want, 1e-12) {
			t.Errorf("GammaP(0.5,%v) = %v, want %v", x, got, want)
		}
	}
}

func TestGammaPEdges(t *testing.T) {
	if p, err := GammaP(3, 0); err != nil || p != 0 {
		t.Errorf("GammaP(3,0) = %v, %v; want 0, nil", p, err)
	}
	if p, err := GammaP(3, math.Inf(1)); err != nil || p != 1 {
		t.Errorf("GammaP(3,+Inf) = %v, %v; want 1, nil", p, err)
	}
	if _, err := GammaP(-1, 2); err == nil {
		t.Error("GammaP(-1,2) should error")
	}
	if _, err := GammaP(1, -2); err == nil {
		t.Error("GammaP(1,-2) should error")
	}
}

func TestGammaPQComplementProperty(t *testing.T) {
	f := func(ra, rx float64) bool {
		a := 0.1 + math.Abs(math.Mod(ra, 50))
		x := math.Abs(math.Mod(rx, 100))
		p, err1 := GammaP(a, x)
		q, err2 := GammaQ(a, x)
		if err1 != nil || err2 != nil {
			return false
		}
		return almostEqual(p+q, 1, 1e-10)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestGammaPMonotoneInX(t *testing.T) {
	for _, a := range []float64{0.5, 1, 2.5, 7, 30} {
		prev := -1.0
		for x := 0.0; x < 4*a+20; x += 0.25 {
			p, err := GammaP(a, x)
			if err != nil {
				t.Fatalf("GammaP(%v,%v): %v", a, x, err)
			}
			if p < prev-1e-13 {
				t.Fatalf("GammaP(%v,·) not monotone at x=%v", a, x)
			}
			prev = p
		}
	}
}

func TestBisect(t *testing.T) {
	root, err := Bisect(func(x float64) float64 { return x*x - 2 }, 0, 2, 1e-12, 200)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(root, math.Sqrt2, 1e-10) {
		t.Errorf("Bisect sqrt(2) = %v", root)
	}
	// Root at an endpoint.
	root, err = Bisect(func(x float64) float64 { return x }, 0, 5, 1e-12, 200)
	if err != nil || root != 0 {
		t.Errorf("Bisect endpoint root = %v, %v", root, err)
	}
	// No sign change must error.
	if _, err := Bisect(func(x float64) float64 { return 1 + x*x }, -1, 1, 1e-12, 200); err == nil {
		t.Error("Bisect without sign change should error")
	}
}

func TestBisectDecreasingFunction(t *testing.T) {
	// Bisect must also handle f decreasing over the bracket.
	root, err := Bisect(func(x float64) float64 { return 3 - x }, 0, 10, 1e-12, 200)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(root, 3, 1e-10) {
		t.Errorf("Bisect decreasing root = %v, want 3", root)
	}
}

func TestLogSumExp(t *testing.T) {
	cases := []struct{ a, b, want float64 }{
		{0, 0, math.Log(2)},
		{1000, 1000, 1000 + math.Log(2)},
		{-1000, 0, math.Log(1 + math.Exp(-1000))},
		{math.Inf(-1), 3, 3},
		{3, math.Inf(-1), 3},
	}
	for _, c := range cases {
		if got := LogSumExp(c.a, c.b); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("LogSumExp(%v,%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 1) != 1 || Clamp(-5, 0, 1) != 0 || Clamp(0.5, 0, 1) != 0.5 {
		t.Error("Clamp misbehaves")
	}
}

func BenchmarkNormQuantile(b *testing.B) {
	for i := 0; i < b.N; i++ {
		NormQuantile(0.3 + 0.4*float64(i%2))
	}
}

func BenchmarkGammaP(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := GammaP(12.5, 10+float64(i%5)); err != nil {
			b.Fatal(err)
		}
	}
}
