// Package mathx supplies the special functions the reliability
// analysis needs beyond the standard math package: the standard
// normal PDF/CDF/quantile and the regularized incomplete gamma
// functions that back the chi-square distribution.
//
// Everything here is implemented from scratch on top of math.Erf,
// math.Lgamma and friends; no third-party numerics are used.
package mathx

import (
	"errors"
	"math"
)

// Sqrt2Pi is sqrt(2*pi), the normalization constant of the standard
// normal density.
const Sqrt2Pi = 2.5066282746310005024157652848110452530069867406099

// NormPDF returns the standard normal probability density at x.
func NormPDF(x float64) float64 {
	return math.Exp(-0.5*x*x) / Sqrt2Pi
}

// NormCDF returns the standard normal cumulative distribution at x.
func NormCDF(x float64) float64 {
	return 0.5 * math.Erfc(-x/math.Sqrt2)
}

// NormQuantile returns the inverse of the standard normal CDF at
// probability p in (0, 1). It panics for p outside (0, 1) the same way
// dividing by zero would: callers are expected to validate quantile
// requests. The result is computed with the Acklam rational
// approximation and polished with one Halley step, giving close to
// full double precision.
func NormQuantile(p float64) float64 {
	if math.IsNaN(p) || p <= 0 || p >= 1 {
		switch {
		case p == 0:
			return math.Inf(-1)
		case p == 1:
			return math.Inf(1)
		}
		return math.NaN()
	}
	x := acklam(p)
	// One Halley iteration: solve NormCDF(x) - p = 0.
	e := NormCDF(x) - p
	u := e * Sqrt2Pi * math.Exp(x*x/2)
	x -= u / (1 + x*u/2)
	return x
}

// acklam is Peter Acklam's rational approximation to the normal
// quantile, accurate to about 1.15e-9 before polishing.
func acklam(p float64) float64 {
	var (
		a = [6]float64{
			-3.969683028665376e+01, 2.209460984245205e+02,
			-2.759285104469687e+02, 1.383577518672690e+02,
			-3.066479806614716e+01, 2.506628277459239e+00,
		}
		b = [5]float64{
			-5.447609879822406e+01, 1.615858368580409e+02,
			-1.556989798598866e+02, 6.680131188771972e+01,
			-1.328068155288572e+01,
		}
		c = [6]float64{
			-7.784894002430293e-03, -3.223964580411365e-01,
			-2.400758277161838e+00, -2.549732539343734e+00,
			4.374664141464968e+00, 2.938163982698783e+00,
		}
		d = [4]float64{
			7.784695709041462e-03, 3.224671290700398e-01,
			2.445134137142996e+00, 3.754408661907416e+00,
		}
	)
	const pLow = 0.02425
	switch {
	case p < pLow:
		q := math.Sqrt(-2 * math.Log(p))
		return (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p <= 1-pLow:
		q := p - 0.5
		r := q * q
		return (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		return -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}
}

// ErrNoConverge reports that an iterative special-function evaluation
// failed to converge. It indicates arguments far outside the supported
// range (e.g. enormous shape parameters).
var ErrNoConverge = errors.New("mathx: iteration did not converge")

const (
	gammaEps     = 1e-15
	gammaItMax   = 500
	gammaFPMin   = 1e-300
	gammaBigStep = 1e300
)

// GammaP returns the regularized lower incomplete gamma function
// P(a, x) = gamma(a, x) / Gamma(a) for a > 0, x >= 0.
func GammaP(a, x float64) (float64, error) {
	if a <= 0 || x < 0 || math.IsNaN(a) || math.IsNaN(x) {
		return math.NaN(), errors.New("mathx: GammaP requires a > 0 and x >= 0")
	}
	if x == 0 {
		return 0, nil
	}
	if math.IsInf(x, 1) {
		return 1, nil
	}
	if x < a+1 {
		p, err := gammaPSeries(a, x)
		return p, err
	}
	q, err := gammaQContinuedFraction(a, x)
	return 1 - q, err
}

// GammaQ returns the regularized upper incomplete gamma function
// Q(a, x) = 1 - P(a, x).
func GammaQ(a, x float64) (float64, error) {
	if a <= 0 || x < 0 || math.IsNaN(a) || math.IsNaN(x) {
		return math.NaN(), errors.New("mathx: GammaQ requires a > 0 and x >= 0")
	}
	if x == 0 {
		return 1, nil
	}
	if math.IsInf(x, 1) {
		return 0, nil
	}
	if x < a+1 {
		p, err := gammaPSeries(a, x)
		return 1 - p, err
	}
	return gammaQContinuedFraction(a, x)
}

// gammaPSeries evaluates P(a,x) by its power series, converging well
// for x < a+1.
func gammaPSeries(a, x float64) (float64, error) {
	lg, _ := math.Lgamma(a)
	ap := a
	sum := 1.0 / a
	del := sum
	for n := 0; n < gammaItMax; n++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*gammaEps {
			return sum * math.Exp(-x+a*math.Log(x)-lg), nil
		}
	}
	return math.NaN(), ErrNoConverge
}

// gammaQContinuedFraction evaluates Q(a,x) by the Lentz continued
// fraction, converging well for x >= a+1.
func gammaQContinuedFraction(a, x float64) (float64, error) {
	lg, _ := math.Lgamma(a)
	b := x + 1 - a
	c := gammaBigStep
	d := 1 / b
	h := d
	for i := 1; i <= gammaItMax; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < gammaFPMin {
			d = gammaFPMin
		}
		c = b + an/c
		if math.Abs(c) < gammaFPMin {
			c = gammaFPMin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < gammaEps {
			return math.Exp(-x+a*math.Log(x)-lg) * h, nil
		}
	}
	return math.NaN(), ErrNoConverge
}

// Bisect finds a root of f in [lo, hi] assuming f(lo) and f(hi)
// bracket it (opposite signs, or one of them is zero). It runs until
// the bracket is narrower than tol or maxIter iterations elapse, and
// returns the bracket midpoint.
func Bisect(f func(float64) float64, lo, hi, tol float64, maxIter int) (float64, error) {
	flo, fhi := f(lo), f(hi)
	if flo == 0 {
		return lo, nil
	}
	if fhi == 0 {
		return hi, nil
	}
	if (flo > 0) == (fhi > 0) {
		return math.NaN(), errors.New("mathx: Bisect requires a sign change on [lo, hi]")
	}
	for i := 0; i < maxIter; i++ {
		mid := lo + (hi-lo)/2
		if hi-lo < tol || mid == lo || mid == hi {
			return mid, nil
		}
		fm := f(mid)
		if fm == 0 {
			return mid, nil
		}
		if (fm > 0) == (flo > 0) {
			lo, flo = mid, fm
		} else {
			hi = mid
		}
	}
	return lo + (hi-lo)/2, nil
}

// LogSumExp returns log(exp(a) + exp(b)) without overflow.
func LogSumExp(a, b float64) float64 {
	if math.IsInf(a, -1) {
		return b
	}
	if math.IsInf(b, -1) {
		return a
	}
	if a < b {
		a, b = b, a
	}
	return a + math.Log1p(math.Exp(b-a))
}

// Clamp limits x to [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	switch {
	case x < lo:
		return lo
	case x > hi:
		return hi
	}
	return x
}
