package obs

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

// TestHistogramMergeEqualsPooled is the merge property test: merging k
// randomly-filled histograms must be indistinguishable from pooling
// the same samples into a single histogram — identical bucket counts,
// identical quantiles, and the exact (not bucket-rounded) max.
func TestHistogramMergeEqualsPooled(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		k := 1 + rng.Intn(6)
		parts := make([]*Histogram, k)
		pooled := &Histogram{}
		for i := range parts {
			parts[i] = &Histogram{}
			n := rng.Intn(400)
			for j := 0; j < n; j++ {
				// Log-uniform samples from ~1µs to ~20s so every bucket
				// (including the +Inf overflow) gets exercised.
				exp := rng.Float64()*7.3 - 6
				d := time.Duration(math.Pow(10, exp) * 1e9)
				parts[i].Observe(d)
				pooled.Observe(d)
			}
		}
		merged := &Histogram{}
		for _, p := range parts {
			merged.Merge(p)
		}
		if got, want := merged.Count(), pooled.Count(); got != want {
			t.Fatalf("trial %d: merged count %d, pooled %d", trial, got, want)
		}
		if got, want := merged.Sum(), pooled.Sum(); got != want {
			t.Fatalf("trial %d: merged sum %v, pooled %v", trial, got, want)
		}
		if got, want := merged.Max(), pooled.Max(); got != want {
			t.Fatalf("trial %d: merged max %v, pooled %v (max must be exact)", trial, got, want)
		}
		mb, pb := merged.BucketCounts(), pooled.BucketCounts()
		for i := range mb {
			if mb[i] != pb[i] {
				t.Fatalf("trial %d: bucket %d merged %d pooled %d", trial, i, mb[i], pb[i])
			}
		}
		for _, q := range []float64{0.5, 0.9, 0.95, 0.99, 1} {
			if got, want := merged.Quantile(q), pooled.Quantile(q); got != want {
				t.Fatalf("trial %d: q%.2f merged %v pooled %v", trial, q, got, want)
			}
		}
	}
}

// TestHistogramMergeEmptyIdentity: merging an empty histogram changes
// nothing; merging into an empty histogram reproduces the source.
func TestHistogramMergeEmptyIdentity(t *testing.T) {
	h := &Histogram{}
	h.Observe(3 * time.Millisecond)
	h.Observe(40 * time.Millisecond)
	before := h.Snapshot()

	h.Merge(&Histogram{})
	after := h.Snapshot()
	if after.Count != before.Count || after.SumNs != before.SumNs || after.MaxNs != before.MaxNs {
		t.Fatalf("empty merge mutated histogram: %+v -> %+v", before, after)
	}

	empty := &Histogram{}
	empty.Merge(h)
	got := empty.Snapshot()
	if got.Count != before.Count || got.SumNs != before.SumNs || got.MaxNs != before.MaxNs {
		t.Fatalf("merge into empty lost samples: want %+v got %+v", before, got)
	}
	for i := range got.Buckets {
		if got.Buckets[i] != before.Buckets[i] {
			t.Fatalf("bucket %d: want %d got %d", i, before.Buckets[i], got.Buckets[i])
		}
	}

	h.Merge(nil) // nil merge is a no-op, not a panic
}

// TestHistogramMergeSnapshotLayoutMismatch: foreign bucket layouts are
// rejected wholesale rather than partially applied.
func TestHistogramMergeSnapshotLayoutMismatch(t *testing.T) {
	h := &Histogram{}
	if h.MergeSnapshot(HistogramSnapshot{Buckets: []int64{1, 2, 3}, Count: 6}) {
		t.Fatal("mismatched layout accepted")
	}
	if h.Count() != 0 {
		t.Fatalf("rejected merge still mutated count: %d", h.Count())
	}
}
