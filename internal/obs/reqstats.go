package obs

import (
	"context"
	"sync"
)

// StageVisit is one resolved pipeline round observed during a request:
// which stage, which tier ultimately supplied it (mem/disk/peer/built),
// and — when it was built — how long the build ran.
type StageVisit struct {
	Stage   string  `json:"stage"`
	Source  string  `json:"source"`
	BuildMs float64 `json:"build_ms,omitempty"`
}

// maxStageVisits bounds per-request memory; requests that walk more
// stages than this (bisection sweeps) keep counting but stop listing.
const maxStageVisits = 128

// ReqStats collects per-request cost accounting: the pipeline tier
// walk (stage provenance), build time, and peer traffic. It rides the
// context like a span does, and like a span the nil receiver no-ops
// every method with zero allocations — the disabled path of the wide
// event log is a nil *ReqStats, proven 0 allocs/op in tests.
type ReqStats struct {
	mu      sync.Mutex
	visits  []StageVisit
	dropped int
	builds  int
	mem     int
	disk    int
	peer    int
	buildNs int64
}

// reqStatsKey carries the collector through a context.
type reqStatsKey struct{}

// WithReqStats returns a context carrying a fresh collector.
func WithReqStats(ctx context.Context) (context.Context, *ReqStats) {
	rs := &ReqStats{}
	return context.WithValue(ctx, reqStatsKey{}, rs), rs
}

// ReqStatsFrom returns the context's collector, or nil (zero allocs).
func ReqStatsFrom(ctx context.Context) *ReqStats {
	rs, _ := ctx.Value(reqStatsKey{}).(*ReqStats)
	return rs
}

// CarryReqStats returns ctx carrying from's collector, or ctx itself
// when from has none. The pipeline hands a detached flight context the
// initiating request's collector this way, so the nested tier walk
// that feeds a build — peer and disk fills of sub-stages — lands in
// the request that caused the build, mirroring how the initiator's
// span parents build-internal spans.
func CarryReqStats(ctx, from context.Context) context.Context {
	if rs := ReqStatsFrom(from); rs != nil {
		return context.WithValue(ctx, reqStatsKey{}, rs)
	}
	return ctx
}

// RecordStage notes one successfully resolved pipeline round. Source
// is a pipeline provenance constant ("mem", "disk", "peer", "built").
// No-op on nil collectors.
func (rs *ReqStats) RecordStage(stage, source string, buildNs int64) {
	if rs == nil {
		return
	}
	rs.mu.Lock()
	switch source {
	case "mem":
		rs.mem++
	case "disk":
		rs.disk++
	case "peer":
		rs.peer++
	case "built":
		rs.builds++
		rs.buildNs += buildNs
	}
	if len(rs.visits) < maxStageVisits {
		rs.visits = append(rs.visits, StageVisit{
			Stage:   stage,
			Source:  source,
			BuildMs: float64(buildNs) / 1e6,
		})
	} else {
		rs.dropped++
	}
	rs.mu.Unlock()
}

// Visits returns a copy of the recorded tier walk (nil for a nil or
// empty collector) plus the count of visits dropped past the cap.
func (rs *ReqStats) Visits() ([]StageVisit, int) {
	if rs == nil {
		return nil, 0
	}
	rs.mu.Lock()
	defer rs.mu.Unlock()
	if len(rs.visits) == 0 {
		return nil, rs.dropped
	}
	out := make([]StageVisit, len(rs.visits))
	copy(out, rs.visits)
	return out, rs.dropped
}

// Counts summarizes the tier walk: stage builds, per-tier hits, and
// total build time. Zero values on nil collectors.
func (rs *ReqStats) Counts() (builds, mem, disk, peer int, buildNs int64) {
	if rs == nil {
		return 0, 0, 0, 0, 0
	}
	rs.mu.Lock()
	defer rs.mu.Unlock()
	return rs.builds, rs.mem, rs.disk, rs.peer, rs.buildNs
}
