package obs

import (
	"context"
	"testing"
)

// TestAttachRemoteGraft: a foreign span subtree grafts under the local
// span at export, rebased onto the local span's start offset.
func TestAttachRemoteGraft(t *testing.T) {
	tr := NewTracer(Options{RingSize: 4})
	ctx, root := tr.StartTrace(context.Background(), "req", "", "")
	_, fetch := StartSpan(ctx, "artifact.fetch")

	remote := &SpanOut{
		Name:    "peer.serve",
		SpanID:  "feedfacefeedface",
		StartUs: 0,
		DurUs:   80,
		Attrs:   map[string]any{"node": "http://peer-b"},
		Children: []*SpanOut{
			{Name: "disk.load", StartUs: 10, DurUs: 30},
		},
	}
	fetch.AttachRemote(remote)
	fetch.End()
	out := root.EndTrace()
	if out == nil {
		t.Fatal("no trace out")
	}

	var fetchOut *SpanOut
	out.Root.Walk(func(s *SpanOut) {
		if s.Name == "artifact.fetch" {
			fetchOut = s
		}
	})
	if fetchOut == nil {
		t.Fatal("artifact.fetch missing from export")
	}
	if len(fetchOut.Children) != 1 || fetchOut.Children[0].Name != "peer.serve" {
		t.Fatalf("remote subtree not grafted: %+v", fetchOut.Children)
	}
	ps := fetchOut.Children[0]
	if ps.Attrs["node"] != "http://peer-b" {
		t.Fatalf("remote attrs lost: %+v", ps.Attrs)
	}
	// Rebase: the remote root is pinned to the fetch span's own start,
	// and intra-subtree offsets are preserved.
	if ps.StartUs != fetchOut.StartUs {
		t.Fatalf("remote root start %v, fetch start %v", ps.StartUs, fetchOut.StartUs)
	}
	if got := ps.Children[0].StartUs - ps.StartUs; got != 10 {
		t.Fatalf("intra-subtree offset = %v, want 10", got)
	}

	// Walk visits the grafted spans too.
	names := map[string]bool{}
	out.Root.Walk(func(s *SpanOut) { names[s.Name] = true })
	if !names["disk.load"] {
		t.Fatal("Walk skipped grafted descendants")
	}
}

// TestAttachRemoteAfterEnd: grafting onto an ended span is discarded,
// keeping delivered snapshots immutable.
func TestAttachRemoteAfterEnd(t *testing.T) {
	tr := NewTracer(Options{RingSize: 4})
	ctx, root := tr.StartTrace(context.Background(), "req", "", "")
	_, sp := StartSpan(ctx, "child")
	sp.End()
	sp.AttachRemote(&SpanOut{Name: "late"})
	out := root.EndTrace()
	out.Root.Walk(func(s *SpanOut) {
		if s.Name == "late" {
			t.Fatal("post-End graft leaked into export")
		}
	})
	var nilSpan *Span
	nilSpan.AttachRemote(&SpanOut{}) // no panic
	sp.AttachRemote(nil)             // no panic
}
