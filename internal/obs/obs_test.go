package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSpanTree(t *testing.T) {
	tr := NewTracer(Options{})
	ctx, root := tr.StartTrace(context.Background(), "GET /v1/lifetime", "", "")
	if root == nil {
		t.Fatal("StartTrace returned nil root")
	}
	if len(root.TraceID()) != 32 {
		t.Fatalf("trace id %q: want 32 hex chars", root.TraceID())
	}

	ctx1, sp1 := StartSpan(ctx, "stage:thermal")
	sp1.SetAttr("cache", "miss")
	_, sp11 := StartSpanJoin(ctx1, "thermal.", "sor")
	sp11.SetAttr("iterations", 42)
	sp11.End()
	sp1.End()
	_, sp2 := StartSpan(ctx, "stage:weibull")
	sp2.SetAttr("cache", "hit")
	sp2.End()

	out := root.EndTrace()
	if out == nil {
		t.Fatal("EndTrace on root returned nil")
	}
	if out.SpanCount != 4 {
		t.Fatalf("SpanCount = %d, want 4", out.SpanCount)
	}
	if out.Dropped != 0 {
		t.Fatalf("Dropped = %d, want 0", out.Dropped)
	}
	if len(out.Root.Children) != 2 {
		t.Fatalf("root has %d children, want 2", len(out.Root.Children))
	}
	// Children sorted by start offset: thermal first.
	th := out.Root.Children[0]
	if th.Name != "stage:thermal" || th.Attrs["cache"] != "miss" {
		t.Fatalf("first child = %+v, want stage:thermal cache=miss", th)
	}
	if len(th.Children) != 1 || th.Children[0].Name != "thermal.sor" {
		t.Fatalf("thermal children = %+v, want [thermal.sor]", th.Children)
	}
	if th.Children[0].Attrs["iterations"] != 42 {
		t.Fatalf("sor attrs = %v", th.Children[0].Attrs)
	}
	if tr.Total() != 1 {
		t.Fatalf("Total = %d, want 1", tr.Total())
	}
}

func TestUntracedContextIsNil(t *testing.T) {
	ctx := context.Background()
	if sp := FromContext(ctx); sp != nil {
		t.Fatalf("FromContext on bare ctx = %v", sp)
	}
	ctx2, sp := StartSpan(ctx, "anything")
	if sp != nil || ctx2 != ctx {
		t.Fatal("StartSpan on untraced ctx must return (ctx, nil) unchanged")
	}
	// All nil-span methods must be safe no-ops.
	sp.SetAttr("k", "v")
	sp.End()
	if out := sp.EndTrace(); out != nil {
		t.Fatal("nil EndTrace must return nil")
	}
	if sp.Name() != "" || sp.ID() != "" || sp.TraceID() != "" {
		t.Fatal("nil span getters must return empty")
	}
	var nilTracer *Tracer
	if c, s := nilTracer.StartTrace(ctx, "r", "", ""); s != nil || c != ctx {
		t.Fatal("nil tracer StartTrace must return (ctx, nil)")
	}
	if nilTracer.Recent(5) != nil || nilTracer.Total() != 0 {
		t.Fatal("nil tracer accessors must be zero")
	}
}

// TestDisabledPathZeroAlloc is the ISSUE's zero-allocation guarantee:
// tracing code threaded through hot paths must cost nothing when the
// context carries no trace.
func TestDisabledPathZeroAlloc(t *testing.T) {
	ctx := context.Background()
	allocs := testing.AllocsPerRun(1000, func() {
		c, sp := StartSpan(ctx, "stage:thermal")
		_ = c
		sp.SetAttr("cache", "miss")
		sp.End()
		_, sp2 := StartSpanJoin(ctx, "stage:", "pca")
		sp2.End()
		if FromContext(ctx) != nil {
			t.Fatal("unexpected span")
		}
	})
	if allocs != 0 {
		t.Fatalf("disabled tracing path allocates %v per op, want 0", allocs)
	}
}

func TestLateSpanDropped(t *testing.T) {
	tr := NewTracer(Options{})
	ctx, root := tr.StartTrace(context.Background(), "req", "", "")
	_, late := StartSpan(ctx, "coalesced-build")
	out := root.EndTrace() // root ends while "late" is still open
	if out.Dropped != 1 {
		t.Fatalf("Dropped = %d, want 1", out.Dropped)
	}
	late.End() // must not mutate the delivered snapshot
	if out.SpanCount != 1 || len(out.Root.Children) != 0 {
		t.Fatalf("late End mutated snapshot: %+v", out)
	}
	if tr.LateSpans() != 1 {
		t.Fatalf("LateSpans = %d, want 1", tr.LateSpans())
	}
}

// TestOpenParentChildReparents: a completed child of a still-open span
// attaches to the nearest completed ancestor instead of vanishing.
func TestOpenParentChildReparents(t *testing.T) {
	tr := NewTracer(Options{})
	ctx, root := tr.StartTrace(context.Background(), "req", "", "")
	ctx1, open := StartSpan(ctx, "open-middle")
	_, leaf := StartSpan(ctx1, "leaf")
	leaf.End()
	out := root.EndTrace()
	_ = open
	if out.SpanCount != 2 {
		t.Fatalf("SpanCount = %d, want 2", out.SpanCount)
	}
	if len(out.Root.Children) != 1 || out.Root.Children[0].Name != "leaf" {
		t.Fatalf("leaf not reparented to root: %+v", out.Root.Children)
	}
}

func TestRingBound(t *testing.T) {
	tr := NewTracer(Options{RingSize: 4})
	for i := 0; i < 10; i++ {
		ctx, root := tr.StartTrace(context.Background(), "req", "", "")
		_ = ctx
		root.SetAttr("seq", i)
		root.End()
	}
	recent := tr.Recent(0)
	if len(recent) != 4 {
		t.Fatalf("Recent(0) = %d traces, want ring bound 4", len(recent))
	}
	// Newest first: 9, 8, 7, 6.
	for i, want := range []int{9, 8, 7, 6} {
		if got := recent[i].Root.Attrs["seq"]; got != want {
			t.Fatalf("recent[%d] seq = %v, want %d", i, got, want)
		}
	}
	if got := len(tr.Recent(2)); got != 2 {
		t.Fatalf("Recent(2) = %d, want 2", got)
	}
	if tr.Total() != 10 {
		t.Fatalf("Total = %d, want 10", tr.Total())
	}
}

func TestJSONLExporterAndHook(t *testing.T) {
	var buf bytes.Buffer
	var hooked []*TraceOut
	tr := NewTracer(Options{
		JSONL:   &buf,
		OnTrace: func(o *TraceOut) { hooked = append(hooked, o) },
	})
	for i := 0; i < 3; i++ {
		ctx, root := tr.StartTrace(context.Background(), "req", "", "")
		_, sp := StartSpan(ctx, "work")
		sp.End()
		root.End()
	}
	if err := tr.JSONLErr(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("JSONL lines = %d, want 3", len(lines))
	}
	var decoded TraceOut
	if err := json.Unmarshal([]byte(lines[0]), &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded.SpanCount != 2 || decoded.Root == nil || len(decoded.Root.Children) != 1 {
		t.Fatalf("decoded trace = %+v", decoded)
	}
	if len(hooked) != 3 {
		t.Fatalf("hook called %d times, want 3", len(hooked))
	}
}

func TestTraceparentRoundTrip(t *testing.T) {
	tid, sid := NewTraceID(), NewSpanID()
	h := Traceparent(tid, sid)
	gt, gs, ok := ParseTraceparent(h)
	if !ok || gt != tid || gs != sid {
		t.Fatalf("round trip %q -> (%q, %q, %v)", h, gt, gs, ok)
	}
	bad := []string{
		"",
		"00-abc-def-01",
		"00-" + strings.Repeat("0", 32) + "-" + sid + "-01", // all-zero trace id
		"00-" + tid + "-" + strings.Repeat("0", 16) + "-01", // all-zero span id
		"ff-" + tid + "-" + sid + "-01",                     // forbidden version
		"00-" + strings.ToUpper(tid) + "-" + sid + "-01",    // uppercase hex
		"00x" + tid + "-" + sid + "-01",                     // bad separator
	}
	for _, h := range bad {
		if _, _, ok := ParseTraceparent(h); ok {
			t.Fatalf("ParseTraceparent(%q) accepted malformed header", h)
		}
	}
}

func TestAdoptedTraceID(t *testing.T) {
	tr := NewTracer(Options{})
	tid, psid := NewTraceID(), NewSpanID()
	_, root := tr.StartTrace(context.Background(), "req", tid, psid)
	if root.TraceID() != tid {
		t.Fatalf("TraceID = %q, want adopted %q", root.TraceID(), tid)
	}
	out := root.EndTrace()
	if out.Root.Attrs["remote_parent"] != psid {
		t.Fatalf("remote_parent attr = %v, want %q", out.Root.Attrs, psid)
	}
}

func TestIDUniqueness(t *testing.T) {
	seen := make(map[string]bool, 4096)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := make([]string, 0, 512)
			for i := 0; i < 512; i++ {
				local = append(local, NewSpanID())
			}
			mu.Lock()
			for _, id := range local {
				if seen[id] {
					t.Errorf("duplicate span id %q", id)
				}
				seen[id] = true
			}
			mu.Unlock()
		}()
	}
	wg.Wait()
}

// TestConcurrentSpans stresses the lock-free completed-span list and
// the abandoned-builder SetAttr/End race under -race: many goroutines
// open, annotate, and end spans of one trace while the root ends
// midway through.
func TestConcurrentSpans(t *testing.T) {
	for round := 0; round < 20; round++ {
		tr := NewTracer(Options{RingSize: 8})
		ctx, root := tr.StartTrace(context.Background(), "stress", "", "")
		var wg sync.WaitGroup
		start := make(chan struct{})
		for g := 0; g < 16; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				<-start
				for i := 0; i < 50; i++ {
					c, sp := StartSpan(ctx, "worker")
					sp.SetAttr("g", g)
					_, inner := StartSpan(c, "inner")
					inner.SetAttr("i", i)
					inner.End()
					sp.End()
					sp.End() // idempotent
				}
			}(g)
		}
		close(start)
		if round%2 == 0 {
			root.End() // finalize while workers still spawn spans
		}
		wg.Wait()
		out := root.EndTrace()
		if round%2 == 1 {
			if out == nil {
				t.Fatal("EndTrace returned nil for root")
			}
			if got := out.SpanCount + out.Dropped; got != 16*50*2+1 {
				t.Fatalf("spans accounted = %d, want %d", got, 16*50*2+1)
			}
		}
	}
}

func TestHistogramQuantilesAndMax(t *testing.T) {
	var h Histogram
	// 100 samples at ~1ms, 10 at ~80ms, 1 at 30s (overflow).
	for i := 0; i < 100; i++ {
		h.Observe(800 * time.Microsecond)
	}
	for i := 0; i < 10; i++ {
		h.Observe(80 * time.Millisecond)
	}
	h.Observe(30 * time.Second)
	if h.Count() != 111 {
		t.Fatalf("Count = %d", h.Count())
	}
	if h.Max() != 30*time.Second {
		t.Fatalf("Max = %v, want 30s", h.Max())
	}
	p50 := h.Quantile(0.50)
	if p50 < 500*time.Microsecond || p50 > 1*time.Millisecond {
		t.Fatalf("p50 = %v, want within (0.5ms, 1ms] bucket", p50)
	}
	p99 := h.Quantile(0.99)
	if p99 < 50*time.Millisecond || p99 > 100*time.Millisecond {
		t.Fatalf("p99 = %v, want within (50ms, 100ms] bucket", p99)
	}
	// Quantiles landing in the overflow bucket report the exact max.
	if q := h.Quantile(1.0); q != 30*time.Second {
		t.Fatalf("Quantile(1.0) = %v, want exact max", q)
	}
	var empty Histogram
	if empty.Quantile(0.5) != 0 || empty.Max() != 0 || empty.Mean() != 0 {
		t.Fatal("empty histogram must report zeros")
	}
}

func TestHistogramBucketShape(t *testing.T) {
	var h Histogram
	h.Observe(3 * time.Millisecond) // lands in the (2.5ms, 5ms] bucket
	counts := h.BucketCounts()
	if len(counts) != len(LatencyBuckets)+1 {
		t.Fatalf("bucket count = %d, want %d", len(counts), len(LatencyBuckets)+1)
	}
	idx := -1
	for i, c := range counts {
		if c != 0 {
			idx = i
			break
		}
	}
	if idx < 0 || LatencyBuckets[idx] != 0.005 {
		t.Fatalf("3ms sample landed at bucket index %d", idx)
	}
}

func TestSpanWalk(t *testing.T) {
	tr := NewTracer(Options{})
	ctx, root := tr.StartTrace(context.Background(), "req", "", "")
	c1, a := StartSpan(ctx, "a")
	_, b := StartSpan(c1, "b")
	b.End()
	a.End()
	out := root.EndTrace()
	var names []string
	out.Root.Walk(func(s *SpanOut) { names = append(names, s.Name) })
	if len(names) != 3 || names[0] != "req" || names[1] != "a" || names[2] != "b" {
		t.Fatalf("Walk order = %v", names)
	}
}
