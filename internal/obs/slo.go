package obs

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// SLO objective kinds.
const (
	KindAvailability = "availability"
	KindLatency      = "latency"
)

// Objective is one service-level objective: a per-route availability
// target ("99.9% of requests succeed") or latency threshold target
// ("99% of requests finish within 25ms"). A request is BAD for an
// availability objective when its status is 5xx, and for a latency
// objective when it is 5xx or slower than the threshold.
type Objective struct {
	// Route is the metrics route label the objective watches, or "*"
	// to watch every route.
	Route string
	// Kind is KindAvailability or KindLatency.
	Kind string
	// Threshold is the latency bound (latency objectives only).
	Threshold time.Duration
	// Target is the objective in percent, e.g. 99.9. Must be in (0, 100).
	Target float64
}

// Label is the objective's stable metrics label: "availability" or
// "latency_<threshold>".
func (o Objective) Label() string {
	if o.Kind == KindLatency {
		return "latency_" + o.Threshold.String()
	}
	return KindAvailability
}

// ParseSLOSpec parses the -slo flag grammar: a comma-separated list of
//
//	route:availability:target
//	route:latency:threshold:target
//
// e.g. "/v1/lifetime:availability:99.9,/v1/lifetime:latency:25ms:99".
// Route "*" watches every route. Target is percent in (0, 100);
// threshold is any time.ParseDuration string.
func ParseSLOSpec(spec string) ([]Objective, error) {
	var objs []Objective
	for _, entry := range strings.Split(spec, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		parts := strings.Split(entry, ":")
		if len(parts) < 3 {
			return nil, fmt.Errorf("slo %q: want route:availability:target or route:latency:threshold:target", entry)
		}
		o := Objective{Route: parts[0]}
		if o.Route != "*" && !strings.HasPrefix(o.Route, "/") {
			return nil, fmt.Errorf("slo %q: route must start with '/' or be '*'", entry)
		}
		var targetStr string
		switch parts[1] {
		case "availability", "avail":
			if len(parts) != 3 {
				return nil, fmt.Errorf("slo %q: availability takes exactly one target", entry)
			}
			o.Kind = KindAvailability
			targetStr = parts[2]
		case "latency":
			if len(parts) != 4 {
				return nil, fmt.Errorf("slo %q: latency wants route:latency:threshold:target", entry)
			}
			o.Kind = KindLatency
			thr, err := time.ParseDuration(parts[2])
			if err != nil || thr <= 0 {
				return nil, fmt.Errorf("slo %q: bad threshold %q", entry, parts[2])
			}
			o.Threshold = thr
			targetStr = parts[3]
		default:
			return nil, fmt.Errorf("slo %q: unknown kind %q (availability|latency)", entry, parts[1])
		}
		t, err := strconv.ParseFloat(targetStr, 64)
		if err != nil || t <= 0 || t >= 100 {
			return nil, fmt.Errorf("slo %q: target must be a percent in (0, 100)", entry)
		}
		o.Target = t
		objs = append(objs, o)
	}
	return objs, nil
}

// BurnWindows are the rolling windows burn rates are reported over.
var BurnWindows = []time.Duration{time.Minute, 5 * time.Minute, time.Hour}

// sloRingSlots is one slot per second covering the longest window.
const sloRingSlots = 3600

type sloSlot struct {
	sec       int64
	good, bad int64
}

// sloExemplars is the per-objective ring of recent violating requests.
const sloExemplars = 8

// SLOExemplar links a budget-burning request back to its trace.
type SLOExemplar struct {
	TraceID string  `json:"trace_id"`
	UnixMs  int64   `json:"unix_ms"`
	Status  int     `json:"status"`
	DurMs   float64 `json:"dur_ms"`
}

type sloObjective struct {
	obj   Objective
	label string

	mu        sync.Mutex
	good, bad int64
	slots     [sloRingSlots]sloSlot
	ex        [sloExemplars]SLOExemplar
	exN       int
	// bucketEx maps each latency-histogram bucket to the most recent
	// violating trace id that landed in it, so a burning window links
	// straight from a histogram bucket to an offending trace.
	bucketEx [len(LatencyBuckets) + 1]string
}

// SLO tracks a set of objectives over rolling windows. A nil *SLO is
// a valid disabled engine: Observe no-ops, Report returns nil.
type SLO struct {
	objs []*sloObjective
	now  func() time.Time // injectable for window-math tests
}

// NewSLO builds the burn-rate engine; nil when objs is empty, so the
// disabled engine costs one nil check per request.
func NewSLO(objs []Objective) *SLO {
	if len(objs) == 0 {
		return nil
	}
	s := &SLO{now: time.Now}
	for _, o := range objs {
		s.objs = append(s.objs, &sloObjective{obj: o, label: o.Label()})
	}
	return s
}

// Objectives returns the configured objectives (nil when disabled).
func (s *SLO) Objectives() []Objective {
	if s == nil {
		return nil
	}
	out := make([]Objective, len(s.objs))
	for i, o := range s.objs {
		out[i] = o.obj
	}
	return out
}

// Observe scores one finished request against every matching
// objective. traceID may be empty (untraced request); exemplars then
// record only timing.
func (s *SLO) Observe(route string, status int, d time.Duration, traceID string) {
	if s == nil {
		return
	}
	for _, o := range s.objs {
		if o.obj.Route != "*" && o.obj.Route != route {
			continue
		}
		good := status < 500
		if good && o.obj.Kind == KindLatency && d > o.obj.Threshold {
			good = false
		}
		sec := s.now().Unix()
		o.mu.Lock()
		slot := &o.slots[sec%sloRingSlots]
		if slot.sec != sec {
			slot.sec, slot.good, slot.bad = sec, 0, 0
		}
		if good {
			o.good++
			slot.good++
		} else {
			o.bad++
			slot.bad++
			o.ex[o.exN%sloExemplars] = SLOExemplar{
				TraceID: traceID,
				UnixMs:  s.now().UnixMilli(),
				Status:  status,
				DurMs:   float64(d.Nanoseconds()) / 1e6,
			}
			o.exN++
			if traceID != "" {
				i := sort.SearchFloat64s(LatencyBuckets[:], d.Seconds())
				o.bucketEx[i] = traceID
			}
		}
		o.mu.Unlock()
	}
}

// SLOWindow is one rolling window's burn accounting. Burn is the
// window's error rate divided by the objective's error budget
// (1 - target): burn 1.0 consumes the budget exactly at the rate that
// exhausts it over the SLO period, >1 is over-burning.
type SLOWindow struct {
	Window  string  `json:"window"`
	Seconds int     `json:"seconds"`
	Good    int64   `json:"good"`
	Bad     int64   `json:"bad"`
	ErrRate float64 `json:"err_rate"`
	Burn    float64 `json:"burn"`
}

// ObjectiveReport is one objective's full burn-rate report.
type ObjectiveReport struct {
	Route       string            `json:"route"`
	Kind        string            `json:"kind"`
	Label       string            `json:"label"`
	ThresholdMs float64           `json:"threshold_ms,omitempty"`
	TargetPct   float64           `json:"target_pct"`
	Good        int64             `json:"good_total"`
	Bad         int64             `json:"bad_total"`
	Windows     []SLOWindow       `json:"windows"`
	Exemplars   []SLOExemplar     `json:"exemplars,omitempty"`
	BucketEx    map[string]string `json:"bucket_exemplars,omitempty"`
}

// Report snapshots every objective's totals, windowed burn rates, and
// exemplars. Nil engines return nil.
func (s *SLO) Report() []ObjectiveReport {
	if s == nil {
		return nil
	}
	now := s.now().Unix()
	out := make([]ObjectiveReport, 0, len(s.objs))
	for _, o := range s.objs {
		o.mu.Lock()
		r := ObjectiveReport{
			Route:     o.obj.Route,
			Kind:      o.obj.Kind,
			Label:     o.label,
			TargetPct: o.obj.Target,
			Good:      o.good,
			Bad:       o.bad,
		}
		if o.obj.Kind == KindLatency {
			r.ThresholdMs = float64(o.obj.Threshold.Nanoseconds()) / 1e6
		}
		budget := 1 - o.obj.Target/100
		for _, w := range BurnWindows {
			ws := int64(w / time.Second)
			var good, bad int64
			for i := range o.slots {
				sl := &o.slots[i]
				if sl.sec > now-ws && sl.sec <= now {
					good += sl.good
					bad += sl.bad
				}
			}
			win := SLOWindow{Window: w.String(), Seconds: int(ws), Good: good, Bad: bad}
			if total := good + bad; total > 0 {
				win.ErrRate = float64(bad) / float64(total)
				if budget > 0 {
					win.Burn = win.ErrRate / budget
				}
			}
			r.Windows = append(r.Windows, win)
		}
		n := o.exN
		if n > sloExemplars {
			n = sloExemplars
		}
		for i := 0; i < n; i++ {
			// Newest first: walk back from the last written slot.
			idx := ((o.exN-1-i)%sloExemplars + sloExemplars) % sloExemplars
			r.Exemplars = append(r.Exemplars, o.ex[idx])
		}
		for i, tid := range o.bucketEx {
			if tid == "" {
				continue
			}
			if r.BucketEx == nil {
				r.BucketEx = make(map[string]string)
			}
			le := "+Inf"
			if i < len(LatencyBuckets) {
				le = strconv.FormatFloat(LatencyBuckets[i], 'g', -1, 64)
			}
			r.BucketEx[le] = tid
		}
		o.mu.Unlock()
		out = append(out, r)
	}
	return out
}
