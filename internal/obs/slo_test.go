package obs

import (
	"strings"
	"testing"
	"time"
)

func TestParseSLOSpec(t *testing.T) {
	objs, err := ParseSLOSpec("/v1/lifetime:availability:99.9, /v1/lifetime:latency:25ms:99,*:avail:95")
	if err != nil {
		t.Fatal(err)
	}
	if len(objs) != 3 {
		t.Fatalf("got %d objectives", len(objs))
	}
	if objs[0].Route != "/v1/lifetime" || objs[0].Kind != KindAvailability || objs[0].Target != 99.9 {
		t.Fatalf("objs[0] = %+v", objs[0])
	}
	if objs[1].Kind != KindLatency || objs[1].Threshold != 25*time.Millisecond || objs[1].Target != 99 {
		t.Fatalf("objs[1] = %+v", objs[1])
	}
	if objs[1].Label() != "latency_25ms" || objs[0].Label() != "availability" {
		t.Fatalf("labels %q %q", objs[1].Label(), objs[0].Label())
	}
	if objs[2].Route != "*" {
		t.Fatalf("objs[2] = %+v", objs[2])
	}

	for _, bad := range []string{
		"lifetime:availability:99",    // route missing slash
		"/v1/x:availability:100",      // target out of range
		"/v1/x:availability:0",        // target out of range
		"/v1/x:latency:99",            // latency missing threshold
		"/v1/x:latency:-5ms:99",       // negative threshold
		"/v1/x:throughput:99",         // unknown kind
		"/v1/x:availability:99:extra", // extra field
		"/v1/x:availability:ninety9",  // non-numeric target
	} {
		if _, err := ParseSLOSpec(bad); err == nil {
			t.Fatalf("spec %q parsed without error", bad)
		}
	}
	if objs, err := ParseSLOSpec(""); err != nil || objs != nil {
		t.Fatalf("empty spec: %v %v", objs, err)
	}
}

func TestSLOWindowMathAndExemplars(t *testing.T) {
	objs, err := ParseSLOSpec("/v1/lifetime:availability:99,/v1/lifetime:latency:10ms:90")
	if err != nil {
		t.Fatal(err)
	}
	s := NewSLO(objs)
	base := time.Unix(1_700_000_000, 0)
	clock := base
	s.now = func() time.Time { return clock }

	// 40 minutes ago: 100 requests, 10 5xx. Outside 1m/5m, inside 1h.
	clock = base.Add(-40 * time.Minute)
	for i := 0; i < 90; i++ {
		s.Observe("/v1/lifetime", 200, time.Millisecond, "")
	}
	for i := 0; i < 10; i++ {
		s.Observe("/v1/lifetime", 503, time.Millisecond, "aaaa000000000000000000000000000"+string(rune('0'+i)))
	}
	// 30 seconds ago: 50 requests, 5 slow-but-successful (50ms).
	clock = base.Add(-30 * time.Second)
	for i := 0; i < 45; i++ {
		s.Observe("/v1/lifetime", 200, time.Millisecond, "")
	}
	for i := 0; i < 5; i++ {
		s.Observe("/v1/lifetime", 200, 50*time.Millisecond, "bbbb000000000000000000000000000"+string(rune('0'+i)))
	}
	// A route no objective watches: must not count anywhere.
	s.Observe("/v1/designs", 500, time.Millisecond, "")

	clock = base
	reps := s.Report()
	if len(reps) != 2 {
		t.Fatalf("got %d reports", len(reps))
	}
	avail, lat := reps[0], reps[1]

	// Availability: bad = the 10 old 5xx only; slow successes are good.
	if avail.Good != 140 || avail.Bad != 10 {
		t.Fatalf("avail totals good=%d bad=%d", avail.Good, avail.Bad)
	}
	w1m, w5m, w1h := avail.Windows[0], avail.Windows[1], avail.Windows[2]
	if w1m.Bad != 0 || w1m.Good != 50 {
		t.Fatalf("avail 1m = %+v", w1m)
	}
	if w5m.Bad != 0 || w5m.Good != 50 {
		t.Fatalf("avail 5m = %+v", w5m)
	}
	if w1h.Bad != 10 || w1h.Good != 140 {
		t.Fatalf("avail 1h = %+v", w1h)
	}
	// Burn over 1h: err rate 10/150 against a 1% budget.
	wantBurn := (10.0 / 150.0) / 0.01
	if diff := w1h.Burn - wantBurn; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("avail 1h burn = %v want %v", w1h.Burn, wantBurn)
	}

	// Latency 10ms/90%: old 5xx bad AND recent 50ms successes bad.
	if lat.Bad != 15 {
		t.Fatalf("latency bad = %d", lat.Bad)
	}
	if lat.Windows[0].Bad != 5 || lat.Windows[2].Bad != 15 {
		t.Fatalf("latency windows = %+v", lat.Windows)
	}

	// Exemplars: newest first, carrying the violating trace ids.
	if len(lat.Exemplars) == 0 || !strings.HasPrefix(lat.Exemplars[0].TraceID, "bbbb") {
		t.Fatalf("latency exemplars = %+v", lat.Exemplars)
	}
	if lat.Exemplars[0].DurMs != 50 {
		t.Fatalf("exemplar dur = %v", lat.Exemplars[0].DurMs)
	}
	// Bucket exemplars: 50ms lands in the le=0.05 bucket.
	if tid := lat.BucketEx["0.05"]; !strings.HasPrefix(tid, "bbbb") {
		t.Fatalf("bucket exemplars = %+v", lat.BucketEx)
	}

	// One hour later the ring has aged everything out of every window.
	clock = base.Add(2 * time.Hour)
	reps = s.Report()
	for _, w := range reps[0].Windows {
		if w.Good != 0 || w.Bad != 0 {
			t.Fatalf("aged window still counts: %+v", w)
		}
	}
	// Lifetime totals survive aging.
	if reps[0].Good != 140 || reps[0].Bad != 10 {
		t.Fatalf("totals aged out: %+v", reps[0])
	}
}

func TestSLONilEngine(t *testing.T) {
	var s *SLO
	s.Observe("/v1/lifetime", 500, time.Second, "x") // must not panic
	if s.Report() != nil || s.Objectives() != nil {
		t.Fatal("nil engine reported data")
	}
	if NewSLO(nil) != nil {
		t.Fatal("empty objective set should build a nil engine")
	}
}
