package obs

import (
	"context"
	"testing"
)

func TestReqStatsRecording(t *testing.T) {
	ctx, rs := WithReqStats(context.Background())
	if got := ReqStatsFrom(ctx); got != rs {
		t.Fatal("collector not carried by context")
	}
	rs.RecordStage("floorplan", "mem", 0)
	rs.RecordStage("powermap", "disk", 0)
	rs.RecordStage("thermal", "peer", 0)
	rs.RecordStage("analyzer", "built", 7_000_000)
	rs.RecordStage("analyzer", "built", 3_000_000)

	builds, mem, disk, peer, buildNs := rs.Counts()
	if builds != 2 || mem != 1 || disk != 1 || peer != 1 || buildNs != 10_000_000 {
		t.Fatalf("counts = builds=%d mem=%d disk=%d peer=%d buildNs=%d", builds, mem, disk, peer, buildNs)
	}
	visits, dropped := rs.Visits()
	if len(visits) != 5 || dropped != 0 {
		t.Fatalf("visits = %d dropped = %d", len(visits), dropped)
	}
	if visits[3].Stage != "analyzer" || visits[3].Source != "built" || visits[3].BuildMs != 7 {
		t.Fatalf("visit[3] = %+v", visits[3])
	}
}

func TestReqStatsVisitCap(t *testing.T) {
	_, rs := WithReqStats(context.Background())
	for i := 0; i < maxStageVisits+10; i++ {
		rs.RecordStage("thermal", "mem", 0)
	}
	visits, dropped := rs.Visits()
	if len(visits) != maxStageVisits || dropped != 10 {
		t.Fatalf("visits=%d dropped=%d", len(visits), dropped)
	}
	_, mem, _, _, _ := rs.Counts()
	if _ = mem; mem != maxStageVisits+10 {
		t.Fatalf("counts must keep counting past the cap: mem=%d", mem)
	}
}

// TestReqStatsDisabledZeroAlloc proves the wide-event disabled path:
// a context without a collector resolves to a nil *ReqStats, and
// recording into it allocates nothing.
func TestReqStatsDisabledZeroAlloc(t *testing.T) {
	ctx := context.Background()
	if rs := ReqStatsFrom(ctx); rs != nil {
		t.Fatal("plain context should carry no collector")
	}
	allocs := testing.AllocsPerRun(1000, func() {
		ReqStatsFrom(ctx).RecordStage("thermal", "built", 12345)
	})
	if allocs != 0 {
		t.Fatalf("disabled ReqStats path allocates %.1f/op, want 0", allocs)
	}
	var rs *ReqStats
	if v, d := rs.Visits(); v != nil || d != 0 {
		t.Fatal("nil Visits should be empty")
	}
}
