// Package obs is the stdlib-only observability substrate: a span
// tracer whose traces parent through context.Context, plus the shared
// fixed-bucket latency histogram (histogram.go).
//
// The design splits the cost model in two:
//
//   - Disabled path (no trace in the context, or a nil *Tracer): every
//     entry point — StartSpan, StartSpanJoin, Annotate — is a pointer
//     check that returns a nil *Span. Nil spans accept every method as
//     a no-op, so instrumented code never branches. This path performs
//     ZERO allocations and takes no locks; bench_test.go proves it.
//   - Enabled path: spans are plain structs owned by the goroutine
//     that started them. End pushes the span onto the trace's
//     completed list with a lock-free CAS; the only mutex is a tiny
//     per-span guard on the attribute slice (needed because a stage
//     build abandoned by its waiter can annotate a span concurrently
//     with the waiter ending it).
//
// A trace finalizes when its ROOT span ends: the completed-span list
// is snapshotted into an immutable TraceOut tree and delivered to the
// tracer's three sinks — a bounded ring of recent traces (served by
// /debug/traces), an optional JSONL exporter, and a per-trace summary
// hook. Spans still open at that moment (e.g. a coalesced stage build
// that outlives the request that started it) are counted as dropped;
// spans that end after finalization are discarded, never delivered to
// someone else's snapshot.
//
// Trace identity follows the W3C Trace Context format so that callers
// (cmd/loadgen, upstream proxies) can join server traces to their own:
// ParseTraceparent / Traceparent convert the `traceparent` header.
package obs

import (
	"context"
	"encoding/hex"
	"encoding/json"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Attr is one span attribute. Values should be JSON-marshalable
// scalars (string, bool, int, float64); they are exported verbatim.
type Attr struct {
	Key   string
	Value any
}

// Span is one timed operation inside a trace. A Span is owned by the
// goroutine that started it; SetAttr and End are additionally safe to
// call from a second goroutine (a build that outlives its waiter), at
// the cost of a short per-span lock.
type Span struct {
	tr     *trace
	parent *Span
	name   string
	id     string
	start  time.Time

	mu     sync.Mutex
	attrs  []Attr
	ended  bool
	dur    time.Duration
	remote []*SpanOut

	// next links the trace's lock-free completed-span list.
	next *Span
}

// trace is the mutable in-flight state behind a root span.
type trace struct {
	tracer *Tracer
	id     string
	name   string
	start  time.Time
	root   *Span

	// head is the lock-free LIFO list of completed spans.
	head      atomic.Pointer[Span]
	nStarted  atomic.Int64
	finalized atomic.Bool
	out       *TraceOut // set by finalize; read only by EndTrace
}

// spanKey carries the active *Span through a context.
type spanKey struct{}

// FromContext returns the active span, or nil when the context is
// untraced. The nil case allocates nothing.
func FromContext(ctx context.Context) *Span {
	sp, _ := ctx.Value(spanKey{}).(*Span)
	return sp
}

// ContextWithSpan returns a context carrying sp as the active span —
// and nothing else from the parent chain. It is the detach primitive
// for builds that must escape a request's cancellation but keep its
// trace: pipeline flights derive their background context through it.
// A nil sp returns ctx unchanged.
func ContextWithSpan(ctx context.Context, sp *Span) context.Context {
	if sp == nil {
		return ctx
	}
	return context.WithValue(ctx, spanKey{}, sp)
}

// StartSpan opens a child of the context's active span. Untraced
// contexts return (ctx, nil) with zero allocations; nil spans no-op
// every method, so call sites need no branches.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	parent := FromContext(ctx)
	if parent == nil {
		return ctx, nil
	}
	sp := newSpan(parent.tr, parent, name)
	return context.WithValue(ctx, spanKey{}, sp), sp
}

// StartSpanJoin is StartSpan with the span name split in two, so the
// disabled path never pays the prefix+name concatenation.
func StartSpanJoin(ctx context.Context, prefix, name string) (context.Context, *Span) {
	parent := FromContext(ctx)
	if parent == nil {
		return ctx, nil
	}
	sp := newSpan(parent.tr, parent, prefix+name)
	return context.WithValue(ctx, spanKey{}, sp), sp
}

// Annotate sets an attribute on the context's active span, if any.
// Callers on hot paths should nil-check FromContext themselves before
// boxing values into `any`.
func Annotate(ctx context.Context, key string, value any) {
	FromContext(ctx).SetAttr(key, value)
}

func newSpan(tr *trace, parent *Span, name string) *Span {
	tr.nStarted.Add(1)
	return &Span{
		tr:     tr,
		parent: parent,
		name:   name,
		id:     NewSpanID(),
		start:  time.Now(),
	}
}

// Name returns the span's name ("" for nil).
func (sp *Span) Name() string {
	if sp == nil {
		return ""
	}
	return sp.name
}

// ID returns the span's 16-hex-digit id ("" for nil).
func (sp *Span) ID() string {
	if sp == nil {
		return ""
	}
	return sp.id
}

// TraceID returns the 32-hex-digit id of the span's trace ("" for
// nil).
func (sp *Span) TraceID() string {
	if sp == nil {
		return ""
	}
	return sp.tr.id
}

// SetAttr records a key/value attribute. Later writes of the same key
// win at export. No-op on nil spans and after End.
func (sp *Span) SetAttr(key string, value any) {
	if sp == nil {
		return
	}
	sp.mu.Lock()
	if !sp.ended {
		sp.attrs = append(sp.attrs, Attr{key, value})
	}
	sp.mu.Unlock()
}

// AttachRemote grafts an already-finished span subtree produced by
// ANOTHER process (e.g. the owning node's `peer.serve` trace, returned
// in a response header) under sp. At export the subtree appears among
// sp's children with its start offsets rebased onto sp's timeline —
// remote clocks are not assumed synchronized, so the remote root is
// pinned to sp's own start and only intra-subtree offsets are kept.
// The caller hands over ownership of sub; it must not mutate it after.
// No-op on nil spans, nil subtrees, and after End.
func (sp *Span) AttachRemote(sub *SpanOut) {
	if sp == nil || sub == nil {
		return
	}
	sp.mu.Lock()
	if !sp.ended {
		sp.remote = append(sp.remote, sub)
	}
	sp.mu.Unlock()
}

// End completes the span: its duration freezes and it is pushed onto
// the trace's completed list (lock-free). Ending the root span
// finalizes the whole trace and delivers it to the tracer's sinks.
// End is idempotent; no-op on nil spans.
func (sp *Span) End() {
	if sp == nil {
		return
	}
	sp.mu.Lock()
	if sp.ended {
		sp.mu.Unlock()
		return
	}
	sp.ended = true
	sp.dur = time.Since(sp.start)
	sp.mu.Unlock()

	tr := sp.tr
	if tr.finalized.Load() {
		// The trace was already delivered (its root ended while this
		// span — typically a coalesced build serving someone else —
		// was still running). Dropping the span here keeps delivered
		// snapshots immutable.
		tr.tracer.lateSpans.Add(1)
		return
	}
	for {
		old := tr.head.Load()
		sp.next = old
		if tr.head.CompareAndSwap(old, sp) {
			break
		}
	}
	if sp == tr.root {
		tr.tracer.finalize(tr)
	}
}

// EndTrace ends the span and, when it is its trace's root, returns the
// finalized TraceOut (nil otherwise). This is how a server middleware
// both completes a request trace and embeds it in an ?explain=1
// response without racing the sinks.
func (sp *Span) EndTrace() *TraceOut {
	if sp == nil {
		return nil
	}
	sp.End()
	if sp.tr.root != sp {
		return nil
	}
	return sp.tr.out
}

// TraceOut is an immutable, JSON-ready snapshot of a finished trace.
type TraceOut struct {
	TraceID string    `json:"trace_id"`
	Name    string    `json:"name"`
	Start   time.Time `json:"start"`
	DurUs   float64   `json:"dur_us"`
	// SpanCount is the number of completed spans in the tree; Dropped
	// counts spans still open when the root ended (their timings are
	// lost, the count is not).
	SpanCount int      `json:"span_count"`
	Dropped   int      `json:"dropped_spans,omitempty"`
	Root      *SpanOut `json:"root"`
}

// SpanOut is one exported span. Start offsets are relative to the
// trace start so a tree reads as a waterfall.
type SpanOut struct {
	Name     string         `json:"name"`
	SpanID   string         `json:"span_id"`
	StartUs  float64        `json:"start_us"`
	DurUs    float64        `json:"dur_us"`
	Attrs    map[string]any `json:"attrs,omitempty"`
	Children []*SpanOut     `json:"children,omitempty"`
}

// Walk visits the span and every descendant, depth-first.
func (s *SpanOut) Walk(visit func(*SpanOut)) {
	if s == nil {
		return
	}
	visit(s)
	for _, c := range s.Children {
		c.Walk(visit)
	}
}

// Options configure a Tracer.
type Options struct {
	// RingSize bounds the recent-trace ring served by Recent
	// (default 128, minimum 1).
	RingSize int
	// JSONL, when non-nil, receives every finalized trace as one JSON
	// line. Writes are serialized; a write error disables the exporter.
	JSONL io.Writer
	// OnTrace, when non-nil, is called synchronously with every
	// finalized trace — the per-trace summary hook (slow-request
	// logging, custom aggregation). It must not block.
	OnTrace func(*TraceOut)
}

// Tracer owns trace production and the three delivery sinks. A nil
// *Tracer is a valid disabled tracer: StartTrace returns a nil span.
type Tracer struct {
	opts Options

	mu     sync.Mutex
	ring   []*TraceOut // circular, ring[next-1] is newest
	next   int
	filled bool

	jsonlMu  sync.Mutex
	jsonlErr error

	total     atomic.Int64
	lateSpans atomic.Int64
}

// NewTracer returns a tracer with the given options.
func NewTracer(opts Options) *Tracer {
	if opts.RingSize < 1 {
		opts.RingSize = 128
	}
	return &Tracer{opts: opts, ring: make([]*TraceOut, opts.RingSize)}
}

// StartTrace opens a new trace rooted at a span called name and
// returns a context carrying it. A non-empty traceID adopts the
// caller's identity (e.g. an incoming W3C traceparent); parentSpanID,
// when non-empty, is recorded as the remote parent. A nil tracer
// returns (ctx, nil).
func (t *Tracer) StartTrace(ctx context.Context, name, traceID, parentSpanID string) (context.Context, *Span) {
	if t == nil {
		return ctx, nil
	}
	if traceID == "" {
		traceID = NewTraceID()
	}
	tr := &trace{tracer: t, id: traceID, name: name, start: time.Now()}
	root := newSpan(tr, nil, name)
	root.start = tr.start
	tr.root = root
	if parentSpanID != "" {
		root.SetAttr("remote_parent", parentSpanID)
	}
	return context.WithValue(ctx, spanKey{}, root), root
}

// finalize snapshots a trace and delivers it to the sinks. Called
// exactly once, from the root span's End.
func (t *Tracer) finalize(tr *trace) {
	tr.finalized.Store(true)
	out := export(tr)
	tr.out = out
	t.total.Add(1)

	t.mu.Lock()
	t.ring[t.next] = out
	t.next++
	if t.next == len(t.ring) {
		t.next = 0
		t.filled = true
	}
	t.mu.Unlock()

	if t.opts.JSONL != nil {
		t.jsonlMu.Lock()
		if t.jsonlErr == nil {
			enc, err := json.Marshal(out)
			if err == nil {
				enc = append(enc, '\n')
				_, err = t.opts.JSONL.Write(enc)
			}
			t.jsonlErr = err
		}
		t.jsonlMu.Unlock()
	}
	if t.opts.OnTrace != nil {
		t.opts.OnTrace(out)
	}
}

// export builds the immutable span tree from the completed-span list.
func export(tr *trace) *TraceOut {
	var spans []*Span
	for sp := tr.head.Load(); sp != nil; sp = sp.next {
		spans = append(spans, sp)
	}
	nodes := make(map[*Span]*SpanOut, len(spans))
	for _, sp := range spans {
		sp.mu.Lock()
		var attrs map[string]any
		if len(sp.attrs) > 0 {
			attrs = make(map[string]any, len(sp.attrs))
			for _, a := range sp.attrs {
				attrs[a.Key] = a.Value
			}
		}
		n := &SpanOut{
			Name:    sp.name,
			SpanID:  sp.id,
			StartUs: float64(sp.start.Sub(tr.start).Nanoseconds()) / 1e3,
			DurUs:   float64(sp.dur.Nanoseconds()) / 1e3,
			Attrs:   attrs,
		}
		for _, sub := range sp.remote {
			rebase(sub, n.StartUs-sub.StartUs)
			n.Children = append(n.Children, sub)
		}
		nodes[sp] = n
		sp.mu.Unlock()
	}
	root := nodes[tr.root]
	for _, sp := range spans {
		if sp == tr.root {
			continue
		}
		// Attach to the nearest COMPLETED ancestor: an open parent
		// (dropped) must not orphan its finished children.
		parent := root
		for anc := sp.parent; anc != nil; anc = anc.parent {
			if n, ok := nodes[anc]; ok {
				parent = n
				break
			}
		}
		parent.Children = append(parent.Children, nodes[sp])
	}
	for _, n := range nodes {
		sort.Slice(n.Children, func(i, j int) bool { return n.Children[i].StartUs < n.Children[j].StartUs })
	}
	return &TraceOut{
		TraceID:   tr.id,
		Name:      tr.name,
		Start:     tr.start,
		DurUs:     root.DurUs,
		SpanCount: len(spans),
		Dropped:   int(tr.nStarted.Load()) - len(spans),
		Root:      root,
	}
}

// rebase shifts a remote subtree's start offsets by delta µs, pinning
// its root onto the local span it was grafted under.
func rebase(s *SpanOut, delta float64) {
	s.StartUs += delta
	for _, c := range s.Children {
		rebase(c, delta)
	}
}

// Recent returns up to n finalized traces, newest first. n <= 0 means
// the whole ring.
func (t *Tracer) Recent(n int) []*TraceOut {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	size := t.next
	if t.filled {
		size = len(t.ring)
	}
	if n <= 0 || n > size {
		n = size
	}
	out := make([]*TraceOut, 0, n)
	for i := 0; i < n; i++ {
		idx := t.next - 1 - i
		if idx < 0 {
			idx += len(t.ring)
		}
		out = append(out, t.ring[idx])
	}
	return out
}

// Total returns the number of traces finalized so far.
func (t *Tracer) Total() int64 {
	if t == nil {
		return 0
	}
	return t.total.Load()
}

// LateSpans returns the number of spans discarded because they ended
// after their trace was finalized.
func (t *Tracer) LateSpans() int64 {
	if t == nil {
		return 0
	}
	return t.lateSpans.Load()
}

// JSONLErr reports the first JSONL-exporter write failure, if any.
func (t *Tracer) JSONLErr() error {
	if t == nil {
		return nil
	}
	t.jsonlMu.Lock()
	defer t.jsonlMu.Unlock()
	return t.jsonlErr
}

// ---- trace identity (W3C Trace Context) ----

// idState seeds the lock-free id generator; splitmix64 over an atomic
// counter gives unique, well-mixed ids without crypto/rand's syscall
// cost or a locked math/rand source.
var idState atomic.Uint64

func init() {
	idState.Store(uint64(time.Now().UnixNano())*0x9e3779b97f4a7c15 | 1)
}

func nextRand() uint64 {
	x := idState.Add(0x9e3779b97f4a7c15)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	if x == 0 {
		x = 1 // all-zero ids are invalid in W3C trace context
	}
	return x
}

// NewTraceID returns a fresh 32-hex-digit (128-bit) trace id.
func NewTraceID() string {
	var b [16]byte
	putUint64(b[:8], nextRand())
	putUint64(b[8:], nextRand())
	return hex.EncodeToString(b[:])
}

// NewSpanID returns a fresh 16-hex-digit (64-bit) span id.
func NewSpanID() string {
	var b [8]byte
	putUint64(b[:], nextRand())
	return hex.EncodeToString(b[:])
}

func putUint64(b []byte, v uint64) {
	for i := 7; i >= 0; i-- {
		b[i] = byte(v)
		v >>= 8
	}
}

// Traceparent formats a W3C traceparent header value (version 00,
// sampled flag set).
func Traceparent(traceID, spanID string) string {
	return "00-" + traceID + "-" + spanID + "-01"
}

// ParseTraceparent extracts the trace id and parent span id from a W3C
// traceparent header value. Malformed, all-zero, or version-ff headers
// return ok=false.
func ParseTraceparent(h string) (traceID, parentID string, ok bool) {
	if len(h) != 55 || h[2] != '-' || h[35] != '-' || h[52] != '-' {
		return "", "", false
	}
	ver, tid, sid := h[:2], h[3:35], h[36:52]
	if ver == "ff" || !isLowerHex(ver) || !isLowerHex(tid) || !isLowerHex(sid) ||
		allZero(tid) || allZero(sid) {
		return "", "", false
	}
	return tid, sid, true
}

func isLowerHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

func allZero(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] != '0' {
			return false
		}
	}
	return true
}
