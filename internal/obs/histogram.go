package obs

import (
	"sort"
	"sync/atomic"
	"time"
)

// LatencyBuckets are the shared fixed histogram upper bounds in
// seconds, used both by the server's /metrics exposition and by
// cmd/loadgen's client-side recording so the two distributions are
// directly comparable. The low end resolves µs-scale warm hybrid
// queries, the high end cold engine builds.
var LatencyBuckets = [...]float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Histogram is a fixed-bucket latency histogram with atomic counters;
// the extra slot is the +Inf overflow bucket. Observe is lock-free.
// The zero value is ready to use.
type Histogram struct {
	counts [len(LatencyBuckets) + 1]atomic.Int64
	count  atomic.Int64
	sumNs  atomic.Int64
	maxNs  atomic.Int64
}

// Observe records one latency sample.
func (h *Histogram) Observe(d time.Duration) {
	s := d.Seconds()
	i := sort.SearchFloat64s(LatencyBuckets[:], s)
	h.counts[i].Add(1)
	h.count.Add(1)
	ns := d.Nanoseconds()
	h.sumNs.Add(ns)
	for {
		old := h.maxNs.Load()
		if ns <= old || h.maxNs.CompareAndSwap(old, ns) {
			break
		}
	}
}

// Count returns the number of samples observed.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the total of all samples.
func (h *Histogram) Sum() time.Duration { return time.Duration(h.sumNs.Load()) }

// Max returns the exact largest sample observed (0 when empty).
func (h *Histogram) Max() time.Duration { return time.Duration(h.maxNs.Load()) }

// Mean returns the average sample (0 when empty).
func (h *Histogram) Mean() time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(h.sumNs.Load() / n)
}

// BucketCounts returns the per-bucket sample counts (len(LatencyBuckets)+1
// entries; the last is the +Inf overflow).
func (h *Histogram) BucketCounts() []int64 {
	out := make([]int64, len(h.counts))
	for i := range h.counts {
		out[i] = h.counts[i].Load()
	}
	return out
}

// HistogramSnapshot is the wire form of a Histogram: a point-in-time
// copy whose bucket layout is the shared LatencyBuckets. It is what
// nodes exchange for fleet-wide aggregation (/v1/cluster/status).
type HistogramSnapshot struct {
	// Buckets has len(LatencyBuckets)+1 entries; the last is +Inf.
	Buckets []int64 `json:"buckets"`
	Count   int64   `json:"count"`
	SumNs   int64   `json:"sum_ns"`
	MaxNs   int64   `json:"max_ns"`
}

// Snapshot copies the histogram's current state. Concurrent Observes
// may straddle the copy (bucket totals are each atomically read but
// not mutually consistent); for aggregation that slack is irrelevant.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Buckets: h.BucketCounts(),
		Count:   h.count.Load(),
		SumNs:   h.sumNs.Load(),
		MaxNs:   h.maxNs.Load(),
	}
	return s
}

// Merge adds every sample recorded by o into h. Because both share the
// fixed LatencyBuckets layout, the merged histogram's Quantile is
// exactly what a single histogram fed the pooled samples would report,
// and Max is preserved exactly (not bucket-rounded).
func (h *Histogram) Merge(o *Histogram) {
	if o == nil {
		return
	}
	h.MergeSnapshot(o.Snapshot())
}

// MergeSnapshot folds a snapshot (typically from a peer node) into h.
// Snapshots with a foreign bucket layout are rejected (returns false,
// h unchanged) so a mixed-version fleet degrades to "node reported,
// not merged" instead of corrupting fleet quantiles.
func (h *Histogram) MergeSnapshot(s HistogramSnapshot) bool {
	if len(s.Buckets) != len(h.counts) {
		return false
	}
	for i, c := range s.Buckets {
		if c != 0 {
			h.counts[i].Add(c)
		}
	}
	h.count.Add(s.Count)
	h.sumNs.Add(s.SumNs)
	for {
		old := h.maxNs.Load()
		if s.MaxNs <= old || h.maxNs.CompareAndSwap(old, s.MaxNs) {
			break
		}
	}
	return true
}

// Quantile estimates the q-th quantile (0 < q <= 1) by linear
// interpolation within the containing bucket, the same estimator
// Prometheus' histogram_quantile uses. Samples in the overflow bucket
// are attributed to the exact observed Max. Returns 0 when empty.
func (h *Histogram) Quantile(q float64) time.Duration {
	counts := h.BucketCounts()
	var total int64
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum int64
	for i, c := range counts {
		if c == 0 {
			continue
		}
		if float64(cum+c) < rank {
			cum += c
			continue
		}
		if i == len(LatencyBuckets) {
			return h.Max()
		}
		lo := 0.0
		if i > 0 {
			lo = LatencyBuckets[i-1]
		}
		hi := LatencyBuckets[i]
		frac := (rank - float64(cum)) / float64(c)
		if frac < 0 {
			frac = 0
		} else if frac > 1 {
			frac = 1
		}
		return time.Duration((lo + (hi-lo)*frac) * 1e9)
	}
	return h.Max()
}
