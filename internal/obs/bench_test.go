package obs

import (
	"context"
	"testing"
)

// BenchmarkSpanDisabled measures the cost tracing adds to hot paths
// when the context carries no trace — the path every library call
// takes under the PR 3 baseline. Must report 0 allocs/op.
func BenchmarkSpanDisabled(b *testing.B) {
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c, sp := StartSpanJoin(ctx, "stage:", "thermal")
		_ = c
		sp.SetAttr("cache", "miss")
		sp.End()
	}
}

// BenchmarkSpanEnabled measures the same call shape with a live trace,
// for the enabled-vs-disabled overhead comparison in cmd/bench.
func BenchmarkSpanEnabled(b *testing.B) {
	tr := NewTracer(Options{RingSize: 4})
	ctx, root := tr.StartTrace(context.Background(), "bench", "", "")
	defer root.End()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c, sp := StartSpanJoin(ctx, "stage:", "thermal")
		_ = c
		sp.SetAttr("cache", "hit")
		sp.End()
	}
}

// BenchmarkTraceLifecycle measures a full request-shaped trace: root,
// a handful of stage children, finalize into the ring.
func BenchmarkTraceLifecycle(b *testing.B) {
	tr := NewTracer(Options{RingSize: 128})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ctx, root := tr.StartTrace(context.Background(), "GET /v1/lifetime", "", "")
		for s := 0; s < 8; s++ {
			_, sp := StartSpan(ctx, "stage")
			sp.SetAttr("cache", "hit")
			sp.End()
		}
		root.End()
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	var h Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(1234567)
	}
}
