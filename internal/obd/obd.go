// Package obd implements the device-level oxide-breakdown model of
// Section III: time-to-breakdown is Weibull-distributed with a
// thickness-dependent slope,
//
//	F(t | x) = 1 - exp(-a · (t/α)^(b·x))                     (Eq. 4)
//
// where a is the device area normalized to the minimum device area,
// x the oxide thickness (nm), α the characteristic life and b the
// slope-per-thickness. Both α and b depend on the block's operating
// temperature and supply voltage [7]–[9]; Characterize produces them
// from a Tech description.
//
// The functional forms follow the thin-oxide TDDB literature the
// paper cites: α follows an Arrhenius law in 1/T with a power-law
// voltage acceleration, and the Weibull slope β = b·x decreases
// mildly with temperature. The absolute constants are calibrated so
// that the nominal 2.2 nm device has β ≈ 1.3 at use conditions and a
// stressed device (3.1 V, 100 °C — the Fig. 3 condition) breaks down
// on the 10⁴-second scale, matching the paper's measurement plot.
package obd

import (
	"errors"
	"fmt"
	"math"
)

// BoltzmannEV is the Boltzmann constant in eV/K.
const BoltzmannEV = 8.617333262e-5

// CelsiusToKelvin converts a temperature.
func CelsiusToKelvin(tC float64) float64 { return tC + 273.15 }

// Params are the device-level reliability parameters of one
// temperature-uniform block: the Weibull characteristic life Alpha
// (hours) and the slope-per-thickness B (1/nm) of Eq. 4.
type Params struct {
	Alpha float64
	B     float64
}

// Validate checks the parameters.
func (p Params) Validate() error {
	if !(p.Alpha > 0) || !(p.B > 0) {
		return fmt.Errorf("obd: invalid device parameters α=%v b=%v", p.Alpha, p.B)
	}
	return nil
}

// Reliability returns R(t | x) = exp(-a·(t/α)^(b·x)) for a device of
// normalized area a and oxide thickness x nm (Eq. 9).
func (p Params) Reliability(t, x, a float64) float64 {
	if t <= 0 {
		return 1
	}
	return math.Exp(-a * math.Exp(p.B*x*math.Log(t/p.Alpha)))
}

// FailureCDF returns F(t | x) = 1 - R(t | x).
func (p Params) FailureCDF(t, x, a float64) float64 {
	if t <= 0 {
		return 0
	}
	return -math.Expm1(-a * math.Exp(p.B*x*math.Log(t/p.Alpha)))
}

// SampleFailureTime inverts the Weibull CDF for a uniform variate u in
// (0, 1): T = α · (-ln(1-u)/a)^(1/(b·x)).
func (p Params) SampleFailureTime(u, x, a float64) float64 {
	return p.Alpha * math.Pow(-math.Log1p(-u)/a, 1/(p.B*x))
}

// Tech describes a technology's OBD characteristics; Characterize
// instantiates block-level Params from it.
type Tech struct {
	// U0 is the nominal oxide thickness (nm).
	U0 float64
	// Alpha0 is the characteristic life (hours) of a minimum-area
	// device at TRefC and VRef.
	Alpha0 float64
	// TRefC is the reference temperature (°C) and VRef the reference
	// supply voltage (V) at which Alpha0 and B0 are quoted.
	TRefC, VRef float64
	// EaEV is the apparent activation energy (eV) of the Arrhenius
	// temperature acceleration of α.
	EaEV float64
	// NV is the exponent of the power-law voltage acceleration:
	// α ∝ (V/VRef)^(-NV).
	NV float64
	// B0 is the Weibull slope per nm at TRefC: β = B0·x.
	B0 float64
	// CB is the linear temperature derating of b (1/K):
	// b(T) = B0·(1 - CB·(T - TRefC)), floored at 0.25·B0.
	CB float64
}

// DefaultTech returns the calibrated 45 nm-class technology used by
// the benchmarks (Table II: u0 = 2.2 nm, VDD = 1.2 V).
func DefaultTech() *Tech {
	return &Tech{
		U0:     2.2,
		Alpha0: 1e15,
		TRefC:  45,
		VRef:   1.2,
		EaEV:   0.6,
		NV:     32,
		B0:     0.6,
		CB:     0.001,
	}
}

// Validate checks the technology description.
func (tech *Tech) Validate() error {
	switch {
	case !(tech.U0 > 0):
		return errors.New("obd: nominal thickness must be positive")
	case !(tech.Alpha0 > 0):
		return errors.New("obd: Alpha0 must be positive")
	case !(tech.VRef > 0):
		return errors.New("obd: VRef must be positive")
	case tech.EaEV < 0 || tech.NV < 0:
		return errors.New("obd: acceleration parameters must be non-negative")
	case !(tech.B0 > 0):
		return errors.New("obd: B0 must be positive")
	case tech.CB < 0:
		return errors.New("obd: CB must be non-negative")
	}
	return nil
}

// Characterize returns the device-level reliability parameters at
// operating temperature tC (°C) and supply voltage v (V):
//
//	α(T, V) = Alpha0 · exp(Ea/k · (1/T - 1/TRef)) · (V/VRef)^(-NV)
//	b(T)    = B0 · (1 - CB·(T - TRef)), floored at 0.25·B0
//
// Hotter and higher-voltage blocks get a smaller α (they age faster)
// and a slightly shallower Weibull slope.
func (tech *Tech) Characterize(tC, v float64) (Params, error) {
	if err := tech.Validate(); err != nil {
		return Params{}, err
	}
	if !(v > 0) {
		return Params{}, fmt.Errorf("obd: supply voltage must be positive, got %v", v)
	}
	tK := CelsiusToKelvin(tC)
	if !(tK > 0) {
		return Params{}, fmt.Errorf("obd: temperature %v °C below absolute zero", tC)
	}
	tRefK := CelsiusToKelvin(tech.TRefC)
	alpha := tech.Alpha0 *
		math.Exp(tech.EaEV/BoltzmannEV*(1/tK-1/tRefK)) *
		math.Pow(v/tech.VRef, -tech.NV)
	b := tech.B0 * (1 - tech.CB*(tC-tech.TRefC))
	if floor := 0.25 * tech.B0; b < floor {
		b = floor
	}
	p := Params{Alpha: alpha, B: b}
	if err := p.Validate(); err != nil {
		return Params{}, err
	}
	return p, nil
}

// MinThickness returns the guard-band minimum oxide thickness
// u0 - nSigma·σ_tot used by the traditional worst-case analysis.
func (tech *Tech) MinThickness(sigmaTot, nSigma float64) float64 {
	return tech.U0 - nSigma*sigmaTot
}
