package obd

import (
	"math/rand"
	"testing"
)

func TestLeakageTraceShape(t *testing.T) {
	tech := DefaultTech()
	rng := rand.New(rand.NewSource(3))
	tr, err := tech.SimulateLeakageTrace(DefaultLeakageConfig(), rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Points) != 400 {
		t.Fatalf("points = %d", len(tr.Points))
	}
	if !(tr.TSBDs > 0 && tr.THBDs > tr.TSBDs) {
		t.Fatalf("breakdown ordering: SBD %v, HBD %v", tr.TSBDs, tr.THBDs)
	}
	// The SBD jump is 10–20× (Section III).
	jump := tr.ISBD / tr.I0
	if jump < 10 || jump > 20 {
		t.Errorf("SBD jump = %v×, want 10–20×", jump)
	}
	// The trace is non-decreasing (gate leakage only grows under
	// stress) and ends orders of magnitude above the fresh level.
	prev := 0.0
	for _, pt := range tr.Points {
		if pt.CurrentA < prev*(1-1e-9) {
			t.Fatalf("leakage decreased at t=%v", pt.TimeS)
		}
		prev = pt.CurrentA
	}
	last := tr.Points[len(tr.Points)-1].CurrentA
	if last < 1000*tr.I0 {
		t.Errorf("final leakage %v not ≥ 1000× fresh %v", last, tr.I0)
	}
	// Time axis is increasing.
	for i := 1; i < len(tr.Points); i++ {
		if tr.Points[i].TimeS <= tr.Points[i-1].TimeS {
			t.Fatal("time axis not increasing")
		}
	}
}

func TestLeakageTraceStressScale(t *testing.T) {
	// At the Fig. 3 condition the SBD typically lands between 10² and
	// 10⁶ seconds; check a few seeds stay in a generous envelope.
	tech := DefaultTech()
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		tr, err := tech.SimulateLeakageTrace(DefaultLeakageConfig(), rng)
		if err != nil {
			t.Fatal(err)
		}
		if tr.TSBDs < 1 || tr.TSBDs > 1e8 {
			t.Errorf("seed %d: SBD at %v s, implausible", seed, tr.TSBDs)
		}
	}
}

func TestLeakageTraceValidation(t *testing.T) {
	tech := DefaultTech()
	if _, err := tech.SimulateLeakageTrace(DefaultLeakageConfig(), nil); err == nil {
		t.Error("nil RNG should error")
	}
	cfg := DefaultLeakageConfig()
	cfg.Thickness = 0
	if _, err := tech.SimulateLeakageTrace(cfg, rand.New(rand.NewSource(1))); err == nil {
		t.Error("zero thickness should error")
	}
	cfg = DefaultLeakageConfig()
	cfg.Area = -1
	if _, err := tech.SimulateLeakageTrace(cfg, rand.New(rand.NewSource(1))); err == nil {
		t.Error("negative area should error")
	}
}

func TestLeakageTraceDefaultPoints(t *testing.T) {
	tech := DefaultTech()
	cfg := DefaultLeakageConfig()
	cfg.Points = 0 // should fall back to 400
	tr, err := tech.SimulateLeakageTrace(cfg, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Points) != 400 {
		t.Errorf("default points = %d", len(tr.Points))
	}
}

func TestLeakageThicknessSensitivity(t *testing.T) {
	// Thinner oxide leaks more when fresh.
	tech := DefaultTech()
	thin := DefaultLeakageConfig()
	thin.Thickness = 2.0
	thick := DefaultLeakageConfig()
	thick.Thickness = 2.4
	trThin, err := tech.SimulateLeakageTrace(thin, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	trThick, err := tech.SimulateLeakageTrace(thick, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	if !(trThin.I0 > trThick.I0*100) {
		t.Errorf("fresh leakage not strongly thickness-sensitive: %v vs %v", trThin.I0, trThick.I0)
	}
}
