package obd

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// LeakagePoint is one sample of a stressed device's gate-leakage
// trace.
type LeakagePoint struct {
	// TimeS is the stress time in seconds.
	TimeS float64
	// CurrentA is the gate leakage in amperes.
	CurrentA float64
}

// LeakageTrace is the simulated gate-leakage history of one stressed
// device: the Fig. 3 measurement. Fresh-oxide direct tunneling slowly
// rises through stress-induced leakage (SILC), jumps at the soft
// breakdown (SBD), then grows monotonically through progressive
// wear-out until the hard breakdown (HBD).
type LeakageTrace struct {
	Points []LeakagePoint
	// TSBDs and THBDs are the soft and hard breakdown times (s).
	TSBDs, THBDs float64
	// I0 is the fresh-device leakage (A); ISBD the leakage right
	// after soft breakdown.
	I0, ISBD float64
}

// LeakageConfig parameterizes the trace simulation.
type LeakageConfig struct {
	// StressV is the stress voltage (V) and StressTC the stress
	// temperature (°C). The Fig. 3 condition is 3.1 V, 100 °C.
	StressV  float64
	StressTC float64
	// Thickness is the device oxide thickness (nm).
	Thickness float64
	// Area is the normalized device area.
	Area float64
	// Points is the number of trace samples (default 400).
	Points int
}

// DefaultLeakageConfig returns the Fig. 3 stress condition on a
// nominal device.
func DefaultLeakageConfig() LeakageConfig {
	return LeakageConfig{
		StressV:   3.1,
		StressTC:  100,
		Thickness: 2.2,
		Area:      1,
		Points:    400,
	}
}

// SimulateLeakageTrace generates one device's stress history. The SBD
// time is sampled from the Weibull OBD model at the stress condition;
// the post-SBD wear-out time constant scales with the SBD time, as
// observed in successive-breakdown statistics [28]: the time between
// breakdowns is itself a (shorter) statistically distributed quantity.
func (tech *Tech) SimulateLeakageTrace(cfg LeakageConfig, rng *rand.Rand) (*LeakageTrace, error) {
	if rng == nil {
		return nil, errors.New("obd: SimulateLeakageTrace requires an RNG")
	}
	if cfg.Points <= 1 {
		cfg.Points = 400
	}
	if !(cfg.Thickness > 0) || !(cfg.Area > 0) {
		return nil, fmt.Errorf("obd: invalid stress device thickness=%v area=%v", cfg.Thickness, cfg.Area)
	}
	p, err := tech.Characterize(cfg.StressTC, cfg.StressV)
	if err != nil {
		return nil, err
	}
	// Sample the SBD time (convert the model's hours to seconds).
	u := rng.Float64()
	for u == 0 || u == 1 {
		u = rng.Float64()
	}
	tSBD := p.SampleFailureTime(u, cfg.Thickness, cfg.Area) * 3600

	// Fresh-device direct-tunneling leakage: exponential in thickness
	// and voltage (WKB-style sensitivity ~6 decades/nm), normalized to
	// ~1 nA for the nominal device at the Fig. 3 stress.
	i0 := 1e-9 * cfg.Area *
		math.Exp(-6.5*(cfg.Thickness-2.2)*math.Ln10) *
		math.Exp(2.0*(cfg.StressV-3.1))

	// SBD multiplies the leakage by 10–20× (Section III).
	sbdJump := 10 + 10*rng.Float64()
	iSBD := i0 * sbdJump

	// Progressive wear-out: I grows as a power law of time past SBD
	// until the HBD criterion (leakage 1000× the fresh device) is
	// met. The wear-out time constant is a random fraction of tSBD.
	tau := tSBD * (0.2 + 0.6*rng.Float64())
	growth := 2.5 // wear-out exponent
	ratioHBD := 1000.0
	// Solve iSBD·(1 + ((t-tSBD)/tau)^growth) = ratioHBD·i0 for t.
	tHBD := tSBD + tau*math.Pow(ratioHBD*i0/iSBD-1, 1/growth)

	trace := &LeakageTrace{TSBDs: tSBD, THBDs: tHBD, I0: i0, ISBD: iSBD}
	// Log-spaced sampling from 1 s to a little past HBD.
	t0 := 1.0
	t1 := tHBD * 1.2
	if t1 <= t0 {
		t1 = t0 * 10
	}
	logStep := math.Log(t1/t0) / float64(cfg.Points-1)
	for i := 0; i < cfg.Points; i++ {
		t := t0 * math.Exp(float64(i)*logStep)
		var cur float64
		switch {
		case t < tSBD:
			// SILC: a gentle sub-linear pre-breakdown drift.
			cur = i0 * (1 + 0.5*math.Sqrt(t/tSBD))
		case t < tHBD:
			cur = iSBD * (1 + math.Pow((t-tSBD)/tau, growth))
		default:
			// Post-HBD ohmic conduction: several orders above fresh.
			cur = ratioHBD * i0 * 20
		}
		trace.Points = append(trace.Points, LeakagePoint{TimeS: t, CurrentA: cur})
	}
	return trace, nil
}
