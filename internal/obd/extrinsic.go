package obd

import (
	"errors"
	"fmt"
	"math"
)

// Extrinsic describes the defect-driven (extrinsic) breakdown
// population. Product-level TDDB distributions are bimodal [4]: a
// small fraction of devices carries latent oxide defects (particles,
// thinning, pinholes) and fails with a shallow Weibull slope β < 1 —
// early-life "infant mortality" — while the intrinsic population
// wears out with β > 1. The intrinsic model (Tech/Params) covers the
// latter; Extrinsic adds the former as an additive weakest-link
// hazard:
//
//	H_ext,j(t) = A_j · DefectFraction · (t/α_e(T_j, V))^BetaE
//
// per block. Because β_e < 1, the extrinsic hazard rises steeply at
// short times, dominating parts-per-million early-failure criteria —
// and it is exactly what burn-in screening removes.
type Extrinsic struct {
	// DefectFraction is the probability that a device carries a
	// latent defect (per normalized-area unit).
	DefectFraction float64
	// Alpha0E is the defective population's characteristic life
	// (hours) at TRefC/VRef of the parent Tech.
	Alpha0E float64
	// BetaE is the extrinsic Weibull slope (< 1).
	BetaE float64
	// EaEV and NV are the temperature and voltage acceleration of the
	// extrinsic α, typically gentler than intrinsic.
	EaEV, NV float64
}

// DefaultExtrinsic returns a calibrated defect population: 0.2
// defective ppm of devices, β_e = 0.4, and acceleration mildly weaker
// than intrinsic. On the ~10⁵-device benchmarks this puts a few
// hundredths of a defect per chip — enough to own the 1–10 ppm
// criteria before burn-in without distorting the bulk distribution.
func DefaultExtrinsic() *Extrinsic {
	return &Extrinsic{
		DefectFraction: 2e-7,
		Alpha0E:        1e13,
		BetaE:          0.4,
		EaEV:           0.45,
		NV:             24,
	}
}

// Validate checks the extrinsic description.
func (e *Extrinsic) Validate() error {
	switch {
	case e == nil:
		return errors.New("obd: nil extrinsic model")
	case e.DefectFraction < 0 || e.DefectFraction > 1:
		return fmt.Errorf("obd: defect fraction %v outside [0,1]", e.DefectFraction)
	case !(e.Alpha0E > 0):
		return errors.New("obd: extrinsic Alpha0E must be positive")
	case !(e.BetaE > 0) || e.BetaE >= 1:
		return fmt.Errorf("obd: extrinsic slope %v must be in (0,1)", e.BetaE)
	case e.EaEV < 0 || e.NV < 0:
		return errors.New("obd: extrinsic acceleration must be non-negative")
	}
	return nil
}

// ExtrinsicParams are the block-level extrinsic parameters at an
// operating point.
type ExtrinsicParams struct {
	// AlphaE is the extrinsic characteristic life (hours); BetaE the
	// slope; DefectFraction the per-device defect probability.
	AlphaE, BetaE, DefectFraction float64
}

// Hazard returns the extrinsic cumulative hazard contribution of a
// population with normalized oxide area (device count) area at
// time t:
//
//	H(t) = area · DefectFraction · (t/α_e)^β_e
//
// The survival contribution is exp(-H); additivity with the intrinsic
// exponent follows from the weakest-link product over devices with
// per-device failure probabilities ≪ 1.
func (p ExtrinsicParams) Hazard(t, area float64) float64 {
	if t <= 0 || p.DefectFraction == 0 {
		return 0
	}
	return area * p.DefectFraction * math.Exp(p.BetaE*math.Log(t/p.AlphaE))
}

// CharacterizeExtrinsic returns the block-level extrinsic parameters
// at temperature tC (°C) and supply voltage v, using the parent
// Tech's reference condition.
func (tech *Tech) CharacterizeExtrinsic(e *Extrinsic, tC, v float64) (ExtrinsicParams, error) {
	if err := e.Validate(); err != nil {
		return ExtrinsicParams{}, err
	}
	if err := tech.Validate(); err != nil {
		return ExtrinsicParams{}, err
	}
	if !(v > 0) {
		return ExtrinsicParams{}, fmt.Errorf("obd: supply voltage must be positive, got %v", v)
	}
	tK := CelsiusToKelvin(tC)
	if !(tK > 0) {
		return ExtrinsicParams{}, fmt.Errorf("obd: temperature %v °C below absolute zero", tC)
	}
	tRefK := CelsiusToKelvin(tech.TRefC)
	alphaE := e.Alpha0E *
		math.Exp(e.EaEV/BoltzmannEV*(1/tK-1/tRefK)) *
		math.Pow(v/tech.VRef, -e.NV)
	return ExtrinsicParams{
		AlphaE:         alphaE,
		BetaE:          e.BetaE,
		DefectFraction: e.DefectFraction,
	}, nil
}
