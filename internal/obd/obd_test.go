package obd

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"obdrel/internal/stats"
)

func approx(a, b, tol float64) bool {
	d := math.Abs(a - b)
	return d <= tol || d <= tol*math.Max(math.Abs(a), math.Abs(b))
}

func TestDefaultTechValidates(t *testing.T) {
	if err := DefaultTech().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestTechValidateCatchesBadFields(t *testing.T) {
	mutations := []func(*Tech){
		func(x *Tech) { x.U0 = 0 },
		func(x *Tech) { x.Alpha0 = -1 },
		func(x *Tech) { x.VRef = 0 },
		func(x *Tech) { x.EaEV = -1 },
		func(x *Tech) { x.NV = -1 },
		func(x *Tech) { x.B0 = 0 },
		func(x *Tech) { x.CB = -1 },
	}
	for i, mut := range mutations {
		tech := DefaultTech()
		mut(tech)
		if err := tech.Validate(); err == nil {
			t.Errorf("mutation %d should fail validation", i)
		}
	}
}

func TestCharacterizeReference(t *testing.T) {
	tech := DefaultTech()
	p, err := tech.Characterize(tech.TRefC, tech.VRef)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(p.Alpha, tech.Alpha0, 1e-12) {
		t.Errorf("α at reference = %v, want %v", p.Alpha, tech.Alpha0)
	}
	if !approx(p.B, tech.B0, 1e-12) {
		t.Errorf("b at reference = %v, want %v", p.B, tech.B0)
	}
	// β = b·u0 ≈ 1.32 at nominal thickness: the thin-oxide Weibull
	// slope the calibration targets.
	if beta := p.B * tech.U0; !approx(beta, 1.32, 1e-9) {
		t.Errorf("nominal β = %v", beta)
	}
}

func TestCharacterizeTemperatureAcceleration(t *testing.T) {
	tech := DefaultTech()
	cold, _ := tech.Characterize(45, 1.2)
	hot, _ := tech.Characterize(75, 1.2)
	hotter, _ := tech.Characterize(105, 1.2)
	if !(hot.Alpha < cold.Alpha && hotter.Alpha < hot.Alpha) {
		t.Errorf("α not decreasing with T: %v %v %v", cold.Alpha, hot.Alpha, hotter.Alpha)
	}
	// A ~30 K rise should cost several× in characteristic life
	// (Ea = 0.6 eV → ~5-8× around 45–75 °C), the order-of-magnitude
	// sensitivity the paper quotes from [7], [8].
	ratio := cold.Alpha / hot.Alpha
	if ratio < 3 || ratio > 15 {
		t.Errorf("30 K acceleration factor = %v, outside [3, 15]", ratio)
	}
	// b decreases mildly with T but stays positive.
	if !(hot.B < cold.B) || hot.B <= 0 {
		t.Errorf("b(T): %v → %v", cold.B, hot.B)
	}
}

func TestCharacterizeVoltageAcceleration(t *testing.T) {
	tech := DefaultTech()
	nom, _ := tech.Characterize(45, 1.2)
	high, _ := tech.Characterize(45, 1.32) // +10% overdrive
	if !(high.Alpha < nom.Alpha) {
		t.Error("α not decreasing with V")
	}
	// Power-law acceleration: (1.1)^32 ≈ 21×.
	if ratio := nom.Alpha / high.Alpha; !approx(ratio, math.Pow(1.1, 32), 1e-6) {
		t.Errorf("voltage acceleration = %v", ratio)
	}
}

func TestCharacterizeStressCondition(t *testing.T) {
	// At the Fig. 3 stress (3.1 V, 100 °C) a minimum-area nominal
	// device must break down on the 10³–10⁵ second scale.
	tech := DefaultTech()
	p, err := tech.Characterize(100, 3.1)
	if err != nil {
		t.Fatal(err)
	}
	medianH := p.SampleFailureTime(0.5, tech.U0, 1)
	medianS := medianH * 3600
	if medianS < 1e3 || medianS > 1e6 {
		t.Errorf("stress median failure time = %v s, outside the Fig. 3 scale", medianS)
	}
}

func TestCharacterizeBFloor(t *testing.T) {
	tech := DefaultTech()
	p, err := tech.Characterize(2000, 1.2) // absurdly hot
	if err != nil {
		t.Fatal(err)
	}
	if !approx(p.B, 0.25*tech.B0, 1e-12) {
		t.Errorf("b floor = %v, want %v", p.B, 0.25*tech.B0)
	}
}

func TestCharacterizeRejectsBadInputs(t *testing.T) {
	tech := DefaultTech()
	if _, err := tech.Characterize(45, 0); err == nil {
		t.Error("zero voltage should error")
	}
	if _, err := tech.Characterize(-300, 1.2); err == nil {
		t.Error("below absolute zero should error")
	}
	bad := *DefaultTech()
	bad.B0 = 0
	if _, err := bad.Characterize(45, 1.2); err == nil {
		t.Error("invalid tech should error")
	}
}

func TestReliabilityAxioms(t *testing.T) {
	p := Params{Alpha: 1e15, B: 0.6}
	if got := p.Reliability(0, 2.2, 1); got != 1 {
		t.Errorf("R(0) = %v", got)
	}
	if got := p.Reliability(-5, 2.2, 1); got != 1 {
		t.Errorf("R(-5) = %v", got)
	}
	prev := 1.0
	for _, tt := range []float64{1, 1e3, 1e6, 1e9, 1e12, 1e15, 1e18} {
		r := p.Reliability(tt, 2.2, 1)
		if r < 0 || r > 1 {
			t.Fatalf("R(%v) = %v outside [0,1]", tt, r)
		}
		if r > prev+1e-15 {
			t.Fatalf("R not monotone at %v", tt)
		}
		prev = r
	}
	// CDF complements reliability.
	if rc := p.Reliability(1e12, 2.2, 1) + p.FailureCDF(1e12, 2.2, 1); !approx(rc, 1, 1e-12) {
		t.Errorf("R + F = %v", rc)
	}
	if f := p.FailureCDF(-1, 2.2, 1); f != 0 {
		t.Errorf("F(-1) = %v", f)
	}
}

func TestThinnerOxideLessReliable(t *testing.T) {
	p := Params{Alpha: 1e15, B: 0.6}
	tq := 1e6 // well inside the t < α regime
	thick := p.Reliability(tq, 2.3, 1)
	nominal := p.Reliability(tq, 2.2, 1)
	thin := p.Reliability(tq, 2.1, 1)
	if !(thin < nominal && nominal < thick) {
		t.Errorf("thickness ordering violated: %v %v %v", thin, nominal, thick)
	}
}

func TestLargerAreaLessReliable(t *testing.T) {
	p := Params{Alpha: 1e15, B: 0.6}
	small := p.Reliability(1e6, 2.2, 1)
	big := p.Reliability(1e6, 2.2, 1000)
	if !(big < small) {
		t.Errorf("area ordering violated: %v vs %v", small, big)
	}
	// Weakest-link: R(a=2) = R(a=1)².
	if r2 := p.Reliability(1e6, 2.2, 2); !approx(r2, small*small, 1e-12) {
		t.Errorf("R(a=2) = %v, want %v", r2, small*small)
	}
}

func TestSampleFailureTimeInvertsCDF(t *testing.T) {
	p := Params{Alpha: 1e15, B: 0.6}
	for _, u := range []float64{1e-9, 1e-6, 0.01, 0.5, 0.99} {
		ts := p.SampleFailureTime(u, 2.2, 1)
		if got := p.FailureCDF(ts, 2.2, 1); !approx(got, u, 1e-9) {
			t.Errorf("F(T(%v)) = %v", u, got)
		}
	}
}

func TestSampleFailureTimeMatchesWeibull(t *testing.T) {
	// With x fixed, failure times follow Weibull(α·a^(-1/(bx)), bx).
	p := Params{Alpha: 100, B: 0.6}
	x, a := 2.2, 3.0
	w, err := stats.NewWeibull(100*math.Pow(a, -1/(0.6*2.2)), 0.6*2.2)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(13))
	n := 50000
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = p.SampleFailureTime(rng.Float64(), x, a)
	}
	e, err := stats.NewECDF(xs)
	if err != nil {
		t.Fatal(err)
	}
	if ks := e.KSDistance(w.CDF); ks > 0.012 {
		t.Errorf("failure-time sample KS distance %v", ks)
	}
}

func TestMinThickness(t *testing.T) {
	tech := DefaultTech()
	sigma := 2.2 * 0.04 / 3
	got := tech.MinThickness(sigma, 3)
	if !approx(got, 2.2*0.96, 1e-12) {
		t.Errorf("MinThickness = %v", got)
	}
}

// Property: reliability is monotone in each of (t, x, a) for random
// valid parameters.
func TestReliabilityMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := Params{Alpha: math.Pow(10, 5+10*rng.Float64()), B: 0.3 + rng.Float64()}
		x := 1.5 + rng.Float64()
		a := 1 + 100*rng.Float64()
		tq := p.Alpha * math.Pow(10, -8+6*rng.Float64())
		r := p.Reliability(tq, x, a)
		return p.Reliability(tq*2, x, a) <= r+1e-15 &&
			p.Reliability(tq, x-0.1, a) <= r+1e-15 &&
			p.Reliability(tq, x, a*2) <= r+1e-15
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
