package batch

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"obdrel/internal/fault"
)

// sliceSource yields the given works in order.
func sliceSource(works []Work) Source {
	i := 0
	return func() (Work, bool, error) {
		if i >= len(works) {
			return Work{}, false, nil
		}
		w := works[i]
		i++
		return w, true, nil
	}
}

// okWork builds a work item whose Eval returns its index and whose
// Prepare counts invocations into prepares.
func okWork(index int, key string, prepares *atomic.Int64) Work {
	return Work{
		Index: index,
		Key:   key,
		Prepare: func(context.Context) (any, error) {
			prepares.Add(1)
			return key, nil
		},
		Eval: func(_ context.Context, prepared any) (any, error) {
			if prepared != any(key) {
				return nil, fmt.Errorf("item %d got prepared %v, want %q", index, prepared, key)
			}
			return index, nil
		},
	}
}

func collect(t *testing.T, results *[]Result) func(Result) error {
	t.Helper()
	return func(r Result) error {
		*results = append(*results, r)
		return nil
	}
}

func TestGroupingPreparesOncePerKey(t *testing.T) {
	var prepares atomic.Int64
	var works []Work
	for i := 0; i < 20; i++ {
		works = append(works, okWork(i, fmt.Sprintf("key-%d", i%3), &prepares))
	}
	var results []Result
	stats, err := Run(context.Background(), sliceSource(works), collect(t, &results), Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := prepares.Load(); got != 3 {
		t.Fatalf("prepares = %d, want 3 (one per distinct key)", got)
	}
	if stats.Groups != 3 || stats.Items != 20 || stats.OK != 20 || stats.Failed != 0 {
		t.Fatalf("stats = %+v", stats)
	}
	if stats.Reused != 20-3 {
		t.Fatalf("Reused = %d, want %d", stats.Reused, 20-3)
	}
	for i, r := range results {
		if r.Index != i || r.Err != nil || r.Value != any(i) {
			t.Fatalf("result %d = %+v", i, r)
		}
	}
}

func TestPrepareReusedAcrossWindows(t *testing.T) {
	var prepares atomic.Int64
	var works []Work
	for i := 0; i < 10; i++ {
		works = append(works, okWork(i, "shared", &prepares))
	}
	var results []Result
	flushes := 0
	stats, err := Run(context.Background(), sliceSource(works), collect(t, &results),
		Options{Window: 3, Workers: 1, Flush: func() { flushes++ }})
	if err != nil {
		t.Fatal(err)
	}
	if got := prepares.Load(); got != 1 {
		t.Fatalf("prepares = %d, want 1 across windows", got)
	}
	if stats.Windows != 4 {
		t.Fatalf("Windows = %d, want 4 (3+3+3+1)", stats.Windows)
	}
	if flushes != 4 {
		t.Fatalf("flushes = %d, want one per window", flushes)
	}
	if stats.Reused != 9 {
		t.Fatalf("Reused = %d, want 9", stats.Reused)
	}
}

func TestPerItemErrorsDontAbortStream(t *testing.T) {
	var prepares atomic.Int64
	evalErr := errors.New("bad query")
	works := []Work{
		okWork(0, "k", &prepares),
		{Index: 1, Err: errors.New("unresolvable")},
		{
			Index: 2, Key: "k",
			Prepare: func(context.Context) (any, error) { prepares.Add(1); return "k", nil },
			Eval:    func(context.Context, any) (any, error) { return nil, evalErr },
		},
		okWork(3, "k", &prepares),
	}
	var results []Result
	stats, err := Run(context.Background(), sliceSource(works), collect(t, &results), Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if stats.OK != 2 || stats.Failed != 2 {
		t.Fatalf("stats = %+v", stats)
	}
	if results[1].Err == nil || results[2].Err == nil {
		t.Fatalf("items 1 and 2 should fail: %+v", results)
	}
	if results[0].Err != nil || results[3].Err != nil {
		t.Fatalf("items 0 and 3 should succeed: %+v", results)
	}
	if !errors.Is(results[2].Err, evalErr) {
		t.Fatalf("item 2 error = %v, want %v", results[2].Err, evalErr)
	}
}

func TestPrepareErrorFailsGroupOnly(t *testing.T) {
	var prepares atomic.Int64
	boom := errors.New("substrate build failed")
	bad := func(index int) Work {
		return Work{
			Index: index, Key: "bad",
			Prepare: func(context.Context) (any, error) { return nil, boom },
			Eval:    func(context.Context, any) (any, error) { return "never", nil },
		}
	}
	works := []Work{okWork(0, "good", &prepares), bad(1), bad(2), okWork(3, "good", &prepares)}
	var results []Result
	stats, err := Run(context.Background(), sliceSource(works), collect(t, &results), Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Failed != 2 || stats.OK != 2 {
		t.Fatalf("stats = %+v", stats)
	}
	for _, i := range []int{1, 2} {
		if !errors.Is(results[i].Err, boom) {
			t.Fatalf("item %d error = %v, want %v", i, results[i].Err, boom)
		}
	}
}

func TestPreparePanicContained(t *testing.T) {
	works := []Work{{
		Index: 0, Key: "p",
		Prepare: func(context.Context) (any, error) { panic("prepare exploded") },
		Eval:    func(context.Context, any) (any, error) { return nil, nil },
	}}
	var results []Result
	_, err := Run(context.Background(), sliceSource(works), collect(t, &results), Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Err == nil || fault.ClassOf(results[0].Err) != fault.Permanent {
		t.Fatalf("want permanent-class error from panicking prepare, got %v", results[0].Err)
	}
}

func TestEvalPanicContained(t *testing.T) {
	var prepares atomic.Int64
	works := []Work{
		okWork(0, "k", &prepares),
		{
			Index: 1, Key: "k",
			Prepare: func(context.Context) (any, error) { return "k", nil },
			Eval:    func(context.Context, any) (any, error) { panic("eval exploded") },
		},
		okWork(2, "k", &prepares),
	}
	var results []Result
	stats, err := Run(context.Background(), sliceSource(works), collect(t, &results), Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if stats.OK != 2 || stats.Failed != 1 {
		t.Fatalf("stats = %+v", stats)
	}
	if results[1].Err == nil || fault.ClassOf(results[1].Err) != fault.Permanent {
		t.Fatalf("want permanent-class error from panicking eval, got %v", results[1].Err)
	}
}

func TestSourceErrorAfterEmittingPriorItems(t *testing.T) {
	var prepares atomic.Int64
	srcErr := errors.New("malformed item 2")
	n := 0
	src := func() (Work, bool, error) {
		if n == 2 {
			return Work{}, false, srcErr
		}
		w := okWork(n, "k", &prepares)
		n++
		return w, true, nil
	}
	var results []Result
	stats, err := Run(context.Background(), src, collect(t, &results), Options{Workers: 1})
	if !errors.Is(err, srcErr) {
		t.Fatalf("err = %v, want %v", err, srcErr)
	}
	if len(results) != 2 || stats.OK != 2 {
		t.Fatalf("items before the source error must still be emitted: %+v %+v", stats, results)
	}
}

func TestCancelFailsRemainingItems(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var works []Work
	for i := 0; i < 6; i++ {
		i := i
		works = append(works, Work{
			Index: i, Key: fmt.Sprintf("k%d", i),
			Prepare: func(context.Context) (any, error) {
				if i == 1 {
					cancel() // mid-run cancellation
				}
				return nil, nil
			},
			Eval: func(context.Context, any) (any, error) { return i, nil },
		})
	}
	var results []Result
	stats, err := Run(ctx, sliceSource(works), collect(t, &results), Options{Workers: 1})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(results) != 6 {
		t.Fatalf("every admitted item must get exactly one result, got %d", len(results))
	}
	if stats.Failed == 0 {
		t.Fatal("cancellation should fail the not-yet-evaluated items")
	}
	for _, r := range results[2:] {
		if !errors.Is(r.Err, context.Canceled) {
			t.Fatalf("item %d error = %v, want context.Canceled", r.Index, r.Err)
		}
	}
}

func TestEmitErrorStopsRun(t *testing.T) {
	var prepares atomic.Int64
	var works []Work
	for i := 0; i < 10; i++ {
		works = append(works, okWork(i, "k", &prepares))
	}
	clientGone := errors.New("client gone")
	emitted := 0
	_, err := Run(context.Background(), sliceSource(works), func(Result) error {
		emitted++
		if emitted == 3 {
			return clientGone
		}
		return nil
	}, Options{Window: 4, Workers: 1})
	if !errors.Is(err, clientGone) {
		t.Fatalf("err = %v, want %v", err, clientGone)
	}
	if emitted != 3 {
		t.Fatalf("emitted = %d, want 3 (stop immediately)", emitted)
	}
}

// TestConcurrentEvalRace exercises the planner's worker fan-out under
// the race detector: many items per group, parallel workers, shared
// prepared state read by every eval.
func TestConcurrentEvalRace(t *testing.T) {
	var prepares atomic.Int64
	var evals atomic.Int64
	var works []Work
	for i := 0; i < 200; i++ {
		i := i
		key := fmt.Sprintf("key-%d", i%4)
		works = append(works, Work{
			Index: i, Key: key,
			Prepare: func(context.Context) (any, error) {
				prepares.Add(1)
				return key, nil
			},
			Eval: func(_ context.Context, prepared any) (any, error) {
				evals.Add(1)
				return prepared, nil
			},
		})
	}
	var mu sync.Mutex
	var results []Result
	stats, err := Run(context.Background(), sliceSource(works), func(r Result) error {
		mu.Lock()
		results = append(results, r)
		mu.Unlock()
		return nil
	}, Options{Window: 64, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if prepares.Load() != 4 || evals.Load() != 200 {
		t.Fatalf("prepares=%d evals=%d, want 4/200", prepares.Load(), evals.Load())
	}
	if stats.OK != 200 || stats.Reused != 196 {
		t.Fatalf("stats = %+v", stats)
	}
	for i, r := range results {
		if r.Index != i {
			t.Fatalf("result %d has index %d — window emit order violated", i, r.Index)
		}
	}
}

// dupWork is okWork plus an EvalKey and an eval counter.
func dupWork(index int, key, evalKey string, prepares, evals *atomic.Int64) Work {
	w := okWork(index, key, prepares)
	w.EvalKey = evalKey
	inner := w.Eval
	w.Eval = func(ctx context.Context, prepared any) (any, error) {
		evals.Add(1)
		if _, err := inner(ctx, prepared); err != nil {
			return nil, err
		}
		return evalKey, nil
	}
	return w
}

func TestDuplicateEvalKeysShareOneEval(t *testing.T) {
	var prepares, evals atomic.Int64
	var works []Work
	for i := 0; i < 30; i++ {
		works = append(works, dupWork(i, "k", fmt.Sprintf("q-%d", i%5), &prepares, &evals))
	}
	var results []Result
	stats, err := Run(context.Background(), sliceSource(works), collect(t, &results), Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := evals.Load(); got != 5 {
		t.Fatalf("evals = %d, want 5 (one per distinct query)", got)
	}
	if stats.SharedEvals != 25 {
		t.Fatalf("SharedEvals = %d, want 25", stats.SharedEvals)
	}
	for i, r := range results {
		if r.Err != nil || r.Value != any(fmt.Sprintf("q-%d", i%5)) {
			t.Fatalf("result %d = %+v — fan-out answered the wrong query", i, r)
		}
	}
}

func TestEvalMemoSpansWindows(t *testing.T) {
	var prepares, evals atomic.Int64
	var works []Work
	for i := 0; i < 20; i++ {
		works = append(works, dupWork(i, "k", "same-query", &prepares, &evals))
	}
	var results []Result
	stats, err := Run(context.Background(), sliceSource(works), collect(t, &results),
		Options{Window: 4, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := evals.Load(); got != 1 {
		t.Fatalf("evals = %d, want 1 across 5 windows", got)
	}
	if stats.SharedEvals != 19 {
		t.Fatalf("SharedEvals = %d, want 19", stats.SharedEvals)
	}
}

func TestSharedEvalErrorFansOut(t *testing.T) {
	boom := errors.New("query rejected")
	var evals atomic.Int64
	mk := func(index int) Work {
		return Work{
			Index: index, Key: "k", EvalKey: "bad-query",
			Prepare: func(context.Context) (any, error) { return nil, nil },
			Eval: func(context.Context, any) (any, error) {
				evals.Add(1)
				return nil, boom
			},
		}
	}
	var results []Result
	stats, err := Run(context.Background(), sliceSource([]Work{mk(0), mk(1), mk(2)}),
		collect(t, &results), Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if evals.Load() != 1 {
		t.Fatalf("evals = %d, want 1 (the error is as shareable as the answer)", evals.Load())
	}
	if stats.Failed != 3 {
		t.Fatalf("stats = %+v", stats)
	}
	for i, r := range results {
		if !errors.Is(r.Err, boom) {
			t.Fatalf("result %d error = %v, want %v", i, r.Err, boom)
		}
	}
}

func TestEvalKeysScopedToGroup(t *testing.T) {
	// The same EvalKey under different substrate keys must NOT share:
	// "lifetime ppm=10" on design A is a different answer than on B.
	var prepares, evals atomic.Int64
	works := []Work{
		dupWork(0, "design-a", "q", &prepares, &evals),
		dupWork(1, "design-b", "q", &prepares, &evals),
	}
	var results []Result
	stats, err := Run(context.Background(), sliceSource(works), collect(t, &results), Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if evals.Load() != 2 || stats.SharedEvals != 0 {
		t.Fatalf("evals=%d shared=%d, want 2/0 — eval sharing leaked across groups", evals.Load(), stats.SharedEvals)
	}
}

func TestUnkeyedEvalsNeverShare(t *testing.T) {
	var prepares, evals atomic.Int64
	var works []Work
	for i := 0; i < 8; i++ {
		works = append(works, dupWork(i, "k", "", &prepares, &evals))
	}
	var results []Result
	stats, err := Run(context.Background(), sliceSource(works), collect(t, &results), Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if evals.Load() != 8 || stats.SharedEvals != 0 {
		t.Fatalf("evals=%d shared=%d, want 8/0 for unkeyed items", evals.Load(), stats.SharedEvals)
	}
}

func TestDedupConcurrentRace(t *testing.T) {
	var prepares, evals atomic.Int64
	var works []Work
	for i := 0; i < 240; i++ {
		works = append(works, dupWork(i, fmt.Sprintf("k%d", i%3), fmt.Sprintf("q%d", i%12), &prepares, &evals))
	}
	var mu sync.Mutex
	var results []Result
	stats, err := Run(context.Background(), sliceSource(works), func(r Result) error {
		mu.Lock()
		results = append(results, r)
		mu.Unlock()
		return nil
	}, Options{Window: 48, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	// 3 groups × 12 eval keys per group... but i%3 and i%12 align:
	// each (k, q) pair occurs for i ≡ fixed residue mod 12, so there
	// are 12 distinct (group, query) pairs.
	if evals.Load() != 12 {
		t.Fatalf("evals = %d, want 12 distinct (group, query) pairs", evals.Load())
	}
	if stats.OK != 240 || stats.SharedEvals != 240-12 {
		t.Fatalf("stats = %+v", stats)
	}
	for i, r := range results {
		if r.Index != i || r.Err != nil {
			t.Fatalf("result %d = %+v", i, r)
		}
	}
}
