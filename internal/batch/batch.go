// Package batch is the fleet-scale query planner: it takes a stream
// of resolved work items — each carrying a substrate grouping key, a
// once-per-group Prepare, and a per-item Eval — plans them a window
// at a time, evaluates each window's groups with the prepare done
// once per group and the evals fanned across a worker pool, and emits
// per-item results in input order.
//
// The planner owns none of the domain: the serving layer resolves
// HTTP items into Work (keys are canonical (design, config[, trace])
// fingerprints; Prepare builds or fetches the group's analyzer and
// warms its engine; Eval runs one zero-alloc query). What the planner
// guarantees:
//
//   - Prepare runs exactly once per distinct key per run, even when
//     the key recurs across windows — later windows reuse the
//     prepared value. One request's groups never share state with
//     another request's.
//   - A failed or panicking Prepare fails that group's items — with
//     an honest per-item error — and nothing else; the stream
//     continues.
//   - A failed or panicking Eval fails exactly its own item (and the
//     items sharing its eval unit, when the work carries an EvalKey —
//     identical queries share one honest answer, including a failed
//     one).
//   - Items with equal (Key, EvalKey) evaluate once per run: fleet
//     sweeps repeat the same canonical query across thousands of
//     units, and the planner answers the duplicates from the first
//     evaluation instead of re-running the query per item.
//   - Results are emitted in item order within each window, and
//     windows in input order, so memory is bounded by the window
//     size regardless of batch length.
//   - Cancellation is checked between windows and between evals:
//     items not yet evaluated when ctx dies fail with ctx's error,
//     every admitted item gets exactly one Result, and Run returns
//     ctx.Err().
package batch

import (
	"context"
	"errors"
	"fmt"

	"obdrel/internal/fault"
	"obdrel/internal/obs"
	"obdrel/internal/par"
)

// Work is one resolved batch item. Exactly one of Err or
// (Key, Prepare, Eval) is meaningful: a non-nil Err marks an item
// that failed resolution (bad design name, invalid config) and is
// reported as a per-item error without planning.
type Work struct {
	// Index is the item's position in the request; Results carry it
	// back so streams can interleave windows without losing identity.
	Index int
	// Key groups items sharing a substrate: items with equal keys
	// evaluate against one prepared value.
	Key string
	// Prepare builds the group's shared state (idempotent; called
	// once per distinct Key per Run).
	Prepare func(ctx context.Context) (any, error)
	// Eval answers this item's query against the prepared state.
	Eval func(ctx context.Context, prepared any) (any, error)
	// EvalKey, when non-empty, canonically names the query so items
	// with equal (Key, EvalKey) share one Eval call per run — the
	// answer (or error) fans out to every duplicate. Empty means the
	// item's Eval is not shareable and always runs.
	EvalKey string
	// Err marks a resolution failure.
	Err error
}

// Result is one item's outcome.
type Result struct {
	Index int
	Value any
	Err   error
}

// Stats counts one Run's work.
type Stats struct {
	// Items admitted, split into OK and Failed results.
	Items, OK, Failed int64
	// Groups is the number of distinct keys prepared; Reused counts
	// items that shared a previously prepared group (the substrate
	// amortization the planner exists for).
	Groups, Reused int64
	// SharedEvals counts items answered from another item's eval —
	// duplicates by (Key, EvalKey) that did not run their own query.
	SharedEvals int64
	// Windows is the number of planning windows processed.
	Windows int64
}

// Options tunes a Run.
type Options struct {
	// Window is the number of items planned and held in memory at a
	// time (default 256).
	Window int
	// Workers bounds eval parallelism within a group (0 =
	// GOMAXPROCS, 1 = serial).
	Workers int
	// Flush, when set, runs after each window's results are emitted —
	// the streaming hook that pushes the window to the client.
	Flush func()
}

// Source yields the next work item. ok=false ends the stream
// cleanly; a non-nil error ends it fatally after the items already
// yielded are evaluated and emitted (a malformed mid-stream item must
// not discard the valid items before it).
type Source func() (w Work, ok bool, err error)

// group is one window's share of a key's items.
type group struct {
	key   string
	items []int // indexes into the window slice
}

// evalOut is one evaluated query, shareable across duplicate items.
type evalOut struct {
	value any
	err   error
}

// evalUnit is one distinct query within a group: the items answered
// by a single Eval call.
type evalUnit struct {
	key      string // "" = unshareable, always one item
	items    []int  // indexes into the window slice
	out      *evalOut
	fromMemo bool
}

// memoCap bounds the per-run eval memo so a pathological batch of
// all-distinct queries cannot grow it without bound; past the cap,
// duplicates still share within their window, just not across
// windows.
const memoCap = 65536

// partitionEvals splits a group's items into eval units by EvalKey,
// first-seen order; unkeyed items each get their own unit.
func partitionEvals(items []Work, g *group) []*evalUnit {
	units := make([]*evalUnit, 0, len(g.items))
	byKey := make(map[string]*evalUnit)
	for _, i := range g.items {
		k := items[i].EvalKey
		if k == "" {
			units = append(units, &evalUnit{items: []int{i}})
			continue
		}
		u := byKey[k]
		if u == nil {
			u = &evalUnit{key: k}
			byKey[k] = u
			units = append(units, u)
		}
		u.items = append(u.items, i)
	}
	return units
}

// Run drains src through the planner, calling emit exactly once per
// admitted item. It returns when the source ends, the source fails,
// emit fails (client gone — evaluation stops), or ctx dies.
func Run(ctx context.Context, src Source, emit func(Result) error, opts Options) (Stats, error) {
	window := opts.Window
	if window <= 0 {
		window = 256
	}
	var stats Stats
	// prepared carries each distinct key's Prepare outcome across
	// windows: value or error, so a failed group fails fast on
	// recurrence instead of re-preparing.
	type prep struct {
		value any
		err   error
	}
	prepared := make(map[string]*prep)
	// evalMemo carries distinct (Key, EvalKey) answers across windows,
	// keyed by the concatenated pair. Written only between windows
	// (single-threaded); workers read it without locks.
	evalMemo := make(map[string]*evalOut)

	srcDone := false
	var srcErr error
	for !srcDone {
		// Plan: fill one window.
		items := make([]Work, 0, window)
		for len(items) < window {
			w, ok, err := src()
			if err != nil {
				srcErr = err
				srcDone = true
				break
			}
			if !ok {
				srcDone = true
				break
			}
			items = append(items, w)
		}
		if len(items) == 0 {
			break
		}
		stats.Windows++
		stats.Items += int64(len(items))

		_, plan := obs.StartSpan(ctx, "batch.plan")
		groups := make([]*group, 0, 8)
		byKey := make(map[string]*group, 8)
		results := make([]Result, len(items))
		for i, w := range items {
			results[i].Index = w.Index
			if w.Err != nil {
				results[i].Err = w.Err
				continue
			}
			g := byKey[w.Key]
			if g == nil {
				g = &group{key: w.Key}
				byKey[w.Key] = g
				groups = append(groups, g)
			}
			g.items = append(g.items, i)
		}
		plan.SetAttr("items", len(items))
		plan.SetAttr("groups", len(groups))
		plan.End()

		// Evaluate each group: prepare once, fan the evals.
		for _, g := range groups {
			if err := ctx.Err(); err != nil {
				for _, i := range g.items {
					results[i].Err = err
				}
				continue
			}
			p := prepared[g.key]
			if p == nil {
				p = &prep{}
				p.value, p.err = runPrepare(ctx, g.key, items[g.items[0]].Prepare)
				prepared[g.key] = p
				stats.Groups++
				stats.Reused += int64(len(g.items) - 1)
			} else {
				stats.Reused += int64(len(g.items))
			}
			if p.err != nil {
				for _, i := range g.items {
					results[i].Err = p.err
				}
				continue
			}
			units := partitionEvals(items, g)
			par.For(opts.Workers, len(units), func(k int) {
				u := units[k]
				if err := ctx.Err(); err != nil {
					u.out = &evalOut{err: err}
					return
				}
				if u.key != "" {
					if m := evalMemo[g.key+"\x00"+u.key]; m != nil {
						u.out, u.fromMemo = m, true
						return
					}
				}
				i := u.items[0]
				ictx, sp := obs.StartSpan(ctx, "batch.item")
				var out evalOut
				out.value, out.err = runEval(ictx, items[i].Eval, p.value)
				u.out = &out
				if sp != nil {
					sp.SetAttr("index", items[i].Index)
					if n := len(u.items); n > 1 {
						sp.SetAttr("fanout", n)
					}
					if out.err != nil {
						sp.SetAttr("error", out.err.Error())
					}
					sp.End()
				}
			})
			// Fan out, then commit fresh answers to the cross-window
			// memo (single-threaded again here).
			for _, u := range units {
				for _, i := range u.items {
					results[i].Value, results[i].Err = u.out.value, u.out.err
				}
				if u.fromMemo {
					stats.SharedEvals += int64(len(u.items))
				} else {
					stats.SharedEvals += int64(len(u.items) - 1)
					// Deterministic answers and errors are shareable;
					// cancellation is a property of this run's clock,
					// not of the query, so it never enters the memo.
					cancelled := errors.Is(u.out.err, context.Canceled) || errors.Is(u.out.err, context.DeadlineExceeded)
					if u.key != "" && !cancelled && len(evalMemo) < memoCap {
						evalMemo[g.key+"\x00"+u.key] = u.out
					}
				}
			}
		}

		// Emit in item order (results was filled in input order); an
		// emit error means the client is gone and the whole run stops.
		for _, r := range results {
			if r.Err != nil {
				stats.Failed++
			} else {
				stats.OK++
			}
			if err := emit(r); err != nil {
				return stats, err
			}
		}
		if opts.Flush != nil {
			opts.Flush()
		}
		if err := ctx.Err(); err != nil {
			return stats, err
		}
	}
	return stats, srcErr
}

// runPrepare runs a group's Prepare under a batch.group span with
// panic containment: a panicking substrate build fails its group, not
// the stream.
func runPrepare(ctx context.Context, key string, prepare func(context.Context) (any, error)) (v any, err error) {
	gctx, sp := obs.StartSpan(ctx, "batch.group")
	if sp != nil {
		sp.SetAttr("key", key)
		defer sp.End()
	}
	defer func() {
		if r := recover(); r != nil {
			err = fault.Permanent.Wrap(fmt.Errorf("batch: group prepare panicked: %v", r))
		}
	}()
	return prepare(gctx)
}

// runEval runs one item's Eval with panic containment.
func runEval(ctx context.Context, eval func(context.Context, any) (any, error), prepared any) (v any, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fault.Permanent.Wrap(fmt.Errorf("batch: item eval panicked: %v", r))
		}
	}()
	return eval(ctx, prepared)
}
