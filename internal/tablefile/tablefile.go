// Package tablefile defines the on-disk format for the hybrid
// engine's per-block 2-D lookup tables, so a daemon can spill tables
// on build and later serve them straight from a shared read-only
// mapping (mmap on Linux, a plain read elsewhere) instead of
// recomputing the N×100×100 double integrals.
//
// # Layout (version 1, all integers little-endian)
//
//	offset size field
//	0      4    magic "OBDT"
//	4      4    version (uint32) = 1
//	8      8    payload length (uint64): bytes from offset 88 to EOF
//	16     8    payload checksum (uint64): FNV-64a over the payload
//	24     32   table key: 32 ASCII bytes, the fingerprint-derived
//	            cache key of the tables (see obdrel's hybrid table key)
//	56     8    nBlocks (uint64)
//	64     8    nl (uint64): points on the shared ln(t/α) axis
//	72     8    nb (uint64): points on the shared b axis
//	80     8    reserved, 0
//	88     ...  payload:
//	            88                     ls axis, nl float64
//	            88+8·nl                bs axis, nb float64
//	            88+8·(nl+nb)+k·8·nl·nb block k values, nl·nb float64,
//	                                   row-major in l (v[i·nb+j])
//
// The payload starts at offset 88 — a multiple of 8 — so the float64
// sections are naturally aligned in a page-aligned mapping and can be
// aliased in place without copying. Readers verify magic, version,
// length, and checksum before trusting anything; the embedded key lets
// the caller reject a file whose fingerprints do not match the
// configuration it is about to serve (a stale or foreign file), even
// if the file itself is internally consistent.
package tablefile

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"os"
	"path/filepath"
	"unsafe"
)

const (
	magic      = "OBDT"
	version    = 1
	keySize    = 32
	headerSize = 88
)

// KeySize is the exact length of the embedded table key.
const KeySize = keySize

// File is an opened table file. Axis and block slices alias the
// underlying bytes (the mapping on Linux), so they stay valid — and
// must be treated as read-only — until Close.
type File struct {
	// Key is the fingerprint-derived key the file was written under.
	Key string
	// NL, NB, NBlocks describe the table geometry.
	NL, NB, NBlocks int

	ls, bs []float64
	blocks [][]float64
	data   []byte
	mapped bool
}

// Ls returns the shared ln(t/α) axis.
func (f *File) Ls() []float64 { return f.ls }

// Bs returns the shared b axis.
func (f *File) Bs() []float64 { return f.bs }

// Block returns block k's row-major value grid.
func (f *File) Block(k int) []float64 { return f.blocks[k] }

// Blocks returns all per-block value grids.
func (f *File) Blocks() [][]float64 { return f.blocks }

// Mapped reports whether the data is served from an mmap (true on
// Linux) rather than a heap copy.
func (f *File) Mapped() bool { return f.mapped }

// Close releases the mapping. The slices handed out become invalid.
func (f *File) Close() error {
	data, mapped := f.data, f.mapped
	f.data, f.ls, f.bs, f.blocks = nil, nil, nil, nil
	return closeBytes(data, mapped)
}

// hostLittleEndian reports the native byte order; on the (ubiquitous)
// little-endian hosts the on-disk floats alias in place, elsewhere
// they are decoded into a copy.
var hostLittleEndian = func() bool {
	x := uint16(1)
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// floats reinterprets n float64 starting at b[off] without copying
// when the host is little-endian and the section is 8-byte aligned,
// decoding into a fresh slice otherwise.
func floats(b []byte, off, n int) []float64 {
	sec := b[off : off+8*n]
	if hostLittleEndian && uintptr(unsafe.Pointer(&sec[0]))%8 == 0 {
		return unsafe.Slice((*float64)(unsafe.Pointer(&sec[0])), n)
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(sec[i*8:]))
	}
	return out
}

func checksum(payload []byte) uint64 {
	h := fnv.New64a()
	h.Write(payload)
	return h.Sum64()
}

// Open maps (or reads, off Linux) a table file and verifies its
// structure: magic, version, geometry, length, and payload checksum.
// The caller must additionally compare Key against the key it expects
// before serving the tables.
func Open(path string) (*File, error) {
	data, mapped, err := openBytes(path)
	if err != nil {
		return nil, err
	}
	f, err := parse(data, mapped)
	if err != nil {
		closeBytes(data, mapped)
		return nil, fmt.Errorf("tablefile: %s: %w", path, err)
	}
	return f, nil
}

func parse(data []byte, mapped bool) (*File, error) {
	if len(data) < headerSize {
		return nil, fmt.Errorf("truncated header (%d bytes)", len(data))
	}
	if string(data[0:4]) != magic {
		return nil, fmt.Errorf("bad magic %q", data[0:4])
	}
	if v := binary.LittleEndian.Uint32(data[4:8]); v != version {
		return nil, fmt.Errorf("unsupported version %d", v)
	}
	payloadLen := binary.LittleEndian.Uint64(data[8:16])
	sum := binary.LittleEndian.Uint64(data[16:24])
	key := string(data[24 : 24+keySize])
	nBlocks := binary.LittleEndian.Uint64(data[56:64])
	nl := binary.LittleEndian.Uint64(data[64:72])
	nb := binary.LittleEndian.Uint64(data[72:80])

	const maxDim = 1 << 20
	if nl < 2 || nb < 2 || nl > maxDim || nb > maxDim || nBlocks == 0 || nBlocks > maxDim {
		return nil, fmt.Errorf("implausible geometry %d blocks × %d×%d", nBlocks, nl, nb)
	}
	want := 8 * (nl + nb + nBlocks*nl*nb)
	if payloadLen != want {
		return nil, fmt.Errorf("payload length %d, want %d", payloadLen, want)
	}
	if uint64(len(data)) != headerSize+payloadLen {
		return nil, fmt.Errorf("file is %d bytes, want %d", len(data), headerSize+payloadLen)
	}
	payload := data[headerSize:]
	if got := checksum(payload); got != sum {
		return nil, fmt.Errorf("checksum mismatch: %#x, want %#x", got, sum)
	}

	f := &File{
		Key: key, NL: int(nl), NB: int(nb), NBlocks: int(nBlocks),
		data: data, mapped: mapped,
	}
	off := headerSize
	f.ls = floats(data, off, f.NL)
	off += 8 * f.NL
	f.bs = floats(data, off, f.NB)
	off += 8 * f.NB
	f.blocks = make([][]float64, f.NBlocks)
	for k := range f.blocks {
		f.blocks[k] = floats(data, off, f.NL*f.NB)
		off += 8 * f.NL * f.NB
	}
	return f, nil
}

// Write serializes the tables under key and atomically replaces path
// (temp file + rename in the same directory), so concurrent readers
// never observe a half-written file.
func Write(path, key string, ls, bs []float64, blocks [][]float64) error {
	if len(key) != keySize {
		return fmt.Errorf("tablefile: key must be %d bytes, got %d", keySize, len(key))
	}
	nl, nb := len(ls), len(bs)
	if nl < 2 || nb < 2 || len(blocks) == 0 {
		return fmt.Errorf("tablefile: degenerate tables %d blocks × %d×%d", len(blocks), nl, nb)
	}
	for k, v := range blocks {
		if len(v) != nl*nb {
			return fmt.Errorf("tablefile: block %d has %d values, want %d", k, len(v), nl*nb)
		}
	}
	payloadLen := 8 * (nl + nb + len(blocks)*nl*nb)
	buf := make([]byte, headerSize+payloadLen)
	off := headerSize
	put := func(v []float64) {
		for _, x := range v {
			binary.LittleEndian.PutUint64(buf[off:], math.Float64bits(x))
			off += 8
		}
	}
	put(ls)
	put(bs)
	for _, v := range blocks {
		put(v)
	}
	copy(buf[0:4], magic)
	binary.LittleEndian.PutUint32(buf[4:8], version)
	binary.LittleEndian.PutUint64(buf[8:16], uint64(payloadLen))
	binary.LittleEndian.PutUint64(buf[16:24], checksum(buf[headerSize:]))
	copy(buf[24:24+keySize], key)
	binary.LittleEndian.PutUint64(buf[56:64], uint64(len(blocks)))
	binary.LittleEndian.PutUint64(buf[64:72], uint64(nl))
	binary.LittleEndian.PutUint64(buf[72:80], uint64(nb))

	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".obdt-*")
	if err != nil {
		return fmt.Errorf("tablefile: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(buf); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("tablefile: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("tablefile: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("tablefile: %w", err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("tablefile: %w", err)
	}
	return nil
}
