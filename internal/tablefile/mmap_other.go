//go:build !linux

package tablefile

import "os"

// openBytes reads the whole file into memory — the portable fallback
// when a shared read-only mapping is unavailable.
func openBytes(path string) (data []byte, mapped bool, err error) {
	data, err = os.ReadFile(path)
	if err != nil {
		return nil, false, err
	}
	return data, false, nil
}

func closeBytes(data []byte, mapped bool) error { return nil }
