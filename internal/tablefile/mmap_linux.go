//go:build linux

package tablefile

import (
	"fmt"
	"os"
	"syscall"
)

// openBytes maps path read-only and shared, so every process serving
// the same table file shares one page-cache copy.
func openBytes(path string) (data []byte, mapped bool, err error) {
	fd, err := os.Open(path)
	if err != nil {
		return nil, false, err
	}
	defer fd.Close()
	st, err := fd.Stat()
	if err != nil {
		return nil, false, err
	}
	size := st.Size()
	if size < headerSize {
		return nil, false, fmt.Errorf("tablefile: %s: truncated header (%d bytes)", path, size)
	}
	data, err = syscall.Mmap(int(fd.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, false, fmt.Errorf("tablefile: mmap %s: %w", path, err)
	}
	return data, true, nil
}

func closeBytes(data []byte, mapped bool) error {
	if mapped && data != nil {
		return syscall.Munmap(data)
	}
	return nil
}
