package tablefile

import (
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
)

func sampleTables() (ls, bs []float64, blocks [][]float64) {
	ls = []float64{-40, -20, -10, 0}
	bs = []float64{0.5, 1.0, 1.5}
	blocks = make([][]float64, 2)
	for k := range blocks {
		v := make([]float64, len(ls)*len(bs))
		for i := range v {
			v[i] = float64(k*1000+i) * 0.125
		}
		blocks[k] = v
	}
	return ls, bs, blocks
}

const testKey = "0123456789abcdef0123456789abcdef"

func TestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "tables.obdt")
	ls, bs, blocks := sampleTables()
	if err := Write(path, testKey, ls, bs, blocks); err != nil {
		t.Fatalf("Write: %v", err)
	}
	f, err := Open(path)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer f.Close()
	if f.Key != testKey {
		t.Errorf("Key = %q, want %q", f.Key, testKey)
	}
	if f.NL != len(ls) || f.NB != len(bs) || f.NBlocks != len(blocks) {
		t.Errorf("geometry = %d×%d×%d, want %d×%d×%d",
			f.NBlocks, f.NL, f.NB, len(blocks), len(ls), len(bs))
	}
	if runtime.GOOS == "linux" && !f.Mapped() {
		t.Error("expected an mmap-backed file on linux")
	}
	for i, v := range f.Ls() {
		if v != ls[i] {
			t.Fatalf("Ls[%d] = %v, want %v", i, v, ls[i])
		}
	}
	for i, v := range f.Bs() {
		if v != bs[i] {
			t.Fatalf("Bs[%d] = %v, want %v", i, v, bs[i])
		}
	}
	for k := range blocks {
		got := f.Block(k)
		for i, v := range got {
			if v != blocks[k][i] {
				t.Fatalf("Block(%d)[%d] = %v, want %v", k, i, v, blocks[k][i])
			}
		}
	}
}

func TestWriteIsAtomicReplace(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "tables.obdt")
	ls, bs, blocks := sampleTables()
	if err := Write(path, testKey, ls, bs, blocks); err != nil {
		t.Fatalf("Write: %v", err)
	}
	// Overwrite with different content under a different key.
	key2 := strings.Repeat("f", KeySize)
	blocks[0][0] = 42
	if err := Write(path, key2, ls, bs, blocks); err != nil {
		t.Fatalf("second Write: %v", err)
	}
	f, err := Open(path)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer f.Close()
	if f.Key != key2 {
		t.Errorf("Key = %q, want %q", f.Key, key2)
	}
	if f.Block(0)[0] != 42 {
		t.Errorf("Block(0)[0] = %v, want 42", f.Block(0)[0])
	}
	// No temp files left behind.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Errorf("directory has %d entries after writes, want 1", len(entries))
	}
}

func TestOpenRejectsCorruption(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "tables.obdt")
	ls, bs, blocks := sampleTables()
	if err := Write(path, testKey, ls, bs, blocks); err != nil {
		t.Fatalf("Write: %v", err)
	}
	good, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name   string
		mutate func(b []byte) []byte
	}{
		{"flipped payload byte", func(b []byte) []byte {
			b[len(b)-3] ^= 0xff
			return b
		}},
		{"bad magic", func(b []byte) []byte {
			b[0] = 'X'
			return b
		}},
		{"future version", func(b []byte) []byte {
			b[4] = 99
			return b
		}},
		{"truncated payload", func(b []byte) []byte {
			return b[:len(b)-8]
		}},
		{"truncated header", func(b []byte) []byte {
			return b[:headerSize-1]
		}},
		{"implausible geometry", func(b []byte) []byte {
			b[64] = 0 // nl = 0
			return b
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			bad := tc.mutate(append([]byte(nil), good...))
			p := filepath.Join(dir, "bad.obdt")
			if err := os.WriteFile(p, bad, 0o644); err != nil {
				t.Fatal(err)
			}
			if f, err := Open(p); err == nil {
				f.Close()
				t.Fatal("Open accepted a corrupted file")
			}
		})
	}
}

func TestWriteValidation(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "tables.obdt")
	ls, bs, blocks := sampleTables()
	if err := Write(path, "short", ls, bs, blocks); err == nil {
		t.Error("Write accepted a short key")
	}
	if err := Write(path, testKey, ls[:1], bs, blocks); err == nil {
		t.Error("Write accepted a 1-point axis")
	}
	bad := [][]float64{blocks[0], blocks[1][:3]}
	if err := Write(path, testKey, ls, bs, bad); err == nil {
		t.Error("Write accepted a short block")
	}
}

func TestKeySurvivesButCallerMustCheck(t *testing.T) {
	// Open itself does not enforce a key match — it only surfaces the
	// embedded key. This test documents the contract the obdrel loader
	// relies on: a structurally valid file with the wrong key opens
	// fine, and rejection happens one layer up.
	dir := t.TempDir()
	path := filepath.Join(dir, "tables.obdt")
	ls, bs, blocks := sampleTables()
	other := strings.Repeat("a", KeySize)
	if err := Write(path, other, ls, bs, blocks); err != nil {
		t.Fatal(err)
	}
	f, err := Open(path)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer f.Close()
	if f.Key == testKey {
		t.Fatal("key unexpectedly matches")
	}
}
