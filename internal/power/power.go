// Package power estimates per-block power in the spirit of Wattch
// [35]: an activity-based dynamic component per block class plus a
// temperature-dependent leakage component. The reliability analysis
// does not need cycle accuracy — it needs a plausible per-block
// power map to drive the thermal solver, which in turn produces the
// block-structured temperature profiles (Fig. 1) that define the
// reliability blocks.
package power

import (
	"fmt"
	"math"

	"obdrel/internal/floorplan"
)

// Model holds the power-density coefficients. Lengths use the
// floorplan's normalized unit (the reference chip is 1×1), so
// densities are watts per unit chip area.
type Model struct {
	// VNom is the supply voltage the dynamic densities are quoted at.
	VNom float64
	// DynDensity maps block class to dynamic power density at VNom
	// and activity 1 (W per unit area).
	DynDensity map[floorplan.Class]float64
	// LeakDensity0 is the leakage power density at TRef (W per unit
	// area).
	LeakDensity0 float64
	// LeakTCoeff is the exponential temperature coefficient of
	// leakage (1/K); leakage doubles every ln(2)/LeakTCoeff kelvin.
	LeakTCoeff float64
	// TRef is the leakage reference temperature (°C).
	TRef float64
}

// Default returns the calibrated model used by the benchmarks: a
// high-performance 45 nm-class design drawing a few tens of watts on
// the normalized 1×1 die, with execution units an order of magnitude
// denser in power than caches — the contrast that creates the
// hotspots of Fig. 1.
func Default() *Model {
	return &Model{
		VNom: 1.2,
		DynDensity: map[floorplan.Class]float64{
			floorplan.ClassALU:     112,
			floorplan.ClassFPU:     90,
			floorplan.ClassRegFile: 60,
			floorplan.ClassQueue:   45,
			floorplan.ClassControl: 40,
			floorplan.ClassCache:   25,
		},
		LeakDensity0: 4,
		LeakTCoeff:   math.Ln2 / 30, // leakage doubles every 30 K
		TRef:         45,
	}
}

// Validate checks the model's coefficients.
func (m *Model) Validate() error {
	if !(m.VNom > 0) {
		return fmt.Errorf("power: nominal voltage must be positive, got %v", m.VNom)
	}
	if len(m.DynDensity) == 0 {
		return fmt.Errorf("power: no dynamic densities configured")
	}
	for c, d := range m.DynDensity {
		if d < 0 {
			return fmt.Errorf("power: negative dynamic density for class %v", c)
		}
	}
	if m.LeakDensity0 < 0 || m.LeakTCoeff < 0 {
		return fmt.Errorf("power: negative leakage parameters")
	}
	return nil
}

// Dynamic returns the block's dynamic power at supply voltage v:
// density · area · activity · (v/VNom)². The quadratic voltage
// dependence is the α·C·V²·f switching-power law with activity and
// frequency folded into the density.
func (m *Model) Dynamic(b *floorplan.Block, v float64) float64 {
	d, ok := m.DynDensity[b.Class]
	if !ok {
		d = m.DynDensity[floorplan.ClassControl]
	}
	s := v / m.VNom
	return d * b.Area() * b.Activity * s * s
}

// Leakage returns the block's leakage power at supply voltage v and
// temperature tC (°C). Leakage scales linearly with v (subthreshold
// current ∝ V to first order at fixed Vth) and exponentially with
// temperature.
func (m *Model) Leakage(b *floorplan.Block, v, tC float64) float64 {
	return m.LeakDensity0 * b.Area() * (v / m.VNom) * math.Exp(m.LeakTCoeff*(tC-m.TRef))
}

// Block returns the block's total power at (v, tC).
func (m *Model) Block(b *floorplan.Block, v, tC float64) float64 {
	return m.Dynamic(b, v) + m.Leakage(b, v, tC)
}

// DesignPowers returns per-block total power for a whole design with a
// uniform supply voltage and per-block temperatures. temps must have
// one entry per block (use the same value everywhere for a first
// leakage estimate before the thermal solve).
func (m *Model) DesignPowers(d *floorplan.Design, v float64, temps []float64) ([]float64, error) {
	if len(temps) != len(d.Blocks) {
		return nil, fmt.Errorf("power: %d temperatures for %d blocks", len(temps), len(d.Blocks))
	}
	out := make([]float64, len(d.Blocks))
	for i := range d.Blocks {
		out[i] = m.Block(&d.Blocks[i], v, temps[i])
	}
	return out, nil
}

// Total sums a power vector.
func Total(powers []float64) float64 {
	s := 0.0
	for _, p := range powers {
		s += p
	}
	return s
}
