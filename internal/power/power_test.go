package power

import (
	"math"
	"testing"

	"obdrel/internal/floorplan"
)

func approx(a, b, tol float64) bool {
	d := math.Abs(a - b)
	return d <= tol || d <= tol*math.Max(math.Abs(a), math.Abs(b))
}

func aluBlock() *floorplan.Block {
	return &floorplan.Block{
		Name: "alu", X: 0, Y: 0, W: 0.2, H: 0.2,
		Devices: 1000, Class: floorplan.ClassALU, Activity: 0.5,
	}
}

func TestDefaultValidates(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateCatchesBadModels(t *testing.T) {
	m := Default()
	m.VNom = 0
	if err := m.Validate(); err == nil {
		t.Error("zero VNom should fail")
	}
	m = Default()
	m.DynDensity = nil
	if err := m.Validate(); err == nil {
		t.Error("empty densities should fail")
	}
	m = Default()
	m.DynDensity[floorplan.ClassALU] = -1
	if err := m.Validate(); err == nil {
		t.Error("negative density should fail")
	}
	m = Default()
	m.LeakDensity0 = -1
	if err := m.Validate(); err == nil {
		t.Error("negative leakage should fail")
	}
}

func TestDynamicScalesQuadraticallyWithVoltage(t *testing.T) {
	m := Default()
	b := aluBlock()
	p1 := m.Dynamic(b, 1.2)
	p2 := m.Dynamic(b, 2.4)
	if !approx(p2, 4*p1, 1e-12) {
		t.Errorf("doubling V: %v → %v, want ×4", p1, p2)
	}
	// Hand check: density·area·activity at nominal V.
	want := 112 * 0.04 * 0.5
	if !approx(p1, want, 1e-12) {
		t.Errorf("Dynamic = %v, want %v", p1, want)
	}
}

func TestDynamicScalesWithActivity(t *testing.T) {
	m := Default()
	b := aluBlock()
	p1 := m.Dynamic(b, 1.2)
	b.Activity = 1.0
	p2 := m.Dynamic(b, 1.2)
	if !approx(p2, 2*p1, 1e-12) {
		t.Errorf("doubling activity: %v → %v", p1, p2)
	}
}

func TestDynamicUnknownClassFallsBack(t *testing.T) {
	m := Default()
	b := aluBlock()
	b.Class = floorplan.Class(97)
	got := m.Dynamic(b, 1.2)
	want := m.DynDensity[floorplan.ClassControl] * b.Area() * b.Activity
	if !approx(got, want, 1e-12) {
		t.Errorf("unknown class power = %v, want control fallback %v", got, want)
	}
}

func TestLeakageDoublesPer30K(t *testing.T) {
	m := Default()
	b := aluBlock()
	p45 := m.Leakage(b, 1.2, 45)
	p75 := m.Leakage(b, 1.2, 75)
	if !approx(p75, 2*p45, 1e-9) {
		t.Errorf("leakage 45→75 °C: %v → %v, want ×2", p45, p75)
	}
	if !approx(p45, 4*0.04, 1e-12) {
		t.Errorf("reference leakage = %v", p45)
	}
}

func TestBlockIsSumOfComponents(t *testing.T) {
	m := Default()
	b := aluBlock()
	if got := m.Block(b, 1.2, 60); !approx(got, m.Dynamic(b, 1.2)+m.Leakage(b, 1.2, 60), 1e-12) {
		t.Errorf("Block = %v", got)
	}
}

func TestDesignPowers(t *testing.T) {
	m := Default()
	d := floorplan.C6()
	temps := make([]float64, len(d.Blocks))
	for i := range temps {
		temps[i] = 60
	}
	powers, err := m.DesignPowers(d, 1.2, temps)
	if err != nil {
		t.Fatal(err)
	}
	if len(powers) != len(d.Blocks) {
		t.Fatalf("got %d powers", len(powers))
	}
	tot := Total(powers)
	// Calibration envelope: the EV6-like chip draws tens of watts.
	if tot < 15 || tot > 80 {
		t.Errorf("C6 total power = %v W, outside the calibrated envelope", tot)
	}
	// The hottest producer per area should be the integer execution
	// unit, not a cache.
	var intexecD, icacheD float64
	for i := range d.Blocks {
		density := powers[i] / d.Blocks[i].Area()
		switch d.Blocks[i].Name {
		case "intexec":
			intexecD = density
		case "icache":
			icacheD = density
		}
	}
	if !(intexecD > 3*icacheD) {
		t.Errorf("intexec density %v not ≫ icache density %v", intexecD, icacheD)
	}
	// Mismatched temps slice must error.
	if _, err := m.DesignPowers(d, 1.2, temps[:2]); err == nil {
		t.Error("short temps should error")
	}
}
