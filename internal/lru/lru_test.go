package lru

import (
	"reflect"
	"testing"
)

func TestEvictionOrder(t *testing.T) {
	c := New[int](2)
	c.Put("a", 1)
	c.Put("b", 2)
	if k, v, ev := c.Put("c", 3); !ev || k != "a" || v != 1 {
		t.Fatalf("expected eviction of a/1, got %q/%d ev=%t", k, v, ev)
	}
	if c.Len() != 2 {
		t.Fatalf("len = %d, want 2", c.Len())
	}
	if _, ok := c.Get("a"); ok {
		t.Fatal("a should have been evicted")
	}
}

func TestGetRefreshesRecency(t *testing.T) {
	c := New[int](2)
	c.Put("a", 1)
	c.Put("b", 2)
	c.Get("a") // a is now MRU; next eviction hits b
	if k, _, ev := c.Put("c", 3); !ev || k != "b" {
		t.Fatalf("expected eviction of b, got %q ev=%t", k, ev)
	}
	if v, ok := c.Get("a"); !ok || v != 1 {
		t.Fatalf("a lost: %d %t", v, ok)
	}
	// The Get above made a MRU again.
	if got := c.Keys(); !reflect.DeepEqual(got, []string{"a", "c"}) {
		t.Fatalf("keys = %v", got)
	}
}

func TestPutUpdatesInPlace(t *testing.T) {
	c := New[int](2)
	c.Put("a", 1)
	c.Put("a", 9)
	if c.Len() != 1 {
		t.Fatalf("len = %d, want 1", c.Len())
	}
	if v, _ := c.Get("a"); v != 9 {
		t.Fatalf("a = %d, want 9", v)
	}
}

func TestRemove(t *testing.T) {
	c := New[int](2)
	c.Put("a", 1)
	if !c.Remove("a") || c.Remove("a") || c.Len() != 0 {
		t.Fatal("remove semantics broken")
	}
}

func TestCapacityFloor(t *testing.T) {
	c := New[int](0)
	c.Put("a", 1)
	if _, _, ev := c.Put("b", 2); !ev {
		t.Fatal("capacity floor of 1 should evict on second insert")
	}
}
