// Package lru is a minimal least-recently-used map used by the
// serving layer's analyzer registry. It is intentionally not
// goroutine-safe: the registry already holds a lock around every
// cache operation, and pushing a second mutex down here would only
// hide ordering bugs.
package lru

import "container/list"

// Cache maps string keys to values of type V, evicting the least
// recently used entry once Len exceeds the capacity.
type Cache[V any] struct {
	capacity int
	order    *list.List // front = most recently used
	index    map[string]*list.Element
}

type entry[V any] struct {
	key string
	val V
}

// New returns an empty cache. Capacity must be positive.
func New[V any](capacity int) *Cache[V] {
	if capacity < 1 {
		capacity = 1
	}
	return &Cache[V]{
		capacity: capacity,
		order:    list.New(),
		index:    make(map[string]*list.Element, capacity),
	}
}

// Get returns the value for key and marks it most recently used.
func (c *Cache[V]) Get(key string) (V, bool) {
	if el, ok := c.index[key]; ok {
		c.order.MoveToFront(el)
		return el.Value.(*entry[V]).val, true
	}
	var zero V
	return zero, false
}

// Put inserts or updates key, marking it most recently used. When the
// insert pushes the cache over capacity it evicts the LRU entry and
// returns its key and value with evicted=true.
func (c *Cache[V]) Put(key string, val V) (evictedKey string, evictedVal V, evicted bool) {
	if el, ok := c.index[key]; ok {
		c.order.MoveToFront(el)
		el.Value.(*entry[V]).val = val
		var zero V
		return "", zero, false
	}
	c.index[key] = c.order.PushFront(&entry[V]{key: key, val: val})
	if c.order.Len() <= c.capacity {
		var zero V
		return "", zero, false
	}
	oldest := c.order.Back()
	c.order.Remove(oldest)
	e := oldest.Value.(*entry[V])
	delete(c.index, e.key)
	return e.key, e.val, true
}

// Remove deletes key, reporting whether it was present.
func (c *Cache[V]) Remove(key string) bool {
	el, ok := c.index[key]
	if !ok {
		return false
	}
	c.order.Remove(el)
	delete(c.index, key)
	return true
}

// Len returns the number of cached entries.
func (c *Cache[V]) Len() int { return c.order.Len() }

// Keys returns the keys from most to least recently used.
func (c *Cache[V]) Keys() []string {
	out := make([]string, 0, c.order.Len())
	for el := c.order.Front(); el != nil; el = el.Next() {
		out = append(out, el.Value.(*entry[V]).key)
	}
	return out
}
