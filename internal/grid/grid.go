// Package grid implements the grid-based spatial-correlation model of
// oxide-thickness variation (Section II of the paper).
//
// The chip is partitioned into Nx×Ny grids. Every device in grid i has
// thickness
//
//	x = u0 + z_g + z_corr(i) + z_eps                         (Eq. 1)
//
// where z_g ~ N(0, σ_g²) is shared by the whole die, z_corr is a
// multivariate Gaussian over grids with an exponentially decaying
// distance correlation (the paper's substitute for measured wafer
// data, citing Liu [38]), and z_eps ~ N(0, σ_ε²) is independent per
// device. Principal-component analysis of the combined
// global+spatial covariance produces the canonical form
//
//	x = λ_{i,0} + Σ_j λ_{i,j} z_j + λ_r ε                    (Eq. 2)
//
// with independent standard normal z_j. The loading matrix Λ (one row
// per grid) is what the BLOD characterization consumes.
package grid

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"

	"obdrel/internal/linalg"
	"obdrel/internal/par"
)

// Model describes the thickness-variation structure of one technology
// and chip geometry. All lengths share one (arbitrary) unit; RhoDist
// is expressed as a fraction of the larger chip dimension, matching
// the paper's "correlation distance normalized w.r.t. the chip
// dimensions".
type Model struct {
	// U0 is the nominal oxide thickness (nm).
	U0 float64
	// W, H are the chip dimensions.
	W, H float64
	// Nx, Ny are the spatial-correlation grid resolution.
	Nx, Ny int
	// SigmaG, SigmaS, SigmaE are the standard deviations of the
	// inter-die, spatially correlated intra-die, and independent
	// variation components (nm).
	SigmaG, SigmaS, SigmaE float64
	// RhoDist is the correlation distance as a fraction of
	// max(W, H). Used by StructExpDecay.
	RhoDist float64
	// Structure selects the correlation structure; the zero value is
	// the paper's exponential-decay grid model.
	Structure Structure
	// QTLevels and QTDecay configure StructQuadTree: the number of
	// levels (default 3) and the geometric per-level variance decay
	// (default 0.5).
	QTLevels int
	QTDecay  float64
	// Pattern optionally adds the wafer-level systematic component of
	// [21]–[23]: a deterministic, location-dependent nominal-thickness
	// offset per grid (the paper notes its model and the pattern model
	// are compatible by making the inter-die term location-dependent).
	// Nil means no systematic pattern.
	Pattern *WaferPattern
}

// WaferPattern is a deterministic across-wafer thickness pattern
// (bowl/slant, [21], [23]) evaluated at a die's position on the
// wafer. Coordinates are in wafer-radius units with the wafer center
// at the origin.
type WaferPattern struct {
	// DieX, DieY locate the die center on the wafer; DieSpan is the
	// die width in wafer-radius units (used to map within-die
	// positions onto the wafer).
	DieX, DieY, DieSpan float64
	// Bowl is the quadratic coefficient: offset Bowl·r² (nm) at
	// radius r.
	Bowl float64
	// SlantX, SlantY are linear gradients (nm per wafer radius).
	SlantX, SlantY float64
}

// Offset returns the pattern's thickness offset (nm) at wafer
// coordinates (xw, yw).
func (p *WaferPattern) Offset(xw, yw float64) float64 {
	return p.Bowl*(xw*xw+yw*yw) + p.SlantX*xw + p.SlantY*yw
}

// NominalAt returns the nominal thickness of grid g: u0 plus the
// wafer pattern's offset at the grid's wafer position, if a pattern
// is configured.
func (m *Model) NominalAt(g int) float64 {
	if m.Pattern == nil {
		return m.U0
	}
	x, y := m.GridCenter(g)
	span := m.Pattern.DieSpan
	xw := m.Pattern.DieX + (x/m.W-0.5)*span
	yw := m.Pattern.DieY + (y/m.H-0.5)*span
	return m.U0 + m.Pattern.Offset(xw, yw)
}

// NewModel validates and returns a Model.
func NewModel(u0, w, h float64, nx, ny int, sigmaG, sigmaS, sigmaE, rhoDist float64) (*Model, error) {
	m := &Model{
		U0: u0, W: w, H: h, Nx: nx, Ny: ny,
		SigmaG: sigmaG, SigmaS: sigmaS, SigmaE: sigmaE, RhoDist: rhoDist,
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}

// Validate checks the model's parameters.
func (m *Model) Validate() error {
	switch {
	case !(m.U0 > 0):
		return fmt.Errorf("grid: nominal thickness must be positive, got %v", m.U0)
	case !(m.W > 0) || !(m.H > 0):
		return fmt.Errorf("grid: chip dimensions must be positive, got %v×%v", m.W, m.H)
	case m.Nx <= 0 || m.Ny <= 0:
		return fmt.Errorf("grid: grid resolution must be positive, got %d×%d", m.Nx, m.Ny)
	case m.SigmaG < 0 || m.SigmaS < 0 || m.SigmaE < 0:
		return errors.New("grid: sigmas must be non-negative")
	case m.SigmaG+m.SigmaS+m.SigmaE == 0:
		return errors.New("grid: at least one variation component must be non-zero")
	case m.Structure == StructExpDecay && !(m.RhoDist > 0):
		return fmt.Errorf("grid: correlation distance must be positive, got %v", m.RhoDist)
	case m.Structure == StructQuadTree && (m.QTLevels < 0 || m.QTDecay < 0):
		return fmt.Errorf("grid: invalid quad-tree parameters levels=%d decay=%v", m.QTLevels, m.QTDecay)
	case m.Pattern != nil && m.Pattern.DieSpan < 0:
		return fmt.Errorf("grid: wafer-pattern die span must be non-negative, got %v", m.Pattern.DieSpan)
	}
	return nil
}

// NumGrids returns the number of spatial grids n = Nx·Ny.
func (m *Model) NumGrids() int { return m.Nx * m.Ny }

// GridIndex returns the grid containing point (x, y); coordinates
// outside the chip are clamped onto it.
func (m *Model) GridIndex(x, y float64) int {
	ix := int(x / m.W * float64(m.Nx))
	iy := int(y / m.H * float64(m.Ny))
	if ix < 0 {
		ix = 0
	}
	if ix >= m.Nx {
		ix = m.Nx - 1
	}
	if iy < 0 {
		iy = 0
	}
	if iy >= m.Ny {
		iy = m.Ny - 1
	}
	return iy*m.Nx + ix
}

// GridCenter returns the center coordinates of grid g.
func (m *Model) GridCenter(g int) (x, y float64) {
	ix := g % m.Nx
	iy := g / m.Nx
	return (float64(ix) + 0.5) * m.W / float64(m.Nx), (float64(iy) + 0.5) * m.H / float64(m.Ny)
}

// GridRect returns the rectangle [x0,x1)×[y0,y1) of grid g.
func (m *Model) GridRect(g int) (x0, y0, x1, y1 float64) {
	ix := g % m.Nx
	iy := g / m.Nx
	wx := m.W / float64(m.Nx)
	wy := m.H / float64(m.Ny)
	return float64(ix) * wx, float64(iy) * wy, float64(ix+1) * wx, float64(iy+1) * wy
}

// Correlation returns the model correlation of the combined
// global+spatial component between two grid centers at distance d:
//
//	ρ(d) = (σ_g² + σ_s²·exp(-d/L)) / (σ_g² + σ_s²)
//
// with L = RhoDist · max(W, H).
func (m *Model) Correlation(d float64) float64 {
	tot := m.SigmaG*m.SigmaG + m.SigmaS*m.SigmaS
	if tot == 0 {
		return 0
	}
	l := m.RhoDist * math.Max(m.W, m.H)
	return (m.SigmaG*m.SigmaG + m.SigmaS*m.SigmaS*math.Exp(-d/l)) / tot
}

// Covariance builds the n×n covariance matrix of the combined
// global + spatially correlated thickness component across grids.
// For StructExpDecay, entry (i, j) is σ_g² + σ_s²·exp(-d_ij/L); for
// StructQuadTree it is σ_g² plus the variances of the quad-tree
// regions shared by the two grids.
func (m *Model) Covariance() *linalg.Matrix {
	return m.CovarianceWorkers(1)
}

// CovarianceWorkers is Covariance with the row assembly fanned out
// over workers (0 = GOMAXPROCS, 1 = serial). Row i fills entries
// (i, j≥i) and mirrors them; distinct i touch disjoint (i, j) pairs,
// and every entry depends only on the two grid centers, so the matrix
// is bit-identical for every worker count.
func (m *Model) CovarianceWorkers(workers int) *linalg.Matrix {
	c, _ := m.CovarianceCtx(context.Background(), workers)
	return c
}

// CovarianceCtx is CovarianceWorkers with a cancellation checkpoint at
// every row: once ctx expires, assembly stops and ctx's error is
// returned.
func (m *Model) CovarianceCtx(ctx context.Context, workers int) (*linalg.Matrix, error) {
	if m.Structure == StructQuadTree {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		return m.quadTreeCovariance(), nil
	}
	n := m.NumGrids()
	c := linalg.NewMatrix(n, n)
	l := m.RhoDist * math.Max(m.W, m.H)
	g2 := m.SigmaG * m.SigmaG
	s2 := m.SigmaS * m.SigmaS
	if err := par.ForCtx(ctx, workers, n, func(i int) {
		xi, yi := m.GridCenter(i)
		c.Set(i, i, g2+s2)
		for j := i + 1; j < n; j++ {
			xj, yj := m.GridCenter(j)
			d := math.Hypot(xi-xj, yi-yj)
			v := g2 + s2*math.Exp(-d/l)
			c.Set(i, j, v)
			c.Set(j, i, v)
		}
	}); err != nil {
		return nil, err
	}
	return c, nil
}

// PCA is the canonical-form representation of the correlated
// thickness variation: row i of Loadings holds the sensitivities
// λ_{i,1..K} of grid i to the K retained principal components.
type PCA struct {
	// Loadings is n×K: Loadings[i][k] = λ_{i,k}.
	Loadings *linalg.Matrix
	// Eigenvalues holds the retained eigenvalues, descending.
	Eigenvalues []float64
	// K is the number of retained components.
	K int
	// TotalVariance is the trace of the covariance matrix;
	// CapturedVariance is the sum of retained eigenvalues.
	TotalVariance, CapturedVariance float64
}

// ComputePCA returns the canonical-form factorization x = Λ·z of the
// correlated component. For StructExpDecay this eigendecomposes the
// covariance (Λ = V·√D), retaining components until keepFraction of
// the total variance is captured (pass 1 to keep everything above
// numerical noise). For StructQuadTree the factor is exact by
// construction (one component per region) and keepFraction is
// ignored beyond validation.
func (m *Model) ComputePCA(keepFraction float64) (*PCA, error) {
	return m.ComputePCAWorkers(keepFraction, 1)
}

// ComputePCAWorkers is ComputePCA with the covariance assembly and the
// loading-matrix scaling fanned out over workers. The eigensolver
// itself stays serial (Householder/QL is sequential by construction);
// since every parallel stage here is element-independent, the PCA is
// bit-identical for every worker count.
func (m *Model) ComputePCAWorkers(keepFraction float64, workers int) (*PCA, error) {
	return m.ComputePCACtx(context.Background(), keepFraction, workers)
}

// ComputePCACtx is ComputePCAWorkers with cancellation checkpoints in
// the covariance assembly, the eigensolver's outer loops, and the
// loading-matrix scaling.
func (m *Model) ComputePCACtx(ctx context.Context, keepFraction float64, workers int) (*PCA, error) {
	if !(keepFraction > 0) || keepFraction > 1 {
		return nil, fmt.Errorf("grid: keepFraction must be in (0,1], got %v", keepFraction)
	}
	if m.Structure == StructQuadTree {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		return m.quadTreeFactor(), nil
	}
	cov, err := m.CovarianceCtx(ctx, workers)
	if err != nil {
		return nil, err
	}
	vals, vecs, err := linalg.EigenSymCtx(ctx, cov)
	if err != nil {
		if ctx.Err() != nil {
			return nil, err
		}
		return nil, fmt.Errorf("grid: covariance eigendecomposition: %w", err)
	}
	n := len(vals)
	total := 0.0
	for _, v := range vals {
		if v > 0 {
			total += v
		}
	}
	// Retain enough components for keepFraction of variance, always
	// discarding numerically negative/negligible eigenvalues.
	floor := 1e-12 * vals[0]
	k := 0
	captured := 0.0
	for k < n && vals[k] > floor {
		captured += vals[k]
		k++
		if captured >= keepFraction*total-1e-15*total {
			break
		}
	}
	if k == 0 {
		return nil, errors.New("grid: covariance matrix has no positive eigenvalues")
	}
	loadings := linalg.NewMatrix(n, k)
	if err := par.ForCtx(ctx, workers, n, func(i int) {
		for j := 0; j < k; j++ {
			loadings.Set(i, j, vecs.At(i, j)*math.Sqrt(vals[j]))
		}
	}); err != nil {
		return nil, err
	}
	return &PCA{
		Loadings:         loadings,
		Eigenvalues:      append([]float64(nil), vals[:k]...),
		K:                k,
		TotalVariance:    total,
		CapturedVariance: captured,
	}, nil
}

// SampleComponents draws one standard-normal vector z of the PCA
// components.
func (p *PCA) SampleComponents(rng *rand.Rand) []float64 {
	z := make([]float64, p.K)
	for i := range z {
		z[i] = rng.NormFloat64()
	}
	return z
}

// GridShifts returns the per-grid correlated thickness shifts Λ·z for
// a component sample z.
func (p *PCA) GridShifts(z []float64) []float64 {
	return p.Loadings.MulVec(z)
}

// GridShiftsWorkers is GridShifts with the per-grid dot products
// fanned out over workers — useful for single large shift evaluations
// outside an already-parallel sampling loop. Bit-identical to
// GridShifts for every worker count.
func (p *PCA) GridShiftsWorkers(z []float64, workers int) []float64 {
	return p.Loadings.MulVecWorkers(z, workers)
}

// ReconstructCovariance returns Λ·Λᵀ, which approximates the original
// covariance (exactly, when all components are retained). Used for
// model verification.
func (p *PCA) ReconstructCovariance() *linalg.Matrix {
	return p.Loadings.Mul(p.Loadings.Transpose())
}

// VarianceBudget splits a total sigma into the (global, spatial,
// independent) components given variance fractions that must sum
// to 1. This mirrors Table II of the paper (50% / 25% / 25%).
func VarianceBudget(sigmaTot, fracG, fracS, fracE float64) (sigmaG, sigmaS, sigmaE float64, err error) {
	if !(sigmaTot > 0) {
		return 0, 0, 0, fmt.Errorf("grid: total sigma must be positive, got %v", sigmaTot)
	}
	if fracG < 0 || fracS < 0 || fracE < 0 || math.Abs(fracG+fracS+fracE-1) > 1e-9 {
		return 0, 0, 0, fmt.Errorf("grid: variance fractions must be non-negative and sum to 1, got %v+%v+%v",
			fracG, fracS, fracE)
	}
	v := sigmaTot * sigmaTot
	return math.Sqrt(v * fracG), math.Sqrt(v * fracS), math.Sqrt(v * fracE), nil
}
