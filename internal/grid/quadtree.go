package grid

import (
	"fmt"
	"math"

	"obdrel/internal/linalg"
)

// Structure selects how the spatially correlated component is
// modeled. The paper's experiments use the grid model with an
// exponential-decay covariance (Section II, [20], [38]); the quad-tree
// model of Agarwal et al. [24] is the alternative correlation
// structure the paper cites, provided here so analyses can be run
// under both.
type Structure int

const (
	// StructExpDecay is the grid model: correlation between grids
	// decays exponentially with distance, and the canonical form is
	// obtained by eigendecomposition (PCA).
	StructExpDecay Structure = iota
	// StructQuadTree is the quad-tree model: the die is covered by
	// 2^l×2^l regions at levels 1..QTLevels, each carrying an
	// independent Gaussian; a device's correlated component is the sum
	// of its enclosing regions' variables (plus the global level-0
	// term). Two devices correlate through the regions they share, so
	// correlation decreases in steps with distance. The canonical form
	// is exact by construction — no eigendecomposition needed.
	StructQuadTree
)

// String implements fmt.Stringer.
func (s Structure) String() string {
	switch s {
	case StructExpDecay:
		return "expdecay"
	case StructQuadTree:
		return "quadtree"
	}
	return fmt.Sprintf("structure(%d)", int(s))
}

// qtLevelVariances splits the spatial variance σ_s² across quad-tree
// levels 1..levels with geometric weights decay^(l-1), normalized to
// sum to σ_s².
func (m *Model) qtLevelVariances() []float64 {
	levels := m.QTLevels
	if levels <= 0 {
		levels = 3
	}
	decay := m.QTDecay
	if decay <= 0 {
		decay = 0.5
	}
	w := make([]float64, levels)
	sum := 0.0
	for l := range w {
		w[l] = math.Pow(decay, float64(l))
		sum += w[l]
	}
	s2 := m.SigmaS * m.SigmaS
	for l := range w {
		w[l] = s2 * w[l] / sum
	}
	return w
}

// qtRegion returns the region index of point (x, y) at level l
// (2^l × 2^l regions over the die).
func (m *Model) qtRegion(x, y float64, l int) int {
	n := 1 << l
	rx := int(x / m.W * float64(n))
	ry := int(y / m.H * float64(n))
	if rx < 0 {
		rx = 0
	}
	if rx >= n {
		rx = n - 1
	}
	if ry < 0 {
		ry = 0
	}
	if ry >= n {
		ry = n - 1
	}
	return ry*n + rx
}

// quadTreeCovariance builds the n×n covariance implied by the
// quad-tree structure: cov(i, j) = σ_g² + Σ_l σ_l²·[same region at
// level l].
func (m *Model) quadTreeCovariance() *linalg.Matrix {
	n := m.NumGrids()
	lv := m.qtLevelVariances()
	c := linalg.NewMatrix(n, n)
	g2 := m.SigmaG * m.SigmaG
	for i := 0; i < n; i++ {
		xi, yi := m.GridCenter(i)
		for j := i; j < n; j++ {
			xj, yj := m.GridCenter(j)
			v := g2
			for l, s2 := range lv {
				if m.qtRegion(xi, yi, l+1) == m.qtRegion(xj, yj, l+1) {
					v += s2
				}
			}
			c.Set(i, j, v)
			c.Set(j, i, v)
		}
	}
	return c
}

// quadTreeFactor returns the exact canonical-form factor of the
// quad-tree structure: one column for the global variable and one per
// region per level, with loading σ_level on the grids the region
// covers. The result satisfies Λ·Λᵀ = Covariance exactly.
func (m *Model) quadTreeFactor() *PCA {
	n := m.NumGrids()
	lv := m.qtLevelVariances()
	levels := len(lv)
	// Column layout: [global | level-1 regions | level-2 regions | …].
	cols := 1
	offsets := make([]int, levels)
	for l := 0; l < levels; l++ {
		offsets[l] = cols
		cols += (1 << (l + 1)) * (1 << (l + 1))
	}
	loadings := linalg.NewMatrix(n, cols)
	for i := 0; i < n; i++ {
		x, y := m.GridCenter(i)
		loadings.Set(i, 0, m.SigmaG)
		for l := 0; l < levels; l++ {
			r := m.qtRegion(x, y, l+1)
			loadings.Set(i, offsets[l]+r, math.Sqrt(lv[l]))
		}
	}
	// Column variances play the role PCA eigenvalues play for
	// reporting: variance contributed per component.
	eig := make([]float64, cols)
	for c := 0; c < cols; c++ {
		s := 0.0
		for i := 0; i < n; i++ {
			v := loadings.At(i, c)
			s += v * v
		}
		eig[c] = s / float64(n)
	}
	total := m.SigmaG*m.SigmaG + m.SigmaS*m.SigmaS
	return &PCA{
		Loadings:         loadings,
		Eigenvalues:      eig,
		K:                cols,
		TotalVariance:    total * float64(n),
		CapturedVariance: total * float64(n),
	}
}
