package grid

import (
	"sync"
	"testing"
)

func cacheModel(t *testing.T, nx int, rho float64) *Model {
	t.Helper()
	m, err := NewModel(2.2, 1, 1, nx, nx, 0.02, 0.015, 0.015, rho)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestPCACacheComputesOncePerKey is the Table IV/V contract: the
// eigendecomposition runs once per distinct (geometry, ρ_dist) key no
// matter how many sweep cells request it.
func TestPCACacheComputesOncePerKey(t *testing.T) {
	c := NewPCACache()
	mA := cacheModel(t, 6, 0.5)
	pA, err := c.Get(mA, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		p, err := c.Get(cacheModel(t, 6, 0.5), 1, 1)
		if err != nil {
			t.Fatal(err)
		}
		if p != pA {
			t.Fatal("cache returned a different PCA instance for an identical key")
		}
	}
	if got := c.Computes(); got != 1 {
		t.Fatalf("Computes = %d after repeated identical keys, want 1", got)
	}
	if got := c.Hits(); got != 5 {
		t.Fatalf("Hits = %d, want 5", got)
	}

	// Distinct ρ_dist and grid keys each decompose exactly once.
	if _, err := c.Get(cacheModel(t, 6, 0.25), 1, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get(cacheModel(t, 5, 0.5), 1, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get(cacheModel(t, 5, 0.5), 1, 1); err != nil {
		t.Fatal(err)
	}
	if got := c.Computes(); got != 3 {
		t.Fatalf("Computes = %d after 3 distinct keys, want 3", got)
	}
	if got := c.Len(); got != 3 {
		t.Fatalf("Len = %d, want 3", got)
	}
}

// TestPCACacheKeyIgnoresIrrelevantParams: σ_ε, u0 and the wafer
// pattern do not enter the covariance, so varying them must hit the
// same entry.
func TestPCACacheKeyIgnoresIrrelevantParams(t *testing.T) {
	c := NewPCACache()
	m1 := cacheModel(t, 6, 0.5)
	m2 := cacheModel(t, 6, 0.5)
	m2.SigmaE = 0.03
	m2.U0 = 1.8
	m2.Pattern = &WaferPattern{DieSpan: 0.1, Bowl: 0.05}
	p1, err := c.Get(m1, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := c.Get(m2, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Fatal("σ_ε/u0/pattern changed the cache key but not the covariance")
	}
	if got := c.Computes(); got != 1 {
		t.Fatalf("Computes = %d, want 1", got)
	}
}

// TestPCACacheMatchesDirect: the cached result is the same
// decomposition ComputePCA returns directly.
func TestPCACacheMatchesDirect(t *testing.T) {
	c := NewPCACache()
	m := cacheModel(t, 5, 0.4)
	cached, err := c.Get(m, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := m.ComputePCA(1)
	if err != nil {
		t.Fatal(err)
	}
	if cached.K != direct.K {
		t.Fatalf("K: cached %d vs direct %d", cached.K, direct.K)
	}
	if d := cached.Loadings.MaxAbsDiff(direct.Loadings); d != 0 {
		t.Fatalf("loadings differ by %v — parallel covariance assembly is not bit-deterministic", d)
	}
}

// TestPCACacheConcurrentSingleflight: many goroutines requesting the
// same key must trigger exactly one decomposition.
func TestPCACacheConcurrentSingleflight(t *testing.T) {
	c := NewPCACache()
	m := cacheModel(t, 7, 0.5)
	var wg sync.WaitGroup
	results := make([]*PCA, 16)
	for g := 0; g < len(results); g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			p, err := c.Get(m, 1, 0)
			if err != nil {
				t.Error(err)
				return
			}
			results[g] = p
		}(g)
	}
	wg.Wait()
	if got := c.Computes(); got != 1 {
		t.Fatalf("Computes = %d under concurrent identical Gets, want 1", got)
	}
	for g := 1; g < len(results); g++ {
		if results[g] != results[0] {
			t.Fatal("goroutines saw different PCA instances")
		}
	}
}
