package grid

import (
	"math"
	"math/rand"
	"testing"

	"obdrel/internal/stats"
)

// qtModel builds a quad-tree structured model with the Table II
// variance split.
func qtModel(t *testing.T, levels int, decay float64) *Model {
	t.Helper()
	sigmaTot := 2.2 * 0.04 / 3
	sg, ss, se, err := VarianceBudget(sigmaTot, 0.5, 0.25, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewModel(2.2, 1, 1, 8, 8, sg, ss, se, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	m.Structure = StructQuadTree
	m.QTLevels = levels
	m.QTDecay = decay
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestQuadTreeCovarianceDiagonal(t *testing.T) {
	m := qtModel(t, 3, 0.5)
	c := m.Covariance()
	want := m.SigmaG*m.SigmaG + m.SigmaS*m.SigmaS
	for i := 0; i < m.NumGrids(); i++ {
		if !approx(c.At(i, i), want, 1e-12) {
			t.Fatalf("diagonal %d = %v, want %v", i, c.At(i, i), want)
		}
	}
	if !c.IsSymmetric(0) {
		t.Fatal("quad-tree covariance not symmetric")
	}
}

func TestQuadTreeCovarianceSteps(t *testing.T) {
	// Neighbouring grids share all levels; grids in opposite corners
	// share only the global term.
	m := qtModel(t, 3, 0.5)
	c := m.Covariance()
	g2 := m.SigmaG * m.SigmaG
	s2 := m.SigmaS * m.SigmaS
	// Grid 0 and grid 1 (adjacent, same quadrant everywhere for 8×8
	// grids with ≥2 levels... they share at least level 1).
	if !(c.At(0, 1) > g2) {
		t.Error("adjacent grids share no spatial variance")
	}
	// Opposite corners: only global.
	n := m.NumGrids()
	if !approx(c.At(0, n-1), g2, 1e-12) {
		t.Errorf("opposite corners covariance %v, want global %v", c.At(0, n-1), g2)
	}
	// Full sharing never exceeds g2+s2.
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if c.At(i, j) > g2+s2+1e-12 {
				t.Fatalf("cov(%d,%d) = %v exceeds total variance", i, j, c.At(i, j))
			}
		}
	}
}

func TestQuadTreeFactorExact(t *testing.T) {
	// The canonical factor must reproduce the covariance exactly:
	// Λ·Λᵀ = C.
	for _, levels := range []int{1, 2, 3} {
		m := qtModel(t, levels, 0.5)
		p, err := m.ComputePCA(1)
		if err != nil {
			t.Fatal(err)
		}
		rec := p.ReconstructCovariance()
		cov := m.Covariance()
		if d := rec.MaxAbsDiff(cov); d > 1e-12 {
			t.Errorf("levels=%d: factor reconstruction error %v", levels, d)
		}
		wantCols := 1
		for l := 1; l <= levels; l++ {
			wantCols += (1 << l) * (1 << l)
		}
		if p.K != wantCols {
			t.Errorf("levels=%d: K = %d, want %d", levels, p.K, wantCols)
		}
	}
}

func TestQuadTreeSampledCovariance(t *testing.T) {
	m := qtModel(t, 2, 0.5)
	p, err := m.ComputePCA(1)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(31))
	n := m.NumGrids()
	nSamp := 40000
	a := make([]float64, nSamp)
	b := make([]float64, nSamp)
	far := make([]float64, nSamp)
	for s := 0; s < nSamp; s++ {
		shifts := p.GridShifts(p.SampleComponents(rng))
		a[s] = shifts[0]
		b[s] = shifts[1]
		far[s] = shifts[n-1]
	}
	cov := m.Covariance()
	rNear, err := stats.Correlation(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if want := cov.At(0, 1) / cov.At(0, 0); !approx(rNear, want, 0.05) {
		t.Errorf("near correlation %v, want %v", rNear, want)
	}
	rFar, err := stats.Correlation(a, far)
	if err != nil {
		t.Fatal(err)
	}
	if want := cov.At(0, n-1) / cov.At(0, 0); math.Abs(rFar-want) > 0.03 {
		t.Errorf("far correlation %v, want %v", rFar, want)
	}
}

func TestQuadTreeDefaults(t *testing.T) {
	// Zero QTLevels/QTDecay select 3 levels with decay 0.5.
	m := qtModel(t, 0, 0)
	p, err := m.ComputePCA(1)
	if err != nil {
		t.Fatal(err)
	}
	wantCols := 1 + 4 + 16 + 64
	if p.K != wantCols {
		t.Errorf("default K = %d, want %d", p.K, wantCols)
	}
}

func TestQuadTreeValidation(t *testing.T) {
	m := qtModel(t, 3, 0.5)
	m.QTLevels = -1
	if err := m.Validate(); err == nil {
		t.Error("negative levels should fail validation")
	}
}

func TestStructureString(t *testing.T) {
	if StructExpDecay.String() != "expdecay" || StructQuadTree.String() != "quadtree" {
		t.Error("Structure strings wrong")
	}
	if Structure(9).String() != "structure(9)" {
		t.Error("unknown structure string wrong")
	}
}

func TestWaferPatternOffsets(t *testing.T) {
	p := &WaferPattern{Bowl: 0.02, SlantX: 0.01, SlantY: -0.005}
	if p.Offset(0, 0) != 0 {
		t.Error("center offset should be 0")
	}
	// Bowl dominates at the edge.
	if got := p.Offset(1, 0); !approx(got, 0.02+0.01, 1e-15) {
		t.Errorf("edge offset = %v", got)
	}
}

func TestNominalAtWithPattern(t *testing.T) {
	m := qtModel(t, 2, 0.5)
	m.Structure = StructExpDecay // pattern is structure-independent
	m.Pattern = &WaferPattern{DieX: 0.8, DieY: 0, DieSpan: 0.1, Bowl: 0.03}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	// All nominals shift up (bowl, die off-center) and vary across
	// the die.
	min, max := math.Inf(1), math.Inf(-1)
	for g := 0; g < m.NumGrids(); g++ {
		nom := m.NominalAt(g)
		if nom <= m.U0 {
			t.Fatalf("grid %d nominal %v not above u0 for an off-center die under a bowl", g, nom)
		}
		if nom < min {
			min = nom
		}
		if nom > max {
			max = nom
		}
	}
	if !(max > min) {
		t.Error("pattern produced no within-die gradient")
	}
	// Grids nearer the wafer edge (larger x for DieX>0) are thicker.
	left := m.NominalAt(m.GridIndex(0.05, 0.5))
	right := m.NominalAt(m.GridIndex(0.95, 0.5))
	if !(right > left) {
		t.Errorf("bowl gradient inverted: left %v, right %v", left, right)
	}
	// Without a pattern, nominals are uniform.
	m.Pattern = nil
	if m.NominalAt(0) != m.U0 || m.NominalAt(3) != m.U0 {
		t.Error("NominalAt without pattern should be u0")
	}
}

func TestPatternValidation(t *testing.T) {
	m := qtModel(t, 2, 0.5)
	m.Pattern = &WaferPattern{DieSpan: -1}
	if err := m.Validate(); err == nil {
		t.Error("negative die span should fail validation")
	}
}
