package grid

import (
	"sync"
	"sync/atomic"
)

// pcaKey identifies everything the PCA result depends on. The
// covariance of the correlated component is built purely from the grid
// geometry, the global/spatial sigmas, the correlation structure and
// its parameters — notably NOT from σ_ε, the wafer pattern, or u0, so
// sweeps that only vary those (or reuse a geometry across designs with
// the same die) share one eigendecomposition.
type pcaKey struct {
	w, h           float64
	nx, ny         int
	sigmaG, sigmaS float64
	rhoDist        float64
	structure      Structure
	qtLevels       int
	qtDecay        float64
	keepFraction   float64
}

func keyOf(m *Model, keepFraction float64) pcaKey {
	return pcaKey{
		w: m.W, h: m.H,
		nx: m.Nx, ny: m.Ny,
		sigmaG: m.SigmaG, sigmaS: m.SigmaS,
		rhoDist:      m.RhoDist,
		structure:    m.Structure,
		qtLevels:     m.QTLevels,
		qtDecay:      m.QTDecay,
		keepFraction: keepFraction,
	}
}

// PCACache memoizes ComputePCA results across configurations, keyed by
// the parameters the decomposition actually depends on. A PCA is
// immutable after construction, so one instance is safely shared by
// every analyzer holding a matching model — this is what lets the
// Table IV ρ_dist sweep and the Table V grid sweep run one
// eigendecomposition per distinct (geometry, ρ_dist) instead of one
// per table cell.
//
// Concurrent Gets for the same key collapse into a single computation
// (per-entry sync.Once); Gets for different keys never block each
// other on the compute.
type PCACache struct {
	mu      sync.Mutex
	entries map[pcaKey]*pcaEntry

	computes atomic.Int64
	hits     atomic.Int64
}

type pcaEntry struct {
	once sync.Once
	pca  *PCA
	err  error
}

// NewPCACache returns an empty cache.
func NewPCACache() *PCACache {
	return &PCACache{entries: map[pcaKey]*pcaEntry{}}
}

// SharedPCACache is the process-wide cache used by the public
// analyzer.
var SharedPCACache = NewPCACache()

// Get returns the PCA for the model's covariance, computing it (with
// the given worker parallelism) at most once per distinct key.
func (c *PCACache) Get(m *Model, keepFraction float64, workers int) (*PCA, error) {
	key := keyOf(m, keepFraction)
	c.mu.Lock()
	e, ok := c.entries[key]
	if !ok {
		e = &pcaEntry{}
		c.entries[key] = e
	}
	c.mu.Unlock()
	computed := false
	e.once.Do(func() {
		computed = true
		c.computes.Add(1)
		e.pca, e.err = m.ComputePCAWorkers(keepFraction, workers)
	})
	if !computed {
		c.hits.Add(1)
	}
	return e.pca, e.err
}

// Computes reports how many eigendecompositions the cache has actually
// run — the counter the sweep tests assert on.
func (c *PCACache) Computes() int64 { return c.computes.Load() }

// Hits reports how many Gets were served from an existing entry.
func (c *PCACache) Hits() int64 { return c.hits.Load() }

// Len returns the number of cached keys.
func (c *PCACache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Reset drops every entry and zeroes the counters (tests and
// long-running services that change technology generations).
func (c *PCACache) Reset() {
	c.mu.Lock()
	c.entries = map[pcaKey]*pcaEntry{}
	c.mu.Unlock()
	c.computes.Store(0)
	c.hits.Store(0)
}
