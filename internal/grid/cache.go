package grid

import (
	"context"
	"sync"
	"sync/atomic"
)

// pcaKey identifies everything the PCA result depends on. The
// covariance of the correlated component is built purely from the grid
// geometry, the global/spatial sigmas, the correlation structure and
// its parameters — notably NOT from σ_ε, the wafer pattern, or u0, so
// sweeps that only vary those (or reuse a geometry across designs with
// the same die) share one eigendecomposition.
type pcaKey struct {
	w, h           float64
	nx, ny         int
	sigmaG, sigmaS float64
	rhoDist        float64
	structure      Structure
	qtLevels       int
	qtDecay        float64
	keepFraction   float64
}

func keyOf(m *Model, keepFraction float64) pcaKey {
	return pcaKey{
		w: m.W, h: m.H,
		nx: m.Nx, ny: m.Ny,
		sigmaG: m.SigmaG, sigmaS: m.SigmaS,
		rhoDist:      m.RhoDist,
		structure:    m.Structure,
		qtLevels:     m.QTLevels,
		qtDecay:      m.QTDecay,
		keepFraction: keepFraction,
	}
}

// PCACache memoizes ComputePCA results across configurations, keyed by
// the parameters the decomposition actually depends on. A PCA is
// immutable after construction, so one instance is safely shared by
// every analyzer holding a matching model — this is what lets the
// Table IV ρ_dist sweep and the Table V grid sweep run one
// eigendecomposition per distinct (geometry, ρ_dist) instead of one
// per table cell.
//
// Concurrent Gets for the same key collapse into a single computation
// (per-entry done channel); Gets for different keys never block each
// other on the compute. A compute that fails — including one cancelled
// through its context — is NOT memoized: the entry is removed so the
// next Get retries instead of replaying a stale context error forever.
type PCACache struct {
	mu      sync.Mutex
	entries map[pcaKey]*pcaEntry

	computes atomic.Int64
	hits     atomic.Int64
}

type pcaEntry struct {
	done chan struct{}
	pca  *PCA
	err  error
}

// NewPCACache returns an empty cache.
func NewPCACache() *PCACache {
	return &PCACache{entries: map[pcaKey]*pcaEntry{}}
}

// SharedPCACache is the process-wide cache used by the public
// analyzer.
var SharedPCACache = NewPCACache()

// Get returns the PCA for the model's covariance, computing it (with
// the given worker parallelism) at most once per distinct key.
func (c *PCACache) Get(m *Model, keepFraction float64, workers int) (*PCA, error) {
	return c.GetCtx(context.Background(), m, keepFraction, workers)
}

// GetCtx is Get with cancellation support: the compute runs under the
// caller's ctx, a waiter whose ctx expires stops waiting, and a
// compute that errors (cancelled or otherwise) is forgotten so the
// next Get retries with its own context.
func (c *PCACache) GetCtx(ctx context.Context, m *Model, keepFraction float64, workers int) (*PCA, error) {
	key := keyOf(m, keepFraction)
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		c.mu.Lock()
		e, ok := c.entries[key]
		if !ok {
			e = &pcaEntry{done: make(chan struct{})}
			c.entries[key] = e
			c.mu.Unlock()
			c.computes.Add(1)
			e.pca, e.err = m.ComputePCACtx(ctx, keepFraction, workers)
			if e.err != nil {
				c.mu.Lock()
				if c.entries[key] == e {
					delete(c.entries, key)
				}
				c.mu.Unlock()
			}
			close(e.done)
			return e.pca, e.err
		}
		c.mu.Unlock()
		select {
		case <-e.done:
			if e.err != nil {
				// The computing goroutine failed — possibly only
				// because ITS context was cancelled. Retry under our
				// own context rather than inheriting the failure.
				continue
			}
			c.hits.Add(1)
			return e.pca, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// Computes reports how many eigendecompositions the cache has actually
// run — the counter the sweep tests assert on.
func (c *PCACache) Computes() int64 { return c.computes.Load() }

// Hits reports how many Gets were served from an existing entry.
func (c *PCACache) Hits() int64 { return c.hits.Load() }

// Len returns the number of cached keys.
func (c *PCACache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Reset drops every entry and zeroes the counters (tests and
// long-running services that change technology generations).
func (c *PCACache) Reset() {
	c.mu.Lock()
	c.entries = map[pcaKey]*pcaEntry{}
	c.mu.Unlock()
	c.computes.Store(0)
	c.hits.Store(0)
}
