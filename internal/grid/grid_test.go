package grid

import (
	"math"
	"math/rand"
	"testing"

	"obdrel/internal/stats"
)

func approx(a, b, tol float64) bool {
	d := math.Abs(a - b)
	if d <= tol {
		return true
	}
	return d <= tol*math.Max(math.Abs(a), math.Abs(b))
}

// testModel returns a small model with the Table II variance split.
func testModel(t *testing.T, nx, ny int, rhoDist float64) *Model {
	t.Helper()
	sigmaTot := 2.2 * 0.04 / 3
	sg, ss, se, err := VarianceBudget(sigmaTot, 0.5, 0.25, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewModel(2.2, 1, 1, nx, ny, sg, ss, se, rhoDist)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestVarianceBudget(t *testing.T) {
	sg, ss, se, err := VarianceBudget(0.03, 0.5, 0.25, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(sg*sg+ss*ss+se*se, 0.0009, 1e-15) {
		t.Errorf("variances don't sum: %v %v %v", sg, ss, se)
	}
	if !approx(sg*sg/0.0009, 0.5, 1e-12) {
		t.Errorf("global fraction %v", sg*sg/0.0009)
	}
	if _, _, _, err := VarianceBudget(0.03, 0.5, 0.25, 0.5); err == nil {
		t.Error("fractions not summing to 1 should error")
	}
	if _, _, _, err := VarianceBudget(0, 0.5, 0.25, 0.25); err == nil {
		t.Error("zero sigma should error")
	}
	if _, _, _, err := VarianceBudget(0.03, -0.5, 0.25, 1.25); err == nil {
		t.Error("negative fraction should error")
	}
}

func TestNewModelValidates(t *testing.T) {
	cases := []struct {
		name string
		f    func() (*Model, error)
	}{
		{"zero u0", func() (*Model, error) { return NewModel(0, 1, 1, 2, 2, 1, 1, 1, 0.5) }},
		{"zero width", func() (*Model, error) { return NewModel(2, 0, 1, 2, 2, 1, 1, 1, 0.5) }},
		{"zero grids", func() (*Model, error) { return NewModel(2, 1, 1, 0, 2, 1, 1, 1, 0.5) }},
		{"negative sigma", func() (*Model, error) { return NewModel(2, 1, 1, 2, 2, -1, 1, 1, 0.5) }},
		{"all zero sigma", func() (*Model, error) { return NewModel(2, 1, 1, 2, 2, 0, 0, 0, 0.5) }},
		{"zero rho", func() (*Model, error) { return NewModel(2, 1, 1, 2, 2, 1, 1, 1, 0) }},
	}
	for _, c := range cases {
		if _, err := c.f(); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestGridIndexing(t *testing.T) {
	m := testModel(t, 4, 3, 0.5)
	if m.NumGrids() != 12 {
		t.Fatalf("NumGrids = %d", m.NumGrids())
	}
	// Corners and clamping.
	if g := m.GridIndex(0.01, 0.01); g != 0 {
		t.Errorf("bottom-left grid = %d", g)
	}
	if g := m.GridIndex(0.99, 0.99); g != 11 {
		t.Errorf("top-right grid = %d", g)
	}
	if g := m.GridIndex(-5, -5); g != 0 {
		t.Errorf("clamped negative = %d", g)
	}
	if g := m.GridIndex(5, 5); g != 11 {
		t.Errorf("clamped positive = %d", g)
	}
	// Exact east/north edge: x == W (y == H) computes ix == nx
	// (iy == ny) before clamping and must land in the last cell, not
	// out of range.
	if g := m.GridIndex(1.0, 0.01); g != 3 {
		t.Errorf("east-edge grid = %d, want 3", g)
	}
	if g := m.GridIndex(0.01, 1.0); g != 8 {
		t.Errorf("north-edge grid = %d, want 8", g)
	}
	if g := m.GridIndex(1.0, 1.0); g != 11 {
		t.Errorf("corner grid = %d, want 11", g)
	}
	// Round trip: center of each grid indexes back to it.
	for g := 0; g < m.NumGrids(); g++ {
		x, y := m.GridCenter(g)
		if got := m.GridIndex(x, y); got != g {
			t.Errorf("grid %d center (%v,%v) indexes to %d", g, x, y, got)
		}
		x0, y0, x1, y1 := m.GridRect(g)
		if !(x0 < x && x < x1 && y0 < y && y < y1) {
			t.Errorf("grid %d center outside rect", g)
		}
	}
}

func TestCovarianceStructure(t *testing.T) {
	m := testModel(t, 5, 5, 0.5)
	c := m.Covariance()
	n := m.NumGrids()
	wantDiag := m.SigmaG*m.SigmaG + m.SigmaS*m.SigmaS
	for i := 0; i < n; i++ {
		if !approx(c.At(i, i), wantDiag, 1e-15) {
			t.Fatalf("diagonal %d = %v, want %v", i, c.At(i, i), wantDiag)
		}
	}
	if !c.IsSymmetric(0) {
		t.Fatal("covariance not symmetric")
	}
	// Correlation decays with distance: cov(0, 1) > cov(0, far corner).
	if !(c.At(0, 1) > c.At(0, n-1)) {
		t.Error("covariance does not decay with distance")
	}
	// Everything is at least the global variance.
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if c.At(i, j) < m.SigmaG*m.SigmaG-1e-15 {
				t.Fatalf("cov(%d,%d) below global variance", i, j)
			}
		}
	}
}

func TestCorrelationFunction(t *testing.T) {
	m := testModel(t, 5, 5, 0.5)
	if !approx(m.Correlation(0), 1, 1e-12) {
		t.Errorf("rho(0) = %v", m.Correlation(0))
	}
	// At huge distance, only the global fraction remains (2/3 of the
	// correlated variance, since global:spatial = 50:25).
	if got := m.Correlation(1e9); !approx(got, 2.0/3, 1e-9) {
		t.Errorf("rho(inf) = %v, want 2/3", got)
	}
	if !(m.Correlation(0.1) > m.Correlation(0.5)) {
		t.Error("correlation not decreasing")
	}
}

func TestPCAReconstructsCovariance(t *testing.T) {
	for _, res := range [][2]int{{2, 2}, {5, 5}, {8, 6}} {
		m := testModel(t, res[0], res[1], 0.5)
		p, err := m.ComputePCA(1)
		if err != nil {
			t.Fatal(err)
		}
		rec := p.ReconstructCovariance()
		cov := m.Covariance()
		if d := rec.MaxAbsDiff(cov); d > 1e-12 {
			t.Errorf("%dx%d: reconstruction error %v", res[0], res[1], d)
		}
		if p.CapturedVariance > p.TotalVariance*(1+1e-12) {
			t.Error("captured variance exceeds total")
		}
	}
}

func TestPCATruncation(t *testing.T) {
	m := testModel(t, 6, 6, 0.5)
	full, err := m.ComputePCA(1)
	if err != nil {
		t.Fatal(err)
	}
	trunc, err := m.ComputePCA(0.95)
	if err != nil {
		t.Fatal(err)
	}
	if trunc.K >= full.K {
		t.Errorf("truncated K=%d should be < full K=%d", trunc.K, full.K)
	}
	if trunc.CapturedVariance < 0.95*trunc.TotalVariance-1e-9 {
		t.Errorf("truncation kept only %v of %v", trunc.CapturedVariance, trunc.TotalVariance)
	}
	if _, err := m.ComputePCA(0); err == nil {
		t.Error("keepFraction=0 should error")
	}
	if _, err := m.ComputePCA(1.5); err == nil {
		t.Error("keepFraction>1 should error")
	}
}

// Strong global component means the first principal component is
// nearly flat across grids — every grid loads on it almost equally.
func TestPCAGlobalComponent(t *testing.T) {
	m := testModel(t, 5, 5, 0.5)
	p, err := m.ComputePCA(1)
	if err != nil {
		t.Fatal(err)
	}
	min, max := math.Inf(1), math.Inf(-1)
	for i := 0; i < m.NumGrids(); i++ {
		l := math.Abs(p.Loadings.At(i, 0))
		if l < min {
			min = l
		}
		if l > max {
			max = l
		}
	}
	if (max-min)/max > 0.25 {
		t.Errorf("first PC loadings spread too wide: [%v, %v]", min, max)
	}
}

func TestSampledCovarianceMatchesModel(t *testing.T) {
	m := testModel(t, 3, 3, 0.5)
	p, err := m.ComputePCA(1)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(17))
	n := m.NumGrids()
	nSamp := 60000
	samples := make([][]float64, n)
	for g := range samples {
		samples[g] = make([]float64, nSamp)
	}
	for s := 0; s < nSamp; s++ {
		shifts := p.GridShifts(p.SampleComponents(rng))
		for g := 0; g < n; g++ {
			samples[g][s] = shifts[g]
		}
	}
	cov := m.Covariance()
	// Check variances and a few covariances against the model.
	for g := 0; g < n; g++ {
		_, v, err := stats.MeanVariance(samples[g])
		if err != nil {
			t.Fatal(err)
		}
		if !approx(v, cov.At(g, g), 0.05) {
			t.Errorf("grid %d sampled variance %v vs model %v", g, v, cov.At(g, g))
		}
	}
	r01, _ := stats.Correlation(samples[0], samples[1])
	want01 := cov.At(0, 1) / cov.At(0, 0)
	if !approx(r01, want01, 0.05) {
		t.Errorf("sampled corr(0,1) = %v vs model %v", r01, want01)
	}
	r08, _ := stats.Correlation(samples[0], samples[8])
	want08 := cov.At(0, 8) / cov.At(0, 0)
	if !approx(r08, want08, 0.05) {
		t.Errorf("sampled corr(0,8) = %v vs model %v", r08, want08)
	}
}

func BenchmarkComputePCA10x10(b *testing.B) {
	sigmaTot := 2.2 * 0.04 / 3
	sg, ss, se, _ := VarianceBudget(sigmaTot, 0.5, 0.25, 0.25)
	m, err := NewModel(2.2, 1, 1, 10, 10, sg, ss, se, 0.5)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.ComputePCA(1); err != nil {
			b.Fatal(err)
		}
	}
}
