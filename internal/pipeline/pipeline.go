// Package pipeline is the stage-graph artifact store behind the
// analyzer: a per-stage LRU keyed by canonical fingerprints, with
// cancellable singleflight coalescing.
//
// The analysis flow is an explicit dataflow — floorplan → power map →
// thermal solve → covariance/PCA → BLOD moments → per-block Weibull
// parameters → chip assembly — and each stage's artifact depends on
// only a subset of the configuration. Caching at stage granularity is
// what lets a MaxVDD bisection rebuild only the voltage-dependent tail
// while every probe shares one PCA, one BLOD characterization and one
// covariance model, and what lets a Table IV/V sweep share the
// thermal solve across rows that only vary correlation parameters.
//
// Cancellation contract (the part plain singleflight gets wrong):
//
//   - Every build runs under its own context, cancelled when the LAST
//     interested waiter abandons the flight. A request that times out
//     therefore stops the work it started — unless another request is
//     still waiting on the same artifact, in which case the build
//     continues for them.
//   - A build that dies of cancellation is never inserted into the
//     LRU and never delivered to a waiter: a late joiner that is still
//     alive retries with a fresh flight instead of receiving someone
//     else's context error ("cancelled partial results are not
//     handed to coalesced waiters").
//
// Failure handling (PR5): a build failure is wrapped with stage +
// fingerprint provenance (fault.StageError) and classified by
// internal/fault's taxonomy. Transient failures are retried inside the
// flight — bounded attempts, exponential backoff with deterministic
// jitter, each retry visible as a span — while the flight's waiters
// keep waiting on the one build. Cancelled contexts never retry: a
// backoff interrupted by the last waiter leaving surfaces as a
// cancellation (not a failure), so it neither trips the breaker nor
// poisons late joiners. An optional per-(stage,key) circuit breaker
// fast-fails builds for fingerprints that keep failing, with half-open
// probing and the last error served as a negative-result cache. Builds
// that panic are contained into Permanent errors instead of killing
// the process. Both retry and breaker default OFF on a fresh Cache —
// opt in via SetRetry/SetBreaker.
//
// The zero-cost escape hatch: Get with a nil *Cache runs the build
// inline with the caller's context — no cache, no coalescing — which
// keeps cold-path behaviour exactly equal to the uncached code.
package pipeline

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"obdrel/internal/fault"
	"obdrel/internal/lru"
	"obdrel/internal/obs"
)

// Cache stores stage artifacts: one LRU and one stats block per stage
// name, plus an in-flight table coalescing concurrent builds of the
// same (stage, key).
type Cache struct {
	mu         sync.Mutex
	defaultCap int
	caps       map[string]int
	stages     map[string]*stageState
	flights    map[flightKey]*flight
	retry      fault.Retry
	breaker    *fault.Breaker
	tiers      Tiers
}

type stageState struct {
	lru   *lru.Cache[any]
	stats stats
}

type stats struct {
	hits, misses, builds, cancels atomic.Int64
	buildNanos                    atomic.Int64
	retries                       atomic.Int64
	breakerOpens                  atomic.Int64
	breakerFastFails              atomic.Int64
	// Artifact-tier counters (tiers.go): disk loads served/rejected,
	// sealed artifacts spilled (and spill failures), peer cache-fills
	// served/failed.
	diskHits, diskRejects atomic.Int64
	spills, spillFails    atomic.Int64
	peerHits, peerErrors  atomic.Int64
}

type flightKey struct{ stage, key string }

type flight struct {
	done     chan struct{}
	cancel   context.CancelFunc
	waiters  int // guarded by Cache.mu
	val      any
	err      error
	canceled bool   // build died because every waiter left
	durNs    int64  // build wall time, written before done closes
	attempts int    // build attempts made, written before done closes
	source   string // tier that satisfied the flight (disk|peer|built)
}

// NewCache returns an empty cache holding at most defaultCap artifacts
// per stage (minimum 1).
func NewCache(defaultCap int) *Cache {
	if defaultCap < 1 {
		defaultCap = 1
	}
	return &Cache{
		defaultCap: defaultCap,
		caps:       map[string]int{},
		stages:     map[string]*stageState{},
		flights:    map[flightKey]*flight{},
	}
}

// SetCapacity overrides the LRU capacity of one stage. It only
// affects the stage's next (re)creation, so call it before the first
// Get for that stage (or after Reset).
func (c *Cache) SetCapacity(stage string, capacity int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.caps[stage] = capacity
}

// SetDefaultCapacity overrides the per-stage default capacity for
// stages created after the call.
func (c *Cache) SetDefaultCapacity(capacity int) {
	if capacity < 1 {
		capacity = 1
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.defaultCap = capacity
}

// SetRetry installs a retry policy for Transient build failures. Only
// failures classified Transient by internal/fault retry; cancelled
// contexts and Permanent errors never do. The zero policy disables
// retry (the default).
func (c *Cache) SetRetry(r fault.Retry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.retry = r
}

// SetBreaker installs a per-(stage, key) circuit breaker consulted
// before every new flight. Nil disables (the default).
func (c *Cache) SetBreaker(b *fault.Breaker) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.breaker = b
}

// Breaker returns the installed breaker, or nil.
func (c *Cache) Breaker() *fault.Breaker {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.breaker
}

// state returns (creating if needed) the stage's LRU+stats. Caller
// holds c.mu.
func (c *Cache) state(stage string) *stageState {
	st, ok := c.stages[stage]
	if !ok {
		capacity := c.defaultCap
		if n, ok := c.caps[stage]; ok && n > 0 {
			capacity = n
		}
		st = &stageState{lru: lru.New[any](capacity)}
		c.stages[stage] = st
	}
	return st
}

// Artifact provenance: which tier of the hierarchy satisfied a Get.
const (
	// SourceMem: served from the in-process LRU.
	SourceMem = "mem"
	// SourceDisk: decoded from the disk spill tier.
	SourceDisk = "disk"
	// SourcePeer: cache-filled from a cluster peer.
	SourcePeer = "peer"
	// SourceBuilt: computed by running the stage build.
	SourceBuilt = "built"
)

// Result reports how a Get was served.
type Result struct {
	// Hit is true when the artifact came from the LRU.
	Hit bool
	// Coalesced is true when the caller joined a build another caller
	// had already started.
	Coalesced bool
	// Source is the artifact's provenance (SourceMem, SourceDisk,
	// SourcePeer or SourceBuilt); empty on error and for nil-cache
	// inline builds.
	Source string

	// buildNs is the completed flight's build wall time, carried out
	// of wait so the per-round span can report it.
	buildNs int64
	// attempts is how many build attempts the completed flight made
	// (>1 means transient failures were retried).
	attempts int
}

// errFlightCanceled is the internal signal that a joined flight died
// of cancellation; Get retries instead of surfacing it.
var errFlightCanceled = errors.New("pipeline: flight canceled")

// Get returns the artifact for (stage, key), building it with `build`
// on a miss. Concurrent Gets for the same (stage, key) coalesce into
// one build; the build's context is cancelled when its last waiter's
// context expires. A nil cache runs build(ctx) inline.
func Get[O any](ctx context.Context, c *Cache, stage, key string, build func(context.Context) (O, error)) (O, Result, error) {
	var zero O
	if c == nil {
		v, err := build(ctx)
		return v, Result{}, err
	}
	res := Result{}
	for {
		if err := ctx.Err(); err != nil {
			return zero, res, err
		}
		// One span per lookup round: a cancelled-flight retry gets a
		// fresh span, so the trace shows every round it took. The
		// Join variant keeps the untraced path concat- and alloc-free.
		sctx, sp := obs.StartSpanJoin(ctx, "stage:", stage)
		v, r, err := c.getOnce(sctx, stage, key, func(bctx context.Context) (any, error) {
			return build(bctx)
		})
		res.Hit = r.Hit
		res.Coalesced = res.Coalesced || r.Coalesced
		res.Source = r.Source
		if sp != nil {
			var open *fault.OpenError
			switch {
			case errors.Is(err, errFlightCanceled):
				sp.SetAttr("cache", "cancelled")
			case errors.As(err, &open):
				sp.SetAttr("cache", "breaker_open")
			case r.Hit:
				sp.SetAttr("cache", "hit")
			case r.Coalesced:
				sp.SetAttr("cache", "coalesced")
			default:
				sp.SetAttr("cache", "miss")
			}
			if r.Source != "" {
				// Provenance lands in every round's span, so
				// ?explain=1 shows exactly which tier answered.
				sp.SetAttr("source", r.Source)
			}
			if r.buildNs > 0 {
				sp.SetAttr("build_ms", float64(r.buildNs)/1e6)
			}
			if r.attempts > 1 {
				sp.SetAttr("attempts", r.attempts)
			}
			if err != nil && !errors.Is(err, errFlightCanceled) {
				sp.SetAttr("error", err.Error())
			}
			sp.End()
		}
		if errors.Is(err, errFlightCanceled) {
			// The build we were waiting on was abandoned by everyone
			// else and cancelled before we could use it; we are still
			// alive, so start over (the next round creates a fresh
			// flight with our own context attached).
			continue
		}
		if err != nil {
			return zero, res, err
		}
		if r.Source != "" {
			// Each waiter records its own top-level round here; the
			// build's nested rounds were already recorded through the
			// flight context, which carries the initiator's collector.
			obs.ReqStatsFrom(ctx).RecordStage(stage, r.Source, r.buildNs)
		}
		out, ok := v.(O)
		if !ok {
			return zero, res, errors.New("pipeline: stage " + stage + " cached an artifact of the wrong type")
		}
		return out, res, nil
	}
}

// getOnce performs one lookup-or-flight round.
func (c *Cache) getOnce(ctx context.Context, stage, key string, build func(context.Context) (any, error)) (any, Result, error) {
	fk := flightKey{stage, key}
	bk := stage + "/" + key
	c.mu.Lock()
	st := c.state(stage)
	if v, ok := st.lru.Get(key); ok {
		st.stats.hits.Add(1)
		c.mu.Unlock()
		return v, Result{Hit: true, Source: SourceMem}, nil
	}
	st.stats.misses.Add(1)
	if f, ok := c.flights[fk]; ok {
		f.waiters++
		c.mu.Unlock()
		return c.wait(ctx, f, Result{Coalesced: true})
	}
	// Only a NEW flight consults the breaker: joining an in-progress
	// build is always allowed (it was admitted, possibly as the
	// half-open probe). An open circuit fast-fails with the last
	// observed error — the negative-result cache.
	breaker, retry, tiers := c.breaker, c.retry, c.tiers
	if breaker != nil {
		if oe := breaker.Allow(bk); oe != nil {
			st.stats.breakerFastFails.Add(1)
			c.mu.Unlock()
			return nil, Result{}, oe
		}
	}
	// The flight's context is detached from the initiator's deadline
	// (the last-waiter-cancels contract governs its lifetime) but
	// keeps the initiator's span — so build-internal spans land in the
	// trace of whoever caused the build — and the initiator's
	// fault-injection rules, so X-Fault faults reach detached builds.
	base := fault.Carry(obs.ContextWithSpan(context.Background(), obs.FromContext(ctx)), ctx)
	// The initiator's cost collector rides into the flight too: the
	// nested stage rounds a build resolves (peer fills, disk loads)
	// belong to the request that caused the build — same attribution
	// rule as the span above. Coalesced late joiners record only their
	// own top-level round, which is all they observed.
	base = obs.CarryReqStats(base, ctx)
	bctx, cancel := context.WithCancel(base)
	f := &flight{done: make(chan struct{}), cancel: cancel, waiters: 1}
	c.flights[fk] = f
	c.mu.Unlock()

	go func() {
		start := time.Now()
		v, source, err, attempts := c.resolveFlight(bctx, stage, key, build, retry, st, tiers)
		durNs := time.Since(start).Nanoseconds()
		canceled := bctx.Err() != nil &&
			(errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded))
		if err != nil && !canceled && fault.ClassOf(err) != fault.Cancelled {
			err = &fault.StageError{Stage: stage, Fingerprint: key, Err: err}
		}
		c.mu.Lock()
		delete(c.flights, fk)
		switch {
		case err == nil:
			st.lru.Put(key, v)
			if source == SourceBuilt {
				// Tier loads are not builds: the follower-builds==0
				// cluster gate and the build-seconds metric both count
				// only real stage computations.
				st.stats.builds.Add(1)
				st.stats.buildNanos.Add(durNs)
			}
			if breaker != nil {
				breaker.Success(bk)
			}
		case canceled || fault.ClassOf(err) == fault.Cancelled:
			st.stats.cancels.Add(1)
			if breaker != nil {
				// A caller giving up says nothing about the key's
				// health: free a probe slot, count nothing.
				breaker.Release(bk)
			}
		default:
			if breaker != nil && breaker.Failure(bk, err) {
				st.stats.breakerOpens.Add(1)
			}
		}
		c.mu.Unlock()
		f.val, f.err, f.canceled, f.durNs, f.attempts, f.source = v, err, canceled, durNs, attempts, source
		close(f.done)
		cancel()
	}()
	return c.wait(ctx, f, Result{})
}

// runBuild executes the build with panic containment, the
// pipeline.build injection point, and bounded retry of Transient
// failures. Cancellation wins over retry at every step: once bctx is
// dead (the last waiter left), the transient failure is discarded and
// the context error surfaces, so the flight dies as cancelled — it is
// not counted against the key and late joiners start fresh.
func (c *Cache) runBuild(bctx context.Context, stage, key string, build func(context.Context) (any, error), pol fault.Retry, st *stageState) (any, error, int) {
	attempt := 1
	for {
		v, err := buildProtected(bctx, stage, key, build)
		if err == nil {
			return v, nil, attempt
		}
		if bctx.Err() != nil || !pol.Enabled() || attempt >= pol.Attempts ||
			fault.ClassOf(err) != fault.Transient {
			return v, err, attempt
		}
		st.stats.retries.Add(1)
		delay := pol.Delay(attempt, retryToken(stage, key))
		_, sp := obs.StartSpanJoin(bctx, "retry:", stage)
		if sp != nil {
			sp.SetAttr("attempt", attempt)
			sp.SetAttr("backoff_ms", float64(delay)/1e6)
			sp.SetAttr("cause", err.Error())
		}
		t := time.NewTimer(delay)
		select {
		case <-t.C:
			if sp != nil {
				sp.End()
			}
		case <-bctx.Done():
			t.Stop()
			if sp != nil {
				sp.SetAttr("cancelled", true)
				sp.End()
			}
			return nil, bctx.Err(), attempt
		}
		attempt++
	}
}

// buildProtected runs one build attempt, converting panics into
// Permanent errors (an injected — or real — panic in a stage build
// must not take the process down) and giving armed fault rules their
// pipeline.build evaluation, labelled "stage key" so rules can match
// either.
func buildProtected(bctx context.Context, stage, key string, build func(context.Context) (any, error)) (v any, err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("pipeline: stage %s build panicked: %v", stage, p)
		}
	}()
	if ferr := fault.InjectLabeled(bctx, "pipeline.build", stage+" "+key); ferr != nil {
		return nil, ferr
	}
	return build(bctx)
}

// retryToken derives the deterministic jitter seed for a (stage, key).
func retryToken(stage, key string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(stage))
	h.Write([]byte{0})
	h.Write([]byte(key))
	return h.Sum64()
}

// wait blocks until the flight completes or the waiter's own context
// expires; the last waiter to leave cancels the build.
func (c *Cache) wait(ctx context.Context, f *flight, res Result) (any, Result, error) {
	select {
	case <-f.done:
		if f.canceled {
			return nil, res, errFlightCanceled
		}
		if f.err == nil {
			res.buildNs = f.durNs
			res.Source = f.source
		}
		res.attempts = f.attempts
		return f.val, res, f.err
	case <-ctx.Done():
		c.mu.Lock()
		f.waiters--
		last := f.waiters == 0
		c.mu.Unlock()
		if last {
			f.cancel()
		}
		return nil, res, ctx.Err()
	}
}

// StageStat is one stage's counters at a point in time.
type StageStat struct {
	Stage string
	// Hits and Misses count LRU lookups; Builds successful artifact
	// constructions; Cancels builds abandoned by every waiter.
	Hits, Misses, Builds, Cancels int64
	// Retries counts transient build failures that were re-attempted;
	// BreakerOpens circuit-open transitions attributed to this stage;
	// BreakerFastFails lookups shed by an open circuit.
	Retries, BreakerOpens, BreakerFastFails int64
	// DiskHits and DiskRejects count disk-tier loads served and
	// corrupt files rejected (and deleted for rebuild); Spills and
	// SpillFails sealed artifacts written to the disk tier and write
	// failures; PeerHits and PeerErrors peer cache-fills served and
	// fetches that failed or returned a corrupt artifact.
	DiskHits, DiskRejects, Spills, SpillFails, PeerHits, PeerErrors int64
	// BuildSeconds is the cumulative wall time of successful builds.
	BuildSeconds float64
	// Entries is the stage's current LRU occupancy.
	Entries int
}

// Snapshot returns every stage's counters, sorted by stage name.
func (c *Cache) Snapshot() []StageStat {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]StageStat, 0, len(c.stages))
	for name, st := range c.stages {
		out = append(out, statOf(name, st))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Stage < out[j].Stage })
	return out
}

// statOf snapshots one stage's counters. Caller holds c.mu (for the
// LRU length; the counters themselves are atomics).
func statOf(name string, st *stageState) StageStat {
	return StageStat{
		Stage:            name,
		Hits:             st.stats.hits.Load(),
		Misses:           st.stats.misses.Load(),
		Builds:           st.stats.builds.Load(),
		Cancels:          st.stats.cancels.Load(),
		Retries:          st.stats.retries.Load(),
		BreakerOpens:     st.stats.breakerOpens.Load(),
		BreakerFastFails: st.stats.breakerFastFails.Load(),
		DiskHits:         st.stats.diskHits.Load(),
		DiskRejects:      st.stats.diskRejects.Load(),
		Spills:           st.stats.spills.Load(),
		SpillFails:       st.stats.spillFails.Load(),
		PeerHits:         st.stats.peerHits.Load(),
		PeerErrors:       st.stats.peerErrors.Load(),
		BuildSeconds:     float64(st.stats.buildNanos.Load()) / 1e9,
		Entries:          st.lru.Len(),
	}
}

// Stat returns one stage's counters (zero-valued if the stage has
// never been touched).
func (c *Cache) Stat(stage string) StageStat {
	c.mu.Lock()
	defer c.mu.Unlock()
	st, ok := c.stages[stage]
	if !ok {
		return StageStat{Stage: stage}
	}
	return statOf(stage, st)
}

// Len returns one stage's current LRU occupancy.
func (c *Cache) Len(stage string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if st, ok := c.stages[stage]; ok {
		return st.lru.Len()
	}
	return 0
}

// Reset drops every artifact and counter. In-flight builds complete
// but their results land in fresh stage states.
func (c *Cache) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.stages = map[string]*stageState{}
}
