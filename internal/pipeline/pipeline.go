// Package pipeline is the stage-graph artifact store behind the
// analyzer: a per-stage LRU keyed by canonical fingerprints, with
// cancellable singleflight coalescing.
//
// The analysis flow is an explicit dataflow — floorplan → power map →
// thermal solve → covariance/PCA → BLOD moments → per-block Weibull
// parameters → chip assembly — and each stage's artifact depends on
// only a subset of the configuration. Caching at stage granularity is
// what lets a MaxVDD bisection rebuild only the voltage-dependent tail
// while every probe shares one PCA, one BLOD characterization and one
// covariance model, and what lets a Table IV/V sweep share the
// thermal solve across rows that only vary correlation parameters.
//
// Cancellation contract (the part plain singleflight gets wrong):
//
//   - Every build runs under its own context, cancelled when the LAST
//     interested waiter abandons the flight. A request that times out
//     therefore stops the work it started — unless another request is
//     still waiting on the same artifact, in which case the build
//     continues for them.
//   - A build that dies of cancellation is never inserted into the
//     LRU and never delivered to a waiter: a late joiner that is still
//     alive retries with a fresh flight instead of receiving someone
//     else's context error ("cancelled partial results are not
//     handed to coalesced waiters").
//
// The zero-cost escape hatch: Get with a nil *Cache runs the build
// inline with the caller's context — no cache, no coalescing — which
// keeps cold-path behaviour exactly equal to the uncached code.
package pipeline

import (
	"context"
	"errors"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"obdrel/internal/lru"
	"obdrel/internal/obs"
)

// Cache stores stage artifacts: one LRU and one stats block per stage
// name, plus an in-flight table coalescing concurrent builds of the
// same (stage, key).
type Cache struct {
	mu         sync.Mutex
	defaultCap int
	caps       map[string]int
	stages     map[string]*stageState
	flights    map[flightKey]*flight
}

type stageState struct {
	lru   *lru.Cache[any]
	stats stats
}

type stats struct {
	hits, misses, builds, cancels atomic.Int64
	buildNanos                    atomic.Int64
}

type flightKey struct{ stage, key string }

type flight struct {
	done     chan struct{}
	cancel   context.CancelFunc
	waiters  int // guarded by Cache.mu
	val      any
	err      error
	canceled bool  // build died because every waiter left
	durNs    int64 // build wall time, written before done closes
}

// NewCache returns an empty cache holding at most defaultCap artifacts
// per stage (minimum 1).
func NewCache(defaultCap int) *Cache {
	if defaultCap < 1 {
		defaultCap = 1
	}
	return &Cache{
		defaultCap: defaultCap,
		caps:       map[string]int{},
		stages:     map[string]*stageState{},
		flights:    map[flightKey]*flight{},
	}
}

// SetCapacity overrides the LRU capacity of one stage. It only
// affects the stage's next (re)creation, so call it before the first
// Get for that stage (or after Reset).
func (c *Cache) SetCapacity(stage string, capacity int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.caps[stage] = capacity
}

// SetDefaultCapacity overrides the per-stage default capacity for
// stages created after the call.
func (c *Cache) SetDefaultCapacity(capacity int) {
	if capacity < 1 {
		capacity = 1
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.defaultCap = capacity
}

// state returns (creating if needed) the stage's LRU+stats. Caller
// holds c.mu.
func (c *Cache) state(stage string) *stageState {
	st, ok := c.stages[stage]
	if !ok {
		capacity := c.defaultCap
		if n, ok := c.caps[stage]; ok && n > 0 {
			capacity = n
		}
		st = &stageState{lru: lru.New[any](capacity)}
		c.stages[stage] = st
	}
	return st
}

// Result reports how a Get was served.
type Result struct {
	// Hit is true when the artifact came from the LRU.
	Hit bool
	// Coalesced is true when the caller joined a build another caller
	// had already started.
	Coalesced bool

	// buildNs is the completed flight's build wall time, carried out
	// of wait so the per-round span can report it.
	buildNs int64
}

// errFlightCanceled is the internal signal that a joined flight died
// of cancellation; Get retries instead of surfacing it.
var errFlightCanceled = errors.New("pipeline: flight canceled")

// Get returns the artifact for (stage, key), building it with `build`
// on a miss. Concurrent Gets for the same (stage, key) coalesce into
// one build; the build's context is cancelled when its last waiter's
// context expires. A nil cache runs build(ctx) inline.
func Get[O any](ctx context.Context, c *Cache, stage, key string, build func(context.Context) (O, error)) (O, Result, error) {
	var zero O
	if c == nil {
		v, err := build(ctx)
		return v, Result{}, err
	}
	res := Result{}
	for {
		if err := ctx.Err(); err != nil {
			return zero, res, err
		}
		// One span per lookup round: a cancelled-flight retry gets a
		// fresh span, so the trace shows every round it took. The
		// Join variant keeps the untraced path concat- and alloc-free.
		sctx, sp := obs.StartSpanJoin(ctx, "stage:", stage)
		v, r, err := c.getOnce(sctx, stage, key, func(bctx context.Context) (any, error) {
			return build(bctx)
		})
		res.Hit = r.Hit
		res.Coalesced = res.Coalesced || r.Coalesced
		if sp != nil {
			switch {
			case errors.Is(err, errFlightCanceled):
				sp.SetAttr("cache", "cancelled")
			case r.Hit:
				sp.SetAttr("cache", "hit")
			case r.Coalesced:
				sp.SetAttr("cache", "coalesced")
			default:
				sp.SetAttr("cache", "miss")
			}
			if r.buildNs > 0 {
				sp.SetAttr("build_ms", float64(r.buildNs)/1e6)
			}
			if err != nil && !errors.Is(err, errFlightCanceled) {
				sp.SetAttr("error", err.Error())
			}
			sp.End()
		}
		if errors.Is(err, errFlightCanceled) {
			// The build we were waiting on was abandoned by everyone
			// else and cancelled before we could use it; we are still
			// alive, so start over (the next round creates a fresh
			// flight with our own context attached).
			continue
		}
		if err != nil {
			return zero, res, err
		}
		out, ok := v.(O)
		if !ok {
			return zero, res, errors.New("pipeline: stage " + stage + " cached an artifact of the wrong type")
		}
		return out, res, nil
	}
}

// getOnce performs one lookup-or-flight round.
func (c *Cache) getOnce(ctx context.Context, stage, key string, build func(context.Context) (any, error)) (any, Result, error) {
	fk := flightKey{stage, key}
	c.mu.Lock()
	st := c.state(stage)
	if v, ok := st.lru.Get(key); ok {
		st.stats.hits.Add(1)
		c.mu.Unlock()
		return v, Result{Hit: true}, nil
	}
	st.stats.misses.Add(1)
	if f, ok := c.flights[fk]; ok {
		f.waiters++
		c.mu.Unlock()
		return c.wait(ctx, f, Result{Coalesced: true})
	}
	// The flight's context is detached from the initiator's deadline
	// (the last-waiter-cancels contract governs its lifetime) but
	// keeps the initiator's span, so build-internal spans — thermal
	// sweeps, PCA — land in the trace of whoever caused the build.
	bctx, cancel := context.WithCancel(obs.ContextWithSpan(context.Background(), obs.FromContext(ctx)))
	f := &flight{done: make(chan struct{}), cancel: cancel, waiters: 1}
	c.flights[fk] = f
	c.mu.Unlock()

	go func() {
		start := time.Now()
		v, err := build(bctx)
		durNs := time.Since(start).Nanoseconds()
		canceled := bctx.Err() != nil &&
			(errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded))
		c.mu.Lock()
		delete(c.flights, fk)
		switch {
		case err == nil:
			st.lru.Put(key, v)
			st.stats.builds.Add(1)
			st.stats.buildNanos.Add(durNs)
		case canceled:
			st.stats.cancels.Add(1)
		}
		c.mu.Unlock()
		f.val, f.err, f.canceled, f.durNs = v, err, canceled, durNs
		close(f.done)
		cancel()
	}()
	return c.wait(ctx, f, Result{})
}

// wait blocks until the flight completes or the waiter's own context
// expires; the last waiter to leave cancels the build.
func (c *Cache) wait(ctx context.Context, f *flight, res Result) (any, Result, error) {
	select {
	case <-f.done:
		if f.canceled {
			return nil, res, errFlightCanceled
		}
		if f.err == nil {
			res.buildNs = f.durNs
		}
		return f.val, res, f.err
	case <-ctx.Done():
		c.mu.Lock()
		f.waiters--
		last := f.waiters == 0
		c.mu.Unlock()
		if last {
			f.cancel()
		}
		return nil, res, ctx.Err()
	}
}

// StageStat is one stage's counters at a point in time.
type StageStat struct {
	Stage string
	// Hits and Misses count LRU lookups; Builds successful artifact
	// constructions; Cancels builds abandoned by every waiter.
	Hits, Misses, Builds, Cancels int64
	// BuildSeconds is the cumulative wall time of successful builds.
	BuildSeconds float64
	// Entries is the stage's current LRU occupancy.
	Entries int
}

// Snapshot returns every stage's counters, sorted by stage name.
func (c *Cache) Snapshot() []StageStat {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]StageStat, 0, len(c.stages))
	for name, st := range c.stages {
		out = append(out, StageStat{
			Stage:        name,
			Hits:         st.stats.hits.Load(),
			Misses:       st.stats.misses.Load(),
			Builds:       st.stats.builds.Load(),
			Cancels:      st.stats.cancels.Load(),
			BuildSeconds: float64(st.stats.buildNanos.Load()) / 1e9,
			Entries:      st.lru.Len(),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Stage < out[j].Stage })
	return out
}

// Stat returns one stage's counters (zero-valued if the stage has
// never been touched).
func (c *Cache) Stat(stage string) StageStat {
	c.mu.Lock()
	defer c.mu.Unlock()
	st, ok := c.stages[stage]
	if !ok {
		return StageStat{Stage: stage}
	}
	return StageStat{
		Stage:        stage,
		Hits:         st.stats.hits.Load(),
		Misses:       st.stats.misses.Load(),
		Builds:       st.stats.builds.Load(),
		Cancels:      st.stats.cancels.Load(),
		BuildSeconds: float64(st.stats.buildNanos.Load()) / 1e9,
		Entries:      st.lru.Len(),
	}
}

// Len returns one stage's current LRU occupancy.
func (c *Cache) Len(stage string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if st, ok := c.stages[stage]; ok {
		return st.lru.Len()
	}
	return 0
}

// Reset drops every artifact and counter. In-flight builds complete
// but their results land in fresh stage states.
func (c *Cache) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.stages = map[string]*stageState{}
}
