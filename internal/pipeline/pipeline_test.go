package pipeline

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestInlineWhenNil pins the escape hatch: a nil cache runs the build
// inline under the caller's context — no caching, no coalescing.
func TestInlineWhenNil(t *testing.T) {
	calls := 0
	for i := 0; i < 3; i++ {
		v, res, err := Get(context.Background(), nil, "s", "k", func(ctx context.Context) (int, error) {
			calls++
			return 7, nil
		})
		if err != nil || v != 7 {
			t.Fatalf("v=%d err=%v", v, err)
		}
		if res.Hit || res.Coalesced {
			t.Fatalf("nil cache reported %+v", res)
		}
	}
	if calls != 3 {
		t.Fatalf("nil cache memoized: %d calls, want 3", calls)
	}

	// The caller's context governs the inline build.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := Get(ctx, nil, "s", "k", func(bctx context.Context) (int, error) {
		return 0, bctx.Err()
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want canceled", err)
	}
}

func TestHitMissAndStats(t *testing.T) {
	c := NewCache(4)
	builds := 0
	get := func(key string) (int, Result) {
		v, res, err := Get(context.Background(), c, "stage", key, func(context.Context) (int, error) {
			builds++
			return builds, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return v, res
	}
	if v, res := get("a"); v != 1 || res.Hit {
		t.Fatalf("first get: v=%d res=%+v", v, res)
	}
	if v, res := get("a"); v != 1 || !res.Hit {
		t.Fatalf("second get: v=%d res=%+v", v, res)
	}
	get("b")
	st := c.Stat("stage")
	if st.Hits != 1 || st.Misses != 2 || st.Builds != 2 || st.Cancels != 0 {
		t.Fatalf("stats %+v", st)
	}
	if st.Entries != 2 || c.Len("stage") != 2 {
		t.Fatalf("entries %d", st.Entries)
	}
	if st.BuildSeconds < 0 {
		t.Fatalf("negative build seconds %v", st.BuildSeconds)
	}
	snap := c.Snapshot()
	if len(snap) != 1 || snap[0].Stage != "stage" {
		t.Fatalf("snapshot %+v", snap)
	}
}

// TestStagesAreIndependent: the same key in two stages is two
// artifacts; capacities apply per stage.
func TestStagesAreIndependent(t *testing.T) {
	c := NewCache(2)
	c.SetCapacity("small", 1)
	mk := func(stage string, v int) func(context.Context) (int, error) {
		return func(context.Context) (int, error) { return v, nil }
	}
	Get(context.Background(), c, "a", "k", mk("a", 1))
	Get(context.Background(), c, "b", "k", mk("b", 2))
	if v, _, _ := Get(context.Background(), c, "a", "k", mk("a", -1)); v != 1 {
		t.Fatalf("stage a key k = %d, want 1", v)
	}
	if v, _, _ := Get(context.Background(), c, "b", "k", mk("b", -1)); v != 2 {
		t.Fatalf("stage b key k = %d, want 2", v)
	}

	// The "small" stage holds one entry: the second key evicts the first.
	Get(context.Background(), c, "small", "k1", mk("small", 1))
	Get(context.Background(), c, "small", "k2", mk("small", 2))
	if c.Len("small") != 1 {
		t.Fatalf("small stage len %d, want 1", c.Len("small"))
	}
	if _, res, _ := Get(context.Background(), c, "small", "k1", mk("small", 3)); res.Hit {
		t.Fatal("evicted key served as hit")
	}
}

// TestCoalescing: concurrent gets of one key run one build; everyone
// gets its value, and joiners report Coalesced.
func TestCoalescing(t *testing.T) {
	c := NewCache(4)
	var builds atomic.Int64
	gate := make(chan struct{})
	const n = 16
	var wg sync.WaitGroup
	var coalesced atomic.Int64
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, res, err := Get(context.Background(), c, "s", "k", func(context.Context) (int, error) {
				builds.Add(1)
				<-gate
				return 42, nil
			})
			if err != nil || v != 42 {
				t.Errorf("v=%d err=%v", v, err)
			}
			if res.Coalesced {
				coalesced.Add(1)
			}
		}()
	}
	// Wait for every goroutine to be either the builder or a joiner:
	// the flight exists once misses stop climbing. Simplest robust
	// barrier: poll the miss counter.
	deadline := time.Now().Add(5 * time.Second)
	for c.Stat("s").Misses < n && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	close(gate)
	wg.Wait()
	if b := builds.Load(); b != 1 {
		t.Fatalf("%d builds, want 1", b)
	}
	if coalesced.Load() != n-1 {
		t.Fatalf("%d coalesced, want %d", coalesced.Load(), n-1)
	}
}

// TestErrorsNotCached: a failed build is not memoized and its error
// reaches every waiter of that flight; the next get retries.
func TestErrorsNotCached(t *testing.T) {
	c := NewCache(4)
	boom := errors.New("boom")
	calls := 0
	_, _, err := Get(context.Background(), c, "s", "k", func(context.Context) (int, error) {
		calls++
		return 0, boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	v, _, err := Get(context.Background(), c, "s", "k", func(context.Context) (int, error) {
		calls++
		return 5, nil
	})
	if err != nil || v != 5 || calls != 2 {
		t.Fatalf("v=%d calls=%d err=%v", v, calls, err)
	}
	if st := c.Stat("s"); st.Builds != 1 || st.Cancels != 0 {
		t.Fatalf("stats %+v", st)
	}
}

// TestLastWaiterCancels is the heart of the cancellation contract:
// the build's context is cancelled exactly when the last interested
// waiter abandons the flight — not before.
func TestLastWaiterCancels(t *testing.T) {
	c := NewCache(4)
	started := make(chan struct{})
	buildCancelled := make(chan struct{})
	ctx1, cancel1 := context.WithCancel(context.Background())
	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()

	errs := make(chan error, 2)
	go func() {
		_, _, err := Get(ctx1, c, "s", "k", func(bctx context.Context) (int, error) {
			close(started)
			<-bctx.Done()
			close(buildCancelled)
			return 0, bctx.Err()
		})
		errs <- err
	}()
	<-started
	go func() {
		_, _, err := Get(ctx2, c, "s", "k", func(context.Context) (int, error) {
			t.Error("joiner started a second build while the first was in flight")
			return 0, nil
		})
		errs <- err
	}()
	// Let the second get join the flight (coalesced misses reach 2).
	deadline := time.Now().Add(5 * time.Second)
	for c.Stat("s").Misses < 2 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}

	// First waiter leaves: one waiter remains, the build must keep
	// running.
	cancel1()
	if err := <-errs; !errors.Is(err, context.Canceled) {
		t.Fatalf("first waiter err = %v", err)
	}
	select {
	case <-buildCancelled:
		t.Fatal("build cancelled while a waiter was still interested")
	case <-time.After(50 * time.Millisecond):
	}

	// Last waiter leaves: now the build context must be cancelled.
	cancel2()
	if err := <-errs; !errors.Is(err, context.Canceled) {
		t.Fatalf("second waiter err = %v", err)
	}
	select {
	case <-buildCancelled:
	case <-time.After(5 * time.Second):
		t.Fatal("build not cancelled after the last waiter left")
	}

	// The cancelled result is not cached and the cancel is counted.
	deadline = time.Now().Add(5 * time.Second)
	for c.Stat("s").Cancels == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if st := c.Stat("s"); st.Cancels != 1 || st.Entries != 0 || st.Builds != 0 {
		t.Fatalf("stats after cancellation %+v", st)
	}
}

// TestCancelledFlightNotDeliveredToLateJoiner: a waiter that joins a
// flight after its builders left (but before the cancelled build
// returns) must not receive the context error — it retries and gets a
// freshly built value.
func TestCancelledFlightNotDeliveredToLateJoiner(t *testing.T) {
	c := NewCache(4)
	started := make(chan struct{})
	sawCancel := make(chan struct{})
	hold := make(chan struct{})
	var builds atomic.Int64

	ctx1, cancel1 := context.WithCancel(context.Background())
	origErr := make(chan error, 1)
	go func() {
		_, _, err := Get(ctx1, c, "s", "k", func(bctx context.Context) (int, error) {
			builds.Add(1)
			close(started)
			<-bctx.Done()
			close(sawCancel)
			<-hold // keep the doomed flight joinable
			return 0, bctx.Err()
		})
		origErr <- err
	}()
	<-started
	cancel1()
	if err := <-origErr; !errors.Is(err, context.Canceled) {
		t.Fatalf("originator err = %v", err)
	}
	<-sawCancel

	// Late joiner: finds the doomed flight in the map, waits on it,
	// then must transparently retry once the flight dies cancelled.
	joinErr := make(chan error, 1)
	go func() {
		v, res, err := Get(context.Background(), c, "s", "k", func(context.Context) (int, error) {
			builds.Add(1)
			return 99, nil
		})
		if err == nil {
			if v != 99 {
				err = fmt.Errorf("v = %d, want 99", v)
			} else if !res.Coalesced {
				// It must have joined the doomed flight first.
				err = errors.New("late joiner never coalesced onto the doomed flight")
			}
		}
		joinErr <- err
	}()
	// Wait until the joiner has coalesced (miss #2 on the stage).
	deadline := time.Now().Add(5 * time.Second)
	for c.Stat("s").Misses < 2 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	close(hold)
	select {
	case err := <-joinErr:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("late joiner never finished")
	}
	if builds.Load() != 2 {
		t.Fatalf("builds = %d, want 2 (doomed + retry)", builds.Load())
	}
	if v, res, _ := Get(context.Background(), c, "s", "k", func(context.Context) (int, error) {
		return -1, nil
	}); v != 99 || !res.Hit {
		t.Fatalf("retry result not cached: v=%d res=%+v", v, res)
	}
}

// TestWrongTypeGuard: an artifact cached under one type must not be
// silently handed to a Get expecting another.
func TestWrongTypeGuard(t *testing.T) {
	c := NewCache(4)
	if _, _, err := Get(context.Background(), c, "s", "k", func(context.Context) (int, error) {
		return 1, nil
	}); err != nil {
		t.Fatal(err)
	}
	_, _, err := Get(context.Background(), c, "s", "k", func(context.Context) (string, error) {
		return "", nil
	})
	if err == nil {
		t.Fatal("type mismatch not detected")
	}
}

// TestResetAndCapacity: Reset drops artifacts and counters;
// SetDefaultCapacity governs stages created afterwards.
func TestResetAndCapacity(t *testing.T) {
	c := NewCache(4)
	Get(context.Background(), c, "s", "k", func(context.Context) (int, error) { return 1, nil })
	c.Reset()
	if c.Len("s") != 0 {
		t.Fatal("reset kept entries")
	}
	if st := c.Stat("s"); st.Hits != 0 || st.Misses != 0 {
		t.Fatalf("reset kept stats %+v", st)
	}
	c.SetDefaultCapacity(1)
	Get(context.Background(), c, "t", "k1", func(context.Context) (int, error) { return 1, nil })
	Get(context.Background(), c, "t", "k2", func(context.Context) (int, error) { return 2, nil })
	if c.Len("t") != 1 {
		t.Fatalf("default capacity ignored: len %d", c.Len("t"))
	}
}
