package pipeline

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"obdrel/internal/artifact"
)

// The tier tests use a trivial serializable stage: the artifact is an
// int64, the codec its little-endian dump.
const tierStage = "tierstage"

func init() {
	artifact.Register(tierStage, artifact.Codec{
		Encode: func(v any) ([]byte, error) {
			var w artifact.Writer
			w.I64(v.(int64))
			return w.Bytes(), nil
		},
		Decode: func(p []byte) (any, error) {
			r := artifact.NewReader(p)
			v := r.I64()
			if err := r.Close(); err != nil {
				return nil, err
			}
			return v, nil
		},
	})
}

func tierKey(b byte) string {
	k := make([]byte, artifact.KeySize)
	for i := range k {
		k[i] = b
	}
	return string(k)
}

func getTier(t *testing.T, c *Cache, key string, builds *int, val int64) (int64, Result) {
	t.Helper()
	v, res, err := Get(context.Background(), c, tierStage, key, func(context.Context) (int64, error) {
		if builds != nil {
			*builds++
		}
		return val, nil
	})
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	return v, res
}

func TestDiskTierSpillAndRestart(t *testing.T) {
	dir := t.TempDir()
	key := tierKey('a')

	c1 := NewCache(4)
	c1.SetTiers(Tiers{Dir: dir})
	builds := 0
	v, res := getTier(t, c1, key, &builds, 41)
	if v != 41 || builds != 1 || res.Source != SourceBuilt {
		t.Fatalf("cold get = %d builds=%d source=%q", v, builds, res.Source)
	}
	if st := c1.Stat(tierStage); st.Spills != 1 || st.Builds != 1 {
		t.Fatalf("spills=%d builds=%d", st.Spills, st.Builds)
	}
	if _, err := os.Stat(filepath.Join(dir, artifact.FileName(tierStage, key))); err != nil {
		t.Fatalf("spill file missing: %v", err)
	}

	// "Restart": a fresh cache over the same directory serves from
	// disk with zero builds.
	c2 := NewCache(4)
	c2.SetTiers(Tiers{Dir: dir})
	builds = 0
	v, res = getTier(t, c2, key, &builds, -1)
	if v != 41 || builds != 0 || res.Source != SourceDisk {
		t.Fatalf("restart get = %d builds=%d source=%q", v, builds, res.Source)
	}
	st := c2.Stat(tierStage)
	if st.DiskHits != 1 || st.Builds != 0 {
		t.Fatalf("disk hits=%d builds=%d", st.DiskHits, st.Builds)
	}
	// Second get is a memory hit.
	_, res = getTier(t, c2, key, nil, -1)
	if !res.Hit || res.Source != SourceMem {
		t.Fatalf("warm get hit=%v source=%q", res.Hit, res.Source)
	}
}

func TestDiskTierCorruptFileRejectedAndRebuilt(t *testing.T) {
	dir := t.TempDir()
	key := tierKey('b')
	path := filepath.Join(dir, artifact.FileName(tierStage, key))
	if err := os.WriteFile(path, []byte("garbage, not an OBDA container"), 0o644); err != nil {
		t.Fatal(err)
	}
	c := NewCache(4)
	c.SetTiers(Tiers{Dir: dir})
	builds := 0
	v, res := getTier(t, c, key, &builds, 7)
	if v != 7 || builds != 1 || res.Source != SourceBuilt {
		t.Fatalf("get over corrupt file = %d builds=%d source=%q", v, builds, res.Source)
	}
	st := c.Stat(tierStage)
	if st.DiskRejects != 1 {
		t.Fatalf("disk rejects = %d", st.DiskRejects)
	}
	// The corrupt file was replaced by the rebuilt spill.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("rebuilt spill missing: %v", err)
	}
	if _, err := artifact.Open(data, tierStage, key); err != nil {
		t.Fatalf("rebuilt spill invalid: %v", err)
	}
}

func TestDiskTierFutureVersionKept(t *testing.T) {
	dir := t.TempDir()
	key := tierKey('v')
	sealed, err := artifact.Seal(tierStage, key, []byte{1, 0, 0, 0, 0, 0, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	sealed[4] = 99 // bump the version field
	path := filepath.Join(dir, artifact.FileName(tierStage, key))
	if err := os.WriteFile(path, sealed, 0o644); err != nil {
		t.Fatal(err)
	}
	c := NewCache(4)
	c.SetTiers(Tiers{Dir: dir})
	if v, _ := getTier(t, c, key, nil, 5); v != 5 {
		t.Fatalf("got %d", v)
	}
	// The future-version file is rejected (counted) but not deleted
	// by the load path; the local rebuild then atomically replaces it.
	if st := c.Stat(tierStage); st.DiskRejects != 1 {
		t.Fatalf("disk rejects = %d", st.DiskRejects)
	}
}

func TestPeerTierFillAndDegrade(t *testing.T) {
	key := tierKey('c')
	sealed, err := artifact.Encode(tierStage, key, int64(1234))
	if err != nil {
		t.Fatal(err)
	}

	t.Run("fill", func(t *testing.T) {
		dir := t.TempDir()
		c := NewCache(4)
		fetches := 0
		c.SetTiers(Tiers{Dir: dir, Fetch: func(ctx context.Context, stage, k string) ([]byte, bool, error) {
			fetches++
			if stage != tierStage || k != key {
				t.Errorf("fetch for %s/%s", stage, k)
			}
			return sealed, true, nil
		}})
		builds := 0
		v, res := getTier(t, c, key, &builds, -1)
		if v != 1234 || builds != 0 || res.Source != SourcePeer || fetches != 1 {
			t.Fatalf("peer fill = %d builds=%d source=%q fetches=%d", v, builds, res.Source, fetches)
		}
		st := c.Stat(tierStage)
		if st.PeerHits != 1 || st.Builds != 0 {
			t.Fatalf("peer hits=%d builds=%d", st.PeerHits, st.Builds)
		}
		// The fill was persisted: a fresh cache over the same dir
		// reads it from disk.
		c2 := NewCache(4)
		c2.SetTiers(Tiers{Dir: dir})
		if v, res := getTier(t, c2, key, &builds, -1); v != 1234 || res.Source != SourceDisk {
			t.Fatalf("fill not persisted: %d %q", v, res.Source)
		}
	})

	t.Run("dead peer degrades to build", func(t *testing.T) {
		c := NewCache(4)
		c.SetTiers(Tiers{Fetch: func(context.Context, string, string) ([]byte, bool, error) {
			return nil, false, errors.New("connection refused")
		}})
		builds := 0
		v, res := getTier(t, c, key, &builds, 9)
		if v != 9 || builds != 1 || res.Source != SourceBuilt {
			t.Fatalf("degrade = %d builds=%d source=%q", v, builds, res.Source)
		}
		if st := c.Stat(tierStage); st.PeerErrors != 1 {
			t.Fatalf("peer errors = %d", st.PeerErrors)
		}
	})

	t.Run("corrupt peer payload degrades to build", func(t *testing.T) {
		c := NewCache(4)
		bad := append([]byte(nil), sealed...)
		bad[len(bad)-1] ^= 0xFF
		c.SetTiers(Tiers{Fetch: func(context.Context, string, string) ([]byte, bool, error) {
			return bad, true, nil
		}})
		builds := 0
		v, _ := getTier(t, c, key, &builds, 9)
		if v != 9 || builds != 1 {
			t.Fatalf("corrupt fill = %d builds=%d", v, builds)
		}
		if st := c.Stat(tierStage); st.PeerErrors != 1 || st.PeerHits != 0 {
			t.Fatalf("peer errors=%d hits=%d", st.PeerErrors, st.PeerHits)
		}
	})

	t.Run("miss falls through to build", func(t *testing.T) {
		c := NewCache(4)
		c.SetTiers(Tiers{Fetch: func(context.Context, string, string) ([]byte, bool, error) {
			return nil, false, nil
		}})
		builds := 0
		if v, _ := getTier(t, c, key, &builds, 3); v != 3 || builds != 1 {
			t.Fatalf("miss = %d builds=%d", v, builds)
		}
		if st := c.Stat(tierStage); st.PeerErrors != 0 {
			t.Fatalf("peer errors = %d", st.PeerErrors)
		}
	})
}

func TestNonSerializableStageSkipsTiers(t *testing.T) {
	dir := t.TempDir()
	c := NewCache(4)
	fetches := 0
	c.SetTiers(Tiers{Dir: dir, Fetch: func(context.Context, string, string) ([]byte, bool, error) {
		fetches++
		return nil, false, nil
	}})
	v, _, err := Get(context.Background(), c, "nocodec", tierKey('d'), func(context.Context) (string, error) {
		return "live", nil
	})
	if err != nil || v != "live" {
		t.Fatalf("get = %q %v", v, err)
	}
	if fetches != 0 {
		t.Fatalf("peer tier consulted for non-serializable stage")
	}
	ents, _ := os.ReadDir(dir)
	if len(ents) != 0 {
		t.Fatalf("non-serializable stage spilled %d files", len(ents))
	}
}

func TestSealed(t *testing.T) {
	dir := t.TempDir()
	c := NewCache(4)
	c.SetTiers(Tiers{Dir: dir})
	key := tierKey('e')

	if _, ok := c.Sealed(tierStage, key); ok {
		t.Fatal("Sealed served a cold key")
	}
	getTier(t, c, key, nil, 55)
	sealed, ok := c.Sealed(tierStage, key)
	if !ok {
		t.Fatal("Sealed missed a resident key")
	}
	if v, err := artifact.Decode(tierStage, key, sealed); err != nil || v.(int64) != 55 {
		t.Fatalf("Sealed round trip = %v %v", v, err)
	}
	// Evict memory (fresh cache, same dir): Sealed serves raw disk bytes.
	c2 := NewCache(4)
	c2.SetTiers(Tiers{Dir: dir})
	sealed2, ok := c2.Sealed(tierStage, key)
	if !ok {
		t.Fatal("Sealed missed the disk tier")
	}
	if string(sealed2) != string(sealed) {
		t.Fatal("disk bytes differ from encoded bytes")
	}
	// Non-serializable stages are never served.
	if _, ok := c.Sealed("nocodec", key); ok {
		t.Fatal("Sealed served a stage without codec")
	}
}

func TestWarmFromDisk(t *testing.T) {
	dir := t.TempDir()
	seed := NewCache(8)
	seed.SetTiers(Tiers{Dir: dir})
	keys := []string{tierKey('1'), tierKey('2'), tierKey('3')}
	for i, k := range keys {
		getTier(t, seed, k, nil, int64(100+i))
	}
	// One corrupt file rides along.
	badKey := tierKey('9')
	os.WriteFile(filepath.Join(dir, artifact.FileName(tierStage, badKey)), []byte("junk"), 0o644)

	c := NewCache(8)
	c.SetTiers(Tiers{Dir: dir})
	var lastDone, lastTotal int
	ws := c.WarmFromDisk(context.Background(), func(stage, key string) bool {
		return key != keys[2] // ownership filter excludes one key
	}, 0, func(done, total int) { lastDone, lastTotal = done, total })
	if ws.Loaded != 2 || ws.Rejected != 1 {
		t.Fatalf("warm = %+v", ws)
	}
	if lastDone != lastTotal || lastTotal != 3 {
		t.Fatalf("progress = %d/%d", lastDone, lastTotal)
	}
	// Warmed keys are memory hits; the excluded key comes from disk.
	builds := 0
	if _, res := getTier(t, c, keys[0], &builds, -1); !res.Hit {
		t.Fatalf("warmed key not resident: %+v", res)
	}
	if _, res := getTier(t, c, keys[2], &builds, -1); res.Source != SourceDisk {
		t.Fatalf("excluded key source = %q", res.Source)
	}
	if builds != 0 {
		t.Fatalf("builds = %d", builds)
	}
	// The corrupt file was deleted by the sweep.
	if _, err := os.Stat(filepath.Join(dir, artifact.FileName(tierStage, badKey))); !os.IsNotExist(err) {
		t.Fatalf("corrupt file not removed: %v", err)
	}

	// Bounded sweep: limit 1 loads exactly one artifact.
	c3 := NewCache(8)
	c3.SetTiers(Tiers{Dir: dir})
	ws = c3.WarmFromDisk(context.Background(), nil, 1, nil)
	if ws.Loaded != 1 {
		t.Fatalf("bounded warm = %+v", ws)
	}
}
