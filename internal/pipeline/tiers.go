package pipeline

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"sort"

	"obdrel/internal/artifact"
	"obdrel/internal/fault"
	"obdrel/internal/obs"
)

// Tiers configures the cache hierarchy below the in-process LRU. A
// miss resolves disk → peer → build inside the flight goroutine, so
// coalesced waiters share one tier walk the same way they share one
// build, and the last-waiter-cancels contract covers peer fetches.
//
// Both tiers apply only to stages with a registered artifact codec;
// everything else (the registry's live analyzers, test stages)
// behaves exactly as before tiers existed.
type Tiers struct {
	// Dir is the disk spill directory; "" disables the disk tier.
	// Artifacts are written with the temp+rename discipline and
	// checksum-verified on load — a corrupt file is rejected, deleted
	// and rebuilt (files from a future format version are rejected
	// but left in place for the newer node that wrote them).
	Dir string
	// Fetch asks the cluster for a sealed artifact: (sealed, true, nil)
	// on success, (nil, false, nil) when no peer has it, and an error
	// when the fetch failed (dead peer, bad response). Errors degrade
	// to a local build — they are counted, never surfaced to the
	// caller. Nil disables the peer tier.
	Fetch func(ctx context.Context, stage, key string) (sealed []byte, ok bool, err error)
	// Replicate, when non-nil, receives the sealed bytes of every
	// successfully built serializable artifact, after the local spill.
	// It must not block: the server side enqueues an async k-way
	// replication push and drops (counted) when the queue is full.
	Replicate func(stage, key string, sealed []byte)
}

// SetTiers installs the disk and peer tiers. Flights in progress keep
// the configuration they started with.
func (c *Cache) SetTiers(t Tiers) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.tiers = t
}

// Tiers returns the installed tier configuration.
func (c *Cache) Tiers() Tiers {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.tiers
}

// resolveFlight satisfies a flight from the cheapest tier that has
// the artifact: disk, then peer, then the stage build. It returns the
// artifact, its provenance, and (for builds) the attempt count.
func (c *Cache) resolveFlight(bctx context.Context, stage, key string, build func(context.Context) (any, error), pol fault.Retry, st *stageState, t Tiers) (any, string, error, int) {
	if _, serializable := artifact.Lookup(stage); serializable {
		if t.Dir != "" {
			if v, ok := c.diskLoad(bctx, stage, key, t.Dir, st); ok {
				return v, SourceDisk, nil, 0
			}
		}
		if t.Fetch != nil && bctx.Err() == nil {
			if v, ok := c.peerFill(bctx, stage, key, t, st); ok {
				return v, SourcePeer, nil, 0
			}
		}
	}
	v, err, attempts := c.runBuild(bctx, stage, key, build, pol, st)
	if err == nil {
		if _, serializable := artifact.Lookup(stage); serializable && (t.Dir != "" || t.Replicate != nil) {
			// One Encode feeds both the disk spill and the replication
			// push, so replicas carry byte-identical containers.
			sealed, encErr := artifact.Encode(stage, key, v)
			if encErr != nil {
				st.stats.spillFails.Add(1)
			} else {
				if t.Dir != "" {
					c.spillSealed(stage, key, sealed, t.Dir, st)
				}
				if t.Replicate != nil {
					t.Replicate(stage, key, sealed)
				}
			}
		}
	}
	return v, SourceBuilt, err, attempts
}

// diskLoad reads and decodes one artifact from the spill directory.
// Any validation or decode failure rejects the file: it is counted,
// removed (so the rebuilt artifact can take its place), and treated
// as a miss. A future-version container is counted but kept.
func (c *Cache) diskLoad(bctx context.Context, stage, key, dir string, st *stageState) (any, bool) {
	path := filepath.Join(dir, artifact.FileName(stage, key))
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, false
	}
	v, err := artifact.Decode(stage, key, data)
	if err != nil {
		st.stats.diskRejects.Add(1)
		if !errors.Is(err, artifact.ErrVersion) {
			os.Remove(path)
		}
		obs.Annotate(bctx, "disk_reject", err.Error())
		return nil, false
	}
	st.stats.diskHits.Add(1)
	return v, true
}

// peerFill fetches a sealed artifact from the cluster, decodes it,
// and spills the sealed bytes to the local disk tier so the fill
// survives a restart. Every failure mode — dead peer, corrupt
// payload — is counted and degrades to a local build.
func (c *Cache) peerFill(bctx context.Context, stage, key string, t Tiers, st *stageState) (any, bool) {
	sealed, ok, err := t.Fetch(bctx, stage, key)
	if err != nil {
		st.stats.peerErrors.Add(1)
		obs.Annotate(bctx, "peer_error", err.Error())
		return nil, false
	}
	if !ok {
		return nil, false
	}
	v, err := artifact.Decode(stage, key, sealed)
	if err != nil {
		// The peer handed us bytes that fail their own checksum or
		// schema: reject the fill, build locally.
		st.stats.peerErrors.Add(1)
		obs.Annotate(bctx, "peer_error", err.Error())
		return nil, false
	}
	st.stats.peerHits.Add(1)
	if t.Dir != "" {
		c.spillSealed(stage, key, sealed, t.Dir, st)
	}
	return v, true
}

func (c *Cache) spillSealed(stage, key string, sealed []byte, dir string, st *stageState) {
	if err := artifact.WriteFile(dir, stage, key, sealed); err != nil {
		st.stats.spillFails.Add(1)
		return
	}
	st.stats.spills.Add(1)
}

// Peek returns the live artifact for (stage, key) without touching
// hit/miss counters or starting a build.
func (c *Cache) Peek(stage, key string) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	st, ok := c.stages[stage]
	if !ok {
		return nil, false
	}
	return st.lru.Get(key)
}

// Sealed returns the encoded container for (stage, key) from memory
// or disk — the read side of the peer cache-fill protocol. It never
// builds: a node only serves what it already has, so a fetch for a
// cold key 404s and the requester builds locally.
func (c *Cache) Sealed(stage, key string) ([]byte, bool) {
	if _, ok := artifact.Lookup(stage); !ok {
		return nil, false
	}
	c.mu.Lock()
	st := c.state(stage)
	// No hit/miss accounting here: serving a peer is not a local
	// cache lookup.
	v, have := st.lru.Get(key)
	dir := c.tiers.Dir
	c.mu.Unlock()
	if have {
		if sealed, err := artifact.Encode(stage, key, v); err == nil {
			return sealed, true
		}
	}
	if dir == "" {
		return nil, false
	}
	path := filepath.Join(dir, artifact.FileName(stage, key))
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, false
	}
	// Verify before serving: shipping a corrupt container to a peer
	// would waste its fetch (it re-validates anyway). Same rejection
	// policy as diskLoad.
	if _, err := artifact.Open(data, stage, key); err != nil {
		st.stats.diskRejects.Add(1)
		if !errors.Is(err, artifact.ErrVersion) {
			os.Remove(path)
		}
		return nil, false
	}
	return data, true
}

// Install decodes a sealed container pushed by a peer (replication
// write or rebalance stream) and installs it into the memory LRU and
// the disk tier. The decode re-verifies the checksum, so a corrupt or
// mismatched container is rejected with an error and touches nothing.
// Install never triggers a build and never overwrites a live entry
// with different bytes silently — last write wins, which is safe
// because containers for one (stage, key) are deterministic.
func (c *Cache) Install(stage, key string, sealed []byte) error {
	if _, ok := artifact.Lookup(stage); !ok {
		return errors.New("pipeline: stage has no artifact codec")
	}
	v, err := artifact.Decode(stage, key, sealed)
	if err != nil {
		return err
	}
	c.mu.Lock()
	st := c.state(stage)
	st.lru.Put(key, v)
	dir := c.tiers.Dir
	c.mu.Unlock()
	if dir != "" {
		c.spillSealed(stage, key, sealed, dir, st)
	}
	return nil
}

// Held reports whether (stage, key) is already resident in memory or
// present in the disk tier — the cheap "do I need to stream this?"
// check the rebalance sweep uses. It does not validate the disk file;
// a corrupt file will be rejected (and refetched) on first use.
func (c *Cache) Held(stage, key string) bool {
	if _, ok := c.Peek(stage, key); ok {
		return true
	}
	dir := c.Tiers().Dir
	if dir == "" {
		return false
	}
	_, err := os.Stat(filepath.Join(dir, artifact.FileName(stage, key)))
	return err == nil
}

// StageKey names one artifact held by a node.
type StageKey struct {
	Stage string `json:"stage"`
	Key   string `json:"key"`
}

// Inventory lists every serializable artifact this node holds, from
// the memory LRU and the disk tier, deduplicated and sorted. Peers
// use it to compute which keys they gained after a ring change.
func (c *Cache) Inventory() []StageKey {
	seen := make(map[StageKey]struct{})
	c.mu.Lock()
	for stage, st := range c.stages {
		if _, ok := artifact.Lookup(stage); !ok {
			continue
		}
		for _, key := range st.lru.Keys() {
			seen[StageKey{stage, key}] = struct{}{}
		}
	}
	dir := c.tiers.Dir
	c.mu.Unlock()
	if dir != "" {
		if ents, err := os.ReadDir(dir); err == nil {
			for _, e := range ents {
				if e.IsDir() {
					continue
				}
				stage, key, ok := artifact.ParseFileName(e.Name())
				if !ok {
					continue
				}
				if _, ok := artifact.Lookup(stage); !ok {
					continue
				}
				seen[StageKey{stage, key}] = struct{}{}
			}
		}
	}
	out := make([]StageKey, 0, len(seen))
	for sk := range seen {
		out = append(out, sk)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Stage != out[j].Stage {
			return out[i].Stage < out[j].Stage
		}
		return out[i].Key < out[j].Key
	})
	return out
}

// WarmStats reports one anti-entropy sweep.
type WarmStats struct {
	// Loaded artifacts entered the memory LRU; Skipped were already
	// resident or beyond the sweep bound; Rejected failed validation.
	Loaded, Skipped, Rejected int
}

// WarmFromDisk is the bounded anti-entropy sweep: it walks the disk
// tier, and loads into memory up to limit artifacts for which
// owns(stage, key) is true (nil owns means everything). Corrupt files
// are rejected with diskLoad's delete-and-rebuild policy. progress
// (optional) observes (done, total) after each candidate, which is
// what /readyz reports during warm-up.
func (c *Cache) WarmFromDisk(ctx context.Context, owns func(stage, key string) bool, limit int, progress func(done, total int)) WarmStats {
	var ws WarmStats
	dir := c.Tiers().Dir
	if dir == "" {
		return ws
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		return ws
	}
	type cand struct{ stage, key string }
	var cands []cand
	for _, e := range ents {
		if e.IsDir() {
			continue
		}
		stage, key, ok := artifact.ParseFileName(e.Name())
		if !ok {
			continue
		}
		if _, ok := artifact.Lookup(stage); !ok {
			continue
		}
		if owns != nil && !owns(stage, key) {
			continue
		}
		if limit > 0 && len(cands) == limit {
			ws.Skipped++
			continue
		}
		cands = append(cands, cand{stage, key})
	}
	total := len(cands)
	for i, cd := range cands {
		if ctx.Err() != nil {
			ws.Skipped += total - i
			break
		}
		if _, resident := c.Peek(cd.stage, cd.key); resident {
			ws.Skipped++
		} else {
			c.mu.Lock()
			st := c.state(cd.stage)
			c.mu.Unlock()
			if v, ok := c.diskLoad(ctx, cd.stage, cd.key, dir, st); ok {
				c.mu.Lock()
				st.lru.Put(cd.key, v)
				c.mu.Unlock()
				ws.Loaded++
			} else {
				ws.Rejected++
			}
		}
		if progress != nil {
			progress(i+1, total)
		}
	}
	return ws
}
