package pipeline

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"obdrel/internal/fault"
)

var errFlaky = errors.New("flaky backend")

// TestTransientRetriedToSuccess: a build that fails transiently heals
// inside the flight — one Get, one successful build, retries counted.
func TestTransientRetriedToSuccess(t *testing.T) {
	c := NewCache(4)
	c.SetRetry(fault.Retry{Attempts: 3, Base: time.Millisecond})
	var calls atomic.Int32
	v, res, err := Get(context.Background(), c, "s", "k", func(context.Context) (int, error) {
		if calls.Add(1) < 3 {
			return 0, fault.Transient.Wrap(errFlaky)
		}
		return 42, nil
	})
	if err != nil || v != 42 {
		t.Fatalf("Get = %v, %v", v, err)
	}
	if calls.Load() != 3 {
		t.Fatalf("calls = %d, want 3", calls.Load())
	}
	st := c.Stat("s")
	if st.Retries != 2 || st.Builds != 1 {
		t.Fatalf("retries=%d builds=%d", st.Retries, st.Builds)
	}
	if res.Hit || res.Coalesced {
		t.Fatalf("res = %+v", res)
	}
}

// TestPermanentFailureNotRetried: unclassified errors stay Permanent —
// exactly one attempt, wrapped with stage+fingerprint provenance.
func TestPermanentFailureNotRetried(t *testing.T) {
	c := NewCache(4)
	c.SetRetry(fault.Retry{Attempts: 5, Base: time.Millisecond})
	var calls atomic.Int32
	boom := errors.New("deterministic bug")
	_, _, err := Get(context.Background(), c, "s", "fp1", func(context.Context) (int, error) {
		calls.Add(1)
		return 0, boom
	})
	if calls.Load() != 1 {
		t.Fatalf("calls = %d, want 1", calls.Load())
	}
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want cause %v", err, boom)
	}
	var se *fault.StageError
	if !errors.As(err, &se) || se.Stage != "s" || se.Fingerprint != "fp1" {
		t.Fatalf("missing provenance: %v", err)
	}
	if c.Stat("s").Retries != 0 {
		t.Fatal("permanent failure was retried")
	}
}

// TestRetryExhaustion: a persistently transient failure burns all
// attempts and surfaces, still classified Transient through the
// provenance wrapper.
func TestRetryExhaustion(t *testing.T) {
	c := NewCache(4)
	c.SetRetry(fault.Retry{Attempts: 3, Base: time.Millisecond})
	var calls atomic.Int32
	_, _, err := Get(context.Background(), c, "s", "k", func(context.Context) (int, error) {
		calls.Add(1)
		return 0, fault.Transient.Wrap(errFlaky)
	})
	if calls.Load() != 3 {
		t.Fatalf("calls = %d, want 3", calls.Load())
	}
	if fault.ClassOf(err) != fault.Transient {
		t.Fatalf("class = %v", fault.ClassOf(err))
	}
	if c.Stat("s").Retries != 2 {
		t.Fatalf("retries = %d", c.Stat("s").Retries)
	}
}

// TestCancellationDuringBackoffIsNotFailure is the PR5 extension of
// the PR3 last-waiter-cancels contract: a caller whose context dies
// mid-backoff surfaces a cancellation (not the transient error), the
// flight counts as cancelled, the breaker does not trip, and a late
// joiner retries transparently with a fresh flight.
func TestCancellationDuringBackoffIsNotFailure(t *testing.T) {
	c := NewCache(4)
	c.SetRetry(fault.Retry{Attempts: 4, Base: 30 * time.Second}) // backoff far longer than the test
	br := fault.NewBreaker(1, time.Hour)                         // hair trigger: any counted failure opens
	c.SetBreaker(br)
	firstAttempt := make(chan struct{})
	var calls atomic.Int32
	build := func(context.Context) (int, error) {
		if calls.Add(1) == 1 {
			close(firstAttempt)
			return 0, fault.Transient.Wrap(errFlaky)
		}
		return 7, nil
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, _, err := Get(ctx, c, "s", "k", build)
		done <- err
	}()
	<-firstAttempt
	cancel() // the only waiter leaves while the flight is backing off
	err := <-done
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("caller got %v, want context.Canceled", err)
	}
	waitFor(t, func() bool { return c.Stat("s").Cancels == 1 })
	if br.Opens() != 0 {
		t.Fatal("cancellation during backoff tripped the breaker")
	}
	if got := c.Stat("s"); got.Builds != 0 {
		t.Fatalf("cancelled flight recorded a build: %+v", got)
	}
	// A late joiner is served by a fresh flight, transparently.
	v, _, err := Get(context.Background(), c, "s", "k", build)
	if err != nil || v != 7 {
		t.Fatalf("late joiner: %v, %v", v, err)
	}
	if calls.Load() != 2 {
		t.Fatalf("calls = %d, want 2", calls.Load())
	}
}

// TestBreakerShedsPoisonedKey: a deterministically failing fingerprint
// opens its circuit; further Gets fast-fail with the cached cause and
// never run the build, while other keys stay healthy.
func TestBreakerShedsPoisonedKey(t *testing.T) {
	c := NewCache(4)
	c.SetBreaker(fault.NewBreaker(2, time.Hour))
	var calls atomic.Int32
	poison := func(context.Context) (int, error) {
		calls.Add(1)
		return 0, errors.New("poisoned config")
	}
	for i := 0; i < 2; i++ {
		if _, _, err := Get(context.Background(), c, "s", "bad", poison); err == nil {
			t.Fatal("poisoned build succeeded")
		}
	}
	_, _, err := Get(context.Background(), c, "s", "bad", poison)
	var oe *fault.OpenError
	if !errors.As(err, &oe) {
		t.Fatalf("err = %v, want OpenError", err)
	}
	if fault.ClassOf(err) != fault.Overload {
		t.Fatalf("class = %v", fault.ClassOf(err))
	}
	if !strings.Contains(oe.Error(), "poisoned config") {
		t.Fatalf("negative cache lost the cause: %v", oe)
	}
	if calls.Load() != 2 {
		t.Fatalf("build ran %d times, want 2", calls.Load())
	}
	st := c.Stat("s")
	if st.BreakerOpens != 1 || st.BreakerFastFails != 1 {
		t.Fatalf("opens=%d fastFails=%d", st.BreakerOpens, st.BreakerFastFails)
	}
	// A healthy key on the same stage is unaffected.
	v, _, err := Get(context.Background(), c, "s", "good", func(context.Context) (int, error) { return 1, nil })
	if err != nil || v != 1 {
		t.Fatalf("healthy key: %v, %v", v, err)
	}
}

// TestBreakerHalfOpenRecovery: after the open TTL one probe build is
// admitted; its success closes the circuit and caches the artifact.
func TestBreakerHalfOpenRecovery(t *testing.T) {
	c := NewCache(4)
	br := fault.NewBreaker(1, 30*time.Millisecond)
	c.SetBreaker(br)
	healed := atomic.Bool{}
	build := func(context.Context) (int, error) {
		if !healed.Load() {
			return 0, errors.New("still down")
		}
		return 9, nil
	}
	if _, _, err := Get(context.Background(), c, "s", "k", build); err == nil {
		t.Fatal("expected failure")
	}
	var oe *fault.OpenError
	if _, _, err := Get(context.Background(), c, "s", "k", build); !errors.As(err, &oe) {
		t.Fatalf("circuit did not open: %v", err)
	}
	healed.Store(true)
	time.Sleep(40 * time.Millisecond)
	v, _, err := Get(context.Background(), c, "s", "k", build) // the half-open probe
	if err != nil || v != 9 {
		t.Fatalf("probe: %v, %v", v, err)
	}
	if br.OpenKeys() != 0 {
		t.Fatal("circuit still open after successful probe")
	}
	if _, res, err := Get(context.Background(), c, "s", "k", build); err != nil || !res.Hit {
		t.Fatalf("recovered artifact not cached: %+v, %v", res, err)
	}
}

// TestBuildPanicContained: a panicking build becomes a Permanent error
// instead of crashing the process, is never cached, and a later Get
// rebuilds.
func TestBuildPanicContained(t *testing.T) {
	c := NewCache(4)
	var calls atomic.Int32
	build := func(context.Context) (int, error) {
		if calls.Add(1) == 1 {
			panic("stage exploded")
		}
		return 5, nil
	}
	_, _, err := Get(context.Background(), c, "s", "k", build)
	if err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("err = %v", err)
	}
	if fault.ClassOf(err) != fault.Permanent {
		t.Fatalf("class = %v", fault.ClassOf(err))
	}
	v, _, err := Get(context.Background(), c, "s", "k", build)
	if err != nil || v != 5 {
		t.Fatalf("rebuild: %v, %v", v, err)
	}
}

// TestInjectionPointPipelineBuild: an armed pipeline.build rule with a
// stage match fires inside the flight and surfaces with provenance.
func TestInjectionPointPipelineBuild(t *testing.T) {
	spec, err := fault.ParseSpec("pipeline.build(thermal):perm:1")
	if err != nil {
		t.Fatal(err)
	}
	fault.Arm(spec.Injector(1))
	defer fault.Disarm()
	c := NewCache(4)
	_, _, err = Get(context.Background(), c, "thermal", "k", func(context.Context) (int, error) { return 1, nil })
	var ie *fault.InjectedError
	if !errors.As(err, &ie) {
		t.Fatalf("err = %v, want injected", err)
	}
	// The match keeps other stages clean.
	v, _, err := Get(context.Background(), c, "pca", "k", func(context.Context) (int, error) { return 2, nil })
	if err != nil || v != 2 {
		t.Fatalf("pca: %v, %v", v, err)
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition not reached in time")
}
