// Package integrate supplies the numerical integration and
// interpolation kernels for the reliability engines: the l0×l0
// midpoint rule of the paper's Fig. 9 algorithm, Gauss–Legendre
// quadrature for higher-accuracy cross checks, bilinear lookup tables
// for the hybrid engine (Section IV-E), and monotone curve
// interpolation for quantile extraction.
package integrate

import (
	"errors"
	"fmt"
	"math"

	"obdrel/internal/par"
)

// Midpoint1D integrates f over [a, b] with n midpoint panels.
func Midpoint1D(f func(float64) float64, a, b float64, n int) float64 {
	if n <= 0 || !(b > a) {
		return 0
	}
	h := (b - a) / float64(n)
	s := 0.0
	for i := 0; i < n; i++ {
		s += f(a + (float64(i)+0.5)*h)
	}
	return s * h
}

// Midpoint2D integrates f over [ax, bx] × [ay, by] with nx×ny midpoint
// sub-domains. With nx = ny = l0 this is exactly the integral-sum
// evaluation in the paper's overall algorithm (Fig. 9, steps 2–8).
func Midpoint2D(f func(x, y float64) float64, ax, bx float64, nx int, ay, by float64, ny int) float64 {
	if nx <= 0 || ny <= 0 || !(bx > ax) || !(by > ay) {
		return 0
	}
	hx := (bx - ax) / float64(nx)
	hy := (by - ay) / float64(ny)
	s := 0.0
	for i := 0; i < nx; i++ {
		x := ax + (float64(i)+0.5)*hx
		for j := 0; j < ny; j++ {
			y := ay + (float64(j)+0.5)*hy
			s += f(x, y)
		}
	}
	return s * hx * hy
}

// GaussLegendre returns the nodes and weights of the n-point
// Gauss–Legendre rule on [-1, 1], computed by Newton iteration on the
// Legendre polynomial (the standard gauleg construction).
func GaussLegendre(n int) (nodes, weights []float64, err error) {
	if n <= 0 {
		return nil, nil, errors.New("integrate: GaussLegendre requires n > 0")
	}
	nodes = make([]float64, n)
	weights = make([]float64, n)
	m := (n + 1) / 2
	for i := 0; i < m; i++ {
		// Initial guess: Chebyshev approximation to the i-th root.
		z := math.Cos(math.Pi * (float64(i) + 0.75) / (float64(n) + 0.5))
		var pp float64
		for iter := 0; ; iter++ {
			if iter > 100 {
				return nil, nil, errors.New("integrate: GaussLegendre Newton iteration failed")
			}
			p1, p2 := 1.0, 0.0
			for j := 0; j < n; j++ {
				p3 := p2
				p2 = p1
				p1 = ((2*float64(j)+1)*z*p2 - float64(j)*p3) / (float64(j) + 1)
			}
			pp = float64(n) * (z*p1 - p2) / (z*z - 1)
			z1 := z
			z = z1 - p1/pp
			if math.Abs(z-z1) < 1e-15 {
				break
			}
		}
		nodes[i] = -z
		nodes[n-1-i] = z
		w := 2 / ((1 - z*z) * pp * pp)
		weights[i] = w
		weights[n-1-i] = w
	}
	return nodes, weights, nil
}

// GaussLegendre1D integrates f over [a, b] with an n-point
// Gauss–Legendre rule.
func GaussLegendre1D(f func(float64) float64, a, b float64, n int) (float64, error) {
	x, w, err := GaussLegendre(n)
	if err != nil {
		return 0, err
	}
	mid := (a + b) / 2
	half := (b - a) / 2
	s := 0.0
	for i := range x {
		s += w[i] * f(mid+half*x[i])
	}
	return s * half, nil
}

// GaussLegendre2D integrates f over [ax,bx]×[ay,by] with an n×n
// tensor-product Gauss–Legendre rule.
func GaussLegendre2D(f func(x, y float64) float64, ax, bx, ay, by float64, n int) (float64, error) {
	x, w, err := GaussLegendre(n)
	if err != nil {
		return 0, err
	}
	midx, halfx := (ax+bx)/2, (bx-ax)/2
	midy, halfy := (ay+by)/2, (by-ay)/2
	s := 0.0
	for i := range x {
		xi := midx + halfx*x[i]
		row := 0.0
		for j := range x {
			row += w[j] * f(xi, midy+halfy*x[j])
		}
		s += w[i] * row
	}
	return s * halfx * halfy, nil
}

// Table2D is a rectilinear lookup table with bilinear interpolation,
// used by the hybrid engine: per-block integral values are tabulated
// over the (ln(t/α), b) plane and queried by interpolation.
type Table2D struct {
	xs, ys []float64 // strictly increasing axes
	vals   []float64 // len(xs)*len(ys), row-major in x
}

// NewTable2D builds a table from strictly increasing axes and a
// fill function evaluated at every grid point.
func NewTable2D(xs, ys []float64, fill func(x, y float64) float64) (*Table2D, error) {
	return NewTable2DWorkers(xs, ys, fill, 1)
}

// NewTable2DWorkers is NewTable2D with the fill fanned out over
// workers (0 = GOMAXPROCS, 1 = serial), one x-row at a time. Every
// entry is computed independently from its grid point, so the table is
// bit-identical for every worker count. fill must be safe for
// concurrent calls when workers != 1.
func NewTable2DWorkers(xs, ys []float64, fill func(x, y float64) float64, workers int) (*Table2D, error) {
	if len(xs) < 2 || len(ys) < 2 {
		return nil, errors.New("integrate: Table2D needs at least 2 points per axis")
	}
	for i := 1; i < len(xs); i++ {
		if xs[i] <= xs[i-1] {
			return nil, fmt.Errorf("integrate: x axis not strictly increasing at %d", i)
		}
	}
	for i := 1; i < len(ys); i++ {
		if ys[i] <= ys[i-1] {
			return nil, fmt.Errorf("integrate: y axis not strictly increasing at %d", i)
		}
	}
	t := &Table2D{
		xs:   append([]float64(nil), xs...),
		ys:   append([]float64(nil), ys...),
		vals: make([]float64, len(xs)*len(ys)),
	}
	par.For(workers, len(t.xs), func(i int) {
		x := t.xs[i]
		row := t.vals[i*len(t.ys) : (i+1)*len(t.ys)]
		for j, y := range t.ys {
			row[j] = fill(x, y)
		}
	})
	return t, nil
}

// NewTable2DFromData wraps precomputed axes and values WITHOUT
// copying — the caller's slices become the table's backing store. This
// is the mmap path of the hybrid table file: vals may alias a shared
// read-only mapping, so the table adds no per-process copy. Callers
// must not mutate the slices afterwards.
func NewTable2DFromData(xs, ys, vals []float64) (*Table2D, error) {
	if len(xs) < 2 || len(ys) < 2 {
		return nil, errors.New("integrate: Table2D needs at least 2 points per axis")
	}
	for i := 1; i < len(xs); i++ {
		if xs[i] <= xs[i-1] {
			return nil, fmt.Errorf("integrate: x axis not strictly increasing at %d", i)
		}
	}
	for i := 1; i < len(ys); i++ {
		if ys[i] <= ys[i-1] {
			return nil, fmt.Errorf("integrate: y axis not strictly increasing at %d", i)
		}
	}
	if len(vals) != len(xs)*len(ys) {
		return nil, fmt.Errorf("integrate: %d values for a %d×%d table", len(vals), len(xs), len(ys))
	}
	return &Table2D{xs: xs, ys: ys, vals: vals}, nil
}

// Data exposes the table's backing slices (x axis, y axis, row-major
// values) for serialization. The slices are the live internals —
// read-only to callers.
func (t *Table2D) Data() (xs, ys, vals []float64) { return t.xs, t.ys, t.vals }

// searchCell returns the index i with axis[i] <= q < axis[i+1],
// clamped so extrapolation uses the edge cell.
func searchCell(axis []float64, q float64) int {
	lo, hi := 0, len(axis)-2
	if q <= axis[0] {
		return 0
	}
	if q >= axis[len(axis)-1] {
		return hi
	}
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if axis[mid] <= q {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo
}

// At returns the bilinear interpolation of the table at (x, y).
// Queries outside the axes are clamped to the table boundary.
func (t *Table2D) At(x, y float64) float64 {
	nx, ny := len(t.xs), len(t.ys)
	i := searchCell(t.xs, x)
	j := searchCell(t.ys, y)
	x0, x1 := t.xs[i], t.xs[i+1]
	y0, y1 := t.ys[j], t.ys[j+1]
	tx := (x - x0) / (x1 - x0)
	ty := (y - y0) / (y1 - y0)
	if tx < 0 {
		tx = 0
	}
	if tx > 1 {
		tx = 1
	}
	if ty < 0 {
		ty = 0
	}
	if ty > 1 {
		ty = 1
	}
	v00 := t.vals[i*ny+j]
	v01 := t.vals[i*ny+j+1]
	v10 := t.vals[(i+1)*ny+j]
	v11 := t.vals[(i+1)*ny+j+1]
	_ = nx
	return v00*(1-tx)*(1-ty) + v10*tx*(1-ty) + v01*(1-tx)*ty + v11*tx*ty
}

// Size returns the number of stored entries (for reporting table
// memory in the hybrid engine).
func (t *Table2D) Size() (nx, ny int) { return len(t.xs), len(t.ys) }

// Linspace returns n evenly spaced values from a to b inclusive.
func Linspace(a, b float64, n int) []float64 {
	if n == 1 {
		return []float64{a}
	}
	out := make([]float64, n)
	step := (b - a) / float64(n-1)
	for i := range out {
		out[i] = a + float64(i)*step
	}
	out[n-1] = b
	return out
}

// InterpMonotone linearly interpolates y(xq) given samples (xs, ys)
// with xs strictly increasing. Queries outside the range are clamped
// to the end values. It is used to read quantiles off reliability
// curves, matching the paper's "compute t_req from the PDF curve by
// interpolation".
func InterpMonotone(xs, ys []float64, xq float64) (float64, error) {
	if len(xs) != len(ys) || len(xs) == 0 {
		return 0, errors.New("integrate: InterpMonotone requires equal-length non-empty slices")
	}
	if len(xs) == 1 {
		return ys[0], nil
	}
	for i := 1; i < len(xs); i++ {
		if xs[i] <= xs[i-1] {
			return 0, fmt.Errorf("integrate: x values not strictly increasing at %d", i)
		}
	}
	if xq <= xs[0] {
		return ys[0], nil
	}
	if xq >= xs[len(xs)-1] {
		return ys[len(ys)-1], nil
	}
	i := searchCell(xs, xq)
	f := (xq - xs[i]) / (xs[i+1] - xs[i])
	return ys[i]*(1-f) + ys[i+1]*f, nil
}
