package integrate

import (
	"math"
	"testing"
	"testing/quick"
)

func approx(a, b, tol float64) bool {
	d := math.Abs(a - b)
	if d <= tol {
		return true
	}
	return d <= tol*math.Max(math.Abs(a), math.Abs(b))
}

func TestMidpoint1D(t *testing.T) {
	// ∫₀¹ x² dx = 1/3
	got := Midpoint1D(func(x float64) float64 { return x * x }, 0, 1, 1000)
	if !approx(got, 1.0/3, 1e-6) {
		t.Errorf("x² integral = %v", got)
	}
	// Midpoint is exact for linear functions with any panel count.
	got = Midpoint1D(func(x float64) float64 { return 3*x + 2 }, -1, 4, 3)
	want := 3.0/2*(16-1) + 2*5
	if !approx(got, want, 1e-12) {
		t.Errorf("linear integral = %v, want %v", got, want)
	}
	// Degenerate inputs return 0.
	if Midpoint1D(math.Sin, 1, 1, 10) != 0 || Midpoint1D(math.Sin, 0, 1, 0) != 0 {
		t.Error("degenerate Midpoint1D should be 0")
	}
}

func TestMidpoint2D(t *testing.T) {
	// ∫∫ xy over [0,1]² = 1/4
	got := Midpoint2D(func(x, y float64) float64 { return x * y }, 0, 1, 50, 0, 1, 50)
	if !approx(got, 0.25, 1e-10) {
		t.Errorf("xy integral = %v", got)
	}
	// Bilinear integrand is integrated exactly by midpoint rule:
	// ∫∫(2+x+y+xy) over [0,2]×[0,3] = 12 + 6 + 9 + 9 = 36.
	got = Midpoint2D(func(x, y float64) float64 { return 2 + x + y + x*y }, 0, 2, 2, 0, 3, 2)
	want := 36.0
	if !approx(got, want, 1e-12) {
		t.Errorf("bilinear integral = %v, want %v", got, want)
	}
	if Midpoint2D(func(x, y float64) float64 { return 1 }, 0, 0, 2, 0, 1, 2) != 0 {
		t.Error("degenerate range should be 0")
	}
}

func TestGaussLegendreNodes(t *testing.T) {
	// The 2-point rule has nodes ±1/√3, weights 1.
	x, w, err := GaussLegendre(2)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(x[1], 1/math.Sqrt(3), 1e-14) || !approx(w[0], 1, 1e-14) {
		t.Errorf("2-point rule: x=%v w=%v", x, w)
	}
	// Weights always sum to 2 (length of [-1,1]).
	for _, n := range []int{1, 3, 7, 16, 40} {
		_, w, err := GaussLegendre(n)
		if err != nil {
			t.Fatal(err)
		}
		s := 0.0
		for _, wi := range w {
			s += wi
		}
		if !approx(s, 2, 1e-12) {
			t.Errorf("n=%d: weights sum to %v", n, s)
		}
	}
	if _, _, err := GaussLegendre(0); err == nil {
		t.Error("n=0 should error")
	}
}

func TestGaussLegendreExactness(t *testing.T) {
	// n-point GL is exact for polynomials up to degree 2n-1.
	// Check x⁹ on [0,1] with n=5: ∫ = 1/10.
	got, err := GaussLegendre1D(func(x float64) float64 { return math.Pow(x, 9) }, 0, 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(got, 0.1, 1e-13) {
		t.Errorf("x⁹ integral = %v", got)
	}
}

func TestGaussLegendre2DGaussian(t *testing.T) {
	// ∫∫ standard bivariate normal over [-8,8]² = 1.
	f := func(x, y float64) float64 {
		return math.Exp(-(x*x+y*y)/2) / (2 * math.Pi)
	}
	got, err := GaussLegendre2D(f, -8, 8, -8, 8, 40)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(got, 1, 1e-8) {
		t.Errorf("bivariate normal mass = %v", got)
	}
}

func TestMidpointConvergesToGL(t *testing.T) {
	f := func(x, y float64) float64 { return math.Exp(-x*x-y*y) * math.Cos(x*y) }
	ref, err := GaussLegendre2D(f, -2, 2, -2, 2, 40)
	if err != nil {
		t.Fatal(err)
	}
	got := Midpoint2D(f, -2, 2, 200, -2, 2, 200)
	if !approx(got, ref, 1e-4) {
		t.Errorf("midpoint %v vs GL %v", got, ref)
	}
}

func TestTable2DReproducesBilinear(t *testing.T) {
	// Bilinear interpolation is exact for bilinear functions.
	f := func(x, y float64) float64 { return 3 + 2*x - y + 0.5*x*y }
	tab, err := NewTable2D(Linspace(0, 10, 11), Linspace(-5, 5, 21), f)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range [][2]float64{{0.3, -4.9}, {5.5, 0.25}, {9.99, 4.99}, {0, -5}, {10, 5}} {
		if got := tab.At(q[0], q[1]); !approx(got, f(q[0], q[1]), 1e-12) {
			t.Errorf("At(%v,%v) = %v, want %v", q[0], q[1], got, f(q[0], q[1]))
		}
	}
	nx, ny := tab.Size()
	if nx != 11 || ny != 21 {
		t.Errorf("Size = %d,%d", nx, ny)
	}
}

func TestTable2DClampsOutside(t *testing.T) {
	tab, err := NewTable2D([]float64{0, 1}, []float64{0, 1}, func(x, y float64) float64 { return x + y })
	if err != nil {
		t.Fatal(err)
	}
	if got := tab.At(-10, 0.5); !approx(got, 0.5, 1e-12) {
		t.Errorf("clamped x query = %v", got)
	}
	if got := tab.At(0.5, 99); !approx(got, 1.5, 1e-12) {
		t.Errorf("clamped y query = %v", got)
	}
}

func TestTable2DValidates(t *testing.T) {
	one := func(x, y float64) float64 { return 1 }
	if _, err := NewTable2D([]float64{0}, []float64{0, 1}, one); err == nil {
		t.Error("single x point should error")
	}
	if _, err := NewTable2D([]float64{0, 0}, []float64{0, 1}, one); err == nil {
		t.Error("non-increasing x should error")
	}
	if _, err := NewTable2D([]float64{0, 1}, []float64{1, 0}, one); err == nil {
		t.Error("decreasing y should error")
	}
}

func TestLinspace(t *testing.T) {
	xs := Linspace(0, 1, 5)
	want := []float64{0, 0.25, 0.5, 0.75, 1}
	for i := range want {
		if !approx(xs[i], want[i], 1e-15) {
			t.Errorf("Linspace = %v", xs)
		}
	}
	if got := Linspace(3, 7, 1); len(got) != 1 || got[0] != 3 {
		t.Errorf("Linspace n=1 = %v", got)
	}
}

func TestInterpMonotone(t *testing.T) {
	xs := []float64{0, 1, 2, 4}
	ys := []float64{0, 10, 20, 40}
	cases := []struct{ q, want float64 }{
		{-1, 0}, {0, 0}, {0.5, 5}, {1.5, 15}, {3, 30}, {4, 40}, {99, 40},
	}
	for _, c := range cases {
		got, err := InterpMonotone(xs, ys, c.q)
		if err != nil {
			t.Fatal(err)
		}
		if !approx(got, c.want, 1e-12) {
			t.Errorf("InterpMonotone(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if _, err := InterpMonotone([]float64{1, 1}, []float64{0, 0}, 1); err == nil {
		t.Error("non-increasing xs should error")
	}
	if _, err := InterpMonotone(nil, nil, 1); err == nil {
		t.Error("empty input should error")
	}
	if v, err := InterpMonotone([]float64{2}, []float64{7}, 100); err != nil || v != 7 {
		t.Errorf("single point interp = %v, %v", v, err)
	}
}

// Property: Table2D.At reproduces the fill function exactly at grid
// nodes.
func TestTable2DNodesProperty(t *testing.T) {
	f := func(seed int64) bool {
		fn := func(x, y float64) float64 { return math.Sin(x) + math.Cos(y) + float64(seed%7) }
		xs := Linspace(0, 4, 9)
		ys := Linspace(-2, 2, 7)
		tab, err := NewTable2D(xs, ys, fn)
		if err != nil {
			return false
		}
		for _, x := range xs {
			for _, y := range ys {
				if !approx(tab.At(x, y), fn(x, y), 1e-12) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
