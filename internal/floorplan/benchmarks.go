package floorplan

import "fmt"

// The C1–C5 synthetic benchmarks mirror the evaluation setup of the
// paper (Table III): automatically generated circuits from 50K to 0.5M
// devices. Seeds are fixed so every run analyzes the same designs.

// C1 returns the 50K-device synthetic benchmark.
func C1() *Design { return mustSynthetic("C1", 8, 50_000, 101) }

// C2 returns the 80K-device synthetic benchmark.
func C2() *Design { return mustSynthetic("C2", 10, 80_000, 102) }

// C3 returns the 0.1M-device synthetic benchmark.
func C3() *Design { return mustSynthetic("C3", 12, 100_000, 103) }

// C4 returns the 0.2M-device synthetic benchmark.
func C4() *Design { return mustSynthetic("C4", 12, 200_000, 104) }

// C5 returns the 0.5M-device synthetic benchmark.
func C5() *Design { return mustSynthetic("C5", 14, 500_000, 105) }

func mustSynthetic(name string, blocks, devices int, seed int64) *Design {
	d, err := Synthetic(name, blocks, devices, seed)
	if err != nil {
		panic(fmt.Sprintf("floorplan: benchmark %s: %v", name, err))
	}
	return d
}

// C6 returns the EV6/alpha-like processor benchmark: 15 functional
// modules, ~0.84M devices, matching the paper's design C6. The module
// list follows the classic Alpha 21264 floorplan that HotSpot ships as
// its default example (icache/dcache, branch predictor, TLBs, integer
// and floating-point clusters, load/store queue).
func C6() *Design {
	d := &Design{
		Name: "C6",
		W:    1, H: 1,
		Blocks: []Block{
			// Bottom band: the two first-level caches.
			{Name: "icache", X: 0.00, Y: 0.00, W: 0.50, H: 0.30, Devices: 180_000, Class: ClassCache, Activity: 0.25},
			{Name: "dcache", X: 0.50, Y: 0.00, W: 0.50, H: 0.30, Devices: 200_000, Class: ClassCache, Activity: 0.28},
			// Front end and memory pipes.
			{Name: "bpred", X: 0.00, Y: 0.30, W: 0.25, H: 0.15, Devices: 50_000, Class: ClassControl, Activity: 0.45},
			{Name: "itb", X: 0.25, Y: 0.30, W: 0.20, H: 0.15, Devices: 15_000, Class: ClassControl, Activity: 0.30},
			{Name: "dtb", X: 0.45, Y: 0.30, W: 0.25, H: 0.15, Devices: 15_000, Class: ClassControl, Activity: 0.30},
			{Name: "ldstq", X: 0.70, Y: 0.30, W: 0.30, H: 0.15, Devices: 60_000, Class: ClassQueue, Activity: 0.60},
			// Integer cluster.
			{Name: "intreg", X: 0.00, Y: 0.45, W: 0.30, H: 0.25, Devices: 40_000, Class: ClassRegFile, Activity: 0.55},
			{Name: "intexec", X: 0.30, Y: 0.45, W: 0.35, H: 0.25, Devices: 70_000, Class: ClassALU, Activity: 0.90},
			{Name: "intq", X: 0.65, Y: 0.45, W: 0.20, H: 0.25, Devices: 30_000, Class: ClassQueue, Activity: 0.45},
			{Name: "intmap", X: 0.85, Y: 0.45, W: 0.15, H: 0.25, Devices: 20_000, Class: ClassControl, Activity: 0.40},
			// Floating-point cluster.
			{Name: "fpreg", X: 0.00, Y: 0.70, W: 0.25, H: 0.30, Devices: 30_000, Class: ClassRegFile, Activity: 0.35},
			{Name: "fpadd", X: 0.25, Y: 0.70, W: 0.25, H: 0.30, Devices: 45_000, Class: ClassFPU, Activity: 0.45},
			{Name: "fpmul", X: 0.50, Y: 0.70, W: 0.25, H: 0.30, Devices: 45_000, Class: ClassFPU, Activity: 0.42},
			{Name: "fpq", X: 0.75, Y: 0.70, W: 0.15, H: 0.30, Devices: 25_000, Class: ClassQueue, Activity: 0.40},
			{Name: "fpmap", X: 0.90, Y: 0.70, W: 0.10, H: 0.30, Devices: 15_000, Class: ClassControl, Activity: 0.35},
		},
	}
	if err := d.Validate(); err != nil {
		panic(fmt.Sprintf("floorplan: benchmark C6: %v", err))
	}
	return d
}

// ManyCore returns a tiled many-core design in the style of the
// Fig. 1(b) thermal profile: cores×cores tiles, each split into a hot
// compute core and its cooler private cache. devicesPerTile devices
// are split 40/60 between core and cache.
func ManyCore(cores, devicesPerTile int) (*Design, error) {
	if cores <= 0 || devicesPerTile < 2 {
		return nil, fmt.Errorf("floorplan: invalid many-core parameters cores=%d devicesPerTile=%d", cores, devicesPerTile)
	}
	d := &Design{Name: fmt.Sprintf("manycore%dx%d", cores, cores), W: 1, H: 1}
	tile := 1.0 / float64(cores)
	coreDev := devicesPerTile * 2 / 5
	if coreDev < 1 {
		coreDev = 1
	}
	cacheDev := devicesPerTile - coreDev
	if cacheDev < 1 {
		cacheDev = 1
	}
	for iy := 0; iy < cores; iy++ {
		for ix := 0; ix < cores; ix++ {
			x := float64(ix) * tile
			y := float64(iy) * tile
			// Core occupies the lower 45% of the tile, cache the rest.
			d.Blocks = append(d.Blocks,
				Block{
					Name: fmt.Sprintf("core_%d_%d", ix, iy),
					X:    x, Y: y, W: tile, H: tile * 0.45,
					Devices: coreDev, Class: ClassALU, Activity: 0.85,
				},
				Block{
					Name: fmt.Sprintf("l1_%d_%d", ix, iy),
					X:    x, Y: y + tile*0.45, W: tile, H: tile * 0.55,
					Devices: cacheDev, Class: ClassCache, Activity: 0.25,
				},
			)
		}
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return d, nil
}
