package floorplan

import (
	"math"
	"testing"
	"testing/quick"
)

func TestBenchmarkDeviceCounts(t *testing.T) {
	cases := []struct {
		d      *Design
		want   int
		blocks int
	}{
		{C1(), 50_000, 8},
		{C2(), 80_000, 10},
		{C3(), 100_000, 12},
		{C4(), 200_000, 12},
		{C5(), 500_000, 14},
		{C6(), 840_000, 15},
	}
	for _, c := range cases {
		if got := c.d.TotalDevices(); got != c.want {
			t.Errorf("%s: %d devices, want %d", c.d.Name, got, c.want)
		}
		if got := len(c.d.Blocks); got != c.blocks {
			t.Errorf("%s: %d blocks, want %d", c.d.Name, got, c.blocks)
		}
		if err := c.d.Validate(); err != nil {
			t.Errorf("%s: %v", c.d.Name, err)
		}
	}
}

func TestBenchmarksDeterministic(t *testing.T) {
	a, b := C3(), C3()
	if len(a.Blocks) != len(b.Blocks) {
		t.Fatal("block counts differ between invocations")
	}
	for i := range a.Blocks {
		if a.Blocks[i] != b.Blocks[i] {
			t.Fatalf("block %d differs between invocations: %+v vs %+v", i, a.Blocks[i], b.Blocks[i])
		}
	}
}

func TestSyntheticTilesTheDie(t *testing.T) {
	d, err := Synthetic("t", 9, 10_000, 7)
	if err != nil {
		t.Fatal(err)
	}
	area := 0.0
	for i := range d.Blocks {
		area += d.Blocks[i].Area()
	}
	if math.Abs(area-1) > 1e-9 {
		t.Errorf("blocks cover area %v, want 1", area)
	}
}

func TestSyntheticValidatesInputs(t *testing.T) {
	if _, err := Synthetic("t", 0, 100, 1); err == nil {
		t.Error("zero blocks should error")
	}
	if _, err := Synthetic("t", 10, 5, 1); err == nil {
		t.Error("fewer devices than blocks should error")
	}
}

func TestValidateCatchesOverlap(t *testing.T) {
	d := &Design{
		Name: "bad", W: 1, H: 1,
		Blocks: []Block{
			{Name: "a", X: 0, Y: 0, W: 0.6, H: 1, Devices: 10, Activity: 0.5},
			{Name: "b", X: 0.5, Y: 0, W: 0.5, H: 1, Devices: 10, Activity: 0.5},
		},
	}
	if err := d.Validate(); err == nil {
		t.Error("overlapping blocks should fail validation")
	}
}

func TestValidateCatchesOutOfBounds(t *testing.T) {
	d := &Design{
		Name: "bad", W: 1, H: 1,
		Blocks: []Block{
			{Name: "a", X: 0.8, Y: 0, W: 0.5, H: 0.5, Devices: 10, Activity: 0.5},
		},
	}
	if err := d.Validate(); err == nil {
		t.Error("out-of-bounds block should fail validation")
	}
}

func TestValidateCatchesBadFields(t *testing.T) {
	base := func() *Design {
		return &Design{
			Name: "d", W: 1, H: 1,
			Blocks: []Block{{Name: "a", X: 0, Y: 0, W: 1, H: 1, Devices: 10, Activity: 0.5}},
		}
	}
	d := base()
	d.Blocks[0].Devices = 0
	if err := d.Validate(); err == nil {
		t.Error("zero devices should fail")
	}
	d = base()
	d.Blocks[0].W = 0
	if err := d.Validate(); err == nil {
		t.Error("zero width should fail")
	}
	d = base()
	d.Blocks[0].Activity = 1.5
	if err := d.Validate(); err == nil {
		t.Error("activity > 1 should fail")
	}
	d = base()
	d.W = 0
	if err := d.Validate(); err == nil {
		t.Error("zero die width should fail")
	}
	d = base()
	d.Blocks = nil
	if err := d.Validate(); err == nil {
		t.Error("empty design should fail")
	}
}

func TestClassString(t *testing.T) {
	names := map[Class]string{
		ClassCache: "cache", ClassRegFile: "regfile", ClassControl: "control",
		ClassALU: "alu", ClassFPU: "fpu", ClassQueue: "queue",
	}
	for c, want := range names {
		if got := c.String(); got != want {
			t.Errorf("Class(%d).String() = %q, want %q", int(c), got, want)
		}
	}
	if got := Class(99).String(); got != "class(99)" {
		t.Errorf("unknown class = %q", got)
	}
}

func TestManyCore(t *testing.T) {
	d, err := ManyCore(4, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Blocks) != 32 {
		t.Errorf("blocks = %d, want 32", len(d.Blocks))
	}
	if err := d.Validate(); err != nil {
		t.Error(err)
	}
	if got := d.TotalDevices(); got != 16000 {
		t.Errorf("devices = %d, want 16000", got)
	}
	if _, err := ManyCore(0, 1000); err == nil {
		t.Error("zero cores should error")
	}
	if _, err := ManyCore(2, 1); err == nil {
		t.Error("one device per tile should error")
	}
}

// Property: Synthetic always produces a valid design with the exact
// device count for any sane parameters.
func TestSyntheticProperty(t *testing.T) {
	f := func(seed int64, rawBlocks, rawDev uint8) bool {
		nBlocks := 1 + int(rawBlocks)%20
		devices := nBlocks + int(rawDev)*100
		d, err := Synthetic("p", nBlocks, devices, seed)
		if err != nil {
			return false
		}
		return d.Validate() == nil && d.TotalDevices() == devices && len(d.Blocks) == nBlocks
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
