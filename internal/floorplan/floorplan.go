// Package floorplan describes chip designs at the granularity the
// reliability analysis needs: rectangular functional blocks with
// device counts and switching-activity factors. A "block" here is the
// paper's temperature-uniform region (Section I, footnote 1) — devices
// inside one block share a temperature and hence share the
// device-level reliability parameters α and b.
//
// The package also provides the six benchmark designs of the paper's
// evaluation: C1–C5 are seeded synthetic slicing-tree circuits from
// 50K to 0.5M devices and C6 is an EV6/alpha-like processor with 15
// functional modules and 0.84M devices, plus the many-core design used
// for the Fig. 1(b) thermal profile.
package floorplan

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// Class categorizes a functional block; it selects the power densities
// of the Wattch-like power model.
type Class int

// Block classes, ordered roughly by switching intensity.
const (
	ClassCache Class = iota
	ClassRegFile
	ClassControl
	ClassALU
	ClassFPU
	ClassQueue
	numClasses
)

// String implements fmt.Stringer.
func (c Class) String() string {
	switch c {
	case ClassCache:
		return "cache"
	case ClassRegFile:
		return "regfile"
	case ClassControl:
		return "control"
	case ClassALU:
		return "alu"
	case ClassFPU:
		return "fpu"
	case ClassQueue:
		return "queue"
	}
	return fmt.Sprintf("class(%d)", int(c))
}

// Block is a rectangular functional block. Coordinates are in the
// design's (arbitrary but consistent) length unit, with the origin at
// the chip's lower-left corner.
type Block struct {
	Name       string
	X, Y, W, H float64
	// Devices is the number of gate oxides in the block. Device area
	// is normalized to the minimum device area, so the block's total
	// normalized oxide area A_j equals Devices.
	Devices int
	Class   Class
	// Activity is the average switching activity in [0, 1], input to
	// the power model.
	Activity float64
}

// Area returns the geometric block area.
func (b *Block) Area() float64 { return b.W * b.H }

// NormalizedOxideArea returns A_j, the summed device area normalized
// to the minimum device area (Table I of the paper).
func (b *Block) NormalizedOxideArea() float64 { return float64(b.Devices) }

// Design is a full chip: a set of non-overlapping blocks on a W×H die.
type Design struct {
	Name   string
	W, H   float64
	Blocks []Block
}

// TotalDevices returns the chip's device count m.
func (d *Design) TotalDevices() int {
	n := 0
	for i := range d.Blocks {
		n += d.Blocks[i].Devices
	}
	return n
}

// Validate checks geometric and structural consistency: positive die
// and block dimensions, blocks within the die, no block overlaps, and
// at least one device per block.
func (d *Design) Validate() error {
	if !(d.W > 0) || !(d.H > 0) {
		return fmt.Errorf("floorplan: design %q has non-positive dimensions %v×%v", d.Name, d.W, d.H)
	}
	if len(d.Blocks) == 0 {
		return fmt.Errorf("floorplan: design %q has no blocks", d.Name)
	}
	const tol = 1e-9
	for i := range d.Blocks {
		b := &d.Blocks[i]
		if !(b.W > 0) || !(b.H > 0) {
			return fmt.Errorf("floorplan: block %q has non-positive dimensions", b.Name)
		}
		if b.X < -tol || b.Y < -tol || b.X+b.W > d.W+tol || b.Y+b.H > d.H+tol {
			return fmt.Errorf("floorplan: block %q extends outside the die", b.Name)
		}
		if b.Devices <= 0 {
			return fmt.Errorf("floorplan: block %q has %d devices", b.Name, b.Devices)
		}
		if b.Activity < 0 || b.Activity > 1 {
			return fmt.Errorf("floorplan: block %q activity %v outside [0,1]", b.Name, b.Activity)
		}
		for j := i + 1; j < len(d.Blocks); j++ {
			if overlaps(b, &d.Blocks[j], tol) {
				return fmt.Errorf("floorplan: blocks %q and %q overlap", b.Name, d.Blocks[j].Name)
			}
		}
	}
	return nil
}

func overlaps(a, b *Block, tol float64) bool {
	return a.X+a.W > b.X+tol && b.X+b.W > a.X+tol &&
		a.Y+a.H > b.Y+tol && b.Y+b.H > a.Y+tol
}

// classDensity is the relative device density per unit area for each
// class — caches pack devices far more densely than datapath logic.
var classDensity = [numClasses]float64{
	ClassCache:   3.0,
	ClassRegFile: 1.8,
	ClassControl: 0.9,
	ClassALU:     1.0,
	ClassFPU:     1.1,
	ClassQueue:   1.2,
}

// classActivity is the default switching activity per class.
var classActivity = [numClasses]float64{
	ClassCache:   0.25,
	ClassRegFile: 0.50,
	ClassControl: 0.45,
	ClassALU:     0.90,
	ClassFPU:     0.70,
	ClassQueue:   0.40,
}

// Synthetic generates a deterministic pseudo-random design with
// nBlocks blocks tiling a 1×1 die and totalDevices devices distributed
// by block area and class density. The same (name, seed) always
// produces the same design, making the C1–C5 benchmarks reproducible.
func Synthetic(name string, nBlocks, totalDevices int, seed int64) (*Design, error) {
	if nBlocks <= 0 {
		return nil, errors.New("floorplan: Synthetic requires nBlocks > 0")
	}
	if totalDevices < nBlocks {
		return nil, errors.New("floorplan: Synthetic requires at least one device per block")
	}
	rng := rand.New(rand.NewSource(seed))
	type rect struct{ x, y, w, h float64 }
	rects := []rect{{0, 0, 1, 1}}
	// Recursive slicing: repeatedly split the largest rectangle with a
	// ratio in [0.35, 0.65], alternating cut direction by aspect.
	for len(rects) < nBlocks {
		// Find the largest rect.
		li := 0
		for i := range rects {
			if rects[i].w*rects[i].h > rects[li].w*rects[li].h {
				li = i
			}
		}
		r := rects[li]
		ratio := 0.35 + 0.3*rng.Float64()
		var a, b rect
		if r.w >= r.h {
			a = rect{r.x, r.y, r.w * ratio, r.h}
			b = rect{r.x + r.w*ratio, r.y, r.w * (1 - ratio), r.h}
		} else {
			a = rect{r.x, r.y, r.w, r.h * ratio}
			b = rect{r.x, r.y + r.h*ratio, r.w, r.h * (1 - ratio)}
		}
		rects[li] = a
		rects = append(rects, b)
	}
	d := &Design{Name: name, W: 1, H: 1, Blocks: make([]Block, nBlocks)}
	weights := make([]float64, nBlocks)
	wsum := 0.0
	for i, r := range rects {
		class := Class(rng.Intn(int(numClasses)))
		d.Blocks[i] = Block{
			Name: fmt.Sprintf("%s_b%d_%s", name, i, class),
			X:    r.x, Y: r.y, W: r.w, H: r.h,
			Class:    class,
			Activity: classActivity[class] * (0.8 + 0.4*rng.Float64()),
		}
		if d.Blocks[i].Activity > 1 {
			d.Blocks[i].Activity = 1
		}
		weights[i] = r.w * r.h * classDensity[class]
		wsum += weights[i]
	}
	distributeDevices(d.Blocks, weights, wsum, totalDevices)
	if err := d.Validate(); err != nil {
		return nil, fmt.Errorf("floorplan: generated design invalid: %w", err)
	}
	return d, nil
}

// distributeDevices assigns totalDevices across blocks proportionally
// to weights using largest-remainder rounding, guaranteeing at least
// one device per block and an exact total.
func distributeDevices(blocks []Block, weights []float64, wsum float64, totalDevices int) {
	n := len(blocks)
	type frac struct {
		i int
		f float64
	}
	fracs := make([]frac, n)
	assigned := 0
	for i := range blocks {
		exact := float64(totalDevices) * weights[i] / wsum
		whole := int(math.Floor(exact))
		if whole < 1 {
			whole = 1
		}
		blocks[i].Devices = whole
		assigned += whole
		fracs[i] = frac{i, exact - float64(whole)}
	}
	// Distribute (or reclaim) the remainder by largest fraction.
	for assigned < totalDevices {
		best := 0
		for i := 1; i < n; i++ {
			if fracs[i].f > fracs[best].f {
				best = i
			}
		}
		blocks[fracs[best].i].Devices++
		fracs[best].f = -1
		assigned++
	}
	for assigned > totalDevices {
		// Reclaim from the largest block that can spare a device.
		big := -1
		for i := range blocks {
			if blocks[i].Devices > 1 && (big < 0 || blocks[i].Devices > blocks[big].Devices) {
				big = i
			}
		}
		if big < 0 {
			break
		}
		blocks[big].Devices--
		assigned--
	}
}
