package core

import (
	"errors"
	"fmt"
	"math"

	"obdrel/internal/mathx"
)

// Tolerant wraps a sample-based engine with the successive-breakdown
// failure criterion discussed in Section III: measurements [4], [28]–
// [30] show a circuit may keep functioning through several soft (and
// even hard) breakdowns, so "first breakdown kills the chip" is
// itself conservative. Tolerant declares the chip failed when at
// least K devices have broken down.
//
// Given a sample chip's thickness vector, device breakdowns are
// independent with per-device probabilities p_i = 1 - exp(-s_i) where
// Σ_i s_i = S(t) is the exact chip exponent. At full-chip scale every
// p_i is tiny while S is moderate, so the breakdown count is Poisson
// with mean S to within O(max p_i), and
//
//	P(N ≥ K | chip) = P(K, S)      (regularized lower incomplete gamma)
//
// which reduces to the usual 1 - exp(-S) at K = 1. The ensemble
// failure probability is the sample average.
type Tolerant struct {
	// K is the number of breakdowns the chip cannot survive (K = 1 is
	// the paper's SBD-as-failure criterion).
	K   int
	src exponentSampler
}

// exponentSampler is satisfied by the engines that can expose the
// exact per-sample chip exponent S(t): the device-level Monte Carlo
// and the st_MC engine in product mode.
type exponentSampler interface {
	Name() string
	// exponents returns S(t) for every retained sample chip.
	exponents(t float64) []float64
}

// NewTolerant wraps eng (a *MonteCarlo or a *StMC in product mode)
// with a K-breakdown failure criterion.
func NewTolerant(eng Engine, k int) (*Tolerant, error) {
	if k <= 0 {
		return nil, fmt.Errorf("core: breakdown tolerance must be >= 1, got %d", k)
	}
	src, ok := eng.(exponentSampler)
	if !ok {
		return nil, errors.New("core: NewTolerant requires a sample-based engine (MonteCarlo or product-mode StMC)")
	}
	if smc, isSMC := eng.(*StMC); isSMC && !smc.Product {
		return nil, errors.New("core: NewTolerant requires StMC in product mode (it needs per-sample exponents)")
	}
	return &Tolerant{K: k, src: src}, nil
}

// Name implements Engine.
func (e *Tolerant) Name() string {
	return fmt.Sprintf("%s_k%d", e.src.Name(), e.K)
}

// FailureProb implements Engine: the sample average of P(N ≥ K | S).
func (e *Tolerant) FailureProb(t float64) (float64, error) {
	if t <= 0 {
		return 0, nil
	}
	ss := e.src.exponents(t)
	if len(ss) == 0 {
		return 0, errors.New("core: no samples available")
	}
	acc := 0.0
	for _, s := range ss {
		p, err := poissonTail(e.K, s)
		if err != nil {
			return 0, err
		}
		acc += p
	}
	return acc / float64(len(ss)), nil
}

// poissonTail returns P(N >= k) for N ~ Poisson(mean).
func poissonTail(k int, mean float64) (float64, error) {
	if mean <= 0 {
		return 0, nil
	}
	if k == 1 {
		return -math.Expm1(-mean), nil
	}
	// P(N >= k) = P(k, mean), the regularized lower incomplete gamma.
	return mathx.GammaP(float64(k), mean)
}

// exponents implements exponentSampler for MonteCarlo.
func (e *MonteCarlo) exponents(t float64) []float64 {
	n := e.chip.NumBlocks()
	ls := make([]float64, n)
	ext := 0.0
	for j := 0; j < n; j++ {
		ls[j] = math.Log(t / e.chip.Params[j].Alpha)
		ext += e.chip.extrinsicHazard(j, t)
	}
	out := make([]float64, len(e.hists))
	for i, h := range e.hists {
		out[i] = e.exponent(h, ls, ext)
	}
	return out
}

// exponents implements exponentSampler for StMC (meaningful in
// product mode, where the per-sample (u, v) pairs are retained).
func (e *StMC) exponents(t float64) []float64 {
	n := e.chip.NumBlocks()
	ls := make([]float64, n)
	for j := 0; j < n; j++ {
		ls[j] = math.Log(t / e.chip.Params[j].Alpha)
	}
	ext := 0.0
	for j := 0; j < n; j++ {
		ext += e.chip.extrinsicHazard(j, t)
	}
	out := make([]float64, e.Samples)
	for s := 0; s < e.Samples; s++ {
		expo := ext
		for j := 0; j < n; j++ {
			expo += e.chip.Char.Blocks[j].AJ * GValue(ls[j], e.chip.Params[j].B, e.us[j][s], e.vs[j][s])
		}
		out[s] = expo
	}
	return out
}
