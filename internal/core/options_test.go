package core

import (
	"math"
	"testing"

	"obdrel/internal/blod"
	"obdrel/internal/grid"
)

func TestHybridCustomRanges(t *testing.T) {
	fx := newFixture(t)
	hyb, err := NewHybrid(fx.chip, HybridOptions{
		NL: 60, NB: 40, LMin: -35, LMax: -1, L0: 24,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := hyb.TableEntries(); got != 60*40 {
		t.Errorf("TableEntries = %d", got)
	}
	fast, err := NewStFast(fx.chip, 0)
	if err != nil {
		t.Fatal(err)
	}
	tFast, err := LifetimePPM(fast, fx.chip, 10)
	if err != nil {
		t.Fatal(err)
	}
	tHyb, err := LifetimePPM(hyb, fx.chip, 10)
	if err != nil {
		t.Fatal(err)
	}
	// This table is deliberately coarse (ΔL ≈ 0.58 per cell, vs 0.4
	// at the default resolution) — the check is that custom ranges
	// plumb through correctly, with accuracy degrading gracefully.
	if e := math.Abs(tHyb-tFast) / tFast * 100; e > 8 {
		t.Errorf("custom-range hybrid %.2f%% off st_fast", e)
	}
}

func TestHybridBelowTableRangeIsZero(t *testing.T) {
	fx := newFixture(t)
	hyb, err := NewHybrid(fx.chip, HybridOptions{})
	if err != nil {
		t.Fatal(err)
	}
	aMin, _ := fx.chip.AlphaRange()
	// ln(t/α) far below LMin = -40.
	p, err := hyb.FailureProb(aMin * 1e-30)
	if err != nil {
		t.Fatal(err)
	}
	if p != 0 {
		t.Errorf("failure probability below table range = %v, want 0", p)
	}
}

func TestHybridInvalidOptions(t *testing.T) {
	fx := newFixture(t)
	if _, err := NewHybrid(fx.chip, HybridOptions{LMin: 5, LMax: -5}); err == nil {
		t.Error("inverted L range should error")
	}
	if _, err := NewHybrid(fx.chip, HybridOptions{BMin: -2, BMax: -1}); err == nil {
		t.Error("negative b range should error")
	}
}

func TestStMCBinsOption(t *testing.T) {
	fx := newFixture(t)
	coarse, err := NewStMC(fx.chip, fx.pca, StMCOptions{Samples: 8000, Bins: 12, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	fine, err := NewStMC(fx.chip, fx.pca, StMCOptions{Samples: 8000, Bins: 64, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	tc, err := LifetimePPM(coarse, fx.chip, 10)
	if err != nil {
		t.Fatal(err)
	}
	tf, err := LifetimePPM(fine, fx.chip, 10)
	if err != nil {
		t.Fatal(err)
	}
	if e := math.Abs(tc-tf) / tf * 100; e > 5 {
		t.Errorf("histogram-resolution sensitivity %.2f%%", e)
	}
}

func TestStMCDefaults(t *testing.T) {
	fx := newFixture(t)
	e, err := NewStMC(fx.chip, fx.pca, StMCOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if e.Samples != 5000 || e.Bins != 40 {
		t.Errorf("defaults: samples %d bins %d", e.Samples, e.Bins)
	}
	if e.Name() != "st_MC" {
		t.Errorf("Name = %q", e.Name())
	}
	prod, err := NewStMC(fx.chip, fx.pca, StMCOptions{Samples: 100, Product: true})
	if err != nil {
		t.Fatal(err)
	}
	if prod.Name() != "st_MC_product" {
		t.Errorf("product Name = %q", prod.Name())
	}
}

func TestMonteCarloDefaults(t *testing.T) {
	fx := newFixture(t)
	e, err := NewMonteCarlo(fx.chip, fx.pca, MCOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if e.Samples != 1000 || e.WBins != 512 {
		t.Errorf("defaults: samples %d bins %d", e.Samples, e.WBins)
	}
	if e.Name() != "MC" {
		t.Errorf("Name = %q", e.Name())
	}
}

func TestMonteCarloWBinsInsensitive(t *testing.T) {
	// The w-histogram binning must not bias the result: 128 vs 1024
	// bins agree to well under the sampling noise.
	fx := newFixture(t)
	coarse, err := NewMonteCarlo(fx.chip, fx.pca, MCOptions{Samples: 500, WBins: 128, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	fine, err := NewMonteCarlo(fx.chip, fx.pca, MCOptions{Samples: 500, WBins: 1024, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	_, aMax := fx.chip.AlphaRange()
	probe := aMax * 1e-7
	pc, err := coarse.FailureProb(probe)
	if err != nil {
		t.Fatal(err)
	}
	pf, err := fine.FailureProb(probe)
	if err != nil {
		t.Fatal(err)
	}
	if pf == 0 || math.Abs(pc-pf)/pf > 0.02 {
		t.Errorf("binning sensitivity: %v vs %v", pc, pf)
	}
}

func TestPCATruncationAccuracy(t *testing.T) {
	// DESIGN.md ablation: truncating principal components to 99% of
	// variance must not move the st_fast lifetime materially, because
	// the BLOD characterization works off the covariance (exact) and
	// only the sampled engines consume the loadings.
	sigmaTot := 2.2 * 0.04 / 3
	sg, ss, se, err := grid.VarianceBudget(sigmaTot, 0.5, 0.25, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	m, err := grid.NewModel(2.2, 1, 1, 6, 6, sg, ss, se, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	full, err := m.ComputePCA(1)
	if err != nil {
		t.Fatal(err)
	}
	trunc, err := m.ComputePCA(0.99)
	if err != nil {
		t.Fatal(err)
	}
	if trunc.K >= full.K {
		t.Fatalf("truncation kept all %d components", trunc.K)
	}
	fx := newFixture(t)
	char, err := blod.Characterize(fx.chip.Design, m)
	if err != nil {
		t.Fatal(err)
	}
	chip, err := NewChip(fx.chip.Design, m, char, fx.chip.Params)
	if err != nil {
		t.Fatal(err)
	}
	fast, err := NewStFast(chip, 0)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := LifetimePPM(fast, chip, 10)
	if err != nil {
		t.Fatal(err)
	}
	// st_MC under the truncated loadings vs st_fast (exact moments):
	smc, err := NewStMC(chip, trunc, StMCOptions{Samples: 20000, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	life, err := LifetimePPM(smc, chip, 10)
	if err != nil {
		t.Fatal(err)
	}
	if e := math.Abs(life-ref) / ref * 100; e > 5 {
		t.Errorf("99%%-variance truncation shifts lifetime by %.2f%%", e)
	}
}
