package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"obdrel/internal/blod"
	"obdrel/internal/floorplan"
	"obdrel/internal/grid"
	"obdrel/internal/obd"
)

// randomChip builds a seeded random chip: 2–6 blocks tiling the die,
// random device counts, temperatures and grid resolution.
func randomChip(seed int64) (*Chip, *grid.PCA, error) {
	rng := rand.New(rand.NewSource(seed))
	nBlocks := 2 + rng.Intn(5)
	d, err := floorplan.Synthetic("q", nBlocks, 2000+rng.Intn(20000), seed)
	if err != nil {
		return nil, nil, err
	}
	sigmaTot := 2.2 * (0.02 + 0.04*rng.Float64()) / 3
	fg := 0.3 + 0.4*rng.Float64()
	fs := (1 - fg) * rng.Float64()
	fe := 1 - fg - fs
	sg, ss, se, err := grid.VarianceBudget(sigmaTot, fg, fs, fe)
	if err != nil {
		return nil, nil, err
	}
	n := 3 + rng.Intn(5)
	m, err := grid.NewModel(2.2, 1, 1, n, n, sg, ss, se, 0.2+0.6*rng.Float64())
	if err != nil {
		return nil, nil, err
	}
	pca, err := m.ComputePCA(1)
	if err != nil {
		return nil, nil, err
	}
	char, err := blod.Characterize(d, m)
	if err != nil {
		return nil, nil, err
	}
	tech := obd.DefaultTech()
	params := make([]obd.Params, nBlocks)
	for i := range params {
		params[i], err = tech.Characterize(50+60*rng.Float64(), 1.0+0.4*rng.Float64())
		if err != nil {
			return nil, nil, err
		}
	}
	chip, err := NewChip(d, m, char, params)
	if err != nil {
		return nil, nil, err
	}
	return chip, pca, nil
}

// TestEngineAxiomsProperty checks, over random chips, that the three
// analytic engines satisfy the reliability-function axioms and that
// their 10-ppm lifetimes mutually agree.
func TestEngineAxiomsProperty(t *testing.T) {
	f := func(seed int64) bool {
		chip, pca, err := randomChip(seed)
		if err != nil {
			t.Logf("seed %d: setup: %v", seed, err)
			return false
		}
		fast, err := NewStFast(chip, 0)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		prod, err := NewStMC(chip, pca, StMCOptions{Samples: 4000, Seed: seed, Product: true})
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		guard, err := NewGuardBand(chip, 3)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		_, aMax := chip.AlphaRange()
		for _, e := range []Engine{fast, prod, guard} {
			prev := 0.0
			for tt := aMax * 1e-12; tt <= aMax*10; tt *= 100 {
				p, err := e.FailureProb(tt)
				if err != nil || p < prev-1e-12 || p < 0 || p > 1 {
					t.Logf("seed %d: %s axiom violation at %v: p=%v err=%v", seed, e.Name(), tt, p, err)
					return false
				}
				prev = p
			}
		}
		tFast, err := LifetimePPM(fast, chip, 10)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		tProd, err := LifetimePPM(prod, chip, 10)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		tGuard, err := LifetimePPM(guard, chip, 10)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		// st_fast and the exact-product sampler agree to a few
		// percent; guard is always pessimistic.
		if e := math.Abs(tFast-tProd) / tProd; e > 0.08 {
			t.Logf("seed %d: st_fast %v vs product %v (%.1f%%)", seed, tFast, tProd, e*100)
			return false
		}
		if !(tGuard < tFast) {
			t.Logf("seed %d: guard %v not below st_fast %v", seed, tGuard, tFast)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Error(err)
	}
}

// TestHybridTracksStFastProperty: the lookup table reproduces the
// direct integration within interpolation error on random chips.
func TestHybridTracksStFastProperty(t *testing.T) {
	f := func(seed int64) bool {
		chip, _, err := randomChip(seed)
		if err != nil {
			return false
		}
		fast, err := NewStFast(chip, 0)
		if err != nil {
			return false
		}
		hyb, err := NewHybrid(chip, HybridOptions{})
		if err != nil {
			return false
		}
		tFast, err := LifetimePPM(fast, chip, 10)
		if err != nil {
			return false
		}
		tHyb, err := LifetimePPM(hyb, chip, 10)
		if err != nil {
			return false
		}
		if e := math.Abs(tFast-tHyb) / tFast; e > 0.06 {
			t.Logf("seed %d: hybrid %v vs st_fast %v (%.1f%%)", seed, tHyb, tFast, e*100)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Error(err)
	}
}
