package core

import (
	"math"
	"testing"

	"obdrel/internal/blod"
	"obdrel/internal/floorplan"
	"obdrel/internal/grid"
	"obdrel/internal/obd"
)

func approx(a, b, tol float64) bool {
	d := math.Abs(a - b)
	return d <= tol || d <= tol*math.Max(math.Abs(a), math.Abs(b))
}

// fixture bundles a small but fully featured chip: four blocks across
// a 5×5 correlation grid with distinct block temperatures.
type fixture struct {
	chip *Chip
	pca  *grid.PCA
}

func newFixture(t testing.TB) *fixture {
	t.Helper()
	sigmaTot := 2.2 * 0.04 / 3
	sg, ss, se, err := grid.VarianceBudget(sigmaTot, 0.5, 0.25, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	m, err := grid.NewModel(2.2, 1, 1, 5, 5, sg, ss, se, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	pca, err := m.ComputePCA(1)
	if err != nil {
		t.Fatal(err)
	}
	d := &floorplan.Design{
		Name: "coretest", W: 1, H: 1,
		Blocks: []floorplan.Block{
			{Name: "exec", X: 0, Y: 0, W: 0.5, H: 0.5, Devices: 6000, Class: floorplan.ClassALU, Activity: 0.9},
			{Name: "cache", X: 0.5, Y: 0, W: 0.5, H: 0.5, Devices: 8000, Class: floorplan.ClassCache, Activity: 0.25},
			{Name: "fpu", X: 0, Y: 0.5, W: 0.5, H: 0.5, Devices: 3000, Class: floorplan.ClassFPU, Activity: 0.6},
			{Name: "ctl", X: 0.5, Y: 0.5, W: 0.5, H: 0.5, Devices: 3000, Class: floorplan.ClassControl, Activity: 0.4},
		},
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	char, err := blod.Characterize(d, m)
	if err != nil {
		t.Fatal(err)
	}
	tech := obd.DefaultTech()
	temps := []float64{92, 68, 80, 72}
	params := make([]obd.Params, len(temps))
	for i, tc := range temps {
		params[i], err = tech.Characterize(tc, 1.2)
		if err != nil {
			t.Fatal(err)
		}
	}
	chip, err := NewChip(d, m, char, params)
	if err != nil {
		t.Fatal(err)
	}
	return &fixture{chip: chip, pca: pca}
}

func TestNewChipValidation(t *testing.T) {
	fx := newFixture(t)
	if _, err := NewChip(nil, fx.chip.Model, fx.chip.Char, fx.chip.Params); err == nil {
		t.Error("nil design should error")
	}
	if _, err := NewChip(fx.chip.Design, fx.chip.Model, fx.chip.Char, fx.chip.Params[:2]); err == nil {
		t.Error("short params should error")
	}
	bad := append([]obd.Params(nil), fx.chip.Params...)
	bad[0].Alpha = -1
	if _, err := NewChip(fx.chip.Design, fx.chip.Model, fx.chip.Char, bad); err == nil {
		t.Error("invalid params should error")
	}
}

func TestChipHelpers(t *testing.T) {
	fx := newFixture(t)
	c := fx.chip
	if got := c.NumBlocks(); got != 4 {
		t.Errorf("NumBlocks = %d", got)
	}
	if got := c.TotalArea(); got != 20000 {
		t.Errorf("TotalArea = %v", got)
	}
	w := c.WorstParams()
	for _, p := range c.Params {
		if p.Alpha < w.Alpha {
			t.Error("WorstParams not the minimum α")
		}
	}
	mn, mx := c.AlphaRange()
	if !(mn <= mx) || mn != w.Alpha {
		t.Errorf("AlphaRange = %v, %v", mn, mx)
	}
	uni, err := c.WithUniformParams(w)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range uni.Params {
		if p != w {
			t.Error("WithUniformParams not uniform")
		}
	}
}

// engineAxioms checks P(0)=0, monotonicity, and range for any engine.
func engineAxioms(t *testing.T, e Engine, tMax float64) {
	t.Helper()
	p0, err := e.FailureProb(0)
	if err != nil || p0 != 0 {
		t.Errorf("%s: P(0) = %v, %v", e.Name(), p0, err)
	}
	prev := 0.0
	for tt := tMax * 1e-12; tt <= tMax; tt *= 10 {
		p, err := e.FailureProb(tt)
		if err != nil {
			t.Fatalf("%s: %v", e.Name(), err)
		}
		if p < 0 || p > 1 {
			t.Fatalf("%s: P(%v) = %v outside [0,1]", e.Name(), tt, p)
		}
		if p < prev-1e-12 {
			t.Fatalf("%s: P not monotone at %v: %v < %v", e.Name(), tt, p, prev)
		}
		prev = p
	}
	// Reliability complements failure probability.
	r, err := Reliability(e, tMax*1e-6)
	if err != nil {
		t.Fatal(err)
	}
	p, _ := e.FailureProb(tMax * 1e-6)
	if !approx(r+p, 1, 1e-12) {
		t.Errorf("%s: R + P = %v", e.Name(), r+p)
	}
}

func TestStFastAxioms(t *testing.T) {
	fx := newFixture(t)
	e, err := NewStFast(fx.chip, 0)
	if err != nil {
		t.Fatal(err)
	}
	_, aMax := fx.chip.AlphaRange()
	engineAxioms(t, e, aMax)
}

func TestStFastAgainstMonteCarlo(t *testing.T) {
	// The headline claim (Table III): st_fast lifetime estimates land
	// within ~1-3% of the device-level MC reference.
	fx := newFixture(t)
	fast, err := NewStFast(fx.chip, 0)
	if err != nil {
		t.Fatal(err)
	}
	mc, err := NewMonteCarlo(fx.chip, fx.pca, MCOptions{Samples: 3000, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	for _, ppm := range []float64{1, 10} {
		tFast, err := LifetimePPM(fast, fx.chip, ppm)
		if err != nil {
			t.Fatal(err)
		}
		tMC, err := LifetimePPM(mc, fx.chip, ppm)
		if err != nil {
			t.Fatal(err)
		}
		errPct := math.Abs(tFast-tMC) / tMC * 100
		if errPct > 5 {
			t.Errorf("%v ppm: st_fast %v vs MC %v — %.2f%% error", ppm, tFast, tMC, errPct)
		}
	}
	// And the full curves stay close at moderate probabilities.
	t10, _ := LifetimePPM(mc, fx.chip, 10)
	for _, mult := range []float64{1, 5, 20} {
		pf, _ := fast.FailureProb(t10 * mult)
		pm, _ := mc.FailureProb(t10 * mult)
		if pm > 0 && math.Abs(pf-pm)/pm > 0.12 {
			t.Errorf("P_fail at %v: st_fast %v vs MC %v", t10*mult, pf, pm)
		}
	}
}

func TestStMCMatchesStFast(t *testing.T) {
	fx := newFixture(t)
	fast, err := NewStFast(fx.chip, 0)
	if err != nil {
		t.Fatal(err)
	}
	smc, err := NewStMC(fx.chip, fx.pca, StMCOptions{Samples: 20000, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	_, aMax := fx.chip.AlphaRange()
	engineAxioms(t, smc, aMax)
	tFast, err := LifetimePPM(fast, fx.chip, 10)
	if err != nil {
		t.Fatal(err)
	}
	tSMC, err := LifetimePPM(smc, fx.chip, 10)
	if err != nil {
		t.Fatal(err)
	}
	if errPct := math.Abs(tFast-tSMC) / tFast * 100; errPct > 4 {
		t.Errorf("st_MC %v vs st_fast %v — %.2f%% apart", tSMC, tFast, errPct)
	}
}

func TestStMCProductMatchesSum(t *testing.T) {
	// The first-order Taylor expansion (Eq. 16) and the cross-block
	// independence assumption must be benign at ppm-scale failure
	// probabilities: the exact product-mode estimate agrees with the
	// sum mode.
	fx := newFixture(t)
	sum, err := NewStMC(fx.chip, fx.pca, StMCOptions{Samples: 20000, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	prod, err := NewStMC(fx.chip, fx.pca, StMCOptions{Samples: 20000, Seed: 7, Product: true})
	if err != nil {
		t.Fatal(err)
	}
	tSum, err := LifetimePPM(sum, fx.chip, 10)
	if err != nil {
		t.Fatal(err)
	}
	tProd, err := LifetimePPM(prod, fx.chip, 10)
	if err != nil {
		t.Fatal(err)
	}
	if errPct := math.Abs(tSum-tProd) / tProd * 100; errPct > 3 {
		t.Errorf("Taylor sum %v vs exact product %v — %.2f%% apart", tSum, tProd, errPct)
	}
}

func TestHybridMatchesStFast(t *testing.T) {
	fx := newFixture(t)
	fast, err := NewStFast(fx.chip, 0)
	if err != nil {
		t.Fatal(err)
	}
	hyb, err := NewHybrid(fx.chip, HybridOptions{})
	if err != nil {
		t.Fatal(err)
	}
	_, aMax := fx.chip.AlphaRange()
	engineAxioms(t, hyb, aMax)
	if got := hyb.TableEntries(); got != 100*100 {
		t.Errorf("TableEntries = %d", got)
	}
	for _, ppm := range []float64{1, 10} {
		tFast, err := LifetimePPM(fast, fx.chip, ppm)
		if err != nil {
			t.Fatal(err)
		}
		tHyb, err := LifetimePPM(hyb, fx.chip, ppm)
		if err != nil {
			t.Fatal(err)
		}
		if errPct := math.Abs(tFast-tHyb) / tFast * 100; errPct > 3 {
			t.Errorf("%v ppm: hybrid %v vs st_fast %v — %.2f%%", ppm, tHyb, tFast, errPct)
		}
	}
}

func TestGuardBandPessimistic(t *testing.T) {
	// Table III: the guard-band method underestimates lifetime by
	// ~40-60%.
	fx := newFixture(t)
	fast, err := NewStFast(fx.chip, 0)
	if err != nil {
		t.Fatal(err)
	}
	guard, err := NewGuardBand(fx.chip, 3)
	if err != nil {
		t.Fatal(err)
	}
	_, aMax := fx.chip.AlphaRange()
	engineAxioms(t, guard, aMax)
	for _, ppm := range []float64{1, 10} {
		tFast, err := LifetimePPM(fast, fx.chip, ppm)
		if err != nil {
			t.Fatal(err)
		}
		tGuard, err := LifetimePPM(guard, fx.chip, ppm)
		if err != nil {
			t.Fatal(err)
		}
		under := (tFast - tGuard) / tFast * 100
		if under < 25 || under > 90 {
			t.Errorf("%v ppm: guard underestimation %.1f%%, outside [25, 90]", ppm, under)
		}
	}
}

func TestGuardClosedFormMatchesBisection(t *testing.T) {
	fx := newFixture(t)
	guard, err := NewGuardBand(fx.chip, 3)
	if err != nil {
		t.Fatal(err)
	}
	target := PPMTarget(10)
	tBisect, err := LifetimePPM(guard, fx.chip, 10)
	if err != nil {
		t.Fatal(err)
	}
	tClosed, err := guard.LifetimeClosedForm(1 - target)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(tBisect, tClosed, 1e-6) {
		t.Errorf("bisection %v vs closed form %v", tBisect, tClosed)
	}
	if _, err := guard.LifetimeClosedForm(1.5); err == nil {
		t.Error("invalid requirement should error")
	}
}

func TestGuardBandValidation(t *testing.T) {
	fx := newFixture(t)
	if _, err := NewGuardBand(nil, 3); err == nil {
		t.Error("nil chip should error")
	}
	if _, err := NewGuardBand(fx.chip, -1); err == nil {
		t.Error("negative sigma should error")
	}
}

func TestTempUnawarePessimisticButLessThanGuard(t *testing.T) {
	// Fig. 10 ordering: MC ≈ temp-aware > temp-unaware > guard.
	fx := newFixture(t)
	fast, err := NewStFast(fx.chip, 0)
	if err != nil {
		t.Fatal(err)
	}
	uniChip, err := fx.chip.WithUniformParams(fx.chip.WorstParams())
	if err != nil {
		t.Fatal(err)
	}
	unaware, err := NewStFast(uniChip, 0)
	if err != nil {
		t.Fatal(err)
	}
	guard, err := NewGuardBand(fx.chip, 3)
	if err != nil {
		t.Fatal(err)
	}
	tAware, err := LifetimePPM(fast, fx.chip, 10)
	if err != nil {
		t.Fatal(err)
	}
	tUnaware, err := LifetimePPM(unaware, fx.chip, 10)
	if err != nil {
		t.Fatal(err)
	}
	tGuard, err := LifetimePPM(guard, fx.chip, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !(tGuard < tUnaware && tUnaware < tAware) {
		t.Errorf("ordering violated: guard %v, unaware %v, aware %v", tGuard, tUnaware, tAware)
	}
}

func TestMonteCarloFailureTimes(t *testing.T) {
	fx := newFixture(t)
	mc, err := NewMonteCarlo(fx.chip, fx.pca, MCOptions{Samples: 400, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	times, err := mc.SampleFailureTimes(4000, 11)
	if err != nil {
		t.Fatal(err)
	}
	if len(times) != 4000 {
		t.Fatalf("got %d times", len(times))
	}
	for _, ft := range times {
		if !(ft > 0) || math.IsInf(ft, 0) {
			t.Fatalf("bad failure time %v", ft)
		}
	}
	// Empirical CDF of the sampled failure times must track the
	// engine's analytic FailureProb at a few probe points.
	for _, q := range []float64{0.25, 0.5, 0.75} {
		probe := quantileOf(times, q)
		p, err := mc.FailureProb(probe)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(p-q) > 0.04 {
			t.Errorf("at the empirical %v-quantile, engine says %v", q, p)
		}
	}
	if _, err := mc.SampleFailureTimes(0, 1); err == nil {
		t.Error("zero count should error")
	}
}

func quantileOf(xs []float64, q float64) float64 {
	s := append([]float64(nil), xs...)
	for i := 1; i < len(s); i++ { // insertion sort is fine at test sizes
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
	return s[int(q*float64(len(s)-1))]
}

func TestMonteCarloDeterministicAcrossParallelism(t *testing.T) {
	fx := newFixture(t)
	a, err := NewMonteCarlo(fx.chip, fx.pca, MCOptions{Samples: 50, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewMonteCarlo(fx.chip, fx.pca, MCOptions{Samples: 50, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	_, aMax := fx.chip.AlphaRange()
	probe := aMax * 1e-7
	pa, _ := a.FailureProb(probe)
	pb, _ := b.FailureProb(probe)
	if pa != pb {
		t.Errorf("same seed, different results: %v vs %v", pa, pb)
	}
}

func TestL0Convergence(t *testing.T) {
	// The paper claims l0 = 10 is already adequate; l0 = 10 and the
	// default must agree to ~2% on lifetime.
	fx := newFixture(t)
	coarse, err := NewStFast(fx.chip, 10)
	if err != nil {
		t.Fatal(err)
	}
	fine, err := NewStFast(fx.chip, 64)
	if err != nil {
		t.Fatal(err)
	}
	tc, err := LifetimePPM(coarse, fx.chip, 10)
	if err != nil {
		t.Fatal(err)
	}
	tf, err := LifetimePPM(fine, fx.chip, 10)
	if err != nil {
		t.Fatal(err)
	}
	if errPct := math.Abs(tc-tf) / tf * 100; errPct > 2 {
		t.Errorf("l0=10 vs l0=64 lifetimes differ by %.2f%%", errPct)
	}
}

func TestLifetimeAtValidation(t *testing.T) {
	fx := newFixture(t)
	e, err := NewStFast(fx.chip, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := LifetimeAt(e, 0, 1, 10); err == nil {
		t.Error("zero target should error")
	}
	if _, err := LifetimeAt(e, 1.5, 1, 10); err == nil {
		t.Error("target > 1 should error")
	}
	if _, err := LifetimeAt(e, 0.5, 10, 1); err == nil {
		t.Error("inverted bracket should error")
	}
	// A bracket that misses the crossing must still succeed via
	// automatic growth.
	aMin, _ := fx.chip.AlphaRange()
	got, err := LifetimeAt(e, PPMTarget(10), aMin*1e-30, aMin*1e-29)
	if err != nil {
		t.Fatalf("bracket growth failed: %v", err)
	}
	want, err := LifetimePPM(e, fx.chip, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(got, want, 1e-6) {
		t.Errorf("grown bracket %v vs direct %v", got, want)
	}
}

func TestEngineConstructorsRejectNil(t *testing.T) {
	fx := newFixture(t)
	if _, err := NewStFast(nil, 0); err == nil {
		t.Error("NewStFast(nil) should error")
	}
	if _, err := NewStMC(nil, fx.pca, StMCOptions{}); err == nil {
		t.Error("NewStMC(nil chip) should error")
	}
	if _, err := NewStMC(fx.chip, nil, StMCOptions{}); err == nil {
		t.Error("NewStMC(nil pca) should error")
	}
	if _, err := NewMonteCarlo(nil, fx.pca, MCOptions{}); err == nil {
		t.Error("NewMonteCarlo(nil chip) should error")
	}
	if _, err := NewHybrid(nil, HybridOptions{}); err == nil {
		t.Error("NewHybrid(nil) should error")
	}
}

func TestGValue(t *testing.T) {
	// At L=0 (t = α) the per-area exponent is exactly 1:
	// (t/α)^(b·x) = 1 regardless of thickness.
	if got := GValue(0, 0.6, 2.2, 1e-4); !approx(got, 1, 1e-12) {
		t.Errorf("GValue(0) = %v, want 1", got)
	}
	// Hand check at L=-1: exp(-b·u + b²·v/2).
	want := math.Exp(-0.6*2.2 + 0.36*1e-4/2)
	if got := GValue(-1, 0.6, 2.2, 1e-4); !approx(got, want, 1e-12) {
		t.Errorf("GValue(-1) = %v, want %v", got, want)
	}
	// Larger v always increases g (spread hurts reliability).
	if !(GValue(-20, 0.6, 2.2, 3e-4) > GValue(-20, 0.6, 2.2, 1e-4)) {
		t.Error("g not increasing in v")
	}
	// Thicker mean decreases g for t < α (L < 0).
	if !(GValue(-20, 0.6, 2.3, 1e-4) < GValue(-20, 0.6, 2.2, 1e-4)) {
		t.Error("g not decreasing in u for L<0")
	}
}
