package core

import (
	"fmt"
	"math"
)

// StFast is the paper's proposed statistical engine (Section IV-D):
// the chip-ensemble reliability is N double integrals over each
// block's marginal BLOD-moment PDFs (Eq. 28),
//
//	R_c(t) = 1 - Σ_j ∫∫ (1 - e^(-A_j·g(u_j,v_j))) f_u(u_j) f_v(v_j) du_j dv_j
//
// evaluated with the l0×l0 midpoint rule of the Fig. 9 algorithm. Its
// cost is O(N·l0²) per time point, independent of the device count.
type StFast struct {
	chip *Chip
	// L0 is the subdomain count per axis; the paper uses 10.
	L0      int
	weights []*blockWeights
}

// DefaultL0 is the integration resolution used when none is given.
// The paper argues l0 = 10 suffices for ~1% accuracy; 32 costs
// microseconds more and removes the discretization from the error
// budget, so it is the library default. The ablation benchmark sweeps
// this.
const DefaultL0 = 32

// NewStFast builds the engine, precomputing each block's integration
// grid.
func NewStFast(c *Chip, l0 int) (*StFast, error) {
	if c == nil {
		return nil, fmt.Errorf("core: nil chip")
	}
	if l0 <= 0 {
		l0 = DefaultL0
	}
	e := &StFast{chip: c, L0: l0}
	for i := range c.Char.Blocks {
		bw, err := newBlockWeights(&c.Char.Blocks[i], l0)
		if err != nil {
			return nil, fmt.Errorf("core: block %q: %w", c.Char.Blocks[i].Name, err)
		}
		e.weights = append(e.weights, bw)
	}
	return e, nil
}

// Name implements Engine.
func (e *StFast) Name() string { return "st_fast" }

// FailureProb implements Engine: P_fail(t) = Σ_j D_j(t), the
// first-order (Eq. 16) union bound over blocks, clamped to [0, 1].
func (e *StFast) FailureProb(t float64) (float64, error) {
	if t <= 0 {
		return 0, nil
	}
	sum := 0.0
	for j := range e.weights {
		sum += e.blockFailure(j, t)
	}
	if sum > 1 {
		sum = 1
	}
	return sum, nil
}

// blockFailure is block j's total (intrinsic + extrinsic) ensemble
// failure probability at time t.
func (e *StFast) blockFailure(j int, t float64) float64 {
	p := e.chip.Params[j]
	l := math.Log(t / p.Alpha)
	d := e.weights[j].failureProb(l, p.B, e.chip.Char.Blocks[j].AJ)
	return combineFailure(d, e.chip.extrinsicHazard(j, t))
}

// BlockFailureProb exposes one block's ensemble failure probability
// D_j(t) for diagnostics and for the hybrid engine's table filling.
func (e *StFast) BlockFailureProb(j int, t float64) (float64, error) {
	if j < 0 || j >= len(e.weights) {
		return 0, fmt.Errorf("core: block index %d out of range", j)
	}
	if t <= 0 {
		return 0, nil
	}
	return e.blockFailure(j, t), nil
}
