// Package core implements the five full-chip OBD reliability engines
// the paper evaluates (Section IV and V):
//
//   - StFast: the proposed statistical analysis using the marginal
//     PDF product and N double integrals (Eq. 28, Fig. 9 algorithm).
//   - StMC: the variant that constructs each block's joint
//     (u_j, v_j) PDF numerically from Monte-Carlo samples of the
//     principal components.
//   - Hybrid: the analytical/table-lookup engine of Section IV-E, a
//     per-block 2-D table over (ln(t/α), b) with bilinear
//     interpolation.
//   - GuardBand: the traditional worst-case method (minimum oxide
//     thickness, worst temperature; Eq. 33–34).
//   - MonteCarlo: the device-level reference simulation used for
//     accuracy and runtime comparisons.
//
// All engines work in failure-probability space, P_fail(t) = 1 - R(t),
// computed with expm1 so that parts-per-million quantiles keep full
// precision.
package core

import (
	"errors"
	"fmt"
	"math"

	"obdrel/internal/blod"
	"obdrel/internal/floorplan"
	"obdrel/internal/grid"
	"obdrel/internal/obd"
)

// Chip couples a design's BLOD characterization with per-block
// device-level reliability parameters — everything an engine needs.
type Chip struct {
	Design *floorplan.Design
	Model  *grid.Model
	Char   *blod.Characterization
	// Params holds the block-level (α_j, b_j), one entry per design
	// block, characterized at the block's worst-case temperature and
	// supply voltage.
	Params []obd.Params
	// Extrinsic optionally holds the per-block defect-population
	// parameters (nil: intrinsic-only analysis). When present, every
	// engine adds the additive extrinsic hazard
	// A_j·p_d·(t/α_e,j)^β_e to the block exponent.
	Extrinsic []obd.ExtrinsicParams
}

// SetExtrinsic attaches per-block extrinsic (defect-population)
// parameters; pass nil to return to intrinsic-only analysis. Engines
// hold a reference to the chip and evaluate the extrinsic hazard at
// query time, so the change is visible to already-constructed
// engines too.
func (c *Chip) SetExtrinsic(params []obd.ExtrinsicParams) error {
	if params == nil {
		c.Extrinsic = nil
		return nil
	}
	if len(params) != len(c.Params) {
		return fmt.Errorf("core: %d extrinsic parameter sets for %d blocks", len(params), len(c.Params))
	}
	for i, p := range params {
		if !(p.AlphaE > 0) || !(p.BetaE > 0) || p.DefectFraction < 0 {
			return fmt.Errorf("core: invalid extrinsic parameters for block %d: %+v", i, p)
		}
	}
	c.Extrinsic = params
	return nil
}

// extrinsicHazard returns block j's extrinsic cumulative hazard at
// time t (0 when no defect population is configured).
func (c *Chip) extrinsicHazard(j int, t float64) float64 {
	if c.Extrinsic == nil {
		return 0
	}
	return c.Extrinsic[j].Hazard(t, c.Char.Blocks[j].AJ)
}

// combineFailure merges a block's intrinsic ensemble failure
// probability d with its extrinsic hazard h:
// D_total = 1 - (1-d)·exp(-h) = d + (1-d)·(1-exp(-h)), kept in
// expm1 precision.
func combineFailure(d, h float64) float64 {
	if h == 0 {
		return d
	}
	return d + (1-d)*-math.Expm1(-h)
}

// NewChip validates and assembles a Chip.
func NewChip(d *floorplan.Design, m *grid.Model, char *blod.Characterization, params []obd.Params) (*Chip, error) {
	if d == nil || m == nil || char == nil {
		return nil, errors.New("core: nil chip component")
	}
	if len(char.Blocks) != len(d.Blocks) {
		return nil, fmt.Errorf("core: characterization has %d blocks, design has %d", len(char.Blocks), len(d.Blocks))
	}
	if len(params) != len(d.Blocks) {
		return nil, fmt.Errorf("core: %d parameter sets for %d blocks", len(params), len(d.Blocks))
	}
	for i, p := range params {
		if err := p.Validate(); err != nil {
			return nil, fmt.Errorf("core: block %q: %w", d.Blocks[i].Name, err)
		}
	}
	return &Chip{Design: d, Model: m, Char: char, Params: params}, nil
}

// NumBlocks returns N.
func (c *Chip) NumBlocks() int { return len(c.Char.Blocks) }

// TotalArea returns the chip's total normalized oxide area
// A = Σ_j A_j.
func (c *Chip) TotalArea() float64 {
	a := 0.0
	for i := range c.Char.Blocks {
		a += c.Char.Blocks[i].AJ
	}
	return a
}

// WorstParams returns the reliability parameters of the
// fastest-aging block (smallest α): the "worst operating temperature"
// corner the traditional analyses assume chip-wide.
func (c *Chip) WorstParams() obd.Params {
	w := c.Params[0]
	for _, p := range c.Params[1:] {
		if p.Alpha < w.Alpha {
			w = p
		}
	}
	return w
}

// WithUniformParams returns a copy of the chip where every block uses
// the given parameters — the temperature-unaware variant compared in
// Fig. 10.
func (c *Chip) WithUniformParams(p obd.Params) (*Chip, error) {
	params := make([]obd.Params, len(c.Params))
	for i := range params {
		params[i] = p
	}
	chip, err := NewChip(c.Design, c.Model, c.Char, params)
	if err != nil {
		return nil, err
	}
	if c.Extrinsic != nil {
		if err := chip.SetExtrinsic(append([]obd.ExtrinsicParams(nil), c.Extrinsic...)); err != nil {
			return nil, err
		}
	}
	return chip, nil
}

// AlphaRange returns the smallest and largest block α — the natural
// bracket for lifetime searches.
func (c *Chip) AlphaRange() (min, max float64) {
	min, max = c.Params[0].Alpha, c.Params[0].Alpha
	for _, p := range c.Params[1:] {
		if p.Alpha < min {
			min = p.Alpha
		}
		if p.Alpha > max {
			max = p.Alpha
		}
	}
	return min, max
}
