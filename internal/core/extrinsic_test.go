package core

import (
	"math"
	"testing"

	"obdrel/internal/obd"
)

// withExtrinsic attaches a pronounced defect population to a fixture
// chip (per-block extrinsic α mildly temperature-skewed like the
// intrinsic params).
func withExtrinsic(t *testing.T, fx *fixture) {
	t.Helper()
	tech := obd.DefaultTech()
	e := obd.DefaultExtrinsic()
	// The test chip has only 20K devices; raise the defect fraction
	// so the extrinsic population matters at test scale.
	e.DefectFraction = 5e-6
	params := make([]obd.ExtrinsicParams, fx.chip.NumBlocks())
	for i, tc := range []float64{92, 68, 80, 72} {
		p, err := tech.CharacterizeExtrinsic(e, tc, 1.2)
		if err != nil {
			t.Fatal(err)
		}
		params[i] = p
	}
	if err := fx.chip.SetExtrinsic(params); err != nil {
		t.Fatal(err)
	}
}

func TestSetExtrinsicValidation(t *testing.T) {
	fx := newFixture(t)
	if err := fx.chip.SetExtrinsic(make([]obd.ExtrinsicParams, 2)); err == nil {
		t.Error("wrong count should error")
	}
	bad := make([]obd.ExtrinsicParams, 4)
	if err := fx.chip.SetExtrinsic(bad); err == nil {
		t.Error("zero parameters should error")
	}
	withExtrinsic(t, fx)
	if fx.chip.Extrinsic == nil {
		t.Fatal("extrinsic not attached")
	}
	if err := fx.chip.SetExtrinsic(nil); err != nil || fx.chip.Extrinsic != nil {
		t.Error("nil should clear the population")
	}
}

func TestExtrinsicDominatesEarlyLife(t *testing.T) {
	// With a β<1 defect population, early (ppm) failures must be far
	// more likely than intrinsically, while late-life behaviour stays
	// intrinsic-dominated.
	// Engines observe the chip's extrinsic population at query time,
	// so the intrinsic-only reference uses its own fixture.
	fxInt := newFixture(t)
	fastInt, err := NewStFast(fxInt.chip, 0)
	if err != nil {
		t.Fatal(err)
	}
	tIntrinsic, err := LifetimePPM(fastInt, fxInt.chip, 10)
	if err != nil {
		t.Fatal(err)
	}
	fx := newFixture(t)
	withExtrinsic(t, fx)
	fastExt, err := NewStFast(fx.chip, 0)
	if err != nil {
		t.Fatal(err)
	}
	tBimodal, err := LifetimePPM(fastExt, fx.chip, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !(tBimodal < tIntrinsic/10) {
		t.Errorf("extrinsic population did not own the early failures: %v vs %v", tBimodal, tIntrinsic)
	}
	// At long times the intrinsic exponent (β≈1.3 > 1) dominates and
	// the extra hazard becomes relatively negligible: the bimodal
	// failure probability exceeds the intrinsic one by only a sliver.
	late := tIntrinsic * 1e4
	pInt, _ := fastInt.FailureProb(late)
	pExt, _ := fastExt.FailureProb(late)
	if !(pExt >= pInt) {
		t.Errorf("bimodal P %v below intrinsic %v", pExt, pInt)
	}
	if pInt > 0 && (pExt-pInt)/pInt > 0.2 {
		t.Errorf("extrinsic still dominates late life: %v vs %v", pExt, pInt)
	}
	_, aMax := fx.chip.AlphaRange()
	engineAxioms(t, fastExt, aMax)
}

func TestExtrinsicConsistentAcrossEngines(t *testing.T) {
	fx := newFixture(t)
	withExtrinsic(t, fx)
	fast, err := NewStFast(fx.chip, 0)
	if err != nil {
		t.Fatal(err)
	}
	mc, err := NewMonteCarlo(fx.chip, fx.pca, MCOptions{Samples: 3000, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	hyb, err := NewHybrid(fx.chip, HybridOptions{})
	if err != nil {
		t.Fatal(err)
	}
	smc, err := NewStMC(fx.chip, fx.pca, StMCOptions{Samples: 10000, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := LifetimePPM(fast, fx.chip, 10)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range []Engine{mc, hyb, smc} {
		life, err := LifetimePPM(e, fx.chip, 10)
		if err != nil {
			t.Fatalf("%s: %v", e.Name(), err)
		}
		if errPct := math.Abs(life-ref) / ref * 100; errPct > 6 {
			t.Errorf("%s bimodal lifetime %v vs st_fast %v — %.2f%%", e.Name(), life, ref, errPct)
		}
	}
	// Guard band with extrinsic must be even more pessimistic and
	// lose its closed form.
	guard, err := NewGuardBand(fx.chip, 3)
	if err != nil {
		t.Fatal(err)
	}
	tGuard, err := LifetimePPM(guard, fx.chip, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !(tGuard < ref) {
		t.Errorf("guard %v not pessimistic vs %v", tGuard, ref)
	}
	if _, err := guard.LifetimeClosedForm(0.99); err == nil {
		t.Error("closed form should be refused with extrinsic population")
	}
}

func TestBurnInScreensInfantMortality(t *testing.T) {
	fx := newFixture(t)
	withExtrinsic(t, fx)
	fast, err := NewStFast(fx.chip, 0)
	if err != nil {
		t.Fatal(err)
	}
	unscreened, err := LifetimePPM(fast, fx.chip, 10)
	if err != nil {
		t.Fatal(err)
	}
	// Shifts corresponding to a strong screen: intrinsic aging worth
	// 1000 field hours, extrinsic aging worth 1e6 field hours (the
	// extrinsic acceleration is what burn-in exploits).
	n := fx.chip.NumBlocks()
	intShift := make([]float64, n)
	extShift := make([]float64, n)
	for j := range intShift {
		intShift[j] = 1e3
		extShift[j] = 1e6
	}
	bi, err := NewBurnIn(fast, intShift, extShift)
	if err != nil {
		t.Fatal(err)
	}
	if !(bi.Fallout > 0 && bi.Fallout < 0.05) {
		t.Errorf("fallout = %v, expected small positive", bi.Fallout)
	}
	screened, err := LifetimePPM(bi, fx.chip, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !(screened > 3*unscreened) {
		t.Errorf("screening gained only %v → %v", unscreened, screened)
	}
	_, aMax := fx.chip.AlphaRange()
	engineAxioms(t, bi, aMax)
}

func TestBurnInHurtsIntrinsicOnlyChip(t *testing.T) {
	// The classic result: burning in a wear-out-dominated (β > 1)
	// mechanism just consumes life.
	fx := newFixture(t)
	fast, err := NewStFast(fx.chip, 0)
	if err != nil {
		t.Fatal(err)
	}
	base, err := LifetimePPM(fast, fx.chip, 10)
	if err != nil {
		t.Fatal(err)
	}
	n := fx.chip.NumBlocks()
	intShift := make([]float64, n)
	for j := range intShift {
		intShift[j] = base / 10 // consume 10% of the ppm life
	}
	bi, err := NewBurnIn(fast, intShift, nil)
	if err != nil {
		t.Fatal(err)
	}
	screened, err := LifetimePPM(bi, fx.chip, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !(screened < base) {
		t.Errorf("intrinsic-only burn-in should cost lifetime: %v vs %v", screened, base)
	}
}

func TestBurnInValidation(t *testing.T) {
	fx := newFixture(t)
	fast, err := NewStFast(fx.chip, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewBurnIn(nil, nil, nil); err == nil {
		t.Error("nil base should error")
	}
	if _, err := NewBurnIn(fast, make([]float64, 2), nil); err == nil {
		t.Error("wrong shift count should error")
	}
	bad := make([]float64, fx.chip.NumBlocks())
	bad[0] = -1
	if _, err := NewBurnIn(fast, bad, nil); err == nil {
		t.Error("negative shift should error")
	}
	zero := make([]float64, fx.chip.NumBlocks())
	bi, err := NewBurnIn(fast, zero, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Zero shifts reproduce the base engine exactly.
	_, aMax := fx.chip.AlphaRange()
	probe := aMax * 1e-8
	pb, _ := fast.FailureProb(probe)
	pz, _ := bi.FailureProb(probe)
	if !approx(pb, pz, 1e-12) {
		t.Errorf("zero-shift burn-in differs from base: %v vs %v", pz, pb)
	}
	if bi.Name() != "st_fast_burnin" {
		t.Errorf("Name = %q", bi.Name())
	}
}

func TestExtrinsicHazardFunction(t *testing.T) {
	p := obd.ExtrinsicParams{AlphaE: 1e10, BetaE: 0.4, DefectFraction: 1e-6}
	if p.Hazard(0, 1e5) != 0 {
		t.Error("zero-time hazard should be 0")
	}
	if p.Hazard(-1, 1e5) != 0 {
		t.Error("negative-time hazard should be 0")
	}
	// Hand check: H = A·p_d·(t/α)^β.
	want := 1e5 * 1e-6 * math.Pow(1e4/1e10, 0.4)
	if got := p.Hazard(1e4, 1e5); !approx(got, want, 1e-12) {
		t.Errorf("Hazard = %v, want %v", got, want)
	}
	// β < 1: hazard is concave — doubling time less than doubles H.
	if !(p.Hazard(2e4, 1e5) < 2*p.Hazard(1e4, 1e5)) {
		t.Error("extrinsic hazard not concave")
	}
	none := obd.ExtrinsicParams{AlphaE: 1e10, BetaE: 0.4, DefectFraction: 0}
	if none.Hazard(1e4, 1e5) != 0 {
		t.Error("zero defect fraction should produce zero hazard")
	}
}
