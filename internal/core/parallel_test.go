package core

import (
	"math"
	"testing"
)

// newMCFixture builds one MonteCarlo engine over the shared test chip.
func newMCFixture(t testing.TB, samples, workers int) (*fixture, *MonteCarlo) {
	t.Helper()
	fx := newFixture(t)
	e, err := NewMonteCarlo(fx.chip, fx.pca, MCOptions{Samples: samples, Seed: 5, Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	return fx, e
}

// TestExponentMatchesDirect compares the geometric-progression
// evaluation (with its periodic math.Exp resynchronization) against
// the direct per-bin exponential sum. Without the resync the running
// product compounds one rounding error per bin and drifts well beyond
// this tolerance over 512 bins.
func TestExponentMatchesDirect(t *testing.T) {
	_, e := newMCFixture(t, 40, 1)
	n := e.chip.NumBlocks()
	for _, tQuery := range []float64{1e-3, 1, 1e3} {
		ls := make([]float64, n)
		for j := 0; j < n; j++ {
			ls[j] = math.Log(tQuery / e.chip.Params[j].Alpha)
		}
		for _, h := range e.hists[:8] {
			direct := 0.0
			for j := 0; j < n; j++ {
				base := h[j*e.WBins : (j+1)*e.WBins]
				for k, cnt := range base {
					if cnt == 0 {
						continue
					}
					w := e.wLo[j] + (float64(k)+0.5)*e.dW[j]
					direct += float64(cnt) * math.Exp(w*ls[j])
				}
			}
			got := e.exponent(h, ls, 0)
			if d := math.Abs(got - direct); d > 1e-11*math.Abs(direct) {
				t.Fatalf("t=%v: exponent %v vs direct %v (rel %.3g)",
					tQuery, got, direct, d/math.Abs(direct))
			}
		}
	}
}

// TestMCFailureProbWorkerEquivalence pins the determinism contract of
// the parallel query reduction: every worker count ≥ 2 is bit-identical
// (fixed chunked pairwise summation), and the Workers==1 legacy linear
// loop agrees to within floating-point reassociation error (≤ 1e-12
// relative — the documented tolerance for this path).
func TestMCFailureProbWorkerEquivalence(t *testing.T) {
	fx, e := newMCFixture(t, 700, 1)
	tRef, err := LifetimePPM(e, fx.chip, 100)
	if err != nil {
		t.Fatal(err)
	}
	for _, tQuery := range []float64{tRef, tRef * 10, tRef * 1000} {
		e.Workers = 1
		serial, err := e.FailureProb(tQuery)
		if err != nil {
			t.Fatal(err)
		}
		e.Workers = 2
		ref, err := e.FailureProb(tQuery)
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range []int{3, 5, 16} {
			e.Workers = w
			got, err := e.FailureProb(tQuery)
			if err != nil {
				t.Fatal(err)
			}
			if got != ref {
				t.Fatalf("t=%v workers=%d: %v != workers=2 value %v", tQuery, w, got, ref)
			}
		}
		if d := math.Abs(serial - ref); d > 1e-12*math.Abs(serial) {
			t.Fatalf("t=%v: serial %v vs parallel %v beyond reassociation tolerance", tQuery, serial, ref)
		}
	}
}

// TestMCSampleFailureTimesWorkerEquivalence: the variates are drawn
// serially up front and each inversion is independent, so the sampled
// failure times are bit-identical across every worker count.
func TestMCSampleFailureTimesWorkerEquivalence(t *testing.T) {
	_, e := newMCFixture(t, 60, 1)
	e.Workers = 1
	ref, err := e.SampleFailureTimes(150, 99)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 4, 9} {
		e.Workers = w
		got, err := e.SampleFailureTimes(150, 99)
		if err != nil {
			t.Fatal(err)
		}
		for k := range got {
			if got[k] != ref[k] {
				t.Fatalf("workers=%d draw %d: %v != %v", w, k, got[k], ref[k])
			}
		}
	}
}

// TestMCSamplingWorkerIndependence: per-sample deterministic seeds
// make the sampling phase itself independent of the worker count.
func TestMCSamplingWorkerIndependence(t *testing.T) {
	fx := newFixture(t)
	build := func(workers int) *MonteCarlo {
		e, err := NewMonteCarlo(fx.chip, fx.pca, MCOptions{Samples: 50, Seed: 3, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	ref := build(1)
	for _, w := range []int{2, 6} {
		e := build(w)
		for s := range ref.hists {
			for i := range ref.hists[s] {
				if e.hists[s][i] != ref.hists[s][i] {
					t.Fatalf("workers=%d sample %d bin %d differs", w, s, i)
				}
			}
		}
	}
}
