package core

import (
	"math"

	"obdrel/internal/blod"
	"obdrel/internal/stats"
)

// GValue evaluates the paper's closed form (Eq. 17)
//
//	g(u, v) = exp(L·b·u + L²·b²·v/2),  L = ln(t/α)
//
// — the block-level expected per-area failure exponent for a BLOD with
// mean u and variance v.
func GValue(l, b, u, v float64) float64 {
	return math.Exp(l*b*u + l*l*b*b*v/2)
}

// blockWeights caches the midpoint-rule abscissae and PDF weights of
// one block's (u, v) integration domain. The weights depend only on
// the BLOD marginals, not on (t, α, b), so they are computed once per
// block and reused across every integrand evaluation — this is what
// makes lifetime bisection and hybrid-table construction cheap.
type blockWeights struct {
	us, vs []float64 // midpoints
	w      []float64 // f_u(u)·f_v(v)·du·dv, row-major [iu*len(vs)+iv]
	wsum   float64
}

// qEps is the quantile at which the integration domain is truncated.
// The truncated tail mass (~4·qEps per block) bounds the absolute
// error of the block failure probability, so it must sit far below
// the parts-per-million targets of the analysis.
const qEps = 1e-12

// newBlockWeights builds the l0×l0 midpoint grid of the paper's
// Fig. 9 algorithm (step 2–3) for one block. For a degenerate block
// (v_j deterministic) the v axis collapses to the single atom.
func newBlockWeights(bc *blod.BlockChar, l0 int) (*blockWeights, error) {
	if l0 <= 0 {
		l0 = 10
	}
	ud, err := bc.UDist()
	if err != nil {
		return nil, err
	}
	vd, err := bc.VDist()
	if err != nil {
		return nil, err
	}
	uLo, uHi := ud.Quantile(qEps), ud.Quantile(1-qEps)
	bw := &blockWeights{}
	du := (uHi - uLo) / float64(l0)
	for i := 0; i < l0; i++ {
		bw.us = append(bw.us, uLo+(float64(i)+0.5)*du)
	}
	if _, deg := vd.(stats.Degenerate); deg {
		bw.vs = []float64{vd.Mean()}
		for _, u := range bw.us {
			wt := ud.PDF(u) * du
			bw.w = append(bw.w, wt)
			bw.wsum += wt
		}
		return bw, nil
	}
	vLo, vHi := vd.Quantile(qEps), vd.Quantile(1-qEps)
	if !(vHi > vLo) {
		// Numerically flat v distribution: treat as degenerate.
		bw.vs = []float64{vd.Mean()}
		for _, u := range bw.us {
			wt := ud.PDF(u) * du
			bw.w = append(bw.w, wt)
			bw.wsum += wt
		}
		return bw, nil
	}
	dv := (vHi - vLo) / float64(l0)
	for j := 0; j < l0; j++ {
		bw.vs = append(bw.vs, vLo+(float64(j)+0.5)*dv)
	}
	for _, u := range bw.us {
		fu := ud.PDF(u) * du
		for _, v := range bw.vs {
			wt := fu * vd.PDF(v) * dv
			bw.w = append(bw.w, wt)
			bw.wsum += wt
		}
	}
	return bw, nil
}

// failureProb evaluates the block's ensemble failure probability
//
//	D_j(L, b) = ∫∫ (1 - exp(-A_j·g(u,v))) f_u(u) f_v(v) du dv
//
// on the cached midpoint grid. Computing D_j (rather than the
// reliability integral I_j = 1 - D_j) keeps ppm-scale results exact:
// the integrand uses expm1 and the truncated tail mass only ever
// drops ~qEps of probability.
func (bw *blockWeights) failureProb(l, b, area float64) float64 {
	d := 0.0
	k := 0
	for _, u := range bw.us {
		for _, v := range bw.vs {
			g := GValue(l, b, u, v)
			d += bw.w[k] * -math.Expm1(-area*g)
			k++
		}
	}
	// Normalize by the captured PDF mass so that midpoint-rule
	// discretization of the marginals does not bias the result.
	if bw.wsum > 0 {
		d /= bw.wsum
	}
	if d < 0 {
		return 0
	}
	if d > 1 {
		return 1
	}
	return d
}
