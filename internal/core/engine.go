package core

import (
	"errors"
	"fmt"
	"math"
)

// Engine is a full-chip OBD reliability analysis.
type Engine interface {
	// Name identifies the method (st_fast, st_MC, hybrid, guard, MC).
	Name() string
	// FailureProb returns P_fail(t) = 1 - R(t), the probability that a
	// chip from the ensemble has suffered at least one oxide breakdown
	// by time t (hours). Computed in failure space for ppm precision.
	FailureProb(t float64) (float64, error)
}

// Reliability returns R(t) = 1 - P_fail(t) for any engine.
func Reliability(e Engine, t float64) (float64, error) {
	p, err := e.FailureProb(t)
	if err != nil {
		return 0, err
	}
	return 1 - p, nil
}

// PPMTarget converts an n-faults-per-million-parts criterion into the
// failure-probability target n·10⁻⁶ (Section V).
func PPMTarget(n float64) float64 { return n * 1e-6 }

// lifetimeObjective evaluates P_fail(exp(logT)) − pTarget through the
// engine interface. A plain function rather than a closure: capturing
// e and pTarget in a func value forces a heap allocation per query,
// and this sits on the warm /v1/lifetime hot path, which is gated at
// zero allocations.
func lifetimeObjective(e Engine, logT, pTarget float64) float64 {
	p, err := e.FailureProb(math.Exp(logT))
	if err != nil {
		return math.NaN()
	}
	return p - pTarget
}

// LifetimeAt solves P_fail(t) = pTarget for t by bisection on log t,
// bracketing from the chip's α range: breakdown physics guarantees
// P_fail is monotone in t. tLo and tHi seed the bracket and are grown
// if needed.
//
// The bisection loop is inlined (same arithmetic as mathx.Bisect, so
// results are bit-identical to the pre-inline version) to keep the
// warm query path allocation-free: passing a closure to mathx.Bisect
// would heap-allocate the captured engine on every call.
func LifetimeAt(e Engine, pTarget, tLo, tHi float64) (float64, error) {
	if !(pTarget > 0) || pTarget >= 1 {
		return 0, fmt.Errorf("core: failure target must be in (0,1), got %v", pTarget)
	}
	if !(tLo > 0) || !(tHi > tLo) {
		return 0, fmt.Errorf("core: invalid lifetime bracket [%v, %v]", tLo, tHi)
	}
	lo, hi := math.Log(tLo), math.Log(tHi)
	flo, fhi := lifetimeObjective(e, lo, pTarget), lifetimeObjective(e, hi, pTarget)
	// Grow the bracket geometrically if the target is outside it.
	for grow := 0; flo > 0 && grow < 60; grow++ {
		hi, fhi = lo, flo
		lo -= math.Ln10
		flo = lifetimeObjective(e, lo, pTarget)
	}
	for grow := 0; fhi < 0 && grow < 60; grow++ {
		lo, flo = hi, fhi
		hi += math.Ln10
		fhi = lifetimeObjective(e, hi, pTarget)
	}
	if math.IsNaN(flo) || math.IsNaN(fhi) {
		return 0, errors.New("core: engine returned NaN during lifetime search")
	}
	if flo > 0 || fhi < 0 {
		return 0, fmt.Errorf("core: could not bracket the %v failure target", pTarget)
	}
	// Bisection, replicating mathx.Bisect's termination and update
	// rules exactly (tol 1e-10 on log t, 200 iterations).
	const bisectTol = 1e-10
	if flo == 0 {
		return math.Exp(lo), nil
	}
	if fhi == 0 {
		return math.Exp(hi), nil
	}
	if (flo > 0) == (fhi > 0) {
		return 0, errors.New("mathx: Bisect requires a sign change on [lo, hi]")
	}
	logT := lo + (hi-lo)/2
	for iter := 0; iter < 200; iter++ {
		mid := lo + (hi-lo)/2
		if hi-lo < bisectTol || mid == lo || mid == hi {
			logT = mid
			break
		}
		fm := lifetimeObjective(e, mid, pTarget)
		if fm == 0 {
			logT = mid
			break
		}
		if (fm > 0) == (flo > 0) {
			lo, flo = mid, fm
		} else {
			hi = mid
		}
		logT = lo + (hi-lo)/2
	}
	return math.Exp(logT), nil
}

// LifetimePPM is the convenience wrapper for the paper's
// n-faults-per-million criterion: it brackets using the chip's α
// range.
func LifetimePPM(e Engine, c *Chip, n float64) (float64, error) {
	aMin, aMax := c.AlphaRange()
	return LifetimeAt(e, PPMTarget(n), aMin*1e-15, aMax)
}
