package core

import (
	"math"
	"testing"
)

func TestTolerantK1MatchesBase(t *testing.T) {
	fx := newFixture(t)
	mc, err := NewMonteCarlo(fx.chip, fx.pca, MCOptions{Samples: 400, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	tol, err := NewTolerant(mc, 1)
	if err != nil {
		t.Fatal(err)
	}
	_, aMax := fx.chip.AlphaRange()
	for _, tt := range []float64{aMax * 1e-9, aMax * 1e-7, aMax * 1e-5} {
		pBase, err := mc.FailureProb(tt)
		if err != nil {
			t.Fatal(err)
		}
		pTol, err := tol.FailureProb(tt)
		if err != nil {
			t.Fatal(err)
		}
		if !approx(pBase, pTol, 1e-9) {
			t.Errorf("K=1 at t=%v: %v vs base %v", tt, pTol, pBase)
		}
	}
}

func TestTolerantMonotoneInK(t *testing.T) {
	fx := newFixture(t)
	mc, err := NewMonteCarlo(fx.chip, fx.pca, MCOptions{Samples: 400, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Probe where single-breakdown failures are common.
	t50, err := LifetimeAt(mc, 0.5, 1, 1e20)
	if err != nil {
		t.Fatal(err)
	}
	prev := 1.1
	for k := 1; k <= 5; k++ {
		tol, err := NewTolerant(mc, k)
		if err != nil {
			t.Fatal(err)
		}
		p, err := tol.FailureProb(t50)
		if err != nil {
			t.Fatal(err)
		}
		if p > prev+1e-12 {
			t.Fatalf("P(N>=%d) = %v exceeds P(N>=%d) = %v", k, p, k-1, prev)
		}
		if p < 0 || p > 1 {
			t.Fatalf("K=%d: P = %v", k, p)
		}
		prev = p
	}
}

func TestTolerantExtendsLifetime(t *testing.T) {
	// Surviving breakdowns must buy lifetime at a ppm criterion, and
	// engineAxioms must still hold for the wrapper.
	fx := newFixture(t)
	mc, err := NewMonteCarlo(fx.chip, fx.pca, MCOptions{Samples: 1500, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	_, aMax := fx.chip.AlphaRange()
	base, err := LifetimePPM(mc, fx.chip, 10)
	if err != nil {
		t.Fatal(err)
	}
	prev := base
	for _, k := range []int{2, 4} {
		tol, err := NewTolerant(mc, k)
		if err != nil {
			t.Fatal(err)
		}
		engineAxioms(t, tol, aMax)
		life, err := LifetimePPM(tol, fx.chip, 10)
		if err != nil {
			t.Fatal(err)
		}
		if !(life > prev) {
			t.Errorf("K=%d lifetime %v not beyond K-1 lifetime %v", k, life, prev)
		}
		prev = life
	}
	// The K=2 gain should be substantial at ppm levels: with Weibull
	// slope β≈1.3, doubling the tolerated count multiplies the
	// ppm-lifetime by roughly (P2/P1 inverse) — just require 2×.
	tol2, err := NewTolerant(mc, 2)
	if err != nil {
		t.Fatal(err)
	}
	life2, err := LifetimePPM(tol2, fx.chip, 10)
	if err != nil {
		t.Fatal(err)
	}
	if life2 < 2*base {
		t.Errorf("K=2 lifetime %v < 2× base %v", life2, base)
	}
}

func TestTolerantWithStMCProduct(t *testing.T) {
	fx := newFixture(t)
	smc, err := NewStMC(fx.chip, fx.pca, StMCOptions{Samples: 4000, Seed: 9, Product: true})
	if err != nil {
		t.Fatal(err)
	}
	tol, err := NewTolerant(smc, 3)
	if err != nil {
		t.Fatal(err)
	}
	mc, err := NewMonteCarlo(fx.chip, fx.pca, MCOptions{Samples: 3000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	tolMC, err := NewTolerant(mc, 3)
	if err != nil {
		t.Fatal(err)
	}
	// The two sample-based backends must agree on the K=3 lifetime.
	lSMC, err := LifetimePPM(tol, fx.chip, 10)
	if err != nil {
		t.Fatal(err)
	}
	lMC, err := LifetimePPM(tolMC, fx.chip, 10)
	if err != nil {
		t.Fatal(err)
	}
	if e := math.Abs(lSMC-lMC) / lMC * 100; e > 6 {
		t.Errorf("K=3 lifetimes: st_MC-product %v vs MC %v — %.2f%% apart", lSMC, lMC, e)
	}
}

func TestTolerantValidation(t *testing.T) {
	fx := newFixture(t)
	mc, err := NewMonteCarlo(fx.chip, fx.pca, MCOptions{Samples: 100, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewTolerant(mc, 0); err == nil {
		t.Error("K=0 should error")
	}
	fast, err := NewStFast(fx.chip, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewTolerant(fast, 2); err == nil {
		t.Error("non-sample engine should error")
	}
	sumSMC, err := NewStMC(fx.chip, fx.pca, StMCOptions{Samples: 500, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewTolerant(sumSMC, 2); err == nil {
		t.Error("sum-mode StMC should error")
	}
	tol, err := NewTolerant(mc, 3)
	if err != nil {
		t.Fatal(err)
	}
	if tol.Name() != "MC_k3" {
		t.Errorf("Name = %q", tol.Name())
	}
	if p, err := tol.FailureProb(0); err != nil || p != 0 {
		t.Errorf("P(0) = %v, %v", p, err)
	}
}
