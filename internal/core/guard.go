package core

import (
	"errors"
	"fmt"
	"math"

	"obdrel/internal/obd"
)

// GuardBand is the traditional worst-case analysis [4], [14], [28]:
// every device on every chip is assumed to have the minimum oxide
// thickness and to run at the worst-case operating temperature, so
// the chip reliability collapses to the single deterministic Weibull
//
//	R(t) = exp(-A·(t/α_worst)^(b_worst·x_min))               (Eq. 33)
//
// with A the total normalized oxide area. The lifetime at a given
// requirement has the closed form of Eq. 34. The method's ~50%
// pessimism is what the statistical engines eliminate.
type GuardBand struct {
	// Area is the chip's total normalized oxide area.
	Area float64
	// Params are the worst-corner (α, b); XMin the minimum thickness.
	Params obd.Params
	XMin   float64
	// Extrinsic, when non-nil, adds the worst-corner defect-population
	// hazard (the block with the smallest extrinsic α).
	Extrinsic *obd.ExtrinsicParams
}

// NewGuardBand builds the engine from a chip, taking the worst block
// parameters and x_min = u0 - nSigma·σ_tot of the variation model.
func NewGuardBand(c *Chip, nSigma float64) (*GuardBand, error) {
	if c == nil {
		return nil, errors.New("core: nil chip")
	}
	if nSigma < 0 {
		return nil, fmt.Errorf("core: negative guard-band sigma %v", nSigma)
	}
	m := c.Model
	sigmaTot := math.Sqrt(m.SigmaG*m.SigmaG + m.SigmaS*m.SigmaS + m.SigmaE*m.SigmaE)
	// With a wafer pattern the guard band starts from the worst
	// (thinnest) grid nominal on the die.
	nomMin := m.U0
	for g := 0; g < m.NumGrids(); g++ {
		if nom := m.NominalAt(g); nom < nomMin {
			nomMin = nom
		}
	}
	xMin := nomMin - nSigma*sigmaTot
	if xMin <= 0 {
		return nil, fmt.Errorf("core: guard band thickness %v not positive", xMin)
	}
	gb := &GuardBand{Area: c.TotalArea(), Params: c.WorstParams(), XMin: xMin}
	if c.Extrinsic != nil {
		worst := c.Extrinsic[0]
		for _, p := range c.Extrinsic[1:] {
			if p.AlphaE < worst.AlphaE {
				worst = p
			}
		}
		gb.Extrinsic = &worst
	}
	return gb, nil
}

// Name implements Engine.
func (e *GuardBand) Name() string { return "guard" }

// FailureProb implements Engine.
func (e *GuardBand) FailureProb(t float64) (float64, error) {
	if t <= 0 {
		return 0, nil
	}
	beta := e.Params.B * e.XMin
	expo := e.Area * math.Exp(beta*math.Log(t/e.Params.Alpha))
	if e.Extrinsic != nil {
		expo += e.Extrinsic.Hazard(t, e.Area)
	}
	return -math.Expm1(-expo), nil
}

// LifetimeClosedForm returns t_req = α·(-ln(R_req)/A)^(1/(b·x_min))
// (Eq. 34) for the reliability requirement R_req — no numerical
// search needed, which is why the paper reports no runtime for the
// guard-band method. With an extrinsic population attached the
// closed form no longer applies; use LifetimeAt on the engine.
func (e *GuardBand) LifetimeClosedForm(rReq float64) (float64, error) {
	if !(rReq > 0) || rReq >= 1 {
		return 0, fmt.Errorf("core: reliability requirement must be in (0,1), got %v", rReq)
	}
	if e.Extrinsic != nil {
		return 0, errors.New("core: no closed-form lifetime with an extrinsic population; solve numerically")
	}
	beta := e.Params.B * e.XMin
	return e.Params.Alpha * math.Pow(-math.Log(rReq)/e.Area, 1/beta), nil
}
