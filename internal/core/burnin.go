package core

import (
	"errors"
	"fmt"
	"math"
)

// BurnIn models post-screening field reliability: the chip population
// is stressed (elevated voltage/temperature) before shipment, early
// failures are discarded, and survivors enter the field with part of
// their life consumed. The stress exposure is expressed as per-block
// equivalent field hours — separately for the intrinsic wear-out
// population and the extrinsic defect population, whose acceleration
// factors differ:
//
//	P_shipped(t) = [P_shift(t) - P_shift(0)] / [1 - P_shift(0)]
//	P_shift(t)   = Σ_j D_j(t + τ_int,j | intrinsic)
//	                   ⊕ H_j(t + τ_ext,j | extrinsic)
//
// Burn-in is only profitable when an extrinsic (β < 1) population
// exists: it trades a little intrinsic wear-out (β > 1, ages
// slightly) for the removal of the steep infant-mortality hazard.
// With a purely intrinsic chip the wrapper correctly reports a
// *shorter* field lifetime — the classic result that one does not
// burn in a wear-out-dominated mechanism.
type BurnIn struct {
	base *StFast
	// IntShift and ExtShift are per-block equivalent field hours of
	// intrinsic and extrinsic aging consumed during the screen.
	IntShift, ExtShift []float64
	// Fallout is the fraction of the population failing during
	// burn-in (screened out), P_shift(0).
	Fallout float64
}

// NewBurnIn wraps a StFast engine with burn-in shifts. extShift may
// be nil when the chip has no extrinsic population.
func NewBurnIn(base *StFast, intShift, extShift []float64) (*BurnIn, error) {
	if base == nil {
		return nil, errors.New("core: nil base engine")
	}
	n := base.chip.NumBlocks()
	if len(intShift) != n {
		return nil, fmt.Errorf("core: %d intrinsic shifts for %d blocks", len(intShift), n)
	}
	if extShift == nil {
		extShift = make([]float64, n)
	}
	if len(extShift) != n {
		return nil, fmt.Errorf("core: %d extrinsic shifts for %d blocks", len(extShift), n)
	}
	for j := 0; j < n; j++ {
		if intShift[j] < 0 || extShift[j] < 0 {
			return nil, fmt.Errorf("core: negative burn-in shift for block %d", j)
		}
	}
	e := &BurnIn{
		base:     base,
		IntShift: append([]float64(nil), intShift...),
		ExtShift: append([]float64(nil), extShift...),
	}
	e.Fallout = e.shifted(0)
	return e, nil
}

// shifted evaluates P_shift(t) = Σ_j D_total_j at per-block shifted
// times.
func (e *BurnIn) shifted(t float64) float64 {
	sum := 0.0
	for j := range e.IntShift {
		p := e.base.chip.Params[j]
		tInt := t + e.IntShift[j]
		d := 0.0
		if tInt > 0 {
			l := math.Log(tInt / p.Alpha)
			d = e.base.weights[j].failureProb(l, p.B, e.base.chip.Char.Blocks[j].AJ)
		}
		sum += combineFailure(d, e.base.chip.extrinsicHazard(j, t+e.ExtShift[j]))
	}
	if sum > 1 {
		sum = 1
	}
	return sum
}

// Name implements Engine.
func (e *BurnIn) Name() string { return "st_fast_burnin" }

// FailureProb implements Engine: the field failure probability of a
// shipped (screened) chip.
func (e *BurnIn) FailureProb(t float64) (float64, error) {
	if t <= 0 {
		return 0, nil
	}
	if e.Fallout >= 1 {
		return 1, nil
	}
	p := (e.shifted(t) - e.Fallout) / (1 - e.Fallout)
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	return p, nil
}
