package core

import (
	"math"
	"testing"

	"obdrel/internal/blod"
	"obdrel/internal/floorplan"
	"obdrel/internal/grid"
	"obdrel/internal/obd"
)

// structureFixture builds the core-test chip under an arbitrary
// variation-model mutation, so the engine-agreement checks can be
// repeated for the quad-tree structure and the wafer pattern.
func structureFixture(t *testing.T, mutate func(*grid.Model)) *fixture {
	t.Helper()
	sigmaTot := 2.2 * 0.04 / 3
	sg, ss, se, err := grid.VarianceBudget(sigmaTot, 0.5, 0.25, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	m, err := grid.NewModel(2.2, 1, 1, 5, 5, sg, ss, se, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	mutate(m)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	pca, err := m.ComputePCA(1)
	if err != nil {
		t.Fatal(err)
	}
	d := &floorplan.Design{
		Name: "structtest", W: 1, H: 1,
		Blocks: []floorplan.Block{
			{Name: "exec", X: 0, Y: 0, W: 0.5, H: 0.5, Devices: 6000, Class: floorplan.ClassALU, Activity: 0.9},
			{Name: "cache", X: 0.5, Y: 0, W: 0.5, H: 0.5, Devices: 8000, Class: floorplan.ClassCache, Activity: 0.25},
			{Name: "fpu", X: 0, Y: 0.5, W: 0.5, H: 0.5, Devices: 3000, Class: floorplan.ClassFPU, Activity: 0.6},
			{Name: "ctl", X: 0.5, Y: 0.5, W: 0.5, H: 0.5, Devices: 3000, Class: floorplan.ClassControl, Activity: 0.4},
		},
	}
	char, err := blod.Characterize(d, m)
	if err != nil {
		t.Fatal(err)
	}
	tech := obd.DefaultTech()
	params := make([]obd.Params, 4)
	for i, tc := range []float64{92, 68, 80, 72} {
		params[i], err = tech.Characterize(tc, 1.2)
		if err != nil {
			t.Fatal(err)
		}
	}
	chip, err := NewChip(d, m, char, params)
	if err != nil {
		t.Fatal(err)
	}
	return &fixture{chip: chip, pca: pca}
}

// checkStFastVsMC asserts the headline agreement for a fixture.
func checkStFastVsMC(t *testing.T, fx *fixture, tolPct float64) {
	t.Helper()
	fast, err := NewStFast(fx.chip, 0)
	if err != nil {
		t.Fatal(err)
	}
	mc, err := NewMonteCarlo(fx.chip, fx.pca, MCOptions{Samples: 3000, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	for _, ppm := range []float64{1, 10} {
		tFast, err := LifetimePPM(fast, fx.chip, ppm)
		if err != nil {
			t.Fatal(err)
		}
		tMC, err := LifetimePPM(mc, fx.chip, ppm)
		if err != nil {
			t.Fatal(err)
		}
		if errPct := math.Abs(tFast-tMC) / tMC * 100; errPct > tolPct {
			t.Errorf("%v ppm: st_fast %v vs MC %v — %.2f%% error (tol %.1f%%)",
				ppm, tFast, tMC, errPct, tolPct)
		}
	}
}

func TestStFastVsMCQuadTree(t *testing.T) {
	fx := structureFixture(t, func(m *grid.Model) {
		m.Structure = grid.StructQuadTree
		m.QTLevels = 2
		m.QTDecay = 0.5
	})
	checkStFastVsMC(t, fx, 5)
}

func TestStFastVsMCWaferPattern(t *testing.T) {
	fx := structureFixture(t, func(m *grid.Model) {
		m.Pattern = &grid.WaferPattern{DieX: 0.6, DieY: -0.3, DieSpan: 0.25, Bowl: 0.04, SlantX: 0.015}
	})
	checkStFastVsMC(t, fx, 6)
}

func TestWaferPatternShiftsLifetime(t *testing.T) {
	// A thick-side die (bowl, off-center) must live longer than the
	// same design at wafer center, and a thinned die must live less.
	center := structureFixture(t, func(m *grid.Model) {
		m.Pattern = &grid.WaferPattern{DieX: 0, DieY: 0, DieSpan: 0.25, Bowl: 0.04}
	})
	edge := structureFixture(t, func(m *grid.Model) {
		m.Pattern = &grid.WaferPattern{DieX: 0.9, DieY: 0, DieSpan: 0.25, Bowl: 0.04}
	})
	thin := structureFixture(t, func(m *grid.Model) {
		m.Pattern = &grid.WaferPattern{DieX: 0.9, DieY: 0, DieSpan: 0.25, Bowl: -0.04}
	})
	life := func(fx *fixture) float64 {
		e, err := NewStFast(fx.chip, 0)
		if err != nil {
			t.Fatal(err)
		}
		l, err := LifetimePPM(e, fx.chip, 10)
		if err != nil {
			t.Fatal(err)
		}
		return l
	}
	lCenter, lEdge, lThin := life(center), life(edge), life(thin)
	if !(lEdge > lCenter) {
		t.Errorf("thicker edge die %v not longer-lived than center die %v", lEdge, lCenter)
	}
	if !(lThin < lCenter) {
		t.Errorf("thinned die %v not shorter-lived than center die %v", lThin, lCenter)
	}
}

func TestGuardBandUsesPatternWorstNominal(t *testing.T) {
	plain := structureFixture(t, func(m *grid.Model) {})
	thinned := structureFixture(t, func(m *grid.Model) {
		m.Pattern = &grid.WaferPattern{DieX: 0.9, DieY: 0, DieSpan: 0.25, Bowl: -0.05}
	})
	gPlain, err := NewGuardBand(plain.chip, 3)
	if err != nil {
		t.Fatal(err)
	}
	gThin, err := NewGuardBand(thinned.chip, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !(gThin.XMin < gPlain.XMin) {
		t.Errorf("guard band ignored the pattern: %v vs %v", gThin.XMin, gPlain.XMin)
	}
}
