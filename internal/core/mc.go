package core

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"

	"obdrel/internal/grid"
	"obdrel/internal/mathx"
	"obdrel/internal/par"
)

// MonteCarlo is the device-level reference simulation (Section V's
// "MC"): every sample chip draws the principal components, then every
// single device draws its independent thickness component, and the
// chip's conditional reliability follows from the exact product over
// devices (Eq. 10):
//
//	R(t | x) = exp(-Σ_i (t/α_j)^(b_j·x_i)) = exp(-Σ_i e^(w_i·L_j))
//
// with w_i = b_j·x_i and L_j = ln(t/α_j). The ensemble reliability is
// the average over sample chips.
//
// To evaluate many time points per sample without re-walking millions
// of devices, each sample bins its w_i values into a fine per-block
// histogram (WBins bins over ±8σ of thickness); the per-time sum then
// costs O(N·WBins) using the geometric progression
// e^(w_{i+1}·L) = e^(w_i·L)·e^(Δw·L). With the default 512 bins the
// binning error is below 10⁻⁶ relative — far under the Monte-Carlo
// noise floor.
//
// Sample generation is embarrassingly parallel and fans out over
// GOMAXPROCS workers with per-sample deterministic seeds, so results
// are reproducible regardless of parallelism.
type MonteCarlo struct {
	chip *Chip
	// Samples is the number of sample chips (paper: 1000).
	Samples int
	// WBins is the per-block w-histogram resolution.
	WBins int
	// Workers is the query-path worker count (0 = GOMAXPROCS,
	// 1 = exact serial path). Queries reduce over samples with the
	// deterministic chunk plan of internal/par, so any Workers ≥ 2
	// produce bit-identical results.
	Workers int

	// hists[s] holds sample s's concatenated per-block histograms
	// (N·WBins counts).
	hists [][]float32
	// wLo and dW are per-block histogram geometry.
	wLo, dW []float64
	seed    int64
}

// MCOptions configures NewMonteCarlo. Zero values select 1000 samples,
// 512 bins, and GOMAXPROCS workers.
type MCOptions struct {
	Samples int
	WBins   int
	Seed    int64
	// Workers bounds the sampling and query parallelism (0 =
	// GOMAXPROCS, 1 = serial).
	Workers int
}

// NewMonteCarlo runs the sampling phase (the expensive part, linear in
// devices × samples) and retains only the per-block w histograms.
func NewMonteCarlo(c *Chip, pca *grid.PCA, opts MCOptions) (*MonteCarlo, error) {
	if c == nil || pca == nil {
		return nil, errors.New("core: nil chip or PCA")
	}
	if pca.Loadings.Rows != c.Model.NumGrids() {
		return nil, fmt.Errorf("core: PCA covers %d grids, model has %d", pca.Loadings.Rows, c.Model.NumGrids())
	}
	e := &MonteCarlo{chip: c, Samples: opts.Samples, WBins: opts.WBins, Workers: opts.Workers, seed: opts.Seed}
	if e.Samples <= 0 {
		e.Samples = 1000
	}
	if e.WBins <= 0 {
		e.WBins = 512
	}
	n := c.NumBlocks()
	m := c.Model
	sigmaTot := math.Sqrt(m.SigmaG*m.SigmaG + m.SigmaS*m.SigmaS + m.SigmaE*m.SigmaE)
	// Histogram range: ±8σ around the extreme per-grid nominals (the
	// nominals differ across grids when a wafer pattern is active).
	nomLo, nomHi := m.U0, m.U0
	for g := 0; g < m.NumGrids(); g++ {
		nom := m.NominalAt(g)
		if nom < nomLo {
			nomLo = nom
		}
		if nom > nomHi {
			nomHi = nom
		}
	}
	e.wLo = make([]float64, n)
	e.dW = make([]float64, n)
	for j := 0; j < n; j++ {
		b := c.Params[j].B
		lo := b * (nomLo - 8*sigmaTot)
		hi := b * (nomHi + 8*sigmaTot)
		e.wLo[j] = lo
		e.dW[j] = (hi - lo) / float64(e.WBins)
	}
	// Per-block integer device placement, shared by all samples.
	allocGrids := make([][]int, n)
	allocCounts := make([][]int, n)
	for j := 0; j < n; j++ {
		allocGrids[j], allocCounts[j] = c.Char.Blocks[j].DeviceAllocation()
	}

	// Per-sample deterministic seeds make the sampling phase
	// order-independent; the atomic-counter pool in par avoids the
	// unbuffered-channel handoff the old producer serialized on.
	e.hists = make([][]float32, e.Samples)
	par.For(e.Workers, e.Samples, func(s int) {
		e.hists[s] = e.sampleChip(pca, allocGrids, allocCounts, e.seed+int64(s)*7919+1)
	})
	return e, nil
}

// sampleChip draws one chip and returns its concatenated per-block w
// histograms.
func (e *MonteCarlo) sampleChip(pca *grid.PCA, allocGrids [][]int, allocCounts [][]int, seed int64) []float32 {
	rng := rand.New(rand.NewSource(seed))
	c := e.chip
	n := c.NumBlocks()
	hist := make([]float32, n*e.WBins)
	shifts := pca.GridShifts(pca.SampleComponents(rng))
	for j := 0; j < n; j++ {
		b := c.Params[j].B
		sigmaW := b * c.Model.SigmaE
		base := hist[j*e.WBins : (j+1)*e.WBins]
		wLo, dw := e.wLo[j], e.dW[j]
		for gi, g := range allocGrids[j] {
			mean := b * (c.Model.NominalAt(g) + shifts[g])
			for i := 0; i < allocCounts[j][gi]; i++ {
				w := mean + sigmaW*rng.NormFloat64()
				bin := int((w - wLo) / dw)
				if bin < 0 {
					bin = 0
				}
				if bin >= e.WBins {
					bin = e.WBins - 1
				}
				base[bin]++
			}
		}
	}
	return hist
}

// expResync is the bin interval at which the geometric progression in
// exponent is resynchronized with an exact math.Exp. The running
// product cur *= r compounds one rounding error per bin; over 512 bins
// that drift reaches ~512 ULP (≳1e-13 relative), while resyncing every
// 64 bins bounds it at ~64 ULP — far below the Monte-Carlo noise floor
// and cheap (8 extra Exp calls per block).
const expResync = 64

// exponent evaluates S(t) = Σ_j Σ_i e^(w_i·L_j) + extra for one
// sample's histograms, where extra carries the (deterministic)
// extrinsic hazard sum.
func (e *MonteCarlo) exponent(hist []float32, ls []float64, extra float64) float64 {
	s := extra
	for j := range ls {
		l := ls[j]
		base := hist[j*e.WBins : (j+1)*e.WBins]
		wLo, dw := e.wLo[j], e.dW[j]
		cur := math.Exp((wLo + dw/2) * l)
		r := math.Exp(dw * l)
		for k, cnt := range base {
			if k%expResync == 0 && k != 0 {
				cur = math.Exp((wLo + (float64(k)+0.5)*dw) * l)
			}
			if cnt != 0 {
				s += float64(cnt) * cur
			}
			cur *= r
		}
	}
	return s
}

// Name implements Engine.
func (e *MonteCarlo) Name() string { return "MC" }

// FailureProb implements Engine: the sample average of
// 1 - exp(-S_k(t)). The reduction over sample histograms fans out over
// e.Workers with the deterministic chunk plan of par.SumOrdered, so
// the result is bit-identical for every worker count ≥ 2 and matches
// the legacy serial loop when Workers == 1.
func (e *MonteCarlo) FailureProb(t float64) (float64, error) {
	if t <= 0 {
		return 0, nil
	}
	n := e.chip.NumBlocks()
	ls := make([]float64, n)
	ext := 0.0
	for j := 0; j < n; j++ {
		ls[j] = math.Log(t / e.chip.Params[j].Alpha)
		ext += e.chip.extrinsicHazard(j, t)
	}
	acc := par.SumOrdered(e.Workers, len(e.hists), func(s int) float64 {
		return -math.Expm1(-e.exponent(e.hists[s], ls, ext))
	})
	return acc / float64(len(e.hists)), nil
}

// SampleFailureTimes draws count chip failure times (the Fig. 10
// lifetime histogram): for each draw a sample chip's conditional
// survival exp(-S(t)) is inverted at a uniform variate by bisection on
// log t. Draws cycle through the sampled chips, so count may exceed
// the process-sample count; each draw still uses fresh breakdown
// randomness.
func (e *MonteCarlo) SampleFailureTimes(count int, seed int64) ([]float64, error) {
	if count <= 0 {
		return nil, errors.New("core: SampleFailureTimes requires count > 0")
	}
	// The uniform variates are drawn serially up front (preserving the
	// legacy rng consumption order exactly); the per-draw bisections —
	// the expensive part, ~200 exponent evaluations each — are then
	// independent and fan out over e.Workers. Every draw is inverted
	// from its own variate, so the output is bit-identical for every
	// worker count, including the serial path.
	rng := rand.New(rand.NewSource(seed))
	us := make([]float64, count)
	for k := range us {
		u := rng.Float64()
		for u == 0 {
			u = rng.Float64()
		}
		us[k] = u
	}
	n := e.chip.NumBlocks()
	aMin, aMax := e.chip.AlphaRange()
	out := make([]float64, count)
	var (
		errMu    sync.Mutex
		firstErr error
	)
	par.ForChunks(e.Workers, count, 16, func(kLo, kHi int) {
		ls := make([]float64, n)
		for k := kLo; k < kHi; k++ {
			h := e.hists[k%len(e.hists)]
			target := -math.Log(us[k]) // solve S(t) = target
			f := func(logT float64) float64 {
				tt := math.Exp(logT)
				ext := 0.0
				for j := 0; j < n; j++ {
					ls[j] = logT - math.Log(e.chip.Params[j].Alpha)
					ext += e.chip.extrinsicHazard(j, tt)
				}
				return e.exponent(h, ls, ext) - target
			}
			lo := math.Log(aMin) - 40*math.Ln10
			hi := math.Log(aMax) + 4*math.Ln10
			// S is monotone increasing in t; expand upward if needed.
			for f(hi) < 0 {
				hi += 2 * math.Ln10
			}
			logT, err := mathx.Bisect(f, lo, hi, 1e-9, 200)
			if err != nil {
				// Record one failure; out is discarded by the caller.
				errMu.Lock()
				if firstErr == nil {
					firstErr = fmt.Errorf("core: failure-time inversion: %w", err)
				}
				errMu.Unlock()
				return
			}
			out[k] = math.Exp(logT)
		}
	})
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}
