package core

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"

	"obdrel/internal/grid"
	"obdrel/internal/mathx"
)

// MonteCarlo is the device-level reference simulation (Section V's
// "MC"): every sample chip draws the principal components, then every
// single device draws its independent thickness component, and the
// chip's conditional reliability follows from the exact product over
// devices (Eq. 10):
//
//	R(t | x) = exp(-Σ_i (t/α_j)^(b_j·x_i)) = exp(-Σ_i e^(w_i·L_j))
//
// with w_i = b_j·x_i and L_j = ln(t/α_j). The ensemble reliability is
// the average over sample chips.
//
// To evaluate many time points per sample without re-walking millions
// of devices, each sample bins its w_i values into a fine per-block
// histogram (WBins bins over ±8σ of thickness); the per-time sum then
// costs O(N·WBins) using the geometric progression
// e^(w_{i+1}·L) = e^(w_i·L)·e^(Δw·L). With the default 512 bins the
// binning error is below 10⁻⁶ relative — far under the Monte-Carlo
// noise floor.
//
// Sample generation is embarrassingly parallel and fans out over
// GOMAXPROCS workers with per-sample deterministic seeds, so results
// are reproducible regardless of parallelism.
type MonteCarlo struct {
	chip *Chip
	// Samples is the number of sample chips (paper: 1000).
	Samples int
	// WBins is the per-block w-histogram resolution.
	WBins int

	// hists[s] holds sample s's concatenated per-block histograms
	// (N·WBins counts).
	hists [][]float32
	// wLo and dW are per-block histogram geometry.
	wLo, dW []float64
	seed    int64
}

// MCOptions configures NewMonteCarlo. Zero values select 1000 samples
// and 512 bins.
type MCOptions struct {
	Samples int
	WBins   int
	Seed    int64
}

// NewMonteCarlo runs the sampling phase (the expensive part, linear in
// devices × samples) and retains only the per-block w histograms.
func NewMonteCarlo(c *Chip, pca *grid.PCA, opts MCOptions) (*MonteCarlo, error) {
	if c == nil || pca == nil {
		return nil, errors.New("core: nil chip or PCA")
	}
	if pca.Loadings.Rows != c.Model.NumGrids() {
		return nil, fmt.Errorf("core: PCA covers %d grids, model has %d", pca.Loadings.Rows, c.Model.NumGrids())
	}
	e := &MonteCarlo{chip: c, Samples: opts.Samples, WBins: opts.WBins, seed: opts.Seed}
	if e.Samples <= 0 {
		e.Samples = 1000
	}
	if e.WBins <= 0 {
		e.WBins = 512
	}
	n := c.NumBlocks()
	m := c.Model
	sigmaTot := math.Sqrt(m.SigmaG*m.SigmaG + m.SigmaS*m.SigmaS + m.SigmaE*m.SigmaE)
	// Histogram range: ±8σ around the extreme per-grid nominals (the
	// nominals differ across grids when a wafer pattern is active).
	nomLo, nomHi := m.U0, m.U0
	for g := 0; g < m.NumGrids(); g++ {
		nom := m.NominalAt(g)
		if nom < nomLo {
			nomLo = nom
		}
		if nom > nomHi {
			nomHi = nom
		}
	}
	e.wLo = make([]float64, n)
	e.dW = make([]float64, n)
	for j := 0; j < n; j++ {
		b := c.Params[j].B
		lo := b * (nomLo - 8*sigmaTot)
		hi := b * (nomHi + 8*sigmaTot)
		e.wLo[j] = lo
		e.dW[j] = (hi - lo) / float64(e.WBins)
	}
	// Per-block integer device placement, shared by all samples.
	allocGrids := make([][]int, n)
	allocCounts := make([][]int, n)
	for j := 0; j < n; j++ {
		allocGrids[j], allocCounts[j] = c.Char.Blocks[j].DeviceAllocation()
	}

	e.hists = make([][]float32, e.Samples)
	workers := runtime.GOMAXPROCS(0)
	if workers > e.Samples {
		workers = e.Samples
	}
	var wg sync.WaitGroup
	jobs := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for s := range jobs {
				e.hists[s] = e.sampleChip(pca, allocGrids, allocCounts, e.seed+int64(s)*7919+1)
			}
		}()
	}
	for s := 0; s < e.Samples; s++ {
		jobs <- s
	}
	close(jobs)
	wg.Wait()
	return e, nil
}

// sampleChip draws one chip and returns its concatenated per-block w
// histograms.
func (e *MonteCarlo) sampleChip(pca *grid.PCA, allocGrids [][]int, allocCounts [][]int, seed int64) []float32 {
	rng := rand.New(rand.NewSource(seed))
	c := e.chip
	n := c.NumBlocks()
	hist := make([]float32, n*e.WBins)
	shifts := pca.GridShifts(pca.SampleComponents(rng))
	for j := 0; j < n; j++ {
		b := c.Params[j].B
		sigmaW := b * c.Model.SigmaE
		base := hist[j*e.WBins : (j+1)*e.WBins]
		wLo, dw := e.wLo[j], e.dW[j]
		for gi, g := range allocGrids[j] {
			mean := b * (c.Model.NominalAt(g) + shifts[g])
			for i := 0; i < allocCounts[j][gi]; i++ {
				w := mean + sigmaW*rng.NormFloat64()
				bin := int((w - wLo) / dw)
				if bin < 0 {
					bin = 0
				}
				if bin >= e.WBins {
					bin = e.WBins - 1
				}
				base[bin]++
			}
		}
	}
	return hist
}

// exponent evaluates S(t) = Σ_j Σ_i e^(w_i·L_j) + extra for one
// sample's histograms, where extra carries the (deterministic)
// extrinsic hazard sum.
func (e *MonteCarlo) exponent(hist []float32, ls []float64, extra float64) float64 {
	s := extra
	for j := range ls {
		l := ls[j]
		base := hist[j*e.WBins : (j+1)*e.WBins]
		cur := math.Exp((e.wLo[j] + e.dW[j]/2) * l)
		r := math.Exp(e.dW[j] * l)
		for _, cnt := range base {
			if cnt != 0 {
				s += float64(cnt) * cur
			}
			cur *= r
		}
	}
	return s
}

// Name implements Engine.
func (e *MonteCarlo) Name() string { return "MC" }

// FailureProb implements Engine: the sample average of
// 1 - exp(-S_k(t)).
func (e *MonteCarlo) FailureProb(t float64) (float64, error) {
	if t <= 0 {
		return 0, nil
	}
	n := e.chip.NumBlocks()
	ls := make([]float64, n)
	ext := 0.0
	for j := 0; j < n; j++ {
		ls[j] = math.Log(t / e.chip.Params[j].Alpha)
		ext += e.chip.extrinsicHazard(j, t)
	}
	acc := 0.0
	for _, h := range e.hists {
		acc += -math.Expm1(-e.exponent(h, ls, ext))
	}
	return acc / float64(len(e.hists)), nil
}

// SampleFailureTimes draws count chip failure times (the Fig. 10
// lifetime histogram): for each draw a sample chip's conditional
// survival exp(-S(t)) is inverted at a uniform variate by bisection on
// log t. Draws cycle through the sampled chips, so count may exceed
// the process-sample count; each draw still uses fresh breakdown
// randomness.
func (e *MonteCarlo) SampleFailureTimes(count int, seed int64) ([]float64, error) {
	if count <= 0 {
		return nil, errors.New("core: SampleFailureTimes requires count > 0")
	}
	rng := rand.New(rand.NewSource(seed))
	n := e.chip.NumBlocks()
	aMin, aMax := e.chip.AlphaRange()
	out := make([]float64, count)
	ls := make([]float64, n)
	for k := 0; k < count; k++ {
		h := e.hists[k%len(e.hists)]
		u := rng.Float64()
		for u == 0 {
			u = rng.Float64()
		}
		target := -math.Log(u) // solve S(t) = target
		f := func(logT float64) float64 {
			tt := math.Exp(logT)
			ext := 0.0
			for j := 0; j < n; j++ {
				ls[j] = logT - math.Log(e.chip.Params[j].Alpha)
				ext += e.chip.extrinsicHazard(j, tt)
			}
			return e.exponent(h, ls, ext) - target
		}
		lo := math.Log(aMin) - 40*math.Ln10
		hi := math.Log(aMax) + 4*math.Ln10
		// S is monotone increasing in t; expand upward if needed.
		for f(hi) < 0 {
			hi += 2 * math.Ln10
		}
		logT, err := mathx.Bisect(f, lo, hi, 1e-9, 200)
		if err != nil {
			return nil, fmt.Errorf("core: failure-time inversion: %w", err)
		}
		out[k] = math.Exp(logT)
	}
	return out, nil
}
