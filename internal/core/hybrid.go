package core

import (
	"errors"
	"fmt"
	"math"

	"obdrel/internal/integrate"
)

// Hybrid is the fast analytical/table-lookup engine of Section IV-E.
// For each block a 2-D table of the double integral is precomputed
// over the (ln(t/α), b) plane — the only two quantities through which
// the operating condition enters Eq. 31 once the chip is designed.
// Reliability queries then reduce to N bilinear interpolations,
// giving the paper's additional 2 orders of magnitude speedup over
// st_fast, and letting one table serve many setup/application
// profiles (different temperatures and voltages only move the query
// point, not the table).
type Hybrid struct {
	chip   *Chip
	tables []*integrate.Table2D
	// NL×NB is the table resolution (paper: 100×100); LMin..LMax and
	// BMin..BMax the covered ranges of ln(t/α) and b.
	NL, NB                 int
	LMin, LMax, BMin, BMax float64
}

// HybridOptions configures table construction. Zero values select the
// defaults: 100×100 entries, ln(t/α) ∈ [-40, 0], b spanning the
// chip's block parameters with 30% margin, and the st_fast default
// integration resolution for the table fill.
type HybridOptions struct {
	NL, NB     int
	LMin, LMax float64
	BMin, BMax float64
	L0         int
	// Workers parallelizes the table fill (0 = GOMAXPROCS,
	// 1 = serial). Every entry is an independent double integral over
	// precomputed weights, so the tables are bit-identical for every
	// worker count.
	Workers int
}

// NewHybrid precomputes the per-block lookup tables.
func NewHybrid(c *Chip, opts HybridOptions) (*Hybrid, error) {
	if c == nil {
		return nil, errors.New("core: nil chip")
	}
	e := &Hybrid{chip: c, NL: opts.NL, NB: opts.NB,
		LMin: opts.LMin, LMax: opts.LMax, BMin: opts.BMin, BMax: opts.BMax}
	if e.NL <= 1 {
		e.NL = 100
	}
	if e.NB <= 1 {
		e.NB = 100
	}
	if e.LMin == 0 && e.LMax == 0 {
		e.LMin, e.LMax = -40, 0
	}
	if !(e.LMax > e.LMin) {
		return nil, fmt.Errorf("core: invalid hybrid L range [%v, %v]", e.LMin, e.LMax)
	}
	if e.BMin == 0 && e.BMax == 0 {
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, p := range c.Params {
			if p.B < lo {
				lo = p.B
			}
			if p.B > hi {
				hi = p.B
			}
		}
		e.BMin, e.BMax = lo*0.7, hi*1.3
	}
	if !(e.BMax > e.BMin) || e.BMin <= 0 {
		return nil, fmt.Errorf("core: invalid hybrid b range [%v, %v]", e.BMin, e.BMax)
	}
	l0 := opts.L0
	if l0 <= 0 {
		l0 = DefaultL0
	}
	ls := integrate.Linspace(e.LMin, e.LMax, e.NL)
	bs := integrate.Linspace(e.BMin, e.BMax, e.NB)
	for j := range c.Char.Blocks {
		bw, err := newBlockWeights(&c.Char.Blocks[j], l0)
		if err != nil {
			return nil, fmt.Errorf("core: block %q: %w", c.Char.Blocks[j].Name, err)
		}
		area := c.Char.Blocks[j].AJ
		// The 100×100 fill is the dominant build cost; its rows fan
		// out over the workers (each entry reads only the immutable
		// per-block weights).
		tab, err := integrate.NewTable2DWorkers(ls, bs, func(l, b float64) float64 {
			return bw.failureProb(l, b, area)
		}, opts.Workers)
		if err != nil {
			return nil, err
		}
		e.tables = append(e.tables, tab)
	}
	return e, nil
}

// NewHybridFromTables reconstructs the engine from precomputed table
// data — the load half of the mmap-ready table file (see
// internal/tablefile): ls/bs are the shared ln(t/α) and b axes and
// blocks the per-block row-major value grids, typically aliasing a
// shared read-only mapping. Nothing is copied; the caller keeps the
// backing store alive and immutable.
func NewHybridFromTables(c *Chip, ls, bs []float64, blocks [][]float64) (*Hybrid, error) {
	if c == nil {
		return nil, errors.New("core: nil chip")
	}
	if len(blocks) != len(c.Char.Blocks) {
		return nil, fmt.Errorf("core: %d tables for %d blocks", len(blocks), len(c.Char.Blocks))
	}
	if len(ls) < 2 || len(bs) < 2 {
		return nil, errors.New("core: hybrid table axes need at least 2 points")
	}
	e := &Hybrid{chip: c, NL: len(ls), NB: len(bs),
		LMin: ls[0], LMax: ls[len(ls)-1], BMin: bs[0], BMax: bs[len(bs)-1]}
	for j, vals := range blocks {
		tab, err := integrate.NewTable2DFromData(ls, bs, vals)
		if err != nil {
			return nil, fmt.Errorf("core: block %q table: %w", c.Char.Blocks[j].Name, err)
		}
		e.tables = append(e.tables, tab)
	}
	return e, nil
}

// TableData exposes the shared axes and per-block value grids for
// serialization (the spill half of the table file). The slices are the
// engine's live internals — read-only to callers.
func (e *Hybrid) TableData() (ls, bs []float64, blocks [][]float64) {
	if len(e.tables) == 0 {
		return nil, nil, nil
	}
	ls, bs, _ = e.tables[0].Data()
	blocks = make([][]float64, len(e.tables))
	for j, tab := range e.tables {
		_, _, blocks[j] = tab.Data()
	}
	return ls, bs, blocks
}

// Name implements Engine.
func (e *Hybrid) Name() string { return "hybrid" }

// FailureProb implements Engine: N bilinear table lookups at
// (ln(t/α_j), b_j), summed per Eq. 28.
func (e *Hybrid) FailureProb(t float64) (float64, error) {
	if t <= 0 {
		return 0, nil
	}
	sum := 0.0
	for j, tab := range e.tables {
		p := e.chip.Params[j]
		l := math.Log(t / p.Alpha)
		d := 0.0
		if l >= e.LMin {
			// Far below the tabulated range the intrinsic failure
			// probability is indistinguishable from zero.
			d = tab.At(l, p.B)
			if d < 0 {
				d = 0
			}
		}
		sum += combineFailure(d, e.chip.extrinsicHazard(j, t))
	}
	if sum > 1 {
		sum = 1
	}
	return sum, nil
}

// TableEntries returns the per-block table size, for memory
// reporting.
func (e *Hybrid) TableEntries() int {
	if len(e.tables) == 0 {
		return 0
	}
	nx, ny := e.tables[0].Size()
	return nx * ny
}
