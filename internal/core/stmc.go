package core

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"obdrel/internal/grid"
	"obdrel/internal/par"
	"obdrel/internal/stats"
)

// StMC is the statistical variant that constructs each block's joint
// (u_j, v_j) PDF numerically from Monte-Carlo samples of the
// principal components (Section V's "st_MC"), instead of assuming
// independence of u_j and v_j. The per-block joint histogram is built
// once; every FailureProb evaluation is then a weighted sum over its
// cells.
//
// With Product set, the engine instead averages the exact product
// Π_j exp(-A_j·g(u_j, v_j)) over the raw samples — no first-order
// Taylor expansion (Eq. 16) and no cross-block independence
// assumption — which serves as the ablation reference for both
// approximations.
type StMC struct {
	chip *Chip
	// Samples is the number of principal-component draws (default
	// 5000). Bins is the joint-histogram resolution per axis (default
	// 40).
	Samples, Bins int
	// Product selects the exact sample-average mode.
	Product bool

	hists []*stats.Histogram2D
	// us, vs retain the raw per-block samples for Product mode,
	// indexed [block][sample].
	us, vs [][]float64
}

// StMCOptions configures NewStMC.
type StMCOptions struct {
	Samples int
	Bins    int
	Product bool
	Seed    int64
	// Workers parallelizes the sampling projection (0 = GOMAXPROCS,
	// 1 = serial). The component draws themselves stay serial so the
	// rng consumption order — and therefore the result — is identical
	// for every worker count.
	Workers int
}

// NewStMC draws the component samples and builds the per-block joint
// histograms. The PCA must belong to the chip's variation model.
func NewStMC(c *Chip, pca *grid.PCA, opts StMCOptions) (*StMC, error) {
	if c == nil || pca == nil {
		return nil, errors.New("core: nil chip or PCA")
	}
	if pca.Loadings.Rows != c.Model.NumGrids() {
		return nil, fmt.Errorf("core: PCA covers %d grids, model has %d", pca.Loadings.Rows, c.Model.NumGrids())
	}
	e := &StMC{
		chip:    c,
		Samples: opts.Samples,
		Bins:    opts.Bins,
		Product: opts.Product,
	}
	if e.Samples <= 0 {
		e.Samples = 5000
	}
	if e.Bins <= 0 {
		e.Bins = 40
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	n := c.NumBlocks()
	e.us = make([][]float64, n)
	e.vs = make([][]float64, n)
	for j := 0; j < n; j++ {
		e.us[j] = make([]float64, e.Samples)
		e.vs[j] = make([]float64, e.Samples)
	}
	// Draw every component vector serially (cheap, and it pins the rng
	// stream), then fan the expensive Λ·z projections out over the
	// workers — each sample writes disjoint [j][s] slots.
	zs := make([][]float64, e.Samples)
	for s := range zs {
		zs[s] = pca.SampleComponents(rng)
	}
	par.For(opts.Workers, e.Samples, func(s int) {
		shifts := pca.GridShifts(zs[s])
		for j := 0; j < n; j++ {
			e.us[j][s], e.vs[j][s] = c.Char.Blocks[j].UVFromShifts(shifts)
		}
	})
	// Build the per-block joint histograms over the sampled ranges.
	for j := 0; j < n; j++ {
		uLo, uHi := minMax(e.us[j])
		vLo, vHi := minMax(e.vs[j])
		// Guard degenerate axes (e.g. v constant for one-grid blocks).
		if !(uHi > uLo) {
			uHi = uLo + math.Max(1e-12, math.Abs(uLo)*1e-12)
		}
		if !(vHi > vLo) {
			vHi = vLo + math.Max(1e-18, math.Abs(vLo)*1e-12)
		}
		h, err := stats.NewHistogram2D(uLo, uHi, e.Bins, vLo, vHi, e.Bins)
		if err != nil {
			return nil, err
		}
		for s := 0; s < e.Samples; s++ {
			h.Add(e.us[j][s], e.vs[j][s])
		}
		e.hists = append(e.hists, h)
	}
	return e, nil
}

func minMax(xs []float64) (lo, hi float64) {
	lo, hi = math.Inf(1), math.Inf(-1)
	for _, x := range xs {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi
}

// Name implements Engine.
func (e *StMC) Name() string {
	if e.Product {
		return "st_MC_product"
	}
	return "st_MC"
}

// FailureProb implements Engine.
func (e *StMC) FailureProb(t float64) (float64, error) {
	if t <= 0 {
		return 0, nil
	}
	if e.Product {
		return e.failureProbProduct(t)
	}
	sum := 0.0
	for j, h := range e.hists {
		p := e.chip.Params[j]
		l := math.Log(t / p.Alpha)
		area := e.chip.Char.Blocks[j].AJ
		d := 0.0
		for i := 0; i < h.XBins; i++ {
			u := h.XMid(i)
			for k := 0; k < h.YBins; k++ {
				pm := h.Prob(i, k)
				if pm == 0 {
					continue
				}
				d += pm * -math.Expm1(-area*GValue(l, p.B, u, h.YMid(k)))
			}
		}
		sum += combineFailure(d, e.chip.extrinsicHazard(j, t))
	}
	if sum > 1 {
		sum = 1
	}
	return sum, nil
}

// failureProbProduct averages the exact chip survival over the raw
// samples: E_z[1 - Π_j exp(-A_j g_j)].
func (e *StMC) failureProbProduct(t float64) (float64, error) {
	n := e.chip.NumBlocks()
	ls := make([]float64, n)
	for j := 0; j < n; j++ {
		ls[j] = math.Log(t / e.chip.Params[j].Alpha)
	}
	ext := 0.0
	for j := 0; j < n; j++ {
		ext += e.chip.extrinsicHazard(j, t)
	}
	acc := 0.0
	for s := 0; s < e.Samples; s++ {
		expo := ext
		for j := 0; j < n; j++ {
			expo += e.chip.Char.Blocks[j].AJ * GValue(ls[j], e.chip.Params[j].B, e.us[j][s], e.vs[j][s])
		}
		acc += -math.Expm1(-expo)
	}
	return acc / float64(e.Samples), nil
}
