package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"obdrel/internal/artifact"
	"obdrel/internal/pipeline"
)

// dynNode is one in-process dynamic-membership node.
type dynNode struct {
	ts *httptest.Server
	s  *Server
}

// startDynNode boots a dynamic node whose URL is allocated by the
// test listener; seeds may be empty (first node) or other nodes'
// URLs. Short lease so suspect/dead transitions land in test time.
func startDynNode(t *testing.T, seeds []string, lease time.Duration) *dynNode {
	t.Helper()
	lh := &lateHandler{}
	ts := httptest.NewServer(lh)
	join := seeds
	if len(join) == 0 {
		join = []string{ts.URL} // self-seed: dynamic mode, lonely start
	}
	s, err := NewE(Options{
		Stages:         pipeline.NewCache(64),
		Self:           ts.URL,
		JoinPeers:      join,
		Lease:          lease,
		PeerTimeout:    500 * time.Millisecond,
		Replicas:       2,
		ArtifactDir:    t.TempDir(),
		DisableTracing: true,
	})
	if err != nil {
		ts.Close()
		t.Fatalf("NewE dynamic: %v", err)
	}
	lh.h.Store(s.Handler())
	t.Cleanup(func() { s.Close(); ts.Close() })
	return &dynNode{ts: ts, s: s}
}

// kill is the in-process kill −9: the listener drops and the
// background loops stop, with no graceful leave and no drain.
func (n *dynNode) kill() {
	n.ts.Close()
	n.s.Close()
}

func waitFor(t *testing.T, what string, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timeout waiting for %s", what)
}

// TestDynamicJoinConvergence: three nodes discover each other through
// one seed, converge to the same alive set, and the status surface
// reports per-epoch membership.
func TestDynamicJoinConvergence(t *testing.T) {
	a := startDynNode(t, nil, 600*time.Millisecond)
	b := startDynNode(t, []string{a.ts.URL}, 600*time.Millisecond)
	c := startDynNode(t, []string{a.ts.URL}, 600*time.Millisecond)

	for _, n := range []*dynNode{a, b, c} {
		n := n
		waitFor(t, "3-node convergence", 5*time.Second, func() bool {
			return len(n.s.cluster.peersView()) == 3
		})
	}

	// The ring is identical everywhere once the alive sets agree.
	key := key32('a')
	owner := a.s.cluster.owner(clStage, key)
	if got := b.s.cluster.owner(clStage, key); got != owner {
		t.Fatalf("ring diverged: a says %s, b says %s", owner, got)
	}

	// Status surface: membership with states, epoch, replica factor.
	resp, err := http.Get(a.ts.URL + "/v1/cluster/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out clusterStatusOut
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Membership) != 3 {
		t.Fatalf("membership has %d entries, want 3: %+v", len(out.Membership), out.Membership)
	}
	if out.RingEpoch == 0 || out.Replicas != 2 {
		t.Fatalf("ring_epoch=%d replicas=%d, want nonzero epoch and 2 replicas", out.RingEpoch, out.Replicas)
	}
	for _, m := range out.Membership {
		if m.State.String() != "active" {
			t.Fatalf("member %s state %v, want active", m.Node, m.State)
		}
	}
}

// TestReplicationPushOnBuild: with k=2 over two nodes every key's
// replica set is both nodes, so a build on A must asynchronously
// appear on B without B ever building.
func TestReplicationPushOnBuild(t *testing.T) {
	a := startDynNode(t, nil, 600*time.Millisecond)
	b := startDynNode(t, []string{a.ts.URL}, 600*time.Millisecond)
	for _, n := range []*dynNode{a, b} {
		n := n
		waitFor(t, "2-node convergence", 5*time.Second, func() bool {
			return len(n.s.cluster.peersView()) == 2
		})
	}

	key := key32('b')
	built := 0
	_, _, err := pipeline.Get(context.Background(), a.s.stages, clStage, key, func(context.Context) (int64, error) {
		built++
		return 42, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if built != 1 {
		t.Fatalf("build ran %d times, want 1", built)
	}

	waitFor(t, "replica to land on B", 5*time.Second, func() bool {
		return b.s.stages.Held(clStage, key)
	})
	if v, ok := b.s.stages.Peek(clStage, key); !ok || v.(int64) != 42 {
		t.Fatalf("replica on B = %v (ok=%v), want 42 in memory", v, ok)
	}
	if got := a.s.cluster.replicaPushes.Load(); got < 1 {
		t.Fatalf("replicaPushes = %d, want ≥ 1", got)
	}
	if got := b.s.member.replReceives.Load(); got < 1 {
		t.Fatalf("replReceives on B = %d, want ≥ 1", got)
	}
}

// TestReplicaServesAfterKill is the tentpole scenario in miniature:
// three nodes, k=2, artifacts built on A and replicated; kill −9 A;
// B answers every key with ZERO builds — memory, disk, or a peer
// fetch from C, never a rebuild.
func TestReplicaServesAfterKill(t *testing.T) {
	a := startDynNode(t, nil, 500*time.Millisecond)
	b := startDynNode(t, []string{a.ts.URL}, 500*time.Millisecond)
	c := startDynNode(t, []string{a.ts.URL}, 500*time.Millisecond)
	for _, n := range []*dynNode{a, b, c} {
		n := n
		waitFor(t, "3-node convergence", 5*time.Second, func() bool {
			return len(n.s.cluster.peersView()) == 3
		})
	}

	// Build a spread of keys on A. Every replica set is 2 of 3 nodes,
	// so each key must end up held by at least one of B, C.
	keys := []string{}
	for _, ch := range "0123456789abcdef" {
		keys = append(keys, key32(byte(ch)))
	}
	for i, key := range keys {
		val := int64(i)
		if _, _, err := pipeline.Get(context.Background(), a.s.stages, clStage, key, func(context.Context) (int64, error) {
			return val, nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "replication to settle on B∪C", 10*time.Second, func() bool {
		for _, key := range keys {
			if !b.s.stages.Held(clStage, key) && !c.s.stages.Held(clStage, key) {
				return false
			}
		}
		return true
	})

	a.kill()

	// B resolves every key with zero builds: local tiers or a peer
	// fetch from C (walking past the dead A, hedged).
	for i, key := range keys {
		key := key
		v, _, err := pipeline.Get(context.Background(), b.s.stages, clStage, key, func(context.Context) (int64, error) {
			return -1, fmt.Errorf("rebuild of replicated key %s", key)
		})
		if err != nil {
			t.Fatalf("key %s: %v", key, err)
		}
		if v != int64(i) {
			t.Fatalf("key %s = %d, want %d", key, v, i)
		}
	}

	// The fleet notices the death: B's directory marks A suspect then
	// dead, the ring shrinks to two, the epoch bumps.
	waitFor(t, "death detection on B", 5*time.Second, func() bool {
		return len(b.s.cluster.peersView()) == 2
	})
	_, _, dead := b.s.member.dir.Counts()
	if dead < 1 {
		t.Fatalf("B's directory reports %d dead members, want ≥ 1", dead)
	}
}

// TestRebalanceStreamsOnJoin: a node joining a fleet with existing
// artifacts streams its newly-owned keys via the rebalance sweep —
// without building anything.
func TestRebalanceStreamsOnJoin(t *testing.T) {
	a := startDynNode(t, nil, 500*time.Millisecond)
	keys := []string{}
	for _, ch := range "02468ace" {
		keys = append(keys, key32(byte(ch)))
	}
	for i, key := range keys {
		val := int64(100 + i)
		if _, _, err := pipeline.Get(context.Background(), a.s.stages, clStage, key, func(context.Context) (int64, error) {
			return val, nil
		}); err != nil {
			t.Fatal(err)
		}
	}

	b := startDynNode(t, []string{a.ts.URL}, 500*time.Millisecond)
	waitFor(t, "join convergence", 5*time.Second, func() bool {
		return len(b.s.cluster.peersView()) == 2 && len(a.s.cluster.peersView()) == 2
	})

	// k=2 over two nodes: B is in every replica set, so the sweep must
	// eventually stream every key.
	waitFor(t, "rebalance stream to B", 10*time.Second, func() bool {
		for _, key := range keys {
			if !b.s.stages.Held(clStage, key) {
				return false
			}
		}
		return true
	})
	if got := b.s.member.rebalFetched.Load(); got < 1 {
		t.Fatalf("rebalFetched = %d, want ≥ 1", got)
	}
	// Builds on B stayed at zero: everything was streamed or pushed.
	for _, st := range b.s.stages.Snapshot() {
		if st.Stage == clStage && st.Builds != 0 {
			t.Fatalf("joining node built %d artifacts, want 0", st.Builds)
		}
	}
}

// TestHedgedFetch: a slow first candidate trips the hedge and the
// second candidate's instant answer wins, counted in fetch_hedged and
// fetch_hedge_wins.
func TestHedgedFetch(t *testing.T) {
	// Both servers serve any requested key on the fly; only the delay
	// differs. Self is never dialed (candidates exclude it).
	serve := func(delay time.Duration) http.HandlerFunc {
		return func(w http.ResponseWriter, r *http.Request) {
			k := r.URL.Path[strings.LastIndex(r.URL.Path, "/")+1:]
			sealed, err := artifact.Encode(clStage, k, int64(7))
			if err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			time.Sleep(delay)
			w.Write(sealed)
		}
	}
	slow := httptest.NewServer(serve(300 * time.Millisecond))
	defer slow.Close()
	fast := httptest.NewServer(serve(0))
	defer fast.Close()

	cl, err := newCluster("http://self.invalid:1",
		[]string{"http://self.invalid:1", slow.URL, fast.URL}, 400*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	// Candidate order is ring-determined: probe keys until one routes
	// to the slow server first. 16 probes each have ~1/2 odds, so a
	// miss on all of them means the ring itself is broken.
	probe := ""
	for _, ch := range "0123456789abcdef" {
		k := key32(byte(ch))
		if cands := cl.candidates(clStage, k); len(cands) == 2 && cands[0] == slow.URL {
			probe = k
			break
		}
	}
	if probe == "" {
		t.Fatal("no probe key routed to the slow server first across 16 probes")
	}

	got, ok, err := cl.fetch(context.Background(), clStage, probe)
	if err != nil || !ok {
		t.Fatalf("fetch: ok=%v err=%v", ok, err)
	}
	if v, err := artifact.Decode(clStage, probe, got); err != nil || v.(int64) != 7 {
		t.Fatalf("decode: v=%v err=%v", v, err)
	}
	if cl.fetchHedged.Load() != 1 {
		t.Fatalf("fetchHedged = %d, want 1", cl.fetchHedged.Load())
	}
	if cl.fetchHedgeWins.Load() != 1 {
		t.Fatalf("fetchHedgeWins = %d, want 1", cl.fetchHedgeWins.Load())
	}
}

// TestGracefulLeaveGossipsObituary: BeginDrain must push the leaving
// node's dead state to peers promptly (epoch bump), not wait out the
// lease.
func TestGracefulLeaveGossipsObituary(t *testing.T) {
	a := startDynNode(t, nil, 5*time.Second) // long lease: expiry won't rescue us
	b := startDynNode(t, []string{a.ts.URL}, 5*time.Second)
	for _, n := range []*dynNode{a, b} {
		n := n
		waitFor(t, "2-node convergence", 5*time.Second, func() bool {
			return len(n.s.cluster.peersView()) == 2
		})
	}

	b.s.BeginDrain()
	waitFor(t, "obituary on A", 3*time.Second, func() bool {
		return len(a.s.cluster.peersView()) == 1
	})
	_, _, dead := a.s.member.dir.Counts()
	if dead != 1 {
		t.Fatalf("A's directory reports %d dead, want 1 (the drained B)", dead)
	}
}

// TestArtifactPutHostility: the replica-receive surface validates as
// hard as the GET side — garbage, wrong-key, and unregistered-stage
// pushes all reject without installing anything.
func TestArtifactPutHostility(t *testing.T) {
	a := startDynNode(t, nil, time.Second)
	good := key32('d')
	sealed, err := artifact.Encode(clStage, good, int64(9))
	if err != nil {
		t.Fatal(err)
	}
	put := func(path string, body []byte) int {
		req, err := http.NewRequest(http.MethodPut, a.ts.URL+path, bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := put("/v1/artifact/"+clStage+"/"+good, []byte("garbage")); code != http.StatusBadRequest {
		t.Fatalf("garbage container: status %d, want 400", code)
	}
	if code := put("/v1/artifact/"+clStage+"/"+key32('e'), sealed); code != http.StatusBadRequest {
		t.Fatalf("wrong-key container: status %d, want 400", code)
	}
	if code := put("/v1/artifact/nosuchstage/"+good, sealed); code != http.StatusBadRequest {
		t.Fatalf("unregistered stage: status %d, want 400", code)
	}
	if a.s.stages.Held(clStage, good) || a.s.stages.Held(clStage, key32('e')) {
		t.Fatal("a rejected push installed an artifact")
	}
	if code := put("/v1/artifact/"+clStage+"/"+good, sealed); code != http.StatusNoContent {
		t.Fatalf("valid push: status %d, want 204", code)
	}
	if !a.s.stages.Held(clStage, good) {
		t.Fatal("valid push did not install")
	}
}
