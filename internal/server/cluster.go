package server

import (
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"obdrel/internal/obs"
)

// cluster is obdreld's static-membership sharding layer. Every node
// knows the full peer list (-peers) and its own identity (-self);
// stage fingerprints map onto peers with a consistent-hash ring, and
// a node that misses an artifact cache-fills it from the cluster via
// GET /v1/artifact/{stage}/{key} instead of recomputing physics.
//
// Ownership orders preference, it does not gate serving: the owner of
// a key is the node the ring designates as its canonical holder, so a
// fetch tries the owner first, then (bounded) ring successors that
// may hold a cached copy — a node can own a key it has never built,
// and a non-owner that built a key serves it happily. Every failure
// mode short of "nobody has it and the local build fails" degrades to
// a local build, never to a client-visible error.
type cluster struct {
	self    string
	peers   []string // normalized, self included
	ring    *hashRing
	client  *http.Client
	timeout time.Duration

	// fetchAttempts counts cluster fetches started; fetchFills those
	// satisfied by some peer; fetchErrors per-peer request failures
	// (one fetch may count several, one per dead candidate).
	fetchAttempts atomic.Int64
	fetchFills    atomic.Int64
	fetchErrors   atomic.Int64
}

// maxFetchCandidates bounds how many peers one fetch consults (owner
// plus ring successors): enough redundancy to find a cached copy in a
// small cluster without turning one miss into a full-cluster scan.
const maxFetchCandidates = 3

// newCluster validates the peer list and builds the ring. Self must
// appear in peers — a node that is not part of the ring it routes on
// would consider every key remote.
func newCluster(self string, peers []string, timeout time.Duration) (*cluster, error) {
	if self == "" {
		return nil, fmt.Errorf("cluster: -peers requires -self")
	}
	norm := make([]string, 0, len(peers))
	seen := map[string]bool{}
	selfIn := false
	for _, p := range peers {
		p = normalizePeer(p)
		if p == "" {
			continue
		}
		if u, err := url.Parse(p); err != nil || u.Scheme == "" || u.Host == "" {
			return nil, fmt.Errorf("cluster: peer %q is not a base URL", p)
		}
		if seen[p] {
			continue
		}
		seen[p] = true
		norm = append(norm, p)
		if p == normalizePeer(self) {
			selfIn = true
		}
	}
	if len(norm) == 0 {
		return nil, fmt.Errorf("cluster: empty peer list")
	}
	if !selfIn {
		return nil, fmt.Errorf("cluster: self %q is not in the peer list", self)
	}
	sort.Strings(norm)
	if timeout <= 0 {
		timeout = 2 * time.Second
	}
	return &cluster{
		self:    normalizePeer(self),
		peers:   norm,
		ring:    newHashRing(norm, 64),
		client:  &http.Client{Timeout: timeout},
		timeout: timeout,
	}, nil
}

func normalizePeer(p string) string {
	return strings.TrimRight(strings.TrimSpace(p), "/")
}

// owner returns the node the ring designates for an artifact key.
func (cl *cluster) owner(stage, key string) string {
	return cl.ring.owner(stage + "/" + key)
}

// owns reports whether this node is the canonical holder of a key —
// the anti-entropy sweep warms exactly these from disk at startup.
func (cl *cluster) owns(stage, key string) bool {
	return cl.owner(stage, key) == cl.self
}

// candidates lists the peers a fetch should try, in preference order:
// the key's owner first, then its ring successors, self excluded,
// capped at maxFetchCandidates.
func (cl *cluster) candidates(stage, key string) []string {
	seq := cl.ring.successors(stage + "/" + key)
	out := make([]string, 0, maxFetchCandidates)
	for _, p := range seq {
		if p == cl.self {
			continue
		}
		out = append(out, p)
		if len(out) == maxFetchCandidates {
			break
		}
	}
	return out
}

// fetch is the pipeline's peer tier (pipeline.Tiers.Fetch): it asks
// each candidate for the sealed artifact. 200 fills; 404 means that
// peer does not have it; transport errors and non-200s are counted
// and skipped. Exhausting the candidates returns (nil, false, err)
// with the last transport error, or a clean miss when every peer
// simply answered 404 — either way the pipeline builds locally.
func (cl *cluster) fetch(ctx context.Context, stage, key string) ([]byte, bool, error) {
	cands := cl.candidates(stage, key)
	if len(cands) == 0 {
		return nil, false, nil
	}
	cl.fetchAttempts.Add(1)
	var lastErr error
	for _, peer := range cands {
		sealed, err := cl.fetchFrom(ctx, peer, stage, key)
		if err != nil {
			cl.fetchErrors.Add(1)
			lastErr = err
			if ctx.Err() != nil {
				break
			}
			continue
		}
		if sealed != nil {
			cl.fetchFills.Add(1)
			return sealed, true, nil
		}
	}
	return nil, false, lastErr
}

// spanSubtreeHeader carries the owner's finished `peer.serve` span
// subtree back to the fetcher (JSON-encoded obs.SpanOut), where it is
// grafted under the fetcher's artifact.fetch span — the mechanism that
// makes one ?explain=1 tree span both nodes.
const spanSubtreeHeader = "X-Obdrel-Span"

// fetchFrom performs one peer request. (nil, nil) is a clean 404.
// Fetches that run inside a traced request mint an `artifact.fetch`
// child span, propagate the trace to the peer as a W3C traceparent,
// and graft the peer's returned span subtree under their own span.
func (cl *cluster) fetchFrom(ctx context.Context, peer, stage, key string) ([]byte, error) {
	sctx, sp := obs.StartSpan(ctx, "artifact.fetch")
	if sp != nil {
		sp.SetAttr("peer", peer)
		sp.SetAttr("stage", stage)
		defer sp.End()
	}
	rctx, cancel := context.WithTimeout(sctx, cl.timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(rctx, http.MethodGet,
		peer+"/v1/artifact/"+url.PathEscape(stage)+"/"+url.PathEscape(key), nil)
	if err != nil {
		return nil, err
	}
	if sp != nil {
		req.Header.Set("traceparent", obs.Traceparent(sp.TraceID(), sp.ID()))
	}
	resp, err := cl.client.Do(req)
	if err != nil {
		sp.SetAttr("error", err.Error())
		return nil, err
	}
	defer resp.Body.Close()
	sp.SetAttr("status", resp.StatusCode)
	if sp != nil {
		if h := resp.Header.Get(spanSubtreeHeader); h != "" {
			var sub obs.SpanOut
			// A peer that returns a garbled subtree costs us the graft,
			// never the artifact.
			if json.Unmarshal([]byte(h), &sub) == nil {
				sp.AttachRemote(&sub)
			}
		}
	}
	switch resp.StatusCode {
	case http.StatusOK:
		// An artifact is header + payload; 32 MiB comfortably bounds
		// every stage at the server's resource caps.
		body, err := io.ReadAll(io.LimitReader(resp.Body, 32<<20))
		if err != nil {
			return nil, err
		}
		return body, nil
	case http.StatusNotFound:
		return nil, nil
	default:
		return nil, fmt.Errorf("peer %s: artifact %s/%s: status %d", peer, stage, key, resp.StatusCode)
	}
}

// hashRing is a consistent-hash ring with virtual nodes: each peer
// contributes vnodes points at fnv64a(peer + "#" + i), keys hash the
// same way, and a key belongs to the first point clockwise. Adding or
// removing one peer moves only ~1/N of the key space — the property
// that makes a rolling redeploy of the fleet cheap.
type hashRing struct {
	points []ringPoint
}

type ringPoint struct {
	h    uint64
	node string
}

func newHashRing(nodes []string, vnodes int) *hashRing {
	r := &hashRing{points: make([]ringPoint, 0, len(nodes)*vnodes)}
	for _, n := range nodes {
		for i := 0; i < vnodes; i++ {
			r.points = append(r.points, ringPoint{h: hash64(fmt.Sprintf("%s#%d", n, i)), node: n})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].h != r.points[j].h {
			return r.points[i].h < r.points[j].h
		}
		return r.points[i].node < r.points[j].node
	})
	return r
}

func (r *hashRing) owner(key string) string {
	return r.points[r.at(key)].node
}

// successors lists distinct nodes clockwise from the key's point —
// the owner first, then the nodes that would inherit the key if the
// owner left the ring.
func (r *hashRing) successors(key string) []string {
	out := make([]string, 0, 4)
	seen := map[string]bool{}
	for i, n := r.at(key), 0; n < len(r.points); n++ {
		p := r.points[(i+n)%len(r.points)]
		if !seen[p.node] {
			seen[p.node] = true
			out = append(out, p.node)
		}
	}
	return out
}

// shares reports each node's exact share of the key space: the total
// arc length (as a fraction of 2^64) that hashes onto its points. The
// cluster-status surface reports it so an operator can see ring
// imbalance directly instead of inferring it from traffic skew.
func (r *hashRing) shares() map[string]float64 {
	out := make(map[string]float64)
	if len(r.points) == 0 {
		return out
	}
	if len(r.points) == 1 {
		out[r.points[0].node] = 1
		return out
	}
	const full = float64(1<<63) * 2 // 2^64 without overflowing
	prev := r.points[len(r.points)-1].h
	for _, p := range r.points {
		// The arc (prev, p.h] belongs to p.node; the first point also
		// takes the wraparound arc from the last point through zero.
		arc := p.h - prev // uint64 arithmetic wraps correctly
		out[p.node] += float64(arc) / full
		prev = p.h
	}
	return out
}

// at returns the index of the first ring point at or after the key's
// hash, wrapping at the top.
func (r *hashRing) at(key string) int {
	h := hash64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].h >= h })
	if i == len(r.points) {
		i = 0
	}
	return i
}

// hash64 is FNV-64a strengthened with the splitmix64 finalizer. Raw
// FNV of short, similar strings (vnode labels, hex fingerprints) barely
// avalanches the high bits — all the ring points land in a narrow band
// and most keys wrap to whichever node holds the smallest point, which
// collapses the balance the ring exists for. The finalizer spreads
// both points and keys across the full 64-bit space.
func hash64(s string) uint64 {
	h := fnv.New64a()
	io.WriteString(h, s)
	x := h.Sum64()
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
