package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"obdrel/internal/obs"
)

// cluster is obdreld's sharding layer. In static mode (-peers) every
// node knows the full peer list and the ring never changes; in
// dynamic mode (-join) the member directory swaps a new ring in on
// every membership epoch. Stage fingerprints map onto peers with a
// consistent-hash ring, and a node that misses an artifact
// cache-fills it from the cluster via GET /v1/artifact/{stage}/{key}
// instead of recomputing physics.
//
// Ownership orders preference, it does not gate serving: the owner of
// a key is the node the ring designates as its canonical holder, so a
// fetch tries the owner first, then (bounded) ring successors that
// may hold a cached copy — a node can own a key it has never built,
// and a non-owner that built a key serves it happily. Every failure
// mode short of "nobody has it and the local build fails" degrades to
// a local build, never to a client-visible error.
//
// In dynamic mode ownership is k-way: the first `replicas` distinct
// nodes clockwise from a key's point form its replica set, every
// build pushes the sealed artifact to the other members of that set,
// and owns() (which filters the warm sweep and the rebalance stream)
// means "self is in the replica set", so a kill −9 of the primary
// leaves warm replicas and zero cold rebuilds.
type cluster struct {
	self    string
	client  *http.Client
	timeout time.Duration
	dynamic bool

	mu       sync.RWMutex
	peers    []string // normalized, sorted, self included (current alive set)
	ring     *hashRing
	epoch    uint64
	replicas int // k-way placement factor; 1 = owner-only (static mode)

	// fetchAttempts counts cluster fetches started; fetchFills those
	// satisfied by some peer; fetchErrors per-peer request failures
	// (one fetch may count several, one per dead candidate).
	fetchAttempts atomic.Int64
	fetchFills    atomic.Int64
	fetchErrors   atomic.Int64
	// fetchHedged counts fetches that launched a second candidate
	// because the first was slow (a fraction of -peer-timeout);
	// fetchHedgeWins those where a hedge-launched request delivered
	// the winning fill.
	fetchHedged    atomic.Int64
	fetchHedgeWins atomic.Int64
	// Replication counters: pushes attempted, push failures (transport
	// or rejection), pushes dropped on a full queue.
	replicaPushes   atomic.Int64
	replicaPushErrs atomic.Int64
	replicaDropped  atomic.Int64
}

// maxFetchCandidates bounds how many peers one fetch consults (owner
// plus ring successors): enough redundancy to find a cached copy in a
// small cluster without turning one miss into a full-cluster scan.
const maxFetchCandidates = 3

// newCluster validates the peer list and builds the ring. Self must
// appear in peers — a node that is not part of the ring it routes on
// would consider every key remote.
func newCluster(self string, peers []string, timeout time.Duration) (*cluster, error) {
	if self == "" {
		return nil, fmt.Errorf("cluster: -peers requires -self")
	}
	norm := make([]string, 0, len(peers))
	seen := map[string]bool{}
	selfIn := false
	for _, p := range peers {
		p = normalizePeer(p)
		if p == "" {
			continue
		}
		if u, err := url.Parse(p); err != nil || u.Scheme == "" || u.Host == "" {
			return nil, fmt.Errorf("cluster: peer %q is not a base URL", p)
		}
		if seen[p] {
			continue
		}
		seen[p] = true
		norm = append(norm, p)
		if p == normalizePeer(self) {
			selfIn = true
		}
	}
	if len(norm) == 0 {
		return nil, fmt.Errorf("cluster: empty peer list")
	}
	if !selfIn {
		return nil, fmt.Errorf("cluster: self %q is not in the peer list", self)
	}
	sort.Strings(norm)
	if timeout <= 0 {
		timeout = 2 * time.Second
	}
	return &cluster{
		self:     normalizePeer(self),
		peers:    norm,
		ring:     newHashRing(norm, 64),
		client:   &http.Client{Timeout: timeout},
		timeout:  timeout,
		replicas: 1,
	}, nil
}

// newDynamicCluster builds a cluster whose membership starts as just
// self; the member directory grows it via setMembers as gossip
// converges. replicas is clamped to ≥1.
func newDynamicCluster(self string, replicas int, timeout time.Duration) (*cluster, error) {
	self = normalizePeer(self)
	if self == "" {
		return nil, fmt.Errorf("cluster: -join requires -self")
	}
	if u, err := url.Parse(self); err != nil || u.Scheme == "" || u.Host == "" {
		return nil, fmt.Errorf("cluster: self %q is not a base URL", self)
	}
	if replicas < 1 {
		replicas = 1
	}
	if timeout <= 0 {
		timeout = 2 * time.Second
	}
	return &cluster{
		self:     self,
		dynamic:  true,
		peers:    []string{self},
		ring:     newHashRing([]string{self}, 64),
		epoch:    1,
		client:   &http.Client{Timeout: timeout},
		timeout:  timeout,
		replicas: replicas,
	}, nil
}

// setMembers installs a new alive set at the given epoch and returns
// the previous ring (for the rebalance diff) plus whether the ring
// actually changed. The alive list must already contain self.
func (cl *cluster) setMembers(alive []string, epoch uint64) (prev *hashRing, changed bool) {
	norm := make([]string, 0, len(alive))
	seen := map[string]bool{}
	for _, p := range alive {
		p = normalizePeer(p)
		if p == "" || seen[p] {
			continue
		}
		seen[p] = true
		norm = append(norm, p)
	}
	if !seen[cl.self] {
		norm = append(norm, cl.self)
	}
	sort.Strings(norm)
	cl.mu.Lock()
	defer cl.mu.Unlock()
	prev = cl.ring
	cl.epoch = epoch
	if slicesEqual(norm, cl.peers) {
		return prev, false
	}
	cl.peers = norm
	cl.ring = newHashRing(norm, 64)
	return prev, true
}

func slicesEqual(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// ringView returns the current ring; peersView the current alive set.
func (cl *cluster) ringView() *hashRing {
	cl.mu.RLock()
	defer cl.mu.RUnlock()
	return cl.ring
}

func (cl *cluster) peersView() []string {
	cl.mu.RLock()
	defer cl.mu.RUnlock()
	out := make([]string, len(cl.peers))
	copy(out, cl.peers)
	return out
}

func (cl *cluster) epochView() uint64 {
	cl.mu.RLock()
	defer cl.mu.RUnlock()
	return cl.epoch
}

func (cl *cluster) replicaFactor() int {
	cl.mu.RLock()
	defer cl.mu.RUnlock()
	return cl.replicas
}

func normalizePeer(p string) string {
	return strings.TrimRight(strings.TrimSpace(p), "/")
}

// owner returns the node the ring designates for an artifact key.
func (cl *cluster) owner(stage, key string) string {
	return cl.ringView().owner(stage + "/" + key)
}

// owns reports whether this node is a canonical holder of a key — the
// anti-entropy sweep and the rebalance stream warm exactly these. In
// static mode that means sole ownership; with k-way replication it
// means membership in the key's replica set.
func (cl *cluster) owns(stage, key string) bool {
	return cl.ownsOn(cl.ringView(), stage, key)
}

// ownsOn evaluates owns against an explicit ring (the rebalance diff
// compares the previous and current rings for the same key).
func (cl *cluster) ownsOn(r *hashRing, stage, key string) bool {
	k := cl.replicaFactor()
	if k <= 1 {
		return r.owner(stage+"/"+key) == cl.self
	}
	for _, n := range r.replicaSet(stage+"/"+key, k) {
		if n == cl.self {
			return true
		}
	}
	return false
}

// replicaSet lists the key's canonical holders on the current ring:
// the first k distinct nodes clockwise, owner first. With fewer than
// k members the whole membership is the set.
func (cl *cluster) replicaSet(stage, key string) []string {
	cl.mu.RLock()
	r, k := cl.ring, cl.replicas
	cl.mu.RUnlock()
	return r.replicaSet(stage+"/"+key, k)
}

// candidates lists the peers a fetch should try, in preference order:
// the key's owner first, then its ring successors, self excluded,
// capped at maxFetchCandidates (or the replica factor plus one slack
// candidate, whichever is larger — a fetch must be able to walk past
// one dead replica holder).
func (cl *cluster) candidates(stage, key string) []string {
	cl.mu.RLock()
	r, k := cl.ring, cl.replicas
	cl.mu.RUnlock()
	limit := maxFetchCandidates
	if k+1 > limit {
		limit = k + 1
	}
	seq := r.successors(stage + "/" + key)
	out := make([]string, 0, limit)
	for _, p := range seq {
		if p == cl.self {
			continue
		}
		out = append(out, p)
		if len(out) == limit {
			break
		}
	}
	return out
}

// fetch is the pipeline's peer tier (pipeline.Tiers.Fetch): it asks
// the candidates for the sealed artifact, owner first. 200 fills; 404
// means that peer does not have it; transport errors and non-200s are
// counted and skipped. Exhausting the candidates returns (nil, false,
// err) with the last transport error, or a clean miss when every peer
// simply answered 404 — either way the pipeline builds locally.
//
// The walk is hedged: if the first candidate has not answered within
// a fraction of -peer-timeout, the next candidate is raced against it
// and the first success wins. A candidate that fails outright (or
// answers 404) advances the walk immediately, so a dead primary costs
// the hedge delay at most once, not a full timeout.
func (cl *cluster) fetch(ctx context.Context, stage, key string) ([]byte, bool, error) {
	cands := cl.candidates(stage, key)
	if len(cands) == 0 {
		return nil, false, nil
	}
	cl.fetchAttempts.Add(1)

	fctx, cancel := context.WithCancel(ctx)
	defer cancel()
	type result struct {
		sealed []byte
		err    error
		hedged bool // launched by the hedge timer, not the ordered walk
	}
	ch := make(chan result, len(cands))
	launched := 0
	launch := func(hedged bool) {
		peer := cands[launched]
		launched++
		go func() {
			sealed, err := cl.fetchFrom(fctx, peer, stage, key)
			ch <- result{sealed, err, hedged}
		}()
	}
	launch(false)

	hedge := time.NewTimer(cl.hedgeDelay())
	defer hedge.Stop()
	var lastErr error
	for pending := 1; pending > 0; {
		select {
		case r := <-ch:
			pending--
			if r.err != nil {
				if fctx.Err() == nil { // cancelled losers are not peer failures
					cl.fetchErrors.Add(1)
					lastErr = r.err
				}
				if ctx.Err() != nil {
					return nil, false, lastErr
				}
			} else if r.sealed != nil {
				cl.fetchFills.Add(1)
				if r.hedged {
					cl.fetchHedgeWins.Add(1)
				}
				return r.sealed, true, nil
			}
			// Error or clean 404: advance the walk.
			if launched < len(cands) && ctx.Err() == nil {
				launch(false)
				pending++
			}
		case <-hedge.C:
			if launched < len(cands) && ctx.Err() == nil {
				cl.fetchHedged.Add(1)
				launch(true)
				pending++
			}
		case <-ctx.Done():
			return nil, false, ctx.Err()
		}
	}
	return nil, false, lastErr
}

// hedgeDelay is the slow-candidate threshold: a quarter of the peer
// timeout, floored so sub-millisecond test timeouts don't hedge on
// scheduler noise.
func (cl *cluster) hedgeDelay() time.Duration {
	d := cl.timeout / 4
	if d < 5*time.Millisecond {
		d = 5 * time.Millisecond
	}
	return d
}

// pushReplica writes one sealed artifact to a peer's replica-receive
// surface (PUT /v1/artifact/{stage}/{key}). The receiver re-verifies
// the container checksum before installing, so a garbled push can
// reject but never corrupt.
func (cl *cluster) pushReplica(ctx context.Context, peer, stage, key string, sealed []byte) error {
	rctx, cancel := context.WithTimeout(ctx, cl.timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(rctx, http.MethodPut,
		peer+"/v1/artifact/"+url.PathEscape(stage)+"/"+url.PathEscape(key),
		bytes.NewReader(sealed))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := cl.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, io.LimitReader(resp.Body, 4<<10))
	if resp.StatusCode != http.StatusNoContent && resp.StatusCode != http.StatusOK {
		return fmt.Errorf("peer %s: replica %s/%s: status %d", peer, stage, key, resp.StatusCode)
	}
	return nil
}

// spanSubtreeHeader carries the owner's finished `peer.serve` span
// subtree back to the fetcher (JSON-encoded obs.SpanOut), where it is
// grafted under the fetcher's artifact.fetch span — the mechanism that
// makes one ?explain=1 tree span both nodes.
const spanSubtreeHeader = "X-Obdrel-Span"

// fetchFrom performs one peer request. (nil, nil) is a clean 404.
// Fetches that run inside a traced request mint an `artifact.fetch`
// child span, propagate the trace to the peer as a W3C traceparent,
// and graft the peer's returned span subtree under their own span.
func (cl *cluster) fetchFrom(ctx context.Context, peer, stage, key string) ([]byte, error) {
	sctx, sp := obs.StartSpan(ctx, "artifact.fetch")
	if sp != nil {
		sp.SetAttr("peer", peer)
		sp.SetAttr("stage", stage)
		defer sp.End()
	}
	rctx, cancel := context.WithTimeout(sctx, cl.timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(rctx, http.MethodGet,
		peer+"/v1/artifact/"+url.PathEscape(stage)+"/"+url.PathEscape(key), nil)
	if err != nil {
		return nil, err
	}
	if sp != nil {
		req.Header.Set("traceparent", obs.Traceparent(sp.TraceID(), sp.ID()))
	}
	resp, err := cl.client.Do(req)
	if err != nil {
		sp.SetAttr("error", err.Error())
		return nil, err
	}
	defer resp.Body.Close()
	sp.SetAttr("status", resp.StatusCode)
	if sp != nil {
		if h := resp.Header.Get(spanSubtreeHeader); h != "" {
			var sub obs.SpanOut
			// A peer that returns a garbled subtree costs us the graft,
			// never the artifact.
			if json.Unmarshal([]byte(h), &sub) == nil {
				sp.AttachRemote(&sub)
			}
		}
	}
	switch resp.StatusCode {
	case http.StatusOK:
		// An artifact is header + payload; 32 MiB comfortably bounds
		// every stage at the server's resource caps.
		body, err := io.ReadAll(io.LimitReader(resp.Body, 32<<20))
		if err != nil {
			return nil, err
		}
		return body, nil
	case http.StatusNotFound:
		return nil, nil
	default:
		return nil, fmt.Errorf("peer %s: artifact %s/%s: status %d", peer, stage, key, resp.StatusCode)
	}
}

// hashRing is a consistent-hash ring with virtual nodes: each peer
// contributes vnodes points at fnv64a(peer + "#" + i), keys hash the
// same way, and a key belongs to the first point clockwise. Adding or
// removing one peer moves only ~1/N of the key space — the property
// that makes a rolling redeploy of the fleet cheap.
type hashRing struct {
	points []ringPoint
}

type ringPoint struct {
	h    uint64
	node string
}

func newHashRing(nodes []string, vnodes int) *hashRing {
	r := &hashRing{points: make([]ringPoint, 0, len(nodes)*vnodes)}
	for _, n := range nodes {
		for i := 0; i < vnodes; i++ {
			r.points = append(r.points, ringPoint{h: hash64(fmt.Sprintf("%s#%d", n, i)), node: n})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].h != r.points[j].h {
			return r.points[i].h < r.points[j].h
		}
		return r.points[i].node < r.points[j].node
	})
	return r
}

func (r *hashRing) owner(key string) string {
	return r.points[r.at(key)].node
}

// successors lists distinct nodes clockwise from the key's point —
// the owner first, then the nodes that would inherit the key if the
// owner left the ring.
func (r *hashRing) successors(key string) []string {
	out := make([]string, 0, 4)
	seen := map[string]bool{}
	for i, n := r.at(key), 0; n < len(r.points); n++ {
		p := r.points[(i+n)%len(r.points)]
		if !seen[p.node] {
			seen[p.node] = true
			out = append(out, p.node)
		}
	}
	return out
}

// replicaSet returns the first k distinct nodes clockwise from the
// key's point — the key's canonical holders under k-way placement.
// With fewer than k distinct nodes the whole membership is returned,
// so the set always contains min(k, n) distinct nodes.
func (r *hashRing) replicaSet(key string, k int) []string {
	if k < 1 {
		k = 1
	}
	seq := r.successors(key)
	if len(seq) > k {
		seq = seq[:k]
	}
	return seq
}

// shares reports each node's exact share of the key space: the total
// arc length (as a fraction of 2^64) that hashes onto its points. The
// cluster-status surface reports it so an operator can see ring
// imbalance directly instead of inferring it from traffic skew.
func (r *hashRing) shares() map[string]float64 {
	out := make(map[string]float64)
	if len(r.points) == 0 {
		return out
	}
	if len(r.points) == 1 {
		out[r.points[0].node] = 1
		return out
	}
	const full = float64(1<<63) * 2 // 2^64 without overflowing
	prev := r.points[len(r.points)-1].h
	for _, p := range r.points {
		// The arc (prev, p.h] belongs to p.node; the first point also
		// takes the wraparound arc from the last point through zero.
		arc := p.h - prev // uint64 arithmetic wraps correctly
		out[p.node] += float64(arc) / full
		prev = p.h
	}
	return out
}

// at returns the index of the first ring point at or after the key's
// hash, wrapping at the top.
func (r *hashRing) at(key string) int {
	h := hash64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].h >= h })
	if i == len(r.points) {
		i = 0
	}
	return i
}

// hash64 is FNV-64a strengthened with the splitmix64 finalizer. Raw
// FNV of short, similar strings (vnode labels, hex fingerprints) barely
// avalanches the high bits — all the ring points land in a narrow band
// and most keys wrap to whichever node holds the smallest point, which
// collapses the balance the ring exists for. The finalizer spreads
// both points and keys across the full 64-bit space.
func hash64(s string) uint64 {
	h := fnv.New64a()
	io.WriteString(h, s)
	x := h.Sum64()
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
