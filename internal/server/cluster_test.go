package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"obdrel/internal/artifact"
	"obdrel/internal/pipeline"
)

// The cluster tests use a trivial serializable stage (an int64) so a
// two-node exchange costs microseconds, not a physics build.
const clStage = "clusterstage"

func init() {
	artifact.Register(clStage, artifact.Codec{
		Encode: func(v any) ([]byte, error) {
			var w artifact.Writer
			w.I64(v.(int64))
			return w.Bytes(), nil
		},
		Decode: func(p []byte) (any, error) {
			r := artifact.NewReader(p)
			v := r.I64()
			if err := r.Close(); err != nil {
				return nil, err
			}
			return v, nil
		},
	})
}

func key32(b byte) string { return strings.Repeat(string(b), artifact.KeySize) }

// lateHandler lets an httptest server start before the obdreld handler
// exists — the chicken-and-egg of a static peer list whose URLs are
// allocated by the test listener.
type lateHandler struct{ h atomic.Value }

func (l *lateHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if h, ok := l.h.Load().(http.Handler); ok {
		h.ServeHTTP(w, r)
		return
	}
	http.Error(w, "not ready", http.StatusServiceUnavailable)
}

func TestHashRingOwnershipAndSuccessors(t *testing.T) {
	nodes := []string{"http://a", "http://b", "http://c"}
	r := newHashRing(nodes, 64)
	ownedBy := map[string]int{}
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("stage/%032x", i)
		o := r.owner(key)
		if o2 := r.owner(key); o2 != o {
			t.Fatalf("owner not stable: %s vs %s", o, o2)
		}
		ownedBy[o]++
		seq := r.successors(key)
		if len(seq) != len(nodes) {
			t.Fatalf("successors returned %d nodes, want %d", len(seq), len(nodes))
		}
		if seq[0] != o {
			t.Fatalf("successors[0] = %s, owner = %s", seq[0], o)
		}
		seen := map[string]bool{}
		for _, n := range seq {
			if seen[n] {
				t.Fatalf("duplicate node %s in successors", n)
			}
			seen[n] = true
		}
	}
	for _, n := range nodes {
		if ownedBy[n] == 0 {
			t.Errorf("node %s owns no keys out of 1000 — ring badly unbalanced", n)
		}
	}
}

func TestNewEClusterValidation(t *testing.T) {
	cases := []struct {
		name  string
		self  string
		peers []string
	}{
		{"missing self", "", []string{"http://a:1"}},
		{"self not in peers", "http://c:3", []string{"http://a:1", "http://b:2"}},
		{"not a URL", "http://a:1", []string{"http://a:1", "nonsense"}},
		{"empty list", "http://a:1", []string{"", "  "}},
	}
	for _, tc := range cases {
		if _, err := NewE(Options{Stages: pipeline.NewCache(4), Self: tc.self, Peers: tc.peers, DisableTracing: true}); err == nil {
			t.Errorf("%s: NewE accepted invalid cluster options", tc.name)
		}
	}
	// Trailing slashes and duplicates normalize away. (Private stage
	// cache: cluster options install a peer-fetch tier, which must not
	// land on the process-wide cache shared by other tests.)
	s, err := NewE(Options{
		Stages:         pipeline.NewCache(4),
		Self:           "http://a:1/",
		Peers:          []string{"http://a:1", "http://a:1/", " http://b:2/ "},
		DisableTracing: true,
	})
	if err != nil {
		t.Fatalf("NewE rejected valid options: %v", err)
	}
	if got := s.cluster.peers; len(got) != 2 {
		t.Fatalf("peers = %v, want 2 normalized entries", got)
	}
}

// TestPeerCacheFillBetweenNodes is the in-process two-node exchange:
// node A builds an artifact, node B resolves the same key entirely by
// peer fill (its build closure must never run), persists the fill to
// its own disk tier, and A's /v1/artifact serve counter moves.
func TestPeerCacheFillBetweenNodes(t *testing.T) {
	lA, lB := &lateHandler{}, &lateHandler{}
	tsA, tsB := httptest.NewServer(lA), httptest.NewServer(lB)
	defer tsA.Close()
	defer tsB.Close()
	peers := []string{tsA.URL, tsB.URL}

	cacheA, cacheB := pipeline.NewCache(4), pipeline.NewCache(4)
	dirA, dirB := t.TempDir(), t.TempDir()
	sA, err := NewE(Options{Stages: cacheA, ArtifactDir: dirA, Peers: peers, Self: tsA.URL, WarmLimit: -1, DisableTracing: true})
	if err != nil {
		t.Fatal(err)
	}
	sB, err := NewE(Options{Stages: cacheB, ArtifactDir: dirB, Peers: peers, Self: tsB.URL, WarmLimit: -1, DisableTracing: true})
	if err != nil {
		t.Fatal(err)
	}
	lA.h.Store(sA.Handler())
	lB.h.Store(sB.Handler())

	ctx := context.Background()
	key := key32('a')
	if _, _, err := pipeline.Get(ctx, cacheA, clStage, key, func(context.Context) (int64, error) { return 7, nil }); err != nil {
		t.Fatal(err)
	}

	v, res, err := pipeline.Get(ctx, cacheB, clStage, key, func(context.Context) (int64, error) {
		return 0, errors.New("follower must not build")
	})
	if err != nil {
		t.Fatalf("peer fill failed: %v", err)
	}
	if v != 7 || res.Source != pipeline.SourcePeer {
		t.Fatalf("got %d via %q, want 7 via peer", v, res.Source)
	}
	st := cacheB.Stat(clStage)
	if st.Builds != 0 || st.PeerHits != 1 {
		t.Fatalf("follower builds=%d peerHits=%d, want 0/1", st.Builds, st.PeerHits)
	}
	if _, err := os.Stat(filepath.Join(dirB, artifact.FileName(clStage, key))); err != nil {
		t.Fatalf("peer fill not persisted to follower disk: %v", err)
	}
	if got := sA.artifactStats().PeerServes; got < 1 {
		t.Fatalf("node A peer serves = %d, want >= 1", got)
	}
}

// TestClusterDegradeToLocalBuild kills the only peer and verifies the
// survivor answers by building locally — a dead peer costs latency,
// never correctness.
func TestClusterDegradeToLocalBuild(t *testing.T) {
	tsDead := httptest.NewServer(http.NotFoundHandler())
	deadURL := tsDead.URL
	tsDead.Close() // connection refused from here on

	lB := &lateHandler{}
	tsB := httptest.NewServer(lB)
	defer tsB.Close()

	cacheB := pipeline.NewCache(4)
	sB, err := NewE(Options{
		Stages: cacheB, ArtifactDir: t.TempDir(),
		Peers: []string{deadURL, tsB.URL}, Self: tsB.URL,
		PeerTimeout: 200 * time.Millisecond, WarmLimit: -1, DisableTracing: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	lB.h.Store(sB.Handler())

	builds := 0
	v, res, err := pipeline.Get(context.Background(), cacheB, clStage, key32('b'), func(context.Context) (int64, error) {
		builds++
		return 9, nil
	})
	if err != nil || v != 9 {
		t.Fatalf("survivor answered (%d, %v), want 9", v, err)
	}
	if builds != 1 || res.Source != pipeline.SourceBuilt {
		t.Fatalf("builds=%d source=%q, want local build", builds, res.Source)
	}
	if st := cacheB.Stat(clStage); st.PeerErrors < 1 {
		t.Fatalf("peerErrors=%d, want >= 1 (dead peer was consulted)", st.PeerErrors)
	}
}

// TestArtifactEndpointHostility exercises the wire gate: malformed
// stages, malformed keys, cold keys, and wrong methods are all typed
// refusals, never 500s.
func TestArtifactEndpointHostility(t *testing.T) {
	s := New(Options{Stages: pipeline.NewCache(4), DisableTracing: true})
	h := s.Handler()
	do := func(method, path string) int {
		req := httptest.NewRequest(method, path, nil)
		rw := httptest.NewRecorder()
		h.ServeHTTP(rw, req)
		return rw.Code
	}
	cases := []struct {
		method, path string
		want         int
	}{
		{http.MethodGet, "/v1/artifact/" + clStage + "/" + key32('e'), http.StatusNotFound},   // cold key
		{http.MethodGet, "/v1/artifact/nosuchstage/" + key32('e'), http.StatusBadRequest},     // unregistered stage
		{http.MethodGet, "/v1/artifact/" + clStage + "/nothex", http.StatusBadRequest},        // malformed key
		{http.MethodGet, "/v1/artifact/" + clStage + "/" + key32('E'), http.StatusBadRequest}, // uppercase hex
		{http.MethodGet, "/v1/artifact/" + clStage, http.StatusBadRequest},                    // missing key
		{http.MethodGet, "/v1/artifact/a/b/c", http.StatusBadRequest},                         // extra segment
		{http.MethodPost, "/v1/artifact/" + clStage + "/" + key32('e'), http.StatusMethodNotAllowed},
	}
	for _, tc := range cases {
		if got := do(tc.method, tc.path); got != tc.want {
			t.Errorf("%s %s = %d, want %d", tc.method, tc.path, got, tc.want)
		}
	}
}

// TestWarmSweepReadyz pre-populates a disk tier, constructs a node over
// it, and verifies the anti-entropy sweep loads the artifact and
// /readyz converges to ready with the warm count reported.
func TestWarmSweepReadyz(t *testing.T) {
	dir := t.TempDir()
	key := key32('c')
	sealed, err := artifact.Encode(clStage, key, int64(12))
	if err != nil {
		t.Fatal(err)
	}
	if err := artifact.WriteFile(dir, clStage, key, sealed); err != nil {
		t.Fatal(err)
	}

	cache := pipeline.NewCache(4)
	s := New(Options{Stages: cache, ArtifactDir: dir, DisableTracing: true})
	h := s.Handler()

	deadline := time.Now().Add(5 * time.Second)
	for {
		rw := httptest.NewRecorder()
		h.ServeHTTP(rw, httptest.NewRequest(http.MethodGet, "/readyz", nil))
		if rw.Code == http.StatusOK {
			var body struct {
				Warming bool  `json:"warming"`
				Warmed  int64 `json:"warmed"`
			}
			if err := json.Unmarshal(rw.Body.Bytes(), &body); err != nil {
				t.Fatal(err)
			}
			if body.Warming || body.Warmed != 1 {
				t.Fatalf("ready body %s missing warm progress", rw.Body.String())
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("warm sweep never finished")
		}
		time.Sleep(5 * time.Millisecond)
	}

	v, ok := cache.Peek(clStage, key)
	if !ok || v.(int64) != 12 {
		t.Fatalf("warmed artifact = (%v, %t), want 12 resident", v, ok)
	}
	if st := cache.Stat(clStage); st.DiskHits != 1 || st.Builds != 0 {
		t.Fatalf("diskHits=%d builds=%d, want 1/0", st.DiskHits, st.Builds)
	}
}

// TestRingRebalanceMinimalChurn is the consistent-hashing property
// gate: adding or removing one of n nodes moves only the keys the
// ring must move. Exactness first — on a removal, only keys owned by
// the removed node change owner; on an addition, a key either keeps
// its owner or moves to the new node — then the churn bound: the
// moved fraction stays within vnode variance of the ideal K/n.
func TestRingRebalanceMinimalChurn(t *testing.T) {
	const K = 1000
	keys := make([]string, K)
	for i := range keys {
		keys[i] = fmt.Sprintf("stage/%032x", i)
	}
	for n := 2; n <= 6; n++ {
		nodes := make([]string, n)
		for i := range nodes {
			nodes[i] = fmt.Sprintf("http://node-%c", 'a'+i)
		}
		full := newHashRing(nodes, 64)

		// Removal: drop each node in turn.
		for drop := 0; drop < n; drop++ {
			rest := append(append([]string{}, nodes[:drop]...), nodes[drop+1:]...)
			smaller := newHashRing(rest, 64)
			moved := 0
			for _, k := range keys {
				before, after := full.owner(k), smaller.owner(k)
				if before == nodes[drop] {
					moved++
					if after == nodes[drop] {
						t.Fatalf("n=%d: removed node still owns %s", n, k)
					}
				} else if after != before {
					t.Fatalf("n=%d: key %s moved %s->%s though %s stayed in the ring",
						n, k, before, after, before)
				}
			}
			// moved == keys the dropped node owned ≈ K/n; 64 vnodes keep
			// the share within ~2× of ideal.
			if bound := 2 * K / n; moved > bound {
				t.Errorf("n=%d drop=%d: removal moved %d keys, bound %d", n, drop, moved, bound)
			}
		}

		// Addition: grow to n+1.
		grown := newHashRing(append(append([]string{}, nodes...), "http://node-new"), 64)
		moved := 0
		for _, k := range keys {
			before, after := full.owner(k), grown.owner(k)
			if after != before {
				if after != "http://node-new" {
					t.Fatalf("n=%d: key %s moved %s->%s instead of to the new node",
						n, k, before, after)
				}
				moved++
			}
		}
		if bound := 2 * K / (n + 1); moved > bound {
			t.Errorf("n=%d: addition moved %d keys, bound %d", n, moved, bound)
		}
	}
}

// TestReplicaSetDistinct: replica sets always contain min(k, n)
// distinct nodes, owner first, for every k including k > n.
func TestReplicaSetDistinct(t *testing.T) {
	for n := 1; n <= 4; n++ {
		nodes := make([]string, n)
		for i := range nodes {
			nodes[i] = fmt.Sprintf("http://node-%c", 'a'+i)
		}
		r := newHashRing(nodes, 64)
		for k := 1; k <= 5; k++ {
			for i := 0; i < 100; i++ {
				key := fmt.Sprintf("stage/%032x", i)
				set := r.replicaSet(key, k)
				want := k
				if n < k {
					want = n
				}
				if len(set) != want {
					t.Fatalf("n=%d k=%d: replicaSet has %d nodes, want %d", n, k, len(set), want)
				}
				if set[0] != r.owner(key) {
					t.Fatalf("n=%d k=%d: replicaSet[0] = %s, owner = %s", n, k, set[0], r.owner(key))
				}
				seen := map[string]bool{}
				for _, node := range set {
					if seen[node] {
						t.Fatalf("n=%d k=%d: duplicate node %s in replica set", n, k, node)
					}
					seen[node] = true
				}
			}
		}
	}
}
