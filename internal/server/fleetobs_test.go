package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"obdrel/internal/obs"
	"obdrel/internal/pipeline"
)

// TestCrossNodeTraceSingleTree is the cross-node tracing contract: a
// peer cache-fill running under a live trace propagates the trace to
// the owner as a W3C traceparent, the owner ADOPTS it (same trace id
// in its own ring, rooted at peer.serve), and the owner's finished
// span subtree comes back in the response header and is grafted under
// the fetcher's artifact.fetch span — ONE tree spanning both nodes,
// with per-node provenance attrs.
func TestCrossNodeTraceSingleTree(t *testing.T) {
	lA, lB := &lateHandler{}, &lateHandler{}
	tsA, tsB := httptest.NewServer(lA), httptest.NewServer(lB)
	defer tsA.Close()
	defer tsB.Close()
	peers := []string{tsA.URL, tsB.URL}

	cacheA, cacheB := pipeline.NewCache(4), pipeline.NewCache(4)
	sA, err := NewE(Options{Stages: cacheA, ArtifactDir: t.TempDir(), Peers: peers, Self: tsA.URL, WarmLimit: -1})
	if err != nil {
		t.Fatal(err)
	}
	sB, err := NewE(Options{Stages: cacheB, ArtifactDir: t.TempDir(), Peers: peers, Self: tsB.URL, WarmLimit: -1})
	if err != nil {
		t.Fatal(err)
	}
	lA.h.Store(sA.Handler())
	lB.h.Store(sB.Handler())

	ctx := context.Background()
	key := key32('d')
	if _, _, err := pipeline.Get(ctx, cacheA, clStage, key, func(context.Context) (int64, error) { return 7, nil }); err != nil {
		t.Fatal(err)
	}

	// Node B resolves the same key under a live trace, the way
	// instrument roots one for a /v1 request.
	tctx, root := sB.tracer.StartTrace(ctx, "/v1/test", "", "")
	if root == nil {
		t.Fatal("tracing unexpectedly disabled")
	}
	v, res, err := pipeline.Get(tctx, cacheB, clStage, key, func(context.Context) (int64, error) {
		return 0, errors.New("follower must not build")
	})
	if err != nil || v != 7 || res.Source != pipeline.SourcePeer {
		t.Fatalf("peer fill = (%d, %q, %v), want 7 via peer", v, res.Source, err)
	}
	out := root.EndTrace()
	if out == nil {
		t.Fatal("EndTrace returned nil")
	}

	var fetch, serve *obs.SpanOut
	out.Root.Walk(func(s *obs.SpanOut) {
		switch s.Name {
		case "artifact.fetch":
			fetch = s
		case "peer.serve":
			serve = s
		}
	})
	if fetch == nil {
		t.Fatalf("no artifact.fetch span in tree: %+v", out.Root)
	}
	if serve == nil {
		t.Fatalf("no grafted peer.serve span in tree: %+v", out.Root)
	}
	grafted := false
	for _, c := range fetch.Children {
		if c == serve {
			grafted = true
		}
	}
	if !grafted {
		t.Fatal("peer.serve is not a child of artifact.fetch")
	}
	// Per-node provenance: the grafted subtree says which node served it.
	if node, _ := serve.Attrs["node"].(string); node != tsA.URL {
		t.Fatalf("peer.serve node attr = %v, want %s", serve.Attrs["node"], tsA.URL)
	}
	if held, _ := serve.Attrs["held"].(bool); !held {
		t.Fatalf("peer.serve held attr = %v, want true", serve.Attrs["held"])
	}
	// Rebase: the grafted root sits inside the local span's timeline.
	if serve.StartUs < fetch.StartUs {
		t.Fatalf("grafted span starts (%v) before its local parent (%v)", serve.StartUs, fetch.StartUs)
	}

	// Adoption: node A's own ring holds the SAME trace id, rooted at
	// peer.serve — grep either node's traces by one id and find the
	// same request.
	adopted := false
	for _, tr := range sA.tracer.Recent(0) {
		if tr.TraceID == out.TraceID && tr.Name == "peer.serve" {
			adopted = true
		}
	}
	if !adopted {
		t.Fatalf("node A never adopted trace %s (ring: %d traces)", out.TraceID, len(sA.tracer.Recent(0)))
	}
}

// TestClusterStatusDegradedFanOut asks one node for the fleet view
// with a dead peer in the membership: the answer is still 200, the
// dead peer is reported (not fatal), the live nodes' histograms merge
// into fleet quantiles, and the ring shares cover the whole key space.
func TestClusterStatusDegradedFanOut(t *testing.T) {
	tsDead := httptest.NewServer(http.NotFoundHandler())
	deadURL := tsDead.URL
	tsDead.Close() // connection refused from here on

	lA, lB := &lateHandler{}, &lateHandler{}
	tsA, tsB := httptest.NewServer(lA), httptest.NewServer(lB)
	defer tsA.Close()
	defer tsB.Close()
	peers := []string{deadURL, tsA.URL, tsB.URL}

	mk := func(self string) *Server {
		s, err := NewE(Options{
			Stages: pipeline.NewCache(4), Peers: peers, Self: self,
			PeerTimeout: 300 * time.Millisecond, WarmLimit: -1, DisableTracing: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	sA, sB := mk(tsA.URL), mk(tsB.URL)
	hA, hB := sA.Handler(), sB.Handler()
	lA.h.Store(hA)
	lB.h.Store(hB)

	// Traffic on both nodes so the merged histograms hold samples.
	for i, h := range []http.Handler{hA, hA, hB} {
		rw := httptest.NewRecorder()
		h.ServeHTTP(rw, httptest.NewRequest(http.MethodGet, "/v1/designs", nil))
		if rw.Code != http.StatusOK {
			t.Fatalf("designs request %d = %d", i, rw.Code)
		}
	}

	rw := httptest.NewRecorder()
	hA.ServeHTTP(rw, httptest.NewRequest(http.MethodGet, "/v1/cluster/status", nil))
	if rw.Code != http.StatusOK {
		t.Fatalf("cluster status = %d (a degraded fleet is an answer, not an error): %s", rw.Code, rw.Body.String())
	}
	var out struct {
		Self      string `json:"self"`
		NodesOK   int    `json:"nodes_ok"`
		NodesDead int    `json:"nodes_dead"`
		Degraded  bool   `json:"degraded"`
		Nodes     []struct {
			Node string `json:"node"`
			Err  string `json:"error"`
		} `json:"nodes"`
		Fleet struct {
			Overall struct {
				Requests int64   `json:"requests"`
				P50Us    float64 `json:"p50_us"`
				P99Us    float64 `json:"p99_us"`
				MaxUs    float64 `json:"max_us"`
			} `json:"overall"`
			Routes map[string]struct {
				Requests int64 `json:"requests"`
			} `json:"routes"`
		} `json:"fleet"`
		Ring map[string]float64 `json:"ring"`
	}
	if err := json.Unmarshal(rw.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if out.Self != tsA.URL {
		t.Fatalf("self = %q", out.Self)
	}
	if out.NodesOK != 2 || out.NodesDead != 1 || !out.Degraded {
		t.Fatalf("ok=%d dead=%d degraded=%t, want 2/1/true", out.NodesOK, out.NodesDead, out.Degraded)
	}
	if len(out.Nodes) != 3 {
		t.Fatalf("nodes = %d, want 3", len(out.Nodes))
	}
	deadReported := false
	for _, n := range out.Nodes {
		if n.Node == deadURL {
			deadReported = n.Err != ""
		}
	}
	if !deadReported {
		t.Fatalf("dead peer %s not reported with its error: %+v", deadURL, out.Nodes)
	}
	// The three /v1/designs requests merge across the two live nodes.
	if got := out.Fleet.Routes["/v1/designs"].Requests; got != 3 {
		t.Fatalf("fleet /v1/designs requests = %d, want 3", got)
	}
	if out.Fleet.Overall.Requests < 3 || out.Fleet.Overall.P50Us <= 0 || out.Fleet.Overall.MaxUs <= 0 {
		t.Fatalf("fleet overall quantiles = %+v", out.Fleet.Overall)
	}
	// Ring shares: every member (the dead one included — membership is
	// static) holds an arc, and the arcs tile the key space.
	if len(out.Ring) != 3 {
		t.Fatalf("ring = %v, want 3 nodes", out.Ring)
	}
	var sum float64
	for _, share := range out.Ring {
		if share <= 0 {
			t.Fatalf("ring share not positive: %v", out.Ring)
		}
		sum += share
	}
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("ring shares sum to %v, want 1", sum)
	}
}

// TestRouteLabelClosedSet is the metrics-cardinality contract:
// /v1/artifact requests carry their own label (not "other"), the
// cluster ops routes carry theirs, unknown paths fold to "other", and
// NOTHING outside the registered set ever appears — in metrics or in
// the access log.
func TestRouteLabelClosedSet(t *testing.T) {
	var logBuf bytes.Buffer
	s := New(Options{Stages: pipeline.NewCache(4), DisableTracing: true, AccessLog: &logBuf})
	h := s.Handler()

	cases := []struct {
		path  string
		label string
	}{
		{"/v1/artifact/" + clStage + "/" + key32('q'), "/v1/artifact"},
		{"/v1/artifact/" + clStage + "/" + key32('q'), "/v1/artifact"},
		{"/v1/artifact/malformed", "/v1/artifact"},
		{"/v1/cluster/stats", "/v1/cluster/stats"},
		{"/v1/cluster/status", "/v1/cluster/status"},
		{"/v1/designs", "/v1/designs"},
		{"/nonsense", "other"},
		{"/v1/nonsense", "other"},
		{"/v1/artifact" + strings.Repeat("x", 8), "other"}, // prefix lookalike misses the mux
	}
	want := map[string]int64{}
	for _, tc := range cases {
		rw := httptest.NewRecorder()
		h.ServeHTTP(rw, httptest.NewRequest(http.MethodGet, tc.path, nil))
		want[tc.label]++
	}

	_, reqs := s.metrics.RouteSnapshots()
	for label, n := range want {
		if reqs[label] != n {
			t.Errorf("route %q observed %d requests, want %d (all: %v)", label, reqs[label], n, reqs)
		}
	}
	allowed := map[string]bool{
		"/healthz": true, "/readyz": true, "/metrics": true,
		"/v1/designs": true, "/v1/lifetime": true, "/v1/failureprob": true,
		"/v1/maxvdd": true, "/v1/blocks": true, "/v1/batch": true,
		"/v1/artifact": true, "/v1/cluster/stats": true, "/v1/cluster/status": true,
		"other": true,
	}
	for label := range reqs {
		if !allowed[label] {
			t.Errorf("metrics grew an unregistered route label %q", label)
		}
	}
	// The access log carries the same labels: every line's route is in
	// the closed set, and the artifact requests log under their own.
	sawArtifact := false
	for _, line := range strings.Split(strings.TrimSpace(logBuf.String()), "\n") {
		var entry struct {
			Route string `json:"route"`
		}
		if err := json.Unmarshal([]byte(line), &entry); err != nil {
			t.Fatalf("unparsable access-log line %q: %v", line, err)
		}
		if entry.Route == "/v1/artifact" {
			sawArtifact = true
		}
	}
	if !sawArtifact {
		t.Error("no access-log line with route /v1/artifact")
	}
}

// TestAccessLogProvenanceAndWideEvents drives the same request twice
// and checks both observability surfaces see the tier walk: the
// access log's cache field goes built → mem, and the wide-event log
// emits one canonical event per request with stages, build time, and
// cost deltas.
func TestAccessLogProvenanceAndWideEvents(t *testing.T) {
	var logBuf, wideBuf bytes.Buffer
	s := New(Options{
		Stages: pipeline.NewCache(8), DisableTracing: true,
		AccessLog: &logBuf, WideEvents: &wideBuf,
	})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	url := srv.URL + "/v1/lifetime?design=C1&method=hybrid&ppm=10&" + cheap
	for i := 0; i < 2; i++ {
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d = %d", i, resp.StatusCode)
		}
	}

	// Access log: cache provenance built → mem, peer_fills present.
	var caches []string
	for _, line := range strings.Split(strings.TrimSpace(logBuf.String()), "\n") {
		var entry struct {
			Route     string `json:"route"`
			Cache     string `json:"cache"`
			PeerFills *int   `json:"peer_fills"`
		}
		if err := json.Unmarshal([]byte(line), &entry); err != nil {
			t.Fatalf("unparsable access-log line %q: %v", line, err)
		}
		if entry.Route != "/v1/lifetime" {
			continue
		}
		if entry.PeerFills == nil || *entry.PeerFills != 0 {
			t.Fatalf("peer_fills missing or wrong in %q", line)
		}
		caches = append(caches, entry.Cache)
	}
	if len(caches) != 2 || caches[0] != "built" || caches[1] != "mem" {
		t.Fatalf("access-log cache provenance = %v, want [built mem]", caches)
	}

	// Wide events: one per request, stages and costs filled in.
	var evs []WideEvent
	for _, line := range strings.Split(strings.TrimSpace(wideBuf.String()), "\n") {
		var ev WideEvent
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("unparsable wide event %q: %v", line, err)
		}
		evs = append(evs, ev)
	}
	if len(evs) != 2 || s.WideEventsEmitted() != 2 {
		t.Fatalf("wide events = %d (emitted %d), want 2", len(evs), s.WideEventsEmitted())
	}
	first, second := evs[0], evs[1]
	if first.Route != "/v1/lifetime" || first.Status != http.StatusOK || !first.Sampled {
		t.Fatalf("first event = %+v", first)
	}
	if first.Cache != "built" || first.StageBuilds < 1 || first.BuildMs <= 0 {
		t.Fatalf("first event missed the build: %+v", first)
	}
	foundAnalyzer := false
	for _, v := range first.Stages {
		if v.Stage == "analyzer" && v.Source == "built" {
			foundAnalyzer = true
		}
	}
	if !foundAnalyzer {
		t.Fatalf("first event stages = %+v, want an analyzer build", first.Stages)
	}
	if second.Cache != "mem" || second.StageBuilds != 0 {
		t.Fatalf("second event = %+v, want a mem hit", second)
	}
	if first.DurUs <= 0 || first.QueueWaitUs < 0 {
		t.Fatalf("first event timing = dur %d queue %d", first.DurUs, first.QueueWaitUs)
	}
	if first.ProcAllocBytes == 0 {
		t.Fatalf("first event has no allocation delta: %+v", first)
	}
}

// TestWideEventErrorOverride proves the always-on-error rule: with a
// sampling rate no request can win, a success emits nothing and a 5xx
// still emits (marked sampled=false).
func TestWideEventErrorOverride(t *testing.T) {
	var wideBuf bytes.Buffer
	s := New(Options{
		Stages: pipeline.NewCache(4), DisableTracing: true, FaultHeader: true,
		WideEvents: &wideBuf, WideEventSample: 1 << 30,
	})
	h := s.Handler()

	rw := httptest.NewRecorder()
	h.ServeHTTP(rw, httptest.NewRequest(http.MethodGet, "/v1/designs", nil))
	if rw.Code != http.StatusOK {
		t.Fatalf("designs = %d", rw.Code)
	}
	if got := s.WideEventsEmitted(); got != 0 {
		t.Fatalf("unsampled success emitted %d wide events", got)
	}

	req := httptest.NewRequest(http.MethodGet, "/v1/designs", nil)
	req.Header.Set("X-Fault", "server.handler:error")
	rw = httptest.NewRecorder()
	h.ServeHTTP(rw, req)
	if rw.Code < 500 {
		t.Fatalf("injected fault answered %d, want 5xx", rw.Code)
	}
	if got := s.WideEventsEmitted(); got != 1 {
		t.Fatalf("error emitted %d wide events, want 1", got)
	}
	var ev WideEvent
	if err := json.Unmarshal(bytes.TrimSpace(wideBuf.Bytes()), &ev); err != nil {
		t.Fatal(err)
	}
	if ev.Sampled || ev.Status < 500 {
		t.Fatalf("error event = %+v, want sampled=false status>=500", ev)
	}
}

// TestWideEventDisabledZeroAlloc proves the disabled wide-event path
// (nil log, nil collector) costs zero allocations per request-side
// call — the overhead gate the -wide-events flag advertises.
func TestWideEventDisabledZeroAlloc(t *testing.T) {
	var l *wideEventLog
	bad := false
	allocs := testing.AllocsPerRun(1000, func() {
		if l.shouldSample() {
			bad = true
		}
		l.emit(nil)
		if l.Emitted() != 0 {
			bad = true
		}
		if cacheProvenance(nil, false) != "none" {
			bad = true
		}
	})
	if bad {
		t.Fatal("disabled wide-event log misbehaved")
	}
	if allocs != 0 {
		t.Fatalf("disabled wide-event path allocates %.1f/op, want 0", allocs)
	}
}

// TestServerSLOEndToEnd wires objectives through Options and checks
// /debug/slo and the obdreld_slo_* metric families reflect induced
// errors — and that a server without objectives exposes neither.
func TestServerSLOEndToEnd(t *testing.T) {
	objs, err := obs.ParseSLOSpec("/v1/designs:availability:99")
	if err != nil {
		t.Fatal(err)
	}
	s := New(Options{Stages: pipeline.NewCache(4), DisableTracing: true, FaultHeader: true, SLOs: objs})
	h := s.Handler()

	for i := 0; i < 9; i++ {
		rw := httptest.NewRecorder()
		h.ServeHTTP(rw, httptest.NewRequest(http.MethodGet, "/v1/designs", nil))
		if rw.Code != http.StatusOK {
			t.Fatalf("designs = %d", rw.Code)
		}
	}
	req := httptest.NewRequest(http.MethodGet, "/v1/designs", nil)
	req.Header.Set("X-Fault", "server.handler:error")
	rw := httptest.NewRecorder()
	h.ServeHTTP(rw, req)
	if rw.Code < 500 {
		t.Fatalf("injected fault answered %d", rw.Code)
	}

	// /debug/slo: enabled, totals 9 good / 1 bad, 1m burn above 1.
	rw = httptest.NewRecorder()
	s.DebugHandler().ServeHTTP(rw, httptest.NewRequest(http.MethodGet, "/debug/slo", nil))
	if rw.Code != http.StatusOK {
		t.Fatalf("/debug/slo = %d", rw.Code)
	}
	var doc struct {
		Enabled    bool                  `json:"enabled"`
		Objectives []obs.ObjectiveReport `json:"objectives"`
	}
	if err := json.Unmarshal(rw.Body.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if !doc.Enabled || len(doc.Objectives) != 1 {
		t.Fatalf("slo doc = %+v", doc)
	}
	rep := doc.Objectives[0]
	if rep.Good != 9 || rep.Bad != 1 {
		t.Fatalf("slo totals good=%d bad=%d, want 9/1", rep.Good, rep.Bad)
	}
	if burn := rep.Windows[0].Burn; burn <= 1 {
		t.Fatalf("1m burn = %v, want > 1 (10%% errors against a 1%% budget)", burn)
	}

	// Metric families present with the objective's labels.
	rw = httptest.NewRecorder()
	h.ServeHTTP(rw, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	body := rw.Body.String()
	for _, want := range []string{
		`obdreld_slo_target{route="/v1/designs",slo="availability"} 0.99`,
		`obdreld_slo_good_total{route="/v1/designs",slo="availability"} 9`,
		`obdreld_slo_bad_total{route="/v1/designs",slo="availability"} 1`,
		`obdreld_slo_burn_rate{route="/v1/designs",slo="availability",window="1m0s"}`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// A server without objectives: /debug/slo answers disabled, and the
	// exposition stays byte-free of slo families.
	s2 := New(Options{Stages: pipeline.NewCache(4), DisableTracing: true})
	rw = httptest.NewRecorder()
	s2.DebugHandler().ServeHTTP(rw, httptest.NewRequest(http.MethodGet, "/debug/slo", nil))
	if rw.Code != http.StatusOK || !strings.Contains(rw.Body.String(), `"enabled": false`) {
		t.Fatalf("/debug/slo without objectives = %d %s", rw.Code, rw.Body.String())
	}
	rw = httptest.NewRecorder()
	s2.Handler().ServeHTTP(rw, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if strings.Contains(rw.Body.String(), "obdreld_slo_") {
		t.Fatal("slo families leaked into a non-SLO exposition")
	}
}
