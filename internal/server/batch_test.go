package server

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"

	"obdrel"
)

// postBatch posts a JSON batch body and decodes the JSONL stream into
// (header, item lines, trailer). It fails the test on a non-200
// status or an unparsable stream.
func postBatch(t *testing.T, url, body string) (map[string]any, []map[string]any, map[string]any) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST batch = %d, want 200", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Content-Type = %q, want application/x-ndjson", ct)
	}
	var lines []map[string]any
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("bad stream line %q: %v", sc.Text(), err)
		}
		lines = append(lines, m)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(lines) < 2 {
		t.Fatalf("stream too short: %v", lines)
	}
	header, trailer := lines[0], lines[len(lines)-1]
	if header["stream"] != "obdrel-batch/1" {
		t.Fatalf("header = %v", header)
	}
	if _, ok := trailer["done"]; !ok {
		t.Fatalf("last line is not a trailer: %v", trailer)
	}
	return header, lines[1 : len(lines)-1], trailer
}

const cheapCfg = `{"grid":6,"mc_samples":50,"stmc_samples":500}`

func batchBody(items ...string) string {
	return "[" + strings.Join(items, ",") + "]"
}

func TestBatchSameDesignSweepGroupsOnce(t *testing.T) {
	srv := newTestServer(t, Options{})
	var items []string
	for i := 0; i < 12; i++ {
		items = append(items, fmt.Sprintf(
			`{"id":"item-%d","design":"C1","method":"st_fast","ppm":%d,"config":%s}`, i, i+1, cheapCfg))
	}
	_, lines, trailer := postBatch(t, srv.URL+"/v1/batch", batchBody(items...))
	if len(lines) != 12 {
		t.Fatalf("got %d item lines, want 12", len(lines))
	}
	for i, ln := range lines {
		if int(ln["i"].(float64)) != i {
			t.Fatalf("line %d has index %v — input order violated", i, ln["i"])
		}
		if ln["ok"] != true {
			t.Fatalf("line %d failed: %v", i, ln)
		}
		if ln["id"] != fmt.Sprintf("item-%d", i) {
			t.Fatalf("line %d id = %v", i, ln["id"])
		}
		res := ln["result"].(map[string]any)
		if life, ok := res["lifetime_hours"].(float64); !ok || !(life > 0) {
			t.Fatalf("line %d result: %v", i, res)
		}
	}
	// All 12 items share one (design, config): one group, 11 reuses.
	if trailer["groups"].(float64) != 1 || trailer["reused"].(float64) != 11 {
		t.Fatalf("trailer = %v, want groups=1 reused=11", trailer)
	}
	if trailer["done"] != true || trailer["ok"].(float64) != 12 {
		t.Fatalf("trailer = %v", trailer)
	}
}

func TestBatchPerItemErrorsDontAbortStream(t *testing.T) {
	srv := newTestServer(t, Options{})
	items := []string{
		fmt.Sprintf(`{"design":"C1","method":"st_fast","ppm":10,"config":%s}`, cheapCfg),
		fmt.Sprintf(`{"design":"NOPE","method":"st_fast","ppm":10,"config":%s}`, cheapCfg),
		fmt.Sprintf(`{"design":"C1","method":"st_fast","ppm":-1,"config":%s}`, cheapCfg),
		fmt.Sprintf(`{"design":"C1","method":"st_fast","ppm":20,"config":%s}`, cheapCfg),
	}
	_, lines, trailer := postBatch(t, srv.URL+"/v1/batch", batchBody(items...))
	if len(lines) != 4 {
		t.Fatalf("got %d item lines, want 4", len(lines))
	}
	if lines[0]["ok"] != true || lines[3]["ok"] != true {
		t.Fatalf("valid items must survive their neighbours failing: %v", lines)
	}
	if lines[1]["ok"] != false || !strings.Contains(lines[1]["error"].(string), "unknown design") {
		t.Fatalf("line 1 = %v", lines[1])
	}
	if lines[2]["ok"] != false || !strings.Contains(lines[2]["error"].(string), "ppm") {
		t.Fatalf("line 2 = %v", lines[2])
	}
	for _, i := range []int{1, 2} {
		if lines[i]["class"] != "permanent" {
			t.Fatalf("line %d class = %v, want permanent", i, lines[i]["class"])
		}
	}
	if trailer["done"] != true || trailer["ok"].(float64) != 2 || trailer["errors"].(float64) != 2 {
		t.Fatalf("trailer = %v", trailer)
	}
}

func TestBatchWindowing(t *testing.T) {
	srv := newTestServer(t, Options{})
	var items []string
	for i := 0; i < 7; i++ {
		items = append(items, fmt.Sprintf(`{"design":"C1","method":"st_fast","ppm":%d,"config":%s}`, i+1, cheapCfg))
	}
	header, lines, trailer := postBatch(t, srv.URL+"/v1/batch?window=3", batchBody(items...))
	if header["window"].(float64) != 3 {
		t.Fatalf("header window = %v", header["window"])
	}
	if len(lines) != 7 || trailer["windows"].(float64) != 3 {
		t.Fatalf("lines=%d trailer=%v, want 7 items over 3 windows", len(lines), trailer)
	}
}

func TestBatchMalformedMidStreamKeepsPriorResults(t *testing.T) {
	srv := newTestServer(t, Options{})
	body := fmt.Sprintf(`[{"design":"C1","method":"st_fast","ppm":10,"config":%s},{"design":}]`, cheapCfg)
	_, lines, trailer := postBatch(t, srv.URL+"/v1/batch", body)
	if len(lines) != 1 || lines[0]["ok"] != true {
		t.Fatalf("the valid item before the malformed one must still answer: %v", lines)
	}
	if trailer["done"] != false || !strings.Contains(trailer["error"].(string), "bad JSON") {
		t.Fatalf("trailer = %v, want done=false with a bad-JSON error", trailer)
	}
}

func TestBatchRejectsNonArrayBody(t *testing.T) {
	srv := newTestServer(t, Options{})
	for _, body := range []string{`{"items":[]}`, `42`, ``} {
		resp, err := http.Post(srv.URL+"/v1/batch", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("body %q: status %d, want 400", body, resp.StatusCode)
		}
	}
	resp, err := http.Post(srv.URL+"/v1/batch?window=0", "application/json", strings.NewReader(`[]`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("window=0: status %d, want 400", resp.StatusCode)
	}
}

func TestBatchItemCap(t *testing.T) {
	srv := newTestServer(t, Options{BatchMaxItems: 3})
	var items []string
	for i := 0; i < 5; i++ {
		items = append(items, fmt.Sprintf(`{"design":"C1","method":"st_fast","ppm":10,"config":%s}`, cheapCfg))
	}
	_, lines, trailer := postBatch(t, srv.URL+"/v1/batch", batchBody(items...))
	if len(lines) != 3 {
		t.Fatalf("got %d item lines, want the 3 under the cap", len(lines))
	}
	if trailer["done"] != false || !strings.Contains(trailer["error"].(string), "cap") {
		t.Fatalf("trailer = %v, want done=false with the cap error", trailer)
	}
}

// TestBatchTraceMatchesLibrary is the replay-consistency gate at test
// scale: a trace item evaluated through /v1/batch must answer
// bit-identically to the same trace replayed through the library
// directly, because the server derives its config the same way and
// JSON round-trips float64 exactly.
func TestBatchTraceMatchesLibrary(t *testing.T) {
	srv := newTestServer(t, Options{})
	trace := `[{"hours":4000,"vdd":1.0,"temp_c":55},{"hours":3000,"vdd":1.1,"temp_c":78},{"hours":1000,"vdd":1.2,"activity_scale":1}]`
	item := fmt.Sprintf(`{"query":"trace","design":"C1","method":"st_fast","ppm":10,"trace":%s,"config":%s}`, trace, cheapCfg)
	_, lines, trailer := postBatch(t, srv.URL+"/v1/batch", batchBody(item))
	if len(lines) != 1 || lines[0]["ok"] != true {
		t.Fatalf("trace item failed: %v", lines)
	}
	if trailer["done"] != true {
		t.Fatalf("trailer = %v", trailer)
	}
	got := lines[0]["result"].(map[string]any)["lifetime_hours"].(float64)

	cfg := obdrel.DefaultConfig()
	cfg.GridNx, cfg.GridNy = 6, 6
	cfg.MCSamples = 50
	cfg.StMCSamples = 500
	tr := obdrel.Trace{
		{Hours: 4000, VDD: 1.0, TempC: 55},
		{Hours: 3000, VDD: 1.1, TempC: 78},
		{Hours: 1000, VDD: 1.2, ActivityScale: 1},
	}
	an, err := obdrel.NewTraceAnalyzer(obdrel.C1(), cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	want, err := an.LifetimePPM(10, obdrel.MethodStFast)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("batch trace lifetime %v != library %v (must be bit-identical)", got, want)
	}
}

func TestBatchInvalidTraceIsPerItemError(t *testing.T) {
	srv := newTestServer(t, Options{})
	items := []string{
		fmt.Sprintf(`{"query":"trace","design":"C1","method":"st_fast","trace":[{"hours":-1,"vdd":1.0,"temp_c":50}],"config":%s}`, cheapCfg),
		fmt.Sprintf(`{"query":"nonsense","design":"C1","config":%s}`, cheapCfg),
	}
	_, lines, trailer := postBatch(t, srv.URL+"/v1/batch", batchBody(items...))
	if lines[0]["ok"] != false || !strings.Contains(lines[0]["error"].(string), "hours") {
		t.Fatalf("line 0 = %v", lines[0])
	}
	if lines[1]["ok"] != false || !strings.Contains(lines[1]["error"].(string), "unknown query") {
		t.Fatalf("line 1 = %v", lines[1])
	}
	if trailer["done"] != true {
		t.Fatalf("per-item validation failures must not kill the stream: %v", trailer)
	}
}

// TestBatchConcurrentStreams exercises the planner under concurrent
// batch requests sharing the registry and stage cache — the -race
// target for the new subsystem.
func TestBatchConcurrentStreams(t *testing.T) {
	srv := newTestServer(t, Options{})
	var wg sync.WaitGroup
	errs := make(chan error, 4)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			var items []string
			for i := 0; i < 8; i++ {
				items = append(items, fmt.Sprintf(
					`{"design":"C%d","method":"st_fast","ppm":%d,"config":%s}`, g%2+1, i+1, cheapCfg))
			}
			resp, err := http.Post(srv.URL+"/v1/batch", "application/json",
				strings.NewReader(batchBody(items...)))
			if err != nil {
				errs <- err
				return
			}
			defer resp.Body.Close()
			sc := bufio.NewScanner(resp.Body)
			n := 0
			var last map[string]any
			for sc.Scan() {
				last = nil
				if err := json.Unmarshal(sc.Bytes(), &last); err != nil {
					errs <- err
					return
				}
				n++
			}
			if n != 10 { // header + 8 items + trailer
				errs <- fmt.Errorf("stream %d: %d lines, want 10", g, n)
				return
			}
			if last["done"] != true || last["ok"].(float64) != 8 {
				errs <- fmt.Errorf("stream %d trailer: %v", g, last)
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestBatchMetrics checks the obdreld_batch_* families after traffic:
// counters move, the reuse ratio is positive, and /v1/batch stays a
// first-class route label.
func TestBatchMetrics(t *testing.T) {
	srv := newTestServer(t, Options{})
	var items []string
	for i := 0; i < 6; i++ {
		items = append(items, fmt.Sprintf(`{"design":"C1","method":"st_fast","ppm":%d,"config":%s}`, i+1, cheapCfg))
	}
	items = append(items, `{"design":"NOPE"}`)
	postBatch(t, srv.URL+"/v1/batch", batchBody(items...))

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var text strings.Builder
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		text.WriteString(sc.Text())
		text.WriteString("\n")
	}
	for _, want := range []string{
		"obdreld_batch_requests_total 1",
		`obdreld_batch_items_total{status="ok"} 6`,
		`obdreld_batch_items_total{status="error"} 1`,
		"obdreld_batch_groups_total 1",
		"obdreld_batch_substrate_reused_items_total 5",
		`obdreld_batch_item_errors_total{class="permanent"} 1`,
		`obdreld_requests_total{route="/v1/batch",code="200"} 1`,
	} {
		if !strings.Contains(text.String(), want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	if strings.Contains(text.String(), "obdreld_batch_substrate_reuse_ratio 0\n") {
		t.Error("reuse ratio should be positive after a same-design sweep")
	}
	if !strings.Contains(text.String(), "obdreld_batch_stream_bytes_total") {
		t.Error("metrics missing stream bytes counter")
	}
}
