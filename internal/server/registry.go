package server

import (
	"context"
	"time"

	"obdrel"
	"obdrel/internal/pipeline"
)

// BuildFunc constructs the analyzer for a design/config pair under a
// context that cancels the build. Production uses obdrel.NewAnalyzerCtx;
// tests inject counters and stalls.
type BuildFunc func(context.Context, *obdrel.Design, *obdrel.Config) (*obdrel.Analyzer, error)

// analyzerStage is the registry's stage name inside its pipeline cache:
// assembled Analyzers keyed by the canonical obdrel.CacheKey. The
// stage-level artifacts underneath (thermal, PCA, BLOD, …) live in the
// process-wide obdrel.Stages() cache, so even a registry miss reuses
// every substrate stage whose inputs did not change.
const analyzerStage = "analyzer"

// Registry is the serving layer's analyzer cache: a pipeline stage
// holding immutable Analyzers keyed by obdrel.CacheKey(design, config),
// with cancellable singleflight coalescing so N concurrent requests for
// the same uncached configuration trigger exactly one characterization
// — and so a request that times out cancels the build it started,
// unless another request is still waiting on it.
//
// Analyzers are safe for concurrent queries and engines are built
// lazily inside them, so the registry hands the same instance to any
// number of requests without copying.
type Registry struct {
	build   BuildFunc
	metrics *Metrics
	cache   *pipeline.Cache
}

// NewRegistry returns a registry holding at most capacity analyzers.
func NewRegistry(capacity int, build BuildFunc, m *Metrics) *Registry {
	r := &Registry{
		build:   build,
		metrics: m,
		cache:   pipeline.NewCache(capacity),
	}
	m.analyzersCached = r.Len
	return r
}

// Len reports the number of cached analyzers.
func (r *Registry) Len() int { return r.cache.Len(analyzerStage) }

// Stats returns the registry's own stage counters (hits, misses,
// builds, cancelled builds) for the metrics endpoint.
func (r *Registry) Stats() pipeline.StageStat { return r.cache.Stat(analyzerStage) }

// Get returns the analyzer for (design, config), building it at most
// once per key regardless of concurrency. cached reports whether the
// cache already held it. When ctx expires the wait is abandoned AND —
// if no other request is waiting on the same key — the build's context
// is cancelled, so a 504 stops the stage computation it started
// instead of leaking it; coalesced waiters that are still alive retry
// with a fresh build rather than inheriting the cancellation.
func (r *Registry) Get(ctx context.Context, d *obdrel.Design, cfg *obdrel.Config) (an *obdrel.Analyzer, cached bool, err error) {
	key := obdrel.CacheKey(d, cfg)
	an, res, err := pipeline.Get(ctx, r.cache, analyzerStage, key,
		func(bctx context.Context) (*obdrel.Analyzer, error) {
			start := time.Now()
			built, err := r.build(bctx, d, cfg)
			if err != nil {
				return nil, err
			}
			r.metrics.ObserveBuild(time.Since(start))
			return built, nil
		})
	if res.Hit {
		r.metrics.CacheHits.Add(1)
	} else {
		r.metrics.CacheMisses.Add(1)
	}
	if res.Coalesced {
		r.metrics.Coalesced.Add(1)
	}
	if err != nil {
		return nil, false, err
	}
	return an, res.Hit, nil
}
