package server

import (
	"context"
	"sync"
	"time"

	"obdrel"
	"obdrel/internal/fault"
	"obdrel/internal/lru"
	"obdrel/internal/pipeline"
)

// BuildFunc constructs the analyzer for a design/config pair under a
// context that cancels the build. Production uses obdrel.NewAnalyzerCtx;
// tests inject counters and stalls.
type BuildFunc func(context.Context, *obdrel.Design, *obdrel.Config) (*obdrel.Analyzer, error)

// analyzerStage is the registry's stage name inside its pipeline cache:
// assembled Analyzers keyed by the canonical obdrel.CacheKey. The
// stage-level artifacts underneath (thermal, PCA, BLOD, …) live in the
// process-wide obdrel.Stages() cache, so even a registry miss reuses
// every substrate stage whose inputs did not change.
const analyzerStage = "analyzer"

// Registry is the serving layer's analyzer cache: a pipeline stage
// holding immutable Analyzers keyed by obdrel.CacheKey(design, config),
// with cancellable singleflight coalescing so N concurrent requests for
// the same uncached configuration trigger exactly one characterization
// — and so a request that times out cancels the build it started,
// unless another request is still waiting on it.
//
// Analyzers are safe for concurrent queries and engines are built
// lazily inside them, so the registry hands the same instance to any
// number of requests without copying.
//
// Graceful degradation: alongside the primary LRU the registry keeps a
// last-good store — every successfully built analyzer, with its build
// time, in a second LRU that survives primary eviction. When a rebuild
// fails (including breaker fast-fails) and a last-good analyzer is
// younger than the serve-stale window, the registry serves it instead
// of erroring; the caller learns via GetResult.Stale and the response
// carries Warning/X-Staleness headers. Analyzers are immutable answers
// to a fixed (design, config) question — Eq. 18 queries against a
// slightly old characterization are exactly as correct as they were
// when it was built — so "stale" here only means "the failed rebuild
// was prompted by cache eviction, not changed inputs".
type Registry struct {
	build   BuildFunc
	metrics *Metrics
	cache   *pipeline.Cache

	staleMu  sync.Mutex
	stale    *lru.Cache[staleEntry]
	maxStale time.Duration
	now      func() time.Time
}

type staleEntry struct {
	an      *obdrel.Analyzer
	builtAt time.Time
}

// GetResult reports how a registry Get was served.
type GetResult struct {
	// Hit is true when the primary LRU held the analyzer.
	Hit bool
	// Stale is true when the fresh build failed and a last-good
	// analyzer was served instead; StaleAge is its age.
	Stale    bool
	StaleAge time.Duration
}

// Label renders the result for response payloads and access logs.
func (g GetResult) Label() string {
	switch {
	case g.Stale:
		return "stale"
	case g.Hit:
		return "hit"
	default:
		return "miss"
	}
}

// NewRegistry returns a registry holding at most capacity analyzers.
func NewRegistry(capacity int, build BuildFunc, m *Metrics) *Registry {
	r := &Registry{
		build:   build,
		metrics: m,
		cache:   pipeline.NewCache(capacity),
		stale:   lru.New[staleEntry](2 * capacity),
		now:     time.Now,
	}
	m.analyzersCached = r.Len
	return r
}

// SetMaxStale sets the serve-stale window (0 or negative disables).
func (r *Registry) SetMaxStale(d time.Duration) {
	r.staleMu.Lock()
	r.maxStale = d
	r.staleMu.Unlock()
}

// Cache exposes the underlying pipeline cache so the server can
// install retry/breaker policies.
func (r *Registry) Cache() *pipeline.Cache { return r.cache }

// Len reports the number of cached analyzers.
func (r *Registry) Len() int { return r.cache.Len(analyzerStage) }

// Stats returns the registry's own stage counters (hits, misses,
// builds, cancelled builds) for the metrics endpoint.
func (r *Registry) Stats() pipeline.StageStat { return r.cache.Stat(analyzerStage) }

// Get returns the analyzer for (design, config), building it at most
// once per key regardless of concurrency. When ctx expires the wait is
// abandoned AND — if no other request is waiting on the same key — the
// build's context is cancelled, so a 504 stops the stage computation
// it started instead of leaking it; coalesced waiters that are still
// alive retry with a fresh build rather than inheriting the
// cancellation. A failed build falls back to the last-good store (see
// the type comment); only genuine cancellations propagate unshielded.
func (r *Registry) Get(ctx context.Context, d *obdrel.Design, cfg *obdrel.Config) (*obdrel.Analyzer, GetResult, error) {
	return r.getKeyed(ctx, obdrel.CacheKey(d, cfg), d.Name,
		func(bctx context.Context) (*obdrel.Analyzer, error) {
			return r.build(bctx, d, cfg)
		})
}

// GetTrace is Get for telemetry-replay analyzers: same LRU, same
// coalescing, same retry/breaker/serve-stale policies, keyed by the
// trace-extended cache key so distinct traces over one (design,
// config) are distinct analyzers while the substrate stages
// underneath still share the process-wide stage cache.
func (r *Registry) GetTrace(ctx context.Context, d *obdrel.Design, cfg *obdrel.Config, tr obdrel.Trace) (*obdrel.Analyzer, GetResult, error) {
	return r.getKeyed(ctx, obdrel.TraceCacheKey(d, cfg, tr), d.Name+" trace",
		func(bctx context.Context) (*obdrel.Analyzer, error) {
			return obdrel.NewTraceAnalyzerCtx(bctx, d, cfg, tr)
		})
}

// getKeyed is the shared serve path behind Get and GetTrace.
func (r *Registry) getKeyed(ctx context.Context, key, name string, build func(context.Context) (*obdrel.Analyzer, error)) (*obdrel.Analyzer, GetResult, error) {
	an, res, err := pipeline.Get(ctx, r.cache, analyzerStage, key,
		func(bctx context.Context) (*obdrel.Analyzer, error) {
			if ferr := fault.InjectLabeled(bctx, "registry.build", name+" "+key); ferr != nil {
				return nil, ferr
			}
			start := time.Now()
			built, err := build(bctx)
			if err != nil {
				return nil, err
			}
			r.metrics.ObserveBuild(time.Since(start))
			r.recordGood(key, built)
			return built, nil
		})
	if res.Hit {
		r.metrics.CacheHits.Add(1)
	} else {
		r.metrics.CacheMisses.Add(1)
	}
	if res.Coalesced {
		r.metrics.Coalesced.Add(1)
	}
	if err == nil {
		return an, GetResult{Hit: res.Hit}, nil
	}
	// Serve-stale: a failed rebuild with a recent last-good analyzer
	// degrades gracefully instead of erroring. Cancellations are the
	// caller leaving, not the build failing — never shield those.
	if fault.ClassOf(err) != fault.Cancelled && ctx.Err() == nil {
		if e, age, ok := r.lastGood(key); ok {
			r.metrics.ServeStale.Add(1)
			r.metrics.staleAgeNanos.Store(age.Nanoseconds())
			annotateStale(ctx, age)
			return e.an, GetResult{Hit: true, Stale: true, StaleAge: age}, nil
		}
	}
	return nil, GetResult{}, err
}

// recordGood stores a freshly built analyzer in the last-good store.
func (r *Registry) recordGood(key string, an *obdrel.Analyzer) {
	r.staleMu.Lock()
	if r.maxStale > 0 {
		r.stale.Put(key, staleEntry{an: an, builtAt: r.now()})
	}
	r.staleMu.Unlock()
}

// lastGood returns the last-good analyzer for key if it is inside the
// serve-stale window.
func (r *Registry) lastGood(key string) (staleEntry, time.Duration, bool) {
	r.staleMu.Lock()
	defer r.staleMu.Unlock()
	if r.maxStale <= 0 {
		return staleEntry{}, 0, false
	}
	e, ok := r.stale.Get(key)
	if !ok {
		return staleEntry{}, 0, false
	}
	age := r.now().Sub(e.builtAt)
	if age > r.maxStale {
		r.stale.Remove(key)
		return staleEntry{}, 0, false
	}
	return e, age, true
}
