package server

import (
	"context"
	"sync"
	"time"

	"obdrel"
	"obdrel/internal/lru"
)

// BuildFunc constructs the analyzer for a design/config pair.
// Production uses obdrel.NewAnalyzer; tests inject counters and
// stalls.
type BuildFunc func(*obdrel.Design, *obdrel.Config) (*obdrel.Analyzer, error)

// Registry is the serving layer's analyzer cache: an LRU of immutable
// Analyzers keyed by the canonical obdrel.CacheKey(design, config),
// with singleflight coalescing so N concurrent requests for the same
// uncached configuration trigger exactly one characterization (power,
// thermal, PCA, BLOD — hundreds of ms each). The PR 1 process-wide
// PCA cache sits underneath, so even a registry miss reuses the
// eigendecomposition when only non-PCA knobs changed.
//
// Analyzers are safe for concurrent queries and engines are built
// lazily inside them, so the registry hands the same instance to any
// number of requests without copying.
type Registry struct {
	build   BuildFunc
	metrics *Metrics

	mu    sync.Mutex
	cache *lru.Cache[*obdrel.Analyzer]

	flights flightGroup
}

// NewRegistry returns a registry holding at most capacity analyzers.
func NewRegistry(capacity int, build BuildFunc, m *Metrics) *Registry {
	r := &Registry{
		build:   build,
		metrics: m,
		cache:   lru.New[*obdrel.Analyzer](capacity),
	}
	m.analyzersCached = r.Len
	return r
}

// Len reports the number of cached analyzers.
func (r *Registry) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.cache.Len()
}

// Get returns the analyzer for (design, config), building it at most
// once per key regardless of concurrency. cached reports whether the
// LRU already held it. A context deadline abandons the wait but not
// the build: the characterization finishes in the background and is
// inserted for the next request.
func (r *Registry) Get(ctx context.Context, d *obdrel.Design, cfg *obdrel.Config) (an *obdrel.Analyzer, cached bool, err error) {
	key := obdrel.CacheKey(d, cfg)
	r.mu.Lock()
	if an, ok := r.cache.Get(key); ok {
		r.mu.Unlock()
		r.metrics.CacheHits.Add(1)
		return an, true, nil
	}
	r.mu.Unlock()
	r.metrics.CacheMisses.Add(1)

	ch := r.flights.Do(key, func() (any, error) {
		start := time.Now()
		built, err := r.build(d, cfg)
		if err != nil {
			return nil, err
		}
		r.metrics.ObserveBuild(time.Since(start))
		r.mu.Lock()
		r.cache.Put(key, built)
		r.mu.Unlock()
		return built, nil
	})
	select {
	case res := <-ch:
		if res.shared {
			r.metrics.Coalesced.Add(1)
		}
		if res.err != nil {
			return nil, false, res.err
		}
		return res.val.(*obdrel.Analyzer), false, nil
	case <-ctx.Done():
		return nil, false, ctx.Err()
	}
}
