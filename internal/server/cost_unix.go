//go:build unix

package server

import "syscall"

// processCPUUs returns cumulative process CPU time (user + system) in
// microseconds via getrusage. Process-wide by nature: the wide event
// documents the delta as a process-level figure, not a per-goroutine
// attribution.
func processCPUUs() int64 {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0
	}
	return int64(ru.Utime.Sec)*1e6 + int64(ru.Utime.Usec) +
		int64(ru.Stime.Sec)*1e6 + int64(ru.Stime.Usec)
}
