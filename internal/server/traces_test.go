package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"

	"obdrel"
)

// coldRuns makes the cold-path tests repeatable under -count=N: each
// run picks stage keys no earlier run in the same process has built.
var coldRuns atomic.Int64

// walkSpans visits every span in an unmarshaled ?explain=1 trace tree
// (maps, because the assertions are about the wire format clients see).
func walkSpans(node map[string]any, visit func(map[string]any)) {
	if node == nil {
		return
	}
	visit(node)
	children, _ := node["children"].([]any)
	for _, c := range children {
		if m, ok := c.(map[string]any); ok {
			walkSpans(m, visit)
		}
	}
}

func explainRoot(t *testing.T, out map[string]any) map[string]any {
	t.Helper()
	tr, ok := out["trace"].(map[string]any)
	if !ok {
		t.Fatalf("response has no trace: %v", out)
	}
	if id, _ := tr["trace_id"].(string); len(id) != 32 {
		t.Fatalf("trace_id = %v", tr["trace_id"])
	}
	root, ok := tr["root"].(map[string]any)
	if !ok {
		t.Fatalf("trace has no root span: %v", tr)
	}
	return root
}

func spanAttr(sp map[string]any, key string) (any, bool) {
	attrs, _ := sp["attrs"].(map[string]any)
	v, ok := attrs[key]
	return v, ok
}

// TestExplainColdMaxVDD is the PR's acceptance probe: a cold
// /v1/maxvdd?explain=1 must show the whole causal chain — one span per
// bisection probe, per-stage cache provenance under the analyzer
// build, and the thermal solver's iteration telemetry.
func TestExplainColdMaxVDD(t *testing.T) {
	srv := newTestServer(t, Options{})
	// The voltage window is unique to this test AND to this run (the
	// shift keeps -count=N repeats cold): its probe voltages never land
	// on 1.2 V or another bisection's probes, so the voltage-keyed
	// thermal stage misses the process-wide stage cache and the trace
	// is guaranteed to contain a real SOR solve; grid=7 keeps the
	// correlation-side stages cold too.
	shift := float64(coldRuns.Add(1)) * 0.003
	url := srv.URL + fmt.Sprintf("/v1/maxvdd?design=C1&method=st_fast&ppm=10&target_hours=1000"+
		"&vlo=%.3f&vhi=%.3f&tolv=0.1&grid=7&mc_samples=50&stmc_samples=500&explain=1",
		1.05+shift, 1.43+shift)
	out := getJSON(t, url, http.StatusOK)
	if _, ok := out["max_vdd"].(float64); !ok {
		t.Fatalf("max_vdd = %v", out["max_vdd"])
	}
	root := explainRoot(t, out)

	probes, stageSpans, sorIters := 0, 0, 0.0
	var searchProbes any
	walkSpans(root, func(sp map[string]any) {
		name, _ := sp["name"].(string)
		switch {
		case name == "maxvdd.probe":
			probes++
			if _, ok := spanAttr(sp, "vdd_v"); !ok {
				t.Errorf("probe span without vdd_v: %v", sp["attrs"])
			}
		case name == "maxvdd.search":
			searchProbes, _ = spanAttr(sp, "probes")
		case strings.HasPrefix(name, "stage:"):
			stageSpans++
			if c, ok := spanAttr(sp, "cache"); !ok {
				t.Errorf("%s span without cache provenance", name)
			} else if s, _ := c.(string); s != "hit" && s != "miss" && s != "coalesced" && s != "cancelled" {
				t.Errorf("%s cache = %v", name, c)
			}
		case name == "thermal.sor" || name == "thermal.multigrid":
			it, _ := spanAttr(sp, "iterations")
			if f, ok := it.(float64); ok && f > sorIters {
				sorIters = f
			}
		}
	})
	if probes < 2 {
		t.Errorf("trace has %d maxvdd.probe spans, want ≥ 2", probes)
	}
	if sp, ok := searchProbes.(float64); !ok || int(sp) != probes {
		t.Errorf("maxvdd.search probes attr = %v, trace has %d probe spans", searchProbes, probes)
	}
	if stageSpans < len(obdrel.StageNames()) {
		t.Errorf("trace has %d stage spans, want ≥ %d", stageSpans, len(obdrel.StageNames()))
	}
	if !(sorIters >= 1) {
		t.Errorf("no thermal solver span with iterations ≥ 1")
	}
}

// TestExplainWarmLifetimeStageHits checks the substrate-reuse story
// end to end: once any server in the process has built a
// configuration, a second server (cold analyzer registry) building the
// same configuration must show every analysis stage as a cache hit.
func TestExplainWarmLifetimeStageHits(t *testing.T) {
	// grid=9 keeps this configuration's stage keys private to the test.
	q := "/v1/lifetime?design=C1&method=st_fast&ppm=10&grid=9&mc_samples=50&stmc_samples=500"

	warmer := newTestServer(t, Options{})
	getJSON(t, warmer.URL+q, http.StatusOK) // populates the shared stage cache

	srv := newTestServer(t, Options{})
	out := getJSON(t, srv.URL+q+"&explain=1", http.StatusOK)
	if out["cache"] != "miss" {
		t.Fatalf("fresh registry should miss: %v", out["cache"])
	}
	root := explainRoot(t, out)

	cache := map[string]string{} // stage span name → cache attr
	walkSpans(root, func(sp map[string]any) {
		name, _ := sp["name"].(string)
		if strings.HasPrefix(name, "stage:") {
			c, _ := spanAttr(sp, "cache")
			cache[name], _ = c.(string)
		}
	})
	if cache["stage:analyzer"] != "miss" {
		t.Errorf("stage:analyzer cache = %q, want miss", cache["stage:analyzer"])
	}
	for _, s := range obdrel.StageNames() {
		if got := cache["stage:"+s]; got != "hit" {
			t.Errorf("stage:%s cache = %q, want hit", s, got)
		}
	}
}

// TestDebugTracesRingBound drives more requests than the ring holds
// and checks /debug/traces stays bounded while still counting every
// trace, and that its filters work.
func TestDebugTracesRingBound(t *testing.T) {
	s := New(Options{TraceBuffer: 4})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	dbg := httptest.NewServer(s.DebugHandler())
	defer dbg.Close()

	for i := 0; i < 10; i++ {
		getJSON(t, srv.URL+"/v1/designs", http.StatusOK)
	}
	getJSON(t, srv.URL+"/healthz", http.StatusOK) // not instrumented: must not mint a trace

	out := getJSON(t, dbg.URL+"/debug/traces", http.StatusOK)
	if ring := out["ring"].(float64); ring > 4 {
		t.Errorf("ring holds %v traces, want ≤ 4", ring)
	}
	if total := out["total_traces"].(float64); total != 10 {
		t.Errorf("total_traces = %v, want 10", total)
	}
	traces := out["traces"].([]any)
	if len(traces) == 0 || len(traces) > 4 {
		t.Fatalf("traces: %d entries, want 1–4", len(traces))
	}

	// Route filter: only /v1/designs traces survive.
	filtered := getJSON(t, dbg.URL+"/debug/traces?route=/v1/designs&n=2", http.StatusOK)
	ft := filtered["traces"].([]any)
	if len(ft) == 0 || len(ft) > 2 {
		t.Fatalf("filtered traces: %d entries, want 1–2", len(ft))
	}
	for _, tr := range ft {
		if name := tr.(map[string]any)["name"]; name != "/v1/designs" {
			t.Errorf("route filter leaked %v", name)
		}
	}
	// An absurd min_dur filters everything out.
	none := getJSON(t, dbg.URL+"/debug/traces?min_dur=1h", http.StatusOK)
	if m := none["matched"].(float64); m != 0 {
		t.Errorf("min_dur=1h matched %v traces, want 0", m)
	}
}

// TestTraceparentPropagation: a caller-supplied W3C traceparent is
// adopted as the trace identity and echoed on the response.
func TestTraceparentPropagation(t *testing.T) {
	srv := newTestServer(t, Options{})
	const tid = "11223344556677889900aabbccddeeff"
	req, err := http.NewRequest(http.MethodGet, srv.URL+"/v1/designs?explain=1", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("traceparent", "00-"+tid+"-1234567890abcdef-01")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	echo := resp.Header.Get("traceparent")
	if !strings.Contains(echo, tid) {
		t.Fatalf("response traceparent %q does not carry caller trace id", echo)
	}
	var out map[string]any
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	tr := out["trace"].(map[string]any)
	if tr["trace_id"] != tid {
		t.Fatalf("trace adopted id %v, want %s", tr["trace_id"], tid)
	}
}

// TestTracingDisabled: with DisableTracing the explain knob is inert
// and /debug/traces reports the feature off.
func TestTracingDisabled(t *testing.T) {
	s := New(Options{DisableTracing: true})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	dbg := httptest.NewServer(s.DebugHandler())
	defer dbg.Close()

	out := getJSON(t, srv.URL+"/v1/designs?explain=1", http.StatusOK)
	if _, ok := out["trace"]; ok {
		t.Fatalf("explain produced a trace with tracing disabled: %v", out)
	}
	getJSON(t, dbg.URL+"/debug/traces", http.StatusNotFound)
}

// TestUnknownRouteFoldedInMetrics: scanner noise must not mint new
// route label values.
func TestUnknownRouteFoldedInMetrics(t *testing.T) {
	srv := newTestServer(t, Options{})
	for _, p := range []string{"/v1/nope", "/wp-admin.php", "/v1/lifetime/extra"} {
		resp, err := http.Get(srv.URL + p)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("GET %s = %d, want 404", p, resp.StatusCode)
		}
	}
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	text, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(text), `obdreld_requests_total{route="other",code="404"} 3`) {
		t.Errorf("metrics did not fold unknown routes into \"other\":\n%s", text)
	}
	if strings.Contains(string(text), "wp-admin") {
		t.Errorf("metrics leaked a raw unknown path as a label")
	}
}
