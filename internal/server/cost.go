package server

import (
	rtmetrics "runtime/metrics"
)

// costSnapshot is a point-in-time read of the process-level cost
// counters the wide-event log diffs around a request: cumulative heap
// allocations (bytes and objects) and process CPU time.
type costSnapshot struct {
	allocBytes   uint64
	allocObjects uint64
	cpuUs        int64
}

// readCost samples the counters. Only called for requests that won the
// wide-event sampling draw — the disabled path never reaches it.
func readCost() costSnapshot {
	var s [2]rtmetrics.Sample
	s[0].Name = "/gc/heap/allocs:bytes"
	s[1].Name = "/gc/heap/allocs:objects"
	rtmetrics.Read(s[:])
	cs := costSnapshot{cpuUs: processCPUUs()}
	if s[0].Value.Kind() == rtmetrics.KindUint64 {
		cs.allocBytes = s[0].Value.Uint64()
	}
	if s[1].Value.Kind() == rtmetrics.KindUint64 {
		cs.allocObjects = s[1].Value.Uint64()
	}
	return cs
}
