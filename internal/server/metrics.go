package server

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"obdrel/internal/pipeline"
)

// latencyBuckets are the histogram upper bounds in seconds. The low
// end resolves the µs-scale warm hybrid queries, the high end the
// cold engine builds.
var latencyBuckets = [...]float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// histogram is a fixed-bucket latency histogram with atomic counters;
// the extra slot is the +Inf overflow bucket.
type histogram struct {
	counts [len(latencyBuckets) + 1]atomic.Int64
	count  atomic.Int64
	sumNs  atomic.Int64
}

func (h *histogram) observe(d time.Duration) {
	s := d.Seconds()
	i := sort.SearchFloat64s(latencyBuckets[:], s)
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sumNs.Add(d.Nanoseconds())
}

// Metrics aggregates the service counters exposed on /metrics in
// Prometheus text format, implemented on sync/atomic so the hot path
// never contends on the exposition lock.
type Metrics struct {
	start time.Time

	// InFlight is the number of requests currently being served.
	InFlight atomic.Int64
	// CacheHits/CacheMisses count analyzer-registry lookups;
	// Coalesced counts requests that joined an in-flight build
	// instead of starting their own.
	CacheHits, CacheMisses, Coalesced atomic.Int64
	// Builds counts analyzer (engine substrate) constructions;
	// BuildNanos accumulates their wall time.
	Builds     atomic.Int64
	BuildNanos atomic.Int64
	// Throttled counts requests rejected 429 by the concurrency
	// limiter; TimedOut counts 504s from the per-request deadline.
	Throttled, TimedOut atomic.Int64

	// analyzersCached reports the registry's current size (gauge).
	analyzersCached func() int
	// stageStats reports per-stage cache counters (library stage graph
	// plus the registry's analyzer stage), exposed as labeled families.
	stageStats func() []pipeline.StageStat

	mu       sync.Mutex
	requests map[string]map[int]int64 // route → status code → count
	latency  map[string]*histogram    // route → histogram
}

// NewMetrics returns a zeroed metrics set.
func NewMetrics() *Metrics {
	return &Metrics{
		start:           time.Now(),
		requests:        map[string]map[int]int64{},
		latency:         map[string]*histogram{},
		analyzersCached: func() int { return 0 },
		stageStats:      func() []pipeline.StageStat { return nil },
	}
}

// ObserveRequest records one finished request.
func (m *Metrics) ObserveRequest(route string, code int, d time.Duration) {
	m.mu.Lock()
	byCode := m.requests[route]
	if byCode == nil {
		byCode = map[int]int64{}
		m.requests[route] = byCode
	}
	byCode[code]++
	h := m.latency[route]
	if h == nil {
		h = &histogram{}
		m.latency[route] = h
	}
	m.mu.Unlock()
	h.observe(d)
}

// ObserveBuild records one analyzer construction.
func (m *Metrics) ObserveBuild(d time.Duration) {
	m.Builds.Add(1)
	m.BuildNanos.Add(d.Nanoseconds())
}

// Uptime reports time since the metrics set was created.
func (m *Metrics) Uptime() time.Duration { return time.Since(m.start) }

// WriteTo renders the Prometheus text exposition format. Output is
// deterministically ordered so it diffs cleanly and tests can grep.
func (m *Metrics) WriteTo(w io.Writer) (int64, error) {
	cw := &countingWriter{w: w}
	m.mu.Lock()
	routes := make([]string, 0, len(m.requests))
	for r := range m.requests {
		routes = append(routes, r)
	}
	sort.Strings(routes)
	snapshot := make(map[string]map[int]int64, len(m.requests))
	for r, byCode := range m.requests {
		cp := make(map[int]int64, len(byCode))
		for c, n := range byCode {
			cp[c] = n
		}
		snapshot[r] = cp
	}
	hists := make(map[string]*histogram, len(m.latency))
	for r, h := range m.latency {
		hists[r] = h
	}
	m.mu.Unlock()

	fmt.Fprintf(cw, "# HELP obdreld_requests_total Requests served, by route and status code.\n")
	fmt.Fprintf(cw, "# TYPE obdreld_requests_total counter\n")
	for _, r := range routes {
		codes := make([]int, 0, len(snapshot[r]))
		for c := range snapshot[r] {
			codes = append(codes, c)
		}
		sort.Ints(codes)
		for _, c := range codes {
			fmt.Fprintf(cw, "obdreld_requests_total{route=%q,code=\"%d\"} %d\n", r, c, snapshot[r][c])
		}
	}

	fmt.Fprintf(cw, "# HELP obdreld_request_seconds Request latency, by route.\n")
	fmt.Fprintf(cw, "# TYPE obdreld_request_seconds histogram\n")
	for _, r := range routes {
		h := hists[r]
		if h == nil {
			continue
		}
		cum := int64(0)
		for i, ub := range latencyBuckets {
			cum += h.counts[i].Load()
			fmt.Fprintf(cw, "obdreld_request_seconds_bucket{route=%q,le=\"%g\"} %d\n", r, ub, cum)
		}
		cum += h.counts[len(latencyBuckets)].Load()
		fmt.Fprintf(cw, "obdreld_request_seconds_bucket{route=%q,le=\"+Inf\"} %d\n", r, cum)
		fmt.Fprintf(cw, "obdreld_request_seconds_sum{route=%q} %g\n", r, float64(h.sumNs.Load())/1e9)
		fmt.Fprintf(cw, "obdreld_request_seconds_count{route=%q} %d\n", r, h.count.Load())
	}

	counter := func(name, help string, v int64) {
		fmt.Fprintf(cw, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v float64) {
		fmt.Fprintf(cw, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, v)
	}
	counter("obdreld_analyzer_cache_hits_total", "Registry lookups served from the LRU.", m.CacheHits.Load())
	counter("obdreld_analyzer_cache_misses_total", "Registry lookups that required a build.", m.CacheMisses.Load())
	counter("obdreld_coalesced_requests_total", "Requests that joined an in-flight analyzer build.", m.Coalesced.Load())
	counter("obdreld_throttled_requests_total", "Requests rejected 429 by the concurrency limiter.", m.Throttled.Load())
	counter("obdreld_timedout_requests_total", "Requests that hit the per-request deadline.", m.TimedOut.Load())
	counter("obdreld_engine_builds_total", "Analyzer (engine substrate) constructions.", m.Builds.Load())
	fmt.Fprintf(cw, "# HELP obdreld_engine_build_seconds_total Wall time constructing analyzers (power-thermal fixed point; per-method tables build lazily and appear in request latency).\n")
	fmt.Fprintf(cw, "# TYPE obdreld_engine_build_seconds_total counter\n")
	fmt.Fprintf(cw, "obdreld_engine_build_seconds_total %g\n", float64(m.BuildNanos.Load())/1e9)
	gauge("obdreld_in_flight_requests", "Requests currently being served.", float64(m.InFlight.Load()))
	gauge("obdreld_analyzers_cached", "Analyzers resident in the registry.", float64(m.analyzersCached()))
	gauge("obdreld_uptime_seconds", "Seconds since the server started.", m.Uptime().Seconds())

	stages := m.stageStats()
	sort.Slice(stages, func(i, j int) bool { return stages[i].Stage < stages[j].Stage })
	labeled := func(name, help, typ string, value func(pipeline.StageStat) string) {
		fmt.Fprintf(cw, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
		for _, s := range stages {
			fmt.Fprintf(cw, "%s{stage=%q} %s\n", name, s.Stage, value(s))
		}
	}
	labeled("obdreld_stage_cache_hits_total", "Stage-cache lookups served from the LRU, by stage.", "counter",
		func(s pipeline.StageStat) string { return fmt.Sprintf("%d", s.Hits) })
	labeled("obdreld_stage_cache_misses_total", "Stage-cache lookups that required (or joined) a build, by stage.", "counter",
		func(s pipeline.StageStat) string { return fmt.Sprintf("%d", s.Misses) })
	labeled("obdreld_stage_builds_total", "Successful stage-artifact constructions, by stage.", "counter",
		func(s pipeline.StageStat) string { return fmt.Sprintf("%d", s.Builds) })
	labeled("obdreld_stage_cancelled_builds_total", "Stage builds cancelled because every waiter abandoned them, by stage.", "counter",
		func(s pipeline.StageStat) string { return fmt.Sprintf("%d", s.Cancels) })
	labeled("obdreld_stage_build_seconds_total", "Wall time of successful stage builds, by stage.", "counter",
		func(s pipeline.StageStat) string { return fmt.Sprintf("%g", s.BuildSeconds) })
	labeled("obdreld_stage_entries", "Artifacts resident per stage LRU.", "gauge",
		func(s pipeline.StageStat) string { return fmt.Sprintf("%d", s.Entries) })
	return cw.n, cw.err
}

type countingWriter struct {
	w   io.Writer
	n   int64
	err error
}

func (c *countingWriter) Write(p []byte) (int, error) {
	if c.err != nil {
		return 0, c.err
	}
	n, err := c.w.Write(p)
	c.n += int64(n)
	c.err = err
	return n, err
}
