package server

import (
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"obdrel"
	"obdrel/internal/fault"
	"obdrel/internal/obs"
	"obdrel/internal/pipeline"
)

// Metrics aggregates the service counters exposed on /metrics in
// Prometheus text format, implemented on sync/atomic so the hot path
// never contends on the exposition lock.
type Metrics struct {
	start time.Time

	// InFlight is the number of requests currently being served.
	InFlight atomic.Int64
	// CacheHits/CacheMisses count analyzer-registry lookups;
	// Coalesced counts requests that joined an in-flight build
	// instead of starting their own.
	CacheHits, CacheMisses, Coalesced atomic.Int64
	// Builds counts analyzer (engine substrate) constructions;
	// BuildNanos accumulates their wall time.
	Builds     atomic.Int64
	BuildNanos atomic.Int64
	// Throttled counts requests rejected 429 by the concurrency
	// limiter; TimedOut counts 504s from the per-request deadline.
	Throttled, TimedOut atomic.Int64
	// ServeStale counts failed rebuilds answered from the last-good
	// analyzer store; staleAgeNanos is the age of the most recently
	// served stale analyzer (gauge).
	ServeStale    atomic.Int64
	staleAgeNanos atomic.Int64
	// AdmissionRejected counts deadline-aware 503 rejections (predicted
	// queue wait exceeding the request deadline, plus queue-wait
	// expiries, counted separately in QueueTimeouts). DrainRejected
	// counts 503s issued while draining.
	AdmissionRejected, QueueTimeouts, DrainRejected atomic.Int64
	// BatchRequests counts /v1/batch streams; BatchItemsOK and
	// BatchItemsErr the per-item outcomes inside them; BatchGroups the
	// distinct substrate groups prepared; BatchReused the items that
	// rode an already-prepared group (the amortization the planner
	// exists for); BatchSharedEvals the duplicate items answered from
	// another item's evaluation; BatchStreamBytes the JSONL bytes
	// written.
	BatchRequests, BatchItemsOK, BatchItemsErr atomic.Int64
	BatchGroups, BatchReused, BatchStreamBytes atomic.Int64
	BatchSharedEvals                           atomic.Int64
	// batchErrClass counts per-item batch errors by fault class
	// (indexed by fault.Class).
	batchErrClass [4]atomic.Int64

	// queueDepth reports requests currently waiting for an execution
	// slot; draining reports the shutdown gate (both gauges, wired by
	// the server).
	queueDepth func() int64
	draining   func() bool

	// analyzersCached reports the registry's current size (gauge).
	analyzersCached func() int
	// stageStats reports per-stage cache counters (library stage graph
	// plus the registry's analyzer stage), exposed as labeled families.
	stageStats func() []pipeline.StageStat
	// artifact reports the node-level artifact counters (cluster
	// fetches, peer serves, warm sweep), wired by the server.
	artifact func() ArtifactStats
	// slo reports the burn-rate engine's objectives (wired by the
	// server; empty when no -slo objectives are configured).
	slo func() []obs.ObjectiveReport

	// knownRoutes is the closed set of route label values. Routes are
	// registered once at handler construction; anything else (scanner
	// noise, typos) is folded into "other" so the label maps below
	// cannot grow without bound under hostile traffic.
	knownRoutes map[string]bool

	mu       sync.Mutex
	requests map[string]map[int]int64  // route → status code → count
	latency  map[string]*obs.Histogram // route → histogram
}

// NewMetrics returns a zeroed metrics set.
func NewMetrics() *Metrics {
	return &Metrics{
		start:           time.Now(),
		requests:        map[string]map[int]int64{},
		latency:         map[string]*obs.Histogram{},
		analyzersCached: func() int { return 0 },
		stageStats:      func() []pipeline.StageStat { return nil },
		knownRoutes:     map[string]bool{},
		queueDepth:      func() int64 { return 0 },
		draining:        func() bool { return false },
		artifact:        func() ArtifactStats { return ArtifactStats{} },
		slo:             func() []obs.ObjectiveReport { return nil },
	}
}

// RouteSnapshots copies every route's latency histogram (mergeable
// across nodes — see obs.Histogram.MergeSnapshot) plus the per-route
// request totals summed over status codes. This is the node's share of
// the fleet aggregation behind /v1/cluster/status.
func (m *Metrics) RouteSnapshots() (map[string]obs.HistogramSnapshot, map[string]int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	hists := make(map[string]obs.HistogramSnapshot, len(m.latency))
	for r, h := range m.latency {
		hists[r] = h.Snapshot()
	}
	reqs := make(map[string]int64, len(m.requests))
	for r, byCode := range m.requests {
		var total int64
		for _, n := range byCode {
			total += n
		}
		reqs[r] = total
	}
	return hists, reqs
}

// ArtifactStats is the node-level artifact telemetry behind the
// obdreld_artifact_* families: the per-stage tier counters (disk hits,
// spills, peer fills) live in pipeline.StageStat; these are the
// counters that belong to the node, not to a stage.
type ArtifactStats struct {
	// FetchAttempts counts cluster artifact fetches started by this
	// node; FetchFills those a peer satisfied; FetchErrors per-peer
	// request failures (a fetch across N dead candidates counts N).
	FetchAttempts, FetchFills, FetchErrors int64
	// PeerServes counts sealed artifacts this node served on
	// /v1/artifact.
	PeerServes int64
	// WarmLoaded counts artifacts the anti-entropy sweep brought into
	// memory; Warming is true while the sweep is still running.
	WarmLoaded int64
	Warming    bool

	// FetchHedged counts fetches that raced a second candidate after
	// the hedge delay; FetchHedgeWins those where the hedge-launched
	// request delivered the winning fill.
	FetchHedged, FetchHedgeWins int64

	// Replication counters (dynamic mode): pushes attempted to replica
	// peers, push failures, enqueue drops under pressure, containers
	// received (installed) from peer pushes, receives rejected by
	// checksum/schema validation.
	ReplicaPushes, ReplicaPushErrors, ReplicaDropped int64
	ReplicaReceives, ReplicaRejects                  int64

	// Membership and rebalance state (dynamic mode). Epoch is this
	// node's membership view version; Replicas the k-way placement
	// factor; Members* the directory's per-state counts including
	// self. RebalanceFetched counts artifacts streamed in by sweeps;
	// KeysLost artifacts held but no longer owned on the current ring.
	Dynamic                                     bool
	Epoch                                       uint64
	Replicas                                    int
	MembersActive, MembersSuspect, MembersDead  int
	Rebalancing                                 bool
	RebalanceSweeps, RebalanceFetched, KeysLost int64
	HeartbeatErrors                             int64
}

// RegisterRoute admits a route as a metrics label value. Call once per
// routed path at handler construction, before traffic arrives.
func (m *Metrics) RegisterRoute(route string) {
	m.mu.Lock()
	m.knownRoutes[route] = true
	m.mu.Unlock()
}

// ObserveRequest records one finished request. Routes never registered
// with RegisterRoute are recorded under the label "other".
func (m *Metrics) ObserveRequest(route string, code int, d time.Duration) {
	m.mu.Lock()
	if !m.knownRoutes[route] {
		route = "other"
	}
	byCode := m.requests[route]
	if byCode == nil {
		byCode = map[int]int64{}
		m.requests[route] = byCode
	}
	byCode[code]++
	h := m.latency[route]
	if h == nil {
		h = &obs.Histogram{}
		m.latency[route] = h
	}
	m.mu.Unlock()
	h.Observe(d)
}

// ObserveBatchItem records one batch item's outcome: ok increments
// the success counter, an error increments the failure counter and
// its fault-class bucket.
func (m *Metrics) ObserveBatchItem(err error) {
	if err == nil {
		m.BatchItemsOK.Add(1)
		return
	}
	m.BatchItemsErr.Add(1)
	if cls := fault.ClassOf(err); int(cls) >= 0 && int(cls) < len(m.batchErrClass) {
		m.batchErrClass[cls].Add(1)
	}
}

// ObserveBuild records one analyzer construction.
func (m *Metrics) ObserveBuild(d time.Duration) {
	m.Builds.Add(1)
	m.BuildNanos.Add(d.Nanoseconds())
}

// Uptime reports time since the metrics set was created.
func (m *Metrics) Uptime() time.Duration { return time.Since(m.start) }

// WriteTo renders the Prometheus text exposition format. Output is
// deterministically ordered so it diffs cleanly and tests can grep.
func (m *Metrics) WriteTo(w io.Writer) (int64, error) {
	cw := &countingWriter{w: w}
	m.mu.Lock()
	routes := make([]string, 0, len(m.requests))
	for r := range m.requests {
		routes = append(routes, r)
	}
	sort.Strings(routes)
	snapshot := make(map[string]map[int]int64, len(m.requests))
	for r, byCode := range m.requests {
		cp := make(map[int]int64, len(byCode))
		for c, n := range byCode {
			cp[c] = n
		}
		snapshot[r] = cp
	}
	hists := make(map[string]*obs.Histogram, len(m.latency))
	for r, h := range m.latency {
		hists[r] = h
	}
	m.mu.Unlock()

	fmt.Fprintf(cw, "# HELP obdreld_requests_total Requests served, by route and status code.\n")
	fmt.Fprintf(cw, "# TYPE obdreld_requests_total counter\n")
	for _, r := range routes {
		codes := make([]int, 0, len(snapshot[r]))
		for c := range snapshot[r] {
			codes = append(codes, c)
		}
		sort.Ints(codes)
		for _, c := range codes {
			fmt.Fprintf(cw, "obdreld_requests_total{route=%q,code=\"%d\"} %d\n", r, c, snapshot[r][c])
		}
	}

	fmt.Fprintf(cw, "# HELP obdreld_request_seconds Request latency, by route.\n")
	fmt.Fprintf(cw, "# TYPE obdreld_request_seconds histogram\n")
	for _, r := range routes {
		h := hists[r]
		if h == nil {
			continue
		}
		counts := h.BucketCounts()
		cum := int64(0)
		for i, ub := range obs.LatencyBuckets {
			cum += counts[i]
			fmt.Fprintf(cw, "obdreld_request_seconds_bucket{route=%q,le=\"%g\"} %d\n", r, ub, cum)
		}
		cum += counts[len(obs.LatencyBuckets)]
		fmt.Fprintf(cw, "obdreld_request_seconds_bucket{route=%q,le=\"+Inf\"} %d\n", r, cum)
		fmt.Fprintf(cw, "obdreld_request_seconds_sum{route=%q} %g\n", r, h.Sum().Seconds())
		fmt.Fprintf(cw, "obdreld_request_seconds_count{route=%q} %d\n", r, h.Count())
	}

	counter := func(name, help string, v int64) {
		fmt.Fprintf(cw, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v float64) {
		fmt.Fprintf(cw, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, v)
	}
	counter("obdreld_analyzer_cache_hits_total", "Registry lookups served from the LRU.", m.CacheHits.Load())
	counter("obdreld_analyzer_cache_misses_total", "Registry lookups that required a build.", m.CacheMisses.Load())
	counter("obdreld_coalesced_requests_total", "Requests that joined an in-flight analyzer build.", m.Coalesced.Load())
	counter("obdreld_throttled_requests_total", "Requests rejected 429 by the concurrency limiter.", m.Throttled.Load())
	counter("obdreld_timedout_requests_total", "Requests that hit the per-request deadline.", m.TimedOut.Load())
	counter("obdreld_engine_builds_total", "Analyzer (engine substrate) constructions.", m.Builds.Load())
	counter("obdreld_serve_stale_total", "Failed rebuilds answered from the last-good analyzer store.", m.ServeStale.Load())
	counter("obdreld_admission_rejected_total", "Requests rejected 503 by the deadline-aware admission controller.", m.AdmissionRejected.Load())
	counter("obdreld_queue_timeouts_total", "Admitted queue waits that expired before a slot freed.", m.QueueTimeouts.Load())
	counter("obdreld_drain_rejected_total", "Requests rejected 503 during graceful shutdown.", m.DrainRejected.Load())
	counter("obdreld_batch_requests_total", "Batch streams served on /v1/batch.", m.BatchRequests.Load())
	fmt.Fprintf(cw, "# HELP obdreld_batch_items_total Batch items evaluated, by per-item outcome.\n")
	fmt.Fprintf(cw, "# TYPE obdreld_batch_items_total counter\n")
	fmt.Fprintf(cw, "obdreld_batch_items_total{status=\"ok\"} %d\n", m.BatchItemsOK.Load())
	fmt.Fprintf(cw, "obdreld_batch_items_total{status=\"error\"} %d\n", m.BatchItemsErr.Load())
	counter("obdreld_batch_groups_total", "Distinct substrate groups prepared by the batch planner.", m.BatchGroups.Load())
	counter("obdreld_batch_substrate_reused_items_total", "Batch items that reused an already-prepared substrate group.", m.BatchReused.Load())
	counter("obdreld_batch_shared_evals_total", "Duplicate batch items answered from another item's evaluation.", m.BatchSharedEvals.Load())
	counter("obdreld_batch_stream_bytes_total", "JSONL bytes written to batch response streams.", m.BatchStreamBytes.Load())
	fmt.Fprintf(cw, "# HELP obdreld_batch_item_errors_total Failed batch items, by fault class.\n")
	fmt.Fprintf(cw, "# TYPE obdreld_batch_item_errors_total counter\n")
	for i := range m.batchErrClass {
		fmt.Fprintf(cw, "obdreld_batch_item_errors_total{class=%q} %d\n", fault.Class(i).String(), m.batchErrClass[i].Load())
	}
	batchItems := m.BatchItemsOK.Load() + m.BatchItemsErr.Load()
	reuseRatio := 0.0
	if batchItems > 0 {
		reuseRatio = float64(m.BatchReused.Load()) / float64(batchItems)
	}
	gauge("obdreld_batch_substrate_reuse_ratio", "Fraction of batch items that reused a prepared substrate group.", reuseRatio)
	counter("obdreld_fault_injected_total", "Faults fired by the injection framework (zero unless armed).", fault.InjectedTotal())
	tblLoads, tblSaves, tblRejects := obdrel.TableFileStats()
	counter("obdreld_hybrid_table_loads_total", "Hybrid engines served from a spilled table file.", int64(tblLoads))
	counter("obdreld_hybrid_table_saves_total", "Hybrid table sets spilled to the table directory.", int64(tblSaves))
	counter("obdreld_hybrid_table_rejects_total", "Table files rejected for key mismatch or corruption.", int64(tblRejects))
	fmt.Fprintf(cw, "# HELP obdreld_engine_build_seconds_total Wall time constructing analyzers (power-thermal fixed point; per-method tables build lazily and appear in request latency).\n")
	fmt.Fprintf(cw, "# TYPE obdreld_engine_build_seconds_total counter\n")
	fmt.Fprintf(cw, "obdreld_engine_build_seconds_total %g\n", float64(m.BuildNanos.Load())/1e9)
	gauge("obdreld_in_flight_requests", "Requests currently being served.", float64(m.InFlight.Load()))
	gauge("obdreld_analyzers_cached", "Analyzers resident in the registry.", float64(m.analyzersCached()))
	gauge("obdreld_uptime_seconds", "Seconds since the server started.", m.Uptime().Seconds())
	gauge("obdreld_stale_age_seconds", "Age of the most recently served stale analyzer.", float64(m.staleAgeNanos.Load())/1e9)
	gauge("obdreld_queue_depth", "Requests waiting for an execution slot.", float64(m.queueDepth()))
	drainGauge := 0.0
	if m.draining() {
		drainGauge = 1
	}
	gauge("obdreld_draining", "1 while the server is draining for shutdown.", drainGauge)

	// Go runtime health: enough to spot goroutine leaks, heap growth,
	// and GC pressure from a dashboard without attaching pprof.
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	gauge("obdreld_go_goroutines", "Live goroutines.", float64(runtime.NumGoroutine()))
	gauge("obdreld_go_heap_alloc_bytes", "Bytes of allocated heap objects.", float64(ms.HeapAlloc))
	gauge("obdreld_go_heap_sys_bytes", "Heap memory obtained from the OS.", float64(ms.HeapSys))
	counter("obdreld_go_gc_cycles_total", "Completed GC cycles.", int64(ms.NumGC))
	fmt.Fprintf(cw, "# HELP obdreld_go_gc_pause_seconds_total Cumulative stop-the-world GC pause time.\n")
	fmt.Fprintf(cw, "# TYPE obdreld_go_gc_pause_seconds_total counter\n")
	fmt.Fprintf(cw, "obdreld_go_gc_pause_seconds_total %g\n", float64(ms.PauseTotalNs)/1e9)
	gauge("obdreld_go_gomaxprocs", "GOMAXPROCS at scrape time.", float64(runtime.GOMAXPROCS(0)))

	stages := m.stageStats()
	sort.Slice(stages, func(i, j int) bool { return stages[i].Stage < stages[j].Stage })
	labeled := func(name, help, typ string, value func(pipeline.StageStat) string) {
		fmt.Fprintf(cw, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
		for _, s := range stages {
			fmt.Fprintf(cw, "%s{stage=%q} %s\n", name, s.Stage, value(s))
		}
	}
	labeled("obdreld_stage_cache_hits_total", "Stage-cache lookups served from the LRU, by stage.", "counter",
		func(s pipeline.StageStat) string { return fmt.Sprintf("%d", s.Hits) })
	labeled("obdreld_stage_cache_misses_total", "Stage-cache lookups that required (or joined) a build, by stage.", "counter",
		func(s pipeline.StageStat) string { return fmt.Sprintf("%d", s.Misses) })
	labeled("obdreld_stage_builds_total", "Successful stage-artifact constructions, by stage.", "counter",
		func(s pipeline.StageStat) string { return fmt.Sprintf("%d", s.Builds) })
	labeled("obdreld_stage_cancelled_builds_total", "Stage builds cancelled because every waiter abandoned them, by stage.", "counter",
		func(s pipeline.StageStat) string { return fmt.Sprintf("%d", s.Cancels) })
	labeled("obdreld_stage_build_seconds_total", "Wall time of successful stage builds, by stage.", "counter",
		func(s pipeline.StageStat) string { return fmt.Sprintf("%g", s.BuildSeconds) })
	labeled("obdreld_stage_entries", "Artifacts resident per stage LRU.", "gauge",
		func(s pipeline.StageStat) string { return fmt.Sprintf("%d", s.Entries) })
	labeled("obdreld_stage_retries_total", "Transient stage-build failures that were retried, by stage.", "counter",
		func(s pipeline.StageStat) string { return fmt.Sprintf("%d", s.Retries) })
	labeled("obdreld_stage_breaker_opens_total", "Circuit-breaker open transitions, by stage.", "counter",
		func(s pipeline.StageStat) string { return fmt.Sprintf("%d", s.BreakerOpens) })
	labeled("obdreld_stage_breaker_fastfails_total", "Lookups shed by an open circuit, by stage.", "counter",
		func(s pipeline.StageStat) string { return fmt.Sprintf("%d", s.BreakerFastFails) })

	// Artifact tiers: per-stage disk/peer counters, then the
	// node-level cluster fetch / peer serve / warm-sweep counters.
	labeled("obdreld_artifact_disk_hits_total", "Stage artifacts served from the disk tier, by stage.", "counter",
		func(s pipeline.StageStat) string { return fmt.Sprintf("%d", s.DiskHits) })
	labeled("obdreld_artifact_disk_rejects_total", "Disk artifacts rejected (corrupt, truncated, or future-version), by stage.", "counter",
		func(s pipeline.StageStat) string { return fmt.Sprintf("%d", s.DiskRejects) })
	labeled("obdreld_artifact_spills_total", "Stage artifacts spilled to the disk tier, by stage.", "counter",
		func(s pipeline.StageStat) string { return fmt.Sprintf("%d", s.Spills) })
	labeled("obdreld_artifact_spill_failures_total", "Failed artifact spills (encode or write errors), by stage.", "counter",
		func(s pipeline.StageStat) string { return fmt.Sprintf("%d", s.SpillFails) })
	labeled("obdreld_artifact_peer_hits_total", "Stage artifacts cache-filled from a cluster peer, by stage.", "counter",
		func(s pipeline.StageStat) string { return fmt.Sprintf("%d", s.PeerHits) })
	labeled("obdreld_artifact_peer_errors_total", "Peer fetches that degraded to a local build, by stage.", "counter",
		func(s pipeline.StageStat) string { return fmt.Sprintf("%d", s.PeerErrors) })
	a := m.artifact()
	counter("obdreld_artifact_fetch_attempts_total", "Cluster artifact fetches started by this node.", a.FetchAttempts)
	counter("obdreld_artifact_fetch_fills_total", "Cluster artifact fetches satisfied by a peer.", a.FetchFills)
	counter("obdreld_artifact_fetch_errors_total", "Per-peer artifact request failures.", a.FetchErrors)
	counter("obdreld_artifact_peer_serves_total", "Sealed artifacts served to peers on /v1/artifact.", a.PeerServes)
	counter("obdreld_artifact_warm_loaded_total", "Artifacts loaded into memory by the startup warm sweep.", a.WarmLoaded)
	counter("obdreld_artifact_fetch_hedged_total", "Peer fetches that raced a second candidate after the hedge delay.", a.FetchHedged)
	counter("obdreld_artifact_fetch_hedge_wins_total", "Peer fetches won by the hedge-launched candidate.", a.FetchHedgeWins)
	warmGauge := 0.0
	if a.Warming {
		warmGauge = 1
	}
	gauge("obdreld_artifact_warming", "1 while the startup anti-entropy sweep is still running.", warmGauge)

	// Dynamic-membership families: emitted only in -join mode so the
	// exposition stays byte-stable for static and single-node nodes.
	if a.Dynamic {
		counter("obdreld_artifact_replica_pushes_total", "Replication pushes attempted to replica-set peers.", a.ReplicaPushes)
		counter("obdreld_artifact_replica_push_errors_total", "Replication pushes that failed (transport or peer rejection).", a.ReplicaPushErrors)
		counter("obdreld_artifact_replica_dropped_total", "Replication enqueues dropped on a full queue.", a.ReplicaDropped)
		counter("obdreld_artifact_replica_receives_total", "Sealed containers received and installed from peer pushes.", a.ReplicaReceives)
		counter("obdreld_artifact_replica_rejects_total", "Peer pushes rejected by container validation.", a.ReplicaRejects)
		counter("obdreld_artifact_rebalance_fetched_total", "Artifacts streamed in by rebalance sweeps.", a.RebalanceFetched)
		counter("obdreld_cluster_rebalance_sweeps_total", "Rebalance sweeps run after membership epoch changes.", a.RebalanceSweeps)
		counter("obdreld_cluster_heartbeat_errors_total", "Failed gossip exchanges with peers.", a.HeartbeatErrors)
		gauge("obdreld_cluster_epoch", "This node's membership view epoch.", float64(a.Epoch))
		gauge("obdreld_cluster_replicas", "Configured k-way replica placement factor.", float64(a.Replicas))
		rebalGauge := 0.0
		if a.Rebalancing {
			rebalGauge = 1
		}
		gauge("obdreld_cluster_rebalancing", "1 while a rebalance sweep is streaming newly-owned artifacts.", rebalGauge)
		gauge("obdreld_cluster_keys_lost", "Artifacts held locally that the current ring no longer assigns here.", float64(a.KeysLost))
		fmt.Fprintf(cw, "# HELP obdreld_cluster_members Membership directory size by state, self included.\n")
		fmt.Fprintf(cw, "# TYPE obdreld_cluster_members gauge\n")
		fmt.Fprintf(cw, "obdreld_cluster_members{state=\"active\"} %d\n", a.MembersActive)
		fmt.Fprintf(cw, "obdreld_cluster_members{state=\"suspect\"} %d\n", a.MembersSuspect)
		fmt.Fprintf(cw, "obdreld_cluster_members{state=\"dead\"} %d\n", a.MembersDead)
	}

	// SLO burn-rate families (absent entirely when no objectives are
	// configured, so the exposition stays byte-stable for non-SLO
	// deployments).
	if reps := m.slo(); len(reps) > 0 {
		fmt.Fprintf(cw, "# HELP obdreld_slo_target Objective target as a fraction (e.g. 0.999), by route and objective.\n")
		fmt.Fprintf(cw, "# TYPE obdreld_slo_target gauge\n")
		for _, r := range reps {
			fmt.Fprintf(cw, "obdreld_slo_target{route=%q,slo=%q} %g\n", r.Route, r.Label, r.TargetPct/100)
		}
		fmt.Fprintf(cw, "# HELP obdreld_slo_good_total Requests that met the objective, by route and objective.\n")
		fmt.Fprintf(cw, "# TYPE obdreld_slo_good_total counter\n")
		for _, r := range reps {
			fmt.Fprintf(cw, "obdreld_slo_good_total{route=%q,slo=%q} %d\n", r.Route, r.Label, r.Good)
		}
		fmt.Fprintf(cw, "# HELP obdreld_slo_bad_total Requests that burned the objective's error budget, by route and objective.\n")
		fmt.Fprintf(cw, "# TYPE obdreld_slo_bad_total counter\n")
		for _, r := range reps {
			fmt.Fprintf(cw, "obdreld_slo_bad_total{route=%q,slo=%q} %d\n", r.Route, r.Label, r.Bad)
		}
		fmt.Fprintf(cw, "# HELP obdreld_slo_burn_rate Windowed error rate over error budget (1.0 = burning exactly at budget), by route, objective, and window.\n")
		fmt.Fprintf(cw, "# TYPE obdreld_slo_burn_rate gauge\n")
		for _, r := range reps {
			for _, w := range r.Windows {
				fmt.Fprintf(cw, "obdreld_slo_burn_rate{route=%q,slo=%q,window=%q} %g\n", r.Route, r.Label, w.Window, w.Burn)
			}
		}
	}
	return cw.n, cw.err
}

type countingWriter struct {
	w   io.Writer
	n   int64
	err error
}

func (c *countingWriter) Write(p []byte) (int, error) {
	if c.err != nil {
		return 0, c.err
	}
	n, err := c.w.Write(p)
	c.n += int64(n)
	c.err = err
	return n, err
}
